// Benchmarks regenerating every table and figure of the paper, plus
// ablations of the design choices called out in DESIGN.md. Each benchmark
// reports the headline quantities of its experiment as custom metrics, so
// `go test -bench=. -benchmem` doubles as the experiment record consumed by
// EXPERIMENTS.md.
package leakctl

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/control"
	"repro/internal/cooling"
	"repro/internal/dvfs"
	"repro/internal/experiments"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/reliability"
	"repro/internal/room"
	"repro/internal/thermal"
	"repro/internal/units"
	"repro/internal/workload"
)

// --------------------------------------------------------------------------
// Figure 1: thermal transients

// BenchmarkFig1aTransients regenerates Fig. 1(a): CPU temperature over time
// at 100% utilization for fan speeds 1800..4200. Reported metrics are the
// steady temperatures of the slowest and fastest fan settings.
func BenchmarkFig1aTransients(b *testing.B) {
	cfg := T3Config()
	var results []TransientResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = Fig1a(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(results[0].SteadyC, "steadyC@1800rpm")
	b.ReportMetric(results[len(results)-1].SteadyC, "steadyC@4200rpm")
	b.ReportMetric(results[0].SettleAt, "settleMin@1800rpm")
	b.ReportMetric(results[len(results)-1].SettleAt, "settleMin@4200rpm")
}

// BenchmarkFig1bUtilizationSweep regenerates Fig. 1(b): transients at
// 1800 RPM for 25/50/75/100% utilization.
func BenchmarkFig1bUtilizationSweep(b *testing.B) {
	cfg := T3Config()
	var results []TransientResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = Fig1b(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(results[0].SteadyC, "steadyC@25pct")
	b.ReportMetric(results[len(results)-1].SteadyC, "steadyC@100pct")
}

// --------------------------------------------------------------------------
// Section IV: leakage model fit

// BenchmarkCharacterizationSweep times the full Section IV telemetry
// collection campaign (8 utilization levels × 5 fan speeds).
func BenchmarkCharacterizationSweep(b *testing.B) {
	cfg := T3Config()
	sweep := DefaultSweep()
	var ds *Dataset
	for i := 0; i < b.N; i++ {
		var err error
		ds, err = Characterize(cfg, sweep)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ds.Points)), "points")
}

// BenchmarkLeakageFit times the Levenberg–Marquardt fit and reports the
// recovered constants (paper: k1=0.4452, k2=0.3231, k3=0.04749,
// RMSE=2.243 W, accuracy 98%).
func BenchmarkLeakageFit(b *testing.B) {
	cfg := T3Config()
	sweep := DefaultSweep()
	ds, err := Characterize(cfg, sweep)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var fit FitResult
	for i := 0; i < b.N; i++ {
		fit, err = FitLeakage(ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.K1, "k1")
	b.ReportMetric(fit.K2*1000, "k2_milli")
	b.ReportMetric(fit.K3*1000, "k3_milli")
	b.ReportMetric(fit.RMSE, "rmseW")
	b.ReportMetric(fit.AccuracyPct, "accuracyPct")
}

// --------------------------------------------------------------------------
// Figure 2: leakage/fan tradeoff

// BenchmarkFig2aTradeoff regenerates Fig. 2(a) and reports the optimum
// (paper: minimum near 70 °C at 2400 RPM).
func BenchmarkFig2aTradeoff(b *testing.B) {
	cfg := T3Config()
	var curve TradeoffCurve
	for i := 0; i < b.N; i++ {
		var err error
		curve, err = Fig2a(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	opt, err := curve.Optimum()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(opt.RPM), "optRPM")
	b.ReportMetric(float64(opt.Temp), "optTempC")
	b.ReportMetric(float64(opt.Sum()), "optFanLeakW")
}

// BenchmarkFig2bAllDutycycles regenerates Fig. 2(b) and reports the hottest
// optimum temperature across utilization levels (paper: never above 70 °C).
func BenchmarkFig2bAllDutycycles(b *testing.B) {
	cfg := T3Config()
	var curves []TradeoffCurve
	for i := 0; i < b.N; i++ {
		var err error
		curves, err = Fig2b(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	maxOpt := 0.0
	for _, c := range curves {
		opt, err := c.Optimum()
		if err != nil {
			b.Fatal(err)
		}
		if float64(opt.Temp) > maxOpt {
			maxOpt = float64(opt.Temp)
		}
	}
	b.ReportMetric(maxOpt, "maxOptTempC")
}

// --------------------------------------------------------------------------
// Table I: controller comparison

func benchTableITest(b *testing.B, id int) {
	benchTableITestCfg(b, id, T3Config())
}

// benchTableITestCfg regenerates one workload's Table I rows: the LUT is
// built and the three controller runs fan out over the worker pool, so this
// benchmark scales with cores on top of the exact-integrator win.
func benchTableITestCfg(b *testing.B, id int, cfg ServerConfig) {
	ec := DefaultEval()
	ec.SampleEvery = 0 // no traces in the benchmark
	var row TableIRow
	for i := 0; i < b.N; i++ {
		w, err := workload.ByID(id, 42)
		if err != nil {
			b.Fatal(err)
		}
		table, err := lut.Build(cfg, lut.DefaultBuild())
		if err != nil {
			b.Fatal(err)
		}
		row, err = experiments.TableIRowFor(cfg, table, w, ec, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	idle := experiments.IdleEnergyKWh(cfg, workload.TestDuration)
	denom := row.Default.EnergyKWh - idle
	b.ReportMetric(row.Default.EnergyKWh*1000, "defaultWh")
	b.ReportMetric(row.BangBang.EnergyKWh*1000, "bangWh")
	b.ReportMetric(row.LUT.EnergyKWh*1000, "lutWh")
	if denom > 0 {
		b.ReportMetric(100*(row.Default.EnergyKWh-row.LUT.EnergyKWh)/denom, "lutNetSavPct")
		b.ReportMetric(100*(row.Default.EnergyKWh-row.BangBang.EnergyKWh)/denom, "bangNetSavPct")
	}
	b.ReportMetric(row.Default.PeakPowerW-row.LUT.PeakPowerW, "lutPeakCutW")
	b.ReportMetric(row.LUT.MaxTempC, "lutMaxTempC")
	b.ReportMetric(float64(row.LUT.FanChanges), "lutFanChanges")
	b.ReportMetric(row.LUT.AvgRPM, "lutAvgRPM")
}

// BenchmarkTableITest1 regenerates the Test-1 (ramp) rows of Table I.
func BenchmarkTableITest1(b *testing.B) { benchTableITest(b, 1) }

// BenchmarkTableITest2 regenerates the Test-2 (periods) rows of Table I.
func BenchmarkTableITest2(b *testing.B) { benchTableITest(b, 2) }

// BenchmarkTableITest3 regenerates the Test-3 (random steps) rows of Table I.
func BenchmarkTableITest3(b *testing.B) { benchTableITest(b, 3) }

// BenchmarkTableITest4 regenerates the Test-4 (shell workload) rows of Table I.
func BenchmarkTableITest4(b *testing.B) { benchTableITest(b, 4) }

// BenchmarkTableITest1RK4 is the pre-optimization baseline of Test 1: the
// same rows integrated with the fixed-step RK4 fallback. Compare against
// BenchmarkTableITest1 for the exact-propagator speedup.
func BenchmarkTableITest1RK4(b *testing.B) {
	cfg := T3Config()
	cfg.ThermalIntegrator = thermal.IntegratorRK4
	benchTableITestCfg(b, 1, cfg)
}

// BenchmarkTableIFull regenerates the entire Table I (4 workloads × 3
// controllers) through the parallel harness — the headline end-to-end run.
func BenchmarkTableIFull(b *testing.B) {
	cfg := T3Config()
	ec := DefaultEval()
	ec.SampleEvery = 0
	var rows []TableIRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableIParallel(cfg, 42, ec, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "rows")
	b.ReportMetric(rows[0].LUT.NetSavingsPct, "test1LutNetSavPct")
}

// BenchmarkFig3Traces regenerates Figure 3's three Test-3 temperature traces.
func BenchmarkFig3Traces(b *testing.B) {
	cfg := T3Config()
	var series []Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = Fig3(cfg, 42, DefaultEval())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(series)), "controllers")
	b.ReportMetric(float64(len(series[0].X)), "samples")
}

// --------------------------------------------------------------------------
// Ablations (design choices from DESIGN.md §5)

// BenchmarkAblationHoldoff sweeps the LUT controller's minimum interval
// between fan changes (paper: 60 s) on the stochastic Test-4 shell
// workload, whose fast utilization fluctuations make the hold-off bind.
func BenchmarkAblationHoldoff(b *testing.B) {
	cfg := T3Config()
	table, err := lut.Build(cfg, lut.DefaultBuild())
	if err != nil {
		b.Fatal(err)
	}
	for _, holdoff := range []float64{0, 30, 60, 180} {
		b.Run(fmtSeconds(holdoff), func(b *testing.B) {
			ec := DefaultEval()
			ec.SampleEvery = 0
			var res RunResult
			for i := 0; i < b.N; i++ {
				w, err := workload.ByID(4, 42)
				if err != nil {
					b.Fatal(err)
				}
				lcfg := control.DefaultLUT()
				lcfg.HoldOff = holdoff
				lc, err := control.NewLUT(table, lcfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err = experiments.RunControlled(cfg, w.Profile, lc, ec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EnergyKWh*1000, "Wh")
			b.ReportMetric(float64(res.FanChanges), "fanChanges")
			b.ReportMetric(res.MaxTempC, "maxTempC")
		})
	}
}

// BenchmarkAblationLUTResolution compares the paper's 9-level utilization
// grid against a dense 5%-step table on Test-1's ramp.
func BenchmarkAblationLUTResolution(b *testing.B) {
	cfg := T3Config()
	grids := map[string][]units.Percent{
		"paper9": lut.DefaultBuild().Utils,
		"dense21": func() []units.Percent {
			var g []units.Percent
			for u := units.Percent(0); u <= 100; u += 5 {
				g = append(g, u)
			}
			return g
		}(),
	}
	for name, grid := range grids {
		b.Run(name, func(b *testing.B) {
			bc := lut.DefaultBuild()
			bc.Utils = grid
			table, err := lut.Build(cfg, bc)
			if err != nil {
				b.Fatal(err)
			}
			ec := DefaultEval()
			ec.SampleEvery = 0
			var res RunResult
			for i := 0; i < b.N; i++ {
				w, err := workload.ByID(1, 42)
				if err != nil {
					b.Fatal(err)
				}
				lc, err := control.NewLUT(table, control.DefaultLUT())
				if err != nil {
					b.Fatal(err)
				}
				res, err = experiments.RunControlled(cfg, w.Profile, lc, ec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EnergyKWh*1000, "Wh")
			b.ReportMetric(float64(res.FanChanges), "fanChanges")
		})
	}
}

// BenchmarkAblationBangBand sweeps the bang-bang dead band (paper: 65-75;
// narrower bands change fans more, wider bands overshoot more).
func BenchmarkAblationBangBand(b *testing.B) {
	cfg := T3Config()
	bands := []struct {
		name      string
		low, high units.Celsius
	}{
		{"paper65to75", 65, 75},
		{"narrow70to75", 70, 75},
		{"wide60to80", 60, 80},
	}
	for _, band := range bands {
		b.Run(band.name, func(b *testing.B) {
			ec := DefaultEval()
			ec.SampleEvery = 0
			var res RunResult
			for i := 0; i < b.N; i++ {
				w, err := workload.ByID(2, 42)
				if err != nil {
					b.Fatal(err)
				}
				bcfg := control.DefaultBangBang()
				bcfg.TLow = band.low
				bcfg.THigh = band.high
				bcfg.TLowFloor = band.low - 5
				bcfg.TPanic = band.high + 5
				bb, err := control.NewBangBang(bcfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err = experiments.RunControlled(cfg, w.Profile, bb, ec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EnergyKWh*1000, "Wh")
			b.ReportMetric(float64(res.FanChanges), "fanChanges")
			b.ReportMetric(res.MaxTempC, "maxTempC")
		})
	}
}

// BenchmarkAblationTempCap compares the LUT built with the paper's 75 °C
// reliability cap against an uncapped energy-only table. Run at a 32 °C
// data-center ambient, where the energy-only optimum is hot enough for the
// cap to bind (at the paper's 24 °C lab ambient it never does).
func BenchmarkAblationTempCap(b *testing.B) {
	cfg := T3Config()
	cfg.Ambient = 32
	for _, cap75 := range []bool{true, false} {
		name := "cap75C"
		bc := lut.DefaultBuild()
		if !cap75 {
			name = "uncapped"
			bc.MaxTemp = 0
		}
		b.Run(name, func(b *testing.B) {
			table, err := lut.Build(cfg, bc)
			if err != nil {
				b.Fatal(err)
			}
			ec := DefaultEval()
			ec.SampleEvery = 0
			var res RunResult
			for i := 0; i < b.N; i++ {
				w, err := workload.ByID(2, 42)
				if err != nil {
					b.Fatal(err)
				}
				lc, err := control.NewLUT(table, control.DefaultLUT())
				if err != nil {
					b.Fatal(err)
				}
				res, err = experiments.RunControlled(cfg, w.Profile, lc, ec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EnergyKWh*1000, "Wh")
			b.ReportMetric(res.MaxTempC, "maxTempC")
			b.ReportMetric(float64(table.MaxPredictedTemp()), "tableMaxTempC")
		})
	}
}

// BenchmarkAblationAmbient sweeps ambient temperature (the paper notes its
// lab is colder than a production data center).
func BenchmarkAblationAmbient(b *testing.B) {
	for _, amb := range []units.Celsius{18, 24, 30, 35} {
		b.Run(fmtCelsius(amb), func(b *testing.B) {
			cfg := T3Config()
			cfg.Ambient = amb
			table, err := lut.Build(cfg, lut.DefaultBuild())
			if err != nil {
				b.Fatal(err)
			}
			ec := DefaultEval()
			ec.SampleEvery = 0
			var res RunResult
			for i := 0; i < b.N; i++ {
				w, err := workload.ByID(3, 42)
				if err != nil {
					b.Fatal(err)
				}
				lc, err := control.NewLUT(table, control.DefaultLUT())
				if err != nil {
					b.Fatal(err)
				}
				res, err = experiments.RunControlled(cfg, w.Profile, lc, ec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EnergyKWh*1000, "Wh")
			b.ReportMetric(res.MaxTempC, "maxTempC")
			b.ReportMetric(res.AvgRPM, "avgRPM")
		})
	}
}

// BenchmarkExtensionDVFS compares the paper's fan-only LUT against the
// coordinated DVFS+fan extension (DESIGN.md §6) on the Test-4 shell
// workload, reporting both energies and the coordinated policy's deepest
// P-state.
func BenchmarkExtensionDVFS(b *testing.B) {
	cfg := T3Config()
	fanTable, err := lut.Build(cfg, lut.DefaultBuild())
	if err != nil {
		b.Fatal(err)
	}
	coordTable, err := dvfs.Build(cfg, dvfs.DefaultBuild())
	if err != nil {
		b.Fatal(err)
	}
	ec := DefaultEval()
	ec.SampleEvery = 0
	ec.PWM = false
	var fanOnly RunResult
	var coord dvfs.RunResult
	for i := 0; i < b.N; i++ {
		w, err := workload.ByID(4, 42)
		if err != nil {
			b.Fatal(err)
		}
		lc, err := control.NewLUT(fanTable, control.DefaultLUT())
		if err != nil {
			b.Fatal(err)
		}
		fanOnly, err = experiments.RunControlled(cfg, w.Profile, lc, ec)
		if err != nil {
			b.Fatal(err)
		}
		coord, err = dvfs.Run(cfg, coordTable, w.Profile, dvfs.DefaultRun())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fanOnly.EnergyKWh*1000, "fanOnlyWh")
	b.ReportMetric(coord.EnergyKWh*1000, "coordWh")
	b.ReportMetric(100*(fanOnly.EnergyKWh-coord.EnergyKWh)/fanOnly.EnergyKWh, "extraSavPct")
	b.ReportMetric(coord.MinFreq, "minFreqScale")
	b.ReportMetric(coord.MaxTempC, "coordMaxTempC")
}

// BenchmarkExtensionReliability analyzes the Fig. 3 temperature traces with
// the Arrhenius + Coffin-Manson reliability models: the LUT's steadier
// trace should accumulate less cycling damage than bang-bang's.
func BenchmarkExtensionReliability(b *testing.B) {
	cfg := T3Config()
	series, err := Fig3(cfg, 42, DefaultEval())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	reports := map[string]reliability.Report{}
	for i := 0; i < b.N; i++ {
		for _, s := range series {
			rep, err := reliability.Analyze(s.Y)
			if err != nil {
				b.Fatal(err)
			}
			reports[s.Name] = rep
		}
	}
	b.ReportMetric(reports["LUT"].CyclingDamage, "lutDamage")
	b.ReportMetric(reports["Bang-bang"].CyclingDamage, "bangDamage")
	b.ReportMetric(reports["Default"].CyclingDamage, "defaultDamage")
	b.ReportMetric(reports["LUT"].Acceleration, "lutArrhenius")
	b.ReportMetric(reports["Bang-bang"].Acceleration, "bangArrhenius")
}

// --------------------------------------------------------------------------
// Microbenchmarks of the substrates

// BenchmarkServerStep measures one 1-second simulation step of the full
// composite server.
func BenchmarkServerStep(b *testing.B) {
	srv, err := NewServer(T3Config())
	if err != nil {
		b.Fatal(err)
	}
	srv.SetLoad(70)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Step(1)
	}
}

// BenchmarkServerStepRK4 is the pre-optimization baseline: the same step
// integrated with the fixed-step RK4 fallback at the original 0.5 s bound.
// Compare against BenchmarkServerStep for the exact-propagator speedup.
func BenchmarkServerStepRK4(b *testing.B) {
	cfg := T3Config()
	cfg.ThermalIntegrator = thermal.IntegratorRK4
	srv, err := NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv.SetLoad(70)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Step(1)
	}
}

// --------------------------------------------------------------------------
// Rack-scale simulation (internal/rack + internal/sched)

// rackOf builds an n-server heterogeneous rack with no fan controllers —
// the pure stepping substrate — at a fixed 70% load. The per-slot
// configurations come from experiments.RackServerConfigs, so the bench
// measures the same rack the policy-comparison experiment runs.
func rackOf(b *testing.B, n, workers int) *rack.Rack {
	b.Helper()
	cfgs := experiments.RackServerConfigs(T3Config(), n)
	specs := make([]rack.ServerSpec, n)
	for i := range specs {
		specs[i] = rack.ServerSpec{Config: cfgs[i]}
	}
	r, err := rack.New(rack.Config{Servers: specs, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r.SetLoad(i, 70)
	}
	return r
}

// BenchmarkRackStep measures one 1-second step of the whole rack across
// rack sizes. On the exact-integrator path each server's step is one
// cached matvec, so ns/op must scale near-linearly in server count
// (compare the servers=1/4/16/64 sub-benchmarks; per-server cost is
// ns/op ÷ servers).
func BenchmarkRackStep(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			r := rackOf(b, n, 1) // serial: isolates per-server step cost from pool scheduling
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Step(1)
			}
			b.ReportMetric(float64(n), "servers")
		})
	}
}

// BenchmarkRackStepParallel is BenchmarkRackStep/servers=16 with the
// fan-out enabled — the wall-clock win on multicore hosts.
func BenchmarkRackStepParallel(b *testing.B) {
	r := rackOf(b, 16, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(1)
	}
}

// benchRackTrace regenerates the rack policy-comparison experiment — the
// five placement policies over the default Poisson trace — and reports
// the headline energies plus the rack-step count of the selected kernel.
func benchRackTrace(b *testing.B, eventStepping, metrics bool, rateScale float64) {
	base := T3Config()
	ev := experiments.DefaultRackEval()
	ev.EventStepping = eventStepping
	ev.Rate *= rateScale
	var rows []experiments.RackPolicyResult
	for i := 0; i < b.N; i++ {
		if metrics {
			// Fresh registry per iteration, like a real instrumented run;
			// its cost is what the CI overhead gate bounds.
			ev.Metrics = obs.NewRegistry()
		}
		var err error
		rows, err = experiments.RackPolicyComparison(base, ev)
		if err != nil {
			b.Fatal(err)
		}
	}
	steps := 0
	for _, r := range rows {
		steps += r.Sched.RackSteps
		switch r.Policy {
		case "round-robin":
			b.ReportMetric(r.TotalWh(), "roundRobinWh")
		case "coolest-first":
			b.ReportMetric(r.TotalWh(), "coolestWh")
		case "leakage-aware":
			b.ReportMetric(r.TotalWh(), "leakageAwareWh")
			b.ReportMetric(float64(r.Rack.FanChanges), "leakageAwareFanChanges")
		}
	}
	b.ReportMetric(float64(steps), "rackSteps")
}

// BenchmarkRackTrace is the headline trace benchmark on the event-driven
// kernel (PR 5): wall-clock scales with the number of scheduling events,
// not horizon/dt. Compare against BenchmarkRackTraceFixed for the
// macro-stepping speedup; physics metrics agree within 1e-6 relative
// (asserted by TestEventSteppingSmoke).
func BenchmarkRackTrace(b *testing.B) { benchRackTrace(b, true, false, 1) }

// BenchmarkRackTraceFixed is the fixed-dt reference path of the same
// experiment — the pre-PR 5 baseline, bit-identical to PR 4's metrics.
func BenchmarkRackTraceFixed(b *testing.B) { benchRackTrace(b, false, false, 1) }

// BenchmarkRackTraceSaturated is the event kernel on the overloaded
// variant of the same trace (4× the default arrival rate ≈ 1.2× rack
// capacity, the TestEventSteppingSmoke saturated shape): before PR 8 the
// never-draining backlog pinned every policy to fixed-dt stepping; with
// the load-only refusal un-pin the load-only policies macro-step
// completion-to-completion, so this benchmark tracks the kernel's
// saturated-regime cost alongside the drained-queue headline above.
func BenchmarkRackTraceSaturated(b *testing.B) { benchRackTrace(b, true, false, 4) }

// BenchmarkRackTraceSaturatedFixed is the fixed-dt reference of the
// saturated trace — the denominator of the PR 8 collapse claim.
func BenchmarkRackTraceSaturatedFixed(b *testing.B) { benchRackTrace(b, false, false, 4) }

// BenchmarkRackTraceMetrics is BenchmarkRackTrace with a live obs
// registry attached to every cell: the full pin-reason/macro-window/
// scheduler instrumentation on the hot path. CI gates its ns/op within
// 5% of the nil-registry baseline — the "observability is free enough
// to leave on" contract.
func BenchmarkRackTraceMetrics(b *testing.B) { benchRackTrace(b, true, true, 1) }

// BenchmarkRackStepWall is BenchmarkRackStep/servers=16 with the full
// power-delivery chain attached (per-server PSU + shared PDU): the wall
// roll-up is a per-step serial reduction, so its overhead over the plain
// DC step bounds what AC accounting costs.
func BenchmarkRackStepWall(b *testing.B) {
	n := 16
	cfgs := experiments.RackServerConfigs(T3Config(), n)
	psu, pdu := power.DefaultPSU(), power.DefaultPDU()
	specs := make([]rack.ServerSpec, n)
	for i := range specs {
		specs[i] = rack.ServerSpec{Config: cfgs[i]}
	}
	r, err := rack.New(rack.Config{Servers: specs, Workers: 1, PSU: &psu, PDU: &pdu})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r.SetLoad(i, 70)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(1)
	}
	b.ReportMetric(float64(r.WallPower()), "wallW")
	b.ReportMetric(float64(r.DCPower()), "dcW")
}

// BenchmarkRackACTrace regenerates the AC-side rack experiment — five
// policies, uncapped and capped halves, PSU/PDU losses at the wall — on
// the event-driven kernel, and reports the headline wall-side quantities.
// (The capped half pins the kernel to fixed-dt while placements defer, so
// its speedup is smaller than the uncapped trace's.)
func BenchmarkRackACTrace(b *testing.B) {
	base := T3Config()
	ev := experiments.DefaultRackEval()
	ev.EventStepping = true
	psu, pdu := power.DefaultPSU(), power.DefaultPDU()
	ev.PSU, ev.PDU = &psu, &pdu
	var res *experiments.RackACResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RackACComparison(base, ev)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CapW, "autoCapW")
	for _, r := range res.Uncapped {
		switch r.Policy {
		case "round-robin":
			b.ReportMetric(r.WallWh(), "roundRobinWallWh")
			b.ReportMetric(r.LossWh(), "roundRobinLossWh")
		case "cap-aware":
			b.ReportMetric(r.WallWh(), "capAwareWallWh")
		}
	}
	for _, r := range res.Capped {
		if r.Policy == "cap-aware" {
			b.ReportMetric(float64(r.Sched.Deferrals), "capAwareDeferrals")
			b.ReportMetric(r.Rack.PeakWallPowerW, "capAwareCappedPeakWallW")
		}
	}
}

// BenchmarkRackStepFacility is BenchmarkRackStepWall with the CRAC/chiller
// loop attached on top of the delivery chain: the facility roll-up is two
// scalar model evaluations per step, so its overhead over the wall step
// bounds what total-facility accounting costs.
func BenchmarkRackStepFacility(b *testing.B) {
	n := 16
	cfgs := experiments.RackServerConfigs(T3Config(), n)
	psu, pdu := power.DefaultPSU(), power.DefaultPDU()
	fac := cooling.DefaultFacility(22)
	specs := make([]rack.ServerSpec, n)
	for i := range specs {
		specs[i] = rack.ServerSpec{Config: cfgs[i]}
	}
	r, err := rack.New(rack.Config{Servers: specs, Workers: 1, PSU: &psu, PDU: &pdu, Facility: &fac})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r.SetLoad(i, 70)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(1)
	}
	b.ReportMetric(float64(r.CoolingPower()), "coolingW")
	b.ReportMetric(r.PUE(), "pue")
}

// BenchmarkRackFacilityTrace regenerates the facility sweep — six
// policies × three cold-aisle setpoints with the CRAC/chiller loop — on
// the event-driven kernel, and reports the headline facility quantities,
// including the sweet-spot setpoint the sweep exists to find.
func BenchmarkRackFacilityTrace(b *testing.B) {
	base := T3Config()
	fe := experiments.DefaultFacilityEval()
	fe.Rack.EventStepping = true
	var rows []experiments.FacilityPolicyResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RackFacilityComparison(base, fe)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Policy == "pue-aware" && r.SetpointC == float64(fe.SetpointsC[0]) {
			b.ReportMetric(r.Rack.PUE, "pueAwareColdPUE")
		}
	}
	sp, wh, err := experiments.FacilitySweetSpot(rows, "pue-aware")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(sp, "sweetSpotC")
	b.ReportMetric(wh, "sweetSpotFacilityWh")
}

// BenchmarkRackFaultTrace runs the full fault-scenario × policy
// degradation catalogue (event-stepped). Reported metrics are the cascade
// scenario's disruption bill under round-robin: requeues, destroyed
// job-seconds and surviving servers.
func BenchmarkRackFaultTrace(b *testing.B) {
	base := T3Config()
	fe := experiments.DefaultFaultEval()
	fe.Rack.EventStepping = true
	var rows []experiments.RackFaultResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RackFaultComparison(base, fe)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Scenario == "cascade" && r.Policy == "round-robin" {
			b.ReportMetric(float64(r.Sched.Requeued), "cascadeRequeued")
			b.ReportMetric(r.Sched.LostJobSeconds, "cascadeLostJobSec")
			b.ReportMetric(float64(r.HealthyAtEnd), "cascadeSurvivors")
		}
	}
}

// BenchmarkSteadyTemp measures the analytic steady-state solve.
func BenchmarkSteadyTemp(b *testing.B) {
	cfg := T3Config()
	for i := 0; i < b.N; i++ {
		if _, err := SteadyTemp(cfg, 75, 2400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLUTLookup measures one controller table lookup.
func BenchmarkLUTLookup(b *testing.B) {
	table, err := lut.Build(T3Config(), lut.DefaultBuild())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.Lookup(units.Percent(i % 101)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMMCQueue measures the Test-4 M/M/c queueing simulation.
func BenchmarkMMCQueue(b *testing.B) {
	cfg := workload.DefaultShellConfig()
	for i := 0; i < b.N; i++ {
		if _, err := workload.SimulateMMC(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadGenPWM measures LoadGen's duty-cycle evaluation.
func BenchmarkLoadGenPWM(b *testing.B) {
	gen, err := loadgen.New(loadgen.Constant{Level: 40}, loadgen.WithPWMPeriod(30))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Load(float64(i) * 0.5)
	}
}

// --------------------------------------------------------------------------
// Room-scale simulation (internal/room)

// roomOf builds a racks×servers room — the rackOf substrate replicated
// behind the shared default CRAC bank with the neighbor recirculation
// coupling — at a fixed 70% load. Serial workers isolate per-server step
// cost; the room's own overhead (recirc re-anchor, shared-bank COP, the
// cross-rack reductions) is what BenchmarkRoomStep charges on top of
// BenchmarkRackStep.
func roomOf(b *testing.B, racks, servers, workers int) *room.Room {
	b.Helper()
	fac := cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC)
	specs := make([]room.RackSpec, racks)
	for r := range specs {
		cfgs := experiments.RackServerConfigs(T3Config(), servers)
		srv := make([]rack.ServerSpec, servers)
		for i := range srv {
			srv[i] = rack.ServerSpec{Config: cfgs[i]}
		}
		specs[r] = room.RackSpec{
			Name:   fmt.Sprintf("rack%02d", r),
			Config: rack.Config{Servers: srv},
		}
	}
	rm, err := room.New(room.Config{
		Racks:    specs,
		Workers:  workers,
		Recirc:   room.NeighborMatrix(racks),
		Facility: &fac,
	})
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < racks; r++ {
		for i := 0; i < servers; i++ {
			rm.Rack(r).SetLoad(i, 70)
		}
	}
	return rm
}

// BenchmarkRoomStep measures one 1-second step of a whole room across room
// sizes, 16 servers per rack. Per-server cost is ns/op ÷ servers; the
// acceptance gate holds it within 1.3× of BenchmarkRackStep's per-server
// cost from 1 to 16 racks — the room layer (recirculation, shared CRAC,
// serial reductions) must stay a thin wrapper around rack stepping.
func BenchmarkRoomStep(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("racks=%d", n), func(b *testing.B) {
			rm := roomOf(b, n, 16, 1) // serial: isolates per-server cost from pool scheduling
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rm.Step(1)
			}
			b.ReportMetric(float64(n), "racks")
			b.ReportMetric(float64(n*16), "servers")
		})
	}
}

// BenchmarkRoomStepParallel is BenchmarkRoomStep/racks=16 with the
// per-rack fan-out enabled — the wall-clock win on multicore hosts.
func BenchmarkRoomStepParallel(b *testing.B) {
	rm := roomOf(b, 16, 16, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rm.Step(1)
	}
}

// BenchmarkRoomTrace regenerates the round-robin cell of the room
// policy-comparison experiment at datacenter scale — 16 racks × 64 servers
// on the event kernel — and reports the headline energies plus simPerWall,
// simulated seconds per wall-clock second (settle + measured trace over
// elapsed time). The acceptance gate is simPerWall > 1: a 1024-server room
// must simulate faster than real time, LUT builds included.
func BenchmarkRoomTrace(b *testing.B) {
	ev := experiments.DefaultRoomEval()
	ev.Racks = 16
	ev.Servers = 64
	ev.Rate *= 32 // hold per-server offered load at the 4×8 default
	ev.Policy = "rr"
	ev.EventStepping = true
	var rows []experiments.RoomPolicyResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RoomPolicyComparison(T3Config(), ev)
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[0]
	steps := 0
	for _, st := range r.Sched.Kernel {
		steps += st.Advances
	}
	b.ReportMetric(float64(r.Room.Servers), "servers")
	b.ReportMetric(r.WallWh(), "wallWh")
	b.ReportMetric(r.FacilityWh(), "facilityWh")
	b.ReportMetric(float64(steps), "rackSteps")
	simSeconds := (ev.Stabilize + ev.Horizon) * float64(b.N)
	if wall := b.Elapsed().Seconds(); wall > 0 {
		b.ReportMetric(simSeconds/wall, "simPerWall")
	}
}

func fmtSeconds(s float64) string { return strconv.FormatFloat(s, 'g', -1, 64) + "s" }

func fmtCelsius(c units.Celsius) string {
	return strconv.FormatFloat(float64(c), 'g', -1, 64) + "C"
}
