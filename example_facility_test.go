package leakctl_test

import (
	"fmt"
	"math"

	leakctl "repro"
)

// ExampleFacility attaches the CRAC/chiller cooling loop to a rack and
// shows the facility-side telemetry it adds: every wall Watt returns as
// room heat removed at a load- and setpoint-dependent cost, so the
// facility bill decomposes into wall energy plus cooling energy and the
// PUE sits above 1. Raising the cold-aisle setpoint makes the chiller
// cheaper per Watt but shifts every server's ambient up — the paper's
// fan-vs-leakage tradeoff at facility scope.
func ExampleFacility() {
	build := func(supplyC leakctl.Celsius) *leakctl.Rack {
		psu, pdu := leakctl.DefaultPSU(), leakctl.DefaultPDU()
		fac := leakctl.DefaultFacility(supplyC)
		r, err := leakctl.NewRack(leakctl.RackConfig{
			Servers: []leakctl.RackServerSpec{
				{Config: leakctl.T3Config()},
				{Config: leakctl.T3Config()},
			},
			Workers:  1,
			PSU:      &psu,
			PDU:      &pdu,
			Facility: &fac,
		})
		if err != nil {
			panic(err)
		}
		r.SetLoad(0, 60)
		r.SetLoad(1, 60)
		for s := 0; s < 600; s++ {
			r.Step(1)
		}
		return r
	}

	ref := build(leakctl.DefaultCRAC().ReferenceC) // identity on ambients
	warm := build(leakctl.DefaultCRAC().ReferenceC + 8)

	tel := ref.Telemetry()
	sum := tel.WallEnergyKWh + tel.CoolingEnergyKWh
	fmt.Printf("facility = wall + cooling: %v\n", tel.FacilityEnergyKWh > 0 && math.Abs(tel.FacilityEnergyKWh-sum) < 1e-12)
	fmt.Printf("PUE above 1: %v\n", tel.PUE > 1)
	warmTel := warm.Telemetry()
	fmt.Printf("warmer aisle cuts cooling energy: %v\n", warmTel.CoolingEnergyKWh < tel.CoolingEnergyKWh)
	fmt.Printf("warmer aisle heats the servers: %v\n", warmTel.MaxCPUTempC > tel.MaxCPUTempC)
	// Output:
	// facility = wall + cooling: true
	// PUE above 1: true
	// warmer aisle cuts cooling energy: true
	// warmer aisle heats the servers: true
}
