// Package leakctl is a Go reproduction of "Leakage and Temperature Aware
// Server Control for Improving Energy Efficiency in Data Centers"
// (Zapater et al., DATE 2013).
//
// It provides, as one library:
//
//   - a calibrated simulation of the paper's instrumented SPARC T3-2 class
//     enterprise server (two-node RC thermal model per socket, the paper's
//     own fitted power model as ground truth, six externally powered fans,
//     CSTH-style telemetry, LoadGen-style PWM load synthesis);
//   - the Section IV methodology: characterization sweeps and the
//     leakage-model fit Pcpu = k1·U + C + k2·e^(k3·T);
//   - the Section V controllers: the LUT-based proactive fan controller
//     (the paper's contribution), the bang-bang thermal baseline, and the
//     fixed-speed default;
//   - the full evaluation harness regenerating Figures 1-3 and Table I.
//
// The quickest way in:
//
//	res, err := leakctl.RunPipeline(leakctl.DefaultPipeline())
//	// res.Fit holds k1, C, k2, k3; res.Controller is ready to deploy.
//
// or run a controller against a workload:
//
//	cfg := leakctl.T3Config()
//	rows, err := leakctl.TableI(cfg, 42, leakctl.DefaultEval())
//
// This package is a facade; the implementation lives in the internal
// packages (server, thermal, power, fans, cpu, mem, telemetry, loadgen,
// workload, fitting, lut, control, experiments).
package leakctl

import (
	"io"

	"repro/internal/control"
	"repro/internal/cooling"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/fitting"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/plot"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/reliability"
	"repro/internal/room"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/thermal"
	"repro/internal/units"
	"repro/internal/workload"
)

// Physical quantity types.
type (
	// Celsius is a temperature in °C.
	Celsius = units.Celsius
	// Watts is an instantaneous power.
	Watts = units.Watts
	// Joules is an energy.
	Joules = units.Joules
	// RPM is a fan speed.
	RPM = units.RPM
	// Percent is a utilization level in [0, 100].
	Percent = units.Percent
)

// Server simulation.
type (
	// Server is the simulated enterprise server.
	Server = server.Server
	// ServerConfig parameterizes the simulated server.
	ServerConfig = server.Config
	// ThermalIntegrator selects the RC network stepping scheme via
	// ServerConfig.ThermalIntegrator.
	ThermalIntegrator = thermal.Integrator
)

// Thermal integrator choices. The exact propagator is the default (zero
// value); RK4 is the fixed-step fallback kept as ground truth.
const (
	IntegratorExact = thermal.IntegratorExact
	IntegratorRK4   = thermal.IntegratorRK4
)

// T3Config returns the calibrated reproduction of the paper's SPARC T3-2
// class server.
func T3Config() ServerConfig { return server.T3Config() }

// NewServer builds a simulated server.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// SteadyTemp predicts the equilibrium CPU temperature at a utilization and
// fan speed; it errors on thermally unstable (runaway) operating points.
func SteadyTemp(cfg ServerConfig, u Percent, r RPM) (Celsius, error) {
	return server.SteadyTemp(cfg, u, r)
}

// Controllers.
type (
	// Controller is the fan-control policy interface.
	Controller = control.Controller
	// Observation is a controller's view of the machine at one instant.
	Observation = control.Observation
	// Decision is a controller's output.
	Decision = control.Decision
	// LUTController is the paper's proactive utilization-indexed policy.
	LUTController = control.LUT
	// BangBangController is the reactive thermal baseline.
	BangBangController = control.BangBang
	// DefaultController pins the fans at the stock fixed speed.
	DefaultController = control.Default
	// LUTConfig tunes the LUT controller.
	LUTConfig = control.LUTConfig
	// BangBangConfig tunes the bang-bang controller.
	BangBangConfig = control.BangBangConfig
)

// NewDefaultController returns the stock fixed-3300-RPM policy.
func NewDefaultController() *DefaultController { return control.NewDefault() }

// NewBangBangController returns the five-action thermal controller.
func NewBangBangController(cfg BangBangConfig) (*BangBangController, error) {
	return control.NewBangBang(cfg)
}

// NewLUTController returns the paper's LUT controller over a built table.
func NewLUTController(t *LUTTable, cfg LUTConfig) (*LUTController, error) {
	return control.NewLUT(t, cfg)
}

// DefaultBangBang returns the paper's bang-bang thresholds (60/65/75/80 °C).
func DefaultBangBang() BangBangConfig { return control.DefaultBangBang() }

// DefaultLUT returns the paper's 1 s polling / 60 s hold-off configuration.
func DefaultLUT() LUTConfig { return control.DefaultLUT() }

// Lookup table.
type (
	// LUTTable is the utilization → optimal fan speed table.
	LUTTable = lut.Table
	// LUTEntry is one row of the table.
	LUTEntry = lut.Entry
	// LUTBuildConfig controls table generation.
	LUTBuildConfig = lut.BuildConfig
)

// BuildLUT generates a lookup table from a server configuration.
func BuildLUT(cfg ServerConfig, b LUTBuildConfig) (*LUTTable, error) { return lut.Build(cfg, b) }

// DefaultLUTBuild returns the paper's grid and 75 °C cap.
func DefaultLUTBuild() LUTBuildConfig { return lut.DefaultBuild() }

// ReadLUT deserializes a table written with Table.WriteJSON.
func ReadLUT(r io.Reader) (*LUTTable, error) { return lut.ReadJSON(r) }

// LUTDiskCache caches built tables on disk keyed by config hash, so
// repeated processes skip identical steady-state grids. The zero value
// builds directly.
type LUTDiskCache = lut.DiskCache

// Model fitting (Section IV).
type (
	// FitResult is the recovered leakage/active power model.
	FitResult = fitting.FitResult
	// Dataset is the characterization telemetry.
	Dataset = fitting.Dataset
	// SweepConfig controls the characterization campaign.
	SweepConfig = fitting.SweepConfig
)

// DefaultSweep returns the paper's Section IV sweep.
func DefaultSweep() SweepConfig { return fitting.DefaultSweep() }

// Characterize runs the sweep against fresh simulated servers.
func Characterize(cfg ServerConfig, sweep SweepConfig) (*Dataset, error) {
	return fitting.Collect(func() (*Server, error) { return server.New(cfg) }, sweep)
}

// FitLeakage fits Pcpu = k1·U + C + k2·e^(k3·T) to a dataset.
func FitLeakage(ds *Dataset) (FitResult, error) { return fitting.FitLeakage(ds) }

// End-to-end pipeline.
type (
	// Pipeline bundles every stage configuration.
	Pipeline = core.PipelineConfig
	// PipelineResult carries all pipeline artifacts.
	PipelineResult = core.PipelineResult
)

// DefaultPipeline returns the paper's configuration end to end.
func DefaultPipeline() Pipeline { return core.DefaultPipeline() }

// RunPipeline characterizes, fits, builds the LUT and constructs the
// controller in one call.
func RunPipeline(cfg Pipeline) (*PipelineResult, error) { return core.Run(cfg) }

// Workloads.
type (
	// Profile is a utilization-over-time workload.
	Profile = loadgen.Profile
	// NamedWorkload is a Table I test with its id and name.
	NamedWorkload = workload.Named
	// QueueConfig parameterizes the Test-4 M/M/c shell workload.
	QueueConfig = workload.QueueConfig
)

// TestWorkloads builds the paper's four 80-minute Table I tests.
func TestWorkloads(seed int64) ([]NamedWorkload, error) { return workload.AllTests(seed) }

// Evaluation harness.
type (
	// EvalConfig controls a controller run.
	EvalConfig = experiments.EvalConfig
	// RunResult carries every Table I column for one run.
	RunResult = experiments.RunResult
	// TableIRow compares the three controllers on one test.
	TableIRow = experiments.TableIRow
	// TransientResult is a Fig. 1 temperature trajectory.
	TransientResult = experiments.TransientResult
	// TradeoffCurve is a Fig. 2 fan/leakage tradeoff series.
	TradeoffCurve = experiments.TradeoffCurve
	// Series is a plottable line.
	Series = plot.Series
	// Chart is a multi-series ASCII chart.
	Chart = plot.Chart
)

// DefaultEval returns the standard Table I run configuration.
func DefaultEval() EvalConfig { return experiments.DefaultEval() }

// RunControlled evaluates one controller on one workload.
func RunControlled(cfg ServerConfig, prof Profile, ctrl Controller, ec EvalConfig) (RunResult, error) {
	return experiments.RunControlled(cfg, prof, ctrl, ec)
}

// TableI reproduces the paper's Table I, fanning the controller×workload
// runs out over all cores.
func TableI(cfg ServerConfig, seed int64, ec EvalConfig) ([]TableIRow, error) {
	return experiments.TableI(cfg, seed, ec)
}

// TableIParallel is TableI with an explicit worker bound (≤ 0 = GOMAXPROCS,
// 1 = the serial reference path). Rows are identical for every worker count.
func TableIParallel(cfg ServerConfig, seed int64, ec EvalConfig, workers int) ([]TableIRow, error) {
	return experiments.TableIParallel(cfg, seed, ec, workers)
}

// FormatTableI renders Table I rows as text.
func FormatTableI(w io.Writer, rows []TableIRow) error {
	return experiments.FormatTableI(w, rows)
}

// Fig1a regenerates Figure 1(a): transients at 100% load across fan speeds.
func Fig1a(cfg ServerConfig, rpms []RPM) ([]TransientResult, error) {
	return experiments.Fig1a(cfg, rpms)
}

// Fig1b regenerates Figure 1(b): transients at 1800 RPM across loads.
func Fig1b(cfg ServerConfig, utils []Percent) ([]TransientResult, error) {
	return experiments.Fig1b(cfg, utils)
}

// Fig2a regenerates Figure 2(a): the fan/leakage tradeoff at 100% load.
func Fig2a(cfg ServerConfig) (TradeoffCurve, error) { return experiments.Fig2a(cfg) }

// Fig2b regenerates Figure 2(b): tradeoff curves across utilization levels.
func Fig2b(cfg ServerConfig) ([]TradeoffCurve, error) { return experiments.Fig2b(cfg) }

// Fig3 regenerates Figure 3: Test-3 temperature traces per controller.
func Fig3(cfg ServerConfig, seed int64, ec EvalConfig) ([]Series, error) {
	return experiments.Fig3(cfg, seed, ec)
}

// Rack-scale simulation and thermal-aware job scheduling.
type (
	// Rack is a set of heterogeneous simulated servers stepped in lockstep
	// over the bounded worker pool.
	Rack = rack.Rack
	// RackConfig parameterizes a Rack.
	RackConfig = rack.Config
	// RackServerSpec configures one rack slot (config, fan controller and
	// optional power supply).
	RackServerSpec = rack.ServerSpec
	// RackTelemetry is the rack-level aggregate view, DC and wall side.
	RackTelemetry = rack.Telemetry
	// Job is one schedulable unit of rack work.
	Job = sched.Job
	// PlacementPolicy decides which server runs a job.
	PlacementPolicy = sched.Policy
	// ServerView is a placement policy's telemetry snapshot of one server.
	ServerView = sched.ServerView
	// SchedResult summarizes a trace run's scheduling outcome.
	SchedResult = sched.Result
	// TraceConfig parameterizes a job-trace run (step, window, wall cap).
	TraceConfig = sched.TraceConfig
	// JobSpec is one job of a loadgen-synthesized trace.
	JobSpec = loadgen.JobSpec
	// PoissonTraceConfig parameterizes the Poisson job-trace generator.
	PoissonTraceConfig = loadgen.PoissonTraceConfig
	// RackEval parameterizes the rack policy-comparison experiment.
	RackEval = experiments.RackEval
	// RackPolicyResult is one row of the policy×metric comparison.
	RackPolicyResult = experiments.RackPolicyResult
	// RackACResult is the AC-side comparison: uncapped and capped halves.
	RackACResult = experiments.RackACResult
	// FacilityEval parameterizes the policy × cold-aisle-setpoint sweep.
	FacilityEval = experiments.FacilityEval
	// FacilityPolicyResult is one row of the policy×setpoint table.
	FacilityPolicyResult = experiments.FacilityPolicyResult
)

// Power-delivery chain (PSU per server, shared PDU, wall-side telemetry).
type (
	// PSUModel converts a server's DC draw to AC input through a
	// load-dependent efficiency curve.
	PSUModel = power.PSUModel
	// PDUModel is the shared rack-level distribution unit feeding every
	// PSU from the utility wall.
	PDUModel = power.PDUModel
)

// DefaultPSU returns the 94%-asymptote server supply model.
func DefaultPSU() PSUModel { return power.DefaultPSU() }

// DefaultPDU returns the 98%-asymptote rack distribution model.
func DefaultPDU() PDUModel { return power.DefaultPDU() }

// Facility cooling loop (CRAC supply/return air + chiller COP chain).
type (
	// CRACModel is the room air handler: cold-aisle supply setpoint,
	// air-transport (blower) cost, return-air telemetry.
	CRACModel = cooling.CRACModel
	// ChillerModel removes the collected heat at COP = COP0·f(load,
	// outdoor), improving with a warmer supply setpoint.
	ChillerModel = cooling.ChillerModel
	// Facility is the assembled CRAC+chiller loop a rack attaches via
	// RackConfig.Facility: every wall Watt becomes room heat removed at a
	// load- and setpoint-dependent cost, and the setpoint shifts every
	// server's ambient relative to the reference supply temperature.
	Facility = cooling.Facility
)

// DefaultCRAC returns the reference room unit (18 °C supply reference, 5%
// blower cost).
func DefaultCRAC() CRACModel { return cooling.DefaultCRAC() }

// DefaultChiller returns the COP-4.5 water-cooled chiller model.
func DefaultChiller() ChillerModel { return cooling.DefaultChiller() }

// DefaultFacility returns the default CRAC/chiller pair with the cold
// aisle at the given supply setpoint.
func DefaultFacility(supplyC Celsius) Facility { return cooling.DefaultFacility(supplyC) }

// NewRack builds a rack of simulated servers.
func NewRack(cfg RackConfig) (*Rack, error) { return rack.New(cfg) }

// PoissonJobTrace synthesizes a seeded Poisson job trace.
func PoissonJobTrace(cfg PoissonTraceConfig) ([]JobSpec, error) { return loadgen.PoissonTrace(cfg) }

// JobsFromSpecs converts a loadgen job trace into scheduler jobs.
func JobsFromSpecs(specs []JobSpec) []Job { return sched.JobsFromSpecs(specs) }

// RunJobTrace drives a rack through a job trace under a placement policy.
func RunJobTrace(r *Rack, jobs []Job, p PlacementPolicy, dt, horizon float64) (SchedResult, error) {
	return sched.RunTrace(r, jobs, p, dt, horizon)
}

// RunJobTraceCfg is RunJobTrace with the full trace configuration,
// including the rack-level wall-power cap under which placements that
// would breach the budget are deferred.
func RunJobTraceCfg(r *Rack, jobs []Job, p PlacementPolicy, tc TraceConfig) (SchedResult, error) {
	return sched.RunTraceCfg(r, jobs, p, tc)
}

// NewRoundRobinPolicy returns the rotating placement baseline.
func NewRoundRobinPolicy() PlacementPolicy { return sched.NewRoundRobin() }

// NewLeastUtilizedPolicy returns the load-balancing placement policy.
func NewLeastUtilizedPolicy() PlacementPolicy { return sched.NewLeastUtilized() }

// NewCoolestFirstPolicy returns the reactive thermal placement policy.
func NewCoolestFirstPolicy() PlacementPolicy { return sched.NewCoolestFirst() }

// NewLeakageAwarePolicy returns the proactive policy that places each job
// where the predicted marginal leakage+fan power is lowest, precomputing
// per-server cost curves with the paper's LUT machinery.
func NewLeakageAwarePolicy(cfgs []ServerConfig, build LUTBuildConfig) (PlacementPolicy, error) {
	return sched.NewLeakageAware(cfgs, build)
}

// NewCapAwarePolicy returns the wall-power-aware policy: the leakage-aware
// marginal cost lifted through each slot's PSU efficiency curve, so jobs
// go where the predicted marginal *wall* power is lowest. psus may be nil
// (ideal supplies) or one entry per slot.
func NewCapAwarePolicy(cfgs []ServerConfig, psus []*PSUModel, build LUTBuildConfig) (PlacementPolicy, error) {
	return sched.NewCapAware(cfgs, psus, build)
}

// NewPUEAwarePolicy returns the facility-aware policy: per-slot cost
// tables rebuilt at the ambients the CRAC setpoint actually supplies, and
// each placement ranked by its predicted marginal facility power — the
// marginal wall power plus the CRAC/chiller power removing it as heat.
func NewPUEAwarePolicy(cfgs []ServerConfig, psus []*PSUModel, fac Facility, build LUTBuildConfig) (PlacementPolicy, error) {
	return sched.NewPUEAware(cfgs, psus, fac, build)
}

// DefaultRackEval returns the standard 8-server rack comparison setup.
func DefaultRackEval() RackEval { return experiments.DefaultRackEval() }

// RackPolicyComparison runs one Poisson trace across all five placement
// policies on identical heterogeneous racks.
func RackPolicyComparison(base ServerConfig, ev RackEval) ([]RackPolicyResult, error) {
	return experiments.RackPolicyComparison(base, ev)
}

// RackACComparison runs the AC-side experiment: all five policies, first
// uncapped and then under the rack wall-power budget, with PSU/PDU
// conversion losses accounted at the wall.
func RackACComparison(base ServerConfig, ev RackEval) (*RackACResult, error) {
	return experiments.RackACComparison(base, ev)
}

// DefaultFacilityEval returns the standard policy × cold-aisle-setpoint
// sweep configuration.
func DefaultFacilityEval() FacilityEval { return experiments.DefaultFacilityEval() }

// RackFacilityComparison sweeps every placement policy across cold-aisle
// supply setpoints with the CRAC/chiller loop attached: the cold end
// overpays the chiller, the warm end overpays server fans and leakage,
// and total facility energy is minimized at an interior setpoint.
func RackFacilityComparison(base ServerConfig, fe FacilityEval) ([]FacilityPolicyResult, error) {
	return experiments.RackFacilityComparison(base, fe)
}

// FacilitySweetSpot returns the setpoint with the lowest facility energy
// among a policy's rows of a facility comparison.
func FacilitySweetSpot(rows []FacilityPolicyResult, policy string) (setpointC, facilityWh float64, err error) {
	return experiments.FacilitySweetSpot(rows, policy)
}

// FormatRackFacilityTable renders the policy×setpoint facility table.
func FormatRackFacilityTable(w io.Writer, rows []FacilityPolicyResult) error {
	return experiments.FormatRackFacilityTable(w, rows)
}

// FormatRackTable renders the policy×metric comparison table.
func FormatRackTable(w io.Writer, rows []RackPolicyResult) error {
	return experiments.FormatRackTable(w, rows)
}

// FormatRackACTable renders the AC-side (wall power) comparison table.
func FormatRackACTable(w io.Writer, res *RackACResult) error {
	return experiments.FormatRackACTable(w, res)
}

// Fault injection and graceful degradation.
type (
	// FaultKind enumerates the fault taxonomy (fan, PSU, trip, ambient,
	// facility faults).
	FaultKind = fault.Kind
	// FaultEvent is one scheduled fault: a kind, its target, an inject
	// time and an optional clear time.
	FaultEvent = fault.Event
	// FaultSchedule is a deterministic fault plan attached to a trace run
	// via TraceConfig.Faults.
	FaultSchedule = fault.Schedule
	// ServerHealth is the scheduler-facing state of one rack slot
	// (healthy, tripped, or failed/dark).
	ServerHealth = rack.Health
	// FaultEval parameterizes the fault-scenario × policy comparison.
	FaultEval = experiments.FaultEval
	// FaultScenario is one named schedule of the degradation catalogue.
	FaultScenario = experiments.FaultScenario
	// RackFaultResult is one row of the scenario×policy table.
	RackFaultResult = experiments.RackFaultResult
)

// Fault kinds (see FaultKind).
const (
	FanStick         = fault.FanStick
	FanFail          = fault.FanFail
	PSUDroop         = fault.PSUDroop
	PSUFail          = fault.PSUFail
	ServerTrip       = fault.ServerTrip
	AmbientExcursion = fault.AmbientExcursion
	CRACOutage       = fault.CRACOutage
	ChillerDegraded  = fault.ChillerDegraded
)

// Server health states (see ServerHealth).
const (
	Healthy = rack.Healthy
	Tripped = rack.Tripped
	Failed  = rack.Failed
)

// DefaultFaultScenarios returns the standard degradation catalogue, from
// the healthy baseline to the compound cascade.
func DefaultFaultScenarios() []FaultScenario { return experiments.DefaultFaultScenarios() }

// DefaultFaultEval returns the standard fault-scenario × policy comparison
// configuration.
func DefaultFaultEval() FaultEval { return experiments.DefaultFaultEval() }

// RackFaultComparison drives every placement policy through every fault
// scenario on identical racks over one shared job trace: jobs on dead or
// tripped servers are killed and requeued (or dropped), policies place
// around unhealthy slots, and each row carries the disruption and
// reliability bill of its scenario.
func RackFaultComparison(base ServerConfig, fe FaultEval) ([]RackFaultResult, error) {
	return experiments.RackFaultComparison(base, fe)
}

// FormatRackFaultTable renders the scenario×policy degradation table.
func FormatRackFaultTable(w io.Writer, rows []RackFaultResult) error {
	return experiments.FormatRackFaultTable(w, rows)
}

// Room scale: N racks behind one shared CRAC bank, thermally coupled by
// heat recirculation, placed by a two-level policy (rack chooser + slot
// policy).
type (
	// Room is N racks stepped in lockstep behind a shared cooling loop
	// with row-major heat-recirculation coupling between them.
	Room = room.Room
	// RoomConfig parameterizes a Room: racks, the recirculation matrix,
	// the exhaust-rise coefficient and the shared facility.
	RoomConfig = room.Config
	// RoomRackSpec configures one rack of a room.
	RoomRackSpec = room.RackSpec
	// RecircMatrix is the row-major heat-recirculation coupling: entry
	// [i][j] is the fraction of rack i's exhaust rise reappearing at rack
	// j's inlet.
	RecircMatrix = room.Matrix
	// RoomTelemetry is the room-level aggregate view: rack telemetry
	// summed plus the shared-facility and recirculation meters.
	RoomTelemetry = room.Telemetry
	// RoomTraceConfig parameterizes a room trace run (per-rack fault
	// schedules, event-driven kernel, metrics).
	RoomTraceConfig = room.TraceConfig
	// RoomSchedResult summarizes the scheduling outcome of a room trace.
	RoomSchedResult = room.Result
	// RoomPolicy is the two-level placement policy: a RackChooser picks
	// the rack, that rack's PlacementPolicy picks the slot.
	RoomPolicy = room.Policy
	// RackChooser decides which rack a job goes to.
	RackChooser = room.RackChooser
	// RackView is a chooser's snapshot of one rack at a placement
	// instant.
	RackView = room.RackView
	// EconomizerModel is the water-side economizer option for the shared
	// bank: free cooling below the outdoor engagement threshold.
	EconomizerModel = cooling.EconomizerModel
	// RoomEval parameterizes the room-scale policy comparison.
	RoomEval = experiments.RoomEval
	// RoomPolicyResult is one row of the room comparison table.
	RoomPolicyResult = experiments.RoomPolicyResult
)

// NewRoom builds a room from its spec, constructing every rack.
func NewRoom(cfg RoomConfig) (*Room, error) { return room.New(cfg) }

// NewRecircMatrix builds an n×n zero recirculation matrix (uncoupled).
func NewRecircMatrix(n int) *RecircMatrix { return room.NewMatrix(n) }

// NeighborRecircMatrix returns the default coupling for n racks in one
// row: 12% of a rack's exhaust rise reaches each adjacent inlet, 4% two
// positions away.
func NeighborRecircMatrix(n int) *RecircMatrix { return room.NeighborMatrix(n) }

// ParseRecircMatrix loads a recirculation matrix from its text form (one
// row per line, '#' comments) and validates it.
func ParseRecircMatrix(data []byte) (*RecircMatrix, error) { return room.ParseMatrix(data) }

// DefaultEconomizer returns the default water-side economizer (14 °C
// engagement, 3% free-cooling transport cost).
func DefaultEconomizer() EconomizerModel { return cooling.DefaultEconomizer() }

// RunRoomTrace drives a room through a job trace under a two-level
// policy; see RunJobTraceCfg for the rack-scale equivalent.
func RunRoomTrace(rm *Room, jobs []Job, pol *RoomPolicy, tc RoomTraceConfig) (RoomSchedResult, error) {
	return room.RunTrace(rm, jobs, pol, tc)
}

// NewRoomPolicy pairs a rack chooser with one slot policy per rack.
func NewRoomPolicy(chooser RackChooser, slots []PlacementPolicy) (*RoomPolicy, error) {
	return room.NewPolicy(chooser, slots)
}

// NewRoundRobinRacksChooser returns the rotating rack chooser.
func NewRoundRobinRacksChooser() RackChooser { return room.NewRoundRobinRacks() }

// NewLeastLoadedRackChooser returns the load-balancing rack chooser.
func NewLeastLoadedRackChooser() RackChooser { return room.NewLeastLoadedRack() }

// NewCoolestRackChooser returns the reactive thermal rack chooser (lowest
// hottest inlet, recirculation offsets included).
func NewCoolestRackChooser() RackChooser { return room.NewCoolestRack() }

// DefaultRoomEval returns the standard 4-rack × 8-server room comparison
// setup.
func DefaultRoomEval() RoomEval { return experiments.DefaultRoomEval() }

// RoomPolicyLabels returns the room comparison's policy-combo labels in
// table order.
func RoomPolicyLabels() []string { return experiments.RoomPolicyLabels() }

// RoomPolicyComparison runs one Poisson trace across all six two-level
// policy combos on identical fresh rooms behind the shared CRAC bank.
func RoomPolicyComparison(base ServerConfig, ev RoomEval) ([]RoomPolicyResult, error) {
	return experiments.RoomPolicyComparison(base, ev)
}

// FormatRoomTable renders the room policy comparison table.
func FormatRoomTable(w io.Writer, rows []RoomPolicyResult) error {
	return experiments.FormatRoomTable(w, rows)
}

// Extensions beyond the paper (DESIGN.md §6).
type (
	// PState is one point of the DVFS ladder.
	PState = dvfs.PState
	// DVFSTable is the coordinated (P-state, fan) lookup table.
	DVFSTable = dvfs.Table
	// DVFSRunResult reports a coordinated-controller evaluation.
	DVFSRunResult = dvfs.RunResult
	// ReliabilityReport summarizes thermal-reliability exposure.
	ReliabilityReport = reliability.Report
)

// BuildDVFSTable generates the coordinated DVFS+fan table.
func BuildDVFSTable(cfg ServerConfig) (*DVFSTable, error) {
	return dvfs.Build(cfg, dvfs.DefaultBuild())
}

// RunCoordinated evaluates the coordinated DVFS+fan policy on a workload.
func RunCoordinated(cfg ServerConfig, table *DVFSTable, prof Profile) (DVFSRunResult, error) {
	return dvfs.Run(cfg, table, prof, dvfs.DefaultRun())
}

// AnalyzeReliability scores a sampled temperature trace with the Arrhenius
// and Coffin-Manson models behind the paper's 75 °C cap.
func AnalyzeReliability(tempsC []float64) (ReliabilityReport, error) {
	return reliability.Analyze(tempsC)
}
