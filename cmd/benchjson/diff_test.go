package main

import (
	"strings"
	"testing"
)

func archFixture(label string, ns float64, metrics map[string]float64, extra ...string) *Archive {
	one := func(v float64) Stat { return Stat{Min: v, Mean: v, Max: v, N: 1} }
	ms := map[string]Stat{}
	for k, v := range metrics {
		ms[k] = one(v)
	}
	a := &Archive{Label: label, Benchmarks: []Record{
		{Name: "BenchmarkRackTrace", NsPerOp: one(ns), Iters: 3, Metrics: ms},
	}}
	for _, n := range extra {
		a.Benchmarks = append(a.Benchmarks, Record{Name: n, NsPerOp: one(100)})
	}
	return a
}

// TestDiffArchives pins the -diff report: aligned rows carry both means
// and the relative delta, metrics diff per benchmark, and one-sided
// benchmarks are called out instead of silently dropped.
func TestDiffArchives(t *testing.T) {
	old := archFixture("pr5", 2.0e6, map[string]float64{"rack_steps": 658, "Wh": 630.8}, "BenchmarkGone")
	new := archFixture("pr7", 1.5e6, map[string]float64{"rack_steps": 658, "pins": 42}, "BenchmarkFresh")

	var sb strings.Builder
	diffArchives(&sb, old, new)
	out := sb.String()

	for _, want := range []string{
		"BenchmarkRackTrace",
		"2ms", "1.5ms", "-25.0%",
		"rack_steps", "+0.0%",
		"Wh", "gone",
		"pins", "new",
		"only in pr5: BenchmarkGone",
		"only in pr7: BenchmarkFresh",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "BenchmarkGone ") && strings.Contains(out, "BenchmarkGone  ") {
		t.Errorf("one-sided benchmark got an aligned row:\n%s", out)
	}
}

// TestFormatHelpers pins the scale selection and the zero-baseline edge.
func TestFormatHelpers(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{5, "5ns"}, {1500, "1.5µs"}, {2.5e6, "2.5ms"},
	}
	for _, c := range cases {
		if got := formatNs(c.v); got != c.want {
			t.Errorf("formatNs(%g) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := formatDelta(0, 5); got != "n/a" {
		t.Errorf("formatDelta(0,5) = %q", got)
	}
	if got := formatDelta(0, 0); got != "0%" {
		t.Errorf("formatDelta(0,0) = %q", got)
	}
	if got := formatDelta(200, 100); got != "-50.0%" {
		t.Errorf("formatDelta = %q", got)
	}
}
