// Command benchjson converts `go test -bench` output into the BENCH_*.json
// archive format the ROADMAP's benchmark-trajectory workflow diffs across
// PRs: one record per benchmark with ns/op, iteration count, allocation
// stats and every custom metric (the headline physics quantities each
// benchmark reports). Repeated runs of the same benchmark (-count=N) are
// aggregated into min/mean/max so benchstat-style comparisons of the
// ns_per_op fields are meaningful on noisy hosts.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem -count=10 . | go run ./cmd/benchjson > BENCH_PR5.json
//	go run ./cmd/benchjson -in bench.txt -label pr5 > BENCH_PR5.json
//
// To diff two archives:
//
//	go run ./cmd/benchjson -diff BENCH_PR5.json BENCH_PR7.json
//
// which prints mean ns/op and every shared custom metric side by side
// with relative deltas, plus the benchmarks only one archive has. The
// JSON is stable, sorted by name, so diffs are order-independent.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// sample is one `BenchmarkX-N  iters  123 ns/op  ...` line.
type sample struct {
	iters   int
	nsPerOp float64
	metrics map[string]float64
}

// Stat summarizes repeated samples of one quantity.
type Stat struct {
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
	N    int     `json:"n"`
}

func statOf(xs []float64) Stat {
	s := Stat{Min: xs[0], Max: xs[0], N: len(xs)}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	return s
}

// Record is one benchmark's archived entry.
type Record struct {
	Name    string          `json:"name"`
	NsPerOp Stat            `json:"ns_per_op"`
	Iters   int             `json:"iterations"`
	Metrics map[string]Stat `json:"metrics,omitempty"`
}

// Archive is the whole BENCH_*.json document.
type Archive struct {
	Label      string   `json:"label,omitempty"`
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	CreatedUTC string   `json:"created_utc"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "bench output file (default: stdin)")
	label := flag.String("label", "", "archive label, e.g. the PR identifier")
	diff := flag.Bool("diff", false, "compare two archives: benchjson -diff old.json new.json")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two archives: benchjson -diff old.json new.json")
			os.Exit(2)
		}
		oldArch, err := loadArchive(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		newArch, err := loadArchive(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		diffArchives(os.Stdout, oldArch, newArch)
		return
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	arch, err := parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	arch.Label = *label
	arch.CreatedUTC = time.Now().UTC().Format(time.RFC3339)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(arch); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output: header lines (goos/goarch/pkg) and
// benchmark result lines. Unparseable lines are ignored, so PASS/ok
// trailers and -v noise pass through harmlessly.
func parse(r io.Reader) (*Archive, error) {
	arch := &Archive{}
	samples := map[string][]sample{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			arch.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			arch.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			arch.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, s, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	names := make([]string, 0, len(samples))
	for n := range samples {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ss := samples[n]
		rec := Record{Name: n, Metrics: map[string]Stat{}}
		var ns []float64
		byMetric := map[string][]float64{}
		for _, s := range ss {
			ns = append(ns, s.nsPerOp)
			rec.Iters += s.iters
			for k, v := range s.metrics {
				byMetric[k] = append(byMetric[k], v)
			}
		}
		rec.NsPerOp = statOf(ns)
		for k, vs := range byMetric {
			rec.Metrics[k] = statOf(vs)
		}
		if len(rec.Metrics) == 0 {
			rec.Metrics = nil
		}
		arch.Benchmarks = append(arch.Benchmarks, rec)
	}
	return arch, nil
}

// parseBenchLine splits "BenchmarkX-8  5  123456 ns/op  42.0 widgets  8 B/op".
func parseBenchLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", sample{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so archives from different hosts align.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return "", sample{}, false
	}
	s := sample{iters: iters, metrics: map[string]float64{}}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			s.nsPerOp = v
			seenNs = true
		case "B/op", "allocs/op", "MB/s":
			s.metrics[unit] = v
		default:
			s.metrics[unit] = v
		}
	}
	return name, s, seenNs
}
