package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// loadArchive reads one BENCH_*.json document.
func loadArchive(path string) (*Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var arch Archive
	if err := json.NewDecoder(f).Decode(&arch); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &arch, nil
}

// diffArchives prints the per-benchmark trajectory between two archives:
// mean ns/op with the relative delta, every shared custom metric the same
// way, and the benchmarks only one side has. Rows are sorted by name, so
// the report is stable for any input ordering.
func diffArchives(w io.Writer, old, new *Archive) {
	oldBy := map[string]Record{}
	for _, r := range old.Benchmarks {
		oldBy[r.Name] = r
	}
	newBy := map[string]Record{}
	for _, r := range new.Benchmarks {
		newBy[r.Name] = r
	}
	names := map[string]bool{}
	for n := range oldBy {
		names[n] = true
	}
	for n := range newBy {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	label := func(a *Archive, fallback string) string {
		if a.Label != "" {
			return a.Label
		}
		return fallback
	}
	fmt.Fprintf(w, "%-44s %14s %14s %9s\n", "benchmark",
		label(old, "old"), label(new, "new"), "delta")
	var onlyOld, onlyNew []string
	for _, n := range sorted {
		o, inOld := oldBy[n]
		nw, inNew := newBy[n]
		if !inOld {
			onlyNew = append(onlyNew, n)
			continue
		}
		if !inNew {
			onlyOld = append(onlyOld, n)
			continue
		}
		fmt.Fprintf(w, "%-44s %14s %14s %9s\n", n,
			formatNs(o.NsPerOp.Mean), formatNs(nw.NsPerOp.Mean),
			formatDelta(o.NsPerOp.Mean, nw.NsPerOp.Mean))
		metrics := map[string]bool{}
		for k := range o.Metrics {
			metrics[k] = true
		}
		for k := range nw.Metrics {
			metrics[k] = true
		}
		ms := make([]string, 0, len(metrics))
		for k := range metrics {
			ms = append(ms, k)
		}
		sort.Strings(ms)
		for _, k := range ms {
			om, inO := o.Metrics[k]
			nm, inN := nw.Metrics[k]
			switch {
			case !inO:
				fmt.Fprintf(w, "  %-42s %14s %14.4g %9s\n", k, "-", nm.Mean, "new")
			case !inN:
				fmt.Fprintf(w, "  %-42s %14.4g %14s %9s\n", k, om.Mean, "-", "gone")
			default:
				fmt.Fprintf(w, "  %-42s %14.4g %14.4g %9s\n", k, om.Mean, nm.Mean,
					formatDelta(om.Mean, nm.Mean))
			}
		}
	}
	for _, n := range onlyOld {
		fmt.Fprintf(w, "only in %s: %s\n", label(old, "old"), n)
	}
	for _, n := range onlyNew {
		fmt.Fprintf(w, "only in %s: %s\n", label(new, "new"), n)
	}
}

// formatNs renders a ns/op mean compactly (benchmarks here span 5 ns to
// tens of milliseconds per op).
func formatNs(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3gms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gµs", v/1e3)
	default:
		return fmt.Sprintf("%.3gns", v)
	}
}

// formatDelta renders the relative change new vs old.
func formatDelta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}
