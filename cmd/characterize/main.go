// Command characterize runs the paper's Section IV characterization
// experiments against the simulated server and emits the Figure 1 and
// Figure 2 data as ASCII charts or CSV.
//
// Usage:
//
//	characterize -fig 1a            # temperature transients per fan speed
//	characterize -fig 1b            # transients per utilization at 1800 RPM
//	characterize -fig 2a            # fan/leakage tradeoff at 100% load
//	characterize -fig 2b            # tradeoff curves per utilization
//	characterize -fig 1a -csv       # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/plot"
	"repro/internal/server"
	"repro/internal/units"
)

func main() {
	fig := flag.String("fig", "1a", "figure to regenerate: 1a, 1b, 2a, 2b")
	csv := flag.Bool("csv", false, "emit CSV instead of an ASCII chart")
	ambient := flag.Float64("ambient", 24, "ambient temperature, °C")
	flag.Parse()

	cfg := server.T3Config()
	cfg.Ambient = units.Celsius(*ambient)

	if err := run(cfg, *fig, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
}

func run(cfg server.Config, fig string, csv bool) error {
	switch fig {
	case "1a":
		results, err := experiments.Fig1a(cfg, nil)
		if err != nil {
			return err
		}
		series := experiments.SeriesFromTransients(results)
		if csv {
			return plot.WriteCSV(os.Stdout, series...)
		}
		chart := plot.Chart{
			Title:  "Fig 1(a): Average CPU0 temperature, 100% utilization",
			XLabel: "time (min)",
			YLabel: "temperature (°C)",
			Series: series,
		}
		if err := chart.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println("\nsteady-state summary:")
		for _, r := range results {
			fmt.Printf("  %-9s steady %.1f°C, settles %.1f min into the loaded phase\n",
				r.Label, r.SteadyC, r.SettleAt)
		}
		return nil

	case "1b":
		results, err := experiments.Fig1b(cfg, nil)
		if err != nil {
			return err
		}
		series := experiments.SeriesFromTransients(results)
		if csv {
			return plot.WriteCSV(os.Stdout, series...)
		}
		chart := plot.Chart{
			Title:  "Fig 1(b): Average CPU0 temperature at 1800 RPM",
			XLabel: "time (min)",
			YLabel: "temperature (°C)",
			Series: series,
		}
		return chart.Render(os.Stdout)

	case "2a":
		curve, err := experiments.Fig2a(cfg)
		if err != nil {
			return err
		}
		series := experiments.SeriesFromTradeoff(curve)
		if csv {
			return plot.WriteCSV(os.Stdout, series...)
		}
		chart := plot.Chart{
			Title:  "Fig 2(a): Leakage and fan power vs avg CPU temp, 100% utilization",
			XLabel: "temperature (°C)",
			YLabel: "power (W)",
			Series: series,
		}
		if err := chart.Render(os.Stdout); err != nil {
			return err
		}
		opt, err := curve.Optimum()
		if err != nil {
			return err
		}
		fmt.Printf("\noptimum: %.0f RPM at %.1f°C, fan+leak %.1f W (paper: 2400 RPM near 70°C)\n",
			float64(opt.RPM), float64(opt.Temp), float64(opt.Sum()))
		return nil

	case "2b":
		curves, err := experiments.Fig2b(cfg)
		if err != nil {
			return err
		}
		var series []plot.Series
		for _, c := range curves {
			s := experiments.SeriesFromTradeoff(c)
			series = append(series, s[2]) // the fan+leakage sum per util
		}
		if csv {
			return plot.WriteCSV(os.Stdout, series...)
		}
		chart := plot.Chart{
			Title:  "Fig 2(b): Fan + leakage power vs avg CPU temperature, all dutycycles",
			XLabel: "temperature (°C)",
			YLabel: "power (W)",
			Series: series,
		}
		if err := chart.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println("\noptima:")
		for _, c := range curves {
			opt, err := c.Optimum()
			if err != nil {
				return err
			}
			fmt.Printf("  U=%3.0f%%: %.0f RPM at %.1f°C (%.1f W)\n",
				float64(c.Util), float64(opt.RPM), float64(opt.Temp), float64(opt.Sum()))
		}
		return nil
	}
	return fmt.Errorf("unknown figure %q (want 1a, 1b, 2a, 2b)", fig)
}
