// Command evalctl reproduces the paper's Section V evaluation: Table I
// (four 80-minute test workloads under the Default, bang-bang and LUT
// controllers) and the Figure 3 temperature traces.
//
// Usage:
//
//	evalctl                 # Table I
//	evalctl -fig3           # Figure 3 traces for Test-3
//	evalctl -test 2         # a single test's rows
//	evalctl -seed 7         # different stochastic workload seed
//	evalctl -csv            # Fig 3 traces as CSV
//	evalctl -rack           # rack-scale placement-policy comparison
//	evalctl -rack -servers 16 -horizon 7200
//	evalctl -rack -cap 2500 # wall-power budget for the capped runs
//	evalctl -rack -ideal    # lossless delivery chain (wall == DC)
//	evalctl -rack -lutcache /tmp/luts   # reuse LUTs across processes
//	evalctl -rack -eventstep            # event-driven kernel (several-fold faster)
//	evalctl -facility       # policy × cold-aisle-setpoint facility sweep
//	evalctl -facility -setpoints 14,21,28
//	evalctl -faults         # fault-scenario × policy degradation catalogue
//	evalctl -faults -drop   # abandon killed jobs instead of requeueing
//	evalctl -room           # room-scale two-level placement comparison
//	evalctl -room -racks 8 -servers 16 -eventstep
//	evalctl -room -recirc w.txt         # recirculation matrix from a file
//	evalctl -room -norecirc -nofacility # independent racks (PR 8 physics)
//
// Long runs can be checkpointed and resumed (single-policy rack runs):
//
//	evalctl -rack -policy round-robin -checkpoint run.snap   # periodic snapshots + SIGINT capture
//	evalctl -rack -policy round-robin -resume run.snap       # continue an interrupted run
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/power"
	"repro/internal/room"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/snap"
	"repro/internal/units"
	"repro/internal/workload"
)

// runRackCheckpointed executes the crash-safe single-policy rack run: an
// optional resume from a snapshot file, periodic checkpoints at the
// -ckevery cadence (each an atomic file replace, so a crash mid-write
// keeps the previous one), and a SIGINT handler that stops the run at its
// next decision-step boundary, writes the interrupt-instant checkpoint,
// and prints the resume command. Resuming then continuing to the horizon
// is byte-identical to the run that was never interrupted.
func runRackCheckpointed(cfg server.Config, ev experiments.RackEval, ckptFile string, ckptEvery float64, resumeFile string, capW float64, reg *obs.Registry, metrics bool) {
	if capW < 0 {
		capW = 0 // the AC table's "uncapped only" spelling: one uncapped run
	}
	ev.WallCapW = capW
	if resumeFile != "" {
		var ck sched.Checkpoint
		if err := snap.DecodeFile(resumeFile, &ck); err != nil {
			fmt.Fprintln(os.Stderr, "evalctl:", err)
			os.Exit(1)
		}
		ev.Resume = &ck
		// stderr, so a resumed run's stdout stays byte-identical to the
		// uninterrupted run's — the property the CI smoke diffs on.
		fmt.Fprintf(os.Stderr, "resuming %s from %s: step %d/%d (t=%.0f s)\n",
			ev.Policy, resumeFile, ck.K, ck.Steps, float64(ck.K)*ck.Dt)
	}
	if ckptFile != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		ev.Ctx = ctx
		ev.CheckpointEvery = ckptEvery
		ev.CheckpointSink = func(ck sched.Checkpoint) error {
			if err := snap.EncodeFile(ckptFile, ck); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "checkpoint: step %d/%d -> %s\n", ck.K, ck.Steps, ckptFile)
			return nil
		}
	}
	rows, err := experiments.RackPolicyComparison(cfg, ev)
	if err != nil {
		var c *sched.Cancelled
		if errors.As(err, &c) && ckptFile != "" {
			if werr := snap.EncodeFile(ckptFile, c.Checkpoint); werr != nil {
				fmt.Fprintln(os.Stderr, "evalctl: writing interrupt checkpoint:", werr)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "\nevalctl: interrupted at step %d/%d; checkpoint written to %s\n",
				c.Checkpoint.K, c.Checkpoint.Steps, ckptFile)
			fmt.Fprintf(os.Stderr, "resume with: evalctl -rack -policy %s -resume %s (plus this run's other flags)\n",
				ev.Policy, ckptFile)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "evalctl:", err)
		os.Exit(1)
	}
	fmt.Printf("Rack policy run (%s): %d servers (ambients %s °C), "+
		"%.0f min Poisson trace (seed %d)\n\n",
		ev.Policy, ev.Servers, ambientList(cfg, ev.Servers), ev.Horizon/60, ev.TraceSeed)
	if err := experiments.FormatRackTable(os.Stdout, rows); err != nil {
		fmt.Fprintln(os.Stderr, "evalctl:", err)
		os.Exit(1)
	}
	if metrics {
		printMetrics(os.Stdout, reg)
	}
}

// ambientList renders the distinct rack ambients in slot order, derived
// from the experiment's actual server configurations so the banner cannot
// desync from the gradient.
func ambientList(base server.Config, n int) string {
	var out string
	seen := map[float64]bool{}
	for _, c := range experiments.RackServerConfigs(base, n) {
		a := float64(c.Ambient)
		if seen[a] {
			continue
		}
		seen[a] = true
		if out != "" {
			out += "/"
		}
		out += fmt.Sprintf("%g", a)
	}
	return out
}

func main() {
	fig3 := flag.Bool("fig3", false, "emit Figure 3 temperature traces for Test-3")
	testID := flag.Int("test", 0, "run a single test id 1-4 (0 = all)")
	seed := flag.Int64("seed", 42, "seed for the stochastic workloads")
	csv := flag.Bool("csv", false, "CSV output for -fig3")
	rackCmp := flag.Bool("rack", false, "run the rack-scale placement-policy comparison")
	roomCmp := flag.Bool("room", false, "run the room-scale two-level placement comparison (N racks behind one CRAC bank)")
	racks := flag.Int("racks", 0, "room size in racks for -room (0 = default)")
	recircFile := flag.String("recirc", "", "for -room: load the recirculation matrix from a file (rows of weights; '#' comments)")
	noRecirc := flag.Bool("norecirc", false, "for -room: zero recirculation matrix (uncoupled racks)")
	noFacility := flag.Bool("nofacility", false, "for -room: drop the shared CRAC bank (cooling exactly zero, PUE exactly 1)")
	econ := flag.Bool("econ", false, "for -room: fit the water-side economizer to the shared bank")
	facilityCmp := flag.Bool("facility", false, "run the policy × cold-aisle-setpoint facility sweep")
	faultCmp := flag.Bool("faults", false, "run the fault-scenario × policy degradation catalogue")
	dropOnFault := flag.Bool("drop", false, "for -faults: abandon killed jobs instead of requeueing them")
	setpoints := flag.String("setpoints", "", "comma-separated supply setpoints in °C for -facility (default 14,21,28)")
	servers := flag.Int("servers", 0, "rack size for -rack/-facility (0 = default)")
	horizon := flag.Float64("horizon", 0, "measured window in seconds for -rack/-facility (0 = default)")
	capW := flag.Float64("cap", 0, "wall-power budget in W (-rack: 0 = auto, negative = uncapped runs only; -facility: 0 = uncapped)")
	policyFlag := flag.String("policy", "",
		"for -rack/-room: restrict the comparison to one placement policy by name "+
			"(-rack: round-robin, least-utilized, coolest-first, leakage-aware, cap-aware; "+
			"-room: rr, least-loaded, coolest, min-cost, recirc-aware, recirc-pue); useful with "+
			"-metrics, whose registry otherwise aggregates every policy's run into one dump")
	ideal := flag.Bool("ideal", false, "lossless delivery chain for -rack/-facility: no PSU/PDU, wall == DC")
	lutCache := flag.String("lutcache", "", "directory for the cross-process LUT disk cache")
	eventStep := flag.Bool("eventstep", false,
		"event-driven trace kernel for -rack/-facility: advance the rack per scheduling event "+
			"instead of per fixed dt (several-fold faster; energies within 1e-6 of the fixed-dt reference)")
	rate := flag.Float64("rate", 0,
		"job arrival rate in jobs/s for -rack/-facility/-faults (0 = experiment default; raise it "+
			"well past capacity for a saturated backlog)")
	backfill := flag.Bool("backfill", false,
		"for -rack/-facility/-faults: let jobs queued behind a blocked head place out of order "+
			"(FIFO backfill pass under the same cap admission; the head keeps strict priority)")
	fanCtl := flag.String("fanctl", "",
		"fan controller for -rack/-facility/-faults: lut (default) or bang (the Section V reactive policy)")
	metricsFlag := flag.Bool("metrics", false,
		"for -rack/-facility/-faults: attach a run-metrics registry (internal/obs) and print the "+
			"pin-reason breakdown plus the full sorted counter dump after the tables")
	debugAddr := flag.String("debugaddr", "",
		"host:port serving /metrics (Prometheus text format of the live run-metrics registry) and "+
			"/debug/pprof for the duration of the run, e.g. localhost:6060")
	ckptFile := flag.String("checkpoint", "",
		"for -rack with -policy: write periodic run checkpoints to this file (atomic replace, see "+
			"-ckevery) and, on SIGINT, capture the interrupt-instant checkpoint there before exiting; "+
			"resume later with -resume")
	ckptEvery := flag.Float64("ckevery", 60,
		"simulated seconds between periodic checkpoints for -checkpoint")
	resumeFile := flag.String("resume", "",
		"for -rack with -policy: resume the run from a checkpoint file written by -checkpoint "+
			"(the eval flags must match the interrupted run's)")
	flag.Parse()

	cfg := server.T3Config()
	ec := experiments.DefaultEval()

	if (*ckptFile != "" || *resumeFile != "") && (!*rackCmp || *policyFlag == "") {
		fmt.Fprintln(os.Stderr, "evalctl: -checkpoint/-resume capture exactly one run; combine them with -rack and a single -policy")
		os.Exit(1)
	}

	// One registry is shared by every run of the selected experiment; the
	// HTTP surface serves it live while the runs are still in flight.
	var reg *obs.Registry
	if *metricsFlag || *debugAddr != "" {
		reg = obs.NewRegistry()
	}
	if *debugAddr != "" {
		hostport, err := serveDebug(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("debug server: http://%s/metrics and http://%s/debug/pprof/\n", hostport, hostport)
	}

	if *facilityCmp {
		fe := experiments.DefaultFacilityEval()
		fe.Rack.TraceSeed = *seed
		if *servers > 0 {
			fe.Rack.Servers = *servers
		}
		if *horizon > 0 {
			fe.Rack.Horizon = *horizon
		}
		fe.Rack.WallCapW = *capW
		fe.Rack.LUTCacheDir = *lutCache
		fe.Rack.EventStepping = *eventStep
		fe.Rack.Backfill = *backfill
		fe.Rack.FanControl = *fanCtl
		fe.Rack.Metrics = reg
		if *rate > 0 {
			fe.Rack.Rate = *rate
		}
		if *ideal {
			fe.Rack.PSU, fe.Rack.PDU = nil, nil
		}
		if *setpoints != "" {
			var sps []units.Celsius
			for _, tok := range strings.Split(*setpoints, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
				if err != nil {
					fmt.Fprintf(os.Stderr, "evalctl: bad -setpoints entry %q: %v\n", tok, err)
					os.Exit(1)
				}
				sps = append(sps, units.Celsius(v))
			}
			fe.SetpointsC = sps
		}
		rows, err := experiments.RackFacilityComparison(cfg, fe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalctl:", err)
			os.Exit(1)
		}
		fmt.Printf("Facility sweep: %d servers (ambients %s °C at the %g °C reference supply), "+
			"%.0f min Poisson trace (seed %d), CRAC blower %.0f%% + chiller COP0 %.1f\n\n",
			fe.Rack.Servers, ambientList(cfg, fe.Rack.Servers), float64(fe.CRAC.ReferenceC),
			fe.Rack.Horizon/60, fe.Rack.TraceSeed, 100*fe.CRAC.BlowerCoeff, fe.Chiller.COP0)
		if err := experiments.FormatRackFacilityTable(os.Stdout, rows); err != nil {
			fmt.Fprintln(os.Stderr, "evalctl:", err)
			os.Exit(1)
		}
		fmt.Println("\nevery wall watt-hour returns as room heat the CRAC/chiller chain must remove;")
		fmt.Println("a cold aisle overpays the chiller, a warm aisle overpays server fans+leakage")
		for _, p := range []string{"round-robin", "pue-aware"} {
			if sp, wh, err := experiments.FacilitySweetSpot(rows, p); err == nil {
				fmt.Printf("%-12s sweet spot: %g °C supply (%.1f Wh facility)\n", p, sp, wh)
			}
		}
		if *metricsFlag {
			printMetrics(os.Stdout, reg)
		}
		return
	}

	if *faultCmp {
		fe := experiments.DefaultFaultEval()
		fe.Rack.TraceSeed = *seed
		if *servers > 0 {
			fe.Rack.Servers = *servers
		}
		if *horizon > 0 {
			fe.Rack.Horizon = *horizon
		}
		fe.Rack.WallCapW = *capW
		fe.Rack.LUTCacheDir = *lutCache
		fe.Rack.EventStepping = *eventStep
		fe.Rack.Backfill = *backfill
		fe.Rack.FanControl = *fanCtl
		fe.Rack.Metrics = reg
		if *rate > 0 {
			fe.Rack.Rate = *rate
		}
		if *ideal {
			fe.Rack.PSU, fe.Rack.PDU = nil, nil
		}
		fe.DropOnFault = *dropOnFault
		rows, err := experiments.RackFaultComparison(cfg, fe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalctl:", err)
			os.Exit(1)
		}
		killPolicy := "killed jobs requeue at the backlog head"
		if fe.DropOnFault {
			killPolicy = "killed jobs are abandoned (DropOnFault)"
		}
		fmt.Printf("Fault catalogue: %d servers (ambients %s °C), %.0f min Poisson trace (seed %d)\n%s\n\n",
			fe.Rack.Servers, ambientList(cfg, fe.Rack.Servers), fe.Rack.Horizon/60, fe.Rack.TraceSeed, killPolicy)
		if err := experiments.FormatRackFaultTable(os.Stdout, rows); err != nil {
			fmt.Fprintln(os.Stderr, "evalctl:", err)
			os.Exit(1)
		}
		fmt.Println("\nevery scenario serves the identical job trace; Req/Lost/LostJob(s) are the")
		fmt.Println("disruption bill, Accel/Above75 the reliability bill (Arrhenius vs the 75°C cap),")
		fmt.Println("Surv the slots still placeable at the horizon — schedules are deterministic,")
		fmt.Println("so every cell is reproducible bit-for-bit at any worker count")
		if *metricsFlag {
			printMetrics(os.Stdout, reg)
		}
		return
	}

	if *roomCmp {
		ev := experiments.DefaultRoomEval()
		ev.TraceSeed = *seed
		if *racks > 0 {
			ev.Racks = *racks
		}
		if *servers > 0 {
			ev.Servers = *servers
		}
		if *horizon > 0 {
			ev.Horizon = *horizon
		}
		ev.LUTCacheDir = *lutCache
		ev.EventStepping = *eventStep
		ev.FanControl = *fanCtl
		ev.Metrics = reg
		ev.Policy = *policyFlag
		ev.NoFacility = *noFacility
		ev.Economizer = *econ
		if *rate > 0 {
			ev.Rate = *rate
		}
		if *noRecirc {
			ev.Recirc = room.NewMatrix(ev.Racks)
		}
		if *recircFile != "" {
			data, err := os.ReadFile(*recircFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "evalctl:", err)
				os.Exit(1)
			}
			m, err := room.ParseMatrix(data)
			if err != nil {
				fmt.Fprintln(os.Stderr, "evalctl:", err)
				os.Exit(1)
			}
			ev.Recirc = m
		}
		rows, err := experiments.RoomPolicyComparison(cfg, ev)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalctl:", err)
			os.Exit(1)
		}
		coupling := "neighbor spill-over matrix"
		if ev.Recirc != nil {
			if ev.Recirc.IsZero() {
				coupling = "uncoupled (zero matrix)"
			} else {
				coupling = fmt.Sprintf("custom %d×%d matrix", ev.Recirc.Size(), ev.Recirc.Size())
			}
		}
		bank := "shared CRAC/chiller bank"
		if ev.NoFacility {
			bank = "no shared facility"
		} else if ev.Economizer {
			bank += " + economizer"
		}
		fmt.Printf("Room policy comparison: %d racks × %d servers (ambients %s °C), %s,\n"+
			"recirculation: %s, %.0f min Poisson trace (seed %d)\n\n",
			ev.Racks, ev.Servers, ambientList(cfg, ev.Servers), bank, coupling, ev.Horizon/60, ev.TraceSeed)
		if err := experiments.FormatRoomTable(os.Stdout, rows); err != nil {
			fmt.Fprintln(os.Stderr, "evalctl:", err)
			os.Exit(1)
		}
		fmt.Println("\nall policy combos serve the identical job trace; Facility(Wh) is wall energy")
		fmt.Println("plus the shared bank's cooling bill — the recirculation-aware choosers avoid")
		fmt.Println("racks whose exhaust lands back on cold aisles, trimming both terms")
		if *metricsFlag {
			printMetrics(os.Stdout, reg)
		}
		return
	}

	if *rackCmp {
		ev := experiments.DefaultRackEval()
		ev.TraceSeed = *seed
		if *servers > 0 {
			ev.Servers = *servers
		}
		if *horizon > 0 {
			ev.Horizon = *horizon
		}
		ev.WallCapW = *capW
		ev.LUTCacheDir = *lutCache
		ev.EventStepping = *eventStep
		ev.Backfill = *backfill
		ev.FanControl = *fanCtl
		ev.Metrics = reg
		if *rate > 0 {
			ev.Rate = *rate
		}
		if !*ideal {
			psu, pdu := power.DefaultPSU(), power.DefaultPDU()
			ev.PSU, ev.PDU = &psu, &pdu
		}
		ev.Policy = *policyFlag
		if *ckptFile != "" || *resumeFile != "" {
			runRackCheckpointed(cfg, ev, *ckptFile, *ckptEvery, *resumeFile, *capW, reg, *metricsFlag)
			return
		}
		if *capW < 0 {
			// Uncapped runs only: the capped half deliberately keeps the
			// backlog pin (cap admission watches evolving transients), so
			// skipping it — typically together with -policy — makes the
			// -metrics pin shares of one trace readable.
			ev.WallCapW = 0
			rows, err := experiments.RackPolicyComparison(cfg, ev)
			if err != nil {
				fmt.Fprintln(os.Stderr, "evalctl:", err)
				os.Exit(1)
			}
			fmt.Printf("Rack policy comparison (uncapped runs only): %d servers (ambients %s °C), "+
				"%.0f min Poisson trace (seed %d)\n\n",
				ev.Servers, ambientList(cfg, ev.Servers), ev.Horizon/60, ev.TraceSeed)
			if err := experiments.FormatRackTable(os.Stdout, rows); err != nil {
				fmt.Fprintln(os.Stderr, "evalctl:", err)
				os.Exit(1)
			}
			fmt.Println("\nall policies serve the identical job trace; Total(Wh) differences are the")
			fmt.Println("placement's leakage+fan cost — thermally aware policies should be lowest")
			if *metricsFlag {
				printMetrics(os.Stdout, reg)
			}
			return
		}
		res, err := experiments.RackACComparison(cfg, ev)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalctl:", err)
			os.Exit(1)
		}
		fmt.Printf("Rack policy comparison: %d servers (ambients %s °C), "+
			"%.0f min Poisson trace (seed %d)\n\n",
			ev.Servers, ambientList(cfg, ev.Servers), ev.Horizon/60, ev.TraceSeed)
		if err := experiments.FormatRackTable(os.Stdout, res.Uncapped); err != nil {
			fmt.Fprintln(os.Stderr, "evalctl:", err)
			os.Exit(1)
		}
		fmt.Println("\nall policies serve the identical job trace; Total(Wh) differences are the")
		fmt.Println("placement's leakage+fan cost — thermally aware policies should be lowest")

		chain := "ideal (lossless) delivery chain: Wh(AC) == Wh(DC)"
		if ev.PSU != nil && ev.PDU != nil {
			chain = fmt.Sprintf("PSU %.0f%%/%.0fW knee per server + rack PDU %.0f%%/%.0fW knee",
				100*ev.PSU.Eta0, ev.PSU.Knee, 100*ev.PDU.Eta0, ev.PDU.Knee)
		}
		capNote := fmt.Sprintf("configured %.0f W", res.CapW)
		if res.AutoCap {
			capNote = fmt.Sprintf("auto: %.0f%% of round-robin's uncapped peak wall = %.0f W",
				100*experiments.AutoCapFraction, res.CapW)
		}
		fmt.Printf("\nWall-side (AC) accounting — %s\nwall budget of the capped runs: %s\n\n", chain, capNote)
		if err := experiments.FormatRackACTable(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "evalctl:", err)
			os.Exit(1)
		}
		fmt.Println("\nPSU/PDU losses are monotone in load, so every DC watt a placement saves is")
		fmt.Println("amplified at the wall; under the cap, Defer counts placements the runner held")
		fmt.Println("back to keep the predicted wall draw within budget")
		if *metricsFlag {
			printMetrics(os.Stdout, reg)
		}
		return
	}

	if *metricsFlag {
		fmt.Fprintln(os.Stderr, "evalctl: -metrics instruments the rack and room experiments; combine it with -rack, -facility, -faults or -room")
	}

	if *fig3 {
		series, err := experiments.Fig3(cfg, *seed, ec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalctl:", err)
			os.Exit(1)
		}
		if *csv {
			if err := plot.WriteCSV(os.Stdout, series...); err != nil {
				fmt.Fprintln(os.Stderr, "evalctl:", err)
				os.Exit(1)
			}
			return
		}
		chart := plot.Chart{
			Title:  "Fig 3: Temperature in Test-3 for the three controllers",
			XLabel: "time (min)",
			YLabel: "temperature (°C)",
			Series: series,
		}
		if err := chart.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "evalctl:", err)
			os.Exit(1)
		}
		return
	}

	rows, err := experiments.TableI(cfg, *seed, ec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalctl:", err)
		os.Exit(1)
	}
	if *testID != 0 {
		var filtered []experiments.TableIRow
		for _, r := range rows {
			if r.TestID == *testID {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "evalctl: unknown test %d\n", *testID)
			os.Exit(1)
		}
		rows = filtered
	}

	fmt.Println("Table I: controller comparison (paper layout)")
	fmt.Printf("idle reference energy: %.4f kWh over %.0f min\n\n",
		experiments.IdleEnergyKWh(cfg, workload.TestDuration), workload.TestDuration/60)
	if err := experiments.FormatTableI(os.Stdout, rows); err != nil {
		fmt.Fprintln(os.Stderr, "evalctl:", err)
		os.Exit(1)
	}
	fmt.Println("\npaper reference (Table I): LUT net savings 3.9-8.7%, bang-bang 0.05-6.8%,")
	fmt.Println("default max temp 60-62°C, LUT 69-75°C, bang ≤77°C, controller avg ~1900-2200 RPM")
}
