package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sched"
)

// TestPrintMetricsIdentityLine exercises the breakdown printer on a
// hand-built registry: every pin reason in the taxonomy appears (zero
// counts included) in the fixed PinReasonNames order, and the identity
// line reports Σ pins, total advances and macro windows verbatim.
func TestPrintMetricsIdentityLine(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("kernel.steps.total").Add(10)
	reg.Counter("kernel.windows.macro").Add(7)
	reg.Counter("kernel.grid.steps").Add(100)
	reg.Counter("kernel.pin.arrival").Add(2)
	reg.Counter("kernel.pin.backlog").Add(1)

	var sb strings.Builder
	printMetrics(&sb, reg)
	out := sb.String()
	if !strings.Contains(out, "pin identity: Σ pins 3 = rack advances 10 − macro windows 7 (grid steps crossed: 100)") {
		t.Errorf("identity line missing or wrong:\n%s", out)
	}
	// The full taxonomy prints in fixed order, zero counts included, so
	// two runs diff line-by-line.
	prev := -1
	for _, name := range sched.PinReasonNames() {
		idx := strings.Index(out, "  "+name+" ")
		if idx < 0 {
			t.Errorf("pin reason %q missing from breakdown:\n%s", name, out)
			continue
		}
		if idx < prev {
			t.Errorf("pin reason %q out of order:\n%s", name, out)
		}
		prev = idx
	}
	if !strings.Contains(out, "kernel.steps.total 10") {
		t.Errorf("sorted dump missing:\n%s", out)
	}
}

// TestServeDebug spins the -debugaddr server on an ephemeral port and
// checks both halves of the surface: /metrics serves the registry in
// Prometheus text format, and the pprof index answers.
func TestServeDebug(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("kernel.steps.total").Add(42)

	hostport, err := serveDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + hostport + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if !strings.Contains(body, "# TYPE kernel_steps_total counter") ||
		!strings.Contains(body, "kernel_steps_total 42") {
		t.Errorf("/metrics body not Prometheus text format:\n%s", body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/: status %d", code)
	}
}
