package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"

	"repro/internal/obs"
	"repro/internal/sched"
)

// printMetrics renders the run-metrics registry after an experiment: the
// pin-reason breakdown with its sum identity — Σ per-reason single steps =
// total rack advances − macro windows, exact by construction — followed by
// the full sorted dump. Every reason in the taxonomy prints, zero or not,
// in the fixed PinReasonNames order, so runs are diffable line-by-line.
func printMetrics(w io.Writer, reg *obs.Registry) {
	steps := reg.Counter("kernel.steps.total").Value()
	macro := reg.Counter("kernel.windows.macro").Value()
	grid := reg.Counter("kernel.grid.steps").Value()
	fmt.Fprintf(w, "\nPin-reason breakdown (why the kernel advanced one step instead of a macro window):\n")
	var sum int64
	for _, name := range sched.PinReasonNames() {
		v := reg.Counter("kernel.pin." + name).Value()
		sum += v
		fmt.Fprintf(w, "  %-12s %10d\n", name, v)
	}
	fmt.Fprintf(w, "pin identity: Σ pins %d = rack advances %d − macro windows %d (grid steps crossed: %d)\n",
		sum, steps, macro, grid)
	fmt.Fprintf(w, "\nRun metrics (sorted; deterministic for every worker count):\n")
	reg.WriteText(w)
}

// serveDebug binds addr and serves /metrics (Prometheus text format of the
// live registry) plus the standard net/http/pprof endpoints for the rest
// of the process lifetime — the long-run introspection surface. Binding
// errors are returned immediately; serve errors after a successful bind
// are ignored (the experiment is the process's real job).
func serveDebug(addr string, reg *obs.Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("evalctl: -debugaddr %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(ln, mux) //nolint:errcheck — see doc comment
	hostport := ln.Addr().String()
	// Rewrite the unspecified host for a copy-pasteable URL.
	if host, port, err := net.SplitHostPort(hostport); err == nil {
		if host == "::" || host == "0.0.0.0" || strings.TrimSpace(host) == "" {
			hostport = net.JoinHostPort("127.0.0.1", port)
		}
	}
	return hostport, nil
}
