// Command genlut builds the controller's lookup table. By default it runs
// the full pipeline the way the paper does — characterize the server, fit
// the leakage model, and generate the table from the *fitted* model — and
// writes the result as JSON.
//
// Usage:
//
//	genlut                     # pipeline: characterize → fit → build
//	genlut -truth              # build from the ground-truth model instead
//	genlut -o table.json       # write JSON to a file
//	genlut -maxtemp 70         # tighter reliability cap
//	genlut -truth -cache DIR   # disk-cache ground-truth builds by config hash
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/server"
	"repro/internal/units"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	truth := flag.Bool("truth", false, "build from the ground-truth model, skipping the fit")
	maxTemp := flag.Float64("maxtemp", 75, "reliability temperature cap, °C (0 disables)")
	quick := flag.Bool("quick", false, "reduced characterization grid")
	cache := flag.String("cache", "", "directory for the cross-process LUT disk cache (-truth builds only: fitted models differ per run)")
	flag.Parse()

	build := lut.DefaultBuild()
	build.MaxTemp = units.Celsius(*maxTemp)

	var table *lut.Table
	var err error
	if *truth {
		table, err = lut.DiskCache{Dir: *cache}.Build(server.T3Config(), build)
	} else {
		cfg := core.DefaultPipeline()
		cfg.Build = build
		if *quick {
			cfg.Sweep.Utils = []units.Percent{10, 40, 75, 100}
			cfg.Sweep.RPMs = []units.RPM{1800, 3000, 4200}
			cfg.Sweep.Warmup = 15 * 60
			cfg.Sweep.Measure = 5 * 60
		}
		var res *core.PipelineResult
		res, err = core.Run(cfg)
		if err == nil {
			table = res.Table
			fmt.Fprintf(os.Stderr, "fitted model: k1=%.4f C=%.2f k2=%.4f k3=%.5f (rmse %.2f W)\n",
				res.Fit.K1, res.Fit.C, res.Fit.K2, res.Fit.K3, res.Fit.RMSE)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genlut:", err)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, table.String())

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genlut:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := table.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "genlut:", err)
		os.Exit(1)
	}
}
