// Command fitleak runs the Section IV characterization campaign and fits
// the empirical leakage model
//
//	Pcpu = k1·U + C + k2·e^(k3·T)
//
// reporting the recovered constants next to the paper's published values
// (k1 = 0.4452, k2 = 0.3231, k3 = 0.04749, RMSE 2.243 W, 98% accuracy).
//
// Usage:
//
//	fitleak                # full sweep, per-poll fitting like the paper
//	fitleak -averaged      # fit on per-operating-point averages
//	fitleak -quick         # reduced grid for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fitting"
	"repro/internal/server"
	"repro/internal/units"
)

func main() {
	averaged := flag.Bool("averaged", false, "fit on noise-averaged points instead of raw polls")
	quick := flag.Bool("quick", false, "reduced sweep grid")
	flag.Parse()

	sweep := fitting.DefaultSweep()
	sweep.PerPoll = !*averaged
	if *quick {
		sweep.Utils = []units.Percent{10, 40, 75, 100}
		sweep.RPMs = []units.RPM{1800, 3000, 4200}
		sweep.Warmup = 15 * 60
		sweep.Measure = 5 * 60
	}

	cfg := server.T3Config()
	fmt.Printf("characterizing: %d utilization levels × %d fan speeds...\n",
		len(sweep.Utils), len(sweep.RPMs))
	ds, err := fitting.Collect(func() (*server.Server, error) { return server.New(cfg) }, sweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fitleak:", err)
		os.Exit(1)
	}
	fmt.Printf("collected %d telemetry points\n\n", len(ds.Points))

	res, err := fitting.FitLeakage(ds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fitleak:", err)
		os.Exit(1)
	}

	fmt.Println("fitted model: Pcpu = k1·U + C + k2·e^(k3·T)")
	fmt.Printf("  %-10s %-12s %-12s\n", "param", "fitted", "paper")
	fmt.Printf("  %-10s %-12.4f %-12.4f\n", "k1", res.K1, 0.4452)
	fmt.Printf("  %-10s %-12.4f %-12s\n", "C", res.C, "(folded)")
	fmt.Printf("  %-10s %-12.4f %-12.4f\n", "k2", res.K2, 0.3231)
	fmt.Printf("  %-10s %-12.5f %-12.5f\n", "k3", res.K3, 0.04749)
	fmt.Printf("\n  RMSE      %.3f W   (paper: 2.243 W)\n", res.RMSE)
	fmt.Printf("  R²        %.4f\n", res.R2)
	fmt.Printf("  accuracy  %.1f%%   (paper: 98%%)\n", res.AccuracyPct)
	fmt.Printf("  converged in %d LM iterations over %d points\n", res.Iterations, res.N)

	// Show the model against the measured operating envelope.
	fmt.Println("\npredictions at selected operating points:")
	for _, u := range []units.Percent{25, 50, 75, 100} {
		for _, temp := range []units.Celsius{55, 70, 85} {
			fmt.Printf("  U=%3.0f%% T=%2.0f°C → %.1f W\n",
				float64(u), float64(temp), float64(res.Predict(u, temp)))
		}
	}
}
