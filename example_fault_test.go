package leakctl_test

import (
	"fmt"

	leakctl "repro"
)

// ExampleFaultSchedule attaches a deterministic fault plan to a job-trace
// run: one server goes dark mid-run (a PSU failure) and later returns.
// The scheduler kills the dark server's job, requeues it at the backlog
// head, accounts the destroyed progress, and completes it elsewhere —
// while the placement policy routes around the failed slot.
func ExampleFaultSchedule() {
	specs := make([]leakctl.RackServerSpec, 2)
	for i := range specs {
		cfg := leakctl.T3Config()
		cfg.NoiseSeed = int64(i + 1)
		specs[i] = leakctl.RackServerSpec{Config: cfg}
	}
	r, err := leakctl.NewRack(leakctl.RackConfig{Servers: specs, Workers: 1})
	if err != nil {
		panic(err)
	}

	jobs := []leakctl.Job{
		{ID: 0, Arrival: 0, Duration: 200, Demand: 60},
		{ID: 1, Arrival: 0, Duration: 200, Demand: 60},
	}
	// Server 0 fails 50 s in and is repaired at t=300.
	faults := &leakctl.FaultSchedule{Events: []leakctl.FaultEvent{
		{Kind: leakctl.PSUFail, Server: 0, At: 50, Clear: 300},
	}}

	res, err := leakctl.RunJobTraceCfg(r, jobs, leakctl.NewRoundRobinPolicy(), leakctl.TraceConfig{
		Dt: 1, Horizon: 700, Faults: faults,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("requeued: %d\n", res.Requeued)
	fmt.Printf("destroyed progress: %.0f job-seconds\n", res.LostJobSeconds)
	fmt.Printf("all jobs completed: %v\n", res.Completed == len(jobs))
	fmt.Printf("server 0 healthy again: %v\n", r.Health(0) == leakctl.Healthy)
	// Output:
	// requeued: 1
	// destroyed progress: 50 job-seconds
	// all jobs completed: true
	// server 0 healthy again: true
}
