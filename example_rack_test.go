package leakctl_test

import (
	"fmt"

	leakctl "repro"
)

// ExampleNewRack builds a two-server rack behind the default
// power-delivery chain — one PSU per server feeding a shared PDU — and
// shows the wall-side telemetry the chain adds: AC energy above DC energy,
// conversion losses, and the compounded chain efficiency under load.
func ExampleNewRack() {
	cold := leakctl.T3Config()
	cold.Ambient = 21
	hot := leakctl.T3Config()
	hot.Ambient = 30

	psu, pdu := leakctl.DefaultPSU(), leakctl.DefaultPDU()
	r, err := leakctl.NewRack(leakctl.RackConfig{
		Servers: []leakctl.RackServerSpec{
			{Name: "cold-aisle", Config: cold},
			{Name: "hot-aisle", Config: hot},
		},
		Workers: 1,
		PSU:     &psu,
		PDU:     &pdu,
	})
	if err != nil {
		panic(err)
	}

	r.SetLoad(0, 60)
	r.SetLoad(1, 60)
	for s := 0; s < 600; s++ {
		r.Step(1)
	}

	tel := r.Telemetry()
	eff := tel.TotalEnergyKWh / tel.WallEnergyKWh
	fmt.Printf("wall energy exceeds DC energy: %v\n", tel.WallEnergyKWh > tel.TotalEnergyKWh)
	fmt.Printf("losses accounted: %v\n", tel.LossEnergyKWh > 0)
	fmt.Printf("chain efficiency in the 85-90%% band: %v\n", eff > 0.85 && eff < 0.90)
	// Output:
	// wall energy exceeds DC energy: true
	// losses accounted: true
	// chain efficiency in the 85-90% band: true
}

// hottestFirst is a deliberately bad custom placement policy — always the
// hottest feasible server — showing that PlacementPolicy is a one-method
// extension point (plus Name/Reset) over per-server telemetry views.
type hottestFirst struct{}

func (hottestFirst) Name() string { return "hottest-first" }
func (hottestFirst) Reset()       {}

func (hottestFirst) Place(j leakctl.Job, views []leakctl.ServerView) int {
	best := -1
	for _, v := range views {
		if v.Free < j.Demand {
			continue
		}
		if best < 0 || v.MaxCPUTemp > views[best].MaxCPUTemp {
			best = v.Index
		}
	}
	return best
}

// ExamplePlacementPolicy runs a custom policy through the trace runner:
// on a cold/hot rack the hottest-first heuristic sends both jobs to the
// hot-aisle machine (slot 1), which the per-server loads expose.
func ExamplePlacementPolicy() {
	cold := leakctl.T3Config()
	cold.Ambient = 21
	hot := leakctl.T3Config()
	hot.Ambient = 30
	r, err := leakctl.NewRack(leakctl.RackConfig{
		Servers: []leakctl.RackServerSpec{{Config: cold}, {Config: hot}},
		Workers: 1,
	})
	if err != nil {
		panic(err)
	}

	jobs := []leakctl.Job{
		{ID: 0, Arrival: 0, Duration: 600, Demand: 30},
		{ID: 1, Arrival: 10, Duration: 600, Demand: 30},
	}
	res, err := leakctl.RunJobTrace(r, jobs, hottestFirst{}, 1, 60)
	if err != nil {
		panic(err)
	}
	fmt.Printf("placed=%d cold-load=%v hot-load=%v\n", res.Placed, r.Load(0), r.Load(1))
	// Output:
	// placed=2 cold-load=0.0% hot-load=60.0%
}

// ExampleRunJobTraceCfg demonstrates the rack-level wall-power cap: a
// budget below the rack's idle wall draw can never admit a placement, so
// the FIFO head defers on every step and the trace terminates with
// nothing placed — the starvation-free degenerate case.
func ExampleRunJobTraceCfg() {
	psu, pdu := leakctl.DefaultPSU(), leakctl.DefaultPDU()
	r, err := leakctl.NewRack(leakctl.RackConfig{
		Servers: []leakctl.RackServerSpec{
			{Config: leakctl.T3Config()},
			{Config: leakctl.T3Config()},
		},
		Workers: 1,
		PSU:     &psu,
		PDU:     &pdu,
	})
	if err != nil {
		panic(err)
	}

	jobs := []leakctl.Job{{ID: 0, Arrival: 0, Duration: 120, Demand: 50}}
	res, err := leakctl.RunJobTraceCfg(r, jobs, leakctl.NewRoundRobinPolicy(), leakctl.TraceConfig{
		Dt:       1,
		Horizon:  30,
		WallCapW: float64(r.WallPower()) / 2, // half the idle wall draw
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("placed=%d deferrals=%d\n", res.Placed, res.Deferrals)
	// Output:
	// placed=0 deferrals=30
}
