package cooling

import (
	"math"
	"testing"

	"repro/internal/units"
)

// TestZeroHeatIsExactlyFree pins the identity half of the facility
// contract: no heat means exactly zero blower, chiller and total cooling
// power — not merely small.
func TestZeroHeatIsExactlyFree(t *testing.T) {
	f := DefaultFacility(22)
	for _, q := range []float64{0, -1, -1e9} {
		if p := f.CoolingPower(q); p != 0 {
			t.Fatalf("CoolingPower(%g) = %g, want exactly 0", q, p)
		}
		if b, c := f.Split(q); b != 0 || c != 0 {
			t.Fatalf("Split(%g) = %g/%g, want exactly 0/0", q, b, c)
		}
		if p := f.CRAC.BlowerPower(q); p != 0 {
			t.Fatalf("BlowerPower(%g) = %g, want exactly 0", q, p)
		}
		if p := f.Chiller.Power(q, f.CRAC.SupplyC); p != 0 {
			t.Fatalf("Chiller.Power(%g) = %g, want exactly 0", q, p)
		}
	}
}

// TestCOPMonotonicity pins the signs of the COP surrogate: warmer supply
// helps, hotter outdoor air hurts, higher load helps (part-load droop
// recovers), and the floor binds for degenerate parameterizations.
func TestCOPMonotonicity(t *testing.T) {
	m := DefaultChiller()
	if cool, warm := m.COP(5000, 14), m.COP(5000, 26); warm <= cool {
		t.Fatalf("warmer supply must raise COP: %g @14C vs %g @26C", cool, warm)
	}
	if part, full := m.COP(500, 18), m.COP(20000, 18); full <= part {
		t.Fatalf("part load must sag COP: %g @500W vs %g @20kW", part, full)
	}
	hot := m
	hot.OutdoorC = 42
	if m.COP(5000, 18) <= hot.COP(5000, 18) {
		t.Fatalf("hotter outdoor air must lower COP: %g vs %g", m.COP(5000, 18), hot.COP(5000, 18))
	}
	// At the quoted design point (reference supply/outdoor, high load) the
	// COP approaches COP0 from below.
	if cop := m.COP(1e9, m.SupplyRefC); cop > m.COP0 || cop < 0.99*m.COP0 {
		t.Fatalf("design-point COP %g should approach COP0 %g", cop, m.COP0)
	}
	frozen := m
	frozen.SupplyGain = 10 // absurd: COP factor would go negative at cold supply
	if cop := frozen.COP(5000, -100); cop != frozen.MinCOP {
		t.Fatalf("COP floor must bind: got %g, want %g", cop, frozen.MinCOP)
	}
}

// TestCoolingPowerAccounting checks the stage split: the blower is
// proportional to the moved heat, and the chiller removes server heat
// plus blower heat at the setpoint's COP.
func TestCoolingPowerAccounting(t *testing.T) {
	f := DefaultFacility(18)
	const q = 4000.0
	blower, chiller := f.Split(q)
	if want := f.CRAC.BlowerCoeff * q; math.Abs(blower-want) > 1e-12 {
		t.Fatalf("blower %g, want %g", blower, want)
	}
	load := q + blower
	if want := load / f.Chiller.COP(load, f.CRAC.SupplyC); math.Abs(chiller-want) > 1e-12 {
		t.Fatalf("chiller %g, want %g", chiller, want)
	}
	if total := f.CoolingPower(q); math.Abs(total-blower-chiller) > 1e-12 {
		t.Fatalf("CoolingPower %g != blower %g + chiller %g", total, blower, chiller)
	}
	// More heat must never cost less to remove.
	if f.CoolingPower(2*q) <= f.CoolingPower(q) {
		t.Fatal("cooling power must be monotone in heat load")
	}
}

// TestAmbientDelta pins the setpoint wiring: the delta is the setpoint
// relative to the reference, and the default facility is the identity.
func TestAmbientDelta(t *testing.T) {
	if d := DefaultFacility(DefaultCRAC().ReferenceC).AmbientDelta(); d != 0 {
		t.Fatalf("reference setpoint must have zero delta, got %v", d)
	}
	f := DefaultFacility(26)
	if d := f.AmbientDelta(); d != 26-DefaultCRAC().ReferenceC {
		t.Fatalf("delta = %v, want %v", d, 26-DefaultCRAC().ReferenceC)
	}
}

// TestReturnAir checks the supply/return loop telemetry: return air sits
// above supply in proportion to load, and equals supply when idle.
func TestReturnAir(t *testing.T) {
	c := DefaultCRAC()
	if r := c.ReturnC(0); r != c.SupplyC {
		t.Fatalf("idle return air %v, want supply %v", r, c.SupplyC)
	}
	if r := c.ReturnC(c.CapacityW); r != c.SupplyC+c.AirRiseC {
		t.Fatalf("rated-load return air %v, want %v", r, c.SupplyC+c.AirRiseC)
	}
	if c.ReturnC(2000) <= c.SupplyC || c.ReturnC(4000) <= c.ReturnC(2000) {
		t.Fatal("return air must rise with load")
	}
}

// TestValidation covers the error paths.
func TestValidation(t *testing.T) {
	f := DefaultFacility(18)
	if err := f.Validate(); err != nil {
		t.Fatalf("default facility must validate: %v", err)
	}
	bad := f
	bad.CRAC.BlowerCoeff = -1
	if bad.Validate() == nil {
		t.Fatal("negative blower coefficient must be rejected")
	}
	bad = f
	bad.CRAC.CapacityW = 0
	if bad.Validate() == nil {
		t.Fatal("zero CRAC capacity must be rejected")
	}
	bad = f
	bad.Chiller.COP0 = 0
	if bad.Validate() == nil {
		t.Fatal("zero COP0 must be rejected")
	}
	bad = f
	bad.Chiller.MinCOP = 0
	if bad.Validate() == nil {
		t.Fatal("zero MinCOP must be rejected")
	}
	bad = f
	bad.Chiller.PartLoadDroop = 1
	if bad.Validate() == nil {
		t.Fatal("full part-load droop must be rejected")
	}
}

// TestValidationRejectsNonFinite sweeps NaN and ±Inf through every model
// field: NaN compares false against any bound, so without explicit
// finiteness checks each of these would pass the range tests and poison
// the power accounting.
func TestValidationRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		crac := []func(*CRACModel){
			func(c *CRACModel) { c.SupplyC = units.Celsius(v) },
			func(c *CRACModel) { c.ReferenceC = units.Celsius(v) },
			func(c *CRACModel) { c.BlowerCoeff = v },
			func(c *CRACModel) { c.CapacityW = v },
			func(c *CRACModel) { c.AirRiseC = units.Celsius(v) },
		}
		for i, mut := range crac {
			c := DefaultCRAC()
			mut(&c)
			if c.Validate() == nil {
				t.Errorf("CRAC field %d = %g accepted", i, v)
			}
		}
		chiller := []func(*ChillerModel){
			func(m *ChillerModel) { m.COP0 = v },
			func(m *ChillerModel) { m.SupplyRefC = units.Celsius(v) },
			func(m *ChillerModel) { m.SupplyGain = v },
			func(m *ChillerModel) { m.OutdoorC = units.Celsius(v) },
			func(m *ChillerModel) { m.OutdoorRefC = units.Celsius(v) },
			func(m *ChillerModel) { m.OutdoorPenalty = v },
			func(m *ChillerModel) { m.PartLoadDroop = v },
			func(m *ChillerModel) { m.PartLoadKneeW = v },
			func(m *ChillerModel) { m.MinCOP = v },
		}
		for i, mut := range chiller {
			m := DefaultChiller()
			mut(&m)
			if m.Validate() == nil {
				t.Errorf("chiller field %d = %g accepted", i, v)
			}
		}
		econ := []func(*EconomizerModel){
			func(e *EconomizerModel) { e.OutdoorBelowC = units.Celsius(v) },
			func(e *EconomizerModel) { e.FreeCoeff = v },
		}
		for i, mut := range econ {
			e := DefaultEconomizer()
			mut(&e)
			if e.Validate() == nil {
				t.Errorf("economizer field %d = %g accepted", i, v)
			}
		}
	}
}
