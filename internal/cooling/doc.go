// Package cooling closes the facility half of the energy chain: where
// internal/power carries a server's DC draw to the utility wall (PSU →
// PDU), this package carries every wall Watt onward as room heat that a
// CRAC/chiller pair must remove — the total-facility accounting the
// paper's fan-vs-leakage tradeoff ultimately feeds into.
//
// # The COP chain
//
// A CRACModel blows supply air at the cold-aisle setpoint and charges an
// air-transport cost (blower power proportional to the heat moved); a
// ChillerModel removes the collected heat — server heat plus the blower's
// own dissipation — at a coefficient of performance
//
//	COP = COP0 · f(load, outdoor)
//
// that improves with a warmer supply setpoint (less thermodynamic lift),
// degrades at partial load and degrades with hotter condenser-side air.
// The assembled Facility therefore exposes exactly the operator tradeoff
// the paper lifts to facility scope: raising the cold aisle makes the
// chiller cheaper per Watt but makes every server hotter — more leakage,
// faster fans, more wall heat to remove. Somewhere in between sits the
// setpoint that minimizes total facility energy.
//
// # Setpoint wiring
//
// Server configurations state their Ambient at the CRAC's reference
// supply temperature; CRACModel.AmbientDelta (SupplyC − ReferenceC) is
// the uniform shift a rack applies to every server inlet when a Facility
// is attached (a well-mixed cold aisle). At the reference setpoint the
// delta is zero and the servers see exactly their configured ambients.
//
// # Identity-chain guarantee
//
// The package extends the delivery chain's identity contract: with no
// Facility attached a rack's cooling power is exactly zero and every
// pre-existing metric is bit-identical to the facility-less build; with a
// Facility attached at the reference setpoint the physics are still bit
// identical (the ambient delta is exactly zero) and only the new
// facility telemetry — CoolingEnergyKWh, FacilityEnergyKWh, PUE — becomes
// non-trivial. CoolingPower(0) is exactly 0 by construction, so an
// unpowered rack costs nothing to cool.
//
// # Determinism contract
//
// All models here are pure functions of their inputs. The rack evaluates
// them serially, in index order, after its per-server fan-out barrier —
// the same contract every other cross-server reduction follows — so
// facility telemetry is byte-identical for any worker count.
package cooling
