package cooling

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// field pairs a parameter name with its value for the finiteness sweep.
type field struct {
	name string
	v    float64
}

// finiteFields rejects the first NaN or ±Inf parameter. Range checks
// alone cannot do this: NaN compares false against every bound, so a NaN
// field passes `< 0`-style validation and then poisons every power figure
// computed from the model.
func finiteFields(model string, fields ...field) error {
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("cooling: %s %s must be finite, got %g", model, f.name, f.v)
		}
	}
	return nil
}

// CRACModel is the computer-room air conditioner: the air-side half of the
// facility loop. It blows supply air at the cold-aisle setpoint, collects
// the servers' exhaust as return air, and hands the picked-up heat to the
// chilled-water loop. Server configurations state their Ambient at the
// reference supply temperature; moving the setpoint shifts every inlet by
// the same delta (a well-mixed cold aisle), which is exactly the knob the
// facility-level fan/leakage tradeoff turns.
type CRACModel struct {
	// SupplyC is the cold-aisle supply-air setpoint.
	SupplyC units.Celsius
	// ReferenceC is the supply temperature at which server Config.Ambient
	// values were specified. SupplyC == ReferenceC means the CRAC feeds the
	// servers exactly the inlet temperatures they were configured with.
	ReferenceC units.Celsius
	// BlowerCoeff is the air-transport cost: blower power per Watt of heat
	// moved (dimensionless, e.g. 0.05 = 5%). The blower sits in the air
	// stream, so its own power joins the heat the chiller must remove.
	BlowerCoeff float64
	// CapacityW is the rated heat-removal capacity, used to scale the
	// return-air temperature rise.
	CapacityW float64
	// AirRiseC is the supply→return air temperature rise at rated capacity.
	AirRiseC units.Celsius
}

// DefaultCRAC returns a room unit sized for a few racks: 18 °C supply (the
// reference, so the default is the identity on server ambients), a 5%
// air-transport cost, and a 12 °C design air-side rise at 40 kW.
func DefaultCRAC() CRACModel {
	return CRACModel{SupplyC: 18, ReferenceC: 18, BlowerCoeff: 0.05, CapacityW: 40000, AirRiseC: 12}
}

// Validate reports parameterization errors. Every field is additionally
// required to be finite: NaN compares false against any bound, so without
// the explicit checks a NaN coefficient would sail through the range
// tests and poison every downstream power figure.
func (c CRACModel) Validate() error {
	if err := finiteFields("CRAC",
		field{"supply setpoint", float64(c.SupplyC)},
		field{"reference supply", float64(c.ReferenceC)},
		field{"blower coefficient", c.BlowerCoeff},
		field{"capacity", c.CapacityW},
		field{"air rise", float64(c.AirRiseC)},
	); err != nil {
		return err
	}
	if c.BlowerCoeff < 0 {
		return fmt.Errorf("cooling: CRAC blower coefficient must be >= 0, got %g", c.BlowerCoeff)
	}
	if c.CapacityW <= 0 {
		return fmt.Errorf("cooling: CRAC capacity must be positive, got %g", c.CapacityW)
	}
	return nil
}

// AmbientDelta is the shift the setpoint applies to every server inlet:
// SupplyC − ReferenceC.
func (c CRACModel) AmbientDelta() units.Celsius { return c.SupplyC - c.ReferenceC }

// BlowerPower returns the air-mover power needed to transport heatW of
// server heat from the hot aisle back to the coil. Zero heat is exactly
// zero power — the identity half of the no-facility contract.
func (c CRACModel) BlowerPower(heatW float64) float64 {
	if heatW <= 0 {
		return 0
	}
	return c.BlowerCoeff * heatW
}

// ReturnC is the return-air (hot aisle) temperature implied by the heat
// load: the supply setpoint plus the design rise scaled by load over rated
// capacity. Telemetry flavor; the energy accounting never depends on it.
func (c CRACModel) ReturnC(heatW float64) units.Celsius {
	if heatW <= 0 {
		return c.SupplyC
	}
	return c.SupplyC + units.Celsius(float64(c.AirRiseC)*heatW/c.CapacityW)
}

// ChillerModel produces the chilled water the CRAC coil consumes. Its
// coefficient of performance follows the classic surrogate
//
//	COP = COP0 · f(load, outdoor)
//	    = COP0 · (1 + SupplyGain·(Tsupply − SupplyRefC))
//	           · (1 − PartLoadDroop/(1 + load/PartLoadKneeW))
//	           / (1 + OutdoorPenalty·(Toutdoor − OutdoorRefC))
//
// — warmer supply water means less thermodynamic lift (COP up), partial
// load wastes compressor cycling (COP down), and a hot condenser side
// raises the lift again (COP down). The floor MinCOP keeps a degenerate
// parameterization from dividing cooling power by ~0.
type ChillerModel struct {
	COP0           float64       // nominal COP at reference supply/outdoor, full load
	SupplyRefC     units.Celsius // supply temperature COP0 is quoted at
	SupplyGain     float64       // fractional COP change per °C of warmer supply
	OutdoorC       units.Celsius // condenser-side outdoor air temperature
	OutdoorRefC    units.Celsius // outdoor temperature COP0 is quoted at
	OutdoorPenalty float64       // fractional COP loss per °C of hotter outdoor air
	PartLoadDroop  float64       // COP fraction lost at zero load
	PartLoadKneeW  float64       // load (W) where half of the droop is recovered
	MinCOP         float64       // hard floor on the resulting COP
}

// DefaultChiller returns a water-cooled unit in the rack-scale envelope:
// COP 4.5 at an 18 °C supply / 30 °C outdoor design point, 2%/°C penalty
// for hotter outdoor air, and a 25% part-load droop recovering by 1.5 kW.
// SupplyGain is the *net plant* sensitivity to a warmer supply — the
// compressor's lift saving after the pumping and approach-temperature
// overheads that don't scale with setpoint — which is what makes the
// facility-level sweet spot an interior setpoint rather than "as warm as
// the servers survive".
func DefaultChiller() ChillerModel {
	return ChillerModel{
		COP0:           4.5,
		SupplyRefC:     18,
		SupplyGain:     0.003,
		OutdoorC:       30,
		OutdoorRefC:    30,
		OutdoorPenalty: 0.02,
		PartLoadDroop:  0.25,
		PartLoadKneeW:  1500,
		MinCOP:         0.5,
	}
}

// Validate reports parameterization errors; every field must be finite
// (see finiteFields).
func (m ChillerModel) Validate() error {
	if err := finiteFields("chiller",
		field{"COP0", m.COP0},
		field{"supply reference", float64(m.SupplyRefC)},
		field{"supply gain", m.SupplyGain},
		field{"outdoor temperature", float64(m.OutdoorC)},
		field{"outdoor reference", float64(m.OutdoorRefC)},
		field{"outdoor penalty", m.OutdoorPenalty},
		field{"part-load droop", m.PartLoadDroop},
		field{"part-load knee", m.PartLoadKneeW},
		field{"MinCOP", m.MinCOP},
	); err != nil {
		return err
	}
	if m.COP0 <= 0 {
		return fmt.Errorf("cooling: chiller COP0 must be positive, got %g", m.COP0)
	}
	if m.MinCOP <= 0 {
		return fmt.Errorf("cooling: chiller MinCOP must be positive, got %g", m.MinCOP)
	}
	if m.PartLoadDroop < 0 || m.PartLoadDroop >= 1 {
		return fmt.Errorf("cooling: chiller part-load droop must be in [0,1), got %g", m.PartLoadDroop)
	}
	return nil
}

// COP returns the coefficient of performance at the given coil load and
// supply setpoint, floored at MinCOP.
func (m ChillerModel) COP(loadW float64, supply units.Celsius) float64 {
	if loadW < 0 {
		loadW = 0
	}
	knee := m.PartLoadKneeW
	if knee <= 0 {
		knee = 1
	}
	cop := m.COP0
	cop *= 1 + m.SupplyGain*float64(supply-m.SupplyRefC)
	cop *= 1 - m.PartLoadDroop/(1+loadW/knee)
	cop /= 1 + m.OutdoorPenalty*float64(m.OutdoorC-m.OutdoorRefC)
	if cop < m.MinCOP {
		cop = m.MinCOP
	}
	return cop
}

// Power returns the compressor power drawn to remove loadW of heat at the
// given supply setpoint: load/COP, exactly zero at zero load.
func (m ChillerModel) Power(loadW float64, supply units.Celsius) float64 {
	if loadW <= 0 {
		return 0
	}
	return loadW / m.COP(loadW, supply)
}

// EconomizerModel is the water-side economizer option: when the outdoor
// air is cold enough, the chilled-water loop bypasses the compressor and
// rejects heat through a dry cooler — "free cooling" that costs only pumps
// and heat-exchanger fans. The engagement test is a hard threshold on the
// chiller's outdoor temperature: real plants stage the change-over, but a
// step keeps the model's energy accounting exactly piecewise and the
// engaged/bypassed halves individually testable.
type EconomizerModel struct {
	// OutdoorBelowC engages the economizer when the chiller's condenser-side
	// outdoor temperature is at or below this threshold. A useful threshold
	// sits below the CRAC supply setpoint (the dry cooler needs approach
	// headroom to reject into).
	OutdoorBelowC units.Celsius
	// FreeCoeff is the free-cooling transport cost: pump + dry-cooler power
	// per Watt of heat rejected while engaged (dimensionless, e.g. 0.03 =
	// 3%). It replaces the chiller's compressor term entirely; the CRAC
	// blower is still paid — air must move regardless of who chills the
	// water.
	FreeCoeff float64
}

// DefaultEconomizer returns a water-side economizer engaging at 14 °C
// outdoor — 4 °C of approach below the default 18 °C supply — with a 3%
// transport cost, roughly an order of magnitude below the compressor's
// 1/COP at the default operating point.
func DefaultEconomizer() EconomizerModel {
	return EconomizerModel{OutdoorBelowC: 14, FreeCoeff: 0.03}
}

// Validate reports parameterization errors; both fields must be finite
// (see finiteFields).
func (e EconomizerModel) Validate() error {
	if err := finiteFields("economizer",
		field{"engagement threshold", float64(e.OutdoorBelowC)},
		field{"free-cooling coefficient", e.FreeCoeff},
	); err != nil {
		return err
	}
	if e.FreeCoeff < 0 {
		return fmt.Errorf("cooling: economizer free-cooling coefficient must be >= 0, got %g", e.FreeCoeff)
	}
	return nil
}

// Engaged reports whether the economizer is in free-cooling mode at the
// given outdoor temperature.
func (e EconomizerModel) Engaged(outdoor units.Celsius) bool {
	return outdoor <= e.OutdoorBelowC
}

// Facility is the assembled cooling loop: one CRAC on the air side feeding
// one chiller on the water side. Attached to a rack it consumes the rack's
// per-step wall heat (every wall Watt becomes room heat) and emits the
// facility-side telemetry — cooling power, facility power, PUE.
type Facility struct {
	CRAC    CRACModel
	Chiller ChillerModel
	// Econ, when non-nil, is the water-side economizer: while the chiller's
	// outdoor temperature sits at or below the engagement threshold, the
	// compressor term of CoolingPower is replaced by the free-cooling
	// transport cost (FreeCoeff per Watt of heat, blower included). nil — the
	// default — keeps the compression-only loop and every pre-existing
	// facility metric bit-identical.
	Econ *EconomizerModel
}

// DefaultFacility returns the default CRAC/chiller pair with the cold
// aisle at the given supply setpoint.
func DefaultFacility(supplyC units.Celsius) Facility {
	crac := DefaultCRAC()
	crac.SupplyC = supplyC
	return Facility{CRAC: crac, Chiller: DefaultChiller()}
}

// Validate reports parameterization errors in any stage.
func (f Facility) Validate() error {
	if err := f.CRAC.Validate(); err != nil {
		return err
	}
	if err := f.Chiller.Validate(); err != nil {
		return err
	}
	if f.Econ != nil {
		return f.Econ.Validate()
	}
	return nil
}

// EconomizerEngaged reports whether the facility is currently in
// free-cooling mode: an economizer is fitted and the chiller's outdoor
// temperature sits at or below its engagement threshold.
func (f Facility) EconomizerEngaged() bool {
	return f.Econ != nil && f.Econ.Engaged(f.Chiller.OutdoorC)
}

// AmbientDelta is the shift the facility's setpoint applies to every
// server inlet (see CRACModel.AmbientDelta).
func (f Facility) AmbientDelta() units.Celsius { return f.CRAC.AmbientDelta() }

// Split attributes the cooling power for wallW of IT heat to its stages:
// the CRAC blower moving the air, and the water side removing both the
// server heat and the blower's own dissipation — the chiller's compressor
// at the setpoint-dependent COP, or the economizer's free-cooling
// transport cost while engaged (cold outdoor air does the thermodynamic
// work).
func (f Facility) Split(wallW float64) (blowerW, chillerW float64) {
	if wallW <= 0 {
		return 0, 0
	}
	blowerW = f.CRAC.BlowerPower(wallW)
	if f.EconomizerEngaged() {
		return blowerW, f.Econ.FreeCoeff * (wallW + blowerW)
	}
	chillerW = f.Chiller.Power(wallW+blowerW, f.CRAC.SupplyC)
	return blowerW, chillerW
}

// CoolingPower returns the total facility-side power (blower + chiller)
// spent removing wallW of IT heat. Zero heat is exactly zero cooling
// power: a facility over an idle (unpowered) rack is the identity.
func (f Facility) CoolingPower(wallW float64) float64 {
	blowerW, chillerW := f.Split(wallW)
	return blowerW + chillerW
}

// CoolingPowerDerated is CoolingPower with the plant's efficiency derated
// by the given fraction in [0, 1): the same heat removal drawn at
// 1/(1−derate) times the healthy power — the fault-injection surface for a
// degraded chiller (fault.ChillerDegraded). Zero derate is exactly
// CoolingPower; a derate at or past 1 is clamped to the representable
// maximum rather than dividing by ≤ 0.
func (f Facility) CoolingPowerDerated(wallW, derate float64) float64 {
	p := f.CoolingPower(wallW)
	if derate <= 0 {
		return p
	}
	if derate >= 1 {
		derate = 1 - 1e-9
	}
	return p / (1 - derate)
}
