package cooling

import (
	"math"
	"testing"
)

// TestEconomizerEngagement: the hard outdoor threshold, at and around the
// boundary, and the nil-econ default.
func TestEconomizerEngagement(t *testing.T) {
	econ := DefaultEconomizer()
	if !econ.Engaged(econ.OutdoorBelowC) {
		t.Error("threshold is inclusive: engaged at exactly OutdoorBelowC")
	}
	if econ.Engaged(econ.OutdoorBelowC + 0.1) {
		t.Error("must bypass just above the threshold")
	}
	fac := DefaultFacility(18)
	if fac.EconomizerEngaged() {
		t.Error("facility without an economizer must never engage one")
	}
	fac.Econ = &econ
	fac.Chiller.OutdoorC = econ.OutdoorBelowC - 4
	if !fac.EconomizerEngaged() {
		t.Error("cold outdoor with a fitted economizer must engage")
	}
	fac.Chiller.OutdoorC = 30
	if fac.EconomizerEngaged() {
		t.Error("warm outdoor must bypass")
	}
}

// TestEconomizerFreeCooling: engaged, the water side costs exactly
// FreeCoeff per Watt of (heat + blower), replacing the compressor term —
// an order of magnitude cheaper than compression at the default operating
// point — while the blower is unchanged.
func TestEconomizerFreeCooling(t *testing.T) {
	base := DefaultFacility(18)
	econ := DefaultEconomizer()
	free := base
	free.Econ = &econ
	free.Chiller.OutdoorC = 10 // engaged

	const wallW = 12000.0
	blowerBase, chillerBase := base.Split(wallW)
	blowerFree, chillerFree := free.Split(wallW)
	if blowerFree != blowerBase {
		t.Errorf("blower must not depend on the water side: %g vs %g", blowerFree, blowerBase)
	}
	if want := econ.FreeCoeff * (wallW + blowerFree); chillerFree != want {
		t.Errorf("free-cooling water side %g, want FreeCoeff·(wall+blower) = %g", chillerFree, want)
	}
	if chillerFree >= chillerBase/3 {
		t.Errorf("free cooling (%g W) should dramatically undercut compression (%g W)", chillerFree, chillerBase)
	}
	if free.CoolingPower(0) != 0 {
		t.Error("zero heat stays exactly free with an economizer fitted")
	}
	// The derate surface composes: a derated engaged plant still pays more.
	if d := free.CoolingPowerDerated(wallW, 0.5); math.Abs(d-2*free.CoolingPower(wallW)) > 1e-9 {
		t.Errorf("derated free cooling %g, want doubled %g", d, 2*free.CoolingPower(wallW))
	}
}

// TestEconomizerBypassBitIdentical: above the threshold — and for a nil
// Econ — every facility number is bit-identical to the pre-economizer
// loop, the compatibility contract the field's documentation promises.
func TestEconomizerBypassBitIdentical(t *testing.T) {
	base := DefaultFacility(18)
	econ := DefaultEconomizer()
	warm := base
	warm.Econ = &econ // default chiller outdoor is 30 °C: bypassed
	for _, wallW := range []float64{0, 500, 4000, 12000, 40000} {
		bb, bc := base.Split(wallW)
		wb, wc := warm.Split(wallW)
		if bb != wb || bc != wc {
			t.Errorf("wall %g: bypassed economizer changed the split: (%g,%g) vs (%g,%g)", wallW, wb, wc, bb, bc)
		}
		if base.CoolingPower(wallW) != warm.CoolingPower(wallW) {
			t.Errorf("wall %g: bypassed economizer changed cooling power", wallW)
		}
	}
}

// TestEconomizerValidation: a negative transport cost is rejected, through
// both the model and the facility surface.
func TestEconomizerValidation(t *testing.T) {
	bad := EconomizerModel{OutdoorBelowC: 14, FreeCoeff: -0.01}
	if err := bad.Validate(); err == nil {
		t.Error("negative free-cooling coefficient must be rejected")
	}
	fac := DefaultFacility(18)
	fac.Econ = &bad
	if err := fac.Validate(); err == nil {
		t.Error("facility must surface the economizer's validation error")
	}
	good := DefaultEconomizer()
	good.FreeCoeff = 0 // free transport is legal (idealized dry cooler)
	if err := good.Validate(); err != nil {
		t.Errorf("zero transport cost is legal, got %v", err)
	}
}
