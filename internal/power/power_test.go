package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// The paper's fitted constants.
const (
	k1 = 0.4452
	c0 = 10.0
	k2 = 0.3231
	k3 = 0.04749
)

func paperModel() ServerModel {
	return ServerModel{
		IdleFloor: 365,
		Active:    ActiveModel{K1: k1},
		Leakage:   LeakageModel{C: c0, K2: k2, K3: k3},
		Fans:      FanLaw{Coeff: 3.5e-10},
		Memory:    MemoryModel{Idle: 40, KU: 0.86},
	}
}

func TestActiveLinear(t *testing.T) {
	m := ActiveModel{K1: k1}
	if got := m.Power(0); got != 0 {
		t.Fatalf("P(0) = %v", got)
	}
	if got := m.Power(100); math.Abs(float64(got)-44.52) > 1e-9 {
		t.Fatalf("P(100) = %v, want 44.52W", got)
	}
	if got := m.Power(50); math.Abs(float64(got)-22.26) > 1e-9 {
		t.Fatalf("P(50) = %v", got)
	}
	// Clamped outside range.
	if m.Power(-10) != m.Power(0) || m.Power(200) != m.Power(100) {
		t.Fatal("utilization not clamped")
	}
}

func TestLeakageExponential(t *testing.T) {
	m := LeakageModel{C: c0, K2: k2, K3: k3}
	// At 70°C the paper's curve gives ~10 + 0.3231·e^3.3243 ≈ 19.0 W.
	got := float64(m.Power(70))
	if math.Abs(got-19.0) > 0.3 {
		t.Fatalf("Pleak(70) = %g, want ≈19.0", got)
	}
	// Strictly increasing in T.
	prev := m.Power(20)
	for temp := units.Celsius(25); temp <= 95; temp += 5 {
		cur := m.Power(temp)
		if cur <= prev {
			t.Fatalf("leakage not increasing at %v", temp)
		}
		prev = cur
	}
}

func TestLeakageSlopeMatchesFiniteDifference(t *testing.T) {
	m := LeakageModel{C: c0, K2: k2, K3: k3}
	for _, temp := range []units.Celsius{40, 60, 80} {
		h := 1e-5
		fd := (float64(m.Power(temp+units.Celsius(h))) - float64(m.Power(temp))) / h
		if math.Abs(fd-m.Slope(temp)) > 1e-4 {
			t.Fatalf("slope at %v: analytic %g vs fd %g", temp, m.Slope(temp), fd)
		}
	}
}

func TestFanCubic(t *testing.T) {
	f := FanLaw{Coeff: 3.5e-10}
	// Doubling RPM multiplies power by 8.
	p1 := float64(f.Power(2000))
	p2 := float64(f.Power(4000))
	if math.Abs(p2/p1-8) > 1e-9 {
		t.Fatalf("cubic law violated: %g/%g", p2, p1)
	}
	if f.Power(0) != 0 {
		t.Fatal("P(0) != 0")
	}
	if f.Power(-100) != 0 {
		t.Fatal("negative RPM should clamp to 0")
	}
	// Sanity magnitudes for the calibrated bank.
	if p := float64(f.Power(3300)); p < 10 || p > 16 {
		t.Fatalf("Pfan(3300) = %g, expected ~12.6W", p)
	}
}

func TestFanMonotoneProperty(t *testing.T) {
	f := FanLaw{Coeff: 3.5e-10}
	prop := func(a, b float64) bool {
		ra, rb := math.Abs(a), math.Abs(b)
		if math.IsNaN(ra) || math.IsNaN(rb) || ra > 1e6 || rb > 1e6 {
			return true
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		return f.Power(units.RPM(ra)) <= f.Power(units.RPM(rb))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryModel(t *testing.T) {
	m := MemoryModel{Idle: 40, KU: 0.86}
	if got := float64(m.Power(0)); got != 40 {
		t.Fatalf("Pmem(0) = %g", got)
	}
	if got := float64(m.Power(100)); math.Abs(got-126) > 1e-9 {
		t.Fatalf("Pmem(100) = %g, want 126", got)
	}
}

func TestBreakdownTotals(t *testing.T) {
	b := Breakdown{Idle: 365, Active: 44.5, Leakage: 19, Memory: 126, Fan: 12.6}
	if math.Abs(float64(b.Total())-567.1) > 1e-9 {
		t.Fatalf("total = %v", b.Total())
	}
	if math.Abs(float64(b.AboveIdle())-202.1) > 1e-9 {
		t.Fatalf("above idle = %v", b.AboveIdle())
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestServerModelAt(t *testing.T) {
	s := paperModel()
	b := s.At(100, 70, 2400)
	if b.Active != s.Active.Power(100) || b.Leakage != s.Leakage.Power(70) || b.Fan != s.Fans.Power(2400) {
		t.Fatal("breakdown components inconsistent")
	}
	// Full-load peak at default fan speed should be in the high 500s W:
	// the back-solved Table I calibration.
	peak := float64(s.At(100, 60, 3300).Total())
	if peak < 520 || peak > 580 {
		t.Fatalf("peak power = %g, want ~540W calibration", peak)
	}
}

func TestCPUHeatExcludesFanAndMemory(t *testing.T) {
	s := paperModel()
	h := s.CPUHeat(50, 60)
	want := s.Active.Power(50) + s.Leakage.Power(60)
	if h != want {
		t.Fatalf("CPUHeat = %v, want %v", h, want)
	}
}

func TestPSUModel(t *testing.T) {
	p := PSUModel{Eta0: 0.94, Droop: 0.10, Knee: 100}
	if p.Wall(0) != 0 {
		t.Fatal("Wall(0) != 0")
	}
	// Efficiency improves with load.
	if !(p.Efficiency(50) < p.Efficiency(500)) {
		t.Fatal("efficiency should rise with load")
	}
	// Wall power always exceeds DC power.
	for _, dc := range []units.Watts{10, 100, 400, 700} {
		if p.Wall(dc) <= dc {
			t.Fatalf("wall %v <= dc %v", p.Wall(dc), dc)
		}
	}
	// Efficiency floor guards degenerate parameters.
	bad := PSUModel{Eta0: 0.0, Droop: 1.0, Knee: 0}
	if bad.Efficiency(10) < 0.05 {
		t.Fatal("efficiency floor not applied")
	}
}

func TestPSUZeroLoadEfficiency(t *testing.T) {
	p := DefaultPSU()
	// The curve's zero-load limit is Eta0−Droop, well above the 5% floor.
	want := p.Eta0 - p.Droop
	if got := p.Efficiency(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Efficiency(0) = %g, want %g", got, want)
	}
	// Zero (and negative) DC load draws nothing from the wall: an off
	// server cannot consume AC power through the efficiency curve.
	if p.Wall(0) != 0 || p.Wall(-5) != 0 {
		t.Fatal("zero/negative load must draw zero wall power")
	}
	// Negative load clamps to the zero-load efficiency, not beyond.
	if got := p.Efficiency(-100); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Efficiency(-100) = %g, want clamp to %g", got, want)
	}
}

func TestPSUKneeCrossover(t *testing.T) {
	p := DefaultPSU()
	// At exactly the knee, half the droop is recovered:
	// eta(Knee) = Eta0 − Droop/2.
	want := p.Eta0 - p.Droop/2
	if got := p.Efficiency(units.Watts(p.Knee)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Efficiency(knee) = %g, want %g", got, want)
	}
	// The curve is strictly increasing through the knee and approaches
	// Eta0 from below at high load.
	below := p.Efficiency(units.Watts(p.Knee / 2))
	at := p.Efficiency(units.Watts(p.Knee))
	above := p.Efficiency(units.Watts(p.Knee * 2))
	if !(below < at && at < above && above < p.Eta0) {
		t.Fatalf("knee crossover not monotone: %g %g %g (eta0 %g)", below, at, above, p.Eta0)
	}
}

func TestPSUWallMonotoneInLoad(t *testing.T) {
	// More DC out always needs more AC in — the property power-capped
	// placement relies on (a deferred job can never lower the wall draw).
	p := DefaultPSU()
	prev := p.Wall(0)
	for dc := units.Watts(10); dc <= 1200; dc += 10 {
		cur := p.Wall(dc)
		if cur <= prev {
			t.Fatalf("wall draw not increasing at %v", dc)
		}
		prev = cur
	}
}

func TestPDUModel(t *testing.T) {
	d := DefaultPDU()
	if d.Wall(0) != 0 {
		t.Fatal("idle PDU must draw nothing")
	}
	// Same curve family as the PSU: zero-load limit, knee crossover.
	if got, want := d.Efficiency(0), d.Eta0-d.Droop; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Efficiency(0) = %g, want %g", got, want)
	}
	if got, want := d.Efficiency(units.Watts(d.Knee)), d.Eta0-d.Droop/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Efficiency(knee) = %g, want %g", got, want)
	}
	// A rack-scale load passes with low single-digit losses.
	if eta := d.Efficiency(8000); eta < 0.95 || eta >= d.Eta0 {
		t.Fatalf("Efficiency(8kW) = %g, want in [0.95, %g)", eta, d.Eta0)
	}
	for _, w := range []units.Watts{100, 2000, 10000} {
		if d.Wall(w) <= w {
			t.Fatalf("PDU wall %v <= load %v", d.Wall(w), w)
		}
	}
}

func TestDefaultChainComposition(t *testing.T) {
	// A typical 8-server rack point: per-server DC through the PSU, summed,
	// through the PDU. The wall draw must exceed DC by the compounded
	// losses — between ~6% (asymptotes) and ~20% (floors) overall.
	psu, pdu := DefaultPSU(), DefaultPDU()
	perServer := units.Watts(550)
	var acIn units.Watts
	for i := 0; i < 8; i++ {
		acIn += psu.Wall(perServer)
	}
	wall := float64(pdu.Wall(acIn))
	dc := float64(perServer) * 8
	if ratio := wall / dc; ratio < 1.06 || ratio > 1.20 {
		t.Fatalf("chain amplification %g, want in [1.06, 1.20]", ratio)
	}
}

func TestLeakageTradeoffConvexity(t *testing.T) {
	// The core insight of Fig 2(a): over the operating range there is an
	// interior minimum of fan+leakage power. Emulate with the calibrated
	// steady-state map: higher RPM → lower temp → less leakage, more fan.
	s := paperModel()
	rpms := []units.RPM{1800, 2400, 3000, 3600, 4200}
	// Steady temps at 100% util from the calibrated anchors.
	temps := []units.Celsius{85, 68, 60, 55, 52}
	sum := make([]float64, len(rpms))
	for i := range rpms {
		sum[i] = float64(s.Fans.Power(rpms[i]) + s.Leakage.Power(temps[i]))
	}
	// Minimum strictly inside the range, at 2400 RPM (index 1).
	minIdx := 0
	for i, v := range sum {
		if v < sum[minIdx] {
			minIdx = i
		}
	}
	if minIdx != 1 {
		t.Fatalf("fan+leak minimum at %v, want 2400RPM; sums=%v", rpms[minIdx], sum)
	}
}
