// Package power contains the power model components of the simulated server.
//
// The decomposition follows Eqn. (1) of the paper:
//
//	Ptotal = Pactive + Pleak + Pfan
//
// with Pactive = k1·U and Pleak = C + k2·e^(k3·T) (Eqn. 2). These models are
// the simulator's ground truth; the fitting pipeline in internal/fitting
// must recover the constants from telemetry alone, which closes the loop on
// the paper's Section IV.
//
// Two additional components the paper folds into its "idle energy" are
// modelled explicitly so Table I energy magnitudes land in the right range:
// a constant non-CPU idle floor and a utilization-proportional memory/IO
// component (both are excluded from the leakage analysis, exactly as the
// paper excludes idle energy from its net-savings computation).
package power

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// ActiveModel is the dynamic CPU power model Pactive = K1·U with U in
// percent. K1 is in Watts per percentage point.
type ActiveModel struct {
	K1 float64
}

// Power returns the active power at utilization u.
func (m ActiveModel) Power(u units.Percent) units.Watts {
	return units.Watts(m.K1 * float64(u.Clamp()))
}

// LeakageModel is the temperature-dependent leakage model
// Pleak = C + K2·e^(K3·T).
type LeakageModel struct {
	C, K2, K3 float64
}

// Power returns the leakage power at die temperature t.
func (m LeakageModel) Power(t units.Celsius) units.Watts {
	return units.Watts(m.C + m.K2*math.Exp(m.K3*float64(t)))
}

// Slope returns dPleak/dT at temperature t, used by the steady-state solver
// to detect thermal-runaway operating points.
func (m LeakageModel) Slope(t units.Celsius) float64 {
	return m.K2 * m.K3 * math.Exp(m.K3*float64(t))
}

// FanLaw is the cubic fan power law Pfan = Coeff·RPM³ for a whole fan bank.
// The paper: "fan power is a cubic function of fan speed".
type FanLaw struct {
	Coeff float64 // W / RPM³
}

// Power returns the bank power at speed r.
func (f FanLaw) Power(r units.RPM) units.Watts {
	v := float64(r)
	if v < 0 {
		v = 0
	}
	return units.Watts(f.Coeff * v * v * v)
}

// MemoryModel is the non-CPU dynamic power (DIMMs, IO) proportional to
// utilization: Pmem = Idle + KU·U.
type MemoryModel struct {
	Idle float64 // W at zero utilization
	KU   float64 // W per percentage point
}

// Power returns the memory subsystem power at utilization u.
func (m MemoryModel) Power(u units.Percent) units.Watts {
	return units.Watts(m.Idle + m.KU*float64(u.Clamp()))
}

// PSUModel converts DC load power to AC wall power through a load-dependent
// efficiency curve (efficiency sags at very low load). Efficiency is modelled
// as Eta0 - Droop/(1+load/Knee) which rises from (Eta0-Droop) at zero load
// toward Eta0 at high load.
type PSUModel struct {
	Eta0  float64 // asymptotic efficiency, e.g. 0.94
	Droop float64 // efficiency loss at zero load, e.g. 0.10
	Knee  float64 // load (W) where half of the droop is recovered
}

// Wall returns the AC input power needed to deliver dc Watts.
func (p PSUModel) Wall(dc units.Watts) units.Watts {
	if dc <= 0 {
		return 0
	}
	eta := p.Efficiency(dc)
	return units.Watts(float64(dc) / eta)
}

// Efficiency returns the conversion efficiency at the given DC load.
func (p PSUModel) Efficiency(dc units.Watts) float64 {
	load := float64(dc)
	if load < 0 {
		load = 0
	}
	knee := p.Knee
	if knee <= 0 {
		knee = 1
	}
	eta := p.Eta0 - p.Droop/(1+load/knee)
	if eta < 0.05 {
		eta = 0.05
	}
	return eta
}

// Breakdown attributes one instant of server power to its components, in
// Watts. Total is the sum of the parts.
type Breakdown struct {
	Idle    units.Watts
	Active  units.Watts
	Leakage units.Watts
	Memory  units.Watts
	Fan     units.Watts
}

// Total sums all components.
func (b Breakdown) Total() units.Watts {
	return b.Idle + b.Active + b.Leakage + b.Memory + b.Fan
}

// AboveIdle is the controllable part the paper's net-savings metric uses:
// everything except the constant idle floor.
func (b Breakdown) AboveIdle() units.Watts { return b.Total() - b.Idle }

func (b Breakdown) String() string {
	return fmt.Sprintf("total=%.1fW (idle=%.1f active=%.1f leak=%.1f mem=%.1f fan=%.1f)",
		float64(b.Total()), float64(b.Idle), float64(b.Active), float64(b.Leakage), float64(b.Memory), float64(b.Fan))
}

// ServerModel bundles all component models into the server's power budget.
type ServerModel struct {
	IdleFloor units.Watts // constant non-CPU baseline
	Active    ActiveModel
	Leakage   LeakageModel
	Fans      FanLaw
	Memory    MemoryModel
}

// At evaluates the budget at utilization u, CPU temperature t and fan speed r.
func (s ServerModel) At(u units.Percent, t units.Celsius, r units.RPM) Breakdown {
	return Breakdown{
		Idle:    s.IdleFloor,
		Active:  s.Active.Power(u),
		Leakage: s.Leakage.Power(t),
		Memory:  s.Memory.Power(u),
		Fan:     s.Fans.Power(r),
	}
}

// CPUHeat returns the power dissipated inside the CPU package (active +
// leakage), the quantity injected into the thermal model. Memory power heats
// the DIMMs; fan and idle-floor power is dissipated outside the airflow path
// relevant to the CPU dies (PSUs and disks sit beside the airflow in the
// paper's server).
func (s ServerModel) CPUHeat(u units.Percent, t units.Celsius) units.Watts {
	return s.Active.Power(u) + s.Leakage.Power(t)
}
