package power

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// ActiveModel is the dynamic CPU power model Pactive = K1·U with U in
// percent. K1 is in Watts per percentage point.
type ActiveModel struct {
	K1 float64
}

// Power returns the active power at utilization u.
func (m ActiveModel) Power(u units.Percent) units.Watts {
	return units.Watts(m.K1 * float64(u.Clamp()))
}

// LeakageModel is the temperature-dependent leakage model
// Pleak = C + K2·e^(K3·T).
type LeakageModel struct {
	C, K2, K3 float64
}

// Power returns the leakage power at die temperature t.
func (m LeakageModel) Power(t units.Celsius) units.Watts {
	return units.Watts(m.C + m.K2*math.Exp(m.K3*float64(t)))
}

// Slope returns dPleak/dT at temperature t, used by the steady-state solver
// to detect thermal-runaway operating points.
func (m LeakageModel) Slope(t units.Celsius) float64 {
	return m.K2 * m.K3 * math.Exp(m.K3*float64(t))
}

// FanLaw is the cubic fan power law Pfan = Coeff·RPM³ for a whole fan bank.
// The paper: "fan power is a cubic function of fan speed".
type FanLaw struct {
	Coeff float64 // W / RPM³
}

// Power returns the bank power at speed r.
func (f FanLaw) Power(r units.RPM) units.Watts {
	v := float64(r)
	if v < 0 {
		v = 0
	}
	return units.Watts(f.Coeff * v * v * v)
}

// MemoryModel is the non-CPU dynamic power (DIMMs, IO) proportional to
// utilization: Pmem = Idle + KU·U.
type MemoryModel struct {
	Idle float64 // W at zero utilization
	KU   float64 // W per percentage point
}

// Power returns the memory subsystem power at utilization u.
func (m MemoryModel) Power(u units.Percent) units.Watts {
	return units.Watts(m.Idle + m.KU*float64(u.Clamp()))
}

// convEfficiency is the shared load-dependent efficiency curve of the
// power-delivery stages: eta(load) = eta0 − droop/(1+load/knee), rising
// from (eta0−droop) at zero load toward eta0 at high load, floored at 5%
// so a degenerate parameterization cannot divide wall power by ~0.
func convEfficiency(load, eta0, droop, knee float64) float64 {
	if load < 0 {
		load = 0
	}
	if knee <= 0 {
		knee = 1
	}
	eta := eta0 - droop/(1+load/knee)
	if eta < 0.05 {
		eta = 0.05
	}
	return eta
}

// PSUModel converts DC load power to AC wall power through a load-dependent
// efficiency curve (efficiency sags at very low load). Efficiency is modelled
// as Eta0 - Droop/(1+load/Knee) which rises from (Eta0-Droop) at zero load
// toward Eta0 at high load.
type PSUModel struct {
	Eta0  float64 // asymptotic efficiency, e.g. 0.94
	Droop float64 // efficiency loss at zero load, e.g. 0.10
	Knee  float64 // load (W) where half of the droop is recovered
}

// DefaultPSU returns an 80-Plus-class server supply sized for the T3
// server's 400-1100 W DC envelope: 94% asymptotic efficiency, sagging
// toward 84% at no load, with half the droop recovered by 150 W.
func DefaultPSU() PSUModel { return PSUModel{Eta0: 0.94, Droop: 0.10, Knee: 150} }

// Wall returns the AC input power needed to deliver dc Watts.
func (p PSUModel) Wall(dc units.Watts) units.Watts {
	if dc <= 0 {
		return 0
	}
	return units.Watts(float64(dc) / p.Efficiency(dc))
}

// Efficiency returns the conversion efficiency at the given DC load.
func (p PSUModel) Efficiency(dc units.Watts) float64 {
	return convEfficiency(float64(dc), p.Eta0, p.Droop, p.Knee)
}

// PDUModel is the rack-level power distribution unit: every server PSU's
// AC input is fed from one PDU whose own losses (breakers, transformer,
// cabling) are load-dependent with the same curve family as the PSU. Its
// input is the rack's wall draw at the utility feed.
type PDUModel struct {
	Eta0  float64 // asymptotic efficiency, e.g. 0.98
	Droop float64 // efficiency loss at zero load, e.g. 0.04
	Knee  float64 // load (W) where half of the droop is recovered
}

// DefaultPDU returns a rack PDU sized for tens of servers: 98% asymptotic
// efficiency with a small low-load droop and a 2 kW knee.
func DefaultPDU() PDUModel { return PDUModel{Eta0: 0.98, Droop: 0.04, Knee: 2000} }

// Wall returns the utility-side input power needed to deliver load Watts
// to the PDU's outlets (the summed PSU inputs).
func (p PDUModel) Wall(load units.Watts) units.Watts {
	if load <= 0 {
		return 0
	}
	return units.Watts(float64(load) / p.Efficiency(load))
}

// Efficiency returns the conversion efficiency at the given outlet load.
func (p PDUModel) Efficiency(load units.Watts) float64 {
	return convEfficiency(float64(load), p.Eta0, p.Droop, p.Knee)
}

// Breakdown attributes one instant of server power to its components, in
// Watts. Total is the sum of the parts.
type Breakdown struct {
	Idle    units.Watts
	Active  units.Watts
	Leakage units.Watts
	Memory  units.Watts
	Fan     units.Watts
}

// Total sums all components.
func (b Breakdown) Total() units.Watts {
	return b.Idle + b.Active + b.Leakage + b.Memory + b.Fan
}

// AboveIdle is the controllable part the paper's net-savings metric uses:
// everything except the constant idle floor.
func (b Breakdown) AboveIdle() units.Watts { return b.Total() - b.Idle }

func (b Breakdown) String() string {
	return fmt.Sprintf("total=%.1fW (idle=%.1f active=%.1f leak=%.1f mem=%.1f fan=%.1f)",
		float64(b.Total()), float64(b.Idle), float64(b.Active), float64(b.Leakage), float64(b.Memory), float64(b.Fan))
}

// ServerModel bundles all component models into the server's power budget.
type ServerModel struct {
	IdleFloor units.Watts // constant non-CPU baseline
	Active    ActiveModel
	Leakage   LeakageModel
	Fans      FanLaw
	Memory    MemoryModel
}

// At evaluates the budget at utilization u, CPU temperature t and fan speed r.
func (s ServerModel) At(u units.Percent, t units.Celsius, r units.RPM) Breakdown {
	return Breakdown{
		Idle:    s.IdleFloor,
		Active:  s.Active.Power(u),
		Leakage: s.Leakage.Power(t),
		Memory:  s.Memory.Power(u),
		Fan:     s.Fans.Power(r),
	}
}

// CPUHeat returns the power dissipated inside the CPU package (active +
// leakage), the quantity injected into the thermal model. Memory power heats
// the DIMMs; fan and idle-floor power is dissipated outside the airflow path
// relevant to the CPU dies (PSUs and disks sit beside the airflow in the
// paper's server).
func (s ServerModel) CPUHeat(u units.Percent, t units.Celsius) units.Watts {
	return s.Active.Power(u) + s.Leakage.Power(t)
}
