// Package power contains the power model components of the simulated
// server and the rack's power-delivery chain.
//
// The server-side decomposition follows Eqn. (1) of the paper:
//
//	Ptotal = Pactive + Pleak + Pfan
//
// with Pactive = k1·U and Pleak = C + k2·e^(k3·T) (Eqn. 2). These models
// are the simulator's ground truth; the fitting pipeline in
// internal/fitting must recover the constants from telemetry alone, which
// closes the loop on the paper's Section IV.
//
// Two additional components the paper folds into its "idle energy" are
// modelled explicitly so Table I energy magnitudes land in the right
// range: a constant non-CPU idle floor and a utilization-proportional
// memory/IO component (both are excluded from the leakage analysis,
// exactly as the paper excludes idle energy from its net-savings
// computation).
//
// # Power-delivery chain
//
// PSUModel and PDUModel extend the DC budget to the wall: a per-server
// supply converts DC load to AC input, and a shared rack-level
// distribution unit lifts the summed PSU inputs to the utility feed. Both
// share one curve family, eta(load) = Eta0 − Droop/(1+load/Knee) —
// efficiency sags at low load and approaches Eta0 asymptotically — so
// conversion losses are monotone in load and every DC watt a placement
// saves is amplified at the wall. internal/rack owns the roll-up and the
// wall-side telemetry; this package only defines the curves.
package power
