package dvfs

import (
	"fmt"

	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/units"
)

// RunConfig controls a coordinated-controller evaluation run.
type RunConfig struct {
	Dt         float64 // simulation step
	Stabilize  float64 // idle seconds before the measured window
	HoldOff    float64 // minimum seconds between setting changes
	PollPeriod float64 // utilization polling period
	UtilWindow float64 // sar-style averaging window
}

// DefaultRun mirrors the paper's evaluation protocol.
func DefaultRun() RunConfig {
	return RunConfig{Dt: 1, Stabilize: 5 * 60, HoldOff: 60, PollPeriod: 1, UtilWindow: 30}
}

// RunResult reports the coordinated run's metrics.
type RunResult struct {
	EnergyKWh  float64
	PeakPowerW float64
	MaxTempC   float64
	Changes    int // fan or P-state changes
	AvgRPM     float64
	Throttled  bool    // any throughput loss observed
	MinFreq    float64 // lowest frequency scale used
}

// Run evaluates the coordinated table on a workload profile. The runner
// owns the loop because, unlike the fan-only controllers, this policy
// actuates two knobs (P-state and fan speed).
func Run(cfg server.Config, table *Table, prof loadgen.Profile, rc RunConfig) (RunResult, error) {
	if table == nil || len(table.Entries) == 0 {
		return RunResult{}, fmt.Errorf("dvfs: nil or empty table")
	}
	if prof == nil {
		return RunResult{}, fmt.Errorf("dvfs: nil profile")
	}
	if rc.Dt <= 0 {
		return RunResult{}, fmt.Errorf("dvfs: non-positive dt")
	}
	srv, err := server.New(cfg)
	if err != nil {
		return RunResult{}, err
	}
	gen, err := loadgen.New(prof, loadgen.WithoutPWM())
	if err != nil {
		return RunResult{}, err
	}

	window := int(rc.UtilWindow / rc.Dt)
	if window < 1 {
		window = 1
	}
	samples := make([]float64, 0, window)
	meanUtil := func() units.Percent {
		if len(samples) == 0 {
			return 0
		}
		var s float64
		for _, v := range samples {
			s += v
		}
		return units.Percent(s / float64(len(samples)))
	}
	addUtil := func(v float64) {
		if len(samples) == window {
			copy(samples, samples[1:])
			samples = samples[:window-1]
		}
		samples = append(samples, v)
	}

	res := RunResult{MinFreq: 1}
	fanHoldTill := 0.0
	nextPoll := 0.0
	var curState PState
	var curRPM units.RPM
	haveCur := false

	tick := func() {
		now := srv.Now()
		if now < nextPoll {
			return
		}
		nextPoll = now + rc.PollPeriod

		// P-state selection is conservative: react to the *instantaneous*
		// utilization when it exceeds the windowed mean, so demand spikes
		// never throttle while waiting for the window to catch up.
		u := meanUtil()
		if inst := srv.Utilization(); inst > u {
			u = inst
		}
		e, err := table.Lookup(u)
		if err != nil {
			return
		}

		// P-states switch in microseconds on real parts: apply
		// immediately, outside the fan hold-off.
		if !haveCur || e.State != curState {
			if err := srv.SetDVFS(e.State.FreqScale, e.State.VoltScale); err == nil {
				curState = e.State
				res.Changes++
				if e.State.FreqScale < res.MinFreq {
					res.MinFreq = e.State.FreqScale
				}
			}
		}
		// Fans respect the paper's minimum interval between changes.
		if now >= fanHoldTill && (!haveCur || e.RPM != curRPM) {
			srv.Fans().SetAll(e.RPM)
			curRPM = e.RPM
			fanHoldTill = now + rc.HoldOff
			res.Changes++
		}
		haveCur = true
	}

	for now := 0.0; now < rc.Stabilize; now += rc.Dt {
		srv.SetLoad(0)
		addUtil(0)
		tick()
		srv.Step(rc.Dt)
	}
	res.Changes = 0
	srv.ResetAccounting()
	dur := prof.Duration()
	var rpmSum, maxTemp float64
	steps := 0
	for elapsed := 0.0; elapsed < dur; elapsed += rc.Dt {
		srv.SetLoad(gen.Load(elapsed))
		addUtil(float64(srv.Utilization()))
		tick()
		srv.Step(rc.Dt)
		steps++
		rpmSum += float64(srv.Fans().MeanRPM())
		if t := float64(srv.MaxCPUTemp()); t > maxTemp {
			maxTemp = t
		}
	}
	res.EnergyKWh = srv.Energy().KWh()
	res.PeakPowerW = float64(srv.PeakPower())
	res.MaxTempC = maxTemp
	res.AvgRPM = rpmSum / float64(steps)
	res.Throttled = srv.Throttled()
	return res, nil
}
