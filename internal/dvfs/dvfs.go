// Package dvfs implements the coordinated DVFS + fan-speed extension the
// paper's conclusion points toward (and its related work, Shin et al.
// ICCAD'09, explores): instead of choosing only a fan speed per
// utilization level, choose a (P-state, fan speed) pair that minimizes
// total power subject to
//
//   - no throughput loss: the demanded load must fit within the scaled
//     capacity with headroom, and
//   - the paper's 75 °C reliability cap at the predicted steady state.
//
// Dynamic CPU power scales as f·V², leakage as V (both relative to the top
// P-state), and the demanded utilization inflates as 1/f on the slower
// clock.
package dvfs

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/mem"
	"repro/internal/server"
	"repro/internal/units"
)

// PState is one operating point of the voltage/frequency ladder.
type PState struct {
	Name      string
	FreqScale float64 // f/fmax in (0, 1]
	VoltScale float64 // V/Vmax in (0, 1]
}

// DynScale is the dynamic-power multiplier f·V².
func (p PState) DynScale() float64 { return p.FreqScale * p.VoltScale * p.VoltScale }

// Validate reports malformed states.
func (p PState) Validate() error {
	if p.FreqScale <= 0 || p.FreqScale > 1 || p.VoltScale <= 0 || p.VoltScale > 1 {
		return fmt.Errorf("dvfs: state %q scales out of (0,1]: f=%g v=%g", p.Name, p.FreqScale, p.VoltScale)
	}
	return nil
}

// DefaultLadder returns a four-state ladder typical of server parts.
func DefaultLadder() []PState {
	return []PState{
		{Name: "P0", FreqScale: 1.00, VoltScale: 1.00},
		{Name: "P1", FreqScale: 0.85, VoltScale: 0.93},
		{Name: "P2", FreqScale: 0.70, VoltScale: 0.86},
		{Name: "P3", FreqScale: 0.55, VoltScale: 0.80},
	}
}

// SteadyTemp predicts the equilibrium die temperature at a demanded
// utilization under a P-state and fan speed, mirroring server.SteadyTemp
// with the DVFS power scaling applied.
func SteadyTemp(cfg server.Config, p PState, demanded units.Percent, r units.RPM) (units.Celsius, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	effU := float64(demanded) / p.FreqScale
	if effU > 100 {
		return 0, fmt.Errorf("dvfs: demanded %v exceeds capacity of %s", demanded, p.Name)
	}
	memBank, err := mem.NewBank(cfg.Mem, cfg.Ambient)
	if err != nil {
		return 0, err
	}
	preheat := float64(memBank.InletPreheat(demanded, r))
	rth := cfg.RthServer(r)
	active := float64(cfg.Power.Active.Power(units.Percent(effU))) * p.DynScale()
	f := func(t float64) float64 {
		leak := float64(cfg.Power.Leakage.Power(units.Celsius(t))) * p.VoltScale
		return float64(cfg.Ambient) + preheat + rth*(active+leak)
	}
	t, err := mathx.FixedPoint(f, float64(cfg.Ambient)+30, 1e-6, 500)
	if err != nil {
		return units.Celsius(t), fmt.Errorf("dvfs: unstable point %s U=%v RPM=%v: %w", p.Name, demanded, r, err)
	}
	if cfg.Power.Leakage.Slope(units.Celsius(t))*rth*p.VoltScale >= 1 {
		return units.Celsius(t), fmt.Errorf("dvfs: thermal runaway at %s U=%v RPM=%v", p.Name, demanded, r)
	}
	return units.Celsius(t), nil
}

// Entry is one row of the coordinated 2-D table.
type Entry struct {
	Util          units.Percent
	State         PState
	RPM           units.RPM
	PredictedTemp units.Celsius
	CPUFanPower   units.Watts // active + leakage + fan at steady state
}

// Table maps demanded utilization to the optimal (P-state, fan) pair.
type Table struct {
	Entries []Entry
}

// BuildConfig controls coordinated table generation.
type BuildConfig struct {
	Utils    []units.Percent
	Levels   []units.RPM
	Ladder   []PState
	MaxTemp  units.Celsius // reliability cap (0 disables)
	Headroom float64       // required capacity slack: effU ≤ 100·(1−Headroom)
}

// DefaultBuild mirrors the paper's grid with the default ladder and a 5%
// capacity headroom.
func DefaultBuild() BuildConfig {
	return BuildConfig{
		Utils:    []units.Percent{0, 10, 25, 40, 50, 60, 75, 90, 100},
		Levels:   []units.RPM{1800, 2400, 3000, 3600, 4200},
		Ladder:   DefaultLadder(),
		MaxTemp:  75,
		Headroom: 0.05,
	}
}

// Build generates the coordinated table: for each utilization, the
// feasible (state, fan) pair minimizing active+leakage+fan power.
func Build(cfg server.Config, b BuildConfig) (*Table, error) {
	if len(b.Utils) == 0 || len(b.Levels) == 0 || len(b.Ladder) == 0 {
		return nil, fmt.Errorf("dvfs: build needs utils, fan levels and a ladder")
	}
	for _, p := range b.Ladder {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	capU := 100 * (1 - b.Headroom)
	t := &Table{}
	for _, u := range b.Utils {
		best := Entry{Util: u}
		found := false
		for _, p := range b.Ladder {
			// The top state never loses throughput by definition; deeper
			// states must leave Headroom of scaled capacity spare.
			if p.FreqScale < 1 && float64(u)/p.FreqScale > capU {
				continue // would throttle
			}
			for _, r := range b.Levels {
				temp, err := SteadyTemp(cfg, p, u, r)
				if err != nil {
					continue
				}
				if b.MaxTemp > 0 && temp > b.MaxTemp {
					continue
				}
				effU := units.Percent(float64(u) / p.FreqScale)
				obj := units.Watts(float64(cfg.Power.Active.Power(effU))*p.DynScale()) +
					units.Watts(float64(cfg.Power.Leakage.Power(temp))*p.VoltScale) +
					cfg.Power.Fans.Power(r)
				if !found || obj < best.CPUFanPower {
					best = Entry{Util: u, State: p, RPM: r, PredictedTemp: temp, CPUFanPower: obj}
					found = true
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("dvfs: no feasible operating point at U=%v", u)
		}
		t.Entries = append(t.Entries, best)
	}
	return t, nil
}

// Lookup returns the coordinated setting for a demanded utilization,
// rounding up to the next grid entry like the fan-only LUT.
func (t *Table) Lookup(u units.Percent) (Entry, error) {
	if len(t.Entries) == 0 {
		return Entry{}, fmt.Errorf("dvfs: empty table")
	}
	u = u.Clamp()
	for _, e := range t.Entries {
		if u <= e.Util {
			return e, nil
		}
	}
	return t.Entries[len(t.Entries)-1], nil
}

func (t *Table) String() string {
	s := "util%  state  rpm   Tss(°C)  cpu+fan(W)\n"
	for _, e := range t.Entries {
		s += fmt.Sprintf("%5.0f  %-5s  %4.0f  %6.1f  %9.2f\n",
			float64(e.Util), e.State.Name, float64(e.RPM), float64(e.PredictedTemp), float64(e.CPUFanPower))
	}
	return s
}
