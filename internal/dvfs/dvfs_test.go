package dvfs

import (
	"math"
	"strings"
	"testing"

	"repro/internal/control"
	"repro/internal/experiments"
	"repro/internal/lut"
	"repro/internal/server"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestPStateValidate(t *testing.T) {
	for _, p := range DefaultLadder() {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	bad := []PState{
		{Name: "x", FreqScale: 0, VoltScale: 1},
		{Name: "x", FreqScale: 1.2, VoltScale: 1},
		{Name: "x", FreqScale: 1, VoltScale: 0},
		{Name: "x", FreqScale: 1, VoltScale: 1.5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("state %+v should be invalid", p)
		}
	}
}

func TestDynScale(t *testing.T) {
	p := PState{FreqScale: 0.5, VoltScale: 0.8}
	if got := p.DynScale(); math.Abs(got-0.32) > 1e-12 {
		t.Fatalf("dyn scale = %g, want 0.32", got)
	}
	top := PState{FreqScale: 1, VoltScale: 1}
	if top.DynScale() != 1 {
		t.Fatal("top state scale must be 1")
	}
}

func TestSteadyTempMatchesServerAtP0(t *testing.T) {
	cfg := server.T3Config()
	p0 := DefaultLadder()[0]
	for _, u := range []units.Percent{25, 75, 100} {
		dv, err := SteadyTemp(cfg, p0, u, 2400)
		if err != nil {
			t.Fatal(err)
		}
		base, err := server.SteadyTemp(cfg, u, 2400)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(dv-base)) > 1e-6 {
			t.Fatalf("P0 steady %v != server steady %v at U=%v", dv, base, u)
		}
	}
}

func TestSteadyTempLowerAtLowerPState(t *testing.T) {
	cfg := server.T3Config()
	ladder := DefaultLadder()
	// 50% demanded fits in every state (P3: 50/0.55 = 91% < 100).
	prev := units.Celsius(200)
	for _, p := range ladder {
		temp, err := SteadyTemp(cfg, p, 50, 2400)
		if err != nil {
			t.Fatal(err)
		}
		if temp >= prev {
			t.Fatalf("state %s temp %v not below previous %v", p.Name, temp, prev)
		}
		prev = temp
	}
}

func TestSteadyTempRejectsThrottling(t *testing.T) {
	cfg := server.T3Config()
	p3 := DefaultLadder()[3] // 0.55 capacity
	if _, err := SteadyTemp(cfg, p3, 80, 2400); err == nil {
		t.Fatal("80% demanded must not fit in P3")
	}
}

func TestBuildCoordinatedTable(t *testing.T) {
	cfg := server.T3Config()
	table, err := Build(cfg, DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Entries) != 9 {
		t.Fatalf("entries = %d", len(table.Entries))
	}
	// Low utilization picks a deep P-state; 100% must stay at P0.
	first := table.Entries[0]
	if first.State.FreqScale >= 1 {
		t.Fatalf("idle entry uses %s; expected a deep P-state", first.State.Name)
	}
	last := table.Entries[len(table.Entries)-1]
	if last.Util != 100 || last.State.Name != "P0" {
		t.Fatalf("100%% entry = %+v, want P0", last)
	}
	// Every entry honors the temperature cap; deeper states honor the
	// capacity headroom (the top state is always throughput-neutral).
	for _, e := range table.Entries {
		if e.PredictedTemp > 75 {
			t.Fatalf("entry U=%v predicted %v > 75°C", e.Util, e.PredictedTemp)
		}
		if e.State.FreqScale < 1 && float64(e.Util)/e.State.FreqScale > 95.0001 {
			t.Fatalf("entry U=%v violates headroom in %s", e.Util, e.State.Name)
		}
	}
	if !strings.Contains(table.String(), "P0") {
		t.Fatal("table string missing states")
	}
}

func TestBuildValidation(t *testing.T) {
	cfg := server.T3Config()
	b := DefaultBuild()
	b.Utils = nil
	if _, err := Build(cfg, b); err == nil {
		t.Error("no utils should fail")
	}
	b = DefaultBuild()
	b.Ladder = []PState{{Name: "bad", FreqScale: 2, VoltScale: 1}}
	if _, err := Build(cfg, b); err == nil {
		t.Error("bad ladder should fail")
	}
}

func TestLookup(t *testing.T) {
	cfg := server.T3Config()
	table, err := Build(cfg, DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	e, err := table.Lookup(65)
	if err != nil {
		t.Fatal(err)
	}
	if e.Util != 75 {
		t.Fatalf("Lookup(65) rounded to %v, want 75", e.Util)
	}
	if _, err := (&Table{}).Lookup(10); err == nil {
		t.Error("empty table should error")
	}
}

func TestCoordinatedBeatsFanOnlyOnMidLoad(t *testing.T) {
	// The extension's claim: at partial load, dropping the P-state saves
	// dynamic power the fan-only LUT cannot touch.
	cfg := server.T3Config()
	w, err := workload.ByID(4, 42) // shell workload, ~40% mean
	if err != nil {
		t.Fatal(err)
	}

	fanTable, err := lut.Build(cfg, lut.DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	lc, err := control.NewLUT(fanTable, control.DefaultLUT())
	if err != nil {
		t.Fatal(err)
	}
	ec := experiments.DefaultEval()
	ec.SampleEvery = 0
	ec.PWM = false
	fanOnly, err := experiments.RunControlled(cfg, w.Profile, lc, ec)
	if err != nil {
		t.Fatal(err)
	}

	coordTable, err := Build(cfg, DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := Run(cfg, coordTable, w.Profile, DefaultRun())
	if err != nil {
		t.Fatal(err)
	}

	if coord.Throttled {
		t.Fatal("coordinated policy must not throttle")
	}
	if coord.EnergyKWh >= fanOnly.EnergyKWh {
		t.Fatalf("coordinated %.4f kWh should beat fan-only %.4f kWh",
			coord.EnergyKWh, fanOnly.EnergyKWh)
	}
	if coord.MaxTempC > 76 {
		t.Fatalf("coordinated max temp %.1f violates the cap", coord.MaxTempC)
	}
	if coord.MinFreq >= 1 {
		t.Fatal("coordinated run never used a deeper P-state")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := server.T3Config()
	table, err := Build(cfg, DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByID(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, nil, w.Profile, DefaultRun()); err == nil {
		t.Error("nil table should error")
	}
	if _, err := Run(cfg, table, nil, DefaultRun()); err == nil {
		t.Error("nil profile should error")
	}
	bad := DefaultRun()
	bad.Dt = 0
	if _, err := Run(cfg, table, w.Profile, bad); err == nil {
		t.Error("zero dt should error")
	}
}
