// Package lut builds and queries the lookup table at the heart of the
// paper's controller: for each utilization level, the fan speed that
// minimizes fan + leakage power at the predicted steady-state temperature,
// subject to the 75 °C reliability cap (Section IV: "for reliability
// purposes we target a maximum operational temperature of 75 °C").
package lut

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/par"
	"repro/internal/server"
	"repro/internal/units"
)

// Entry is one row of the table.
type Entry struct {
	Util          units.Percent `json:"util_pct"`
	RPM           units.RPM     `json:"rpm"`
	PredictedTemp units.Celsius `json:"predicted_temp_c"`
	FanLeakPower  units.Watts   `json:"fan_plus_leak_w"`
}

// Table maps utilization to optimal fan speed. Entries are sorted by Util.
type Table struct {
	Entries []Entry `json:"entries"`
}

// BuildConfig controls table generation.
type BuildConfig struct {
	Utils   []units.Percent // utilization grid (paper: the characterized levels)
	Levels  []units.RPM     // candidate fan speeds
	MaxTemp units.Celsius   // reliability cap; 0 disables the cap
	Workers int             // worker bound for the per-utilization solves; ≤ 0 = GOMAXPROCS
}

// DefaultBuild returns the paper's grid: characterized utilization levels
// plus 0%, the five discrete fan speeds, 75 °C cap.
func DefaultBuild() BuildConfig {
	return BuildConfig{
		Utils:   []units.Percent{0, 10, 25, 40, 50, 60, 75, 90, 100},
		Levels:  []units.RPM{1800, 2400, 3000, 3600, 4200},
		MaxTemp: 75,
	}
}

// Build generates the table from a server configuration (whose power model
// may be the ground truth or a fitted model patched in by the caller). For
// each utilization it evaluates every fan level's steady state and keeps
// the feasible minimum of fan+leakage power; active power is identical
// across levels and so drops out of the comparison.
func Build(cfg server.Config, b BuildConfig) (*Table, error) {
	if len(b.Utils) == 0 || len(b.Levels) == 0 {
		return nil, fmt.Errorf("lut: build needs utilization grid and fan levels")
	}
	levels := append([]units.RPM(nil), b.Levels...)
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	utils := append([]units.Percent(nil), b.Utils...)
	sort.Slice(utils, func(i, j int) bool { return utils[i] < utils[j] })

	// Each utilization level's scan over fan speeds is independent of the
	// others, so the levels fan out over a bounded worker pool; entries are
	// written by index, which keeps the table identical to a serial build.
	entries := make([]Entry, len(utils))
	errs := make([]error, len(utils))
	par.ForEach(len(utils), b.Workers, func(i int) {
		u := utils[i]
		best := Entry{Util: u, RPM: 0}
		found := false
		for _, r := range levels {
			temp, err := server.SteadyTemp(cfg, u, r)
			if err != nil {
				continue // thermally unstable operating point
			}
			if b.MaxTemp > 0 && temp > b.MaxTemp {
				continue // violates the reliability cap
			}
			obj := cfg.Power.Leakage.Power(temp) + cfg.Power.Fans.Power(r)
			if !found || obj < best.FanLeakPower {
				best = Entry{Util: u, RPM: r, PredictedTemp: temp, FanLeakPower: obj}
				found = true
			}
		}
		if !found {
			// No feasible level: fail safe at maximum cooling.
			r := levels[len(levels)-1]
			temp, err := server.SteadyTemp(cfg, u, r)
			if err != nil {
				errs[i] = fmt.Errorf("lut: U=%v unstable even at %v: %w", u, r, err)
				return
			}
			best = Entry{
				Util:          u,
				RPM:           r,
				PredictedTemp: temp,
				FanLeakPower:  cfg.Power.Leakage.Power(temp) + cfg.Power.Fans.Power(r),
			}
		}
		entries[i] = best
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Table{Entries: entries}, nil
}

// BuildPerConfig builds one table per server configuration — the rack
// case: slot i's table serves both its fan controller and the
// leakage-aware placement policy. Configurations whose steady-state
// physics are identical share a single build; the sensor NoiseSeed is
// ignored in the comparison because noise cannot affect equilibria.
func BuildPerConfig(cfgs []server.Config, b BuildConfig) ([]*Table, error) {
	return buildPerConfig(cfgs, b, Build)
}

// buildPerConfig is the shared per-slot dedup layer over a build function
// (plain Build, or DiskCache.Build for the cross-process cache).
func buildPerConfig(cfgs []server.Config, b BuildConfig, build func(server.Config, BuildConfig) (*Table, error)) ([]*Table, error) {
	tables := make([]*Table, len(cfgs))
	cache := map[server.Config]*Table{}
	for i, cfg := range cfgs {
		key := cfg
		key.NoiseSeed = 0
		t, ok := cache[key]
		if !ok {
			var err error
			t, err = build(cfg, b)
			if err != nil {
				return nil, fmt.Errorf("lut: build for config %d: %w", i, err)
			}
			cache[key] = t
		}
		tables[i] = t
	}
	return tables, nil
}

// Lookup returns the fan speed for utilization u. The paper's controller
// addresses the LUT by utilization level; we round *up* to the next grid
// entry so a between-levels load gets at least the cooling of the level
// above it (conservative with respect to the reliability cap).
func (t *Table) Lookup(u units.Percent) (units.RPM, error) {
	if len(t.Entries) == 0 {
		return 0, fmt.Errorf("lut: empty table")
	}
	u = u.Clamp()
	for _, e := range t.Entries {
		if u <= e.Util {
			return e.RPM, nil
		}
	}
	return t.Entries[len(t.Entries)-1].RPM, nil
}

// Entry returns the full row the Lookup would use for utilization u.
func (t *Table) EntryFor(u units.Percent) (Entry, error) {
	if len(t.Entries) == 0 {
		return Entry{}, fmt.Errorf("lut: empty table")
	}
	u = u.Clamp()
	for _, e := range t.Entries {
		if u <= e.Util {
			return e, nil
		}
	}
	return t.Entries[len(t.Entries)-1], nil
}

// MaxPredictedTemp returns the hottest steady temperature any entry accepts.
func (t *Table) MaxPredictedTemp() units.Celsius {
	m := units.Celsius(0)
	for _, e := range t.Entries {
		if e.PredictedTemp > m {
			m = e.PredictedTemp
		}
	}
	return m
}

// WriteJSON serializes the table.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON deserializes a table and validates its ordering.
func ReadJSON(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("lut: decode: %w", err)
	}
	if len(t.Entries) == 0 {
		return nil, fmt.Errorf("lut: empty table")
	}
	for i := 1; i < len(t.Entries); i++ {
		if t.Entries[i].Util <= t.Entries[i-1].Util {
			return nil, fmt.Errorf("lut: entries not sorted by utilization at %d", i)
		}
	}
	return &t, nil
}

func (t *Table) String() string {
	s := "util%  rpm   Tss(°C)  fan+leak(W)\n"
	for _, e := range t.Entries {
		s += fmt.Sprintf("%5.0f  %4.0f  %6.1f  %8.2f\n",
			float64(e.Util), float64(e.RPM), float64(e.PredictedTemp), float64(e.FanLeakPower))
	}
	return s
}
