package lut

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/server"
)

// DiskCache caches built tables as JSON files keyed by a hash of the
// (server configuration, build grid) pair, so repeated processes — rack
// experiments rebuilding one LUT per distinct ambient, genlut invocations,
// benchmark reruns — pay for each distinct steady-state grid exactly once
// per machine instead of once per process.
//
// The zero value (empty Dir) disables caching and builds directly. Cache
// files are self-validating: they are parsed with ReadJSON on every hit
// and silently rebuilt when missing, corrupt or unreadable, so a cache
// directory can always be deleted (or trimmed) wholesale.
type DiskCache struct {
	Dir string
}

// CacheKey returns the stable content hash identifying a build: the server
// configuration with its sensor NoiseSeed zeroed (noise cannot affect
// steady-state equilibria, cf. BuildPerConfig) combined with the build
// grid, with the Workers bound zeroed too (the determinism contract makes
// the built table identical for every worker count). Two builds share a
// cache entry exactly when this key matches.
func CacheKey(cfg server.Config, b BuildConfig) string {
	k := cfg
	k.NoiseSeed = 0
	b.Workers = 0
	// %#v over the flat value structs is a stable, unambiguous rendering:
	// field names disambiguate layout changes, and shortest-form float
	// formatting is deterministic.
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v|%#v", k, b)))
	return hex.EncodeToString(sum[:12])
}

// path returns the cache file for a key.
func (c DiskCache) path(key string) string {
	return filepath.Join(c.Dir, "lut-"+key+".json")
}

// Build is lut.Build behind the disk cache: a valid cache file for the
// configuration's key is returned without any steady-state solves; a miss
// builds, then writes the table back atomically (temp file + rename) so
// concurrent processes can share one directory without torn reads.
func (c DiskCache) Build(cfg server.Config, b BuildConfig) (*Table, error) {
	if c.Dir == "" {
		return Build(cfg, b)
	}
	path := c.path(CacheKey(cfg, b))
	if f, err := os.Open(path); err == nil {
		t, rerr := ReadJSON(f)
		f.Close()
		if rerr == nil {
			return t, nil
		}
		// Corrupt entry: fall through and rebuild it.
	}
	t, err := Build(cfg, b)
	if err != nil {
		return nil, err
	}
	if err := c.write(path, t); err != nil {
		return nil, fmt.Errorf("lut: cache write %s: %w", path, err)
	}
	return t, nil
}

// write persists a table atomically under path.
func (c DiskCache) write(path string, t *Table) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.Dir, ".lut-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := t.WriteJSON(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// BuildPerConfig is lut.BuildPerConfig behind the disk cache: identical
// steady-state physics share one in-process build, and each distinct
// build consults the cache directory first.
func (c DiskCache) BuildPerConfig(cfgs []server.Config, b BuildConfig) ([]*Table, error) {
	return buildPerConfig(cfgs, b, c.Build)
}
