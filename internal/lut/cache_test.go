package lut

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/server"
	"repro/internal/units"
)

// quickBuild is a reduced grid so cache tests stay fast.
func quickBuild() BuildConfig {
	return BuildConfig{
		Utils:   []units.Percent{0, 50, 100},
		Levels:  []units.RPM{1800, 3000, 4200},
		MaxTemp: 75,
	}
}

// TestDiskCacheRoundTrip: a cold build writes one file; a second build
// with the same key reads it back identically without re-solving.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := DiskCache{Dir: dir}
	cfg := server.T3Config()
	b := quickBuild()

	cold, err := c.Build(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "lut-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one cache file, got %v (%v)", files, err)
	}

	warm, err := c.Build(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cache hit differs from cold build:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	direct, err := Build(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, warm) {
		t.Fatal("cached table differs from an uncached build")
	}
}

// TestDiskCacheKeySensitivity: the key must ignore the sensor noise seed
// (noise cannot move equilibria) but change with any physics or grid edit.
func TestDiskCacheKeySensitivity(t *testing.T) {
	cfg := server.T3Config()
	b := quickBuild()
	base := CacheKey(cfg, b)

	noisy := cfg
	noisy.NoiseSeed = 999
	if CacheKey(noisy, b) != base {
		t.Fatal("noise seed must not change the cache key")
	}

	// Worker counts change how the grid is computed, never what: the
	// determinism contract keeps the table identical, so serial and
	// parallel builds must share one cache entry.
	fanned := b
	fanned.Workers = 8
	if CacheKey(cfg, fanned) != base {
		t.Fatal("worker bound must not change the cache key")
	}

	hot := cfg
	hot.Ambient = 30
	if CacheKey(hot, b) == base {
		t.Fatal("ambient change must change the cache key")
	}

	wider := b
	wider.MaxTemp = 0
	if CacheKey(cfg, wider) == base {
		t.Fatal("build-grid change must change the cache key")
	}
}

// TestDiskCacheCorruptEntryRebuilds: a truncated cache file must be
// rebuilt, not returned or fatal.
func TestDiskCacheCorruptEntryRebuilds(t *testing.T) {
	dir := t.TempDir()
	c := DiskCache{Dir: dir}
	cfg := server.T3Config()
	b := quickBuild()
	want, err := c.Build(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	path := c.path(CacheKey(cfg, b))
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := c.Build(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("rebuild after corruption differs")
	}
}

// TestDiskCacheEmptyDirBypasses: the zero value must behave exactly like
// lut.Build with no filesystem traffic.
func TestDiskCacheEmptyDirBypasses(t *testing.T) {
	var c DiskCache
	got, err := c.Build(server.T3Config(), quickBuild())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Build(server.T3Config(), quickBuild())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("zero-value cache differs from direct build")
	}
}

// TestDiskCacheBuildPerConfig: per-ambient rack configs produce one cache
// file per distinct physics, and a second process-equivalent call serves
// every slot from disk.
func TestDiskCacheBuildPerConfig(t *testing.T) {
	dir := t.TempDir()
	c := DiskCache{Dir: dir}
	b := quickBuild()
	cfgs := make([]server.Config, 4)
	for i := range cfgs {
		cfgs[i] = server.T3Config()
		cfgs[i].Ambient = units.Celsius(21 + 3*(i%2)) // two distinct ambients
		cfgs[i].NoiseSeed = int64(i)                  // must not split the cache
	}
	tables, err := c.BuildPerConfig(cfgs, b)
	if err != nil {
		t.Fatal(err)
	}
	if tables[0] != tables[2] || tables[1] != tables[3] {
		t.Fatal("identical-physics slots must share in-process tables")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "lut-*.json"))
	if len(files) != 2 {
		t.Fatalf("want 2 cache files (two ambients), got %d", len(files))
	}
	again, err := c.BuildPerConfig(cfgs, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tables {
		if !reflect.DeepEqual(tables[i], again[i]) {
			t.Fatalf("slot %d differs on warm rebuild", i)
		}
	}
}
