package lut

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/server"
)

func buildDefault(t *testing.T) *Table {
	t.Helper()
	table, err := Build(server.T3Config(), DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(server.T3Config(), BuildConfig{}); err == nil {
		t.Fatal("empty build config should error")
	}
}

func TestBuildPaperShape(t *testing.T) {
	table := buildDefault(t)
	if len(table.Entries) != 9 {
		t.Fatalf("entries = %d", len(table.Entries))
	}
	// The paper's headline: at 100% utilization the optimum is 2400 RPM
	// with a steady temperature below ~70 °C.
	top := table.Entries[len(table.Entries)-1]
	if top.Util != 100 {
		t.Fatalf("last entry util = %v", top.Util)
	}
	if top.RPM != 2400 {
		t.Fatalf("optimal RPM at 100%% = %v, want 2400 (Fig. 2a)", top.RPM)
	}
	// Low utilization optimum is the lowest fan speed.
	if table.Entries[0].RPM != 1800 {
		t.Fatalf("optimal RPM at 0%% = %v, want 1800", table.Entries[0].RPM)
	}
	// "for all the optimum points, average temperature is never higher
	// than 70°C" — allow a small margin for calibration differences.
	if m := table.MaxPredictedTemp(); m > 72 {
		t.Fatalf("max predicted steady temp = %v, paper says ≤70°C", m)
	}
}

func TestBuildMonotoneRPM(t *testing.T) {
	// Optimal fan speed must not decrease as utilization rises.
	table := buildDefault(t)
	for i := 1; i < len(table.Entries); i++ {
		if table.Entries[i].RPM < table.Entries[i-1].RPM {
			t.Fatalf("RPM drops from %v to %v between U=%v and U=%v",
				table.Entries[i-1].RPM, table.Entries[i].RPM,
				table.Entries[i-1].Util, table.Entries[i].Util)
		}
	}
}

func TestTempCapBinds(t *testing.T) {
	cfg := server.T3Config()
	// Without the cap, a pure energy minimum may sit at a hotter point;
	// with a tight 60 °C cap every entry must respect it.
	b := DefaultBuild()
	b.MaxTemp = 60
	table, err := Build(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range table.Entries {
		if e.PredictedTemp > 60 {
			t.Fatalf("entry U=%v temp %v violates 60°C cap", e.Util, e.PredictedTemp)
		}
	}
	// The tight cap forces faster fans at high load than the default cap.
	loose := buildDefault(t)
	tightTop, _ := table.Lookup(100)
	looseTop, _ := loose.Lookup(100)
	if tightTop <= looseTop {
		t.Fatalf("tight cap RPM %v should exceed loose cap %v", tightTop, looseTop)
	}
}

func TestUncappedBuild(t *testing.T) {
	b := DefaultBuild()
	b.MaxTemp = 0 // disabled
	table, err := Build(server.T3Config(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Entries) != 9 {
		t.Fatalf("entries = %d", len(table.Entries))
	}
	// Energy-only optimum at 100% is still 2400 (the convexity of Fig 2a).
	r, _ := table.Lookup(100)
	if r != 2400 {
		t.Fatalf("uncapped optimum at 100%% = %v", r)
	}
}

func TestLookupRoundsUp(t *testing.T) {
	table := buildDefault(t)
	// 65% is between the 60 and 75 grid points: lookup must use 75's entry.
	want, err := table.Lookup(75)
	if err != nil {
		t.Fatal(err)
	}
	got, err := table.Lookup(65)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Lookup(65) = %v, want the 75%% entry %v", got, want)
	}
	// Exact grid points return their own entry.
	e, err := table.EntryFor(50)
	if err != nil {
		t.Fatal(err)
	}
	if e.Util != 50 {
		t.Fatalf("EntryFor(50).Util = %v", e.Util)
	}
	// Clamping out-of-range inputs.
	hi, _ := table.Lookup(150)
	top, _ := table.Lookup(100)
	if hi != top {
		t.Fatalf("Lookup(150) = %v", hi)
	}
	lo, _ := table.Lookup(-5)
	bottom, _ := table.Lookup(0)
	if lo != bottom {
		t.Fatalf("Lookup(-5) = %v", lo)
	}
}

func TestEmptyTableLookup(t *testing.T) {
	empty := &Table{}
	if _, err := empty.Lookup(50); err == nil {
		t.Error("empty lookup should error")
	}
	if _, err := empty.EntryFor(50); err == nil {
		t.Error("empty EntryFor should error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	table := buildDefault(t)
	var buf bytes.Buffer
	if err := table.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(table.Entries) {
		t.Fatalf("round trip lost entries: %d vs %d", len(back.Entries), len(table.Entries))
	}
	for i := range back.Entries {
		if back.Entries[i] != table.Entries[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, back.Entries[i], table.Entries[i])
		}
	}
}

func TestReadJSONValidation(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage should error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"entries":[]}`)); err == nil {
		t.Error("empty entries should error")
	}
	bad := `{"entries":[{"util_pct":50,"rpm":1800},{"util_pct":10,"rpm":1800}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("unsorted entries should error")
	}
}

func TestStringRendering(t *testing.T) {
	table := buildDefault(t)
	s := table.String()
	if !strings.Contains(s, "2400") || !strings.Contains(s, "util%") {
		t.Fatalf("table string missing content:\n%s", s)
	}
}

func TestFittedModelProducesSameTable(t *testing.T) {
	// The controller uses a *fitted* model; with a fit as good as the
	// paper's, the LUT must be identical to the ground-truth one.
	cfg := server.T3Config()
	truth, err := Build(cfg, DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	fitted := cfg
	// Perturb the model slightly, as a 2 W RMSE fit would.
	fitted.Power.Active.K1 = 0.4460
	fitted.Power.Leakage.C = 10.3
	fitted.Power.Leakage.K2 = 0.315
	fitted.Power.Leakage.K3 = 0.0477
	approx, err := Build(fitted, DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Entries {
		if truth.Entries[i].RPM != approx.Entries[i].RPM {
			t.Fatalf("fitted-model LUT diverges at U=%v: %v vs %v",
				truth.Entries[i].Util, approx.Entries[i].RPM, truth.Entries[i].RPM)
		}
	}
}
