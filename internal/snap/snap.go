package snap

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Version is the snapshot format version this build reads and writes. See
// the package comment for the bump policy.
const Version uint32 = 1

// magic identifies a snapshot file; 8 bytes so the header is a fixed 12.
var magic = [8]byte{'R', 'E', 'P', 'R', 'O', 'S', 'N', 'P'}

const headerLen = len(magic) + 4

// Encode writes the framed snapshot of v to w: header, then gob payload.
func Encode(w io.Writer, v any) error {
	var hdr [headerLen]byte
	copy(hdr[:], magic[:])
	binary.BigEndian.PutUint32(hdr[len(magic):], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("snap: write header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(v); err != nil {
		return fmt.Errorf("snap: encode payload: %w", err)
	}
	return nil
}

// Decode reads a framed snapshot from r into v (a pointer). Malformed
// input — truncated or wrong header, wrong version, corrupt or
// type-mismatched gob stream — returns an error; the decoder additionally
// converts any payload-decoding panic into an error, so untrusted bytes
// can never take the process down.
func Decode(r io.Reader, v any) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("snap: malformed snapshot: %v", p)
		}
	}()
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("snap: read header: %w", err)
	}
	if !bytes.Equal(hdr[:len(magic)], magic[:]) {
		return fmt.Errorf("snap: bad magic %q (not a snapshot file)", hdr[:len(magic)])
	}
	if ver := binary.BigEndian.Uint32(hdr[len(magic):]); ver != Version {
		return fmt.Errorf("snap: snapshot version %d, this build reads %d", ver, Version)
	}
	if err := gob.NewDecoder(r).Decode(v); err != nil {
		return fmt.Errorf("snap: decode payload: %w", err)
	}
	return nil
}

// EncodeFile atomically writes the snapshot of v to path: the bytes land
// in a temporary file in the same directory, fsynced, then renamed over
// the destination — a crash mid-write leaves the previous checkpoint
// intact, never a torn file.
func EncodeFile(path string, v any) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snap: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := Encode(f, v); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("snap: sync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("snap: close %s: %w", tmp, err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snap: %w", err)
	}
	return nil
}

// DecodeFile reads the snapshot at path into v (a pointer).
func DecodeFile(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("snap: %w", err)
	}
	defer f.Close()
	return Decode(f, v)
}
