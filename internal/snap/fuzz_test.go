package snap

import (
	"bytes"
	"testing"

	"repro/internal/sched"
)

// FuzzDecode drives the real untrusted-input surface: arbitrary bytes
// through Decode into the checkpoint DTO evalctl resumes from. The decoder
// must return an error or a value — never panic, whatever the bytes.
func FuzzDecode(f *testing.F) {
	// A well-formed checkpoint with enough structure to give the mutator
	// interior gob type descriptors to corrupt.
	ck := sched.Checkpoint{
		K: 3, Steps: 10, Dt: 1, Horizon: 10, PolicyName: "round-robin",
		Pending: []sched.Job{{ID: 1, Arrival: 2, Duration: 3, Demand: 40}},
		Running: []sched.ActiveJob{{End: 5, Slot: 0, Demand: 20, Job: sched.Job{ID: 0}}},
		Loads:   []float64{20, 0},
		Policy:  &sched.PolicyState{Name: "round-robin", Ints: []int{1}},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, ck); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("REPROSNP\x00\x00\x00\x01"))
	f.Add([]byte("REPROSNP\x00\x00\x00\x63garbage"))
	f.Add([]byte("NOTASNAPxxxxxxxx"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var out sched.Checkpoint
		_ = Decode(bytes.NewReader(data), &out) // must not panic
	})
}
