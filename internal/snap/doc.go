// Package snap is the on-disk container for run checkpoints: a fixed
// magic-plus-version header framing a gob payload, with a decoder hardened
// against malformed input (checkpoint files are external data — they must
// error, never panic).
//
// # Format
//
// A snapshot file is
//
//	bytes 0..7   magic "REPROSNP"
//	bytes 8..11  format version, big-endian uint32
//	bytes 12..   encoding/gob stream of one payload value
//
// gob is the payload codec because it round-trips float64 values bit-
// exactly — including the ±Inf sentinels live controller state carries
// (control.State quiet-until) and any NaN a diagnostic snapshot captures —
// with no textual re-parse to lose ulps over. Payload DTOs deliberately
// contain no maps: gob serializes map iteration order, which would make
// otherwise-identical snapshots byte-unequal (see obs.State's name-sorted
// slices).
//
// # Versioning and compatibility
//
// The header version covers the container framing AND the payload schema:
// any change to the DTO graph a checkpoint embeds (sched.Checkpoint,
// rack.State, server.State, ...) that gob cannot absorb transparently —
// removing or re-typing a field, changing a field's meaning — must bump
// Version. Purely additive DTO fields MAY keep the version (gob decodes
// missing fields to zero values), but only when the zero value reproduces
// the pre-field behaviour exactly; when in doubt, bump. Decode rejects any
// version other than the one it was built with: snapshots are short-lived
// operational artifacts (crash recovery, migration across a restart), not
// archival data, and refusing to guess beats resuming from misread state.
//
// # Checkpoint instants
//
// A checkpoint is only captured at a decision-step boundary — the top of
// the run loop, before the step's scheduling decisions, where no fan-out
// is in flight and every macro window has fully landed. In the event
// kernel those are exactly the macro-window boundaries: the kernel never
// stops mid-window, so a snapshot never has to represent a half-advanced
// closed-form segment. Resuming from such a boundary is byte-identical to
// the uninterrupted run (see sched.ResumeTraceCfg and the resume
// equivalence suite).
package snap
