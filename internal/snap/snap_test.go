package snap

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	A int
	B []float64
	C string
}

func TestRoundTrip(t *testing.T) {
	in := payload{A: 7, B: []float64{1.5, math.Inf(1), math.NaN(), -0.0}, C: "x"}
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var out payload
	if err := Decode(bytes.NewReader(buf.Bytes()), &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.A != in.A || out.C != in.C || len(out.B) != len(in.B) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.B {
		if math.Float64bits(out.B[i]) != math.Float64bits(in.B[i]) {
			t.Fatalf("B[%d]: bits %x != %x (gob must round-trip floats bit-exactly)",
				i, math.Float64bits(out.B[i]), math.Float64bits(in.B[i]))
		}
	}
}

func TestFileRoundTripAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.snap")
	if err := EncodeFile(path, payload{A: 1}); err != nil {
		t.Fatalf("EncodeFile: %v", err)
	}
	// Overwrite: the previous file must be replaced wholesale.
	if err := EncodeFile(path, payload{A: 2}); err != nil {
		t.Fatalf("EncodeFile overwrite: %v", err)
	}
	var out payload
	if err := DecodeFile(path, &out); err != nil {
		t.Fatalf("DecodeFile: %v", err)
	}
	if out.A != 2 {
		t.Fatalf("got A=%d, want the overwritten value 2", out.A)
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temporary file %s left behind", e.Name())
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	var good bytes.Buffer
	if err := Encode(&good, payload{A: 3}); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            nil,
		"short header":     good.Bytes()[:5],
		"bad magic":        append([]byte("NOTASNAP"), good.Bytes()[8:]...),
		"future version":   append(append([]byte{}, good.Bytes()[:8]...), 0, 0, 0, 99),
		"truncated gob":    good.Bytes()[:headerLen+3],
		"garbage payload":  append(append([]byte{}, good.Bytes()[:headerLen]...), 0xff, 0xfe, 0xfd),
		"header only":      good.Bytes()[:headerLen],
		"trailing garbage": {'R', 'E', 'P', 'R', 'O', 'S', 'N', 'P', 0, 0, 0, 1, 0x04, 0x01, 0x02},
	}
	for name, data := range cases {
		var out payload
		if err := Decode(bytes.NewReader(data), &out); err == nil {
			t.Errorf("%s: Decode accepted malformed input", name)
		}
	}
}

func TestDecodeTypeMismatchErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, payload{A: 3, C: "s"}); err != nil {
		t.Fatal(err)
	}
	var wrong struct{ A []string }
	if err := Decode(bytes.NewReader(buf.Bytes()), &wrong); err == nil {
		t.Fatal("Decode into a mismatched type succeeded")
	}
}
