package cpu

import "fmt"

// State is the serializable mutable state of a Complex: per-core
// utilization plus the uniform-load fast-path flags. The electrical
// constants and topology are construction parameters and stay outside the
// snapshot.
type State struct {
	Util       []float64
	Uniform    bool
	UniformVal float64
}

// State captures the complex for a checkpoint.
func (c *Complex) State() State {
	st := State{Util: make([]float64, len(c.util)), Uniform: c.uniform, UniformVal: c.uniformVal}
	copy(st.Util, c.util)
	return st
}

// SetState restores a captured State into a complex built from the same
// topology.
func (c *Complex) SetState(st State) error {
	if len(st.Util) != len(c.util) {
		return fmt.Errorf("cpu: state has %d cores, complex has %d", len(st.Util), len(c.util))
	}
	copy(c.util, st.Util)
	c.uniform = st.Uniform
	c.uniformVal = st.UniformVal
	return nil
}
