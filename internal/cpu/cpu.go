// Package cpu models the compute complex of the simulated server: two
// SPARC T3 style sockets with 16 cores of 8 hardware threads each (256
// threads total), per-core utilization accounting and the per-core
// voltage/current sensors CSTH exposes.
package cpu

import (
	"fmt"

	"repro/internal/units"
)

// Topology describes the socket/core/thread arrangement.
type Topology struct {
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
}

// T3Topology is the paper's server: 2 sockets × 16 cores × 8 threads.
func T3Topology() Topology {
	return Topology{Sockets: 2, CoresPerSocket: 16, ThreadsPerCore: 8}
}

// Threads returns the total hardware thread count.
func (t Topology) Threads() int { return t.Sockets * t.CoresPerSocket * t.ThreadsPerCore }

// Cores returns the total core count.
func (t Topology) Cores() int { return t.Sockets * t.CoresPerSocket }

// Validate reports configuration errors.
func (t Topology) Validate() error {
	if t.Sockets <= 0 || t.CoresPerSocket <= 0 || t.ThreadsPerCore <= 0 {
		return fmt.Errorf("cpu: invalid topology %+v", t)
	}
	return nil
}

// Complex is the runtime CPU state: per-core utilization in [0,100].
type Complex struct {
	topo Topology
	util []float64 // per core, percent

	// uniform is true while every core carries uniformVal, the state LoadGen
	// always produces. It lets the per-step utilization queries skip the
	// O(cores) averaging loops, which otherwise dominate the simulation
	// step. SetCoreLoad clears it.
	uniform    bool
	uniformVal float64

	// electrical model for the V/I sensors
	coreVoltage float64 // V
	idleCurrent float64 // A per core at zero load
}

// NewComplex builds an idle CPU complex.
func NewComplex(topo Topology) (*Complex, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return &Complex{
		topo:        topo,
		util:        make([]float64, topo.Cores()),
		uniform:     true,
		coreVoltage: 1.0,
		idleCurrent: 0.35,
	}, nil
}

// Topology returns the configured topology.
func (c *Complex) Topology() Topology { return c.topo }

// SetUniformLoad spreads utilization u evenly across every core, the
// behaviour LoadGen guarantees ("the workload is evenly spread among the
// cores").
func (c *Complex) SetUniformLoad(u units.Percent) {
	v := float64(u.Clamp())
	if c.uniform && c.uniformVal == v {
		return // already at this level on every core
	}
	for i := range c.util {
		c.util[i] = v
	}
	c.uniform = true
	c.uniformVal = v
}

// SetCoreLoad sets one core's utilization.
func (c *Complex) SetCoreLoad(core int, u units.Percent) error {
	if core < 0 || core >= len(c.util) {
		return fmt.Errorf("cpu: core %d out of range [0,%d)", core, len(c.util))
	}
	c.util[core] = float64(u.Clamp())
	c.uniform = false
	return nil
}

// Utilization returns the machine-wide average utilization, the signal the
// LUT controller polls through sar/mpstat.
func (c *Complex) Utilization() units.Percent {
	if c.uniform {
		return units.Percent(c.uniformVal)
	}
	var s float64
	for _, u := range c.util {
		s += u
	}
	return units.Percent(s / float64(len(c.util)))
}

// CoreUtilization returns one core's utilization.
func (c *Complex) CoreUtilization(core int) (units.Percent, error) {
	if core < 0 || core >= len(c.util) {
		return 0, fmt.Errorf("cpu: core %d out of range [0,%d)", core, len(c.util))
	}
	return units.Percent(c.util[core]), nil
}

// SocketUtilization returns the average utilization of one socket.
func (c *Complex) SocketUtilization(socket int) (units.Percent, error) {
	if socket < 0 || socket >= c.topo.Sockets {
		return 0, fmt.Errorf("cpu: socket %d out of range [0,%d)", socket, c.topo.Sockets)
	}
	if c.uniform {
		return units.Percent(c.uniformVal), nil
	}
	per := c.topo.CoresPerSocket
	var s float64
	for i := socket * per; i < (socket+1)*per; i++ {
		s += c.util[i]
	}
	return units.Percent(s / float64(per)), nil
}

// VI reports the voltage and current sensors of one core, deriving current
// from the core's share of the given total CPU power (active+leakage). This
// is the "per-core voltage and current values" channel of CSTH.
func (c *Complex) VI(core int, totalCPUPower units.Watts) (volts, amps float64, err error) {
	if core < 0 || core >= len(c.util) {
		return 0, 0, fmt.Errorf("cpu: core %d out of range [0,%d)", core, len(c.util))
	}
	totalUtil := 0.0
	for _, u := range c.util {
		totalUtil += u
	}
	// Idle current is the per-core floor; the remaining power splits across
	// cores proportional to their utilization.
	nCores := float64(len(c.util))
	idlePower := c.idleCurrent * c.coreVoltage * nCores
	variable := float64(totalCPUPower) - idlePower
	if variable < 0 {
		variable = 0
	}
	share := 0.0
	if totalUtil > 0 {
		share = c.util[core] / totalUtil
	} else {
		share = 1 / nCores
	}
	amps = c.idleCurrent + variable*share/c.coreVoltage
	return c.coreVoltage, amps, nil
}

// SensorPowerSum returns Σ V·I across every core's sensor pair for the
// given total CPU power — what a reader polling all per-core rails would
// reconstruct. It performs the same per-core arithmetic as VI but shares
// the one O(cores) utilization sum across all cores, so the whole readout
// is a single O(cores) pass instead of the O(cores²) of calling VI per
// core. Results are bit-identical to the per-core VI loop.
func (c *Complex) SensorPowerSum(totalCPUPower units.Watts) float64 {
	totalUtil := 0.0
	for _, u := range c.util {
		totalUtil += u
	}
	nCores := float64(len(c.util))
	idlePower := c.idleCurrent * c.coreVoltage * nCores
	variable := float64(totalCPUPower) - idlePower
	if variable < 0 {
		variable = 0
	}
	var total float64
	for _, u := range c.util {
		share := 0.0
		if totalUtil > 0 {
			share = u / totalUtil
		} else {
			share = 1 / nCores
		}
		amps := c.idleCurrent + variable*share/c.coreVoltage
		total += c.coreVoltage * amps
	}
	return total
}
