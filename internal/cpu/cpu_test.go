package cpu

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestT3Topology(t *testing.T) {
	topo := T3Topology()
	if topo.Threads() != 256 {
		t.Fatalf("threads = %d, want 256", topo.Threads())
	}
	if topo.Cores() != 32 {
		t.Fatalf("cores = %d, want 32", topo.Cores())
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyValidate(t *testing.T) {
	for _, bad := range []Topology{
		{0, 16, 8}, {2, 0, 8}, {2, 16, 0}, {-1, 16, 8},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("topology %+v should be invalid", bad)
		}
	}
}

func TestNewComplexRejectsBadTopology(t *testing.T) {
	if _, err := NewComplex(Topology{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestUniformLoad(t *testing.T) {
	c, err := NewComplex(T3Topology())
	if err != nil {
		t.Fatal(err)
	}
	if c.Utilization() != 0 {
		t.Fatal("new complex not idle")
	}
	c.SetUniformLoad(60)
	if got := c.Utilization(); got != 60 {
		t.Fatalf("utilization = %v", got)
	}
	for core := 0; core < 32; core++ {
		u, err := c.CoreUtilization(core)
		if err != nil {
			t.Fatal(err)
		}
		if u != 60 {
			t.Fatalf("core %d = %v", core, u)
		}
	}
	// Clamping.
	c.SetUniformLoad(250)
	if c.Utilization() != 100 {
		t.Fatal("over-100 load not clamped")
	}
}

func TestPerCoreLoad(t *testing.T) {
	c, _ := NewComplex(T3Topology())
	if err := c.SetCoreLoad(0, 100); err != nil {
		t.Fatal(err)
	}
	want := 100.0 / 32
	if got := float64(c.Utilization()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("utilization = %g, want %g", got, want)
	}
	if err := c.SetCoreLoad(-1, 10); err == nil {
		t.Error("negative core should error")
	}
	if err := c.SetCoreLoad(32, 10); err == nil {
		t.Error("out-of-range core should error")
	}
	if _, err := c.CoreUtilization(99); err == nil {
		t.Error("out-of-range read should error")
	}
}

func TestSocketUtilization(t *testing.T) {
	c, _ := NewComplex(T3Topology())
	// Load only socket 0's cores.
	for i := 0; i < 16; i++ {
		if err := c.SetCoreLoad(i, 80); err != nil {
			t.Fatal(err)
		}
	}
	s0, err := c.SocketUtilization(0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := c.SocketUtilization(1)
	if err != nil {
		t.Fatal(err)
	}
	if s0 != 80 || s1 != 0 {
		t.Fatalf("sockets = %v / %v", s0, s1)
	}
	if _, err := c.SocketUtilization(2); err == nil {
		t.Error("bad socket should error")
	}
}

func TestVISensors(t *testing.T) {
	c, _ := NewComplex(T3Topology())
	c.SetUniformLoad(100)
	const cpuPower = 70.0 // active + leakage at full load
	var totalAmps float64
	for core := 0; core < 32; core++ {
		v, a, err := c.VI(core, units.Watts(cpuPower))
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 || a <= 0 {
			t.Fatalf("core %d: V=%g A=%g", core, v, a)
		}
		totalAmps += a
	}
	// Power reconstructed from V·I must equal the input power.
	if got := totalAmps * 1.0; math.Abs(got-cpuPower) > 1e-6 {
		t.Fatalf("sum(V·I) = %g, want %g", got, cpuPower)
	}
	if _, _, err := c.VI(99, 10); err == nil {
		t.Error("bad core should error")
	}
}

func TestVIIdleSplitsEvenly(t *testing.T) {
	c, _ := NewComplex(T3Topology())
	// All idle: every core should read the idle current.
	_, a0, _ := c.VI(0, 15)
	_, a1, _ := c.VI(31, 15)
	if math.Abs(a0-a1) > 1e-12 {
		t.Fatalf("idle currents differ: %g vs %g", a0, a1)
	}
	// Power below the idle floor must not produce negative currents.
	_, a, _ := c.VI(0, 0)
	if a <= 0 {
		t.Fatalf("current %g must stay positive", a)
	}
}

func TestVIProportionalToLoad(t *testing.T) {
	c, _ := NewComplex(T3Topology())
	_ = c.SetCoreLoad(0, 100) // only core 0 busy
	_, busy, _ := c.VI(0, 50)
	_, idle, _ := c.VI(1, 50)
	if busy <= idle {
		t.Fatalf("busy core current %g should exceed idle %g", busy, idle)
	}
}

// TestSensorPowerSumMatchesVILoop pins the single-pass readout to the
// per-core VI loop it replaces: the two must agree bit-for-bit across
// uniform, skewed and idle load patterns.
func TestSensorPowerSumMatchesVILoop(t *testing.T) {
	c, _ := NewComplex(T3Topology())
	patterns := []func(){
		func() { c.SetUniformLoad(0) },
		func() { c.SetUniformLoad(70) },
		func() { c.SetUniformLoad(100) },
		func() {
			c.SetUniformLoad(0)
			for i := 0; i < 7; i++ {
				_ = c.SetCoreLoad(i*3, units.Percent(10+10*i))
			}
		},
	}
	for pi, apply := range patterns {
		apply()
		for _, p := range []units.Watts{0, 5, 35, 70, 120} {
			var loop float64
			for core := 0; core < c.Topology().Cores(); core++ {
				v, a, err := c.VI(core, p)
				if err != nil {
					t.Fatal(err)
				}
				loop += v * a
			}
			if got := c.SensorPowerSum(p); got != loop {
				t.Fatalf("pattern %d power %v: SensorPowerSum %.17g != VI loop %.17g", pi, p, got, loop)
			}
		}
	}
}
