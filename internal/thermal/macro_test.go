package thermal

import (
	"math"
	"math/rand"
	"testing"
)

// randomMacroNet builds a small random RC network with boundary leaks,
// returning the network and per-node feedback slopes.
func randomMacroNet(t *testing.T, rng *rand.Rand, nodes int) (*Network, []float64) {
	t.Helper()
	n := NewNetwork(1)
	amb := n.AddBoundary("amb", 20+rng.Float64()*15)
	ids := make([]NodeID, nodes)
	for i := range ids {
		id, err := n.AddNode("n", 10+rng.Float64()*200, 25+rng.Float64()*40)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if _, err := n.ConnectBoundary(id, amb, 0.2+rng.Float64()); err != nil {
			t.Fatal(err)
		}
		if err := n.SetPower(id, rng.Float64()*40); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < nodes; i++ {
		if _, err := n.ConnectNodes(ids[i-1], ids[i], 0.5+2*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	slopes := make([]float64, nodes)
	for i := range slopes {
		if rng.Intn(2) == 0 {
			slopes[i] = rng.Float64() * 0.3 // stable feedback, W/°C
		}
	}
	return n, slopes
}

// TestStepLinearizedNMatchesIteratedMap pins the doubling ladder to the
// brute-force reference: n applications of the per-step affine map with the
// feedback slopes folded into the injected power, which is exactly what the
// fixed-dt path does for a linear heat source.
func TestStepLinearizedNMatchesIteratedMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		nodes := 2 + rng.Intn(4)
		na, slopes := randomMacroNet(t, rng, nodes)
		nb := cloneNetwork(t, na)

		dt := 0.5 + rng.Float64()*1.5
		maxSteps := 1 << (2 + rng.Intn(8))

		// Reference: iterate single exact steps, refreshing the linearized
		// power injection from the current temperature each step.
		base := make([]float64, nodes)
		anchor := make([]float64, nodes)
		for i := 0; i < nodes; i++ {
			anchor[i] = nb.Temp(NodeID(i))
			base[i] = nb.nodes[i].powerIn // true power at the anchor
		}

		sums := make([]float64, nodes)
		n := na.StepLinearizedN(dt, maxSteps, slopes, 1e9, sums)
		if n != maxSteps {
			t.Fatalf("trial %d: wanted the full window %d, got %d", trial, maxSteps, n)
		}

		refSums := make([]float64, nodes)
		for k := 0; k < n; k++ {
			for i := 0; i < nodes; i++ {
				p := base[i] + slopes[i]*(nb.Temp(NodeID(i))-anchor[i])
				if err := nb.SetPower(NodeID(i), p); err != nil {
					t.Fatal(err)
				}
			}
			nb.Step(dt)
			for i := 0; i < nodes; i++ {
				refSums[i] += nb.Temp(NodeID(i))
			}
		}
		for i := 0; i < nodes; i++ {
			if d := math.Abs(na.Temp(NodeID(i)) - nb.Temp(NodeID(i))); d > 1e-9 {
				t.Fatalf("trial %d node %d: endpoint drift %g (macro %g vs ref %g)",
					trial, i, d, na.Temp(NodeID(i)), nb.Temp(NodeID(i)))
			}
			if d := math.Abs(sums[i] - refSums[i]); d > 1e-7*(1+math.Abs(refSums[i])) {
				t.Fatalf("trial %d node %d: temperature sum off by %g", trial, i, d)
			}
		}
	}
}

// cloneNetwork rebuilds an identical network by replaying the public
// construction calls, so the reference path shares no state with the
// network under test.
func cloneNetwork(t *testing.T, src *Network) *Network {
	t.Helper()
	dst := NewNetwork(src.maxStep)
	dst.SetIntegrator(src.integrator)
	for _, b := range src.boundaries {
		dst.AddBoundary(b.name, b.temp)
	}
	for _, nd := range src.nodes {
		id, err := dst.AddNode(nd.name, nd.capac, nd.temp)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.SetPower(id, nd.powerIn); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range src.links {
		var err error
		if l.toBoundary {
			_, err = dst.ConnectBoundary(l.a, l.bBound, l.g)
		} else {
			_, err = dst.ConnectNodes(l.a, l.b, l.g)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestStepLinearizedNDriftCap: a tight drift cap must shrink the window
// (or reject it) rather than overshoot, and a rejected call must leave the
// state untouched.
func TestStepLinearizedNDriftCap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, slopes := randomMacroNet(t, rng, 3)
	// Push far from equilibrium so drift is substantial.
	for i := 0; i < 3; i++ {
		if err := n.SetPower(NodeID(i), 120); err != nil {
			t.Fatal(err)
		}
	}
	before := []float64{n.Temp(0), n.Temp(1), n.Temp(2)}
	sums := make([]float64, 3)
	steps := n.StepLinearizedN(1, 4096, slopes, 0.5, sums)
	if steps == 0 {
		for i := range before {
			if n.Temp(NodeID(i)) != before[i] {
				t.Fatalf("rejected macro-step mutated node %d", i)
			}
		}
		return
	}
	for i := range before {
		if d := math.Abs(n.Temp(NodeID(i)) - before[i]); d > 0.5+1e-9 {
			t.Fatalf("node %d drifted %g past the 0.5 cap over %d steps", i, d, steps)
		}
	}
	if steps == 4096 {
		t.Fatalf("a 120 W injection should not fit 4096 steps under a 0.5 °C cap")
	}
}

// TestStepLinearizedNRejectsDegenerate covers the must-fall-back cases.
func TestStepLinearizedNRejectsDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, slopes := randomMacroNet(t, rng, 2)
	sums := make([]float64, 2)
	if got := n.StepLinearizedN(1, 1, slopes, 1, sums); got != 0 {
		t.Fatalf("maxSteps=1 must be rejected, got %d", got)
	}
	if got := n.StepLinearizedN(0, 8, slopes, 1, sums); got != 0 {
		t.Fatalf("dt=0 must be rejected, got %d", got)
	}
	if got := n.StepLinearizedN(1, 8, slopes[:1], 1, sums); got != 0 {
		t.Fatalf("short slopes must be rejected, got %d", got)
	}
	n.SetIntegrator(IntegratorRK4)
	if got := n.StepLinearizedN(1, 8, slopes, 1, sums); got != 0 {
		t.Fatalf("RK4 networks must be rejected, got %d", got)
	}
}

// TestLookupGenerationFastPath pins the satellite contract of the O(1)
// lookup: steady-state steps must not rebuild propagators, same-value
// SetConductance must not move the generation, and toggling between two
// operating points must re-match (and re-stamp) the cached entries instead
// of rebuilding.
func TestLookupGenerationFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, _ := randomMacroNet(t, rng, 3)
	link := LinkID(0)
	gA := n.links[link].g
	gB := gA * 2

	n.Step(1)
	if n.propBuilds != 1 {
		t.Fatalf("first step should build once, built %d", n.propBuilds)
	}
	gen := n.CondGeneration()
	for i := 0; i < 10; i++ {
		if err := n.SetConductance(link, gA); err != nil { // same value: no-op
			t.Fatal(err)
		}
		n.Step(1)
	}
	if n.CondGeneration() != gen {
		t.Fatalf("same-value SetConductance moved the generation %d → %d", gen, n.CondGeneration())
	}
	if n.propBuilds != 1 {
		t.Fatalf("steady state rebuilt the propagator: %d builds", n.propBuilds)
	}

	// Toggle A→B→A→B…: exactly one extra build (for B), then re-stamped
	// slow-path hits keep both entries warm.
	for i := 0; i < 6; i++ {
		g := gA
		if i%2 == 0 {
			g = gB
		}
		if err := n.SetConductance(link, g); err != nil {
			t.Fatal(err)
		}
		n.Step(1)
	}
	if n.propBuilds != 2 {
		t.Fatalf("toggling two operating points built %d times, want 2", n.propBuilds)
	}
}

// TestLookupGenerationBitIdentical: stepping a network through a mixed
// mutation schedule must give bit-identical temperatures whether the cache
// is consulted through the generation fast path (warm stamps) or forced
// down the slow verification path every time (by perturbing the
// generation counter via a no-op topology edit between steps).
func TestLookupGenerationBitIdentical(t *testing.T) {
	run := func(bustGen bool) []float64 {
		rng := rand.New(rand.NewSource(9))
		n, _ := randomMacroNet(t, rng, 3)
		link := LinkID(1)
		base := n.links[link].g
		for k := 0; k < 50; k++ {
			if k%7 == 3 {
				if err := n.SetConductance(link, base*(1+float64(k%3))); err != nil {
					t.Fatal(err)
				}
			}
			if bustGen {
				n.condGen++ // stale stamps: force the slow verification walk
			}
			n.Step(1)
		}
		out := make([]float64, n.NumNodes())
		for i := range out {
			out[i] = n.Temp(NodeID(i))
		}
		return out
	}
	fast, slow := run(false), run(true)
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("node %d differs between fast and slow lookup paths: %g vs %g", i, fast[i], slow[i])
		}
	}
}

// BenchmarkPropagatorLookup shows the steady-state lookup is O(1) in the
// link count: ns/op must stay flat as links grow (the pre-satellite float
// walk scaled linearly).
func BenchmarkPropagatorLookup(b *testing.B) {
	for _, links := range []int{4, 64, 1024} {
		b.Run(benchName("links", links), func(b *testing.B) {
			n := NewNetwork(1)
			amb := n.AddBoundary("amb", 25)
			var last NodeID
			for i := 0; i < links; i++ {
				id, err := n.AddNode("n", 50, 30)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := n.ConnectBoundary(id, amb, 0.5); err != nil {
					b.Fatal(err)
				}
				last = id
			}
			_ = n.SetPower(last, 20)
			n.Step(1) // build once
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n.lookupPropagator(1) == nil {
					b.Fatal("lookup missed at steady state")
				}
			}
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
