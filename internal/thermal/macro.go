package thermal

// This file implements the closed-form composition of many exact-propagator
// steps — the thermal half of the event-driven macro-stepping kernel
// (internal/sched). Between scheduling events the rack's inputs are
// piecewise constant, so the fixed-dt reference path applies the same
// affine map over and over:
//
//	T_{k+1} = Ad·T_k + Phi·C⁻¹·(P + S·T_k + Σ g_b·T_b)
//	        = M·T_k + c,   M = Ad + Phi·C⁻¹·S,   c = Phi·C⁻¹·(P − S·T₀ + Σ g_b·T_b)
//
// where S carries the per-node feedback slopes of the temperature-dependent
// heat sources (CPU leakage, linearized by the caller around the current
// temperatures T₀; P is the true injected power at T₀, so the map is exact
// at the anchor). K applications collapse into
//
//	T_K       = M^K·T₀ + G_K·c,          G_K = Σ_{j<K} M^j
//	Σ_{k≤K} T_k = (M·G_K)·T₀ + H_K·c,    H_K = Σ_{k≤K} G_k = Σ_{j<K}(K−j)·M^j
//
// computed by doubling (A_{2K} = A_K², G_{2K} = G_K + A_K·G_K, H_{2K} =
// H_K + K·G_K + A_K·H_K) in O(log K) small dense multiplies. The running
// temperature sum is what turns the fixed-dt rectangle-rule energy
// accounting into a closed form: the caller charges K·dt·P(ΣT/K) instead of
// K separate post-step evaluations. Because the composition reproduces the
// *discrete* fixed-dt trajectory — not the continuous-time integral — the
// only deviation from the reference path is the curvature of the leakage
// model over the window's temperature excursion, which the drift cap
// bounds.

// macroScratch holds the m×m and m-vector work buffers of StepLinearizedN,
// reused across calls so macro-stepping does not allocate at steady state.
//
// Only the running power A_n = M^n must be kept as a matrix (it multiplies
// fresh vectors at every level); the geometric sums appear exclusively
// applied to the two fixed vectors c and T₀, so they ride along as the
// vector ladders g_n = G_n·c, y_n = G_n·T₀ and h_n = H_n·c — one matrix
// multiply per doubling instead of three.
type macroScratch struct {
	m          int
	step       []float64 // M, the one-step linearized map
	a, a2      []float64 // A_n = M^n and its squaring scratch
	c          []float64 // affine term of the per-step map
	t0, tn, tc []float64 // start temps, current endpoint, candidate
	g, y, h    []float64 // vector ladders G_n·c, G_n·T₀, H_n·c
	vtmp       []float64 // matvec scratch
}

func (s *macroScratch) size(m int) {
	if s.m == m {
		return
	}
	s.m = m
	s.step = make([]float64, m*m)
	s.a = make([]float64, m*m)
	s.a2 = make([]float64, m*m)
	s.c = make([]float64, m)
	s.t0 = make([]float64, m)
	s.tn = make([]float64, m)
	s.tc = make([]float64, m)
	s.g = make([]float64, m)
	s.y = make([]float64, m)
	s.h = make([]float64, m)
	s.vtmp = make([]float64, m)
}

// matMulInto computes dst = a·b for m×m row-major matrices.
func matMulInto(dst, a, b []float64, m int) {
	for i := 0; i < m; i++ {
		di := dst[i*m : (i+1)*m]
		ai := a[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			di[j] = 0
		}
		for k := 0; k < m; k++ {
			f := ai[k]
			bk := b[k*m : (k+1)*m]
			for j := 0; j < m; j++ {
				di[j] += f * bk[j]
			}
		}
	}
}

// matVecInto computes dst = a·x.
func matVecInto(dst, a, x []float64, m int) {
	for i := 0; i < m; i++ {
		ai := a[i*m : (i+1)*m]
		s := 0.0
		for j := 0; j < m; j++ {
			s += ai[j] * x[j]
		}
		dst[i] = s
	}
}

// StepLinearizedN advances the network by n applications of the per-step
// affine map above, choosing the largest power-of-two n ≤ maxSteps whose
// endpoint stays within driftCap of the start temperatures (per node, °C).
// slopes[i] is node i's heat-source feedback dP/dT in W/°C (zero for nodes
// without temperature-dependent sources); the node powers set via SetPower
// must be the true injected powers at the current temperatures, so the
// linearization is exact at the anchor. On success it updates the node
// temperatures to T_n, stores Σ_{k=1..n} T_k into sums (len NumNodes) for
// closed-form energy accounting, and returns n ≥ 2. It returns 0 — leaving
// all state untouched — when no multi-step window is admissible: maxSteps
// < 2, a non-exact integrator, an unbuildable propagator, or a first
// doubling already beyond the drift cap (fast transients and thermal
// runaway both land here); the caller then falls back to plain Step, which
// is the exact fixed-dt semantics.
func (n *Network) StepLinearizedN(dt float64, maxSteps int, slopes []float64, driftCap float64, sums []float64) int {
	m := len(n.nodes)
	if dt <= 0 || m == 0 || maxSteps < 2 || n.integrator != IntegratorExact {
		return 0
	}
	if len(slopes) != m || len(sums) != m || driftCap <= 0 {
		return 0
	}
	p := n.lookupPropagator(dt)
	if p == nil {
		p = n.buildPropagator(dt)
	}
	if p.failed {
		return 0
	}
	s := &n.macro
	s.size(m)

	// One-step map M = Ad + Phi·C⁻¹·S: column j of Phi scaled by s_j/C_j.
	for j := 0; j < m; j++ {
		s.vtmp[j] = slopes[j] / n.nodes[j].capac
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			s.step[i*m+j] = p.ad[i*m+j] + p.phi[i*m+j]*s.vtmp[j]
		}
	}
	// Affine term c = Phi·C⁻¹·(P − S·T₀ + Σ g_b·T_b), assembled exactly the
	// way stepExact assembles its per-step input.
	for i := range s.t0 {
		s.t0[i] = n.nodes[i].temp
		s.tn[i] = n.nodes[i].powerIn - slopes[i]*s.t0[i] // reuse tn as u scratch
	}
	for _, l := range n.links {
		if l.toBoundary {
			s.tn[l.a] += l.g * n.boundaries[l.bBound].temp
		}
	}
	for i := range s.tn {
		s.tn[i] /= n.nodes[i].capac
	}
	matVecInto(s.c, p.phi, s.tn, m)

	// Ladder start: n = 1 — A = M, g = c, y = T₀, h = c, T₁ = M·T₀ + c.
	copy(s.a, s.step)
	copy(s.g, s.c)
	copy(s.y, s.t0)
	copy(s.h, s.c)
	matVecInto(s.tn, s.step, s.t0, m)
	for i := 0; i < m; i++ {
		s.tn[i] += s.c[i]
	}
	steps := 1
	for 2*steps <= maxSteps {
		// Candidate endpoint T_{2n} = A_n·T_n + g_n; drift-check before
		// committing the level.
		matVecInto(s.tc, s.a, s.tn, m)
		ok := true
		for i := 0; i < m; i++ {
			s.tc[i] += s.g[i]
			d := s.tc[i] - s.t0[i]
			if d < 0 {
				d = -d
			}
			if !(d <= driftCap) { // NaN-safe: divergence fails the cap
				ok = false
			}
		}
		if !ok {
			n.driftStops++ // ladder cut short by the drift cap, not maxSteps
			break
		}
		// Vector ladders, h first (it consumes this level's g and A):
		// h_{2n} = h_n + n·g_n + A_n·h_n, then g_{2n} = g_n + A_n·g_n and
		// y_{2n} = y_n + A_n·y_n.
		fn := float64(steps)
		matVecInto(s.vtmp, s.a, s.h, m)
		for i := 0; i < m; i++ {
			s.h[i] += fn*s.g[i] + s.vtmp[i]
		}
		matVecInto(s.vtmp, s.a, s.g, m)
		for i := 0; i < m; i++ {
			s.g[i] += s.vtmp[i]
		}
		matVecInto(s.vtmp, s.a, s.y, m)
		for i := 0; i < m; i++ {
			s.y[i] += s.vtmp[i]
		}
		copy(s.tn, s.tc)
		steps *= 2
		if 2*steps <= maxSteps {
			// Square up only when another level can still be attempted —
			// the single matrix multiply of the level.
			matMulInto(s.a2, s.a, s.a, m)
			s.a, s.a2 = s.a2, s.a
		}
	}
	if steps < 2 {
		return 0
	}
	// Σ_{k=1..n} T_k = M·(G_n·T₀) + H_n·c.
	matVecInto(s.vtmp, s.step, s.y, m)
	for i := 0; i < m; i++ {
		sums[i] = s.vtmp[i] + s.h[i]
		n.nodes[i].temp = s.tn[i]
	}
	return steps
}
