// Package thermal implements a lumped RC thermal network, the substrate
// that replaces the physical SPARC T3 server's thermal behaviour.
//
// Nodes carry a heat capacitance (J/°C) and a temperature; boundaries are
// fixed-temperature reservoirs (ambient or preheated inlet air). Links are
// thermal conductances (W/°C, the reciprocal of a thermal resistance in
// °C/W). Conductances may be changed between steps, which is how fan-speed
// dependent convection is modelled: the server layer recomputes the
// sink-to-air conductance from the current RPM before each step.
//
// The network reproduces the two behaviours Figure 1 of the paper
// documents: a fast die-level transient (small C close to the heat source)
// and a slow fan-dependent heatsink transient (large C behind an
// airflow-dependent R).
//
// # Integrators
//
// Between topology or conductance changes the network is linear
// time-invariant (C·dT/dt = −G·T + P + G_b·T_b), so the default
// IntegratorExact advances any step length with the exact discrete
// propagator T(t+h) = Ad·T + Phi·u, where Ad = exp(−C⁻¹G·h) and Phi its
// integral (mathx.ExpmIntegral, Van Loan's augmented-matrix trick). The
// classical fixed-step RK4 scheme is retained behind IntegratorRK4 as the
// ground truth; the equivalence property test pins the two to ≤1e-6 °C per
// step across random networks and mid-run mutations.
//
// # Propagator cache invalidation rules
//
// Exact propagators are cached in a small LRU keyed on
// (conductance-set, step size):
//
//   - Power injections (SetPower) and boundary temperatures
//     (SetBoundaryTemp) NEVER invalidate: they enter only the per-step
//     affine term u, recomputed every step.
//   - A conductance change (SetConductance) does not flush the cache; it
//     changes the key, so stepping looks up (and at worst builds) the
//     entry for the new conductance snapshot while the old entry stays
//     resident. Alternating operating points — a controller toggling
//     between two fan speeds, or alternating dt — therefore hit the
//     cache on both sides instead of thrashing.
//   - Adding a node or changing the step size likewise selects a
//     different entry; only cache-capacity eviction (LRU, 8 entries)
//     discards one.
//
// Lookups are O(1) in the link count: every conductance mutation bumps a
// generation counter (same-value writes are no-ops), entries carry the
// generation they last matched, and a (generation, h, nodes) compare
// proves an entry current without walking its conductance snapshot. When
// the generation moved — a fan toggled away and back — the slow
// float-by-float verification runs once and re-stamps the matching entry.
//
// In steady operation the hit rate is ~100% and one step of any length is
// a single small matvec, which is what makes rack-scale stepping scale
// near-linearly in server count.
//
// # Macro-stepping
//
// StepLinearizedN serves the event-driven kernel (internal/sched): with
// constant inputs and the temperature-dependent heat sources linearized
// around the current state (per-node feedback slopes), K consecutive
// fixed-dt steps are one affine map applied K times, which collapses into
// O(log K) small matrix products via a doubling ladder. The ladder also
// returns the running temperature sum Σ T_k, turning the per-step
// rectangle-rule energy accounting into a closed form, and caps the
// per-window temperature drift so the linearization error stays bounded;
// windows that would drift past the cap shrink or fall back to plain
// stepping. See macro.go for the algebra.
package thermal
