package thermal

import (
	"fmt"

	"repro/internal/mathx"
)

// PropEntry is the serializable key of one cached propagator: the step size
// and the per-link conductance vector it was built for, in LRU order
// (most recently used first). The matrices themselves are derived state —
// mathx.ExpmIntegral is deterministic, so rebuilding from the key
// reproduces them bit-identically — and stay out of the snapshot.
type PropEntry struct {
	H  float64
	Gs []float64
}

// State is the serializable mutable state of a Network built from a fixed
// topology: temperatures, injected powers, boundary temperatures, link
// conductances, the propagator-cache keys in LRU order, and the lifetime
// cache counters. Restoring rebuilds every cached propagator and then
// overwrites the counters, so post-resume metrics dumps match the
// uninterrupted run exactly (the rebuilds themselves are not charged).
type State struct {
	Temps        []float64
	PowerIn      []float64
	Boundaries   []float64
	Conductances []float64
	Props        []PropEntry
	Stats        PropagatorStats
}

// State captures the network for a checkpoint.
func (n *Network) State() State {
	st := State{
		Temps:        make([]float64, len(n.nodes)),
		PowerIn:      make([]float64, len(n.nodes)),
		Boundaries:   make([]float64, len(n.boundaries)),
		Conductances: make([]float64, len(n.links)),
		Stats:        n.PropagatorStats(),
	}
	for i, nd := range n.nodes {
		st.Temps[i] = nd.temp
		st.PowerIn[i] = nd.powerIn
	}
	for i, b := range n.boundaries {
		st.Boundaries[i] = b.temp
	}
	for i, l := range n.links {
		st.Conductances[i] = l.g
	}
	for _, p := range n.props {
		st.Props = append(st.Props, PropEntry{H: p.h, Gs: append([]float64(nil), p.gs...)})
	}
	return st
}

// SetState restores a captured State into a network with the same topology
// (node, boundary and link counts must match; the wiring itself is a
// construction parameter).
func (n *Network) SetState(st State) error {
	if len(st.Temps) != len(n.nodes) || len(st.PowerIn) != len(n.nodes) {
		return fmt.Errorf("thermal: state has %d nodes, network has %d", len(st.Temps), len(n.nodes))
	}
	if len(st.Boundaries) != len(n.boundaries) {
		return fmt.Errorf("thermal: state has %d boundaries, network has %d", len(st.Boundaries), len(n.boundaries))
	}
	if len(st.Conductances) != len(n.links) {
		return fmt.Errorf("thermal: state has %d links, network has %d", len(st.Conductances), len(n.links))
	}
	if len(st.Props) > propCacheSize {
		return fmt.Errorf("thermal: state has %d cached propagators, cache holds %d", len(st.Props), propCacheSize)
	}
	for i := range n.nodes {
		n.nodes[i].temp = st.Temps[i]
		n.nodes[i].powerIn = st.PowerIn[i]
	}
	for i := range n.boundaries {
		n.boundaries[i].temp = st.Boundaries[i]
	}
	for i := range n.links {
		n.links[i].g = st.Conductances[i]
	}
	n.condGen++ // conductance values may have moved; stale stamps must not match
	// Rebuild the propagator cache from its keys, least recently used first,
	// so front-insertion recreates the snapshotted LRU order exactly — the
	// post-resume hit/miss/eviction pattern (and therefore the counters the
	// metrics dump reports) then matches the uninterrupted run.
	n.props = n.props[:0]
	for i := len(st.Props) - 1; i >= 0; i-- {
		if err := n.restorePropagator(st.Props[i]); err != nil {
			return err
		}
	}
	n.propHits = st.Stats.Hits
	n.propMisses = st.Stats.Misses
	n.propBuilds = st.Stats.Builds
	n.driftStops = st.Stats.DriftStops
	return nil
}

// restorePropagator rebuilds one cache entry from its (h, conductances) key
// against the current topology and inserts it at the front of the LRU,
// mirroring buildPropagator but without touching the live link values or
// the lifetime counters. The generation stamp is made current only when the
// entry's conductance vector equals the live one, so the O(1) fast path
// stays sound after restore.
func (n *Network) restorePropagator(e PropEntry) error {
	m := len(n.nodes)
	if len(e.Gs) != len(n.links) {
		return fmt.Errorf("thermal: cached propagator has %d conductances, network has %d links", len(e.Gs), len(n.links))
	}
	p := &propagator{h: e.H, m: m, gs: append([]float64(nil), e.Gs...)}
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
	}
	for j, l := range n.links {
		g := e.Gs[j]
		ga := g / n.nodes[l.a].capac
		a[l.a][l.a] -= ga
		if l.toBoundary {
			continue
		}
		gb := g / n.nodes[l.b].capac
		a[l.a][l.b] += ga
		a[l.b][l.b] -= gb
		a[l.b][l.a] += gb
	}
	ad, phi, err := mathx.ExpmIntegral(a, e.H)
	if err != nil {
		p.failed = true
	} else {
		p.ad = make([]float64, m*m)
		p.phi = make([]float64, m*m)
		for i := 0; i < m; i++ {
			copy(p.ad[i*m:(i+1)*m], ad[i])
			copy(p.phi[i*m:(i+1)*m], phi[i])
		}
	}
	current := true
	for j := range n.links {
		if n.links[j].g != e.Gs[j] {
			current = false
			break
		}
	}
	if current {
		p.gen = n.condGen
	} else {
		p.gen = n.condGen - 1 // never equal to the live generation
	}
	if len(n.props) == propCacheSize {
		n.props = n.props[:propCacheSize-1]
	}
	n.props = append(n.props, nil)
	copy(n.props[1:], n.props[:len(n.props)-1])
	n.props[0] = p
	return nil
}
