package thermal

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Integrator selects the time-stepping scheme for Network.Step.
type Integrator int

const (
	// IntegratorExact advances the network with the exact discrete
	// propagator T(t+h) = Ad·T + Phi·u of the linear system, where
	// Ad = exp(−C⁻¹G·h) and Phi its integral. The pair is cached and only
	// rebuilt when the conductance set, the node set or the step size
	// changes, so in steady operation a step of any length costs one small
	// matvec. This is the default.
	IntegratorExact Integrator = iota
	// IntegratorRK4 forces the classical fixed-step RK4 fallback, the
	// original integration path kept as ground truth for the exact scheme.
	IntegratorRK4
)

// NodeID identifies a capacitive node in the network.
type NodeID int

// BoundaryID identifies a fixed-temperature boundary.
type BoundaryID int

// LinkID identifies a conductance between two points of the network.
type LinkID int

type node struct {
	name    string
	capac   float64 // J/°C
	temp    float64 // °C
	powerIn float64 // W injected this step
}

type boundary struct {
	name string
	temp float64
}

type link struct {
	a          NodeID // always a capacitive node
	b          NodeID // capacitive node when !toBoundary
	bBound     BoundaryID
	toBoundary bool
	g          float64 // conductance W/°C
}

// propagator caches the exact discretization of one linear system for one
// step size: next = ad·T + phi·u with u the per-capacitance affine input
// (injected power plus boundary inflow). Power and boundary temperatures
// enter only through u, recomputed each step, so a cached entry survives
// them. Each entry is keyed on (conductance-set, h): gs is a snapshot of
// every link's conductance at build time, so a step matches an entry only
// when the system matrix −C⁻¹G it was built from is the current one. gen
// stamps the conductance generation the entry last matched, making the
// steady-state lookup a three-int compare instead of an O(#links) float
// walk (see lookupPropagator).
type propagator struct {
	failed bool // build attempt failed for this key; don't retry it
	h      float64
	m      int
	gen    uint64    // conductance generation this entry last matched
	gs     []float64 // per-link conductances this entry was built for
	ad     []float64 // m×m row-major exp(−C⁻¹G·h)
	phi    []float64 // m×m row-major ∫₀ʰ exp(−C⁻¹G·s) ds
}

// propCacheSize bounds the propagator LRU. A server alternates between a
// handful of operating points (a few fan speeds × at most a couple of step
// sizes), so a small cache captures the working set without letting a
// sweeping workload hold stale matrices alive.
const propCacheSize = 8

// Network is a mutable RC thermal network. Steps use the cached exact
// exponential propagator by default, with fixed-step RK4 as the selectable
// fallback.
type Network struct {
	nodes      []node
	boundaries []boundary
	links      []link

	integrator Integrator
	props      []*propagator // LRU of exact propagators, most recent first
	propBuilds int           // lifetime build count, observable in tests
	propHits   int           // lifetime cache hits (fast or slow path)
	propMisses int           // lifetime lookup failures (each triggers a build)
	driftStops int           // macro doubling ladders cut short by the drift cap
	condGen    uint64        // bumped whenever any link conductance changes
	u, next    []float64     // exact-step scratch, sized at node addition

	macro macroScratch // linearized macro-step work buffers

	// RK4 integration scratch
	state   []float64
	scratch [][]float64
	maxStep float64

	// steady-state solve scratch, reused across calls
	ssA [][]float64
	ssB []float64
}

// NewNetwork returns an empty network. maxStep bounds the internal
// integration step in seconds (values ≤ 0 default to 1 s); Step subdivides
// longer intervals for accuracy and stability.
func NewNetwork(maxStep float64) *Network {
	if maxStep <= 0 {
		maxStep = 1
	}
	return &Network{maxStep: maxStep}
}

// SetIntegrator selects the stepping scheme. Switching is cheap; the exact
// propagator is rebuilt lazily on the next Step.
func (n *Network) SetIntegrator(i Integrator) { n.integrator = i }

// IntegratorInUse returns the currently selected stepping scheme.
func (n *Network) IntegratorInUse() Integrator { return n.integrator }

// invalidate drops every cached propagator; called on topology mutations
// (node or link additions), which change the meaning of the conductance
// vector the cache entries are keyed on. Plain conductance changes do NOT
// invalidate: entries carry their own conductance snapshot, so a changed
// value simply stops matching and the previous operating point's entry
// stays warm for when the fans switch back.
func (n *Network) invalidate() {
	n.props = n.props[:0]
	n.condGen++ // the conductance vector changed meaning, not just value
	n.sizeScratch()
}

// sizeScratch (re)sizes every per-step work buffer to the current node
// count. Doing this at mutation time — node/link additions — keeps Step
// allocation-free at steady state (asserted by testing.AllocsPerRun in the
// server and rack packages).
func (n *Network) sizeScratch() {
	m := len(n.nodes)
	if len(n.u) != m {
		n.u = make([]float64, m)
		n.next = make([]float64, m)
		n.state = make([]float64, m)
		n.scratch = mathx.NewScratch(m)
	}
}

// AddNode adds a capacitive node with the given heat capacity (J/°C) and
// initial temperature. Capacitance must be positive.
func (n *Network) AddNode(name string, capacitance, initial float64) (NodeID, error) {
	if capacitance <= 0 {
		return 0, fmt.Errorf("thermal: node %q capacitance must be positive, got %g", name, capacitance)
	}
	n.nodes = append(n.nodes, node{name: name, capac: capacitance, temp: initial})
	n.invalidate()
	return NodeID(len(n.nodes) - 1), nil
}

// AddBoundary adds a fixed-temperature reservoir.
func (n *Network) AddBoundary(name string, temp float64) BoundaryID {
	n.boundaries = append(n.boundaries, boundary{name: name, temp: temp})
	return BoundaryID(len(n.boundaries) - 1)
}

// ConnectNodes links two capacitive nodes with conductance g (W/°C).
func (n *Network) ConnectNodes(a, b NodeID, g float64) (LinkID, error) {
	if err := n.checkNode(a); err != nil {
		return 0, err
	}
	if err := n.checkNode(b); err != nil {
		return 0, err
	}
	if g < 0 {
		return 0, fmt.Errorf("thermal: negative conductance %g", g)
	}
	n.links = append(n.links, link{a: a, b: b, g: g})
	n.invalidate()
	return LinkID(len(n.links) - 1), nil
}

// ConnectBoundary links a capacitive node to a boundary with conductance g.
func (n *Network) ConnectBoundary(a NodeID, b BoundaryID, g float64) (LinkID, error) {
	if err := n.checkNode(a); err != nil {
		return 0, err
	}
	if int(b) < 0 || int(b) >= len(n.boundaries) {
		return 0, fmt.Errorf("thermal: unknown boundary %d", b)
	}
	if g < 0 {
		return 0, fmt.Errorf("thermal: negative conductance %g", g)
	}
	n.links = append(n.links, link{a: a, bBound: b, toBoundary: true, g: g})
	n.invalidate()
	return LinkID(len(n.links) - 1), nil
}

func (n *Network) checkNode(id NodeID) error {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		return fmt.Errorf("thermal: unknown node %d", id)
	}
	return nil
}

// SetConductance updates a link's conductance; this is how airflow changes
// with fan RPM between steps.
func (n *Network) SetConductance(id LinkID, g float64) error {
	if int(id) < 0 || int(id) >= len(n.links) {
		return fmt.Errorf("thermal: unknown link %d", id)
	}
	if g < 0 {
		return fmt.Errorf("thermal: negative conductance %g", g)
	}
	// No cache invalidation here: propagator entries are keyed on the full
	// conductance vector, so a change merely selects a different entry (or
	// triggers one build) while entries for other operating points survive.
	// Setting the value already in place is a no-op so the generation
	// counter — the O(1) steady-state cache key — only moves when the
	// system matrix actually changes.
	if n.links[id].g == g {
		return nil
	}
	n.links[id].g = g
	n.condGen++
	return nil
}

// CondGeneration returns the conductance generation counter: it advances
// exactly when some link's conductance value changes (or the topology is
// edited), so equal generations imply an identical system matrix.
func (n *Network) CondGeneration() uint64 { return n.condGen }

// SetBoundaryTemp updates a boundary temperature (e.g. inlet preheat).
func (n *Network) SetBoundaryTemp(id BoundaryID, temp float64) error {
	if int(id) < 0 || int(id) >= len(n.boundaries) {
		return fmt.Errorf("thermal: unknown boundary %d", id)
	}
	n.boundaries[id].temp = temp
	return nil
}

// SetPower sets the heat injected into a node in Watts for subsequent steps.
func (n *Network) SetPower(id NodeID, w float64) error {
	if err := n.checkNode(id); err != nil {
		return err
	}
	n.nodes[id].powerIn = w
	return nil
}

// Temp returns a node's current temperature.
func (n *Network) Temp(id NodeID) float64 { return n.nodes[id].temp }

// SetTemp forces a node temperature (used to start experiments from the
// paper's mandated cold state).
func (n *Network) SetTemp(id NodeID, temp float64) error {
	if err := n.checkNode(id); err != nil {
		return err
	}
	n.nodes[id].temp = temp
	return nil
}

// NumNodes returns the number of capacitive nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// TempSum returns the plain sum of every node temperature. Unlike the
// max-style roll-ups, whose `>` comparisons silently skip NaN, a sum is
// poisoned by any non-finite node — which is exactly what the run-level
// divergence guard needs: one O(nodes) read that cannot hide a NaN.
func (n *Network) TempSum() float64 {
	var s float64
	for i := range n.nodes {
		s += n.nodes[i].temp
	}
	return s
}

// derivative computes dT/dt for every node.
func (n *Network) derivative(_ float64, y []float64, dydt []float64) {
	for i := range dydt {
		dydt[i] = n.nodes[i].powerIn
	}
	for _, l := range n.links {
		ta := y[l.a]
		var tb float64
		if l.toBoundary {
			tb = n.boundaries[l.bBound].temp
		} else {
			tb = y[l.b]
		}
		q := l.g * (tb - ta) // W flowing into a
		dydt[l.a] += q
		if !l.toBoundary {
			dydt[l.b] -= q
		}
	}
	for i := range dydt {
		dydt[i] /= n.nodes[i].capac
	}
}

// Step advances the whole network by dt seconds. With the exact integrator
// (the default) this is a single cached-propagator matvec for any dt; the
// RK4 path subdivides into equal substeps of at most maxStep.
func (n *Network) Step(dt float64) {
	if dt <= 0 || len(n.nodes) == 0 {
		return
	}
	if n.integrator == IntegratorExact && n.stepExact(dt) {
		return
	}
	n.stepRK4(dt)
}

// stepExact advances by one exact propagator application. It returns false
// if the propagator could not be built (the caller then falls back to RK4).
func (n *Network) stepExact(dt float64) bool {
	m := len(n.nodes)
	p := n.lookupPropagator(dt)
	if p == nil {
		p = n.buildPropagator(dt)
	}
	if p.failed {
		return false // a doomed operating point stays on RK4 until its key changes
	}
	// Affine input u = C⁻¹·(P + Σ g_b·T_b); power and boundary temperature
	// changes are picked up here without touching the cached propagator.
	for i := range n.u {
		n.u[i] = n.nodes[i].powerIn
	}
	for _, l := range n.links {
		if l.toBoundary {
			n.u[l.a] += l.g * n.boundaries[l.bBound].temp
		}
	}
	for i := range n.u {
		n.u[i] /= n.nodes[i].capac
	}
	for i := 0; i < m; i++ {
		ad := p.ad[i*m : (i+1)*m]
		phi := p.phi[i*m : (i+1)*m]
		s := 0.0
		for j := 0; j < m; j++ {
			s += ad[j]*n.nodes[j].temp + phi[j]*n.u[j]
		}
		n.next[i] = s
	}
	for i := range n.nodes {
		n.nodes[i].temp = n.next[i]
	}
	return true
}

// lookupPropagator returns the cached entry matching the current
// (conductance-set, h) key, promoting it to the front of the LRU, or nil.
//
// The fast path compares (gen, h, m): the generation counter advances
// exactly when a conductance value changes, so a matching stamp proves the
// entry's matrix is current without touching the per-link floats — the
// steady-state lookup is O(1) in the link count. When the generation
// moved (a fan toggled and toggled back), the slow path re-verifies the
// snapshot float-by-float and, on a match, re-stamps the entry with the
// current generation so subsequent steps take the fast path again. Results
// are bit-identical to the always-walk lookup: a stamp can only equal the
// current generation if the conductance vector is unchanged since it was
// stamped.
func (n *Network) lookupPropagator(h float64) *propagator {
	m := len(n.nodes)
	for k, p := range n.props {
		if p.gen == n.condGen && p.h == h && p.m == m {
			n.propHits++
			return n.promote(k, p)
		}
	}
	for k, p := range n.props {
		if p.h != h || p.m != m || len(p.gs) != len(n.links) {
			continue
		}
		match := true
		for j := range n.links {
			if p.gs[j] != n.links[j].g {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		p.gen = n.condGen // re-stamp: O(1) hits until the fans move again
		n.propHits++
		return n.promote(k, p)
	}
	n.propMisses++
	return nil
}

// promote moves props[k] to the front of the LRU and returns it.
func (n *Network) promote(k int, p *propagator) *propagator {
	if k > 0 {
		copy(n.props[1:k+1], n.props[:k])
		n.props[0] = p
	}
	return p
}

// buildPropagator assembles A = −C⁻¹G from the current links, computes the
// exact discretization pair for step h and inserts it at the front of the
// LRU, evicting the least recently used entry when the cache is full. This
// is the cold path: it runs once per (conductance-set, h) operating point
// in the working set (fan-speed updates are holdoff-gated upstream, so
// steady operation hits the cache). A system the Padé evaluation rejects is
// cached as failed, keeping the RK4 fallback from re-attempting the build
// every step.
func (n *Network) buildPropagator(h float64) *propagator {
	m := len(n.nodes)
	n.propBuilds++
	p := &propagator{
		h:   h,
		m:   m,
		gen: n.condGen,
		gs:  make([]float64, len(n.links)),
	}
	for j := range n.links {
		p.gs[j] = n.links[j].g
	}
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
	}
	for _, l := range n.links {
		ga := l.g / n.nodes[l.a].capac
		a[l.a][l.a] -= ga
		if l.toBoundary {
			continue
		}
		gb := l.g / n.nodes[l.b].capac
		a[l.a][l.b] += ga
		a[l.b][l.b] -= gb
		a[l.b][l.a] += gb
	}
	ad, phi, err := mathx.ExpmIntegral(a, h)
	if err != nil {
		p.failed = true
	} else {
		p.ad = make([]float64, m*m)
		p.phi = make([]float64, m*m)
		for i := 0; i < m; i++ {
			copy(p.ad[i*m:(i+1)*m], ad[i])
			copy(p.phi[i*m:(i+1)*m], phi[i])
		}
	}
	if len(n.props) == propCacheSize {
		n.props = n.props[:propCacheSize-1]
	}
	n.props = append(n.props, nil)
	copy(n.props[1:], n.props[:len(n.props)-1])
	n.props[0] = p
	return p
}

// stepRK4 advances by dt using classical RK4 over an integer number of equal
// substeps, so the total integrated time is exactly dt with no float-drift
// remainder step.
func (n *Network) stepRK4(dt float64) {
	for i := range n.nodes {
		n.state[i] = n.nodes[i].temp
	}
	sub := int(math.Ceil(dt/n.maxStep - 1e-9))
	if sub < 1 {
		sub = 1
	}
	h := dt / float64(sub)
	for k := 0; k < sub; k++ {
		mathx.RK4Step(n.derivative, float64(k)*h, n.state, h, n.scratch)
	}
	for i := range n.nodes {
		n.nodes[i].temp = n.state[i]
	}
}

// SteadyState solves for the equilibrium temperatures with the current
// powers, conductances and boundary temperatures by solving the linear heat
// balance G·T = P + G_b·T_b. It does not modify the network state. The
// solve runs in preallocated buffers reused across calls, so repeated
// equilibrium queries (table building, bisection) do not allocate the
// m×m system each time.
func (n *Network) SteadyState() ([]float64, error) {
	m := len(n.nodes)
	if m == 0 {
		return nil, nil
	}
	if len(n.ssA) != m {
		n.ssA = make([][]float64, m)
		for i := range n.ssA {
			n.ssA[i] = make([]float64, m)
		}
		n.ssB = make([]float64, m)
	}
	a, b := n.ssA, n.ssB
	for i := range a {
		row := a[i]
		for j := range row {
			row[j] = 0
		}
		b[i] = n.nodes[i].powerIn
	}
	for _, l := range n.links {
		if l.toBoundary {
			a[l.a][l.a] += l.g
			b[l.a] += l.g * n.boundaries[l.bBound].temp
		} else {
			a[l.a][l.a] += l.g
			a[l.a][l.b] -= l.g
			a[l.b][l.b] += l.g
			a[l.b][l.a] -= l.g
		}
	}
	if err := mathx.SolveLinearInPlace(a, b); err != nil {
		return nil, err
	}
	// The in-place solve also pivot-swaps the rows of ssA; that is fine
	// because the buffers are fully rewritten on the next call.
	return append([]float64(nil), b...), nil
}

// Settle assigns the steady-state solution to the node temperatures. It is
// used to initialize experiments in thermal equilibrium.
func (n *Network) Settle() error {
	t, err := n.SteadyState()
	if err != nil {
		return err
	}
	for i := range n.nodes {
		n.nodes[i].temp = t[i]
	}
	return nil
}
