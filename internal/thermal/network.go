// Package thermal implements a lumped RC thermal network, the substrate that
// replaces the physical SPARC T3 server's thermal behaviour.
//
// Nodes carry a heat capacitance (J/°C) and a temperature; boundaries are
// fixed-temperature reservoirs (ambient or preheated inlet air). Links are
// thermal conductances (W/°C, the reciprocal of a thermal resistance in
// °C/W). Conductances may be changed between steps, which is how fan-speed
// dependent convection is modelled: the server layer recomputes the
// sink-to-air conductance from the current RPM before each step.
//
// The network reproduces the two behaviours Figure 1 of the paper documents:
// a fast die-level transient (small C close to the heat source) and a slow
// fan-dependent heatsink transient (large C behind an airflow-dependent R).
package thermal

import (
	"fmt"

	"repro/internal/mathx"
)

// NodeID identifies a capacitive node in the network.
type NodeID int

// BoundaryID identifies a fixed-temperature boundary.
type BoundaryID int

// LinkID identifies a conductance between two points of the network.
type LinkID int

type node struct {
	name    string
	capac   float64 // J/°C
	temp    float64 // °C
	powerIn float64 // W injected this step
}

type boundary struct {
	name string
	temp float64
}

type link struct {
	a          NodeID // always a capacitive node
	b          NodeID // capacitive node when !toBoundary
	bBound     BoundaryID
	toBoundary bool
	g          float64 // conductance W/°C
}

// Network is a mutable RC thermal network integrated with RK4.
type Network struct {
	nodes      []node
	boundaries []boundary
	links      []link

	// integration scratch
	state   []float64
	scratch [][]float64
	maxStep float64
}

// NewNetwork returns an empty network. maxStep bounds the internal
// integration step in seconds (values ≤ 0 default to 1 s); Step subdivides
// longer intervals for accuracy and stability.
func NewNetwork(maxStep float64) *Network {
	if maxStep <= 0 {
		maxStep = 1
	}
	return &Network{maxStep: maxStep}
}

// AddNode adds a capacitive node with the given heat capacity (J/°C) and
// initial temperature. Capacitance must be positive.
func (n *Network) AddNode(name string, capacitance, initial float64) (NodeID, error) {
	if capacitance <= 0 {
		return 0, fmt.Errorf("thermal: node %q capacitance must be positive, got %g", name, capacitance)
	}
	n.nodes = append(n.nodes, node{name: name, capac: capacitance, temp: initial})
	return NodeID(len(n.nodes) - 1), nil
}

// AddBoundary adds a fixed-temperature reservoir.
func (n *Network) AddBoundary(name string, temp float64) BoundaryID {
	n.boundaries = append(n.boundaries, boundary{name: name, temp: temp})
	return BoundaryID(len(n.boundaries) - 1)
}

// ConnectNodes links two capacitive nodes with conductance g (W/°C).
func (n *Network) ConnectNodes(a, b NodeID, g float64) (LinkID, error) {
	if err := n.checkNode(a); err != nil {
		return 0, err
	}
	if err := n.checkNode(b); err != nil {
		return 0, err
	}
	if g < 0 {
		return 0, fmt.Errorf("thermal: negative conductance %g", g)
	}
	n.links = append(n.links, link{a: a, b: b, g: g})
	return LinkID(len(n.links) - 1), nil
}

// ConnectBoundary links a capacitive node to a boundary with conductance g.
func (n *Network) ConnectBoundary(a NodeID, b BoundaryID, g float64) (LinkID, error) {
	if err := n.checkNode(a); err != nil {
		return 0, err
	}
	if int(b) < 0 || int(b) >= len(n.boundaries) {
		return 0, fmt.Errorf("thermal: unknown boundary %d", b)
	}
	if g < 0 {
		return 0, fmt.Errorf("thermal: negative conductance %g", g)
	}
	n.links = append(n.links, link{a: a, bBound: b, toBoundary: true, g: g})
	return LinkID(len(n.links) - 1), nil
}

func (n *Network) checkNode(id NodeID) error {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		return fmt.Errorf("thermal: unknown node %d", id)
	}
	return nil
}

// SetConductance updates a link's conductance; this is how airflow changes
// with fan RPM between steps.
func (n *Network) SetConductance(id LinkID, g float64) error {
	if int(id) < 0 || int(id) >= len(n.links) {
		return fmt.Errorf("thermal: unknown link %d", id)
	}
	if g < 0 {
		return fmt.Errorf("thermal: negative conductance %g", g)
	}
	n.links[id].g = g
	return nil
}

// SetBoundaryTemp updates a boundary temperature (e.g. inlet preheat).
func (n *Network) SetBoundaryTemp(id BoundaryID, temp float64) error {
	if int(id) < 0 || int(id) >= len(n.boundaries) {
		return fmt.Errorf("thermal: unknown boundary %d", id)
	}
	n.boundaries[id].temp = temp
	return nil
}

// SetPower sets the heat injected into a node in Watts for subsequent steps.
func (n *Network) SetPower(id NodeID, w float64) error {
	if err := n.checkNode(id); err != nil {
		return err
	}
	n.nodes[id].powerIn = w
	return nil
}

// Temp returns a node's current temperature.
func (n *Network) Temp(id NodeID) float64 { return n.nodes[id].temp }

// SetTemp forces a node temperature (used to start experiments from the
// paper's mandated cold state).
func (n *Network) SetTemp(id NodeID, temp float64) error {
	if err := n.checkNode(id); err != nil {
		return err
	}
	n.nodes[id].temp = temp
	return nil
}

// NumNodes returns the number of capacitive nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// derivative computes dT/dt for every node.
func (n *Network) derivative(_ float64, y []float64, dydt []float64) {
	for i := range dydt {
		dydt[i] = n.nodes[i].powerIn
	}
	for _, l := range n.links {
		ta := y[l.a]
		var tb float64
		if l.toBoundary {
			tb = n.boundaries[l.bBound].temp
		} else {
			tb = y[l.b]
		}
		q := l.g * (tb - ta) // W flowing into a
		dydt[l.a] += q
		if !l.toBoundary {
			dydt[l.b] -= q
		}
	}
	for i := range dydt {
		dydt[i] /= n.nodes[i].capac
	}
}

// Step advances the whole network by dt seconds, subdividing into intervals
// of at most maxStep for integration accuracy.
func (n *Network) Step(dt float64) {
	if dt <= 0 || len(n.nodes) == 0 {
		return
	}
	if n.state == nil || len(n.state) != len(n.nodes) {
		n.state = make([]float64, len(n.nodes))
		n.scratch = mathx.NewScratch(len(n.nodes))
	}
	for i := range n.nodes {
		n.state[i] = n.nodes[i].temp
	}
	remaining := dt
	t := 0.0
	for remaining > 1e-12 {
		h := n.maxStep
		if remaining < h {
			h = remaining
		}
		mathx.RK4Step(n.derivative, t, n.state, h, n.scratch)
		t += h
		remaining -= h
	}
	for i := range n.nodes {
		n.nodes[i].temp = n.state[i]
	}
}

// SteadyState solves for the equilibrium temperatures with the current
// powers, conductances and boundary temperatures by solving the linear heat
// balance G·T = P + G_b·T_b. It does not modify the network state.
func (n *Network) SteadyState() ([]float64, error) {
	m := len(n.nodes)
	if m == 0 {
		return nil, nil
	}
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
		b[i] = n.nodes[i].powerIn
	}
	for _, l := range n.links {
		if l.toBoundary {
			a[l.a][l.a] += l.g
			b[l.a] += l.g * n.boundaries[l.bBound].temp
		} else {
			a[l.a][l.a] += l.g
			a[l.a][l.b] -= l.g
			a[l.b][l.b] += l.g
			a[l.b][l.a] -= l.g
		}
	}
	return mathx.SolveLinear(a, b)
}

// Settle assigns the steady-state solution to the node temperatures. It is
// used to initialize experiments in thermal equilibrium.
func (n *Network) Settle() error {
	t, err := n.SteadyState()
	if err != nil {
		return err
	}
	for i := range n.nodes {
		n.nodes[i].temp = t[i]
	}
	return nil
}
