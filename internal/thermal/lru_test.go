package thermal

import (
	"math"
	"testing"
)

// twoNodeNet builds the standard two-node test network used by the LRU
// tests and returns it with its links.
func twoNodeNet(t *testing.T) (*Network, []LinkID) {
	t.Helper()
	n := NewNetwork(0.01)
	a, _ := n.AddNode("a", 30, 50)
	b, _ := n.AddNode("b", 200, 30)
	amb := n.AddBoundary("amb", 24)
	l0, err := n.ConnectNodes(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := n.ConnectBoundary(b, amb, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	_ = n.SetPower(a, 80)
	return n, []LinkID{l0, l1}
}

// TestPropagatorLRUAlternatingDt is the cache contract the ROADMAP open
// item asked for: alternating between two step sizes must build each
// propagator exactly once, not rebuild on every switch.
func TestPropagatorLRUAlternatingDt(t *testing.T) {
	n, _ := twoNodeNet(t)
	for i := 0; i < 50; i++ {
		n.Step(1)
		n.Step(5)
	}
	if n.propBuilds != 2 {
		t.Fatalf("alternating dt built %d propagators, want 2", n.propBuilds)
	}
}

// TestPropagatorLRUAlternatingConductance covers the rack/holdoff scenario:
// fans toggling between two speeds alternate the sink conductance, and each
// (conductance-set, h) pair must be built exactly once.
func TestPropagatorLRUAlternatingConductance(t *testing.T) {
	n, links := twoNodeNet(t)
	for i := 0; i < 50; i++ {
		g := 0.8
		if i%2 == 1 {
			g = 1.4
		}
		if err := n.SetConductance(links[1], g); err != nil {
			t.Fatal(err)
		}
		n.Step(1)
	}
	if n.propBuilds != 2 {
		t.Fatalf("alternating conductance built %d propagators, want 2", n.propBuilds)
	}
}

// TestPropagatorLRUEviction: a working set larger than the cache must evict
// and rebuild, but still produce temperatures identical to a fresh network
// stepped through the same schedule (cached entries are bit-identical to
// freshly built ones).
func TestPropagatorLRUEviction(t *testing.T) {
	run := func(rounds int) (*Network, float64) {
		n, links := twoNodeNet(t)
		for r := 0; r < rounds; r++ {
			for k := 0; k < propCacheSize+3; k++ {
				if err := n.SetConductance(links[1], 0.5+0.1*float64(k)); err != nil {
					t.Fatal(err)
				}
				n.Step(1)
			}
		}
		return n, n.Temp(0)
	}
	nOnce, tOnce := run(1)
	nTwice, tTwice := run(2)
	if len(nOnce.props) != propCacheSize || len(nTwice.props) != propCacheSize {
		t.Fatalf("cache sizes %d/%d, want %d", len(nOnce.props), len(nTwice.props), propCacheSize)
	}
	// Round-robin over a working set one larger than the cache defeats an
	// LRU entirely, so every step of every round rebuilds.
	if want := 2 * (propCacheSize + 3); nTwice.propBuilds != want {
		t.Fatalf("eviction rounds built %d propagators, want %d", nTwice.propBuilds, want)
	}
	if math.IsNaN(tOnce) || math.IsNaN(tTwice) {
		t.Fatal("NaN temperature after eviction churn")
	}
}

// TestPropagatorLRUTopologyChangeInvalidates: adding a node must drop all
// cached entries, since the conductance-vector key is only meaningful for a
// fixed topology.
func TestPropagatorLRUTopologyChangeInvalidates(t *testing.T) {
	n, _ := twoNodeNet(t)
	n.Step(1)
	n.Step(5)
	if len(n.props) != 2 {
		t.Fatalf("expected 2 cached entries, got %d", len(n.props))
	}
	c, err := n.AddNode("c", 50, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.props) != 0 {
		t.Fatalf("AddNode left %d cached entries, want 0", len(n.props))
	}
	if _, err := n.ConnectNodes(NodeID(0), c, 1.2); err != nil {
		t.Fatal(err)
	}
	n.Step(1)
	if len(n.props) != 1 {
		t.Fatalf("expected 1 rebuilt entry, got %d", len(n.props))
	}
}

// TestPropagatorLRUMatchesRK4UnderChurn pins the LRU path to RK4 ground
// truth while both dt and conductances alternate — the exact scenario the
// single-slot cache used to thrash on.
func TestPropagatorLRUMatchesRK4UnderChurn(t *testing.T) {
	exact, elinks := twoNodeNet(t)
	ref, rlinks := twoNodeNet(t)
	ref.SetIntegrator(IntegratorRK4)
	dts := []float64{1, 5, 1, 2, 5, 1}
	for i := 0; i < 60; i++ {
		g := 0.8 + 0.3*float64(i%3)
		if err := exact.SetConductance(elinks[1], g); err != nil {
			t.Fatal(err)
		}
		if err := ref.SetConductance(rlinks[1], g); err != nil {
			t.Fatal(err)
		}
		dt := dts[i%len(dts)]
		exact.Step(dt)
		ref.Step(dt)
		for id := NodeID(0); id < 2; id++ {
			if diff := math.Abs(exact.Temp(id) - ref.Temp(id)); diff > 1e-6 {
				t.Fatalf("step %d node %d: |Δ|=%.3g", i, id, diff)
			}
		}
	}
	// The g cycle (period 3) and dt cycle (period 6) produce 4 distinct
	// (conductance-set, h) keys; each must be built exactly once across all
	// 60 steps — the single-slot cache rebuilt on every switch.
	if exact.propBuilds != 4 {
		t.Fatalf("churn built %d propagators, want 4", exact.propBuilds)
	}
}
