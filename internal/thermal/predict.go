package thermal

// This file is the read-only companion of macro.go: the same linearized
// per-step affine map, iterated forward from a caller-supplied anchor to
// *predict* the fixed-dt trajectory without touching node state. It is what
// lets a controller promise "no threshold crossing before t" (the bang-bang
// quiet band, internal/server.BandDecisionHorizon) — the prediction runs on
// the identical M = Ad + Phi·C⁻¹·S map the simulation itself will apply, so
// the only divergence from the eventual reference path is the leakage
// curvature over the drift-capped excursion, exactly macro.go's error
// budget.

// PredictLinearized iterates the linearized one-step map up to maxSteps
// times starting from the caller's anchor, without mutating any node
// state. temps holds the anchor temperatures on entry (len NumNodes) and
// is overwritten with the temperatures actually reached; powers must be
// the true injected node powers at the anchor temperatures and slopes the
// per-node dP/dT feedback there (both as StepLinearizedN documents).
// Boundary temperatures and link conductances are read from the network's
// current (synced) state — they are window-constant between scheduling
// events, which is the only regime this is called in.
//
// The walk stops early when the next step would move any node more than
// driftCap from the anchor — the caller re-anchors with fresh powers and
// slopes, mirroring the macro ladder's drift-capped re-linearization — and
// returns the number of steps advanced (0 when the very first step
// breaches the cap, the integrator is not exact, or the propagator cannot
// be built; temps is then unchanged).
func (n *Network) PredictLinearized(dt float64, maxSteps int, temps, powers, slopes []float64, driftCap float64) int {
	m := len(n.nodes)
	if dt <= 0 || m == 0 || maxSteps < 1 || n.integrator != IntegratorExact {
		return 0
	}
	if len(temps) != m || len(powers) != m || len(slopes) != m || driftCap <= 0 {
		return 0
	}
	p := n.lookupPropagator(dt)
	if p == nil {
		p = n.buildPropagator(dt)
	}
	if p.failed {
		return 0
	}
	// Reuse the macro scratch: predictions and macro steps never interleave
	// mid-call (both run to completion on the goroutine stepping this
	// network) and neither keeps scratch state across calls.
	s := &n.macro
	s.size(m)

	// One-step map M = Ad + Phi·C⁻¹·S and affine term
	// c = Phi·C⁻¹·(P − S·T₀ + Σ g_b·T_b), assembled exactly as
	// StepLinearizedN assembles them — anchored at the caller's temps and
	// powers instead of the live node state.
	for j := 0; j < m; j++ {
		s.vtmp[j] = slopes[j] / n.nodes[j].capac
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			s.step[i*m+j] = p.ad[i*m+j] + p.phi[i*m+j]*s.vtmp[j]
		}
	}
	for i := 0; i < m; i++ {
		s.t0[i] = temps[i]
		s.tn[i] = powers[i] - slopes[i]*temps[i]
	}
	for _, l := range n.links {
		if l.toBoundary {
			s.tn[l.a] += l.g * n.boundaries[l.bBound].temp
		}
	}
	for i := range s.tn {
		s.tn[i] /= n.nodes[i].capac
	}
	matVecInto(s.c, p.phi, s.tn, m)

	copy(s.tn, s.t0)
	steps := 0
	for steps < maxSteps {
		matVecInto(s.tc, s.step, s.tn, m)
		ok := true
		for i := 0; i < m; i++ {
			s.tc[i] += s.c[i]
			d := s.tc[i] - s.t0[i]
			if d < 0 {
				d = -d
			}
			if !(d <= driftCap) { // NaN-safe: divergence fails the cap
				ok = false
			}
		}
		if !ok {
			break
		}
		copy(s.tn, s.tc)
		steps++
	}
	if steps > 0 {
		copy(temps, s.tn)
	}
	return steps
}
