package thermal

// PropagatorStats are the network's lifetime cache-and-ladder counters,
// fed into the run-metrics registry (internal/obs) by rack.MetricsInto.
// They are plain ints bumped from the single goroutine that steps the
// network, so reading them is only safe after the stepping fan-out's
// barrier.
type PropagatorStats struct {
	// Hits counts lookupPropagator successes — fast generation-stamp
	// matches plus slow float-walk re-stamps.
	Hits int
	// Misses counts lookup failures; every miss triggers a build.
	Misses int
	// Builds is the lifetime propagator build count (rebuilds included).
	Builds int
	// DriftStops counts macro doubling ladders cut short by the drift cap
	// rather than the window bound — each one forces the caller to
	// re-anchor its linearization sooner than the event kernel asked for.
	DriftStops int
}

// PropagatorStats returns the lifetime counters. Unlike ResetAccounting's
// energy rails these are never reset: they describe the run's whole cache
// behaviour, stabilization included.
func (n *Network) PropagatorStats() PropagatorStats {
	return PropagatorStats{
		Hits:       n.propHits,
		Misses:     n.propMisses,
		Builds:     n.propBuilds,
		DriftStops: n.driftStops,
	}
}
