package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

// buildRC returns a single node connected to a boundary: the canonical
// first-order RC with time constant R·C.
func buildRC(t *testing.T, c, r, tAmb, t0 float64) (*Network, NodeID) {
	t.Helper()
	n := NewNetwork(0.5)
	id, err := n.AddNode("die", c, t0)
	if err != nil {
		t.Fatal(err)
	}
	amb := n.AddBoundary("ambient", tAmb)
	if _, err := n.ConnectBoundary(id, amb, 1/r); err != nil {
		t.Fatal(err)
	}
	return n, id
}

func TestRCStepResponse(t *testing.T) {
	// T(t) = Tamb + (T0-Tamb)·e^{-t/RC}; with R=2, C=10 → τ=20 s.
	n, id := buildRC(t, 10, 2, 25, 85)
	n.Step(20) // one time constant
	want := 25 + 60*math.Exp(-1)
	if got := n.Temp(id); math.Abs(got-want) > 0.01 {
		t.Fatalf("after 1τ: %g, want %g", got, want)
	}
}

func TestRCHeating(t *testing.T) {
	// Power P into the node settles at Tamb + P·R.
	n, id := buildRC(t, 10, 2, 25, 25)
	if err := n.SetPower(id, 30); err != nil {
		t.Fatal(err)
	}
	n.Step(500) // 25 time constants
	want := 25.0 + 30*2
	if got := n.Temp(id); math.Abs(got-want) > 0.01 {
		t.Fatalf("steady heating: %g, want %g", got, want)
	}
}

func TestSteadyStateMatchesLongIntegration(t *testing.T) {
	n, id := buildRC(t, 10, 2, 25, 60)
	if err := n.SetPower(id, 17); err != nil {
		t.Fatal(err)
	}
	ss, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	n.Step(1000)
	if math.Abs(ss[0]-n.Temp(id)) > 0.01 {
		t.Fatalf("steady state %g vs integrated %g", ss[0], n.Temp(id))
	}
}

func TestTwoNodeChain(t *testing.T) {
	// die --R1-- sink --R2-- ambient. Steady: Tsink = Tamb + P·R2,
	// Tdie = Tsink + P·R1.
	n := NewNetwork(0.5)
	die, _ := n.AddNode("die", 33, 24)
	sink, _ := n.AddNode("sink", 230, 24)
	amb := n.AddBoundary("amb", 24)
	if _, err := n.ConnectNodes(die, sink, 1/0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := n.ConnectBoundary(sink, amb, 1/0.8); err != nil {
		t.Fatal(err)
	}
	if err := n.SetPower(die, 40); err != nil {
		t.Fatal(err)
	}
	ss, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	wantSink := 24 + 40*0.8
	wantDie := wantSink + 40*0.3
	if math.Abs(ss[0]-wantDie) > 1e-9 || math.Abs(ss[1]-wantSink) > 1e-9 {
		t.Fatalf("steady = %v, want die %g sink %g", ss, wantDie, wantSink)
	}
	// Long integration converges to the same values.
	n.Step(5000)
	if math.Abs(n.Temp(die)-wantDie) > 0.05 || math.Abs(n.Temp(sink)-wantSink) > 0.05 {
		t.Fatalf("integrated = %g/%g", n.Temp(die), n.Temp(sink))
	}
}

func TestFastAndSlowTimeConstants(t *testing.T) {
	// The paper's Fig 1(b): a power step produces a fast die jump within
	// 30 s and a much slower tail. Verify the two-node model shows a
	// distinctly faster initial response on the die than on the sink.
	n := NewNetwork(0.5)
	die, _ := n.AddNode("die", 33, 24)
	sink, _ := n.AddNode("sink", 230, 24)
	amb := n.AddBoundary("amb", 24)
	_, _ = n.ConnectNodes(die, sink, 1/0.3)
	_, _ = n.ConnectBoundary(sink, amb, 1/0.8)
	_ = n.SetPower(die, 22)

	n.Step(30)
	dieRise30 := n.Temp(die) - 24
	sinkRise30 := n.Temp(sink) - 24
	if dieRise30 < 4 || dieRise30 > 9 {
		t.Fatalf("die rise after 30s = %g, want the paper's 5-8°C fast jump", dieRise30)
	}
	if sinkRise30 > dieRise30/2 {
		t.Fatalf("sink rise %g should lag die rise %g", sinkRise30, dieRise30)
	}
}

func TestSetConductanceChangesEquilibrium(t *testing.T) {
	n := NewNetwork(0.5)
	id, _ := n.AddNode("n", 10, 25)
	amb := n.AddBoundary("amb", 25)
	l, err := n.ConnectBoundary(id, amb, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	_ = n.SetPower(id, 10)
	ss1, _ := n.SteadyState()
	if err := n.SetConductance(l, 2.0); err != nil {
		t.Fatal(err)
	}
	ss2, _ := n.SteadyState()
	if !(ss2[0] < ss1[0]) {
		t.Fatalf("more conductance should cool: %g vs %g", ss2[0], ss1[0])
	}
	if math.Abs(ss1[0]-35) > 1e-9 || math.Abs(ss2[0]-30) > 1e-9 {
		t.Fatalf("equilibria %g/%g, want 35/30", ss1[0], ss2[0])
	}
}

func TestBoundaryTempShift(t *testing.T) {
	n, id := buildRC(t, 5, 1, 20, 20)
	ss, _ := n.SteadyState()
	if ss[0] != 20 {
		t.Fatalf("no-power steady = %g", ss[0])
	}
	// Hotter inlet shifts equilibrium up by the same amount.
	bID := BoundaryID(0)
	if err := n.SetBoundaryTemp(bID, 30); err != nil {
		t.Fatal(err)
	}
	ss, _ = n.SteadyState()
	if ss[0] != 30 {
		t.Fatalf("shifted steady = %g", ss[0])
	}
	_ = id
}

func TestErrorPaths(t *testing.T) {
	n := NewNetwork(1)
	if _, err := n.AddNode("bad", 0, 20); err == nil {
		t.Error("zero capacitance should error")
	}
	if _, err := n.AddNode("bad", -1, 20); err == nil {
		t.Error("negative capacitance should error")
	}
	id, _ := n.AddNode("ok", 1, 20)
	if _, err := n.ConnectNodes(id, NodeID(99), 1); err == nil {
		t.Error("unknown node should error")
	}
	if _, err := n.ConnectBoundary(id, BoundaryID(0), 1); err == nil {
		t.Error("unknown boundary should error")
	}
	amb := n.AddBoundary("amb", 20)
	if _, err := n.ConnectBoundary(id, amb, -1); err == nil {
		t.Error("negative conductance should error")
	}
	if err := n.SetConductance(LinkID(42), 1); err == nil {
		t.Error("unknown link should error")
	}
	if err := n.SetPower(NodeID(42), 1); err == nil {
		t.Error("unknown node power should error")
	}
	if err := n.SetBoundaryTemp(BoundaryID(42), 1); err == nil {
		t.Error("unknown boundary temp should error")
	}
	if err := n.SetTemp(NodeID(42), 1); err == nil {
		t.Error("unknown node SetTemp should error")
	}
}

func TestStepNoopOnEmptyOrZeroDt(t *testing.T) {
	n := NewNetwork(1)
	n.Step(10) // no nodes: must not panic
	id, _ := n.AddNode("n", 1, 33)
	n.Step(0)
	n.Step(-5)
	if n.Temp(id) != 33 {
		t.Fatal("zero/negative dt changed state")
	}
}

func TestSettle(t *testing.T) {
	n, id := buildRC(t, 10, 2, 25, 99)
	_ = n.SetPower(id, 5)
	if err := n.Settle(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.Temp(id)-35) > 1e-9 {
		t.Fatalf("settled temp = %g, want 35", n.Temp(id))
	}
}

func TestEnergyConservationProperty(t *testing.T) {
	// With no power input, temperatures must relax monotonically toward the
	// boundary from any initial condition (no oscillation, no divergence).
	f := func(rawT0 float64) bool {
		t0 := math.Mod(math.Abs(rawT0), 200) // keep in a physical range
		n := NewNetwork(0.5)
		id, err := n.AddNode("n", 10, t0)
		if err != nil {
			return false
		}
		amb := n.AddBoundary("amb", 25)
		if _, err := n.ConnectBoundary(id, amb, 0.5); err != nil {
			return false
		}
		prevDist := math.Abs(n.Temp(id) - 25)
		for i := 0; i < 20; i++ {
			n.Step(5)
			dist := math.Abs(n.Temp(id) - 25)
			if dist > prevDist+1e-9 {
				return false
			}
			prevDist = dist
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNumNodes(t *testing.T) {
	n := NewNetwork(1)
	if n.NumNodes() != 0 {
		t.Fatal("empty network has nodes")
	}
	_, _ = n.AddNode("a", 1, 0)
	_, _ = n.AddNode("b", 1, 0)
	if n.NumNodes() != 2 {
		t.Fatal("wrong node count")
	}
}
