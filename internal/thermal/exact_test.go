package thermal

import (
	"math"
	"math/rand"
	"testing"
)

// netParams is one random network drawn up front, so the exact and RK4
// ground-truth copies are built from identical values.
type netParams struct {
	capac, initial []float64 // per node
	chainG         []float64 // node i-1 → i conductances
	boundaryG      float64   // node 0 → ambient
	power          []float64 // per node
}

func drawNetParams(rng *rand.Rand) netParams {
	m := 1 + rng.Intn(6)
	p := netParams{boundaryG: 0.2 + 2*rng.Float64()}
	for i := 0; i < m; i++ {
		p.capac = append(p.capac, 5+95*rng.Float64())
		p.initial = append(p.initial, 20+40*rng.Float64())
		p.power = append(p.power, 50*rng.Float64())
	}
	for i := 1; i < m; i++ {
		p.chainG = append(p.chainG, 0.5+3*rng.Float64())
	}
	return p
}

// build constructs the network: a connected chain of capacitive nodes with
// one boundary link, heated per node. maxStep only matters on the RK4 path.
func (p netParams) build(t *testing.T, maxStep float64, integ Integrator) (*Network, []NodeID, []LinkID) {
	t.Helper()
	n := NewNetwork(maxStep)
	n.SetIntegrator(integ)
	var ids []NodeID
	var lids []LinkID
	for i := range p.capac {
		id, err := n.AddNode("n", p.capac[i], p.initial[i])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	amb := n.AddBoundary("amb", 24)
	for i, g := range p.chainG {
		lid, err := n.ConnectNodes(ids[i], ids[i+1], g)
		if err != nil {
			t.Fatal(err)
		}
		lids = append(lids, lid)
	}
	lid, err := n.ConnectBoundary(ids[0], amb, p.boundaryG)
	if err != nil {
		t.Fatal(err)
	}
	lids = append(lids, lid)
	for i := range ids {
		if err := n.SetPower(ids[i], p.power[i]); err != nil {
			t.Fatal(err)
		}
	}
	return n, ids, lids
}

// randomNetworkPair builds two identical random RC networks: one on the
// exact propagator path, one on fine-substep RK4 as ground truth.
func randomNetworkPair(t *testing.T, rng *rand.Rand) (exact, ref *Network, nodes []NodeID, links []LinkID) {
	p := drawNetParams(rng)
	exact, nodes, links = p.build(t, 0.01, IntegratorExact)
	ref, _, _ = p.build(t, 0.01, IntegratorRK4)
	return exact, ref, nodes, links
}

// TestExactMatchesRK4Property is the fast path's correctness contract:
// across random networks, powers and mid-run conductance/boundary/power
// changes, the exact propagator must track fine-substep RK4 within 1e-6 °C
// per step.
func TestExactMatchesRK4Property(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		exact, ref, nodes, links := randomNetworkPair(t, rng)

		mutRng := rand.New(rand.NewSource(int64(1000 + trial)))
		const steps = 40
		dt := 1.0
		for s := 0; s < steps; s++ {
			// Occasionally mutate inputs, applying the identical mutation to
			// both networks: conductance (invalidates the exact cache),
			// boundary temperature and power (must not need invalidation).
			if mutRng.Float64() < 0.2 {
				li := links[mutRng.Intn(len(links))]
				g := 0.1 + 3*mutRng.Float64()
				if err := exact.SetConductance(li, g); err != nil {
					t.Fatal(err)
				}
				if err := ref.SetConductance(li, g); err != nil {
					t.Fatal(err)
				}
			}
			if mutRng.Float64() < 0.3 {
				ni := nodes[mutRng.Intn(len(nodes))]
				p := 100 * mutRng.Float64()
				_ = exact.SetPower(ni, p)
				_ = ref.SetPower(ni, p)
			}
			if mutRng.Float64() < 0.2 {
				tb := 20 + 20*mutRng.Float64()
				_ = exact.SetBoundaryTemp(BoundaryID(0), tb)
				_ = ref.SetBoundaryTemp(BoundaryID(0), tb)
			}
			exact.Step(dt)
			ref.Step(dt)
			for _, id := range nodes {
				diff := math.Abs(exact.Temp(id) - ref.Temp(id))
				if diff > 1e-6 {
					t.Fatalf("trial %d step %d node %d: exact %.9f vs RK4 %.9f (|Δ|=%.3g)",
						trial, s, id, exact.Temp(id), ref.Temp(id), diff)
				}
				if math.IsNaN(exact.Temp(id)) {
					t.Fatalf("trial %d step %d: NaN temperature", trial, s)
				}
			}
		}
	}
}

// TestExactHandlesVaryingDt exercises propagator rebuilds on step-size
// changes, which thrash the cache but must stay correct.
func TestExactHandlesVaryingDt(t *testing.T) {
	exact := NewNetwork(0.01)
	ref := NewNetwork(0.01)
	ref.SetIntegrator(IntegratorRK4)
	for _, n := range []*Network{exact, ref} {
		a, _ := n.AddNode("a", 30, 50)
		b, _ := n.AddNode("b", 200, 30)
		amb := n.AddBoundary("amb", 24)
		if _, err := n.ConnectNodes(a, b, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := n.ConnectBoundary(b, amb, 0.8); err != nil {
			t.Fatal(err)
		}
		_ = n.SetPower(a, 80)
	}
	for i, dt := range []float64{1, 0.5, 2, 1, 1, 7.3, 0.25, 1} {
		exact.Step(dt)
		ref.Step(dt)
		for id := NodeID(0); id < 2; id++ {
			if diff := math.Abs(exact.Temp(id) - ref.Temp(id)); diff > 1e-6 {
				t.Fatalf("step %d (dt=%g) node %d: |Δ|=%.3g", i, dt, id, diff)
			}
		}
	}
}

// TestExactSteadyStateAgreement: after long integration under constant
// inputs the exact path must land on the analytic steady state.
func TestExactSteadyStateAgreement(t *testing.T) {
	n := NewNetwork(1)
	a, _ := n.AddNode("a", 30, 24)
	b, _ := n.AddNode("b", 200, 24)
	amb := n.AddBoundary("amb", 24)
	if _, err := n.ConnectNodes(a, b, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := n.ConnectBoundary(b, amb, 0.8); err != nil {
		t.Fatal(err)
	}
	_ = n.SetPower(a, 60)
	want, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		n.Step(60)
	}
	for id := NodeID(0); id < 2; id++ {
		if diff := math.Abs(n.Temp(id) - want[id]); diff > 1e-6 {
			t.Fatalf("node %d: integrated %.9f vs analytic %.9f", id, n.Temp(id), want[id])
		}
	}
}

// TestRK4StepSubdivisionIsExactCount guards the drift fix: stepping dt in
// one call must equal stepping it as repeated maxStep-sized calls when dt
// is an integer multiple of maxStep, because both paths now take identical
// substep sequences.
func TestRK4StepSubdivisionIsExactCount(t *testing.T) {
	build := func() *Network {
		n := NewNetwork(1)
		n.SetIntegrator(IntegratorRK4)
		a, _ := n.AddNode("a", 30, 70)
		amb := n.AddBoundary("amb", 24)
		if _, err := n.ConnectBoundary(a, amb, 0.8); err != nil {
			t.Fatal(err)
		}
		_ = n.SetPower(a, 40)
		return n
	}
	one := build()
	many := build()
	one.Step(10)
	for i := 0; i < 10; i++ {
		many.Step(1)
	}
	if one.Temp(0) != many.Temp(0) {
		t.Fatalf("Step(10) = %.17g but 10×Step(1) = %.17g; substep subdivision drifted",
			one.Temp(0), many.Temp(0))
	}
}

// TestIntegratorSelection checks the plumbing and the default.
func TestIntegratorSelection(t *testing.T) {
	n := NewNetwork(1)
	if n.IntegratorInUse() != IntegratorExact {
		t.Fatal("exact integrator must be the default")
	}
	n.SetIntegrator(IntegratorRK4)
	if n.IntegratorInUse() != IntegratorRK4 {
		t.Fatal("SetIntegrator did not switch")
	}
}
