package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		seen := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	ForEach(50, workers, func(int) {
		if v := inFlight.Add(1); v > peak.Load() {
			peak.Store(v)
		}
		runtime.Gosched()
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, limit %d", p, workers)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3", got)
	}
	if got := Workers(2, 0); got != 1 {
		t.Fatalf("Workers(2, 0) = %d, want 1", got)
	}
}
