package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		seen := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	ForEach(50, workers, func(int) {
		if v := inFlight.Add(1); v > peak.Load() {
			peak.Store(v)
		}
		runtime.Gosched()
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, limit %d", p, workers)
	}
}

// TestForEachPanicContainment exercises the per-job recover path under
// every worker shape (run with -race in CI): one deliberately panicking job
// must not stop the others, all slots must still run, and the repanic must
// arrive as a *JobPanic carrying the offending slot.
func TestForEachPanicContainment(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n, bad = 64, 17
		seen := make([]int32, n)
		var got *JobPanic
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: expected repanic", workers)
				}
				p, ok := v.(*JobPanic)
				if !ok {
					t.Fatalf("workers=%d: repanicked with %T, want *JobPanic", workers, v)
				}
				got = p
			}()
			ForEach(n, workers, func(i int) {
				atomic.AddInt32(&seen[i], 1)
				if i == bad {
					panic("boom")
				}
			})
		}()
		if got.Slot != bad || got.Value != "boom" {
			t.Fatalf("workers=%d: JobPanic{Slot:%d, Value:%v}, want slot %d value boom",
				workers, got.Slot, got.Value, bad)
		}
		if len(got.Stack) == 0 {
			t.Fatalf("workers=%d: JobPanic carries no stack", workers)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: slot %d ran %d times after panic in slot %d", workers, i, c, bad)
			}
		}
	}
}

// TestForEachFirstPanicWinsSerial pins the serial-path determinism: with
// several panicking slots and workers=1, the lowest slot is reported.
func TestForEachFirstPanicWinsSerial(t *testing.T) {
	defer func() {
		p, ok := recover().(*JobPanic)
		if !ok || p.Slot != 3 {
			t.Fatalf("recovered %v, want *JobPanic with slot 3", p)
		}
	}()
	ForEach(10, 1, func(i int) {
		if i >= 3 {
			panic(i)
		}
	})
}

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3", got)
	}
	if got := Workers(2, 0); got != 1 {
		t.Fatalf("Workers(2, 0) = %d, want 1", got)
	}
}
