// Package par provides the bounded worker pool shared by every fan-out in
// the repository: the experiment harness, the LUT table builders, and the
// rack stepper.
//
// # The determinism contract
//
// Every fan-out in this codebase follows one rule:
//
//	job i writes only state owned by index i; every cross-index
//	reduction runs serially in index order after the fan-out barrier.
//
// Under this contract results are byte-identical to the serial order for
// any worker count and any goroutine schedule — there is no floating-point
// reassociation, no map iteration, no racing append. ForEach(n, 1, fn) is
// the serial reference path; race-enabled tests across the repository
// (internal/rack, internal/experiments) assert that workers=N reproduces
// workers=1 bitwise.
//
// Callers that need a reduction (energy sums, peak power, temperature
// maxima) must collect per-index results into a pre-sized slice inside the
// fan-out and fold them in a plain loop afterwards; they must not share
// accumulators across jobs.
package par
