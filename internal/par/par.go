package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: n ≤ 0 means GOMAXPROCS, and
// the result never exceeds the number of jobs.
func Workers(n, jobs int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// JobPanic is the value ForEach repanics with when a job panics: the
// original panic value annotated with the slot index that raised it and the
// stack captured at the recovery point. Callers running untrusted policy or
// controller code can recover it one level up and attribute the failure to
// a specific slot instead of losing the whole process with no attribution.
type JobPanic struct {
	Slot  int
	Value any
	Stack []byte
}

// Error makes a JobPanic usable as an error after recovery.
func (p *JobPanic) Error() string {
	return fmt.Sprintf("par: job %d panicked: %v", p.Slot, p.Value)
}

func (p *JobPanic) String() string { return p.Error() }

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns when all calls have completed. With workers ≤ 1 it
// degenerates to a plain serial loop on the calling goroutine — the
// reference path parallel runs are tested against.
//
// A panicking job does not take down its worker: the panic is recovered,
// every remaining job still runs, all workers drain, and ForEach then
// repanics on the calling goroutine with a *JobPanic carrying the slot
// index. When several jobs panic the first one recorded wins; on the serial
// path that is deterministically the lowest panicking slot.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// Rack.Step leans on this path staying allocation-free, so the
		// panic capture uses a named helper and a plain pointer instead
		// of a closure over an atomic slot.
		var first *JobPanic
		for i := 0; i < n; i++ {
			serialRun(fn, i, &first)
		}
		if first != nil {
			panic(first)
		}
		return
	}
	var first atomic.Pointer[JobPanic]
	run := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				first.CompareAndSwap(nil, &JobPanic{Slot: i, Value: v, Stack: debug.Stack()})
			}
		}()
		fn(i)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	if p := first.Load(); p != nil {
		panic(p)
	}
}

// serialRun executes fn(i) with panic capture, recording the first
// panicking slot. A named function rather than a closure: the workers==1
// path must not touch the heap outside the panic case.
func serialRun(fn func(int), i int, first **JobPanic) {
	defer func() {
		if v := recover(); v != nil && *first == nil {
			*first = &JobPanic{Slot: i, Value: v, Stack: debug.Stack()}
		}
	}()
	fn(i)
}
