package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: n ≤ 0 means GOMAXPROCS, and
// the result never exceeds the number of jobs.
func Workers(n, jobs int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns when all calls have completed. With workers ≤ 1 it
// degenerates to a plain serial loop on the calling goroutine — the
// reference path parallel runs are tested against.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
