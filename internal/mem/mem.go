// Package mem models the 32-DIMM memory subsystem of the simulated server.
//
// The paper's airflow path matters: cold air crosses the DIMMs before it
// reaches the CPUs, so memory power both heats the DIMMs and preheats the
// CPU inlet air. Each DIMM temperature follows a first-order lag toward an
// airflow-dependent equilibrium; the bank also reports the inlet-air
// preheat the server model applies to the CPU boundary.
package mem

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Config parameterizes the DIMM bank.
type Config struct {
	NumDIMMs   int     // paper: 32 × 8 GB
	IdlePower  float64 // W for the whole bank at zero utilization
	DynPerUtil float64 // W per percentage point of utilization (whole bank)
	// RBase and RFlow define the per-DIMM thermal resistance
	// R(RPM) = RBase + RFlow/RPM (°C/W).
	RBase, RFlow float64
	TimeConstant float64 // s, first-order DIMM lag
	// SpreadFactor staggers equilibrium temps along the airflow direction:
	// downstream DIMMs sit in slightly warmer air.
	SpreadFactor float64
	// CouplingFrac is the fraction of DIMM heat that ends up preheating the
	// CPU inlet air.
	CouplingFrac float64
	// AirflowPerRPM converts fan speed to air mass flow (g/s per RPM).
	AirflowPerRPM float64
	AirCp         float64 // J/(g·°C), specific heat of air
}

// Validate reports configuration errors. NewBank and every stateless
// steady-state query (server.SteadyTemp) go through it, so an invalid
// airflow model fails loudly instead of silently saturating the preheat.
func (c Config) Validate() error {
	if c.NumDIMMs <= 0 {
		return fmt.Errorf("mem: need at least one DIMM, got %d", c.NumDIMMs)
	}
	if c.TimeConstant <= 0 {
		return fmt.Errorf("mem: time constant must be positive, got %g", c.TimeConstant)
	}
	if c.AirflowPerRPM <= 0 || c.AirCp <= 0 {
		return fmt.Errorf("mem: airflow parameters must be positive")
	}
	return nil
}

// Power returns the whole-bank memory power at utilization u. It depends
// only on the configuration, so steady-state predictors can evaluate it
// without instantiating a Bank.
func (c Config) Power(u units.Percent) units.Watts {
	return units.Watts(c.IdlePower + c.DynPerUtil*float64(u.Clamp()))
}

// Airflow returns the air mass flow at the given fan speed.
func (c Config) Airflow(r units.RPM) units.GramsPerSecond {
	v := float64(r)
	if v < 0 {
		v = 0
	}
	return units.GramsPerSecond(c.AirflowPerRPM * v)
}

// InletPreheat returns the temperature rise of the CPU inlet air caused by
// DIMM heat at utilization u and fan speed r. Like Power it is a pure
// function of the configuration: server.SteadyTemp and lut.Build call it
// directly instead of building a throwaway Bank per query.
func (c Config) InletPreheat(u units.Percent, r units.RPM) units.Celsius {
	flow := float64(c.Airflow(r))
	if flow <= 0 {
		// No airflow: cap the preheat at a large but finite value.
		return 15
	}
	dt := c.CouplingFrac * float64(c.Power(u)) / (c.AirCp * flow)
	if dt > 15 {
		dt = 15
	}
	return units.Celsius(dt)
}

// DefaultConfig returns the calibrated 32-DIMM bank.
func DefaultConfig() Config {
	return Config{
		NumDIMMs:     32,
		IdlePower:    40,
		DynPerUtil:   0.86,
		RBase:        2.0,
		RFlow:        6000,
		TimeConstant: 60,
		SpreadFactor: 0.15,
		// 0.4 of DIMM heat preheats the CPU inlet: calibrated so the
		// 1800 RPM / 100% utilization operating point settles at ~85 °C
		// (Fig. 1a anchor) instead of running away.
		CouplingFrac:  0.4,
		AirflowPerRPM: 0.012,
		AirCp:         1.005,
	}
}

// Bank is the runtime DIMM state.
type Bank struct {
	cfg   Config
	temps []float64

	// first-order lag coefficient cache: alpha = 1 - e^(-dt/τ) for the last
	// step size seen. Experiments step with a fixed dt, so this saves one
	// math.Exp per step.
	alphaDt  float64
	alphaVal float64

	// rowFrac[i] = i / NumDIMMs, the airflow position of DIMM i, hoisted
	// out of the per-step loop.
	rowFrac []float64

	// Memo of the last InletPreheat evaluation: the server asks for the
	// preheat at the same (utilization, fan speed) twice per step — once
	// for the CPU inlet boundary, once inside the DIMM equilibrium.
	phValid bool
	phU     units.Percent
	phR     units.RPM
	phVal   units.Celsius
}

// NewBank builds a bank in equilibrium with the given ambient temperature.
func NewBank(cfg Config, ambient units.Celsius) (*Bank, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &Bank{
		cfg:     cfg,
		temps:   make([]float64, cfg.NumDIMMs),
		rowFrac: make([]float64, cfg.NumDIMMs),
	}
	for i := range b.temps {
		b.temps[i] = float64(ambient)
		b.rowFrac[i] = float64(i) / float64(cfg.NumDIMMs-1+1)
	}
	return b, nil
}

// Power returns the whole-bank memory power at utilization u.
func (b *Bank) Power(u units.Percent) units.Watts { return b.cfg.Power(u) }

// Airflow returns the air mass flow at the given fan speed.
func (b *Bank) Airflow(r units.RPM) units.GramsPerSecond { return b.cfg.Airflow(r) }

// InletPreheat returns the temperature rise of the CPU inlet air caused by
// the DIMM bank heat at utilization u and fan speed r.
func (b *Bank) InletPreheat(u units.Percent, r units.RPM) units.Celsius {
	if b.phValid && u == b.phU && r == b.phR {
		return b.phVal
	}
	v := b.inletPreheat(u, r)
	b.phValid, b.phU, b.phR, b.phVal = true, u, r, v
	return v
}

func (b *Bank) inletPreheat(u units.Percent, r units.RPM) units.Celsius {
	return b.cfg.InletPreheat(u, r)
}

// eqTerms returns the parts of the per-DIMM equilibrium that do not depend
// on the DIMM index: the conductive rise above ambient and the inlet
// preheat scale. equilibrium(i) = ambient + preheat·SpreadFactor·row_i·2 +
// rth·perDIMM, and only row_i varies across the bank, so one evaluation
// serves all 32 DIMMs.
func (b *Bank) eqTerms(u units.Percent, r units.RPM) (rise, preheat float64) {
	perDIMM := float64(b.Power(u)) / float64(b.cfg.NumDIMMs)
	rpm := float64(r)
	if rpm < 1 {
		rpm = 1
	}
	rth := b.cfg.RBase + b.cfg.RFlow/rpm
	return rth * perDIMM, float64(b.InletPreheat(u, r))
}

// equilibrium returns the steady temperature of DIMM i.
func (b *Bank) equilibrium(i int, ambient units.Celsius, u units.Percent, r units.RPM) float64 {
	rise, preheat := b.eqTerms(u, r)
	return b.eqAt(i, ambient, rise, preheat)
}

// eqAt combines precomputed terms with the index-dependent airflow
// position: downstream DIMMs (higher index) see warmer air.
func (b *Bank) eqAt(i int, ambient units.Celsius, rise, preheat float64) float64 {
	return float64(ambient) + preheat*b.cfg.SpreadFactor*b.rowFrac[i]*2 + rise
}

// Step advances DIMM temperatures by dt seconds with first-order lag toward
// the current equilibrium for the given conditions. The shared equilibrium
// terms are hoisted out of the DIMM loop and the lag coefficient is cached
// per step size, so one step is ~N fused multiply-adds.
func (b *Bank) Step(dt float64, ambient units.Celsius, u units.Percent, r units.RPM) {
	if dt <= 0 {
		return
	}
	if dt != b.alphaDt {
		b.alphaDt = dt
		b.alphaVal = 1 - math.Exp(-dt/b.cfg.TimeConstant)
	}
	alpha := b.alphaVal
	rise, preheat := b.eqTerms(u, r)
	for i := range b.temps {
		eq := b.eqAt(i, ambient, rise, preheat)
		b.temps[i] += alpha * (eq - b.temps[i])
	}
}

// StepN advances DIMM temperatures by n consecutive Step(dt, …) calls with
// the conditions held constant, in closed form: n applications of the
// first-order lag T += α·(eq−T) compose to T = eq + (1−α)ⁿ·(T−eq), so one
// call stands in for the whole run — the memory half of a thermal
// macro-step. Identical to the n-fold loop up to float rounding (the lag is
// a pure geometric contraction toward a constant equilibrium).
func (b *Bank) StepN(dt float64, n int, ambient units.Celsius, u units.Percent, r units.RPM) {
	if dt <= 0 || n <= 0 {
		return
	}
	if n == 1 {
		b.Step(dt, ambient, u, r)
		return
	}
	if dt != b.alphaDt {
		b.alphaDt = dt
		b.alphaVal = 1 - math.Exp(-dt/b.cfg.TimeConstant)
	}
	shrink := math.Pow(1-b.alphaVal, float64(n))
	rise, preheat := b.eqTerms(u, r)
	for i := range b.temps {
		eq := b.eqAt(i, ambient, rise, preheat)
		b.temps[i] = eq + shrink*(b.temps[i]-eq)
	}
}

// Temp returns DIMM i's temperature.
func (b *Bank) Temp(i int) (units.Celsius, error) {
	if i < 0 || i >= len(b.temps) {
		return 0, fmt.Errorf("mem: DIMM %d out of range [0,%d)", i, len(b.temps))
	}
	return units.Celsius(b.temps[i]), nil
}

// Temps returns a copy of all DIMM temperatures.
func (b *Bank) Temps() []units.Celsius {
	out := make([]units.Celsius, len(b.temps))
	for i, v := range b.temps {
		out[i] = units.Celsius(v)
	}
	return out
}

// MaxTemp returns the hottest DIMM.
func (b *Bank) MaxTemp() units.Celsius {
	m := math.Inf(-1)
	for _, v := range b.temps {
		if v > m {
			m = v
		}
	}
	return units.Celsius(m)
}

// NumDIMMs returns the DIMM count.
func (b *Bank) NumDIMMs() int { return len(b.temps) }

// TempSum returns the plain sum of all DIMM temperatures. A NaN or Inf
// DIMM poisons the sum, whereas MaxTemp's comparisons would skip it —
// the divergence guard reads this, not the max.
func (b *Bank) TempSum() float64 {
	var s float64
	for _, v := range b.temps {
		s += v
	}
	return s
}

// Settle snaps all DIMMs to equilibrium for the given conditions.
func (b *Bank) Settle(ambient units.Celsius, u units.Percent, r units.RPM) {
	for i := range b.temps {
		b.temps[i] = b.equilibrium(i, ambient, u, r)
	}
}
