package mem

import "fmt"

// State is the serializable mutable state of a Bank: the DIMM temperatures.
// The lag-coefficient and inlet-preheat memos are derived caches — restoring
// invalidates them and the next Step recomputes both, bit-identically,
// because they are pure functions of (dt) and (utilization, fan speed).
type State struct {
	Temps []float64
}

// State captures the bank for a checkpoint.
func (b *Bank) State() State {
	st := State{Temps: make([]float64, len(b.temps))}
	copy(st.Temps, b.temps)
	return st
}

// SetState restores a captured State into a bank built from the same
// configuration.
func (b *Bank) SetState(st State) error {
	if len(st.Temps) != len(b.temps) {
		return fmt.Errorf("mem: state has %d DIMMs, bank has %d", len(st.Temps), len(b.temps))
	}
	copy(b.temps, st.Temps)
	b.alphaDt = 0
	b.phValid = false
	return nil
}
