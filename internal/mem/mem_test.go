package mem

import (
	"math"
	"testing"
)

func newBank(t *testing.T) *Bank {
	t.Helper()
	b, err := NewBank(DefaultConfig(), 24)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBankValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.NumDIMMs = 0
	if _, err := NewBank(bad, 24); err == nil {
		t.Error("zero DIMMs should error")
	}
	bad = DefaultConfig()
	bad.TimeConstant = 0
	if _, err := NewBank(bad, 24); err == nil {
		t.Error("zero time constant should error")
	}
	bad = DefaultConfig()
	bad.AirflowPerRPM = 0
	if _, err := NewBank(bad, 24); err == nil {
		t.Error("zero airflow should error")
	}
}

func TestBankStartsAtAmbient(t *testing.T) {
	b := newBank(t)
	if b.NumDIMMs() != 32 {
		t.Fatalf("DIMMs = %d", b.NumDIMMs())
	}
	for i := 0; i < 32; i++ {
		temp, err := b.Temp(i)
		if err != nil {
			t.Fatal(err)
		}
		if temp != 24 {
			t.Fatalf("DIMM %d starts at %v", i, temp)
		}
	}
	if _, err := b.Temp(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := b.Temp(32); err == nil {
		t.Error("out-of-range index should error")
	}
}

func TestPowerModel(t *testing.T) {
	b := newBank(t)
	if got := float64(b.Power(0)); got != 40 {
		t.Fatalf("idle power = %g", got)
	}
	if got := float64(b.Power(100)); math.Abs(got-126) > 1e-9 {
		t.Fatalf("full power = %g, want 126", got)
	}
}

func TestInletPreheat(t *testing.T) {
	b := newBank(t)
	// More load → more preheat; more airflow → less preheat.
	low := float64(b.InletPreheat(0, 3300))
	high := float64(b.InletPreheat(100, 3300))
	if high <= low {
		t.Fatalf("preheat should rise with load: %g vs %g", low, high)
	}
	slowFan := float64(b.InletPreheat(100, 1800))
	fastFan := float64(b.InletPreheat(100, 4200))
	if slowFan <= fastFan {
		t.Fatalf("preheat should fall with airflow: %g vs %g", slowFan, fastFan)
	}
	// Calibrated magnitude: ~1.3°C at 100% and 3300 RPM.
	if got := float64(b.InletPreheat(100, 3300)); got < 0.8 || got > 2.0 {
		t.Fatalf("preheat(100%%, 3300) = %g, want ~1.3", got)
	}
	// Zero airflow is capped, not infinite.
	if got := float64(b.InletPreheat(100, 0)); got > 15 {
		t.Fatalf("zero-airflow preheat = %g", got)
	}
}

func TestStepConvergesToSettle(t *testing.T) {
	b := newBank(t)
	want := newBank(t)
	want.Settle(24, 80, 2400)
	for i := 0; i < 100; i++ {
		b.Step(10, 24, 80, 2400)
	}
	for i := 0; i < 32; i++ {
		got, _ := b.Temp(i)
		expect, _ := want.Temp(i)
		if math.Abs(float64(got-expect)) > 0.05 {
			t.Fatalf("DIMM %d: %v vs settled %v", i, got, expect)
		}
	}
}

func TestDownstreamDIMMsHotter(t *testing.T) {
	b := newBank(t)
	b.Settle(24, 100, 2400)
	first, _ := b.Temp(0)
	last, _ := b.Temp(31)
	if last <= first {
		t.Fatalf("downstream DIMM %v should be hotter than upstream %v", last, first)
	}
	if b.MaxTemp() != last {
		t.Fatalf("MaxTemp %v != last DIMM %v", b.MaxTemp(), last)
	}
}

func TestDIMMTempsReasonable(t *testing.T) {
	b := newBank(t)
	b.Settle(24, 100, 3300)
	for i, temp := range b.Temps() {
		if temp < 24 || temp > 70 {
			t.Fatalf("DIMM %d settled at %v — outside plausible range", i, temp)
		}
	}
}

func TestStepLagBehaviour(t *testing.T) {
	b := newBank(t)
	// One time constant: ~63% of the way to equilibrium.
	eq := newBank(t)
	eq.Settle(24, 100, 1800)
	target, _ := eq.Temp(0)
	b.Step(60, 24, 100, 1800) // τ = 60 s
	got, _ := b.Temp(0)
	frac := float64(got-24) / float64(target-24)
	if math.Abs(frac-0.632) > 0.01 {
		t.Fatalf("one-τ fraction = %g, want ~0.632", frac)
	}
	// Non-positive dt is a no-op.
	before, _ := b.Temp(0)
	b.Step(0, 24, 100, 1800)
	b.Step(-3, 24, 100, 1800)
	after, _ := b.Temp(0)
	if before != after {
		t.Fatal("non-positive dt changed state")
	}
}

func TestTempsCopyIsolation(t *testing.T) {
	b := newBank(t)
	ts := b.Temps()
	ts[0] = 999
	got, _ := b.Temp(0)
	if got == 999 {
		t.Fatal("Temps() must return a copy")
	}
}
