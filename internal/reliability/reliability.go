// Package reliability quantifies the thermal-reliability consequences of a
// fan-control policy — the concern behind the paper's 75 °C operational
// cap ("for reliability purposes [7] we target a maximum operational
// temperature of 75 °C") and its observation that wide bang-bang bands
// create "higher fan speeds and larger thermal cycles".
//
// Two standard models are implemented:
//
//   - Arrhenius acceleration of steady-state wear-out: the failure rate
//     scales as exp(-Ea/kT); AccelerationFactor reports the average rate
//     relative to operation at a reference temperature.
//   - Coffin-Manson thermal cycling: interconnect fatigue damage grows as
//     ΔT^q per cycle; cycles are extracted from a temperature trace with a
//     three-point rainflow-style reduction.
package reliability

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Boltzmann constant in eV/K.
const boltzmannEV = 8.617e-5

// ArrheniusConfig parameterizes the wear-out model.
type ArrheniusConfig struct {
	ActivationEV float64       // activation energy, typically 0.7 eV for electromigration
	ReferenceC   units.Celsius // temperature at which the factor is 1
}

// DefaultArrhenius uses 0.7 eV against a 55 °C reference, typical for
// electromigration analyses of server silicon.
func DefaultArrhenius() ArrheniusConfig {
	return ArrheniusConfig{ActivationEV: 0.7, ReferenceC: 55}
}

// Factor returns the instantaneous failure-rate acceleration at temp
// relative to the reference (>1 = aging faster than reference).
func (c ArrheniusConfig) Factor(temp units.Celsius) float64 {
	tK := float64(temp) + 273.15
	refK := float64(c.ReferenceC) + 273.15
	if tK <= 0 || refK <= 0 {
		return math.NaN()
	}
	return math.Exp(c.ActivationEV / boltzmannEV * (1/refK - 1/tK))
}

// AccelerationFactor integrates the Arrhenius factor over a sampled
// temperature trace (uniform sampling assumed) and returns the average.
func (c ArrheniusConfig) AccelerationFactor(tempsC []float64) (float64, error) {
	if len(tempsC) == 0 {
		return 0, fmt.Errorf("reliability: empty temperature trace")
	}
	var sum float64
	for _, t := range tempsC {
		sum += c.Factor(units.Celsius(t))
	}
	return sum / float64(len(tempsC)), nil
}

// Cycle is one extracted thermal cycle.
type Cycle struct {
	AmplitudeC float64 // peak-to-peak ΔT
	MeanC      float64
}

// ExtractCycles reduces a temperature trace to thermal cycles using a
// three-point rainflow-style pass: the trace is first compressed to its
// turning points, then successive min-max pairs are emitted as cycles.
// Cycles smaller than minAmplitude are ignored (sensor noise).
func ExtractCycles(tempsC []float64, minAmplitude float64) []Cycle {
	if len(tempsC) < 3 {
		return nil
	}
	// Compress to turning points.
	var turns []float64
	for i, t := range tempsC {
		if i == 0 || i == len(tempsC)-1 {
			turns = append(turns, t)
			continue
		}
		prev, next := tempsC[i-1], tempsC[i+1]
		if (t > prev && t >= next) || (t < prev && t <= next) {
			turns = append(turns, t)
		}
	}
	// Three-point reduction: whenever |b-c| <= |a-b| for consecutive
	// turning points a,b,c, the pair (b,c) forms a cycle and is removed.
	var cycles []Cycle
	stack := make([]float64, 0, len(turns))
	emit := func(a, b float64) {
		amp := math.Abs(a - b)
		if amp >= minAmplitude {
			cycles = append(cycles, Cycle{AmplitudeC: amp, MeanC: (a + b) / 2})
		}
	}
	for _, t := range turns {
		stack = append(stack, t)
		for len(stack) >= 3 {
			n := len(stack)
			a, b, c := stack[n-3], stack[n-2], stack[n-1]
			if math.Abs(c-b) < math.Abs(b-a) {
				break
			}
			emit(a, b)
			stack = append(stack[:n-3], c)
		}
	}
	// Remaining alternations count as half-cycles; emit them as cycles so
	// a monotone ramp still registers once.
	for i := 1; i < len(stack); i++ {
		emit(stack[i-1], stack[i])
	}
	return cycles
}

// CoffinMansonConfig parameterizes cycling fatigue.
type CoffinMansonConfig struct {
	Exponent     float64 // q, typically 2-3 for solder joints
	ReferenceDT  float64 // ΔT at which one cycle contributes damage 1
	MinAmplitude float64 // ignore cycles below this ΔT
}

// DefaultCoffinManson uses q=2.35 against a 20 °C reference swing.
func DefaultCoffinManson() CoffinMansonConfig {
	return CoffinMansonConfig{Exponent: 2.35, ReferenceDT: 20, MinAmplitude: 2}
}

// Damage accumulates normalized fatigue damage over a temperature trace:
// each extracted cycle contributes (ΔT/ReferenceDT)^q.
func (c CoffinMansonConfig) Damage(tempsC []float64) float64 {
	if c.ReferenceDT <= 0 {
		return math.NaN()
	}
	var damage float64
	for _, cyc := range ExtractCycles(tempsC, c.MinAmplitude) {
		damage += math.Pow(cyc.AmplitudeC/c.ReferenceDT, c.Exponent)
	}
	return damage
}

// Report summarizes the reliability exposure of one controller run.
type Report struct {
	MeanTempC     float64
	MaxTempC      float64
	TimeAbove75   float64 // fraction of samples above 75 °C
	Acceleration  float64 // mean Arrhenius factor vs 55 °C
	ThermalCycles int
	CyclingDamage float64 // normalized Coffin-Manson damage
}

// Analyze produces a Report from a sampled temperature trace.
func Analyze(tempsC []float64) (Report, error) {
	if len(tempsC) == 0 {
		return Report{}, fmt.Errorf("reliability: empty temperature trace")
	}
	arr := DefaultArrhenius()
	cm := DefaultCoffinManson()
	var r Report
	r.MaxTempC = math.Inf(-1)
	above := 0
	for _, t := range tempsC {
		r.MeanTempC += t
		if t > r.MaxTempC {
			r.MaxTempC = t
		}
		if t > 75 {
			above++
		}
	}
	r.MeanTempC /= float64(len(tempsC))
	r.TimeAbove75 = float64(above) / float64(len(tempsC))
	accel, err := arr.AccelerationFactor(tempsC)
	if err != nil {
		return Report{}, err
	}
	r.Acceleration = accel
	cycles := ExtractCycles(tempsC, cm.MinAmplitude)
	r.ThermalCycles = len(cycles)
	r.CyclingDamage = cm.Damage(tempsC)
	return r, nil
}

func (r Report) String() string {
	return fmt.Sprintf("mean=%.1f°C max=%.1f°C above75=%.1f%% accel=%.2fx cycles=%d damage=%.2f",
		r.MeanTempC, r.MaxTempC, 100*r.TimeAbove75, r.Acceleration, r.ThermalCycles, r.CyclingDamage)
}
