package reliability

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestArrheniusReference(t *testing.T) {
	arr := DefaultArrhenius()
	if got := arr.Factor(55); math.Abs(got-1) > 1e-12 {
		t.Fatalf("factor at reference = %g, want 1", got)
	}
	// Hotter → faster aging; colder → slower.
	if arr.Factor(75) <= 1 {
		t.Fatal("hot factor should exceed 1")
	}
	if arr.Factor(35) >= 1 {
		t.Fatal("cold factor should be below 1")
	}
}

func TestArrheniusDoublingRule(t *testing.T) {
	// With Ea=0.7 eV a 10 °C rise around 55-65 °C roughly doubles the rate
	// (the classic rule of thumb).
	arr := DefaultArrhenius()
	ratio := arr.Factor(65) / arr.Factor(55)
	if ratio < 1.7 || ratio > 2.6 {
		t.Fatalf("10°C ratio = %g, want ~2", ratio)
	}
}

func TestArrheniusMonotoneProperty(t *testing.T) {
	arr := DefaultArrhenius()
	f := func(a, b float64) bool {
		ta := math.Mod(math.Abs(a), 80) + 10 // 10..90 °C
		tb := math.Mod(math.Abs(b), 80) + 10
		if math.IsNaN(ta) || math.IsNaN(tb) {
			return true
		}
		if ta > tb {
			ta, tb = tb, ta
		}
		return arr.Factor(units.Celsius(ta)) <= arr.Factor(units.Celsius(tb))+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccelerationFactor(t *testing.T) {
	arr := DefaultArrhenius()
	// Constant trace equals the pointwise factor.
	got, err := arr.AccelerationFactor([]float64{70, 70, 70})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-arr.Factor(70)) > 1e-12 {
		t.Fatalf("constant trace factor = %g", got)
	}
	if _, err := arr.AccelerationFactor(nil); err == nil {
		t.Fatal("empty trace should error")
	}
}

func TestExtractCyclesSquareWave(t *testing.T) {
	// Five full swings 40↔70: expect ~5 cycles of amplitude 30.
	var trace []float64
	for i := 0; i < 5; i++ {
		trace = append(trace, 40, 70)
	}
	trace = append(trace, 40)
	cycles := ExtractCycles(trace, 2)
	if len(cycles) < 4 || len(cycles) > 10 {
		t.Fatalf("cycles = %d, want ~5-10 (half cycles count)", len(cycles))
	}
	for _, c := range cycles {
		if math.Abs(c.AmplitudeC-30) > 1e-9 {
			t.Fatalf("amplitude = %g, want 30", c.AmplitudeC)
		}
		if math.Abs(c.MeanC-55) > 1e-9 {
			t.Fatalf("mean = %g, want 55", c.MeanC)
		}
	}
}

func TestExtractCyclesFlat(t *testing.T) {
	if got := ExtractCycles([]float64{50, 50, 50, 50}, 2); len(got) != 0 {
		t.Fatalf("flat trace cycles = %d", len(got))
	}
	if got := ExtractCycles([]float64{50}, 2); got != nil {
		t.Fatal("short trace should be nil")
	}
}

func TestExtractCyclesIgnoresNoise(t *testing.T) {
	// ±0.5 °C jitter below the 2 °C floor must produce no cycles.
	trace := []float64{60, 60.5, 59.5, 60.3, 59.8, 60.1}
	if got := ExtractCycles(trace, 2); len(got) != 0 {
		t.Fatalf("noise produced %d cycles", len(got))
	}
}

func TestExtractCyclesNestedCycle(t *testing.T) {
	// A small excursion nested in a large swing: rainflow should find both
	// the inner and the outer cycle.
	trace := []float64{40, 80, 60, 70, 40}
	cycles := ExtractCycles(trace, 2)
	var amps []float64
	for _, c := range cycles {
		amps = append(amps, c.AmplitudeC)
	}
	foundInner, foundOuter := false, false
	for _, a := range amps {
		if math.Abs(a-10) < 1e-9 {
			foundInner = true
		}
		if math.Abs(a-40) < 1e-9 {
			foundOuter = true
		}
	}
	if !foundInner || !foundOuter {
		t.Fatalf("amplitudes = %v, want inner 10 and outer 40", amps)
	}
}

func TestCoffinMansonDamage(t *testing.T) {
	cm := DefaultCoffinManson()
	// One 20 °C cycle contributes ~1 damage unit (half+full counting means
	// within a small factor).
	oneCycle := []float64{50, 70, 50}
	d := cm.Damage(oneCycle)
	if d < 0.5 || d > 2.5 {
		t.Fatalf("single-cycle damage = %g, want ~1", d)
	}
	// A 40 °C swing is 2^2.35 ≈ 5.1× worse than a 20 °C swing.
	bigger := cm.Damage([]float64{40, 80, 40})
	if ratio := bigger / d; ratio < 4 || ratio > 6.5 {
		t.Fatalf("damage ratio = %g, want ~5.1", ratio)
	}
	// Degenerate config.
	bad := cm
	bad.ReferenceDT = 0
	if !math.IsNaN(bad.Damage(oneCycle)) {
		t.Fatal("zero reference should be NaN")
	}
}

func TestAnalyzeReport(t *testing.T) {
	trace := []float64{60, 70, 76, 78, 70, 60, 74, 77, 65}
	rep, err := Analyze(trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxTempC != 78 {
		t.Fatalf("max = %g", rep.MaxTempC)
	}
	wantAbove := 3.0 / 9.0
	if math.Abs(rep.TimeAbove75-wantAbove) > 1e-12 {
		t.Fatalf("above75 = %g, want %g", rep.TimeAbove75, wantAbove)
	}
	if rep.Acceleration <= 1 {
		t.Fatalf("acceleration = %g for a hot trace", rep.Acceleration)
	}
	if rep.ThermalCycles == 0 || rep.CyclingDamage <= 0 {
		t.Fatalf("cycles=%d damage=%g", rep.ThermalCycles, rep.CyclingDamage)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
	if _, err := Analyze(nil); err == nil {
		t.Fatal("empty trace should error")
	}
}

func TestAnalyzeOrdering(t *testing.T) {
	// A steady-warm trace (LUT-like) must show fewer cycles and less
	// damage than an oscillating trace of the same mean (bang-bang-like).
	steady := make([]float64, 100)
	osc := make([]float64, 100)
	for i := range steady {
		steady[i] = 65
		if i%10 < 5 {
			osc[i] = 55
		} else {
			osc[i] = 75
		}
	}
	sRep, err := Analyze(steady)
	if err != nil {
		t.Fatal(err)
	}
	oRep, err := Analyze(osc)
	if err != nil {
		t.Fatal(err)
	}
	if oRep.CyclingDamage <= sRep.CyclingDamage {
		t.Fatalf("oscillating damage %g should exceed steady %g",
			oRep.CyclingDamage, sRep.CyclingDamage)
	}
	if oRep.ThermalCycles <= sRep.ThermalCycles {
		t.Fatal("oscillating trace should have more cycles")
	}
}
