// Package stats provides the descriptive statistics used by the telemetry
// harness and the experiment reports: online moments (Welford), percentiles,
// and regression quality measures (RMSE, R²).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count, mean and variance incrementally (Welford's
// algorithm) along with min and max. The zero value is ready to use.
type Online struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 if empty).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the population variance (0 if fewer than 2 observations).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// Std returns the population standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (0 if empty).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return 0
	}
	return o.min
}

// Max returns the largest observation (0 if empty).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return 0
	}
	return o.max
}

// Summary is a complete snapshot of a sample.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
	P50, P95, P99       float64
}

// Summarize computes a Summary from raw samples.
func Summarize(xs []float64) Summary {
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	s := Summary{N: o.N(), Mean: o.Mean(), Std: o.Std(), Min: o.Min(), Max: o.Max()}
	if len(xs) > 0 {
		s.P50 = Percentile(xs, 50)
		s.P95 = Percentile(xs, 95)
		s.P99 = Percentile(xs, 99)
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P95, s.Max)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It copies xs and so leaves the
// input untouched. Percentile of an empty slice is 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// RMSE computes the root mean squared error between predictions and truth.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// RSquared computes the coefficient of determination of predictions against
// truth. 1 is a perfect fit; it can go negative for fits worse than the mean.
func RSquared(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	var mean float64
	for _, y := range truth {
		mean += y
	}
	mean /= float64(len(truth))
	var ssRes, ssTot float64
	for i := range truth {
		r := truth[i] - pred[i]
		d := truth[i] - mean
		ssRes += r * r
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// MeanOf returns the arithmetic mean of xs (0 for empty input).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MaxOf returns the maximum of xs (-Inf for empty input).
func MaxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// MinOf returns the minimum of xs (+Inf for empty input).
func MinOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
