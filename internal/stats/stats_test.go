package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOnlineAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		o.Add(xs[i])
	}
	mean := MeanOf(xs)
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs))
	if math.Abs(o.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %g vs %g", o.Mean(), mean)
	}
	if math.Abs(o.Var()-v) > 1e-9 {
		t.Fatalf("var %g vs %g", o.Var(), v)
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.Min() != 0 || o.Max() != 0 || o.N() != 0 {
		t.Fatal("zero value not neutral")
	}
	o.Add(5)
	if o.Mean() != 5 || o.Var() != 0 || o.Min() != 5 || o.Max() != 5 {
		t.Fatalf("single obs: %+v", o)
	}
}

func TestOnlineMinMax(t *testing.T) {
	var o Online
	for _, x := range []float64{3, -1, 4, 1, 5, -9, 2, 6} {
		o.Add(x)
	}
	if o.Min() != -9 || o.Max() != 6 {
		t.Fatalf("min=%g max=%g", o.Min(), o.Max())
	}
}

func TestPercentileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("input mutated")
	}
}

func TestPercentileEmpty(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw [8]float64, p float64) bool {
		xs := raw[:]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		if math.IsNaN(p) {
			return true
		}
		got := Percentile(xs, p)
		return got >= MinOf(xs)-1e-9 && got <= MaxOf(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("perfect RMSE = %g", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %g", got)
	}
	if !math.IsNaN(RMSE([]float64{1}, []float64{1, 2})) {
		t.Fatal("mismatched lengths should be NaN")
	}
	if !math.IsNaN(RMSE(nil, nil)) {
		t.Fatal("empty should be NaN")
	}
}

func TestRSquared(t *testing.T) {
	truth := []float64{1, 2, 3, 4}
	if got := RSquared(truth, truth); got != 1 {
		t.Fatalf("perfect R² = %g", got)
	}
	// Predicting the mean gives R² = 0.
	meanPred := []float64{2.5, 2.5, 2.5, 2.5}
	if got := RSquared(meanPred, truth); math.Abs(got) > 1e-12 {
		t.Fatalf("mean R² = %g", got)
	}
	// Constant truth with perfect prediction.
	if got := RSquared([]float64{2, 2}, []float64{2, 2}); got != 1 {
		t.Fatalf("constant R² = %g", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestMeanMaxMinOf(t *testing.T) {
	if MeanOf([]float64{2, 4}) != 3 {
		t.Error("MeanOf")
	}
	if MeanOf(nil) != 0 {
		t.Error("MeanOf nil")
	}
	if !math.IsInf(MaxOf(nil), -1) || !math.IsInf(MinOf(nil), 1) {
		t.Error("empty MaxOf/MinOf sentinels")
	}
}
