package mathx

import (
	"errors"
	"math"
)

// Residualer computes the residual vector r(p) for a parameter vector p.
// The fit minimizes sum(r_i^2).
type Residualer func(params []float64, out []float64)

// LMOptions tunes the Levenberg–Marquardt solver.
type LMOptions struct {
	MaxIter   int     // maximum outer iterations (default 200)
	Tol       float64 // convergence threshold on relative cost change (default 1e-10)
	Lambda0   float64 // initial damping (default 1e-3)
	JacobianH float64 // finite-difference step (default 1e-6 relative)
}

func (o LMOptions) withDefaults() LMOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Lambda0 <= 0 {
		o.Lambda0 = 1e-3
	}
	if o.JacobianH <= 0 {
		o.JacobianH = 1e-6
	}
	return o
}

// LMResult reports the outcome of a Levenberg–Marquardt fit.
type LMResult struct {
	Params     []float64 // fitted parameters
	Cost       float64   // final sum of squared residuals
	RMSE       float64   // sqrt(Cost/n)
	Iterations int
	Converged  bool
}

// ErrLMFailed is returned when the solver cannot make progress at all.
var ErrLMFailed = errors.New("mathx: levenberg-marquardt failed to reduce cost")

// LevenbergMarquardt minimizes the sum of squared residuals produced by fn
// starting from p0, using a finite-difference Jacobian. nResiduals is the
// length of the residual vector fn fills in.
func LevenbergMarquardt(fn Residualer, p0 []float64, nResiduals int, opts LMOptions) (LMResult, error) {
	opts = opts.withDefaults()
	np := len(p0)
	p := append([]float64(nil), p0...)

	r := make([]float64, nResiduals)
	rTrial := make([]float64, nResiduals)
	fn(p, r)
	cost := Dot(r, r)

	jac := make([][]float64, nResiduals) // nResiduals × np
	for i := range jac {
		jac[i] = make([]float64, np)
	}
	pPerturbed := make([]float64, np)
	rPerturbed := make([]float64, nResiduals)

	lambda := opts.Lambda0
	res := LMResult{Params: p, Cost: cost}
	improvedEver := false

	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1

		// Finite-difference Jacobian.
		for j := 0; j < np; j++ {
			copy(pPerturbed, p)
			h := opts.JacobianH * math.Max(1e-8, math.Abs(p[j]))
			pPerturbed[j] += h
			fn(pPerturbed, rPerturbed)
			for i := 0; i < nResiduals; i++ {
				jac[i][j] = (rPerturbed[i] - r[i]) / h
			}
		}

		// Normal equations: (JᵀJ + λ·diag(JᵀJ))·δ = -Jᵀr
		jtj := make([][]float64, np)
		jtr := make([]float64, np)
		for a := 0; a < np; a++ {
			jtj[a] = make([]float64, np)
			for b := 0; b < np; b++ {
				s := 0.0
				for i := 0; i < nResiduals; i++ {
					s += jac[i][a] * jac[i][b]
				}
				jtj[a][b] = s
			}
			s := 0.0
			for i := 0; i < nResiduals; i++ {
				s += jac[i][a] * r[i]
			}
			jtr[a] = -s
		}

		accepted := false
		for attempt := 0; attempt < 30; attempt++ {
			damped := make([][]float64, np)
			for a := 0; a < np; a++ {
				damped[a] = append([]float64(nil), jtj[a]...)
				d := jtj[a][a]
				if d == 0 {
					d = 1e-12
				}
				damped[a][a] += lambda * d
			}
			delta, err := SolveLinear(damped, jtr)
			if err != nil {
				lambda *= 10
				continue
			}
			trial := make([]float64, np)
			for a := range trial {
				trial[a] = p[a] + delta[a]
			}
			fn(trial, rTrial)
			trialCost := Dot(rTrial, rTrial)
			if trialCost < cost && !math.IsNaN(trialCost) {
				p = trial
				copy(r, rTrial)
				relDrop := (cost - trialCost) / math.Max(cost, 1e-300)
				cost = trialCost
				lambda = math.Max(lambda/3, 1e-12)
				accepted = true
				improvedEver = true
				if relDrop < opts.Tol {
					res.Converged = true
				}
				break
			}
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}

		res.Params = p
		res.Cost = cost
		if res.Converged {
			break
		}
		if !accepted {
			// Cannot improve further: either converged at p0 or stuck.
			res.Converged = improvedEver || cost < 1e-20
			break
		}
	}

	res.RMSE = math.Sqrt(res.Cost / float64(nResiduals))
	if !improvedEver && !res.Converged {
		return res, ErrLMFailed
	}
	return res, nil
}
