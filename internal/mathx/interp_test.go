package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInterpolatorBasics(t *testing.T) {
	in, err := NewInterpolator([]float64{0, 10}, []float64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {5, 50}, {10, 100}, {11, 100},
	}
	for _, c := range cases {
		if got := in.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestInterpolatorMultiSegment(t *testing.T) {
	in, err := NewInterpolator([]float64{0, 1, 2, 4}, []float64{0, 10, 10, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.At(0.5); got != 5 {
		t.Errorf("At(0.5) = %g", got)
	}
	if got := in.At(1.5); got != 10 {
		t.Errorf("At(1.5) = %g", got)
	}
	if got := in.At(3); got != 5 {
		t.Errorf("At(3) = %g", got)
	}
}

func TestInterpolatorErrors(t *testing.T) {
	if _, err := NewInterpolator([]float64{0}, []float64{0}); err == nil {
		t.Error("single point should error")
	}
	if _, err := NewInterpolator([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing xs should error")
	}
	if _, err := NewInterpolator([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestInterpolatorWithinHullProperty(t *testing.T) {
	in, err := NewInterpolator([]float64{0, 1, 2, 3}, []float64{5, -3, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		y := in.At(x)
		return y >= -3 && y <= 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Fatalf("root = %g", root)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-12)
	if err != nil || root != 0 {
		t.Fatalf("root = %g err = %v", root, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-9); err == nil {
		t.Fatal("expected bracket error")
	}
}

func TestFixedPoint(t *testing.T) {
	// x = cos(x) has fixed point ~0.739085.
	x, err := FixedPoint(math.Cos, 0, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-0.7390851332151607) > 1e-9 {
		t.Fatalf("fixed point = %g", x)
	}
}

func TestFixedPointDiverges(t *testing.T) {
	_, err := FixedPoint(func(x float64) float64 { return 2*x + 1 }, 1, 1e-9, 50)
	if err == nil {
		t.Fatal("divergent map should report non-convergence")
	}
}
