package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestExpmScalar(t *testing.T) {
	for _, x := range []float64{-3, -0.5, 0, 0.1, 2.7} {
		e, err := Expm([][]float64{{x}})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := e[0][0], math.Exp(x); math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Fatalf("expm(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestExpmZeroIsIdentity(t *testing.T) {
	e, err := Expm([][]float64{{0, 0}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 0}, {0, 1}}
	for i := range e {
		for j := range e[i] {
			if math.Abs(e[i][j]-want[i][j]) > 1e-15 {
				t.Fatalf("expm(0) = %v, want identity", e)
			}
		}
	}
}

func TestExpmRotation(t *testing.T) {
	// exp([[0,-θ],[θ,0]]) is the rotation matrix by θ.
	theta := 1.2
	e, err := Expm([][]float64{{0, -theta}, {theta, 0}})
	if err != nil {
		t.Fatal(err)
	}
	c, s := math.Cos(theta), math.Sin(theta)
	want := [][]float64{{c, -s}, {s, c}}
	for i := range e {
		for j := range e[i] {
			if math.Abs(e[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("rotation expm mismatch at (%d,%d): %g vs %g", i, j, e[i][j], want[i][j])
			}
		}
	}
}

// TestExpmVsTaylor checks random matrices against a long, scaled Taylor
// series evaluated independently.
func TestExpmVsTaylor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = 4 * (rng.Float64() - 0.5)
			}
		}
		got, err := Expm(a)
		if err != nil {
			t.Fatal(err)
		}
		want := taylorExpm(a, 60)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(got[i][j]-want[i][j]) > 1e-9*math.Max(1, math.Abs(want[i][j])) {
					t.Fatalf("trial %d: expm mismatch at (%d,%d): %g vs %g", trial, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// taylorExpm evaluates exp(A) by squaring a truncated Taylor series of the
// halved matrix enough times — slow but independent of the Padé code path.
func taylorExpm(a [][]float64, terms int) [][]float64 {
	n := len(a)
	const halvings = 20
	as := make([][]float64, n)
	for i := range a {
		as[i] = make([]float64, n)
		for j := range a[i] {
			as[i][j] = a[i][j] / (1 << halvings)
		}
	}
	sum := eye(n)
	term := eye(n)
	for k := 1; k <= terms; k++ {
		term = matMul(term, as)
		for i := range term {
			for j := range term[i] {
				term[i][j] /= float64(k)
				sum[i][j] += term[i][j]
			}
		}
	}
	for s := 0; s < halvings; s++ {
		sum = matMul(sum, sum)
	}
	return sum
}

func TestExpmIntegralScalar(t *testing.T) {
	// For dT/dt = -λT + u: ad = e^{-λh}, phi = (1 - e^{-λh})/λ.
	lambda, h := 0.7, 2.5
	ad, phi, err := ExpmIntegral([][]float64{{-lambda}}, h)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Exp(-lambda * h); math.Abs(ad[0][0]-want) > 1e-12 {
		t.Fatalf("ad = %g, want %g", ad[0][0], want)
	}
	if want := (1 - math.Exp(-lambda*h)) / lambda; math.Abs(phi[0][0]-want) > 1e-12 {
		t.Fatalf("phi = %g, want %g", phi[0][0], want)
	}
}

// TestExpmIntegralMatchesFineRK4 drives a random stable affine system one
// exact step and compares against many fine RK4 steps.
func TestExpmIntegralMatchesFineRK4(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(5)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = 0.4 * (rng.Float64() - 0.5)
			}
			a[i][i] -= 1.0 // diagonally dominant, stable
		}
		u := make([]float64, n)
		y := make([]float64, n)
		for i := range u {
			u[i] = 2 * (rng.Float64() - 0.5)
			y[i] = 10 * rng.Float64()
		}
		h := 0.5 + 2*rng.Float64()

		ad, phi, err := ExpmIntegral(a, h)
		if err != nil {
			t.Fatal(err)
		}
		exact := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				exact[i] += ad[i][j]*y[j] + phi[i][j]*u[j]
			}
		}

		deriv := func(_ float64, yy []float64, d []float64) {
			for i := 0; i < n; i++ {
				d[i] = u[i]
				for j := 0; j < n; j++ {
					d[i] += a[i][j] * yy[j]
				}
			}
		}
		ref := append([]float64(nil), y...)
		const sub = 2000
		scratch := NewScratch(n)
		for k := 0; k < sub; k++ {
			RK4Step(deriv, float64(k)*h/sub, ref, h/sub, scratch)
		}
		for i := 0; i < n; i++ {
			if math.Abs(exact[i]-ref[i]) > 1e-8 {
				t.Fatalf("trial %d node %d: exact %g vs fine RK4 %g", trial, i, exact[i], ref[i])
			}
		}
	}
}

func TestExpmBadInput(t *testing.T) {
	if _, err := Expm([][]float64{{1, 2}}); err == nil {
		t.Fatal("expected error for non-square input")
	}
	if _, err := Expm([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("expected error for NaN input")
	}
	if _, _, err := ExpmIntegral([][]float64{{1}}, 0); err == nil {
		t.Fatal("expected error for zero step")
	}
	if _, _, err := ExpmIntegral([][]float64{{1, 2}}, 1); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSolveLinearInPlaceMatchesSolveLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := make([][]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = 2 * (rng.Float64() - 0.5)
			}
			a[i][i] += float64(n) // well conditioned
			b[i] = rng.Float64()
		}
		want, err := SolveLinear(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// In-place variant destroys its inputs; give it copies.
		ac := make([][]float64, n)
		for i := range a {
			ac[i] = append([]float64(nil), a[i]...)
		}
		bc := append([]float64(nil), b...)
		if err := SolveLinearInPlace(ac, bc); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(want[i]-bc[i]) > 1e-12 {
				t.Fatalf("trial %d: in-place solution differs at %d: %g vs %g", trial, i, bc[i], want[i])
			}
		}
	}
}

func TestSolveLinearInPlaceSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 2}
	if err := SolveLinearInPlace(a, b); err == nil {
		t.Fatal("expected singular matrix error")
	}
}
