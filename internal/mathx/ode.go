package mathx

// Derivative computes dy/dt into dydt given time t and state y.
type Derivative func(t float64, y []float64, dydt []float64)

// RK4Step advances y by one classical Runge–Kutta step of size dt, in place.
// scratch must have 5 slices of len(y); pass nil to allocate internally.
func RK4Step(f Derivative, t float64, y []float64, dt float64, scratch [][]float64) {
	n := len(y)
	if scratch == nil || len(scratch) < 5 {
		scratch = make([][]float64, 5)
		for i := range scratch {
			scratch[i] = make([]float64, n)
		}
	}
	k1, k2, k3, k4, tmp := scratch[0], scratch[1], scratch[2], scratch[3], scratch[4]

	f(t, y, k1)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + 0.5*dt*k1[i]
	}
	f(t+0.5*dt, tmp, k2)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + 0.5*dt*k2[i]
	}
	f(t+0.5*dt, tmp, k3)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + dt*k3[i]
	}
	f(t+dt, tmp, k4)
	for i := 0; i < n; i++ {
		y[i] += dt / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
	}
}

// EulerStep advances y by one forward-Euler step of size dt, in place.
// scratch must have at least 1 slice of len(y); pass nil to allocate.
func EulerStep(f Derivative, t float64, y []float64, dt float64, scratch [][]float64) {
	n := len(y)
	if scratch == nil || len(scratch) < 1 {
		scratch = [][]float64{make([]float64, n)}
	}
	d := scratch[0]
	f(t, y, d)
	for i := 0; i < n; i++ {
		y[i] += dt * d[i]
	}
}

// NewScratch allocates reusable scratch buffers for the steppers.
func NewScratch(n int) [][]float64 {
	s := make([][]float64, 5)
	for i := range s {
		s[i] = make([]float64, n)
	}
	return s
}

// TrapezoidIntegrate integrates sampled values y over uniformly spaced
// samples dt apart using the trapezoid rule.
func TrapezoidIntegrate(y []float64, dt float64) float64 {
	if len(y) < 2 {
		return 0
	}
	s := 0.5 * (y[0] + y[len(y)-1])
	for i := 1; i < len(y)-1; i++ {
		s += y[i]
	}
	return s * dt
}
