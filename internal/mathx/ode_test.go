package mathx

import (
	"math"
	"testing"
)

// exponential decay dy/dt = -y has solution y0·e^{-t}.
func decay(_ float64, y, dydt []float64) {
	for i := range y {
		dydt[i] = -y[i]
	}
}

func TestRK4ExponentialDecay(t *testing.T) {
	y := []float64{1}
	scratch := NewScratch(1)
	dt := 0.01
	for i := 0; i < 100; i++ {
		RK4Step(decay, float64(i)*dt, y, dt, scratch)
	}
	want := math.Exp(-1)
	if math.Abs(y[0]-want) > 1e-8 {
		t.Fatalf("RK4 decay = %g, want %g", y[0], want)
	}
}

func TestEulerExponentialDecay(t *testing.T) {
	y := []float64{1}
	dt := 0.001
	for i := 0; i < 1000; i++ {
		EulerStep(decay, float64(i)*dt, y, dt, nil)
	}
	want := math.Exp(-1)
	if math.Abs(y[0]-want) > 1e-3 {
		t.Fatalf("Euler decay = %g, want %g", y[0], want)
	}
}

func TestRK4MoreAccurateThanEuler(t *testing.T) {
	dt := 0.1
	yr := []float64{1}
	ye := []float64{1}
	for i := 0; i < 10; i++ {
		RK4Step(decay, float64(i)*dt, yr, dt, nil)
		EulerStep(decay, float64(i)*dt, ye, dt, nil)
	}
	want := math.Exp(-1)
	if math.Abs(yr[0]-want) >= math.Abs(ye[0]-want) {
		t.Fatalf("RK4 err %g not better than Euler err %g", math.Abs(yr[0]-want), math.Abs(ye[0]-want))
	}
}

func TestRK4CoupledSystem(t *testing.T) {
	// Harmonic oscillator: y'' = -y, energy conserved.
	f := func(_ float64, y, d []float64) {
		d[0] = y[1]
		d[1] = -y[0]
	}
	y := []float64{1, 0}
	scratch := NewScratch(2)
	dt := 0.01
	for i := 0; i < 6283; i++ { // ~one period (2π)
		RK4Step(f, float64(i)*dt, y, dt, scratch)
	}
	if math.Abs(y[0]-1) > 1e-3 || math.Abs(y[1]) > 1e-2 {
		t.Fatalf("oscillator after one period = %v", y)
	}
}

func TestTrapezoidIntegrate(t *testing.T) {
	// ∫0..1 x dx = 0.5 with 11 samples.
	ys := make([]float64, 11)
	for i := range ys {
		ys[i] = float64(i) / 10
	}
	got := TrapezoidIntegrate(ys, 0.1)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("trapezoid = %g", got)
	}
	if TrapezoidIntegrate([]float64{3}, 1) != 0 {
		t.Fatal("single sample integrates to 0")
	}
	if TrapezoidIntegrate(nil, 1) != 0 {
		t.Fatal("nil integrates to 0")
	}
}

func TestTrapezoidConstant(t *testing.T) {
	ys := []float64{5, 5, 5, 5, 5}
	if got := TrapezoidIntegrate(ys, 2); got != 40 {
		t.Fatalf("constant integral = %g, want 40", got)
	}
}
