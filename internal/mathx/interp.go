package mathx

import (
	"fmt"
	"sort"
)

// Interpolator performs piecewise-linear interpolation over a strictly
// increasing set of x values.
type Interpolator struct {
	xs, ys []float64
}

// NewInterpolator builds a linear interpolator from parallel slices. The xs
// must be strictly increasing and at least two points long.
func NewInterpolator(xs, ys []float64) (*Interpolator, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("mathx: interpolator length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("mathx: interpolator needs >=2 points, got %d", len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("mathx: interpolator xs not strictly increasing at %d (%g <= %g)", i, xs[i], xs[i-1])
		}
	}
	return &Interpolator{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
	}, nil
}

// At evaluates the interpolant, clamping outside the domain to the endpoint
// values (flat extrapolation).
func (in *Interpolator) At(x float64) float64 {
	n := len(in.xs)
	if x <= in.xs[0] {
		return in.ys[0]
	}
	if x >= in.xs[n-1] {
		return in.ys[n-1]
	}
	i := sort.SearchFloat64s(in.xs, x)
	// xs[i-1] < x <= xs[i]
	x0, x1 := in.xs[i-1], in.xs[i]
	y0, y1 := in.ys[i-1], in.ys[i]
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// Domain returns the x range covered by the interpolator.
func (in *Interpolator) Domain() (lo, hi float64) { return in.xs[0], in.xs[len(in.xs)-1] }

// Bisect finds a root of f within [lo, hi] assuming f(lo) and f(hi) bracket
// zero. It returns the midpoint after converging to tol or 200 iterations.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if flo*fhi > 0 {
		return 0, fmt.Errorf("mathx: bisect endpoints do not bracket a root: f(%g)=%g f(%g)=%g", lo, flo, hi, fhi)
	}
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if flo*fm < 0 {
			hi = mid
		} else {
			lo, flo = mid, fm
		}
	}
	return 0.5 * (lo + hi), nil
}

// FixedPoint iterates x ← f(x) until |Δx| < tol, returning the fixed point.
// It gives up after maxIter iterations and reports the last value with an
// error, which matters for detecting thermal runaway in steady-state solves.
func FixedPoint(f func(float64) float64, x0, tol float64, maxIter int) (float64, error) {
	x := x0
	for i := 0; i < maxIter; i++ {
		next := f(x)
		if diff := next - x; diff < tol && diff > -tol {
			return next, nil
		}
		x = next
	}
	return x, fmt.Errorf("mathx: fixed point did not converge after %d iterations (last=%g)", maxIter, x)
}
