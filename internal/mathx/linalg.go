// Package mathx provides the numerical routines the reproduction needs:
// dense linear solves, Levenberg–Marquardt nonlinear least squares, 1-D
// interpolation, scalar root finding and explicit ODE stepping.
//
// Everything is small, dense and allocation-light; the problem sizes in this
// project are a handful of parameters and a few thousand samples.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular matrix")

// SolveLinear solves the n×n system a·x = b using Gaussian elimination
// with partial pivoting. a and b are not modified; the solution is returned
// as a fresh slice. It is the copying wrapper around SolveLinearInPlace.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("mathx: bad system shape %dx? vs b=%d", n, len(b))
	}
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("mathx: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)
	if err := SolveLinearInPlace(m, x); err != nil {
		return nil, err
	}
	return x, nil
}

// Dot returns the inner product of two equally sized vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }
