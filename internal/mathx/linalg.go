// Package mathx provides the numerical routines the reproduction needs:
// dense linear solves, Levenberg–Marquardt nonlinear least squares, 1-D
// interpolation, scalar root finding and explicit ODE stepping.
//
// Everything is small, dense and allocation-light; the problem sizes in this
// project are a handful of parameters and a few thousand samples.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular matrix")

// SolveLinear solves the n×n system a·x = b in place using Gaussian
// elimination with partial pivoting. a and b are not modified; the solution
// is returned as a fresh slice.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("mathx: bad system shape %dx? vs b=%d", n, len(b))
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("mathx: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]

		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// Dot returns the inner product of two equally sized vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }
