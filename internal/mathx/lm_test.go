package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestLMLinearFit(t *testing.T) {
	// Fit y = a·x + b to exact data.
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 1.25
	}
	fn := func(p, out []float64) {
		for i, x := range xs {
			out[i] = p[0]*x + p[1] - ys[i]
		}
	}
	res, err := LevenbergMarquardt(fn, []float64{0, 0}, len(xs), LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-2.5) > 1e-6 || math.Abs(res.Params[1]+1.25) > 1e-6 {
		t.Fatalf("params = %v, want [2.5 -1.25]", res.Params)
	}
	if res.RMSE > 1e-6 {
		t.Fatalf("RMSE = %g on exact data", res.RMSE)
	}
}

func TestLMExponentialFit(t *testing.T) {
	// The fit that matters for the paper: y = c + k2·e^(k3·T).
	const c, k2, k3 = 10.0, 0.3231, 0.04749
	temps := []float64{45, 50, 55, 60, 65, 70, 75, 80, 85}
	ys := make([]float64, len(temps))
	for i, T := range temps {
		ys[i] = c + k2*math.Exp(k3*T)
	}
	fn := func(p, out []float64) {
		for i, T := range temps {
			out[i] = p[0] + p[1]*math.Exp(p[2]*T) - ys[i]
		}
	}
	res, err := LevenbergMarquardt(fn, []float64{5, 1, 0.03}, len(temps), LMOptions{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-c) > 0.05 || math.Abs(res.Params[1]-k2) > 0.02 || math.Abs(res.Params[2]-k3) > 0.002 {
		t.Fatalf("params = %v, want [%g %g %g] (rmse %g)", res.Params, c, k2, k3, res.RMSE)
	}
}

func TestLMNoisyFitIsClose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const a, b = 3.0, -2.0
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / 10
		ys[i] = a*xs[i] + b + rng.NormFloat64()*0.1
	}
	fn := func(p, out []float64) {
		for i := range xs {
			out[i] = p[0]*xs[i] + p[1] - ys[i]
		}
	}
	res, err := LevenbergMarquardt(fn, []float64{1, 1}, n, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-a) > 0.02 || math.Abs(res.Params[1]-b) > 0.05 {
		t.Fatalf("noisy params = %v", res.Params)
	}
	if res.RMSE > 0.2 {
		t.Fatalf("noisy RMSE = %g", res.RMSE)
	}
}

func TestLMAlreadyConverged(t *testing.T) {
	fn := func(p, out []float64) {
		out[0] = p[0] - 4
	}
	res, err := LevenbergMarquardt(fn, []float64{4}, 1, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("should report converged when starting at the optimum")
	}
}

func TestLMReducesCostMonotonically(t *testing.T) {
	// Rosenbrock-style residuals: hard but solvable.
	fn := func(p, out []float64) {
		out[0] = 10 * (p[1] - p[0]*p[0])
		out[1] = 1 - p[0]
	}
	res, err := LevenbergMarquardt(fn, []float64{-1.2, 1}, 2, LMOptions{MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-1) > 1e-3 || math.Abs(res.Params[1]-1) > 1e-3 {
		t.Fatalf("rosenbrock solution = %v, want [1 1]", res.Params)
	}
}
