package mathx

import (
	"fmt"
	"math"
)

// Expm computes the matrix exponential exp(A) of a dense square matrix using
// scaling-and-squaring with a [6/6] Padé approximant (Moler & Van Loan,
// method 3). The input is not modified.
//
// The intended use is the exact discrete propagator of a linear ODE
// dT/dt = A·T + u: exp(A·h) advances the homogeneous part by h exactly, for
// any h, which is what lets the thermal network replace many RK4 substeps
// with one cached matvec.
func Expm(a [][]float64) ([][]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, nil
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("mathx: expm of non-square matrix: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		for j := range a[i] {
			if math.IsNaN(a[i][j]) || math.IsInf(a[i][j], 0) {
				return nil, fmt.Errorf("mathx: expm input not finite at (%d,%d)", i, j)
			}
		}
	}

	// Scale A by 2^-s so its infinity norm is at most 1/2; the Padé
	// approximant is then accurate to near machine precision.
	norm := 0.0
	for i := range a {
		row := 0.0
		for j := range a[i] {
			row += math.Abs(a[i][j])
		}
		if row > norm {
			norm = row
		}
	}
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	scale := math.Ldexp(1, -s)
	as := make([][]float64, n)
	for i := range a {
		as[i] = make([]float64, n)
		for j := range a[i] {
			as[i][j] = a[i][j] * scale
		}
	}

	// [6/6] Padé: N = Σ c_k A^k, D = Σ (-1)^k c_k A^k with
	// c_0 = 1, c_k = c_{k-1}·(q-k+1)/(k·(2q-k+1)), q = 6.
	const q = 6
	num := eye(n)
	den := eye(n)
	pow := eye(n)
	c := 1.0
	sign := 1.0
	for k := 1; k <= q; k++ {
		c *= float64(q-k+1) / float64(k*(2*q-k+1))
		sign = -sign
		pow = matMul(pow, as)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				num[i][j] += c * pow[i][j]
				den[i][j] += sign * c * pow[i][j]
			}
		}
	}

	f, err := solveMatrix(den, num)
	if err != nil {
		return nil, fmt.Errorf("mathx: expm Padé denominator: %w", err)
	}
	for ; s > 0; s-- {
		f = matMul(f, f)
	}
	return f, nil
}

// ExpmIntegral returns the exact discretization pair of the linear system
// dT/dt = A·T + u over a step h:
//
//	ad  = exp(A·h)
//	phi = ∫₀ʰ exp(A·s) ds
//
// so that T(t+h) = ad·T(t) + phi·u for u constant over the step. Both are
// read off one exponential of the augmented matrix [[A·h, h·I], [0, 0]]
// (Van Loan's block trick), which stays well defined even when A is
// singular, unlike the closed form A⁻¹(ad − I).
func ExpmIntegral(a [][]float64, h float64) (ad, phi [][]float64, err error) {
	n := len(a)
	if n == 0 {
		return nil, nil, nil
	}
	if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
		return nil, nil, fmt.Errorf("mathx: expm integral needs positive finite step, got %g", h)
	}
	m := make([][]float64, 2*n)
	for i := range m {
		m[i] = make([]float64, 2*n)
	}
	for i := 0; i < n; i++ {
		if len(a[i]) != n {
			return nil, nil, fmt.Errorf("mathx: expm integral of non-square matrix: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		for j := 0; j < n; j++ {
			m[i][j] = a[i][j] * h
		}
		m[i][n+i] = h
	}
	e, err := Expm(m)
	if err != nil {
		return nil, nil, err
	}
	ad = make([][]float64, n)
	phi = make([][]float64, n)
	for i := 0; i < n; i++ {
		ad[i] = e[i][:n:n]
		phi[i] = e[i][n:]
	}
	return ad, phi, nil
}

// SolveLinearInPlace solves a·x = b by Gaussian elimination with partial
// pivoting, destroying a and leaving the solution in b. It is the
// allocation-light core of SolveLinear for callers that own reusable
// buffers (the thermal steady-state solver calls it in a loop).
func SolveLinearInPlace(a [][]float64, b []float64) error {
	n := len(a)
	if n == 0 || len(b) != n {
		return fmt.Errorf("mathx: bad system shape %dx? vs b=%d", n, len(b))
	}
	for i := range a {
		if len(a[i]) != n {
			return fmt.Errorf("mathx: row %d has %d columns, want %d", i, len(a[i]), n)
		}
	}
	// Give the RHS rows independent storage so solveRows may pivot-swap row
	// headers without permuting b's layout underneath the caller.
	backing := append([]float64(nil), b...)
	rhs := make([][]float64, n)
	for i := range rhs {
		rhs[i] = backing[i : i+1 : i+1]
	}
	if err := solveRows(a, rhs); err != nil {
		return err
	}
	for i := range rhs {
		b[i] = rhs[i][0]
	}
	return nil
}

// solveRows is the one Gaussian-elimination core: it solves m·X = R in
// place with partial pivoting, where rhs[i] is the i-th row of R (any
// width). Both m and rhs are destroyed; the solution rows land in rhs.
func solveRows(m [][]float64, rhs [][]float64) error {
	n := len(m)
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]

		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			for c := range rhs[r] {
				rhs[r][c] -= f * rhs[col][c]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		row := rhs[i]
		for c := range row {
			s := row[c]
			for k := i + 1; k < n; k++ {
				s -= m[i][k] * rhs[k][c]
			}
			row[c] = s / m[i][i]
		}
	}
	return nil
}

// eye returns the n×n identity matrix.
func eye(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	return m
}

// matMul returns a·b for square matrices of equal size.
func matMul(a, b [][]float64) [][]float64 {
	n := len(a)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			aik := a[i][k]
			if aik == 0 {
				continue
			}
			row := b[k]
			for j := 0; j < n; j++ {
				out[i][j] += aik * row[j]
			}
		}
	}
	return out
}

// solveMatrix solves d·F = nmat with one elimination of d applied to every
// column of nmat. Both inputs are copied, not modified.
func solveMatrix(d, nmat [][]float64) ([][]float64, error) {
	n := len(d)
	m := make([][]float64, n)
	f := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = append([]float64(nil), d[i]...)
		f[i] = append([]float64(nil), nmat[i]...)
	}
	if err := solveRows(m, f); err != nil {
		return nil, err
	}
	return f, nil
}
