package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearIdentity(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := []float64{3, -7}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != -7 {
		t.Fatalf("identity solve = %v", x)
	}
}

func TestSolveLinearKnown(t *testing.T) {
	// 2x + y = 5; x - y = 1  => x=2, y=1
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("solve = %v, want [2 1]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal requires a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("solve = %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveLinearShapeErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("empty system should error")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square system should error")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched b should error")
	}
}

func TestSolveLinearDoesNotMutateInputs(t *testing.T) {
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[1][1] != -1 || b[0] != 5 {
		t.Fatal("inputs were mutated")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		a := make([][]float64, n)
		xTrue := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) // diagonally dominant => nonsingular
			xTrue[i] = rng.NormFloat64() * 10
		}
		b := make([]float64, n)
		for i := range b {
			for j := 0; j < n; j++ {
				b[i] += a[i][j] * xTrue[j]
			}
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d]=%g want %g", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2 wrong")
	}
	if Norm2(nil) != 0 {
		t.Error("Norm2(nil) should be 0")
	}
}

func TestDotSymmetry(t *testing.T) {
	f := func(a, b [4]float64) bool {
		for i := range a {
			// Avoid overflow to ±Inf, where Inf-Inf sums become NaN and
			// NaN != NaN would make even bitwise-identical results "differ".
			if math.Abs(a[i]) > 1e150 || math.Abs(b[i]) > 1e150 {
				return true
			}
		}
		return Dot(a[:], b[:]) == Dot(b[:], a[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
