package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind tags a metric in Snapshot output.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// Counter is a monotonically increasing int64. The zero value is unusable;
// obtain counters from Registry.Counter. All methods are safe on a nil
// receiver (no registry attached) and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 cell. Set is last-writer-wins and therefore only
// deterministic from serial sections; SetMax commutes and may be used from
// concurrent runs sharing a registry. Starts at 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Serial sections only (last writer wins).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v exceeds the current value. Max
// commutes, so concurrent SetMax calls stay deterministic.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value; 0 on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets with ascending upper
// bounds (a final +Inf bucket is implicit). Observing integer-valued
// samples keeps the running sum exact in float64, which is what makes a
// shared histogram order-independent across concurrent runs.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	n      atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// HistView is an immutable snapshot of a histogram. Counts are cumulative
// (Prometheus-style): Counts[i] is the number of samples <= Bounds[i], and
// the final entry (the implicit +Inf bucket) equals Count.
type HistView struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

func (h *Histogram) view() *HistView {
	v := &HistView{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.n.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		v.Counts[i] = cum
	}
	return v
}

// ExpBuckets returns n exponentially spaced upper bounds: start,
// start·factor, start·factor², … — the usual ladder for window lengths.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Registry is a named set of metrics. The zero value is unusable; use
// NewRegistry. All methods are safe on a nil receiver: lookups return nil
// handles whose operations are no-ops, so "no registry" costs one nil
// check on the hot path and nothing else.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

func (r *Registry) taken(name string, self Kind) {
	if self != KindCounter {
		if _, ok := r.counters[name]; ok {
			panic("obs: " + name + " already registered as a counter")
		}
	}
	if self != KindGauge {
		if _, ok := r.gauges[name]; ok {
			panic("obs: " + name + " already registered as a gauge")
		}
	}
	if self != KindHistogram {
		if _, ok := r.hists[name]; ok {
			panic("obs: " + name + " already registered as a histogram")
		}
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op handle) on a nil registry. Panics if name is
// already registered as a different kind.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.taken(name, KindCounter)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.taken(name, KindGauge)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending upper bounds on first use. Panics if name exists
// with different bounds — concurrent runs sharing a registry must agree.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic("obs: " + name + " re-registered with different bounds")
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic("obs: " + name + " re-registered with different bounds")
			}
		}
		return h
	}
	r.taken(name, KindHistogram)
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("obs: " + name + " bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// Metric is one entry of a Snapshot.
type Metric struct {
	Name  string
	Kind  Kind
	Value float64   // counter (exact below 2^53) or gauge value
	Hist  *HistView // histogram kinds only
}

// Snapshot returns every metric sorted by name. Sorting is what keeps the
// dump independent of registration order, which varies across worker
// schedules.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, Metric{Name: name, Kind: KindHistogram, Hist: h.view()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return formatFloat(b)
}

// WriteText writes the sorted plain-text dump evalctl -metrics prints.
// Counters print as integers, gauges as shortest-round-trip floats, and
// histograms expand to cumulative .bucket{le=...} lines plus .count and
// .sum — the same shape as the Prometheus export, keeping the two surfaces
// diffable against each other.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		var err error
		switch m.Kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.Name, int64(m.Value))
		case KindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", m.Name, formatFloat(m.Value))
		case KindHistogram:
			err = writeHist(w, m.Name, m.Hist, ".bucket", ".sum", ".count")
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHist(w io.Writer, name string, h *HistView, bucket, sum, count string) error {
	for i, c := range h.Counts {
		b := math.Inf(1)
		if i < len(h.Bounds) {
			b = h.Bounds[i]
		}
		if _, err := fmt.Fprintf(w, "%s%s{le=%q} %d\n", name, bucket, formatBound(b), c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s%s %s\n", name, sum, formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, count, h.Count)
	return err
}

// PromName sanitizes a dotted metric (or telemetry sensor) name into the
// Prometheus charset: dots and any other disallowed rune become '_', and a
// leading digit gains a '_' prefix. Exported so the telemetry harness and
// the registry share one naming rule.
func PromName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the registry in Prometheus text exposition
// format, sorted by name, with names sanitized through PromName.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Snapshot() {
		name := PromName(m.Name)
		var err error
		switch m.Kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, int64(m.Value))
		case KindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(m.Value))
		case KindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err == nil {
				err = writeHist(w, name, m.Hist, "_bucket", "_sum", "_count")
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}
