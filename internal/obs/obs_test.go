package obs

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil metric handles")
	}
	// Every hot-path op must be a no-op, not a panic.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.SetMax(9)
	h.Observe(1.5)
	var s *Sharded
	s.Add(0, 1)
	s.ReduceInto(c)
	if c.Value() != 0 || g.Value() != 0 || s.Reduce() != 0 {
		t.Fatalf("nil handles must read zero")
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", got)
	}
}

func TestNilHandleOpsDoNotAllocate(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.SetMax(2)
		h.Observe(1)
	}); n != 0 {
		t.Fatalf("nil-handle ops allocated %v times per run", n)
	}
}

func TestLiveHandleOpsDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(1, 2, 8))
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.SetMax(2)
		h.Observe(3)
	}); n != 0 {
		t.Fatalf("live-handle ops allocated %v times per run", n)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("k.steps")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("k.steps") != c {
		t.Fatalf("re-registering a counter must return the same handle")
	}

	g := r.Gauge("k.hw")
	g.SetMax(3)
	g.SetMax(1)
	if g.Value() != 3 {
		t.Fatalf("SetMax gauge = %v, want 3", g.Value())
	}
	g.Set(0.5)
	if g.Value() != 0.5 {
		t.Fatalf("Set gauge = %v, want 0.5", g.Value())
	}

	h := r.Histogram("k.win", []float64{1, 4, 16})
	for _, v := range []float64{1, 1, 3, 20, 16} {
		h.Observe(v)
	}
	v := h.view()
	if v.Count != 5 || v.Sum != 41 {
		t.Fatalf("hist count=%d sum=%v, want 5/41", v.Count, v.Sum)
	}
	want := []uint64{2, 3, 4, 5} // cumulative: <=1, <=4, <=16, +Inf
	for i, c := range v.Counts {
		if c != want[i] {
			t.Fatalf("cumulative bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatalf("gauge under a counter's name must panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("x", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering with different bounds must panic")
		}
	}()
	r.Histogram("x", []float64{1, 3})
}

func TestWriteTextSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("c.gauge").Set(1.25)
	r.Histogram("a.hist", []float64{1, 2}).Observe(2)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `a.hist.bucket{le="1"} 0
a.hist.bucket{le="2"} 1
a.hist.bucket{le="+Inf"} 1
a.hist.sum 2
a.hist.count 1
b.count 2
c.gauge 1.25
`
	if buf.String() != want {
		t.Fatalf("WriteText:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("kernel.pin.trip-guard").Add(3)
	r.Histogram("kernel.window.len", []float64{1}).Observe(1)
	r.Gauge("sched.backlog.highwater").SetMax(7)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE kernel_pin_trip_guard counter
kernel_pin_trip_guard 3
# TYPE kernel_window_len histogram
kernel_window_len_bucket{le="1"} 1
kernel_window_len_bucket{le="+Inf"} 1
kernel_window_len_sum 1
kernel_window_len_count 1
# TYPE sched_backlog_highwater gauge
sched_backlog_highwater 7
`
	if buf.String() != want {
		t.Fatalf("WritePrometheus:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"cpu0.temp1":   "cpu0_temp1",
		"rack00.pue":   "rack00_pue",
		"trip-guard":   "trip_guard",
		"0weird":       "_0weird",
		"already_fine": "already_fine",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Fatalf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestShardedDeterministicAcrossWorkers exercises the contract the package
// doc promises: per-slot lanes written from a concurrent fan-out, reduced
// in index order, give the same bits as a serial run.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	const slots = 64
	run := func(workers int) int64 {
		s := NewSharded(slots)
		var wg sync.WaitGroup
		per := slots / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w * per; i < (w+1)*per; i++ {
					for k := 0; k <= i; k++ {
						s.Add(i, 1)
					}
				}
			}(w)
		}
		wg.Wait()
		return s.Reduce()
	}
	serial, parallel := run(1), run(8)
	want := int64(slots * (slots + 1) / 2) // lane i collects i+1 ones
	if serial != parallel || serial != want {
		t.Fatalf("sharded reduce: serial=%d parallel=%d want %d", serial, parallel, want)
	}
}

// TestConcurrentCommutativeOpsAreExact pins the shared-registry story: int
// counter adds, SetMax gauges and integer-valued histogram observations
// from many goroutines land on exact, order-independent values.
func TestConcurrentCommutativeOpsAreExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(3)
				g.SetMax(float64(w*per + i))
				h.Observe(float64(i%7 + 1))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per*3 {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per*3)
	}
	if g.Value() != workers*per-1 {
		t.Fatalf("gauge max = %v, want %v", g.Value(), workers*per-1)
	}
	v := h.view()
	wantSum := 0.0
	for i := 0; i < per; i++ {
		wantSum += float64(i%7 + 1)
	}
	wantSum *= workers
	if v.Count != workers*per || v.Sum != wantSum {
		t.Fatalf("hist count=%d sum=%v, want %d/%v", v.Count, v.Sum, workers, wantSum)
	}
	if math.IsNaN(v.Sum) {
		t.Fatalf("hist sum is NaN")
	}
}
