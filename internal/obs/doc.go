// Package obs is the run-metrics layer: a deterministic, allocation-free
// registry of counters, gauges and fixed-bucket histograms that every
// subsystem (event kernel, scheduler, rack, thermal network) instruments
// against, and that evalctl dumps after an experiment.
//
// # Determinism contract
//
// The registry mirrors internal/par's contract. A metrics dump must be
// byte-identical for every worker count, under the race detector, for the
// same inputs. Instrumented code achieves that by restricting itself to:
//
//   - serial-section updates: increments issued outside par.ForEach
//     fan-outs (the scheduler loop, fault application, post-barrier
//     reductions) carry no ordering hazard at all;
//   - per-slot shards: inside a fan-out, job i writes only Sharded lane i;
//     lanes are reduced in index order after the barrier (ReduceInto);
//   - commutative updates: when several runs of an experiment share one
//     registry across the worker pool, they may only use operations whose
//     result is order-independent — integer Counter.Add, Gauge.SetMax,
//     and Histogram.Observe with integer-valued samples (integer sums are
//     exact in float64, so accumulation order cannot change the bits).
//
// Exports (Snapshot, WriteText, WritePrometheus) sort by metric name, so
// registration order — which does vary across worker schedules — never
// leaks into output.
//
// # Cost contract
//
// Every hot-path method (Add, Inc, Set, SetMax, Observe, Sharded.Add) is
// allocation-free and nil-receiver-safe: with no registry attached the
// instrumented code paths pay one nil check and allocate nothing, which is
// what keeps the zero-allocation pins on server.Step, server.MacroStep and
// rack.Step intact. Registration (Registry.Counter et al.) allocates and
// takes a lock; fetch metric handles once per run, not per step.
package obs
