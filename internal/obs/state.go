package obs

import (
	"fmt"
	"math"
	"sort"
)

// CounterState, GaugeState and HistState are the serializable images of the
// three metric kinds. ExportState emits them as name-sorted slices — never
// maps — because the gob transport encodes map iteration order, which would
// make otherwise-identical checkpoints byte-unequal.
type CounterState struct {
	Name  string
	Value int64
}

// GaugeState is the serializable image of one gauge.
type GaugeState struct {
	Name  string
	Value float64
}

// HistState is the serializable image of one histogram: raw per-bucket
// counts (not the cumulative view), so an import reconstructs the exact
// internal cells.
type HistState struct {
	Name   string
	Bounds []float64
	Counts []uint64 // len(Bounds)+1; last is the +Inf bucket
	N      uint64
	Sum    float64
}

// State is a complete, deterministic image of a Registry for checkpointing.
type State struct {
	Counters []CounterState
	Gauges   []GaugeState
	Hists    []HistState
}

// ExportState captures every metric, sorted by name. Like Snapshot it may
// run concurrently with metric updates, but a deterministic image requires
// the usual serial-section discipline (call it between steps).
func (r *Registry) ExportState() State {
	if r == nil {
		return State{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var st State
	for name, c := range r.counters {
		st.Counters = append(st.Counters, CounterState{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		st.Gauges = append(st.Gauges, GaugeState{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hs := HistState{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			N:      h.n.Load(),
			Sum:    math.Float64frombits(h.sum.Load()),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		st.Hists = append(st.Hists, hs)
	}
	sort.Slice(st.Counters, func(i, j int) bool { return st.Counters[i].Name < st.Counters[j].Name })
	sort.Slice(st.Gauges, func(i, j int) bool { return st.Gauges[i].Name < st.Gauges[j].Name })
	sort.Slice(st.Hists, func(i, j int) bool { return st.Hists[i].Name < st.Hists[j].Name })
	return st
}

// ImportState loads a captured State, creating metrics as needed and
// overwriting their values. It validates the image instead of panicking —
// checkpoint files are external input — and is a no-op on a nil registry.
func (r *Registry) ImportState(st State) error {
	if r == nil {
		return nil
	}
	names := make(map[string]bool)
	dup := func(name string) error {
		if name == "" {
			return fmt.Errorf("obs: state has an unnamed metric")
		}
		if names[name] {
			return fmt.Errorf("obs: state registers %q twice", name)
		}
		names[name] = true
		return nil
	}
	for _, hs := range st.Hists {
		if err := dup(hs.Name); err != nil {
			return err
		}
		if len(hs.Counts) != len(hs.Bounds)+1 {
			return fmt.Errorf("obs: histogram %q has %d buckets for %d bounds", hs.Name, len(hs.Counts), len(hs.Bounds))
		}
		for i := 1; i < len(hs.Bounds); i++ {
			if !(hs.Bounds[i] > hs.Bounds[i-1]) {
				return fmt.Errorf("obs: histogram %q bounds not strictly ascending", hs.Name)
			}
		}
	}
	for _, cs := range st.Counters {
		if err := dup(cs.Name); err != nil {
			return err
		}
	}
	for _, gs := range st.Gauges {
		if err := dup(gs.Name); err != nil {
			return err
		}
	}
	// Pre-check the live registry so a conflicting image returns an error
	// instead of tripping the registration panics (checkpoint files are
	// external input).
	r.mu.Lock()
	for _, cs := range st.Counters {
		if _, ok := r.gauges[cs.Name]; ok {
			r.mu.Unlock()
			return fmt.Errorf("obs: %q already registered as a gauge", cs.Name)
		}
		if _, ok := r.hists[cs.Name]; ok {
			r.mu.Unlock()
			return fmt.Errorf("obs: %q already registered as a histogram", cs.Name)
		}
	}
	for _, gs := range st.Gauges {
		if _, ok := r.counters[gs.Name]; ok {
			r.mu.Unlock()
			return fmt.Errorf("obs: %q already registered as a counter", gs.Name)
		}
		if _, ok := r.hists[gs.Name]; ok {
			r.mu.Unlock()
			return fmt.Errorf("obs: %q already registered as a histogram", gs.Name)
		}
	}
	for _, hs := range st.Hists {
		if _, ok := r.counters[hs.Name]; ok {
			r.mu.Unlock()
			return fmt.Errorf("obs: %q already registered as a counter", hs.Name)
		}
		if _, ok := r.gauges[hs.Name]; ok {
			r.mu.Unlock()
			return fmt.Errorf("obs: %q already registered as a gauge", hs.Name)
		}
		if h, ok := r.hists[hs.Name]; ok {
			if len(h.bounds) != len(hs.Bounds) {
				r.mu.Unlock()
				return fmt.Errorf("obs: histogram %q re-registered with different bounds", hs.Name)
			}
			for i := range hs.Bounds {
				if h.bounds[i] != hs.Bounds[i] {
					r.mu.Unlock()
					return fmt.Errorf("obs: histogram %q re-registered with different bounds", hs.Name)
				}
			}
		}
	}
	r.mu.Unlock()
	for _, cs := range st.Counters {
		c := r.Counter(cs.Name)
		c.v.Store(cs.Value)
	}
	for _, gs := range st.Gauges {
		r.Gauge(gs.Name).Set(gs.Value)
	}
	for _, hs := range st.Hists {
		h := r.Histogram(hs.Name, hs.Bounds)
		for i := range h.counts {
			h.counts[i].Store(hs.Counts[i])
		}
		h.n.Store(hs.N)
		h.sum.Store(math.Float64bits(hs.Sum))
	}
	return nil
}
