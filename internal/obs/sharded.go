package obs

// Sharded is the fan-out counterpart of Counter: one int64 lane per slot,
// padded a cache line apart. Inside a par.ForEach fan-out, job i writes
// only lane i — exclusive access, so plain (non-atomic) adds are race-free
// and cost a single store. After the barrier, ReduceInto folds the lanes
// into a Counter serially in index order, which is what keeps the total
// byte-identical for every worker count.
type Sharded struct {
	lanes []lane
}

type lane struct {
	v int64
	_ [7]int64 // pad to 64 bytes so neighbouring slots never share a line
}

// NewSharded returns a shard set with one lane per slot.
func NewSharded(slots int) *Sharded {
	return &Sharded{lanes: make([]lane, slots)}
}

// Add increments lane slot by n. Call only from the job that owns slot.
// Safe on a nil receiver.
func (s *Sharded) Add(slot int, n int64) {
	if s == nil {
		return
	}
	s.lanes[slot].v += n
}

// Reduce sums the lanes in index order. Call after the barrier only.
func (s *Sharded) Reduce() int64 {
	if s == nil {
		return 0
	}
	var sum int64
	for i := range s.lanes {
		sum += s.lanes[i].v
	}
	return sum
}

// ReduceInto adds the lane sum to c and zeroes the lanes, readying the
// shard set for the next fan-out window. Call after the barrier only.
func (s *Sharded) ReduceInto(c *Counter) {
	if s == nil {
		return
	}
	var sum int64
	for i := range s.lanes {
		sum += s.lanes[i].v
		s.lanes[i].v = 0
	}
	c.Add(sum)
}
