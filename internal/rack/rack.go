package rack

import (
	"fmt"
	"math"

	"repro/internal/control"
	"repro/internal/cooling"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/reliability"
	"repro/internal/server"
	"repro/internal/units"
)

// ServerSpec configures one slot of the rack. Specs may differ arbitrarily
// across slots — ambient (cold/hot aisle position), fan bank, DIMM count,
// noise seed — which is what makes placement policies interesting.
type ServerSpec struct {
	Name   string
	Config server.Config
	// PSU, when non-nil, is this slot's power supply: the server's DC draw
	// is converted to AC input through its load-dependent efficiency curve
	// before being summed into the rack's PDU. nil falls back to the rack
	// Config.PSU default; if that is nil too the slot's supply is ideal
	// (lossless), which keeps wall-side telemetry equal to the DC side.
	PSU *power.PSUModel
	// Controller, when non-nil, is the per-server fan-control policy,
	// ticked once per rack step. Unlike the single-server harness — which
	// feeds controllers a sar-style moving average because PWM toggles the
	// load 0↔100% every step — the rack feeds the instantaneous
	// utilization: dispatcher loads are piecewise-constant aggregates that
	// change only at job arrivals/completions, so a windowed monitor would
	// add lag without smoothing anything. The rack takes ownership:
	// controllers are stateful and must not be shared across servers or
	// racks.
	Controller control.Controller
}

// Config parameterizes a Rack.
type Config struct {
	Servers []ServerSpec
	// Workers bounds the per-server step fan-out: ≤ 0 means GOMAXPROCS,
	// 1 is the serial reference path the parallel runs are tested against.
	Workers int
	// PSU, when non-nil, is the default per-server power supply applied to
	// every slot that does not carry its own ServerSpec.PSU.
	PSU *power.PSUModel
	// PDU, when non-nil, is the shared rack-level distribution unit: the
	// summed PSU inputs pass through its efficiency curve to become the
	// wall draw at the utility feed. nil means an ideal (lossless) PDU.
	PDU *power.PDUModel
	// Facility, when non-nil, closes the loop past the wall: every wall
	// Watt becomes room heat the CRAC/chiller chain removes at a load- and
	// setpoint-dependent cost, and the CRAC's cold-aisle setpoint shifts
	// every server's ambient by the same delta relative to the reference
	// supply temperature (see cooling.CRACModel). nil means no facility is
	// modelled: cooling power is exactly zero, PUE is exactly 1, server
	// ambients are untouched, and every pre-existing metric is bit
	// identical to a facility-less rack.
	Facility *cooling.Facility
	// ReliabilitySampleEvery, in seconds, turns on the per-server
	// reliability roll-up: every server's hottest die temperature is
	// sampled at this cadence (at the observation instant of the step or
	// macro window crossing each sample time) and summarized as a
	// reliability.Report in the telemetry. 0 — the default — disables
	// sampling, leaving every metric bit-identical to a rack without the
	// feature. Under event stepping, align the trace runner's SampleEvery
	// with this cadence so samples land on exact grid instants in both
	// stepping modes.
	ReliabilitySampleEvery float64
}

// Health is the scheduler-facing state of one rack slot.
type Health int

const (
	// Healthy slots accept placements.
	Healthy Health = iota
	// Tripped means the server's thermal protection latched (naturally or
	// via fault.ServerTrip). The machine is up and cooling itself, but the
	// dispatcher must drain it: jobs on it are killed and no new work may
	// be placed until an explicit trip reset clears the latch.
	Tripped
	// Failed means the server is dark (fault.PSUFail): zero draw, zero
	// capacity, jobs on it are gone.
	Failed
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Tripped:
		return "tripped"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("rack.Health(%d)", int(h))
}

// serverState is the slot-i state a step job owns exclusively.
type serverState struct {
	name       string
	srv        *server.Server
	ctrl       control.Controller
	psu        *power.PSUModel // nil = ideal (lossless) supply
	load       units.Percent
	fanChanges int

	// psuDerate is the summed fault.PSUDroop severity on this slot: the AC
	// input for a given DC load is inflated by 1/(1−psuDerate). Overlapping
	// droop windows compose additively and must sum below 1.
	psuDerate float64

	// Per-macro-window scratch (Advance): the energy meter at window start
	// and the temperature maxima sampled at every sub-step boundary, folded
	// into the rack aggregates serially after the barrier.
	winEnergy0  float64
	winMaxCPUC  float64
	winMaxDIMMC float64
	winMaxInlet float64
}

// psuIn returns the AC power this slot draws from the PDU to deliver its
// current DC load — the identity when no PSU is configured and no droop
// fault is active.
func (st *serverState) psuIn(dc float64) float64 {
	w := dc
	if st.psu != nil {
		w = float64(st.psu.Wall(units.Watts(dc)))
	}
	if st.psuDerate > 0 {
		w /= 1 - st.psuDerate
	}
	return w
}

// Rack is a set of simulated servers stepped in lockstep.
type Rack struct {
	servers []*serverState
	workers int
	pdu     *power.PDUModel   // nil = ideal (lossless) distribution
	fac     *cooling.Facility // nil = no facility: cooling exactly zero
	clock   float64

	// Rack-level running aggregates, reduced serially after each step.
	peakPowerW float64
	maxCPUC    float64
	maxDIMMC   float64
	maxInletC  float64

	// Wall-side (AC) accounting through the PSU/PDU delivery chain. The
	// last* pair is the instantaneous draw at the most recent observation;
	// the energies integrate it per step in index order, so wall telemetry
	// inherits the determinism contract unchanged.
	lastDCW     float64
	lastWallW   float64
	peakWallW   float64
	dcEnergyJ   float64
	wallEnergyJ float64

	// Facility-side accounting past the wall: the CRAC/chiller power spent
	// removing the wall heat, and the total facility draw. facEnergyJ is
	// integrated per step from the instantaneous facility power — not
	// derived from the other meters — so the FacilityEnergy = WallEnergy +
	// CoolingEnergy identity is a genuine property of the accounting.
	lastCoolW   float64
	peakFacW    float64
	coolEnergyJ float64
	facEnergyJ  float64

	// Facility-scope fault state: cracOut counts active CRAC outages (the
	// room unit is dark, cooling power exactly zero); chillerDerate is the
	// summed fault.ChillerDegraded severity inflating cooling power by
	// 1/(1−derate).
	cracOut       int
	chillerDerate float64

	// Lifetime fault-edge counters (ApplyFault/ClearFault successes),
	// folded into the run-metrics registry by MetricsInto.
	faultsApplied int
	faultsCleared int

	// Reliability sampling (Config.ReliabilitySampleEvery): per-server
	// hottest-die traces appended serially at observation instants.
	relEvery   float64
	relNext    float64
	relSamples [][]float64

	// Prebuilt fan-out closures with their per-call arguments staged in
	// fields: a closure passed to par.ForEach escapes (the parallel branch
	// hands it to goroutines), so building it per Step would cost one heap
	// allocation per step. The arguments are written before the fan-out
	// starts, which the goroutine-creation happens-before edge orders.
	argNow   float64
	argDt    float64
	argSteps int
	stepFn   func(i int)
	tickFn   func(i int)
	advFn    func(i int)
}

// New builds a rack, constructing every server from its spec. With a
// facility attached, the CRAC setpoint's ambient delta is applied to every
// server configuration before construction, so the machines settle at the
// inlet temperature the cold aisle actually supplies.
func New(cfg Config) (*Rack, error) {
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("rack: need at least one server")
	}
	var ambientDelta units.Celsius
	if cfg.Facility != nil {
		if err := cfg.Facility.Validate(); err != nil {
			return nil, fmt.Errorf("rack: facility: %w", err)
		}
		ambientDelta = cfg.Facility.AmbientDelta()
	}
	r := &Rack{workers: cfg.Workers, pdu: cfg.PDU, fac: cfg.Facility}
	if cfg.ReliabilitySampleEvery > 0 {
		r.relEvery = cfg.ReliabilitySampleEvery
		r.relNext = cfg.ReliabilitySampleEvery
		r.relSamples = make([][]float64, len(cfg.Servers))
	}
	for i, spec := range cfg.Servers {
		spec.Config = spec.Config.ShiftAmbient(ambientDelta)
		srv, err := server.New(spec.Config)
		if err != nil {
			return nil, fmt.Errorf("rack: server %d (%s): %w", i, spec.Name, err)
		}
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("srv%02d", i)
		}
		if spec.Controller != nil {
			spec.Controller.Reset()
		}
		psu := spec.PSU
		if psu == nil {
			psu = cfg.PSU
		}
		r.servers = append(r.servers, &serverState{name: name, srv: srv, ctrl: spec.Controller, psu: psu})
	}
	r.stepFn = func(i int) { r.servers[i].step(r.argNow, r.argDt) }
	r.tickFn = func(i int) { r.servers[i].tick(r.argNow) }
	r.advFn = func(i int) { r.servers[i].advance(r.argDt, r.argSteps) }
	r.resetPeaks()
	return r, nil
}

// resetPeaks seeds the rack aggregates from the servers' current state,
// so a Telemetry snapshot taken right after construction or an accounting
// reset reports the present temperatures and power rather than sentinels.
func (r *Rack) resetPeaks() {
	r.peakPowerW = 0
	r.peakWallW = 0
	r.peakFacW = 0
	r.maxCPUC = -1e9
	r.maxDIMMC = -1e9
	r.maxInletC = -1e9
	r.observe()
}

// observe folds the servers' instantaneous power and temperatures into
// the rack aggregates, serially in index order, and rolls the DC draw up
// the delivery chain (per-slot PSU, then the shared PDU) into the
// instantaneous wall draw. With no PSUs and no PDU the chain is the
// identity and the wall side mirrors the DC side exactly.
func (r *Rack) observe() {
	var totalW, acInW float64
	for _, st := range r.servers {
		dc := float64(st.srv.Breakdown().Total())
		totalW += dc
		acInW += st.psuIn(dc)
		if t := float64(st.srv.MaxCPUTemp()); t > r.maxCPUC {
			r.maxCPUC = t
		}
		if t := float64(st.srv.Memory().MaxTemp()); t > r.maxDIMMC {
			r.maxDIMMC = t
		}
		if t := float64(st.srv.InletTemp()); t > r.maxInletC {
			r.maxInletC = t
		}
	}
	r.lastDCW = totalW
	r.lastWallW = r.pduIn(acInW)
	// Facility roll-up: every wall Watt is room heat the CRAC/chiller pair
	// removes. Serial scalar math after the barrier, like every reduction.
	r.lastCoolW = r.coolingPowerNow(r.lastWallW)
	if totalW > r.peakPowerW {
		r.peakPowerW = totalW
	}
	if r.lastWallW > r.peakWallW {
		r.peakWallW = r.lastWallW
	}
	if fac := r.lastWallW + r.lastCoolW; fac > r.peakFacW {
		r.peakFacW = fac
	}
}

// pduIn lifts the summed PSU inputs through the PDU to the utility feed.
func (r *Rack) pduIn(acIn float64) float64 {
	if r.pdu == nil {
		return acIn
	}
	return float64(r.pdu.Wall(units.Watts(acIn)))
}

// coolingPowerNow is the facility cooling power under the current
// facility-scope fault state: exactly zero with no facility or while a
// CRAC outage is active (the dark room unit spends nothing — the heat
// soaks the aisles instead, which the outage's ambient shift models), and
// derated by the summed chiller degradation otherwise.
func (r *Rack) coolingPowerNow(wallW float64) float64 {
	if r.fac == nil || r.cracOut > 0 {
		return 0
	}
	if r.chillerDerate > 0 {
		return r.fac.CoolingPowerDerated(wallW, r.chillerDerate)
	}
	return r.fac.CoolingPower(wallW)
}

// sampleReliability appends the per-server hottest-die temperatures for
// every sample instant the clock has crossed since the last observation.
// Serial, index order — part of the post-barrier reduction phase.
func (r *Rack) sampleReliability() {
	for r.relEvery > 0 && r.clock >= r.relNext-1e-9 {
		for i, st := range r.servers {
			r.relSamples[i] = append(r.relSamples[i], float64(st.srv.MaxCPUTemp()))
		}
		r.relNext += r.relEvery
	}
}

// NumServers returns the number of servers in the rack.
func (r *Rack) NumServers() int { return len(r.servers) }

// Server returns server i for fine-grained inspection.
func (r *Rack) Server(i int) *server.Server { return r.servers[i].srv }

// Name returns server i's name.
func (r *Rack) Name(i int) string { return r.servers[i].name }

// SetLoad sets the utilization demand applied to server i on subsequent
// steps (the dispatcher's aggregate placement for that machine).
func (r *Rack) SetLoad(i int, u units.Percent) { r.servers[i].load = u.Clamp() }

// Load returns the demand currently applied to server i.
func (r *Rack) Load(i int) units.Percent { return r.servers[i].load }

// FanChanges returns how many fan-speed changes server i's controller has
// commanded since construction or the last ResetAccounting.
func (r *Rack) FanChanges(i int) int { return r.servers[i].fanChanges }

// Now returns seconds since rack power-on.
func (r *Rack) Now() float64 { return r.clock }

// tick applies the dispatcher load and runs the slot's fan controller for
// the decision instant `now`. It touches only slot-i state. A dark slot
// (fault.PSUFail) has no controller and takes no load — both return with
// power.
func (st *serverState) tick(now float64) {
	if !st.srv.Powered() {
		return
	}
	st.srv.SetLoad(st.load)
	if st.ctrl != nil {
		obs := control.Observation{
			Now:         now,
			Utilization: st.srv.Utilization(),
			MaxCPUTemp:  maxC(st.srv.CPUTempSensorsReuse()),
			CurrentRPM:  st.srv.Fans().Target(),
		}
		if dec := st.ctrl.Tick(obs); dec.Changed {
			st.srv.Fans().SetAll(dec.Target)
			st.fanChanges++
		}
	}
}

// step advances one server by dt — the unit of work the fan-out
// schedules. It touches only slot-i state, never the rack aggregates.
func (st *serverState) step(now, dt float64) {
	st.tick(now)
	st.srv.Step(dt)
}

// advance moves one server through a `steps`-long macro window without
// controller ticks (the event kernel only grants windows every controller
// has promised to stay quiet for). The server folds temperature maxima at
// every sub-step boundary so the window cannot hide a hotter sample than
// its endpoints. Slot-i state only.
func (st *serverState) advance(dt float64, steps int) {
	st.winEnergy0 = float64(st.srv.Energy())
	st.winMaxCPUC, st.winMaxDIMMC, st.winMaxInlet = st.srv.MacroWindow(dt, steps)
}

// Step advances every server by dt seconds. The per-server work fans out
// over the bounded pool (slot-i contract); the rack-level reductions —
// simultaneous power peak and temperature maxima — run serially in index
// order afterwards, so aggregates are identical for every worker count.
func (r *Rack) Step(dt float64) {
	if dt <= 0 {
		return
	}
	r.argNow, r.argDt = r.clock, dt
	par.ForEach(len(r.servers), r.workers, r.stepFn)
	r.observe()
	// Integrate the post-step draws, mirroring the per-server energy
	// accounting (server.Step charges the breakdown taken after stepping).
	r.dcEnergyJ += r.lastDCW * dt
	r.wallEnergyJ += r.lastWallW * dt
	r.coolEnergyJ += r.lastCoolW * dt
	r.facEnergyJ += (r.lastWallW + r.lastCoolW) * dt
	r.clock += dt
	r.sampleReliability()
}

// TickControllers applies the dispatcher loads and runs every slot's fan
// controller for the decision instant `now`, exactly as the first half of
// Step does, without advancing any physics. The event-stepping kernel
// calls it at every wake step, then asks QuietHorizon how far the
// controllers allow the next Advance to reach.
func (r *Rack) TickControllers(now float64) {
	r.argNow = now
	par.ForEach(len(r.servers), r.workers, r.tickFn)
}

// QuietHorizon returns the earliest simulation time at which some slot's
// fan controller could next need a Tick, queried immediately after
// TickControllers(now). Controllers implementing control.HorizonPromiser
// are taken at their word; a slot with any other controller cannot promise
// anything beyond the current step, so the horizon collapses to now+dt —
// pinning the kernel to fixed-dt ticking, the reference semantics.
// +Inf means every controller is quiet until an input changes.
func (r *Rack) QuietHorizon(now, dt float64) float64 {
	h, _ := r.QuietHorizonCause(now, dt)
	return h
}

// QuietCause labels what bounded a QuietHorizonCause answer, for the event
// kernel's pin-reason attribution.
type QuietCause int

const (
	// QuietUnbounded: every controller is quiet until an input changes
	// (the horizon is +Inf).
	QuietUnbounded QuietCause = iota
	// QuietPromise: the nearest finite HorizonPromiser promise binds.
	QuietPromise
	// QuietNoPromiser: some controller does not implement
	// control.HorizonPromiser, collapsing the horizon to now+dt.
	QuietNoPromiser
)

// QuietHorizonCause is QuietHorizon plus the cause of the bound. The scan
// is serial in slot index order, so the attributed cause — like the
// horizon itself — is identical for every worker count.
//
// A slot whose controller additionally implements control.BandPromiser —
// the reactive bang-bang policy — can push its promise past its own next
// decision instant: the rack verifies the controller's no-action band
// against the slot's predicted die-temperature trajectory
// (server.BandDecisionHorizon) and extends the horizon over every decision
// instant proven to stay in-band.
func (r *Rack) QuietHorizonCause(now, dt float64) (float64, QuietCause) {
	h := math.Inf(1)
	cause := QuietUnbounded
	for _, st := range r.servers {
		if st.ctrl == nil {
			continue
		}
		hp, ok := st.ctrl.(control.HorizonPromiser)
		if !ok {
			return now + dt, QuietNoPromiser
		}
		if q := hp.QuietUntil(now); q < h {
			if bp, isBand := st.ctrl.(control.BandPromiser); isBand && q > now {
				q = bandQuiet(st, bp, now, dt, q)
			}
			if q < h {
				h = q
				cause = QuietPromise
			}
		}
		if h <= now+dt {
			return now + dt, QuietPromise
		}
	}
	return h, cause
}

// quietBandMaxChecks bounds the decision instants one band extension may
// verify: at the bang-bang 10 s period on the 1 s grid this spans a full
// hour-long trace, while capping the prediction work a single wake can
// spend.
const quietBandMaxChecks = 360

// bandQuiet extends slot st's base quiet promise through its controller's
// no-action band, returning base untouched whenever the extension is not
// provably exact: a withdrawn band, a decision lattice that does not sit
// on the step grid (the controller's catch-up could then diverge from the
// fixed-dt cadence), or a trajectory the thermal prediction cannot clear.
// With m instants verified in-band the kernel may sleep to the (m+1)-th.
func bandQuiet(st *serverState, bp control.BandPromiser, now, dt, base float64) float64 {
	next, period, lo, hi, ok := bp.QuietBand(now)
	if !ok || period <= 0 || next <= now {
		return base
	}
	first, ok1 := gridMultiple((next - now) / dt)
	stride, ok2 := gridMultiple(period / dt)
	if !ok1 || !ok2 {
		return base
	}
	m := st.srv.BandDecisionHorizon(dt, first, stride, quietBandMaxChecks, lo, hi)
	if m == 0 {
		return base
	}
	return next + float64(m)*period
}

// gridMultiple reports whether x is a positive integer within 1e-9
// relative tolerance, returning it when so.
func gridMultiple(x float64) (int, bool) {
	r := math.Round(x)
	if r < 1 || math.Abs(x-r) > 1e-9*math.Max(1, math.Abs(x)) {
		return 0, false
	}
	return int(r), true
}

// FansUnsettled reports whether any powered slot's fan bank is still
// slewing toward its command — the refinement that lets the kernel tell a
// fan-slew pin apart from an ordinary controller-holdoff pin when a quiet
// promise lands at the very next step.
func (r *Rack) FansUnsettled() bool {
	for _, st := range r.servers {
		if st.srv.Powered() && !st.srv.FansSettled() {
			return true
		}
	}
	return false
}

// Advance moves the whole rack through a macro window of `steps` fixed-dt
// steps without controller ticks: per-server closed-form macro-stepping
// fans out under the slot-i contract, then every rack-level reduction runs
// serially in index order, exactly like Step's. Energies are integrated
// from each server's closed-form window energy — the wall, cooling and
// facility meters see the window's mean DC draw lifted through the same
// PSU/PDU/CRAC chain as the per-step path (the chain's curvature over a
// window's sub-watt DC drift is far below the kernel's equivalence
// tolerance) — and the temperature maxima fold in every sub-step boundary
// sample collected inside the window. Advance(dt, 1) is Step(dt) minus the
// controller tick.
func (r *Rack) Advance(dt float64, steps int) {
	if dt <= 0 || steps <= 0 {
		return
	}
	r.argDt, r.argSteps = dt, steps
	par.ForEach(len(r.servers), r.workers, r.advFn)
	span := float64(steps) * dt
	var dcMeanW, acInMeanW float64
	for _, st := range r.servers {
		mean := (float64(st.srv.Energy()) - st.winEnergy0) / span
		dcMeanW += mean
		acInMeanW += st.psuIn(mean)
		if st.winMaxCPUC > r.maxCPUC {
			r.maxCPUC = st.winMaxCPUC
		}
		if st.winMaxDIMMC > r.maxDIMMC {
			r.maxDIMMC = st.winMaxDIMMC
		}
		if st.winMaxInlet > r.maxInletC {
			r.maxInletC = st.winMaxInlet
		}
	}
	wallMeanW := r.pduIn(acInMeanW)
	coolMeanW := r.coolingPowerNow(wallMeanW)
	r.dcEnergyJ += dcMeanW * span
	r.wallEnergyJ += wallMeanW * span
	r.coolEnergyJ += coolMeanW * span
	r.facEnergyJ += (wallMeanW + coolMeanW) * span
	r.observe() // endpoint instantaneous draws and peak samples
	r.clock += span
	r.sampleReliability()
}

// DCPower returns the rack's instantaneous DC draw (Σ server power) at the
// most recent observation.
func (r *Rack) DCPower() units.Watts { return units.Watts(r.lastDCW) }

// WallPower returns the rack's instantaneous AC draw at the utility feed —
// the DC draw lifted through every slot's PSU and the shared PDU.
func (r *Rack) WallPower() units.Watts { return units.Watts(r.lastWallW) }

// CoolingPower returns the instantaneous CRAC+chiller power spent removing
// the rack's wall heat — exactly zero with no facility attached.
func (r *Rack) CoolingPower() units.Watts { return units.Watts(r.lastCoolW) }

// FacilityPower returns the instantaneous total facility draw: the rack's
// wall power plus the cooling power removing it as heat.
func (r *Rack) FacilityPower() units.Watts { return units.Watts(r.lastWallW + r.lastCoolW) }

// PUE returns the instantaneous power usage effectiveness — facility power
// over IT (wall) power. A rack drawing nothing, or one with no facility
// attached, reports exactly 1.
func (r *Rack) PUE() float64 {
	if r.lastWallW <= 0 || r.lastCoolW == 0 {
		return 1
	}
	return (r.lastWallW + r.lastCoolW) / r.lastWallW
}

// Facility returns the attached cooling loop, or nil when none is
// configured (the identity: cooling power exactly zero).
func (r *Rack) Facility() *cooling.Facility { return r.fac }

// ServerDCPower returns server i's instantaneous DC draw.
func (r *Rack) ServerDCPower(i int) units.Watts {
	return r.servers[i].srv.Breakdown().Total()
}

// ServerWallPower returns the AC power server i draws from the PDU: its DC
// draw through its PSU (identical to the DC draw for an ideal supply). The
// PDU's own loss is a shared, rack-level quantity and is not attributed to
// individual slots.
func (r *Rack) ServerWallPower(i int) units.Watts {
	st := r.servers[i]
	return units.Watts(st.psuIn(float64(st.srv.Breakdown().Total())))
}

// WallPowerWith predicts the rack's wall draw if server i's DC load were
// higher by extraDC Watts, all other slots unchanged — the what-if query
// behind power-capped placement. It does not mutate any state.
func (r *Rack) WallPowerWith(i int, extraDC units.Watts) units.Watts {
	var acInW float64
	for j, st := range r.servers {
		dc := float64(st.srv.Breakdown().Total())
		if j == i {
			dc += float64(extraDC)
		}
		acInW += st.psuIn(dc)
	}
	return units.Watts(r.pduIn(acInW))
}

// WallPowerWithAll is WallPowerWith for a per-slot vector of DC
// increments (nil or short entries mean zero): the capped trace runner
// uses it to account for placements admitted earlier in the same step,
// whose power the physics has not drawn yet. It does not mutate state.
func (r *Rack) WallPowerWithAll(extraDC []units.Watts) units.Watts {
	var acInW float64
	for j, st := range r.servers {
		dc := float64(st.srv.Breakdown().Total())
		if j < len(extraDC) {
			dc += float64(extraDC[j])
		}
		acInW += st.psuIn(dc)
	}
	return units.Watts(r.pduIn(acInW))
}

// WallEnergyJoules returns the integrated wall-side (AC) energy meter in
// Joules since construction or the last ResetAccounting — the raw meter
// behind Telemetry.WallEnergyKWh. The room layer reads it at segment
// boundaries to derive each rack's mean wall draw across a macro window
// (meter delta over span), which is what the shared CRAC bank's energy
// accounting integrates.
func (r *Rack) WallEnergyJoules() float64 { return r.wallEnergyJ }

// DCEnergyJoules returns the integrated DC energy meter in Joules since
// construction or the last ResetAccounting (Σ server energy as charged by
// the rack's own per-step/per-window integration).
func (r *Rack) DCEnergyJoules() float64 { return r.dcEnergyJ }

// StateSum folds the rack's continuous state into one plain sum: the
// instantaneous power aggregates plus every server's StateSum. Any NaN or
// Inf anywhere in the thermal, fan, or power state poisons the result, so
// a single finiteness check on it is a complete divergence probe — O(total
// nodes), far cheaper than a step. The sched kernels' divergence guard
// calls this after every advance.
func (r *Rack) StateSum() float64 {
	s := r.lastDCW + r.lastWallW + r.lastCoolW
	for _, st := range r.servers {
		s += st.srv.StateSum()
	}
	return s
}

// AddAmbientOffset shifts every server's ambient offset by delta,
// composing additively with any offsets already applied (fault heat soaks
// use the same mechanism). The room layer applies heat-recirculation inlet
// deltas through it, serially between steps — never concurrently with
// Step/Advance. A zero delta touches nothing, keeping an uncoupled room
// bit-identical to independently stepped racks.
func (r *Rack) AddAmbientOffset(delta units.Celsius) {
	if delta == 0 {
		return
	}
	for _, st := range r.servers {
		st.srv.SetAmbientOffset(st.srv.AmbientOffset() + delta)
	}
}

// ResetAccounting zeroes every server's energy/peak meters and the rack
// aggregates — the start of a measured experiment window.
func (r *Rack) ResetAccounting() {
	for _, st := range r.servers {
		st.srv.ResetAccounting()
		st.fanChanges = 0
	}
	r.dcEnergyJ = 0
	r.wallEnergyJ = 0
	r.coolEnergyJ = 0
	r.facEnergyJ = 0
	if r.relEvery > 0 {
		for i := range r.relSamples {
			r.relSamples[i] = r.relSamples[i][:0]
		}
		r.relNext = r.clock + r.relEvery
	}
	r.resetPeaks()
}

// Telemetry is the rack-level aggregate view.
type Telemetry struct {
	Servers int

	TotalEnergyKWh float64 // Σ server energy since last reset
	FanEnergyKWh   float64 // Σ separately metered fan energy
	PeakPowerW     float64 // highest simultaneous whole-rack power
	MaxCPUTempC    float64 // hottest die seen on any server
	MaxDIMMTempC   float64 // hottest DIMM seen on any server
	MaxInletC      float64 // hottest CPU inlet air seen on any server
	FanChanges     int     // Σ controller-commanded fan-speed changes
	Tripped        int     // servers whose thermal protection engaged
	Failed         int     // servers currently dark (fault.PSUFail)

	// Wall-side (AC) accounting through the PSU/PDU delivery chain. With
	// an ideal chain (no PSUs, no PDU) the wall energy equals the DC
	// energy and the loss is exactly zero.
	WallEnergyKWh  float64 // AC energy drawn at the utility feed
	LossEnergyKWh  float64 // conversion losses: wall minus DC energy
	PeakWallPowerW float64 // highest simultaneous wall draw

	// Facility-side accounting past the wall (CRAC blower + chiller). With
	// no facility attached the cooling energy is exactly zero, the
	// facility energy equals the wall energy, and PUE is exactly 1.
	CoolingEnergyKWh   float64 // CRAC+chiller energy removing the wall heat
	FacilityEnergyKWh  float64 // wall + cooling energy: the total bill
	PUE                float64 // facility energy over wall energy (≥ 1)
	PeakFacilityPowerW float64 // highest simultaneous facility draw

	// Reliability roll-up from the sampled hottest-die traces
	// (Config.ReliabilitySampleEvery > 0; exactly zero otherwise, keeping
	// a sampling-off rack bit-identical to one without the feature).
	WorstAccel    float64 // highest per-server mean Arrhenius acceleration
	WorstAbove75  float64 // highest per-server fraction of samples > 75 °C
	CyclingDamage float64 // Σ per-server Coffin-Manson damage
}

// Telemetry aggregates the rack in server-index order (deterministic
// floating-point summation).
func (r *Rack) Telemetry() Telemetry {
	tel := Telemetry{
		Servers:            len(r.servers),
		PeakPowerW:         r.peakPowerW,
		MaxCPUTempC:        r.maxCPUC,
		MaxDIMMTempC:       r.maxDIMMC,
		MaxInletC:          r.maxInletC,
		WallEnergyKWh:      units.Joules(r.wallEnergyJ).KWh(),
		LossEnergyKWh:      units.Joules(r.wallEnergyJ - r.dcEnergyJ).KWh(),
		PeakWallPowerW:     r.peakWallW,
		CoolingEnergyKWh:   units.Joules(r.coolEnergyJ).KWh(),
		FacilityEnergyKWh:  units.Joules(r.facEnergyJ).KWh(),
		PeakFacilityPowerW: r.peakFacW,
		PUE:                1,
	}
	if r.wallEnergyJ > 0 && r.coolEnergyJ != 0 {
		tel.PUE = r.facEnergyJ / r.wallEnergyJ
	}
	for _, st := range r.servers {
		tel.TotalEnergyKWh += st.srv.Energy().KWh()
		tel.FanEnergyKWh += st.srv.FanEnergy().KWh()
		tel.FanChanges += st.fanChanges
		if st.srv.Tripped() {
			tel.Tripped++
		}
		if !st.srv.Powered() {
			tel.Failed++
		}
	}
	if r.relEvery > 0 && len(r.relSamples) > 0 && len(r.relSamples[0]) > 0 {
		for i := range r.servers {
			rep, err := reliability.Analyze(r.relSamples[i])
			if err != nil {
				continue
			}
			if rep.Acceleration > tel.WorstAccel {
				tel.WorstAccel = rep.Acceleration
			}
			if rep.TimeAbove75 > tel.WorstAbove75 {
				tel.WorstAbove75 = rep.TimeAbove75
			}
			tel.CyclingDamage += rep.CyclingDamage
		}
	}
	return tel
}

func maxC(xs []units.Celsius) units.Celsius {
	m := units.Celsius(-1e9)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
