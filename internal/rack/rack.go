// Package rack scales the simulation from one server to a rack of them:
// N independently configured server.Server instances (heterogeneous
// ambients, fan banks, DIMM counts) stepped together for a shared dt and
// aggregated into rack-level telemetry.
//
// Stepping fans out over the shared internal/par worker pool under the
// repository's determinism contract: job i writes only the state owned by
// server i, and every cross-server reduction happens serially in index
// order after the fan-out barrier. Rack results are therefore byte
// identical for any worker count, which the race-enabled tests in this
// package and in internal/experiments assert.
//
// The rack is the substrate for internal/sched: a dispatcher places jobs
// onto servers, the rack advances the physics, and the telemetry says
// which placement policy heated the room least.
package rack

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/par"
	"repro/internal/server"
	"repro/internal/units"
)

// ServerSpec configures one slot of the rack. Specs may differ arbitrarily
// across slots — ambient (cold/hot aisle position), fan bank, DIMM count,
// noise seed — which is what makes placement policies interesting.
type ServerSpec struct {
	Name   string
	Config server.Config
	// Controller, when non-nil, is the per-server fan-control policy,
	// ticked once per rack step. Unlike the single-server harness — which
	// feeds controllers a sar-style moving average because PWM toggles the
	// load 0↔100% every step — the rack feeds the instantaneous
	// utilization: dispatcher loads are piecewise-constant aggregates that
	// change only at job arrivals/completions, so a windowed monitor would
	// add lag without smoothing anything. The rack takes ownership:
	// controllers are stateful and must not be shared across servers or
	// racks.
	Controller control.Controller
}

// Config parameterizes a Rack.
type Config struct {
	Servers []ServerSpec
	// Workers bounds the per-server step fan-out: ≤ 0 means GOMAXPROCS,
	// 1 is the serial reference path the parallel runs are tested against.
	Workers int
}

// serverState is the slot-i state a step job owns exclusively.
type serverState struct {
	name       string
	srv        *server.Server
	ctrl       control.Controller
	load       units.Percent
	fanChanges int
}

// Rack is a set of simulated servers stepped in lockstep.
type Rack struct {
	servers []*serverState
	workers int
	clock   float64

	// Rack-level running aggregates, reduced serially after each step.
	peakPowerW float64
	maxCPUC    float64
	maxDIMMC   float64
	maxInletC  float64
}

// New builds a rack, constructing every server from its spec.
func New(cfg Config) (*Rack, error) {
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("rack: need at least one server")
	}
	r := &Rack{workers: cfg.Workers}
	for i, spec := range cfg.Servers {
		srv, err := server.New(spec.Config)
		if err != nil {
			return nil, fmt.Errorf("rack: server %d (%s): %w", i, spec.Name, err)
		}
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("srv%02d", i)
		}
		if spec.Controller != nil {
			spec.Controller.Reset()
		}
		r.servers = append(r.servers, &serverState{name: name, srv: srv, ctrl: spec.Controller})
	}
	r.resetPeaks()
	return r, nil
}

// resetPeaks seeds the rack aggregates from the servers' current state,
// so a Telemetry snapshot taken right after construction or an accounting
// reset reports the present temperatures and power rather than sentinels.
func (r *Rack) resetPeaks() {
	r.peakPowerW = 0
	r.maxCPUC = -1e9
	r.maxDIMMC = -1e9
	r.maxInletC = -1e9
	r.observe()
}

// observe folds the servers' instantaneous power and temperatures into
// the rack aggregates, serially in index order.
func (r *Rack) observe() {
	var totalW float64
	for _, st := range r.servers {
		totalW += float64(st.srv.Breakdown().Total())
		if t := float64(st.srv.MaxCPUTemp()); t > r.maxCPUC {
			r.maxCPUC = t
		}
		if t := float64(st.srv.Memory().MaxTemp()); t > r.maxDIMMC {
			r.maxDIMMC = t
		}
		if t := float64(st.srv.InletTemp()); t > r.maxInletC {
			r.maxInletC = t
		}
	}
	if totalW > r.peakPowerW {
		r.peakPowerW = totalW
	}
}

// NumServers returns the number of servers in the rack.
func (r *Rack) NumServers() int { return len(r.servers) }

// Server returns server i for fine-grained inspection.
func (r *Rack) Server(i int) *server.Server { return r.servers[i].srv }

// Name returns server i's name.
func (r *Rack) Name(i int) string { return r.servers[i].name }

// SetLoad sets the utilization demand applied to server i on subsequent
// steps (the dispatcher's aggregate placement for that machine).
func (r *Rack) SetLoad(i int, u units.Percent) { r.servers[i].load = u.Clamp() }

// Load returns the demand currently applied to server i.
func (r *Rack) Load(i int) units.Percent { return r.servers[i].load }

// FanChanges returns how many fan-speed changes server i's controller has
// commanded since construction or the last ResetAccounting.
func (r *Rack) FanChanges(i int) int { return r.servers[i].fanChanges }

// Now returns seconds since rack power-on.
func (r *Rack) Now() float64 { return r.clock }

// step advances one server by dt — the unit of work the fan-out
// schedules. It touches only slot-i state, never the rack aggregates.
func (st *serverState) step(now, dt float64) {
	st.srv.SetLoad(st.load)
	if st.ctrl != nil {
		obs := control.Observation{
			Now:         now,
			Utilization: st.srv.Utilization(),
			MaxCPUTemp:  maxC(st.srv.CPUTempSensorsReuse()),
			CurrentRPM:  st.srv.Fans().Target(),
		}
		if dec := st.ctrl.Tick(obs); dec.Changed {
			st.srv.Fans().SetAll(dec.Target)
			st.fanChanges++
		}
	}
	st.srv.Step(dt)
}

// Step advances every server by dt seconds. The per-server work fans out
// over the bounded pool (slot-i contract); the rack-level reductions —
// simultaneous power peak and temperature maxima — run serially in index
// order afterwards, so aggregates are identical for every worker count.
func (r *Rack) Step(dt float64) {
	if dt <= 0 {
		return
	}
	now := r.clock
	par.ForEach(len(r.servers), r.workers, func(i int) {
		r.servers[i].step(now, dt)
	})
	r.observe()
	r.clock += dt
}

// ResetAccounting zeroes every server's energy/peak meters and the rack
// aggregates — the start of a measured experiment window.
func (r *Rack) ResetAccounting() {
	for _, st := range r.servers {
		st.srv.ResetAccounting()
		st.fanChanges = 0
	}
	r.resetPeaks()
}

// Telemetry is the rack-level aggregate view.
type Telemetry struct {
	Servers int

	TotalEnergyKWh float64 // Σ server energy since last reset
	FanEnergyKWh   float64 // Σ separately metered fan energy
	PeakPowerW     float64 // highest simultaneous whole-rack power
	MaxCPUTempC    float64 // hottest die seen on any server
	MaxDIMMTempC   float64 // hottest DIMM seen on any server
	MaxInletC      float64 // hottest CPU inlet air seen on any server
	FanChanges     int     // Σ controller-commanded fan-speed changes
	Tripped        int     // servers whose thermal protection engaged
}

// Telemetry aggregates the rack in server-index order (deterministic
// floating-point summation).
func (r *Rack) Telemetry() Telemetry {
	tel := Telemetry{
		Servers:      len(r.servers),
		PeakPowerW:   r.peakPowerW,
		MaxCPUTempC:  r.maxCPUC,
		MaxDIMMTempC: r.maxDIMMC,
		MaxInletC:    r.maxInletC,
	}
	for _, st := range r.servers {
		tel.TotalEnergyKWh += st.srv.Energy().KWh()
		tel.FanEnergyKWh += st.srv.FanEnergy().KWh()
		tel.FanChanges += st.fanChanges
		if st.srv.Tripped() {
			tel.Tripped++
		}
	}
	return tel
}

func maxC(xs []units.Celsius) units.Celsius {
	m := units.Celsius(-1e9)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
