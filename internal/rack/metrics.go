package rack

import "repro/internal/obs"

// MetricsInto folds the rack's lifetime observability counters — the
// per-slot thermal propagator cache and macro-step attribution plus the
// rack-level fault edges — into reg, in slot index order, additively.
//
// The fold is the serial, post-barrier half of the internal/obs contract:
// the underlying counters are plain ints written only by the goroutine
// stepping each slot, so MetricsInto must run after Step/Advance returned
// (never concurrently with them). Counters accumulate since construction
// and are never reset, so call it once per rack, at the end of a run; the
// trace runner (sched.RunTraceCfg) does exactly that when a registry is
// attached. A nil registry (the default) makes it a no-op.
func (r *Rack) MetricsInto(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	ms := r.MetricsRollup()
	reg.Counter("rack.prop.hits").Add(int64(ms.PropHits))
	reg.Counter("rack.prop.misses").Add(int64(ms.PropMisses))
	reg.Counter("rack.prop.builds").Add(int64(ms.PropBuilds))
	reg.Counter("rack.macro.drift_stops").Add(int64(ms.DriftStops))
	reg.Counter("rack.macro.anchors").Add(int64(ms.Anchors))
	reg.Counter("rack.macro.collapsed_steps").Add(int64(ms.CollapsedSteps))
	reg.Counter("rack.macro.plain.integrator").Add(int64(ms.PlainIntegrator))
	reg.Counter("rack.macro.plain.pinned").Add(int64(ms.PlainPinned))
	reg.Counter("rack.macro.plain.slew").Add(int64(ms.PlainSlew))
	reg.Counter("rack.macro.plain.trip_band").Add(int64(ms.PlainTripBand))
	reg.Counter("rack.macro.plain.drift").Add(int64(ms.PlainDrift))
	reg.Counter("rack.macro.plain.tail").Add(int64(ms.PlainTail))
	reg.Counter("rack.fault.applied").Add(int64(r.faultsApplied))
	reg.Counter("rack.fault.cleared").Add(int64(r.faultsCleared))
}

// MetricsRollup is the rack-wide sum of the per-slot counters MetricsInto
// folds, exposed for tests and custom drivers that want the numbers
// without a registry.
type MetricsRollup struct {
	PropHits, PropMisses, PropBuilds, DriftStops int
	Anchors, CollapsedSteps                      int
	PlainIntegrator, PlainPinned, PlainSlew      int
	PlainTripBand, PlainDrift, PlainTail         int
}

// MetricsRollup returns the rack-wide sums (see MetricsInto for the
// serial-read requirement).
func (r *Rack) MetricsRollup() MetricsRollup {
	var ms MetricsRollup
	for _, st := range r.servers {
		ps := st.srv.PropagatorStats()
		ms.PropHits += ps.Hits
		ms.PropMisses += ps.Misses
		ms.PropBuilds += ps.Builds
		ms.DriftStops += ps.DriftStops
		mst := st.srv.MacroStats()
		ms.Anchors += mst.Anchors
		ms.CollapsedSteps += mst.CollapsedSteps
		ms.PlainIntegrator += mst.PlainIntegrator
		ms.PlainPinned += mst.PlainPinned
		ms.PlainSlew += mst.PlainSlew
		ms.PlainTripBand += mst.PlainTripBand
		ms.PlainDrift += mst.PlainDrift
		ms.PlainTail += mst.PlainTail
	}
	return ms
}

// FaultEdges returns the lifetime (applied, cleared) fault-event counts.
func (r *Rack) FaultEdges() (applied, cleared int) {
	return r.faultsApplied, r.faultsCleared
}
