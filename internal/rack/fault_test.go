package rack

import (
	"reflect"
	"testing"

	"repro/internal/cooling"
	"repro/internal/fault"
	"repro/internal/units"
)

func faultRack(t *testing.T, workers int, relEvery float64) *Rack {
	t.Helper()
	r, err := New(Config{
		Servers:                testSpecs(t, 4),
		Workers:                workers,
		ReliabilitySampleEvery: relEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestHealthTransitions(t *testing.T) {
	r := faultRack(t, 1, 0)
	for i := 0; i < r.NumServers(); i++ {
		if h := r.Health(i); h != Healthy {
			t.Fatalf("fresh slot %d health %v", i, h)
		}
	}

	// Forced trip: Tripped until the clear (operator reset).
	trip := fault.Event{Kind: fault.ServerTrip, Server: 1, At: 0}
	if err := r.ApplyFault(trip); err != nil {
		t.Fatal(err)
	}
	if h := r.Health(1); h != Tripped {
		t.Fatalf("tripped slot health %v", h)
	}
	if err := r.ClearFault(trip); err != nil {
		t.Fatal(err)
	}
	if h := r.Health(1); h != Healthy {
		t.Fatalf("reset slot health %v", h)
	}

	// Dark slot: Failed beats Tripped, and restoring power revives it.
	dark := fault.Event{Kind: fault.PSUFail, Server: 2, At: 0}
	if err := r.ApplyFault(dark); err != nil {
		t.Fatal(err)
	}
	if h := r.Health(2); h != Failed {
		t.Fatalf("dark slot health %v", h)
	}
	tel := r.Telemetry()
	if tel.Failed != 1 {
		t.Fatalf("telemetry Failed = %d, want 1", tel.Failed)
	}
	if err := r.ClearFault(dark); err != nil {
		t.Fatal(err)
	}
	if h := r.Health(2); h != Healthy {
		t.Fatalf("restored slot health %v", h)
	}

	for _, h := range []Health{Healthy, Tripped, Failed} {
		if h.String() == "" {
			t.Fatalf("health %d has no name", h)
		}
	}
}

func TestApplyFaultValidates(t *testing.T) {
	r := faultRack(t, 1, 0)
	bad := []fault.Event{
		{Kind: fault.PSUFail, Server: 99, At: 0},
		{Kind: fault.FanStick, Server: 0, Fan: 99, At: 0},
		{Kind: fault.Kind(42), At: 0},
	}
	for _, ev := range bad {
		if err := r.ApplyFault(ev); err == nil {
			t.Fatalf("%+v accepted", ev)
		}
	}
}

func TestAmbientFaultsCompose(t *testing.T) {
	r := faultRack(t, 1, 0)
	base := make([]units.Celsius, r.NumServers())
	for i := range base {
		base[i] = r.Server(i).Config().Ambient
	}
	exc := fault.Event{Kind: fault.AmbientExcursion, Server: -1, At: 0, Clear: 10, Severity: 4}
	outage := fault.Event{Kind: fault.CRACOutage, At: 0, Clear: 10}
	if err := r.ApplyFault(exc); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyFault(outage); err != nil {
		t.Fatal(err)
	}
	// Both shifts stack on every server: +4 excursion +8 default outage.
	for i := range base {
		if got := r.Server(i).Config().Ambient; got != base[i]+12 {
			t.Fatalf("server %d ambient %v, want %v", i, got, base[i]+12)
		}
	}
	// Clearing in either order restores the baseline exactly.
	if err := r.ClearFault(outage); err != nil {
		t.Fatal(err)
	}
	if err := r.ClearFault(exc); err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if got := r.Server(i).Config().Ambient; got != base[i] {
			t.Fatalf("server %d ambient %v not restored to %v", i, got, base[i])
		}
	}
}

func TestCRACOutageZeroesCoolingSpend(t *testing.T) {
	fac := cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC)
	r, err := New(Config{Servers: testSpecs(t, 2), Workers: 1, Facility: &fac})
	if err != nil {
		t.Fatal(err)
	}
	r.SetLoad(0, 50)
	r.SetLoad(1, 50)
	r.Step(60)
	before := r.Telemetry().CoolingEnergyKWh
	if before <= 0 {
		t.Fatal("facility rack should spend cooling energy")
	}
	outage := fault.Event{Kind: fault.CRACOutage, At: 0, Clear: 120}
	if err := r.ApplyFault(outage); err != nil {
		t.Fatal(err)
	}
	r.Step(60)
	during := r.Telemetry().CoolingEnergyKWh
	if during != before {
		t.Fatalf("cooling energy moved during outage: %g -> %g", before, during)
	}
	if err := r.ClearFault(outage); err != nil {
		t.Fatal(err)
	}
	r.Step(60)
	if after := r.Telemetry().CoolingEnergyKWh; after <= during {
		t.Fatal("cooling spend did not resume after the outage cleared")
	}
}

func TestChillerDegradedInflatesCoolingSpend(t *testing.T) {
	run := func(derated bool) float64 {
		fac := cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC)
		r, err := New(Config{Servers: testSpecs(t, 2), Workers: 1, Facility: &fac})
		if err != nil {
			t.Fatal(err)
		}
		if derated {
			if err := r.ApplyFault(fault.Event{Kind: fault.ChillerDegraded, At: 0, Severity: 0.3}); err != nil {
				t.Fatal(err)
			}
		}
		r.SetLoad(0, 60)
		r.SetLoad(1, 60)
		for i := 0; i < 60; i++ {
			r.Step(1)
		}
		return r.Telemetry().CoolingEnergyKWh
	}
	healthy, degraded := run(false), run(true)
	if degraded <= healthy {
		t.Fatalf("degraded chiller spend %g should exceed healthy %g", degraded, healthy)
	}
}

func TestPSUDroopInflatesWallDraw(t *testing.T) {
	run := func(droop bool) float64 {
		r := faultRack(t, 1, 0)
		if droop {
			for i := 0; i < r.NumServers(); i++ {
				ev := fault.Event{Kind: fault.PSUDroop, Server: i, At: 0, Severity: 0.1}
				if err := r.ApplyFault(ev); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < r.NumServers(); i++ {
			r.SetLoad(i, 60)
		}
		for i := 0; i < 60; i++ {
			r.Step(1)
		}
		return r.Telemetry().WallEnergyKWh
	}
	healthy, drooped := run(false), run(true)
	if drooped <= healthy*1.05 {
		t.Fatalf("drooped wall energy %g should exceed healthy %g by ~11%%", drooped, healthy)
	}
}

// runFaultedRack steps a rack through a deterministic load schedule with a
// mid-run fault sequence and reliability sampling on.
func runFaultedRack(t *testing.T, workers int) Telemetry {
	t.Helper()
	r := faultRack(t, workers, 30)
	events := []fault.Event{
		{Kind: fault.FanStick, Server: 0, Fan: 0, At: 60, Clear: 150},
		{Kind: fault.PSUFail, Server: 2, At: 90, Clear: 180},
		{Kind: fault.CRACOutage, At: 120, Clear: 200},
	}
	applied := make([]bool, len(events))
	cleared := make([]bool, len(events))
	for s := 0; s < 240; s++ {
		now := float64(s)
		for i, ev := range events {
			if !applied[i] && now >= ev.At {
				if err := r.ApplyFault(ev); err != nil {
					t.Fatal(err)
				}
				applied[i] = true
			}
			if applied[i] && !cleared[i] && now >= ev.Clear {
				if err := r.ClearFault(ev); err != nil {
					t.Fatal(err)
				}
				cleared[i] = true
			}
		}
		for i := 0; i < r.NumServers(); i++ {
			if r.Health(i) != Healthy {
				continue
			}
			r.SetLoad(i, units.Percent((s/30*17+23*i)%101))
		}
		r.Step(1)
	}
	return r.Telemetry()
}

// TestFaultedRackDeterministicAcrossWorkers extends the determinism
// contract to degraded runs: fault application, dark-slot skipping and
// reliability sampling must leave the telemetry byte-identical for any
// worker count.
func TestFaultedRackDeterministicAcrossWorkers(t *testing.T) {
	ref := runFaultedRack(t, 1)
	for _, workers := range []int{2, 4} {
		got := runFaultedRack(t, workers)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d faulted telemetry differs:\nserial:   %+v\nparallel: %+v", workers, ref, got)
		}
	}
	if ref.WorstAccel <= 0 || ref.CyclingDamage < 0 {
		t.Fatalf("reliability roll-up missing: %+v", ref)
	}
}

func TestReliabilityReports(t *testing.T) {
	r := faultRack(t, 1, 0)
	if _, err := r.ReliabilityReports(); err == nil {
		t.Fatal("sampling-off rack must refuse reports")
	}
	r = faultRack(t, 1, 10)
	for i := 0; i < r.NumServers(); i++ {
		r.SetLoad(i, 70)
	}
	for s := 0; s < 120; s++ {
		r.Step(1)
	}
	reports, err := r.ReliabilityReports()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != r.NumServers() {
		t.Fatalf("got %d reports, want %d", len(reports), r.NumServers())
	}
	for i, rep := range reports {
		if rep.MeanTempC <= 0 || rep.MaxTempC < rep.MeanTempC || rep.Acceleration <= 0 {
			t.Fatalf("implausible report %d: %+v", i, rep)
		}
	}
}

// TestReliabilitySamplingOffIsBitIdentical: a rack with sampling disabled
// must produce telemetry byte-identical to the pre-feature baseline — the
// roll-up fields exactly zero, everything else untouched.
func TestReliabilitySamplingOffIsBitIdentical(t *testing.T) {
	plain := runRack(t, 1)
	if plain.WorstAccel != 0 || plain.WorstAbove75 != 0 || plain.CyclingDamage != 0 {
		t.Fatalf("sampling-off telemetry carries reliability values: %+v", plain)
	}
}
