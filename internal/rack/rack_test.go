package rack

import (
	"reflect"
	"testing"

	"repro/internal/control"
	"repro/internal/server"
	"repro/internal/units"
)

// testSpecs builds a small heterogeneous rack: ambient gradient, mixed
// DIMM counts, distinct noise seeds, each server under a bang-bang
// controller (stateful, so fresh instances per rack).
func testSpecs(t *testing.T, n int) []ServerSpec {
	t.Helper()
	specs := make([]ServerSpec, n)
	for i := range specs {
		cfg := server.T3Config()
		cfg.Ambient = units.Celsius(21 + 3*(i%4))
		cfg.NoiseSeed = int64(1 + 97*i)
		if i%2 == 1 {
			cfg.Mem.NumDIMMs = 24
		}
		bb, err := control.NewBangBang(control.DefaultBangBang())
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = ServerSpec{Config: cfg, Controller: bb}
	}
	return specs
}

// runRack steps a rack through a deterministic load schedule and returns
// its telemetry.
func runRack(t *testing.T, workers int) Telemetry {
	t.Helper()
	r, err := New(Config{Servers: testSpecs(t, 6), Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 240; s++ {
		for i := 0; i < r.NumServers(); i++ {
			r.SetLoad(i, units.Percent((s/30*17+23*i)%101))
		}
		r.Step(1)
	}
	return r.Telemetry()
}

// TestRackStepDeterministicAcrossWorkers is the determinism contract:
// aggregate metrics must be byte-identical for the serial reference path
// and any parallel worker count. Under -race this also proves the slot-i
// write isolation of the fan-out.
func TestRackStepDeterministicAcrossWorkers(t *testing.T) {
	ref := runRack(t, 1)
	for _, workers := range []int{2, 4, 8} {
		got := runRack(t, workers)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d telemetry differs from serial:\nserial:   %+v\nparallel: %+v", workers, ref, got)
		}
	}
	if ref.Servers != 6 || ref.TotalEnergyKWh <= 0 || ref.FanEnergyKWh <= 0 {
		t.Fatalf("implausible telemetry: %+v", ref)
	}
	if ref.MaxCPUTempC <= float64(server.T3Config().Ambient) {
		t.Fatalf("max CPU temp %.1f should exceed ambient", ref.MaxCPUTempC)
	}
	if ref.MaxInletC <= 21 {
		t.Fatalf("max inlet %.1f should exceed the coldest ambient", ref.MaxInletC)
	}
}

// TestRackHeterogeneousAmbients: with identical zero load, the hot-aisle
// server must run hotter than the cold-aisle one — the gradient placement
// policies exploit.
func TestRackHeterogeneousAmbients(t *testing.T) {
	r, err := New(Config{Servers: testSpecs(t, 4), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 120; s++ {
		r.Step(1)
	}
	cold := r.Server(0).MaxCPUTemp() // ambient 21
	hot := r.Server(3).MaxCPUTemp()  // ambient 30
	if hot <= cold {
		t.Fatalf("hot-aisle server (%v) should run hotter than cold-aisle (%v)", hot, cold)
	}
}

// TestRackFanChangeAccounting: controllers that command speed changes must
// be counted per server and reset with accounting.
func TestRackFanChangeAccounting(t *testing.T) {
	specs := testSpecs(t, 2)
	r, err := New(Config{Servers: specs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Heavy load drives temperatures up and forces bang-bang activity.
	for s := 0; s < 600; s++ {
		r.SetLoad(0, 100)
		r.SetLoad(1, 100)
		r.Step(1)
	}
	tel := r.Telemetry()
	if tel.FanChanges == 0 {
		t.Fatal("expected bang-bang fan activity under full load")
	}
	if tel.FanChanges != r.FanChanges(0)+r.FanChanges(1) {
		t.Fatal("telemetry fan changes must equal the per-server sum")
	}
	r.ResetAccounting()
	tel = r.Telemetry()
	if tel.FanChanges != 0 || tel.TotalEnergyKWh != 0 {
		t.Fatalf("ResetAccounting left %+v", tel)
	}
}

// TestRackValidation covers constructor errors.
func TestRackValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty rack must be rejected")
	}
	bad := server.T3Config()
	bad.RDie = -1
	if _, err := New(Config{Servers: []ServerSpec{{Config: bad}}}); err == nil {
		t.Fatal("invalid server config must be rejected")
	}
}

// TestRackNamesAndLoads covers the accessors the scheduler relies on.
func TestRackNamesAndLoads(t *testing.T) {
	specs := testSpecs(t, 2)
	specs[0].Name = "cold-a"
	r, err := New(Config{Servers: specs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name(0) != "cold-a" || r.Name(1) != "srv01" {
		t.Fatalf("names: %q %q", r.Name(0), r.Name(1))
	}
	r.SetLoad(1, 130) // must clamp
	if r.Load(1) != 100 {
		t.Fatalf("load clamp: %v", r.Load(1))
	}
}
