package rack

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/server"
	"repro/internal/units"
)

// SlotState is the serializable mutable state of one rack slot: the server,
// the slot's fan-control policy (nil when none is attached), the dispatcher
// load and the fault/accounting scalars. The per-window scratch fields are
// derived and stay out.
type SlotState struct {
	Server     server.State
	Ctrl       *control.State
	Load       float64
	FanChanges int
	PSUDerate  float64
}

// State is the serializable mutable state of a Rack built from the same
// Config: every slot plus the rack-level meters, peaks, facility-scope
// fault state, fault-edge counters and the reliability sampling cursor.
type State struct {
	Slots []SlotState
	Clock float64

	PeakPowerW float64
	MaxCPUC    float64
	MaxDIMMC   float64
	MaxInletC  float64

	LastDCW     float64
	LastWallW   float64
	PeakWallW   float64
	DCEnergyJ   float64
	WallEnergyJ float64

	LastCoolW   float64
	PeakFacW    float64
	CoolEnergyJ float64
	FacEnergyJ  float64

	CracOut       int
	ChillerDerate float64

	FaultsApplied int
	FaultsCleared int

	RelNext    float64
	RelSamples [][]float64
}

// Snapshot captures the rack for a checkpoint. It must be called between
// steps (never concurrently with Step/Advance), like every other rack-level
// read. A slot carrying a controller that does not implement
// control.Snapshotter cannot be carried across a checkpoint and errors here
// rather than resuming with stale policy state.
func (r *Rack) Snapshot() (State, error) {
	st := State{
		Slots:         make([]SlotState, len(r.servers)),
		Clock:         r.clock,
		PeakPowerW:    r.peakPowerW,
		MaxCPUC:       r.maxCPUC,
		MaxDIMMC:      r.maxDIMMC,
		MaxInletC:     r.maxInletC,
		LastDCW:       r.lastDCW,
		LastWallW:     r.lastWallW,
		PeakWallW:     r.peakWallW,
		DCEnergyJ:     r.dcEnergyJ,
		WallEnergyJ:   r.wallEnergyJ,
		LastCoolW:     r.lastCoolW,
		PeakFacW:      r.peakFacW,
		CoolEnergyJ:   r.coolEnergyJ,
		FacEnergyJ:    r.facEnergyJ,
		CracOut:       r.cracOut,
		ChillerDerate: r.chillerDerate,
		FaultsApplied: r.faultsApplied,
		FaultsCleared: r.faultsCleared,
		RelNext:       r.relNext,
	}
	for i, sl := range r.servers {
		st.Slots[i] = SlotState{
			Server:     sl.srv.State(),
			Load:       float64(sl.load),
			FanChanges: sl.fanChanges,
			PSUDerate:  sl.psuDerate,
		}
		if sl.ctrl != nil {
			snap, ok := sl.ctrl.(control.Snapshotter)
			if !ok {
				return State{}, fmt.Errorf("rack: slot %d controller %q does not support checkpointing", i, sl.ctrl.Name())
			}
			cs := snap.ControlState()
			st.Slots[i].Ctrl = &cs
		}
	}
	if r.relEvery > 0 {
		st.RelSamples = make([][]float64, len(r.relSamples))
		for i, xs := range r.relSamples {
			st.RelSamples[i] = append([]float64(nil), xs...)
		}
	}
	return st, nil
}

// Restore loads a captured State into a rack built from the same Config.
// Slot count, controller presence and reliability sampling must match the
// snapshot; mismatches error without partially mutating the rack's shape.
func (r *Rack) Restore(st State) error {
	if len(st.Slots) != len(r.servers) {
		return fmt.Errorf("rack: state has %d slots, rack has %d", len(st.Slots), len(r.servers))
	}
	if r.relEvery > 0 && len(st.RelSamples) != len(r.servers) {
		return fmt.Errorf("rack: state has %d reliability traces, rack samples %d slots", len(st.RelSamples), len(r.servers))
	}
	for i, sl := range r.servers {
		ss := st.Slots[i]
		if (sl.ctrl == nil) != (ss.Ctrl == nil) {
			return fmt.Errorf("rack: slot %d controller presence does not match snapshot", i)
		}
		if err := sl.srv.SetState(ss.Server); err != nil {
			return fmt.Errorf("rack: slot %d: %w", i, err)
		}
		if sl.ctrl != nil {
			snap, ok := sl.ctrl.(control.Snapshotter)
			if !ok {
				return fmt.Errorf("rack: slot %d controller %q does not support checkpointing", i, sl.ctrl.Name())
			}
			if err := snap.SetControlState(*ss.Ctrl); err != nil {
				return fmt.Errorf("rack: slot %d: %w", i, err)
			}
		}
		sl.load = units.Percent(ss.Load)
		sl.fanChanges = ss.FanChanges
		sl.psuDerate = ss.PSUDerate
	}
	r.clock = st.Clock
	r.peakPowerW = st.PeakPowerW
	r.maxCPUC = st.MaxCPUC
	r.maxDIMMC = st.MaxDIMMC
	r.maxInletC = st.MaxInletC
	r.lastDCW = st.LastDCW
	r.lastWallW = st.LastWallW
	r.peakWallW = st.PeakWallW
	r.dcEnergyJ = st.DCEnergyJ
	r.wallEnergyJ = st.WallEnergyJ
	r.lastCoolW = st.LastCoolW
	r.peakFacW = st.PeakFacW
	r.coolEnergyJ = st.CoolEnergyJ
	r.facEnergyJ = st.FacEnergyJ
	r.cracOut = st.CracOut
	r.chillerDerate = st.ChillerDerate
	r.faultsApplied = st.FaultsApplied
	r.faultsCleared = st.FaultsCleared
	r.relNext = st.RelNext
	if r.relEvery > 0 {
		for i := range r.relSamples {
			r.relSamples[i] = append(r.relSamples[i][:0], st.RelSamples[i]...)
		}
	}
	return nil
}
