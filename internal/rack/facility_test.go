package rack

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cooling"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/units"
)

// facRack builds an n-server rack with the default delivery chain and the
// given facility, loaded at 60% everywhere.
func facRack(t *testing.T, n, workers int, fac *cooling.Facility) *Rack {
	t.Helper()
	psu, pdu := power.DefaultPSU(), power.DefaultPDU()
	specs := make([]ServerSpec, n)
	for i := range specs {
		cfg := server.T3Config()
		cfg.Ambient = units.Celsius(21 + 3*(i%4))
		cfg.NoiseSeed = int64(1 + 7*i)
		specs[i] = ServerSpec{Config: cfg}
	}
	r, err := New(Config{Servers: specs, Workers: workers, PSU: &psu, PDU: &pdu, Facility: fac})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r.SetLoad(i, 60)
	}
	return r
}

// TestRackNoFacilityIsIdentity pins the identity contract: a rack without
// a facility reports exactly zero cooling power and energy, PUE exactly 1,
// facility telemetry mirroring the wall side bitwise — and every
// pre-existing metric bit-identical to the same rack built before the
// facility layer existed (same struct fields, same code path).
func TestRackNoFacilityIsIdentity(t *testing.T) {
	r := facRack(t, 3, 1, nil)
	for s := 0; s < 120; s++ {
		r.Step(1)
	}
	if r.CoolingPower() != 0 {
		t.Fatalf("no facility: cooling power %v, want exactly 0", r.CoolingPower())
	}
	if r.FacilityPower() != r.WallPower() {
		t.Fatalf("no facility: facility power %v != wall power %v", r.FacilityPower(), r.WallPower())
	}
	if r.PUE() != 1 {
		t.Fatalf("no facility: PUE %g, want exactly 1", r.PUE())
	}
	tel := r.Telemetry()
	if tel.CoolingEnergyKWh != 0 {
		t.Fatalf("no facility: cooling energy %g, want exactly 0", tel.CoolingEnergyKWh)
	}
	if tel.FacilityEnergyKWh != tel.WallEnergyKWh {
		t.Fatalf("no facility: facility energy %g != wall energy %g", tel.FacilityEnergyKWh, tel.WallEnergyKWh)
	}
	if tel.PUE != 1 {
		t.Fatalf("no facility: telemetry PUE %g, want exactly 1", tel.PUE)
	}
	if tel.PeakFacilityPowerW != tel.PeakWallPowerW {
		t.Fatalf("no facility: peak facility %g != peak wall %g", tel.PeakFacilityPowerW, tel.PeakWallPowerW)
	}
}

// TestRackFacilityReferenceSetpointKeepsPhysics: attaching the facility at
// the reference setpoint (ambient delta exactly zero) must leave every
// physics and wall metric bit-identical to the facility-less rack; only
// the facility telemetry becomes non-trivial.
func TestRackFacilityReferenceSetpointKeepsPhysics(t *testing.T) {
	fac := cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC)
	bare := facRack(t, 3, 1, nil)
	cooled := facRack(t, 3, 1, &fac)
	for s := 0; s < 120; s++ {
		bare.Step(1)
		cooled.Step(1)
	}
	a, b := bare.Telemetry(), cooled.Telemetry()
	// Blank the facility-only fields, then demand bitwise equality.
	a.CoolingEnergyKWh, b.CoolingEnergyKWh = 0, 0
	a.FacilityEnergyKWh, b.FacilityEnergyKWh = 0, 0
	a.PUE, b.PUE = 0, 0
	a.PeakFacilityPowerW, b.PeakFacilityPowerW = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reference-setpoint facility perturbed physics:\nbare:   %+v\ncooled: %+v", a, b)
	}
	tel := cooled.Telemetry()
	if tel.CoolingEnergyKWh <= 0 || tel.PUE <= 1 {
		t.Fatalf("attached facility must meter cooling: %+v", tel)
	}
}

// TestRackFacilitySetpointShiftsAmbients: the CRAC setpoint moves every
// server inlet by the same delta, which the settled equilibria expose.
func TestRackFacilitySetpointShiftsAmbients(t *testing.T) {
	warm := cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC + 6)
	bare := facRack(t, 2, 1, nil)
	cooled := facRack(t, 2, 1, &warm)
	for i := 0; i < bare.NumServers(); i++ {
		want := bare.Server(i).Config().Ambient + 6
		if got := cooled.Server(i).Config().Ambient; got != want {
			t.Fatalf("server %d ambient %v, want %v", i, got, want)
		}
		if cooled.Server(i).MaxCPUTemp() <= bare.Server(i).MaxCPUTemp() {
			t.Fatalf("server %d: warmer aisle must settle hotter", i)
		}
	}
}

// TestRackFacilityEnergyIdentity is the accounting property the issue
// pins: PUE ≥ 1 always, and FacilityEnergy = WallEnergy + CoolingEnergy
// to 1e-9 relative — a genuine check, because the facility energy is
// integrated from instantaneous power, not derived from the other meters.
func TestRackFacilityEnergyIdentity(t *testing.T) {
	fac := cooling.DefaultFacility(24)
	r := facRack(t, 4, 1, &fac)
	for s := 0; s < 300; s++ {
		// Vary load so the integrand is not constant.
		for i := 0; i < r.NumServers(); i++ {
			r.SetLoad(i, units.Percent((s/10*17+23*i)%101))
		}
		r.Step(1)
		if pue := r.PUE(); pue < 1 {
			t.Fatalf("step %d: instantaneous PUE %g < 1", s, pue)
		}
	}
	tel := r.Telemetry()
	if tel.PUE < 1 {
		t.Fatalf("energy PUE %g < 1", tel.PUE)
	}
	sum := tel.WallEnergyKWh + tel.CoolingEnergyKWh
	if rel := math.Abs(tel.FacilityEnergyKWh-sum) / sum; rel > 1e-9 {
		t.Fatalf("facility %g != wall %g + cooling %g (rel %g)",
			tel.FacilityEnergyKWh, tel.WallEnergyKWh, tel.CoolingEnergyKWh, rel)
	}
	// ResetAccounting opens a fresh facility measurement window.
	r.ResetAccounting()
	tel = r.Telemetry()
	if tel.CoolingEnergyKWh != 0 || tel.FacilityEnergyKWh != 0 || tel.PUE != 1 {
		t.Fatalf("ResetAccounting left facility accounting %+v", tel)
	}
}

// TestRackFacilityDeterministicAcrossWorkers extends the determinism
// contract to the facility side: serial reference and any worker count
// must agree bitwise on the full telemetry, cooling included.
func TestRackFacilityDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) Telemetry {
		fac := cooling.DefaultFacility(25)
		r := facRack(t, 6, workers, &fac)
		for s := 0; s < 180; s++ {
			for i := 0; i < r.NumServers(); i++ {
				r.SetLoad(i, units.Percent((s/20*13+19*i)%101))
			}
			r.Step(1)
		}
		return r.Telemetry()
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d facility telemetry differs:\nserial:   %+v\nparallel: %+v", w, ref, got)
		}
	}
	if ref.CoolingEnergyKWh <= 0 || ref.PUE <= 1 || ref.PeakFacilityPowerW <= ref.PeakWallPowerW {
		t.Fatalf("implausible facility telemetry: %+v", ref)
	}
}

// TestRackFacilityValidation: a degenerate facility must be rejected at
// construction, not detonate mid-run.
func TestRackFacilityValidation(t *testing.T) {
	bad := cooling.DefaultFacility(20)
	bad.Chiller.COP0 = 0
	specs := []ServerSpec{{Config: server.T3Config()}}
	if _, err := New(Config{Servers: specs, Workers: 1, Facility: &bad}); err == nil {
		t.Fatal("invalid facility must be rejected")
	}
}
