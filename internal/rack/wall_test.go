package rack

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/units"
)

// chainRack builds an n-server rack with the given delivery chain and a
// fixed 70% load everywhere.
func chainRack(t *testing.T, n, workers int, psu *power.PSUModel, pdu *power.PDUModel) *Rack {
	t.Helper()
	specs := make([]ServerSpec, n)
	for i := range specs {
		cfg := server.T3Config()
		cfg.Ambient = units.Celsius(21 + 3*(i%4))
		cfg.NoiseSeed = int64(1 + 7*i)
		specs[i] = ServerSpec{Config: cfg}
	}
	r, err := New(Config{Servers: specs, Workers: workers, PSU: psu, PDU: pdu})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r.SetLoad(i, 70)
	}
	return r
}

// TestRackIdealChainWallMirrorsDC: with no PSU and no PDU the delivery
// chain is the identity, so the wall side must mirror the DC side exactly
// — instantaneous draw and peaks bitwise, conversion loss exactly zero.
func TestRackIdealChainWallMirrorsDC(t *testing.T) {
	r := chainRack(t, 3, 1, nil, nil)
	for s := 0; s < 120; s++ {
		r.Step(1)
	}
	if r.WallPower() != r.DCPower() {
		t.Fatalf("ideal chain: wall %v != dc %v", r.WallPower(), r.DCPower())
	}
	tel := r.Telemetry()
	if tel.LossEnergyKWh != 0 {
		t.Fatalf("ideal chain: loss %g, want exactly 0", tel.LossEnergyKWh)
	}
	if tel.PeakWallPowerW != tel.PeakPowerW {
		t.Fatalf("ideal chain: peak wall %g != peak dc %g", tel.PeakWallPowerW, tel.PeakPowerW)
	}
	// Rack-level wall integration and the per-server energy sum accumulate
	// in different orders, so compare within float tolerance only.
	if rel := math.Abs(tel.WallEnergyKWh-tel.TotalEnergyKWh) / tel.TotalEnergyKWh; rel > 1e-12 {
		t.Fatalf("ideal chain: wall energy %g vs total %g (rel %g)", tel.WallEnergyKWh, tel.TotalEnergyKWh, rel)
	}
	for i := 0; i < r.NumServers(); i++ {
		if r.ServerWallPower(i) != r.ServerDCPower(i) {
			t.Fatalf("server %d: ideal wall != dc", i)
		}
	}
}

// TestRackChainWallExceedsDC: a lossy chain must amplify every DC watt at
// the wall, with losses consistent between energy and power telemetry.
func TestRackChainWallExceedsDC(t *testing.T) {
	psu, pdu := power.DefaultPSU(), power.DefaultPDU()
	r := chainRack(t, 3, 1, &psu, &pdu)
	for s := 0; s < 120; s++ {
		r.Step(1)
	}
	if r.WallPower() <= r.DCPower() {
		t.Fatalf("lossy chain: wall %v must exceed dc %v", r.WallPower(), r.DCPower())
	}
	tel := r.Telemetry()
	if tel.LossEnergyKWh <= 0 {
		t.Fatalf("lossy chain: loss %g must be positive", tel.LossEnergyKWh)
	}
	if tel.WallEnergyKWh <= tel.TotalEnergyKWh {
		t.Fatalf("wall energy %g must exceed DC energy %g", tel.WallEnergyKWh, tel.TotalEnergyKWh)
	}
	if tel.PeakWallPowerW <= tel.PeakPowerW {
		t.Fatalf("peak wall %g must exceed peak dc %g", tel.PeakWallPowerW, tel.PeakPowerW)
	}
	for i := 0; i < r.NumServers(); i++ {
		if r.ServerWallPower(i) <= r.ServerDCPower(i) {
			t.Fatalf("server %d: PSU input must exceed DC draw", i)
		}
	}
	// ResetAccounting starts a fresh wall-side measurement window.
	r.ResetAccounting()
	tel = r.Telemetry()
	if tel.WallEnergyKWh != 0 || tel.LossEnergyKWh != 0 {
		t.Fatalf("ResetAccounting left wall accounting %+v", tel)
	}
}

// TestRackWallPowerWith pins the what-if query: zero extra reproduces the
// current draw bitwise, extra load raises it, and no state is mutated.
func TestRackWallPowerWith(t *testing.T) {
	psu, pdu := power.DefaultPSU(), power.DefaultPDU()
	r := chainRack(t, 3, 1, &psu, &pdu)
	for s := 0; s < 60; s++ {
		r.Step(1)
	}
	before := r.WallPower()
	if got := r.WallPowerWith(1, 0); got != before {
		t.Fatalf("WallPowerWith(+0) = %v, want %v", got, before)
	}
	more := r.WallPowerWith(1, 50)
	if more <= before {
		t.Fatalf("WallPowerWith(+50) = %v, want > %v", more, before)
	}
	if r.WallPower() != before {
		t.Fatal("WallPowerWith mutated the observed wall draw")
	}
	// The same extra on a different slot differs only through PSU state,
	// and for identical supplies at different operating points the deltas
	// still must both be positive.
	if r.WallPowerWith(0, 50) <= before {
		t.Fatal("WallPowerWith(+50) on slot 0 must raise the wall draw")
	}
}

// TestRackPerSlotPSUOverride: a ServerSpec.PSU must take precedence over
// the rack-wide default for its slot only.
func TestRackPerSlotPSUOverride(t *testing.T) {
	lossy := power.PSUModel{Eta0: 0.80, Droop: 0.10, Knee: 150}
	good := power.PSUModel{Eta0: 0.96, Droop: 0.02, Knee: 50}
	cfg := server.T3Config()
	specs := []ServerSpec{
		{Config: cfg, PSU: &good},
		{Config: cfg},
	}
	r, err := New(Config{Servers: specs, Workers: 1, PSU: &lossy})
	if err != nil {
		t.Fatal(err)
	}
	r.SetLoad(0, 70)
	r.SetLoad(1, 70)
	for s := 0; s < 60; s++ {
		r.Step(1)
	}
	// Same physics on both servers; only the supply differs.
	if r.ServerWallPower(0) >= r.ServerWallPower(1) {
		t.Fatalf("override slot (eta 0.96, %v) must draw less than default slot (eta 0.80, %v)",
			r.ServerWallPower(0), r.ServerWallPower(1))
	}
}

// TestRackWallDeterministicAcrossWorkers extends the determinism contract
// to the wall side: the serial reference and any worker count must agree
// bitwise on the full telemetry, delivery chain included.
func TestRackWallDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) Telemetry {
		psu, pdu := power.DefaultPSU(), power.DefaultPDU()
		r := chainRack(t, 6, workers, &psu, &pdu)
		for s := 0; s < 180; s++ {
			for i := 0; i < r.NumServers(); i++ {
				r.SetLoad(i, units.Percent((s/20*13+19*i)%101))
			}
			r.Step(1)
		}
		return r.Telemetry()
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d wall telemetry differs:\nserial:   %+v\nparallel: %+v", w, ref, got)
		}
	}
	if ref.WallEnergyKWh <= ref.TotalEnergyKWh || ref.LossEnergyKWh <= 0 {
		t.Fatalf("implausible wall telemetry: %+v", ref)
	}
}
