package rack

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/units"
)

// TestAttachTelemetry pins the rack-wide CSTH fan-out: every slot's
// channel list appears under its "rack<N>." prefix, the five rack-level
// delivery-chain channels ride along, and polled values are live.
func TestAttachTelemetry(t *testing.T) {
	r, err := New(Config{Servers: testSpecs(t, 3), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := telemetry.NewHarness(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AttachTelemetry(h); err != nil {
		t.Fatal(err)
	}

	names := h.Names()
	perSlot := make(map[string]int)
	for _, n := range names {
		if strings.HasPrefix(n, "rack0") && len(n) > 7 && n[6] == '.' {
			perSlot[n[:7]]++
		}
	}
	if len(perSlot) != 3 {
		t.Fatalf("slot prefixes = %v, want 3 slots", perSlot)
	}
	// Even slots carry 32 DIMMs, odd slots 24 (testSpecs), so slot 1
	// registers exactly 8 fewer channels than its neighbours.
	if perSlot["rack00."] == 0 || perSlot["rack00."] != perSlot["rack02."] ||
		perSlot["rack01."] != perSlot["rack00."]-8 {
		t.Fatalf("per-slot channel counts off: %v", perSlot)
	}
	for _, want := range []string{
		"rack00.cpu0.temp0", "rack02.system.power", "rack01.fans.rpm",
		"rack.dc.power", "rack.wall.power", "rack.cooling.power",
		"rack.facility.power", "rack.pue",
	} {
		if i := sort.SearchStrings(sortedCopy(names), want); i >= len(names) || sortedCopy(names)[i] != want {
			t.Errorf("missing channel %q", want)
		}
	}

	// Attaching a second time must fail on the duplicate names, not
	// silently double-register.
	if err := r.AttachTelemetry(h); err == nil {
		t.Error("double attach should error on duplicate channels")
	}

	// Run the rack under load and poll: slot sensors diverge with the
	// ambient gradient and the rack channels track the summed draw.
	for i := 0; i < r.NumServers(); i++ {
		r.SetLoad(i, units.Percent(60))
	}
	for s := 0; s < 120; s++ {
		r.Step(1)
	}
	h.PollNow(r.Now())
	snap := h.Snapshot()
	if snap["rack00.system.power"] <= 0 || snap["rack02.system.power"] <= 0 {
		t.Fatalf("dead per-slot power channels: %v %v",
			snap["rack00.system.power"], snap["rack02.system.power"])
	}
	// rack.dc.power is the true summed draw; the per-slot system.power
	// channels carry the CSTH measurement noise, so they agree only to
	// within the noise band.
	sum := snap["rack00.system.power"] + snap["rack01.system.power"] + snap["rack02.system.power"]
	if dc := snap["rack.dc.power"]; dc <= 0 || abs(dc-sum) > 0.01*dc {
		t.Errorf("rack.dc.power = %g, Σ slot system.power = %g", dc, sum)
	}
	// No PSU/PDU chain and no facility here: wall == dc, cooling == 0,
	// facility == wall, PUE == 1.
	if snap["rack.wall.power"] != snap["rack.dc.power"] {
		t.Errorf("ideal chain: wall %g != dc %g", snap["rack.wall.power"], snap["rack.dc.power"])
	}
	if snap["rack.cooling.power"] != 0 || snap["rack.pue"] != 1 {
		t.Errorf("no facility: cooling = %g, pue = %g", snap["rack.cooling.power"], snap["rack.pue"])
	}
	if snap["rack.facility.power"] != snap["rack.wall.power"] {
		t.Errorf("facility %g != wall %g", snap["rack.facility.power"], snap["rack.wall.power"])
	}
}

func sortedCopy(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
