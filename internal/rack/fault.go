package rack

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/reliability"
	"repro/internal/units"
)

// Health returns the scheduler-facing state of slot i. A dark slot is
// Failed regardless of its trip latch; a powered slot whose thermal
// protection latched is Tripped; everything else is Healthy.
func (r *Rack) Health(i int) Health {
	st := r.servers[i]
	if !st.srv.Powered() {
		return Failed
	}
	if st.srv.Tripped() {
		return Tripped
	}
	return Healthy
}

// TripRisk reports whether any live slot sits inside the trip-guard band
// below its critical temperature — the zone where a natural trip could
// latch within a macro window. The event-driven trace runner pins its
// windows to single steps while this holds on a fault run, so trips (and
// the job kills they imply) are observed on the step they happen.
func (r *Rack) TripRisk() bool {
	for _, st := range r.servers {
		if st.srv.TripRisk() {
			return true
		}
	}
	return false
}

// fanCountFor returns the fan population the event should be validated
// against: the target slot's bank when the event names a valid slot, the
// first slot's otherwise (racks are homogeneous in fan count in every
// shipped configuration).
func (r *Rack) fanCountFor(ev fault.Event) int {
	if ev.Server >= 0 && ev.Server < len(r.servers) {
		return r.servers[ev.Server].srv.Fans().NumFans()
	}
	return r.servers[0].srv.Fans().NumFans()
}

// targets visits every slot an event touches: the named server, or all of
// them for rack-scope kinds and the rack-wide ambient excursion.
func (r *Rack) targets(ev fault.Event, visit func(st *serverState)) {
	if ev.Kind.RackScope() || (ev.Kind == fault.AmbientExcursion && ev.Server < 0) {
		for _, st := range r.servers {
			visit(st)
		}
		return
	}
	visit(r.servers[ev.Server])
}

// ApplyFault injects one fault event into the rack, immediately. The trace
// runner calls it serially at the event's pinned grid step, before any
// placement decision of that step; tests and custom drivers may call it
// directly between steps (never concurrently with Step/Advance). A
// windowed event additionally pins its affected servers to plain fixed-dt
// stepping until ClearFault (the PR 5 event-kernel contract).
func (r *Rack) ApplyFault(ev fault.Event) error {
	if err := ev.Validate(len(r.servers), r.fanCountFor(ev)); err != nil {
		return err
	}
	switch ev.Kind {
	case fault.FanStick:
		if err := r.servers[ev.Server].srv.Fans().StickFan(ev.Fan); err != nil {
			return err
		}
	case fault.FanFail:
		if err := r.servers[ev.Server].srv.Fans().FailFan(ev.Fan); err != nil {
			return err
		}
	case fault.PSUDroop:
		r.servers[ev.Server].psuDerate += droopSeverity(ev)
	case fault.PSUFail:
		r.servers[ev.Server].srv.SetPowered(false)
	case fault.ServerTrip:
		r.servers[ev.Server].srv.ForceTrip()
	case fault.AmbientExcursion:
		d := units.Celsius(ev.Severity)
		r.targets(ev, func(st *serverState) {
			st.srv.SetAmbientOffset(st.srv.AmbientOffset() + d)
		})
	case fault.CRACOutage:
		r.cracOut++
		d := units.Celsius(outageSeverity(ev))
		r.targets(ev, func(st *serverState) {
			st.srv.SetAmbientOffset(st.srv.AmbientOffset() + d)
		})
	case fault.ChillerDegraded:
		r.chillerDerate += droopSeverity(ev)
	default:
		return fmt.Errorf("rack: unknown fault kind %v", ev.Kind)
	}
	if ev.Windowed() {
		r.targets(ev, func(st *serverState) { st.srv.PinFixedDt(+1) })
	}
	r.faultsApplied++
	return nil
}

// ClearFault undoes ApplyFault for the same event — the clear leg of a
// windowed fault. Clearing an event that was never applied corrupts the
// composed fault state; the trace runner only ever pairs them.
func (r *Rack) ClearFault(ev fault.Event) error {
	if err := ev.Validate(len(r.servers), r.fanCountFor(ev)); err != nil {
		return err
	}
	switch ev.Kind {
	case fault.FanStick, fault.FanFail:
		if err := r.servers[ev.Server].srv.Fans().UnstickFan(ev.Fan); err != nil {
			return err
		}
	case fault.PSUDroop:
		r.servers[ev.Server].psuDerate -= droopSeverity(ev)
	case fault.PSUFail:
		r.servers[ev.Server].srv.SetPowered(true)
	case fault.ServerTrip:
		r.servers[ev.Server].srv.ResetTrip()
	case fault.AmbientExcursion:
		d := units.Celsius(ev.Severity)
		r.targets(ev, func(st *serverState) {
			st.srv.SetAmbientOffset(st.srv.AmbientOffset() - d)
		})
	case fault.CRACOutage:
		r.cracOut--
		d := units.Celsius(outageSeverity(ev))
		r.targets(ev, func(st *serverState) {
			st.srv.SetAmbientOffset(st.srv.AmbientOffset() - d)
		})
	case fault.ChillerDegraded:
		r.chillerDerate -= droopSeverity(ev)
	default:
		return fmt.Errorf("rack: unknown fault kind %v", ev.Kind)
	}
	if ev.Windowed() {
		r.targets(ev, func(st *serverState) { st.srv.PinFixedDt(-1) })
	}
	r.faultsCleared++
	return nil
}

// droopSeverity resolves a PSUDroop/ChillerDegraded severity, zero picking
// the documented default.
func droopSeverity(ev fault.Event) float64 {
	if ev.Severity == 0 {
		return fault.DefaultPSUDroop
	}
	return ev.Severity
}

// outageSeverity resolves a CRACOutage heat-soak, zero picking the default.
func outageSeverity(ev fault.Event) float64 {
	if ev.Severity == 0 {
		return fault.DefaultCRACOutageC
	}
	return ev.Severity
}

// ReliabilityReports analyzes every server's sampled hottest-die trace
// (Config.ReliabilitySampleEvery) into reliability reports, in slot order.
// It errors when sampling is disabled or no sample instant has been
// crossed yet.
func (r *Rack) ReliabilityReports() ([]reliability.Report, error) {
	if r.relEvery <= 0 {
		return nil, fmt.Errorf("rack: reliability sampling disabled (Config.ReliabilitySampleEvery)")
	}
	reports := make([]reliability.Report, len(r.servers))
	for i := range r.servers {
		rep, err := reliability.Analyze(r.relSamples[i])
		if err != nil {
			return nil, fmt.Errorf("rack: server %d: %w", i, err)
		}
		reports[i] = rep
	}
	return reports, nil
}
