// Package rack scales the simulation from one server to a rack of them:
// N independently configured server.Server instances (heterogeneous
// ambients, fan banks, DIMM counts), each optionally under its own fan
// controller, stepped together for a shared dt and aggregated into
// rack-level telemetry.
//
// # Determinism contract
//
// Stepping fans out over the shared internal/par worker pool under the
// repository's contract: job i writes only the state owned by server i
// (its server, controller and fan-change counter), and every cross-server
// reduction — energy sums, the simultaneous power peak, inlet/DIMM/CPU
// temperature maxima, the wall-power roll-up — runs serially in index
// order after the fan-out barrier. Rack telemetry is therefore byte
// identical for any worker count, which the race-enabled tests in this
// package and in internal/experiments assert. Workers = 1 is the serial
// reference path.
//
// # Power-delivery chain
//
// Each slot may carry a power.PSUModel (per-spec, or a rack-wide default)
// and the rack a shared power.PDUModel: after every step the per-server
// DC draws are lifted through their PSU efficiency curves, summed, and
// passed through the PDU to the instantaneous wall draw at the utility
// feed. Telemetry tracks wall energy, conversion-loss energy and the peak
// wall draw next to the DC-side metrics; WallPowerWith answers the
// what-if query ("what would the wall draw if slot i carried extra DC
// load?") behind power-capped placement. With no PSUs and no PDU the
// chain is the identity: wall telemetry mirrors the DC side exactly and
// the loss is exactly zero, so attaching the chain never perturbs the
// physics.
//
// # Facility cooling loop
//
// A cooling.Facility (CRAC + chiller, see internal/cooling) closes the
// chain past the wall: every wall Watt becomes room heat removed at a
// load- and setpoint-dependent cost, accounted serially after the barrier
// like every other reduction — cooling energy, facility energy (wall +
// cooling, integrated independently so the identity is a real property),
// the facility power peak and PUE. The CRAC's cold-aisle setpoint shifts
// every server's configured ambient by the same delta at construction,
// which is the facility-scope version of the paper's tradeoff: a warmer
// aisle makes the chiller cheaper per Watt but every server leakier and
// its fans busier. With no facility attached the cooling power is exactly
// zero, PUE is exactly 1, and every pre-existing metric is bit-identical
// to a facility-less rack.
//
// # Macro windows
//
// The event-driven kernel (internal/sched) splits Step's two halves:
// TickControllers applies loads and runs every fan controller for one
// decision instant, QuietHorizon asks how long every controller promises
// to stay quiet (control.HorizonPromiser; a non-promising controller pins
// the horizon to one step), and Advance crosses the granted window in
// per-server closed-form macro-steps (server.MacroWindow) under the same
// determinism contract — the fan-out writes slot-i state only, and every
// roll-up runs serially in index order afterwards. Energies are
// integrated from each server's closed-form window energy, with the
// window's mean DC draw lifted through the PSU/PDU/CRAC chain once
// instead of per step; temperature maxima fold in every sub-step boundary
// sample. Advance(dt, 1) is Step(dt) minus the controller tick, which is
// how the kernel preserves exact fixed-dt semantics wherever a quiet
// window cannot be granted.
//
// # Faults and health
//
// ApplyFault/ClearFault inject internal/fault events between steps — fan
// stick/failure (the bank's per-fan latches), PSU droop (a per-slot
// efficiency derate on the AC lift), PSU failure (server.SetPowered:
// dark slot, zero draw and heat, skipped controller tick), forced trips,
// ambient excursions and facility faults (a CRAC outage zeroes cooling
// power and heat-soaks every aisle; a degraded chiller inflates cooling
// power). Both calls are serial rack mutations, never concurrent with
// Step/Advance; windowed events additionally pin their affected servers to
// plain fixed-dt stepping (server.PinFixedDt) for the window, preserving
// the macro-window contract. Health(i) folds the fault state into the
// scheduler-facing Healthy/Tripped/Failed view, and TripRisk reports when
// any live server sits inside the trip-guard band so the event kernel can
// shorten its windows to observe an imminent latch on the step it happens.
//
// When Config.ReliabilitySampleEvery > 0, each server's hottest die is
// sampled at that cadence (serially, at the observation instants of steps
// and macro windows) and folded through reliability.Analyze into the
// telemetry's roll-up: worst Arrhenius acceleration, worst time above the
// paper's 75 °C cap, summed thermal-cycling damage. Sampling off (the
// default) leaves every metric bit-identical to a rack without the
// feature.
//
// The rack is the substrate for internal/sched: a dispatcher places jobs
// onto servers, the rack advances the physics, and the telemetry says
// which placement policy heated the room — and loaded the wall — least.
package rack
