package rack

import (
	"fmt"

	"repro/internal/telemetry"
)

// AttachTelemetry fans the paper's per-server CSTH channel list out over
// every slot of the rack on one shared harness: slot i's sensors are
// registered under the "rack<i>." prefix (zero-padded to two digits, so
// names sort by slot), followed by the rack-level delivery-chain
// channels the single-server harness cannot see:
//
//	rack.dc.power       summed DC draw at the server plugs (W)
//	rack.wall.power     AC draw behind the PSU/PDU chain (W)
//	rack.cooling.power  CRAC+chiller electrical draw, 0 without a facility (W)
//	rack.facility.power wall + cooling (W)
//	rack.pue            facility/wall ratio, 1 without a facility
//
// Drive the harness with h.Advance(r.Now()) after each Step or Advance.
// Under the event kernel (sched.TraceConfig.EventStepping), the rack is
// advanced in macro windows, so a poll cadence finer than the window
// length would observe nothing between window boundaries: set
// sched.TraceConfig.SampleEvery to the harness period and the kernel
// pins a wake step on every poll instant — samples then land on exactly
// the same simulated seconds in both stepping modes.
func (r *Rack) AttachTelemetry(h *telemetry.Harness) error {
	for i, st := range r.servers {
		prefix := fmt.Sprintf("rack%02d.", i)
		if err := st.srv.AttachTelemetryPrefixed(h, prefix); err != nil {
			return err
		}
	}
	if err := h.Register("rack.dc.power", "W", func() float64 {
		return float64(r.DCPower())
	}); err != nil {
		return err
	}
	if err := h.Register("rack.wall.power", "W", func() float64 {
		return float64(r.WallPower())
	}); err != nil {
		return err
	}
	if err := h.Register("rack.cooling.power", "W", func() float64 {
		return float64(r.CoolingPower())
	}); err != nil {
		return err
	}
	if err := h.Register("rack.facility.power", "W", func() float64 {
		return float64(r.FacilityPower())
	}); err != nil {
		return err
	}
	return h.Register("rack.pue", "", func() float64 { return r.PUE() })
}
