package rack

import (
	"math"
	"testing"

	"repro/internal/cooling"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/units"
)

// chainRack builds a small heterogeneous rack with the full PSU/PDU/CRAC
// chain attached, so every roll-up path is exercised.
func eventChainRack(t testing.TB, n, workers int) *Rack {
	t.Helper()
	psu, pdu := power.DefaultPSU(), power.DefaultPDU()
	fac := cooling.DefaultFacility(20)
	specs := make([]ServerSpec, n)
	for i := range specs {
		cfg := server.T3Config()
		cfg.Ambient = units.Celsius(21 + 3*(i%4))
		cfg.NoiseSeed = int64(1000 * i)
		specs[i] = ServerSpec{Config: cfg}
	}
	r, err := New(Config{Servers: specs, Workers: workers, PSU: &psu, PDU: &pdu, Facility: &fac})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestAdvanceMatchesSteps pins the macro-window roll-ups to the fixed-dt
// reference: same loads, same span, energies within 1e-6 relative and
// temperature maxima within the macro drift tolerance.
func TestAdvanceMatchesSteps(t *testing.T) {
	const n, span = 4, 1200
	ev := eventChainRack(t, n, 1)
	ref := eventChainRack(t, n, 1)
	for i := 0; i < n; i++ {
		u := units.Percent(20 * (i + 1))
		ev.SetLoad(i, u)
		ref.SetLoad(i, u)
	}
	// Advance ticks no controllers, so tick the reference path's load
	// application the same way: specs carry no controllers, and Step's
	// tick half only applies loads in that case.
	ev.TickControllers(ev.Now())
	ev.Advance(1, span)
	for k := 0; k < span; k++ {
		ref.Step(1)
	}
	a, b := ev.Telemetry(), ref.Telemetry()
	relClose := func(name string, x, y, tol float64) {
		d := math.Abs(x - y)
		if y != 0 {
			d /= math.Abs(y)
		}
		if d > tol {
			t.Errorf("%s: event %g vs fixed %g (rel %g > %g)", name, x, y, d, tol)
		}
	}
	relClose("TotalEnergyKWh", a.TotalEnergyKWh, b.TotalEnergyKWh, 1e-6)
	relClose("FanEnergyKWh", a.FanEnergyKWh, b.FanEnergyKWh, 1e-9)
	relClose("WallEnergyKWh", a.WallEnergyKWh, b.WallEnergyKWh, 1e-6)
	relClose("CoolingEnergyKWh", a.CoolingEnergyKWh, b.CoolingEnergyKWh, 1e-5)
	relClose("FacilityEnergyKWh", a.FacilityEnergyKWh, b.FacilityEnergyKWh, 1e-6)
	relClose("PUE", a.PUE, b.PUE, 1e-5)
	if d := math.Abs(a.MaxCPUTempC - b.MaxCPUTempC); d > 0.3 {
		t.Errorf("MaxCPUTempC: %g vs %g", a.MaxCPUTempC, b.MaxCPUTempC)
	}
	if d := math.Abs(a.MaxDIMMTempC - b.MaxDIMMTempC); d > 0.05 {
		t.Errorf("MaxDIMMTempC: %g vs %g", a.MaxDIMMTempC, b.MaxDIMMTempC)
	}
	if a.MaxInletC != b.MaxInletC {
		t.Errorf("MaxInletC: %g vs %g (constant inputs — must be exact)", a.MaxInletC, b.MaxInletC)
	}
	if ev.Now() != ref.Now() {
		t.Errorf("clocks diverged: %g vs %g", ev.Now(), ref.Now())
	}
	// The facility identity must hold on the macro path too.
	if d := math.Abs(a.FacilityEnergyKWh - (a.WallEnergyKWh + a.CoolingEnergyKWh)); d > 1e-12 {
		t.Errorf("facility identity broken by %g", d)
	}
}

// TestAdvanceWorkerCountInvariant: macro windows keep the determinism
// contract — byte-identical telemetry for any worker bound.
func TestAdvanceWorkerCountInvariant(t *testing.T) {
	run := func(workers int) Telemetry {
		r := eventChainRack(t, 6, workers)
		for i := 0; i < 6; i++ {
			r.SetLoad(i, units.Percent(10*(i+1)))
		}
		for w := 0; w < 5; w++ {
			r.TickControllers(r.Now())
			r.Advance(1, 137)
		}
		return r.Telemetry()
	}
	if a, b := run(1), run(4); a != b {
		t.Fatalf("telemetry differs across worker counts:\n1: %+v\n4: %+v", a, b)
	}
}

// TestRackStepAllocationFree pins the zero-allocation satellite at rack
// scope (serial workers: the fan-out itself is the parallel path's cost).
func TestRackStepAllocationFree(t *testing.T) {
	r := eventChainRack(t, 4, 1)
	for i := 0; i < 4; i++ {
		r.SetLoad(i, 60)
	}
	for k := 0; k < 64; k++ {
		r.Step(1)
	}
	if avg := testing.AllocsPerRun(200, func() { r.Step(1) }); avg != 0 {
		t.Fatalf("Rack.Step allocates %.1f objects/op at steady state, want 0", avg)
	}
}
