// Package units defines the physical quantity types shared across the
// simulator, the controllers and the experiment harness.
//
// All quantities are thin float64 wrappers. They exist so that a CPU
// temperature cannot be accidentally passed where a fan speed is expected,
// and so that formatting is uniform across reports.
package units

import "fmt"

// Celsius is a temperature in degrees Celsius.
type Celsius float64

// Watts is an instantaneous power.
type Watts float64

// Joules is an energy.
type Joules float64

// RPM is a fan rotational speed in revolutions per minute.
type RPM float64

// Percent is a utilization level in [0, 100].
type Percent float64

// GramsPerSecond is an air mass flow.
type GramsPerSecond float64

// KWh converts an energy to kilowatt-hours, the unit used by Table I of the
// paper.
func (j Joules) KWh() float64 { return float64(j) / 3.6e6 }

// JoulesFromKWh converts kilowatt-hours back to Joules.
func JoulesFromKWh(kwh float64) Joules { return Joules(kwh * 3.6e6) }

// Energy accumulates power over a time step of dt seconds.
func Energy(p Watts, dtSeconds float64) Joules { return Joules(float64(p) * dtSeconds) }

func (c Celsius) String() string        { return fmt.Sprintf("%.2f°C", float64(c)) }
func (w Watts) String() string          { return fmt.Sprintf("%.2fW", float64(w)) }
func (j Joules) String() string         { return fmt.Sprintf("%.1fJ", float64(j)) }
func (r RPM) String() string            { return fmt.Sprintf("%.0fRPM", float64(r)) }
func (p Percent) String() string        { return fmt.Sprintf("%.1f%%", float64(p)) }
func (g GramsPerSecond) String() string { return fmt.Sprintf("%.2fg/s", float64(g)) }

// Clamp limits p to the valid utilization range [0, 100].
func (p Percent) Clamp() Percent {
	if p < 0 {
		return 0
	}
	if p > 100 {
		return 100
	}
	return p
}

// Fraction returns the utilization as a fraction in [0, 1].
func (p Percent) Fraction() float64 { return float64(p.Clamp()) / 100 }

// FromFraction builds a Percent from a [0, 1] fraction.
func FromFraction(f float64) Percent { return Percent(f * 100).Clamp() }

// ClampRPM limits r to [lo, hi].
func ClampRPM(r, lo, hi RPM) RPM {
	if r < lo {
		return lo
	}
	if r > hi {
		return hi
	}
	return r
}

// MaxC returns the larger of two temperatures.
func MaxC(a, b Celsius) Celsius {
	if a > b {
		return a
	}
	return b
}

// MinC returns the smaller of two temperatures.
func MinC(a, b Celsius) Celsius {
	if a < b {
		return a
	}
	return b
}
