package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKWhRoundTrip(t *testing.T) {
	f := func(kwh float64) bool {
		if math.IsNaN(kwh) || math.IsInf(kwh, 0) || math.Abs(kwh) > 1e12 {
			return true
		}
		back := JoulesFromKWh(kwh).KWh()
		return math.Abs(back-kwh) <= 1e-9*math.Max(1, math.Abs(kwh))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKWhKnownValue(t *testing.T) {
	// 1 kWh == 3.6 MJ.
	if got := Joules(3.6e6).KWh(); got != 1.0 {
		t.Fatalf("3.6e6 J = %v kWh, want 1", got)
	}
}

func TestEnergy(t *testing.T) {
	if got := Energy(100, 60); got != 6000 {
		t.Fatalf("100W over 60s = %v, want 6000 J", got)
	}
	if got := Energy(0, 1e6); got != 0 {
		t.Fatalf("0W = %v J, want 0", got)
	}
}

func TestPercentClamp(t *testing.T) {
	cases := []struct {
		in, want Percent
	}{
		{-5, 0}, {0, 0}, {50, 50}, {100, 100}, {150, 100},
	}
	for _, c := range cases {
		if got := c.in.Clamp(); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPercentClampProperty(t *testing.T) {
	f := func(p float64) bool {
		c := Percent(p).Clamp()
		return c >= 0 && c <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFractionRoundTrip(t *testing.T) {
	for _, p := range []Percent{0, 10, 25, 33.3, 50, 99, 100} {
		got := FromFraction(p.Fraction())
		if math.Abs(float64(got-p)) > 1e-9 {
			t.Errorf("FromFraction(Fraction(%v)) = %v", p, got)
		}
	}
}

func TestFractionNaNSafe(t *testing.T) {
	// NaN does not satisfy p < 0 or p > 100, so Clamp passes it through;
	// Fraction then propagates NaN. Document that callers must not feed NaN.
	if f := Percent(50).Fraction(); f != 0.5 {
		t.Fatalf("Fraction(50) = %v, want 0.5", f)
	}
}

func TestClampRPM(t *testing.T) {
	if got := ClampRPM(1000, 1800, 4200); got != 1800 {
		t.Errorf("ClampRPM low = %v", got)
	}
	if got := ClampRPM(9000, 1800, 4200); got != 4200 {
		t.Errorf("ClampRPM high = %v", got)
	}
	if got := ClampRPM(3000, 1800, 4200); got != 3000 {
		t.Errorf("ClampRPM mid = %v", got)
	}
}

func TestMinMaxC(t *testing.T) {
	if MaxC(10, 20) != 20 || MaxC(20, 10) != 20 {
		t.Error("MaxC wrong")
	}
	if MinC(10, 20) != 10 || MinC(20, 10) != 10 {
		t.Error("MinC wrong")
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Celsius(70.125).String(), "70.12°C"},
		{Watts(12.5).String(), "12.50W"},
		{RPM(2400).String(), "2400RPM"},
		{Percent(99.9).String(), "99.9%"},
		{Joules(1234.56).String(), "1234.6J"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}
