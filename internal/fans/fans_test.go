package fans

import (
	"math"
	"testing"

	"repro/internal/units"
)

func newBank(t *testing.T) *Bank {
	t.Helper()
	b, err := NewBank(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBankValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Pairs = 0
	if _, err := NewBank(bad); err == nil {
		t.Error("zero pairs should error")
	}
	bad = DefaultConfig()
	bad.MinRPM = 0
	if _, err := NewBank(bad); err == nil {
		t.Error("zero MinRPM should error")
	}
	bad = DefaultConfig()
	bad.MaxRPM = bad.MinRPM
	if _, err := NewBank(bad); err == nil {
		t.Error("empty RPM range should error")
	}
}

func TestBankShape(t *testing.T) {
	b := newBank(t)
	if b.NumFans() != 6 {
		t.Fatalf("fan count = %d, want 6 (3 pairs)", b.NumFans())
	}
	lo, hi := b.Range()
	if lo != 1800 || hi != 4200 {
		t.Fatalf("range = [%v, %v]", lo, hi)
	}
}

func TestLevels(t *testing.T) {
	b := newBank(t)
	levels := b.Levels(600)
	want := []units.RPM{1800, 2400, 3000, 3600, 4200}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v", levels)
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
	if got := b.Levels(0); len(got) != 5 {
		t.Fatalf("default step levels = %v", got)
	}
}

func TestSetAllClampsAndSlews(t *testing.T) {
	b := newBank(t)
	b.SetAll(99999)
	if b.Target() != 4200 {
		t.Fatalf("target = %v, want clamp to 4200", b.Target())
	}
	b.SetAll(0)
	if b.Target() != 1800 {
		t.Fatalf("target = %v, want clamp to 1800", b.Target())
	}
	// Starting at 3600 going to 1800: at 600 RPM/s it takes 3 s.
	b.Step(1)
	if got := b.MeanRPM(); math.Abs(float64(got)-3000) > 1e-9 {
		t.Fatalf("after 1s: %v, want 3000", got)
	}
	b.Step(1)
	b.Step(1)
	if got := b.MeanRPM(); got != 1800 {
		t.Fatalf("after 3s: %v, want 1800", got)
	}
	// Overshoot must not occur.
	b.Step(10)
	if got := b.MeanRPM(); got != 1800 {
		t.Fatalf("overshoot: %v", got)
	}
}

func TestStepIgnoresNonPositiveDt(t *testing.T) {
	b := newBank(t)
	b.SetAll(1800)
	before := b.MeanRPM()
	b.Step(0)
	b.Step(-1)
	if b.MeanRPM() != before {
		t.Fatal("non-positive dt moved fans")
	}
}

func TestPowerIsCubicInSpeed(t *testing.T) {
	b := newBank(t)
	b.SetAll(1800)
	b.Step(60)
	p1 := float64(b.Power())
	b.SetAll(3600)
	b.Step(60)
	p2 := float64(b.Power())
	if math.Abs(p2/p1-8) > 1e-6 {
		t.Fatalf("bank power ratio %g, want 8 (cubic)", p2/p1)
	}
	// Calibrated magnitude: whole bank at 3300 RPM ≈ 12.6 W.
	b.SetAll(3300)
	b.Step(60)
	if p := float64(b.Power()); math.Abs(p-12.58) > 0.3 {
		t.Fatalf("Pbank(3300) = %g", p)
	}
}

func TestSetPair(t *testing.T) {
	b := newBank(t)
	if err := b.SetPair(5, 2000); err == nil {
		t.Error("out-of-range pair should error")
	}
	if err := b.SetPair(-1, 2000); err == nil {
		t.Error("negative pair should error")
	}
	if err := b.SetPair(1, 2400); err != nil {
		t.Fatal(err)
	}
	b.Step(60)
	// Pair 1 at 2400, pairs 0 and 2 still at 3600.
	want := (2*2400.0 + 4*3600.0) / 6
	if got := float64(b.MeanRPM()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", got, want)
	}
}

func TestTachRipple(t *testing.T) {
	b := newBank(t)
	b.Step(60)
	r0, err := b.Tach(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Ripple is bounded by the configured amplitude.
	if math.Abs(float64(r0)-3600)/3600 > 0.006 {
		t.Fatalf("tach ripple too large: %v", r0)
	}
	if _, err := b.Tach(99, 0); err == nil {
		t.Error("bad index should error")
	}
	// Readings vary over time (it is a ripple, not a constant offset).
	r1, _ := b.Tach(0, 1)
	r2, _ := b.Tach(0, 2)
	if r0 == r1 && r1 == r2 {
		t.Fatal("tach reading never changes")
	}
}

func TestStuckFanIgnoresCommands(t *testing.T) {
	b := newBank(t)
	if err := b.StickFan(0); err != nil {
		t.Fatal(err)
	}
	b.SetAll(1800)
	b.Step(10)
	// Fan 0 stuck at 3600; the other five at 1800.
	r, _ := b.Tach(0, 0)
	if math.Abs(float64(r)-3600) > 30 {
		t.Fatalf("stuck fan moved: %v", r)
	}
	want := (3600.0 + 5*1800.0) / 6
	if got := float64(b.MeanRPM()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean with stuck fan = %g, want %g", got, want)
	}
	// Target reports a healthy fan's command.
	if b.Target() != 1800 {
		t.Fatalf("Target = %v, want healthy fan's 1800", b.Target())
	}
	if err := b.UnstickFan(0); err != nil {
		t.Fatal(err)
	}
	b.SetAll(1800)
	b.Step(10)
	if b.MeanRPM() != 1800 {
		t.Fatal("unstuck fan did not recover")
	}
	if err := b.StickFan(-1); err == nil {
		t.Error("bad index should error")
	}
	if err := b.UnstickFan(99); err == nil {
		t.Error("bad index should error")
	}
}

func TestSupplyCalibration(t *testing.T) {
	s := NewSupply()
	s.SetCurrent(0.5)
	if got := float64(s.RPM()); math.Abs(got-1800) > 1 {
		t.Fatalf("0.5A → %gRPM, want 1800", got)
	}
	s.SetCurrent(2.0)
	if got := float64(s.RPM()); math.Abs(got-4200) > 1 {
		t.Fatalf("2.0A → %gRPM, want 4200", got)
	}
	// Round trip.
	for _, r := range []units.RPM{1800, 2400, 3000, 3600, 4200} {
		s.SetCurrent(s.CurrentFor(r))
		if got := s.RPM(); math.Abs(float64(got-r)) > 1 {
			t.Fatalf("round trip %v → %v", r, got)
		}
	}
	// Clamping.
	s.SetCurrent(-3)
	if s.Current() != 0 {
		t.Fatal("negative current not clamped")
	}
	s.SetCurrent(99)
	if s.Current() != s.MaxAmps {
		t.Fatal("over-current not clamped")
	}
	if a := s.CurrentFor(100); a != 0 {
		t.Fatalf("CurrentFor low speed = %g", a)
	}
	if a := s.CurrentFor(100000); a != s.MaxAmps {
		t.Fatalf("CurrentFor huge speed = %g", a)
	}
}

func TestFailedFanStopsAndDrawsNothing(t *testing.T) {
	b := newBank(t)
	b.SetAll(3000)
	b.Step(10)
	healthy := float64(b.Power())
	if err := b.FailFan(0); err != nil {
		t.Fatal(err)
	}
	// A failed fan moves no air and draws no power, immediately.
	r, _ := b.Tach(0, 0)
	if r != 0 {
		t.Fatalf("failed fan still spinning at %v", r)
	}
	want := 5 * 3000.0 / 6
	if got := float64(b.MeanRPM()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean with failed fan = %g, want %g", got, want)
	}
	if got := float64(b.Power()); got >= healthy {
		t.Fatalf("power %g did not drop below healthy %g", got, healthy)
	}
	// Commands are ignored while failed.
	b.SetAll(4200)
	b.Step(10)
	if r, _ := b.Tach(0, 0); r != 0 {
		t.Fatalf("failed fan obeyed a command: %v", r)
	}
	// UnstickFan lets it slew back to its last pre-fault command (commands
	// while failed were dropped, target included).
	if err := b.UnstickFan(0); err != nil {
		t.Fatal(err)
	}
	b.Step(10)
	if r, _ := b.Tach(0, 0); r != 3000 {
		t.Fatalf("recovered fan at %v, want pre-fault 3000", r)
	}
	if err := b.FailFan(6); err == nil {
		t.Error("bad index should error")
	}
}

func TestSpindownAndRecovery(t *testing.T) {
	b := newBank(t)
	b.SetAll(3600)
	b.Step(10)
	b.Spindown()
	if b.MeanRPM() != 0 || b.Power() != 0 {
		t.Fatalf("after spindown mean=%v power=%v, want both 0", b.MeanRPM(), b.Power())
	}
	if b.Settled() {
		t.Fatal("spun-down bank must not report settled")
	}
	// The targets were never cleared: stepping slews every fan back.
	b.Step(10)
	if b.MeanRPM() != 3600 {
		t.Fatalf("recovery mean = %v, want 3600", b.MeanRPM())
	}
	if !b.Settled() {
		t.Fatal("recovered bank should settle")
	}
}
