// Package fans models the cooling subsystem of the simulated server: six
// fans arranged in three rows of two, each pair driven by its own external
// power supply, exactly as in the paper's experimental setup (Section III).
//
// The physical fans cannot jump between speeds instantaneously; a slew-rate
// limit models spin-up/spin-down. Each fan exposes a tachometer whose
// reading carries a small deterministic ripple, standing in for the paper's
// vibration-sensor speed verification. A fan can be forced into a "stuck"
// fault state for failure-injection experiments (an extension beyond the
// paper).
package fans

import (
	"fmt"
	"math"

	"repro/internal/power"
	"repro/internal/units"
)

// Fan models a single fan unit.
type Fan struct {
	name     string
	actual   units.RPM // current physical speed
	target   units.RPM
	minRPM   units.RPM
	maxRPM   units.RPM
	slewRate float64 // RPM per second toward the target
	law      power.FanLaw
	stuck    bool
	phase    float64 // tach ripple phase
}

// Config describes the fan population of a server.
type Config struct {
	Pairs      int       // number of fan pairs (paper: 3)
	MinRPM     units.RPM // lowest commanded speed (paper: 1800)
	MaxRPM     units.RPM // highest commanded speed (paper: 4200)
	InitialRPM units.RPM // speed at power-on (paper protocol: 3600)
	SlewRate   float64   // RPM/s a fan can change (default 600)
	BankCoeff  float64   // cubic coefficient for the WHOLE bank, W/RPM³
	TachRipple float64   // relative tach reading ripple amplitude (e.g. 0.005)
}

// DefaultConfig returns the paper's fan arrangement with the calibrated
// cubic coefficient.
func DefaultConfig() Config {
	return Config{
		Pairs:      3,
		MinRPM:     1800,
		MaxRPM:     4200,
		InitialRPM: 3600,
		SlewRate:   600,
		BankCoeff:  3.5e-10,
		TachRipple: 0.005,
	}
}

// Bank is the set of fan pairs plus their supplies.
type Bank struct {
	fans   []*Fan
	cfg    Config
	perFan power.FanLaw

	// meanValid/powerValid cache MeanRPM and Power between speed changes:
	// the server layer asks for both every simulation step while the fans
	// only move in Step. The cached values are the same summations, just
	// not repeated.
	meanValid  bool
	meanRPM    units.RPM
	powerValid bool
	powerW     units.Watts

	// settled is true while every healthy fan sits exactly at its target,
	// making Step a no-op; commanding a new speed clears it.
	settled bool
}

// NewBank constructs a bank from cfg. It validates the configuration.
func NewBank(cfg Config) (*Bank, error) {
	if cfg.Pairs <= 0 {
		return nil, fmt.Errorf("fans: need at least one pair, got %d", cfg.Pairs)
	}
	if cfg.MinRPM <= 0 || cfg.MaxRPM <= cfg.MinRPM {
		return nil, fmt.Errorf("fans: bad RPM range [%v, %v]", cfg.MinRPM, cfg.MaxRPM)
	}
	if cfg.SlewRate <= 0 {
		cfg.SlewRate = 600
	}
	init := units.ClampRPM(cfg.InitialRPM, cfg.MinRPM, cfg.MaxRPM)
	n := cfg.Pairs * 2
	b := &Bank{
		cfg:    cfg,
		perFan: power.FanLaw{Coeff: cfg.BankCoeff / float64(n)},
	}
	for i := 0; i < n; i++ {
		b.fans = append(b.fans, &Fan{
			name:     fmt.Sprintf("FM%d-%c", i/2, 'A'+rune(i%2)),
			actual:   init,
			target:   init,
			minRPM:   cfg.MinRPM,
			maxRPM:   cfg.MaxRPM,
			slewRate: cfg.SlewRate,
			law:      b.perFan,
			phase:    float64(i) * 1.7,
		})
	}
	return b, nil
}

// NumFans returns the number of individual fans.
func (b *Bank) NumFans() int { return len(b.fans) }

// SetAll commands every pair to the same speed, the mode the paper's
// experiments use ("we set the same fan speed for all three pairs").
// The command is clamped to the legal range.
func (b *Bank) SetAll(r units.RPM) {
	for i := range b.fans {
		b.setFan(i, r)
	}
}

// SetPair commands one pair (0-based) to a speed. Out-of-range pair indices
// are reported as errors.
func (b *Bank) SetPair(pair int, r units.RPM) error {
	if pair < 0 || pair >= b.cfg.Pairs {
		return fmt.Errorf("fans: pair %d out of range [0,%d)", pair, b.cfg.Pairs)
	}
	b.setFan(pair*2, r)
	b.setFan(pair*2+1, r)
	return nil
}

func (b *Bank) setFan(i int, r units.RPM) {
	f := b.fans[i]
	if f.stuck {
		return
	}
	f.target = units.ClampRPM(r, f.minRPM, f.maxRPM)
	if f.target != f.actual {
		b.settled = false
	}
}

// Settled reports whether every healthy fan sits exactly at its commanded
// target, making Step a no-op for any dt. The thermal macro-stepping
// kernel uses this as an eligibility gate: while a fan is slewing, the
// airflow conductances move every step and the system is not
// time-invariant, so the server pins itself to plain fixed-dt steps until
// the bank settles.
func (b *Bank) Settled() bool { return b.settled }

// Step advances fan physics by dt seconds: each fan slews toward its target.
func (b *Bank) Step(dt float64) {
	if dt <= 0 || b.settled {
		return
	}
	b.meanValid = false
	b.powerValid = false
	b.settled = true
	for _, f := range b.fans {
		if f.stuck {
			continue
		}
		delta := float64(f.target - f.actual)
		maxMove := f.slewRate * dt
		switch {
		case math.Abs(delta) <= maxMove:
			f.actual = f.target
		case delta > 0:
			f.actual += units.RPM(maxMove)
		default:
			f.actual -= units.RPM(maxMove)
		}
		if f.actual != f.target {
			b.settled = false
		}
	}
}

// Power returns the electrical power drawn by the whole bank right now.
// This is the quantity the paper's external supplies make separately
// measurable.
func (b *Bank) Power() units.Watts {
	if b.powerValid {
		return b.powerW
	}
	var total units.Watts
	for _, f := range b.fans {
		total += f.law.Power(f.actual)
	}
	b.powerW = total
	b.powerValid = true
	return total
}

// MeanRPM returns the average actual speed across fans.
func (b *Bank) MeanRPM() units.RPM {
	if len(b.fans) == 0 {
		return 0
	}
	if b.meanValid {
		return b.meanRPM
	}
	var s float64
	for _, f := range b.fans {
		s += float64(f.actual)
	}
	b.meanRPM = units.RPM(s / float64(len(b.fans)))
	b.meanValid = true
	return b.meanRPM
}

// Target returns the commanded speed of the first healthy fan (the bank is
// normally commanded uniformly).
func (b *Bank) Target() units.RPM {
	for _, f := range b.fans {
		if !f.stuck {
			return f.target
		}
	}
	if len(b.fans) > 0 {
		return b.fans[0].target
	}
	return 0
}

// Tach returns the tachometer reading of fan i at simulation time t seconds.
// The reading carries a small sinusoidal ripple, standing in for vibration
// sensing noise; use MeanRPM for the true value.
func (b *Bank) Tach(i int, t float64) (units.RPM, error) {
	if i < 0 || i >= len(b.fans) {
		return 0, fmt.Errorf("fans: fan %d out of range", i)
	}
	f := b.fans[i]
	ripple := 1 + b.cfg.TachRipple*math.Sin(0.9*t+f.phase)
	return units.RPM(float64(f.actual) * ripple), nil
}

// StickFan freezes fan i at its current speed (fault injection). Commands to
// a stuck fan are ignored until UnstickFan.
func (b *Bank) StickFan(i int) error {
	if i < 0 || i >= len(b.fans) {
		return fmt.Errorf("fans: fan %d out of range", i)
	}
	b.fans[i].stuck = true
	return nil
}

// FailFan spins fan i down to zero and latches it there — an outright
// failure, unlike StickFan's freeze-at-current-speed: a failed fan moves no
// air and draws no power. Commands are ignored until UnstickFan, which lets
// the fan slew back to its commanded target.
func (b *Bank) FailFan(i int) error {
	if i < 0 || i >= len(b.fans) {
		return fmt.Errorf("fans: fan %d out of range", i)
	}
	b.fans[i].stuck = true
	b.fans[i].actual = 0
	b.meanValid = false
	b.powerValid = false
	return nil
}

// UnstickFan clears the fault on fan i.
func (b *Bank) UnstickFan(i int) error {
	if i < 0 || i >= len(b.fans) {
		return fmt.Errorf("fans: fan %d out of range", i)
	}
	b.fans[i].stuck = false
	// The fan may have drifted from its target while frozen; let Step slew
	// it again.
	b.settled = false
	return nil
}

// Spindown drops every fan to zero immediately — host power loss, not a
// commanded speed — and marks the bank unsettled so that, once the host is
// powered again and Step runs, the fans slew back to their targets.
func (b *Bank) Spindown() {
	for _, f := range b.fans {
		f.actual = 0
	}
	b.meanValid = false
	b.powerValid = false
	b.settled = false
}

// Range returns the legal command range.
func (b *Bank) Range() (lo, hi units.RPM) { return b.cfg.MinRPM, b.cfg.MaxRPM }

// Levels returns the discrete speed settings the paper's controllers use:
// MinRPM to MaxRPM in steps of `step` RPM.
func (b *Bank) Levels(step units.RPM) []units.RPM {
	if step <= 0 {
		step = 600
	}
	var out []units.RPM
	for r := b.cfg.MinRPM; r <= b.cfg.MaxRPM; r += step {
		out = append(out, r)
	}
	return out
}

// Supply models one channel of the external lab power supply driving a fan
// pair (the paper uses Agilent E3644A units over RS-232). The supply maps a
// commanded current to a fan speed through a calibrated linear relation,
// mirroring how the paper's DLC-PC "sets the fan speed ... by increasing or
// decreasing the current of the power supplies".
type Supply struct {
	// RPMPerAmp and OffsetRPM define the current→speed calibration.
	RPMPerAmp float64
	OffsetRPM float64
	MaxAmps   float64
	amps      float64
}

// NewSupply returns a supply calibrated so that 0.5 A ≈ 1800 RPM and
// 2.0 A ≈ 4200 RPM, a plausible span for the paper's fans.
func NewSupply() *Supply {
	return &Supply{RPMPerAmp: 1600, OffsetRPM: 1000, MaxAmps: 2.5}
}

// SetCurrent commands a supply current in Amps, clamped to [0, MaxAmps].
func (s *Supply) SetCurrent(a float64) {
	if a < 0 {
		a = 0
	}
	if a > s.MaxAmps {
		a = s.MaxAmps
	}
	s.amps = a
}

// Current returns the present current setting.
func (s *Supply) Current() float64 { return s.amps }

// RPM returns the fan speed this current produces.
func (s *Supply) RPM() units.RPM {
	return units.RPM(s.OffsetRPM + s.RPMPerAmp*s.amps)
}

// CurrentFor returns the current needed for a target speed.
func (s *Supply) CurrentFor(r units.RPM) float64 {
	a := (float64(r) - s.OffsetRPM) / s.RPMPerAmp
	if a < 0 {
		a = 0
	}
	if a > s.MaxAmps {
		a = s.MaxAmps
	}
	return a
}
