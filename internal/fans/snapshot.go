package fans

import (
	"fmt"

	"repro/internal/units"
)

// State is the serializable mutable state of a Bank. Settled is stored, not
// derived: Spindown leaves a bank unsettled even when a fan happens to sit
// at its target, and the macro-stepping eligibility gate reads exactly this
// latch. The MeanRPM/Power memos are derived caches and are invalidated on
// restore.
type State struct {
	Actual  []units.RPM
	Target  []units.RPM
	Stuck   []bool
	Settled bool
}

// State captures the bank for a checkpoint.
func (b *Bank) State() State {
	st := State{
		Actual:  make([]units.RPM, len(b.fans)),
		Target:  make([]units.RPM, len(b.fans)),
		Stuck:   make([]bool, len(b.fans)),
		Settled: b.settled,
	}
	for i, f := range b.fans {
		st.Actual[i] = f.actual
		st.Target[i] = f.target
		st.Stuck[i] = f.stuck
	}
	return st
}

// SetState restores a captured State into a bank built from the same
// configuration.
func (b *Bank) SetState(st State) error {
	if len(st.Actual) != len(b.fans) || len(st.Target) != len(b.fans) || len(st.Stuck) != len(b.fans) {
		return fmt.Errorf("fans: state has %d/%d/%d fans, bank has %d",
			len(st.Actual), len(st.Target), len(st.Stuck), len(b.fans))
	}
	for i, f := range b.fans {
		f.actual = st.Actual[i]
		f.target = st.Target[i]
		f.stuck = st.Stuck[i]
	}
	b.settled = st.Settled
	b.meanValid = false
	b.powerValid = false
	return nil
}
