package plot

import (
	"strings"
	"testing"
)

func TestSeriesValidate(t *testing.T) {
	if err := (Series{Name: "a", X: []float64{1}, Y: []float64{1}}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Series{Name: "a", X: []float64{1}, Y: nil}).Validate(); err == nil {
		t.Error("mismatch should error")
	}
	if err := (Series{Name: "a"}).Validate(); err == nil {
		t.Error("empty should error")
	}
}

func TestChartRender(t *testing.T) {
	c := Chart{
		Title:  "Processor Temperature",
		XLabel: "time (min)",
		YLabel: "°C",
		Width:  40,
		Height: 10,
		Series: []Series{
			{Name: "1800 RPM", X: []float64{0, 1, 2, 3}, Y: []float64{40, 60, 75, 85}},
			{Name: "4200 RPM", X: []float64{0, 1, 2, 3}, Y: []float64{40, 48, 50, 52}},
		},
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Processor Temperature", "1800 RPM", "4200 RPM", "time (min)", "[*]", "[o]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in chart:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 14 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestChartRenderErrors(t *testing.T) {
	var sb strings.Builder
	if err := (Chart{}).Render(&sb); err == nil {
		t.Error("no series should error")
	}
	bad := Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{}}}}
	if err := bad.Render(&sb); err == nil {
		t.Error("invalid series should error")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Constant series must not divide by zero.
	c := Chart{
		Width: 10, Height: 4,
		Series: []Series{{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}}},
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "flat") {
		t.Fatal("legend missing")
	}
}

func TestChartDefaults(t *testing.T) {
	c := Chart{Series: []Series{{Name: "d", X: []float64{0, 1}, Y: []float64{0, 1}}}}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) < 100 {
		t.Fatal("default-size chart too small")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteCSV(&sb,
		Series{Name: "temp", X: []float64{0, 10}, Y: []float64{40, 50}},
		Series{Name: "power", X: []float64{0}, Y: []float64{500}},
	)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "series,x,y" || lines[1] != "temp,0,40" || lines[3] != "power,0,500" {
		t.Fatalf("csv = %v", lines)
	}
	if err := WriteCSV(&sb, Series{Name: "bad"}); err == nil {
		t.Error("invalid series should error")
	}
}

func TestTable(t *testing.T) {
	var sb strings.Builder
	err := Table(&sb,
		[]string{"Test", "Control", "Energy"},
		[][]string{
			{"1", "Default", "0.6695"},
			{"1", "LUT", "0.6556"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Default") || !strings.Contains(out, "0.6556") {
		t.Fatalf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	// Mismatched row length errors.
	if err := Table(&sb, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Error("bad row should error")
	}
}
