// Package plot renders experiment results as ASCII line charts and CSV
// series — the reproduction's stand-in for the paper's MATLAB figures.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Validate reports malformed series.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("plot: series %q empty", s.Name)
	}
	return nil
}

// Chart is a multi-series ASCII chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 20)
	Series []Series
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart to w.
func (c Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if err := s.Validate(); err != nil {
			return err
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range slightly for readability.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := int((ymax - s.Y[i]) / (ymax - ymin) * float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&sb, "%s\n", c.YLabel)
	}
	for r, line := range grid {
		yVal := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&sb, "%8.1f |%s\n", yVal, string(line))
	}
	fmt.Fprintf(&sb, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%8s  %-*.6g%*.6g\n", "", width/2, xmin, width-width/2, xmax)
	if c.XLabel != "" {
		fmt.Fprintf(&sb, "%8s  %s\n", "", c.XLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&sb, "  [%c] %s\n", markers[si%len(markers)], s.Name)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV writes the series in long form: series,x,y.
func WriteCSV(w io.Writer, series ...Series) error {
	if _, err := io.WriteString(w, "series,x,y\n"); err != nil {
		return err
	}
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Table renders a fixed-width text table. Rows must all have len(headers)
// cells.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		if len(row) != len(headers) {
			return fmt.Errorf("plot: row has %d cells, want %d", len(row), len(headers))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
		_, err := io.WriteString(w, sb.String())
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := io.WriteString(w, strings.Repeat("-", total)+"\n"); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
