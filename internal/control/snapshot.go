package control

import (
	"fmt"

	"repro/internal/units"
)

// State is the serializable mutable state of a controller, shaped as a
// generic tagged record so the rack can snapshot heterogeneous controller
// populations without knowing the concrete types. Kind names the policy and
// must match on restore; the slices carry the policy's mutable fields in a
// fixed documented order. Configuration (thresholds, tables, cadences) is a
// construction parameter and stays outside the snapshot.
type State struct {
	Kind   string
	Bools  []bool
	Floats []float64
}

// Snapshotter is the opt-in contract for controllers that can be carried
// across a checkpoint. All three shipped policies implement it; a custom
// controller that does not is rejected at checkpoint time rather than
// silently resuming with stale state.
type Snapshotter interface {
	ControlState() State
	SetControlState(State) error
}

func kindErr(want string, st State) error {
	return fmt.Errorf("control: state kind %q does not match controller %q", st.Kind, want)
}

// ControlState implements Snapshotter. Bools: [set].
func (d *Default) ControlState() State {
	return State{Kind: "Default", Bools: []bool{d.set}}
}

// SetControlState implements Snapshotter.
func (d *Default) SetControlState(st State) error {
	if st.Kind != "Default" || len(st.Bools) != 1 {
		return kindErr("Default", st)
	}
	d.set = st.Bools[0]
	return nil
}

// ControlState implements Snapshotter. Bools: [started]; Floats: [nextDue,
// lastRPM].
func (b *BangBang) ControlState() State {
	return State{Kind: "BangBang", Bools: []bool{b.started}, Floats: []float64{b.nextDue, float64(b.lastRPM)}}
}

// SetControlState implements Snapshotter.
func (b *BangBang) SetControlState(st State) error {
	if st.Kind != "BangBang" || len(st.Bools) != 1 || len(st.Floats) != 2 {
		return kindErr("BangBang", st)
	}
	b.started = st.Bools[0]
	b.nextDue = st.Floats[0]
	b.lastRPM = units.RPM(st.Floats[1])
	return nil
}

// ControlState implements Snapshotter. Bools: [haveLast, started]; Floats:
// [nextPoll, holdTill, lastUtil, quietUntil] (quietUntil may be +Inf, which
// the gob transport preserves exactly).
func (l *LUT) ControlState() State {
	return State{
		Kind:   "LUT",
		Bools:  []bool{l.haveLast, l.started},
		Floats: []float64{l.nextPoll, l.holdTill, float64(l.lastUtil), l.quietUntil},
	}
}

// SetControlState implements Snapshotter.
func (l *LUT) SetControlState(st State) error {
	if st.Kind != "LUT" || len(st.Bools) != 2 || len(st.Floats) != 4 {
		return kindErr("LUT", st)
	}
	l.haveLast = st.Bools[0]
	l.started = st.Bools[1]
	l.nextPoll = st.Floats[0]
	l.holdTill = st.Floats[1]
	l.lastUtil = units.Percent(st.Floats[2])
	l.quietUntil = st.Floats[3]
	return nil
}
