// Package control implements the paper's three fan-control policies:
//
//   - Default: the stock server behaviour, fans pinned near 3300 RPM
//     regardless of load — the over-cooling baseline of Table I.
//   - BangBang: temperature-threshold control with five actions on the
//     60/65/75/80 °C thresholds (Section V), reacting *after* thermal
//     events.
//   - LUT: the paper's contribution — utilization-indexed optimal fan
//     speed, polled every second, proactive, with a 60 s minimum interval
//     between fan speed changes for stability and fan reliability.
//
// Controllers are pure decision functions driven by Observations; a Runner
// in internal/experiments wires them to the simulated server. This keeps
// every policy unit-testable without a server.
//
// All three shipped controllers also implement HorizonPromiser, the
// opt-in contract the event-driven kernel (internal/sched) builds macro
// windows from. BangBang — reactive, so it can never promise quiet from
// its inputs alone — promises its own decision cadence (ticks strictly
// before the next due instant are non-mutating no-ops) and additionally
// implements BandPromiser: it publishes the temperature band [TLow,
// THigh] inside which a due decision provably changes nothing, and the
// kernel extends the promise across every future decision instant whose
// predicted observation stays inside the band (server.BandDecisionHorizon
// does the thermal forecasting).
package control

import (
	"fmt"
	"math"

	"repro/internal/lut"
	"repro/internal/units"
)

// Observation is what a controller may see at a decision instant. The LUT
// controller uses only Utilization (it is proactive); the bang-bang
// controller uses only MaxCPUTemp (it is reactive); Default uses nothing.
type Observation struct {
	Now         float64 // simulation seconds
	Utilization units.Percent
	MaxCPUTemp  units.Celsius
	CurrentRPM  units.RPM // currently commanded speed
}

// Decision is a controller's output for one tick.
type Decision struct {
	Target  units.RPM
	Changed bool // true when the controller wants a new speed
}

// Controller decides fan speeds from observations. Tick is called on every
// simulation step; controllers implement their own polling cadence
// internally (1 s for LUT, 10 s CSTH period for bang-bang).
type Controller interface {
	Name() string
	Tick(obs Observation) Decision
	// Reset clears internal state so a controller can be reused across runs.
	Reset()
}

// HorizonPromiser is the opt-in contract behind event-driven macro-stepping
// (internal/sched): a controller that can bound its own next decision.
//
// QuietUntil is queried immediately after a Tick at simulation time now and
// returns a time H ≥ now promising that — provided every observed input
// (utilization, commanded fan speed) stays constant and no external actor
// moves the fans — any Tick at a time in (now, H) would return
// Changed=false, and skipping those Ticks entirely leaves all future
// decisions unchanged. math.Inf(1) means "quiet until an input changes";
// the kernel re-ticks on every input change (a scheduling event) anyway.
//
// Controllers whose decisions depend on observations that evolve between
// scheduling events — the bang-bang policy thresholds on die temperature,
// which moves every step — can promise at most their own decision cadence
// through this interface alone (BangBang promises its nextDue: ticks
// strictly before it are non-mutating no-ops under any observation). To
// promise *past* a decision instant they additionally implement
// BandPromiser, handing the kernel the observation band within which the
// pending decisions would take no action; the kernel then verifies the
// band against the predicted thermal trajectory before extending the
// window. A controller implementing neither pins the kernel to one Tick
// per fixed-dt step, which is exactly the reference semantics.
//
// One caveat is inherited from the poll-grid collapse: a promiser's
// internal poll anchor (LUT's nextPoll) goes stale across a skipped window
// and re-anchors at the wake tick. With PollPeriod ≤ dt — the paper's 1 s
// poll at the experiments' 1 s step — every step polls in both modes and
// the collapse is exact; with a sparser poll the first decision after a
// hold-off may land up to one PollPeriod earlier than under fixed-dt.
// (BangBang instead re-anchors to its own decision lattice — see the
// catch-up in its Tick — so its skipped instants stay aligned with the
// fixed-dt cadence whenever the lattice lands on the grid.)
type HorizonPromiser interface {
	QuietUntil(now float64) float64
}

// BandPromiser extends HorizonPromiser for periodic reactive controllers:
// QuietBand, queried immediately after a Tick at time now, describes the
// decisions the controller has already committed to pending instants. It
// returns the time of the next decision instant, the spacing of the
// instants after it, and the closed observation band [lo, hi] (either side
// may be infinite) such that a decision instant observing
// MaxCPUTemp ∈ [lo, hi] provably changes nothing — neither the commanded
// speed nor any internal state that could alter a later decision. ok=false
// withdraws the band (no extension past the base QuietUntil promise).
//
// The kernel owns the other half of the bargain: it may skip a decision
// instant only after verifying, against the predicted thermal trajectory
// (server.BandDecisionHorizon), that the instant's observation falls
// inside the band with margin for sensor noise — and it must wake the
// controller at or before the first unverified instant. Skipped in-band
// instants are reconstructed by the controller's own lattice catch-up, so
// the decision cadence matches fixed-dt exactly when period and offset sit
// on the step grid (the kernel refuses band extensions otherwise).
type BandPromiser interface {
	HorizonPromiser
	QuietBand(now float64) (next, period float64, lo, hi units.Celsius, ok bool)
}

// ---------------------------------------------------------------------------
// Default controller

// Default pins the fans at a fixed speed, mimicking the server's stock
// behaviour ("the baseline setting keeps the fans rotating close to a fixed
// speed of 3300 RPM").
type Default struct {
	RPM units.RPM
	set bool
}

// NewDefault returns the stock policy at the paper's 3300 RPM.
func NewDefault() *Default { return &Default{RPM: 3300} }

// Name implements Controller.
func (d *Default) Name() string { return "Default" }

// Reset implements Controller.
func (d *Default) Reset() { d.set = false }

// Tick implements Controller: one initial command, then nothing.
func (d *Default) Tick(obs Observation) Decision {
	if !d.set {
		d.set = true
		if obs.CurrentRPM == d.RPM {
			return Decision{Target: d.RPM, Changed: false}
		}
		return Decision{Target: d.RPM, Changed: true}
	}
	return Decision{Target: d.RPM, Changed: false}
}

// QuietUntil implements HorizonPromiser: after the initial command the
// stock policy never changes speed again, under any inputs.
func (d *Default) QuietUntil(now float64) float64 {
	if !d.set {
		return now
	}
	return math.Inf(1)
}

// ---------------------------------------------------------------------------
// Bang-bang controller

// BangBangConfig holds the five-action thresholds of Section V.
type BangBangConfig struct {
	Period    float64       // decision period; paper: the 10 s CSTH cadence
	TLowFloor units.Celsius // below this → minimum speed (paper: 60)
	TLow      units.Celsius // below this → step down (paper: 65)
	THigh     units.Celsius // above this → step up (paper: 75)
	TPanic    units.Celsius // above this → maximum speed (paper: 80)
	StepRPM   units.RPM     // step size (paper: 600)
	MinRPM    units.RPM
	MaxRPM    units.RPM
}

// DefaultBangBang returns the paper's thresholds.
func DefaultBangBang() BangBangConfig {
	return BangBangConfig{
		Period:    10,
		TLowFloor: 60,
		TLow:      65,
		THigh:     75,
		TPanic:    80,
		StepRPM:   600,
		MinRPM:    1800,
		MaxRPM:    4200,
	}
}

// Validate reports configuration errors.
func (c BangBangConfig) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("control: bang-bang period must be positive")
	}
	if !(c.TLowFloor < c.TLow && c.TLow < c.THigh && c.THigh < c.TPanic) {
		return fmt.Errorf("control: bang-bang thresholds must be ordered: %v < %v < %v < %v",
			c.TLowFloor, c.TLow, c.THigh, c.TPanic)
	}
	if c.StepRPM <= 0 || c.MinRPM <= 0 || c.MaxRPM <= c.MinRPM {
		return fmt.Errorf("control: bad bang-bang RPM parameters")
	}
	return nil
}

// BangBang is the reactive thermal controller.
type BangBang struct {
	cfg     BangBangConfig
	nextDue float64
	started bool
	// lastRPM is the speed observed by the most recent Tick — the anchor of
	// the quiet band's clamp widening (QuietBand): at the rail, further
	// steps in that direction clamp to no-change.
	lastRPM units.RPM
}

// NewBangBang builds the controller, validating cfg.
func NewBangBang(cfg BangBangConfig) (*BangBang, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &BangBang{cfg: cfg}, nil
}

// Name implements Controller.
func (b *BangBang) Name() string { return "Bang-bang" }

// Reset implements Controller.
func (b *BangBang) Reset() { b.nextDue = 0; b.started = false; b.lastRPM = 0 }

// Tick implements the five actions of Section V:
//  1. Tmax < 60 °C → lowest speed;
//  2. 60–65 °C → lower by 600 RPM;
//  3. 65–75 °C → no action;
//  4. >75 °C → raise by 600 RPM;
//  5. >80 °C → maximum speed.
func (b *BangBang) Tick(obs Observation) Decision {
	if !b.started {
		b.started = true
		b.nextDue = obs.Now
	}
	b.lastRPM = obs.CurrentRPM
	if obs.Now < b.nextDue {
		return Decision{Target: obs.CurrentRPM}
	}
	if obs.Now >= b.nextDue+b.cfg.Period {
		// Lattice catch-up for the event kernel's band extension: under
		// per-step ticking (dt ≤ Period) a due decision fires within one
		// period of coming due, so this branch only runs when whole
		// decision instants were skipped — instants the kernel verified as
		// in-band no-actions. Replaying them advances nextDue exactly as
		// the skipped no-action Ticks would have (the kernel only skips
		// instants sitting on the step grid, where fixed-dt decides at the
		// due times themselves), and if the wake lands *between* lattice
		// points the decision is not yet due again.
		for b.nextDue < obs.Now {
			b.nextDue += b.cfg.Period
		}
		if obs.Now < b.nextDue {
			return Decision{Target: obs.CurrentRPM}
		}
	}
	b.nextDue = obs.Now + b.cfg.Period

	cur := obs.CurrentRPM
	target := cur
	switch {
	case obs.MaxCPUTemp > b.cfg.TPanic:
		target = b.cfg.MaxRPM
	case obs.MaxCPUTemp > b.cfg.THigh:
		target = cur + b.cfg.StepRPM
	case obs.MaxCPUTemp < b.cfg.TLowFloor:
		target = b.cfg.MinRPM
	case obs.MaxCPUTemp < b.cfg.TLow:
		target = cur - b.cfg.StepRPM
	}
	target = units.ClampRPM(target, b.cfg.MinRPM, b.cfg.MaxRPM)
	return Decision{Target: target, Changed: target != cur}
}

// QuietUntil implements HorizonPromiser with the controller's own decision
// cadence: a Tick strictly before nextDue returns the commanded speed
// unchanged and mutates nothing, under any observation — so the promise is
// sound regardless of how the die temperature moves meanwhile.
func (b *BangBang) QuietUntil(now float64) float64 {
	if !b.started || b.nextDue <= now {
		return now
	}
	return b.nextDue
}

// QuietBand implements BandPromiser: pending decision instants sit at
// nextDue + j·Period, and an instant observing MaxCPUTemp ∈ [lo, hi] takes
// no action. The base band is [TLow, THigh] (the strict-inequality
// no-action case 3 of Section V); at a rail it widens to infinity on the
// clamped side — at MinRPM both "minimum speed" and "step down" commands
// clamp to the current speed, and symmetrically at MaxRPM — since the
// thresholds are strictly ordered, so the panic and floor actions are
// subsumed by their clamps.
func (b *BangBang) QuietBand(now float64) (next, period float64, lo, hi units.Celsius, ok bool) {
	if !b.started || b.nextDue <= now {
		return 0, 0, 0, 0, false
	}
	lo, hi = b.cfg.TLow, b.cfg.THigh
	if b.lastRPM <= b.cfg.MinRPM {
		lo = units.Celsius(math.Inf(-1))
	}
	if b.lastRPM >= b.cfg.MaxRPM {
		hi = units.Celsius(math.Inf(1))
	}
	return b.nextDue, b.cfg.Period, lo, hi, true
}

// ---------------------------------------------------------------------------
// LUT controller

// LUTConfig parameterizes the paper's proactive controller.
type LUTConfig struct {
	PollPeriod float64 // utilization polling period (paper: 1 s)
	HoldOff    float64 // minimum seconds between RPM changes (paper: 60 s)
	// Hysteresis, if positive, requires the utilization to move by at least
	// this many percentage points from the value that chose the current
	// speed before a new lookup can change it. An extension beyond the
	// paper (ablated in the benchmarks); 0 reproduces the paper.
	Hysteresis units.Percent
}

// DefaultLUT returns the paper's 1 s polling / 60 s hold-off.
func DefaultLUT() LUTConfig {
	return LUTConfig{PollPeriod: 1, HoldOff: 60}
}

// Validate reports configuration errors.
func (c LUTConfig) Validate() error {
	if c.PollPeriod <= 0 {
		return fmt.Errorf("control: LUT poll period must be positive")
	}
	if c.HoldOff < 0 {
		return fmt.Errorf("control: LUT hold-off must be non-negative")
	}
	if c.Hysteresis < 0 {
		return fmt.Errorf("control: LUT hysteresis must be non-negative")
	}
	return nil
}

// LUT is the utilization-driven proactive controller.
type LUT struct {
	cfg      LUTConfig
	table    *lut.Table
	nextPoll float64
	holdTill float64
	lastUtil units.Percent
	haveLast bool
	started  bool
	// quietUntil is the horizon promise computed by the last Tick: the
	// earliest future time a Tick could command a change assuming the
	// observed utilization stays constant (see HorizonPromiser).
	quietUntil float64
}

// NewLUT builds the controller around a prepared table.
func NewLUT(table *lut.Table, cfg LUTConfig) (*LUT, error) {
	if table == nil || len(table.Entries) == 0 {
		return nil, fmt.Errorf("control: LUT controller needs a non-empty table")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &LUT{cfg: cfg, table: table}, nil
}

// Name implements Controller.
func (l *LUT) Name() string { return "LUT" }

// Reset implements Controller.
func (l *LUT) Reset() {
	l.nextPoll = 0
	l.holdTill = 0
	l.haveLast = false
	l.started = false
	l.quietUntil = 0
}

// Tick implements the paper's policy: poll utilization every second, look
// up the optimal speed, and apply it immediately — but after any change,
// refuse further changes for HoldOff seconds ("we do not allow RPM changes
// for 1 minute after each RPM update").
func (l *LUT) Tick(obs Observation) Decision {
	if !l.started {
		l.started = true
		l.nextPoll = obs.Now
		l.holdTill = obs.Now
	}
	if obs.Now < l.nextPoll {
		l.quietUntil = l.nextPoll
		return Decision{Target: obs.CurrentRPM}
	}
	l.nextPoll = obs.Now + l.cfg.PollPeriod

	if obs.Now < l.holdTill {
		// Blocked by the hold-off: the first poll at or after holdTill may
		// act on utilization that changed meanwhile.
		l.quietUntil = l.holdTill
		return Decision{Target: obs.CurrentRPM}
	}
	if l.cfg.Hysteresis > 0 && l.haveLast {
		d := obs.Utilization - l.lastUtil
		if d < 0 {
			d = -d
		}
		if d < l.cfg.Hysteresis {
			// Hysteresis blocks until the utilization moves — an input
			// change, which re-ticks the controller anyway.
			l.quietUntil = math.Inf(1)
			return Decision{Target: obs.CurrentRPM}
		}
	}
	target, err := l.table.Lookup(obs.Utilization)
	if err != nil || target == obs.CurrentRPM {
		// The table already agrees with the commanded speed (or will keep
		// failing identically): under constant utilization every future
		// poll repeats this outcome.
		l.quietUntil = math.Inf(1)
		return Decision{Target: obs.CurrentRPM}
	}
	l.holdTill = obs.Now + l.cfg.HoldOff
	l.lastUtil = obs.Utilization
	l.haveLast = true
	// Under constant inputs the next poll would find target == current, but
	// promising only up to the hold-off expiry is cheap and keeps the
	// kernel re-checking right when a mid-hold-off load change first
	// becomes actionable.
	l.quietUntil = l.holdTill
	return Decision{Target: target, Changed: true}
}

// QuietUntil implements HorizonPromiser; see the interface contract. It
// reflects the promise computed by the most recent Tick.
func (l *LUT) QuietUntil(now float64) float64 {
	if !l.started || l.quietUntil < now {
		return now
	}
	return l.quietUntil
}

// Table exposes the controller's table (for reports).
func (l *LUT) Table() *lut.Table { return l.table }
