// Package control implements the paper's three fan-control policies:
//
//   - Default: the stock server behaviour, fans pinned near 3300 RPM
//     regardless of load — the over-cooling baseline of Table I.
//   - BangBang: temperature-threshold control with five actions on the
//     60/65/75/80 °C thresholds (Section V), reacting *after* thermal
//     events.
//   - LUT: the paper's contribution — utilization-indexed optimal fan
//     speed, polled every second, proactive, with a 60 s minimum interval
//     between fan speed changes for stability and fan reliability.
//
// Controllers are pure decision functions driven by Observations; a Runner
// in internal/experiments wires them to the simulated server. This keeps
// every policy unit-testable without a server.
package control

import (
	"fmt"

	"repro/internal/lut"
	"repro/internal/units"
)

// Observation is what a controller may see at a decision instant. The LUT
// controller uses only Utilization (it is proactive); the bang-bang
// controller uses only MaxCPUTemp (it is reactive); Default uses nothing.
type Observation struct {
	Now         float64 // simulation seconds
	Utilization units.Percent
	MaxCPUTemp  units.Celsius
	CurrentRPM  units.RPM // currently commanded speed
}

// Decision is a controller's output for one tick.
type Decision struct {
	Target  units.RPM
	Changed bool // true when the controller wants a new speed
}

// Controller decides fan speeds from observations. Tick is called on every
// simulation step; controllers implement their own polling cadence
// internally (1 s for LUT, 10 s CSTH period for bang-bang).
type Controller interface {
	Name() string
	Tick(obs Observation) Decision
	// Reset clears internal state so a controller can be reused across runs.
	Reset()
}

// ---------------------------------------------------------------------------
// Default controller

// Default pins the fans at a fixed speed, mimicking the server's stock
// behaviour ("the baseline setting keeps the fans rotating close to a fixed
// speed of 3300 RPM").
type Default struct {
	RPM units.RPM
	set bool
}

// NewDefault returns the stock policy at the paper's 3300 RPM.
func NewDefault() *Default { return &Default{RPM: 3300} }

// Name implements Controller.
func (d *Default) Name() string { return "Default" }

// Reset implements Controller.
func (d *Default) Reset() { d.set = false }

// Tick implements Controller: one initial command, then nothing.
func (d *Default) Tick(obs Observation) Decision {
	if !d.set {
		d.set = true
		if obs.CurrentRPM == d.RPM {
			return Decision{Target: d.RPM, Changed: false}
		}
		return Decision{Target: d.RPM, Changed: true}
	}
	return Decision{Target: d.RPM, Changed: false}
}

// ---------------------------------------------------------------------------
// Bang-bang controller

// BangBangConfig holds the five-action thresholds of Section V.
type BangBangConfig struct {
	Period    float64       // decision period; paper: the 10 s CSTH cadence
	TLowFloor units.Celsius // below this → minimum speed (paper: 60)
	TLow      units.Celsius // below this → step down (paper: 65)
	THigh     units.Celsius // above this → step up (paper: 75)
	TPanic    units.Celsius // above this → maximum speed (paper: 80)
	StepRPM   units.RPM     // step size (paper: 600)
	MinRPM    units.RPM
	MaxRPM    units.RPM
}

// DefaultBangBang returns the paper's thresholds.
func DefaultBangBang() BangBangConfig {
	return BangBangConfig{
		Period:    10,
		TLowFloor: 60,
		TLow:      65,
		THigh:     75,
		TPanic:    80,
		StepRPM:   600,
		MinRPM:    1800,
		MaxRPM:    4200,
	}
}

// Validate reports configuration errors.
func (c BangBangConfig) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("control: bang-bang period must be positive")
	}
	if !(c.TLowFloor < c.TLow && c.TLow < c.THigh && c.THigh < c.TPanic) {
		return fmt.Errorf("control: bang-bang thresholds must be ordered: %v < %v < %v < %v",
			c.TLowFloor, c.TLow, c.THigh, c.TPanic)
	}
	if c.StepRPM <= 0 || c.MinRPM <= 0 || c.MaxRPM <= c.MinRPM {
		return fmt.Errorf("control: bad bang-bang RPM parameters")
	}
	return nil
}

// BangBang is the reactive thermal controller.
type BangBang struct {
	cfg     BangBangConfig
	nextDue float64
	started bool
}

// NewBangBang builds the controller, validating cfg.
func NewBangBang(cfg BangBangConfig) (*BangBang, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &BangBang{cfg: cfg}, nil
}

// Name implements Controller.
func (b *BangBang) Name() string { return "Bang-bang" }

// Reset implements Controller.
func (b *BangBang) Reset() { b.nextDue = 0; b.started = false }

// Tick implements the five actions of Section V:
//  1. Tmax < 60 °C → lowest speed;
//  2. 60–65 °C → lower by 600 RPM;
//  3. 65–75 °C → no action;
//  4. >75 °C → raise by 600 RPM;
//  5. >80 °C → maximum speed.
func (b *BangBang) Tick(obs Observation) Decision {
	if !b.started {
		b.started = true
		b.nextDue = obs.Now
	}
	if obs.Now < b.nextDue {
		return Decision{Target: obs.CurrentRPM}
	}
	b.nextDue = obs.Now + b.cfg.Period

	cur := obs.CurrentRPM
	target := cur
	switch {
	case obs.MaxCPUTemp > b.cfg.TPanic:
		target = b.cfg.MaxRPM
	case obs.MaxCPUTemp > b.cfg.THigh:
		target = cur + b.cfg.StepRPM
	case obs.MaxCPUTemp < b.cfg.TLowFloor:
		target = b.cfg.MinRPM
	case obs.MaxCPUTemp < b.cfg.TLow:
		target = cur - b.cfg.StepRPM
	}
	target = units.ClampRPM(target, b.cfg.MinRPM, b.cfg.MaxRPM)
	return Decision{Target: target, Changed: target != cur}
}

// ---------------------------------------------------------------------------
// LUT controller

// LUTConfig parameterizes the paper's proactive controller.
type LUTConfig struct {
	PollPeriod float64 // utilization polling period (paper: 1 s)
	HoldOff    float64 // minimum seconds between RPM changes (paper: 60 s)
	// Hysteresis, if positive, requires the utilization to move by at least
	// this many percentage points from the value that chose the current
	// speed before a new lookup can change it. An extension beyond the
	// paper (ablated in the benchmarks); 0 reproduces the paper.
	Hysteresis units.Percent
}

// DefaultLUT returns the paper's 1 s polling / 60 s hold-off.
func DefaultLUT() LUTConfig {
	return LUTConfig{PollPeriod: 1, HoldOff: 60}
}

// Validate reports configuration errors.
func (c LUTConfig) Validate() error {
	if c.PollPeriod <= 0 {
		return fmt.Errorf("control: LUT poll period must be positive")
	}
	if c.HoldOff < 0 {
		return fmt.Errorf("control: LUT hold-off must be non-negative")
	}
	if c.Hysteresis < 0 {
		return fmt.Errorf("control: LUT hysteresis must be non-negative")
	}
	return nil
}

// LUT is the utilization-driven proactive controller.
type LUT struct {
	cfg      LUTConfig
	table    *lut.Table
	nextPoll float64
	holdTill float64
	lastUtil units.Percent
	haveLast bool
	started  bool
}

// NewLUT builds the controller around a prepared table.
func NewLUT(table *lut.Table, cfg LUTConfig) (*LUT, error) {
	if table == nil || len(table.Entries) == 0 {
		return nil, fmt.Errorf("control: LUT controller needs a non-empty table")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &LUT{cfg: cfg, table: table}, nil
}

// Name implements Controller.
func (l *LUT) Name() string { return "LUT" }

// Reset implements Controller.
func (l *LUT) Reset() {
	l.nextPoll = 0
	l.holdTill = 0
	l.haveLast = false
	l.started = false
}

// Tick implements the paper's policy: poll utilization every second, look
// up the optimal speed, and apply it immediately — but after any change,
// refuse further changes for HoldOff seconds ("we do not allow RPM changes
// for 1 minute after each RPM update").
func (l *LUT) Tick(obs Observation) Decision {
	if !l.started {
		l.started = true
		l.nextPoll = obs.Now
		l.holdTill = obs.Now
	}
	if obs.Now < l.nextPoll {
		return Decision{Target: obs.CurrentRPM}
	}
	l.nextPoll = obs.Now + l.cfg.PollPeriod

	if obs.Now < l.holdTill {
		return Decision{Target: obs.CurrentRPM}
	}
	if l.cfg.Hysteresis > 0 && l.haveLast {
		d := obs.Utilization - l.lastUtil
		if d < 0 {
			d = -d
		}
		if d < l.cfg.Hysteresis {
			return Decision{Target: obs.CurrentRPM}
		}
	}
	target, err := l.table.Lookup(obs.Utilization)
	if err != nil || target == obs.CurrentRPM {
		return Decision{Target: obs.CurrentRPM}
	}
	l.holdTill = obs.Now + l.cfg.HoldOff
	l.lastUtil = obs.Utilization
	l.haveLast = true
	return Decision{Target: target, Changed: true}
}

// Table exposes the controller's table (for reports).
func (l *LUT) Table() *lut.Table { return l.table }
