package control

import (
	"math"
	"testing"

	"repro/internal/lut"
	"repro/internal/units"
)

func horizonTable() *lut.Table {
	return &lut.Table{Entries: []lut.Entry{
		{Util: 0, RPM: 1800},
		{Util: 50, RPM: 2400},
		{Util: 100, RPM: 3600},
	}}
}

// TestLUTQuietUntil walks the promise through its regimes: a change opens
// a hold-off-long quiet window, a settled lookup promises forever (until
// inputs change), and a mid-hold-off tick promises the hold-off expiry.
func TestLUTQuietUntil(t *testing.T) {
	l, err := NewLUT(horizonTable(), LUTConfig{PollPeriod: 1, HoldOff: 60})
	if err != nil {
		t.Fatal(err)
	}
	obs := Observation{Now: 0, Utilization: 80, CurrentRPM: 3300}
	dec := l.Tick(obs)
	if !dec.Changed || dec.Target != 3600 {
		t.Fatalf("expected a change to 3600, got %+v", dec)
	}
	if q := l.QuietUntil(0); q != 60 {
		t.Fatalf("after a change the promise must be the hold-off expiry, got %g", q)
	}

	// Mid-hold-off tick (utilization moved): still blocked, still 60.
	obs = Observation{Now: 30, Utilization: 20, CurrentRPM: 3600}
	if dec := l.Tick(obs); dec.Changed {
		t.Fatal("hold-off must block the change")
	}
	if q := l.QuietUntil(30); q != 60 {
		t.Fatalf("mid-hold-off promise must stay 60, got %g", q)
	}

	// At expiry the blocked change lands, opening the next hold-off.
	obs = Observation{Now: 60, Utilization: 20, CurrentRPM: 3600}
	if dec := l.Tick(obs); !dec.Changed || dec.Target != 2400 {
		t.Fatalf("expiry must apply the pending lookup, got %+v", dec)
	}
	if q := l.QuietUntil(60); q != 120 {
		t.Fatalf("promise after the second change must be 120, got %g", q)
	}

	// Settled: lookup agrees with the command — quiet until inputs change.
	obs = Observation{Now: 120, Utilization: 20, CurrentRPM: 2400}
	if dec := l.Tick(obs); dec.Changed {
		t.Fatal("settled lookup must not change")
	}
	if q := l.QuietUntil(120); !math.IsInf(q, 1) {
		t.Fatalf("settled promise must be +Inf, got %g", q)
	}

	// Reset drops the promise.
	l.Reset()
	if q := l.QuietUntil(5); q != 5 {
		t.Fatalf("reset controller must promise nothing, got %g", q)
	}
}

// TestLUTQuietUntilHysteresis: a hysteresis block is quiet until the
// utilization moves, which is an input change.
func TestLUTQuietUntilHysteresis(t *testing.T) {
	l, err := NewLUT(horizonTable(), LUTConfig{PollPeriod: 1, HoldOff: 0, Hysteresis: 10})
	if err != nil {
		t.Fatal(err)
	}
	l.Tick(Observation{Now: 0, Utilization: 80, CurrentRPM: 1800}) // change, records lastUtil
	if dec := l.Tick(Observation{Now: 1, Utilization: 84, CurrentRPM: 3600}); dec.Changed {
		t.Fatal("hysteresis must block the small move")
	}
	if q := l.QuietUntil(1); !math.IsInf(q, 1) {
		t.Fatalf("hysteresis block must promise +Inf, got %g", q)
	}
}

// TestDefaultQuietUntil: the stock controller promises forever once its
// initial command is out.
func TestDefaultQuietUntil(t *testing.T) {
	d := NewDefault()
	if q := d.QuietUntil(0); q != 0 {
		t.Fatalf("unstarted Default must promise nothing, got %g", q)
	}
	d.Tick(Observation{Now: 0, CurrentRPM: units.RPM(3300)})
	if q := d.QuietUntil(0); !math.IsInf(q, 1) {
		t.Fatalf("started Default must promise +Inf, got %g", q)
	}
}

// TestBangBangQuietUntil pins the base promise: ticks strictly before the
// next due decision are non-mutating no-ops under any observation, so
// BangBang may always promise its own decision cadence — and nothing
// before the first tick.
func TestBangBangQuietUntil(t *testing.T) {
	b, err := NewBangBang(DefaultBangBang())
	if err != nil {
		t.Fatal(err)
	}
	var c Controller = b
	if _, ok := c.(HorizonPromiser); !ok {
		t.Fatal("BangBang must implement HorizonPromiser")
	}
	if _, ok := c.(BandPromiser); !ok {
		t.Fatal("BangBang must implement BandPromiser")
	}
	if q := b.QuietUntil(0); q != 0 {
		t.Fatalf("unstarted BangBang must promise nothing, got %g", q)
	}
	// First tick decides immediately and opens one period of quiet.
	b.Tick(Observation{Now: 0, MaxCPUTemp: 70, CurrentRPM: 3000})
	if q := b.QuietUntil(0); q != 10 {
		t.Fatalf("promise after a decision must be the next due time, got %g", q)
	}
	// Mid-period ticks are no-ops regardless of temperature and must not
	// move the promise.
	if dec := b.Tick(Observation{Now: 4, MaxCPUTemp: 99, CurrentRPM: 3000}); dec.Changed {
		t.Fatal("mid-period tick must not act")
	}
	if q := b.QuietUntil(4); q != 10 {
		t.Fatalf("mid-period promise must stay 10, got %g", q)
	}
	// A stale promise collapses to now.
	if q := b.QuietUntil(10); q != 10 {
		t.Fatalf("promise at the due instant must be now, got %g", q)
	}
	b.Reset()
	if q := b.QuietUntil(5); q != 5 {
		t.Fatalf("reset controller must promise nothing, got %g", q)
	}
}

// TestBangBangQuietBand: the no-action band is [TLow, THigh], widening to
// infinity on a clamped side at the RPM rails, and is withdrawn when no
// decision is pending.
func TestBangBangQuietBand(t *testing.T) {
	cfg := DefaultBangBang()
	b, err := NewBangBang(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, ok := b.QuietBand(0); ok {
		t.Fatal("unstarted BangBang must withdraw the band")
	}
	b.Tick(Observation{Now: 0, MaxCPUTemp: 70, CurrentRPM: 3000})
	next, period, lo, hi, ok := b.QuietBand(0)
	if !ok || next != 10 || period != cfg.Period {
		t.Fatalf("band lattice wrong: next=%g period=%g ok=%v", next, period, ok)
	}
	if lo != cfg.TLow || hi != cfg.THigh {
		t.Fatalf("mid-range band must be [TLow, THigh], got [%v, %v]", lo, hi)
	}
	if _, _, _, _, ok := b.QuietBand(10); ok {
		t.Fatal("band at the due instant must be withdrawn")
	}
	// At the min rail every cooling-side action clamps to no-change.
	b.Tick(Observation{Now: 10, MaxCPUTemp: 70, CurrentRPM: cfg.MinRPM})
	_, _, lo, hi, ok = b.QuietBand(10)
	if !ok || !math.IsInf(float64(lo), -1) || hi != cfg.THigh {
		t.Fatalf("min-rail band must be (-Inf, THigh], got [%v, %v] ok=%v", lo, hi, ok)
	}
	// And at the max rail every heating-side action clamps to no-change.
	b.Tick(Observation{Now: 20, MaxCPUTemp: 70, CurrentRPM: cfg.MaxRPM})
	_, _, lo, hi, ok = b.QuietBand(20)
	if !ok || lo != cfg.TLow || !math.IsInf(float64(hi), 1) {
		t.Fatalf("max-rail band must be [TLow, +Inf), got [%v, %v] ok=%v", lo, hi, ok)
	}
}

// TestBangBangLatticeCatchUp: after skipped in-band decision instants the
// controller re-anchors to its own lattice — a wake between instants is
// not yet due, a wake on an instant decides there, and the cadence stays
// aligned with the fixed-dt reference.
func TestBangBangLatticeCatchUp(t *testing.T) {
	b, err := NewBangBang(DefaultBangBang())
	if err != nil {
		t.Fatal(err)
	}
	b.Tick(Observation{Now: 0, MaxCPUTemp: 70, CurrentRPM: 3000}) // nextDue = 10
	// Instants 10, 20 skipped; wake at 23 is between lattice points.
	if dec := b.Tick(Observation{Now: 23, MaxCPUTemp: 99, CurrentRPM: 3000}); dec.Changed {
		t.Fatal("off-lattice wake must not act")
	}
	if q := b.QuietUntil(23); q != 30 {
		t.Fatalf("catch-up must land on the lattice: want 30, got %g", q)
	}
	// The reconstructed instant then decides normally.
	if dec := b.Tick(Observation{Now: 30, MaxCPUTemp: 80, CurrentRPM: 3000}); !dec.Changed || dec.Target != 3600 {
		t.Fatalf("lattice instant must step up, got %+v", dec)
	}
	if q := b.QuietUntil(30); q != 40 {
		t.Fatalf("promise after the lattice decision must be 40, got %g", q)
	}
}
