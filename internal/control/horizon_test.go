package control

import (
	"math"
	"testing"

	"repro/internal/lut"
	"repro/internal/units"
)

func horizonTable() *lut.Table {
	return &lut.Table{Entries: []lut.Entry{
		{Util: 0, RPM: 1800},
		{Util: 50, RPM: 2400},
		{Util: 100, RPM: 3600},
	}}
}

// TestLUTQuietUntil walks the promise through its regimes: a change opens
// a hold-off-long quiet window, a settled lookup promises forever (until
// inputs change), and a mid-hold-off tick promises the hold-off expiry.
func TestLUTQuietUntil(t *testing.T) {
	l, err := NewLUT(horizonTable(), LUTConfig{PollPeriod: 1, HoldOff: 60})
	if err != nil {
		t.Fatal(err)
	}
	obs := Observation{Now: 0, Utilization: 80, CurrentRPM: 3300}
	dec := l.Tick(obs)
	if !dec.Changed || dec.Target != 3600 {
		t.Fatalf("expected a change to 3600, got %+v", dec)
	}
	if q := l.QuietUntil(0); q != 60 {
		t.Fatalf("after a change the promise must be the hold-off expiry, got %g", q)
	}

	// Mid-hold-off tick (utilization moved): still blocked, still 60.
	obs = Observation{Now: 30, Utilization: 20, CurrentRPM: 3600}
	if dec := l.Tick(obs); dec.Changed {
		t.Fatal("hold-off must block the change")
	}
	if q := l.QuietUntil(30); q != 60 {
		t.Fatalf("mid-hold-off promise must stay 60, got %g", q)
	}

	// At expiry the blocked change lands, opening the next hold-off.
	obs = Observation{Now: 60, Utilization: 20, CurrentRPM: 3600}
	if dec := l.Tick(obs); !dec.Changed || dec.Target != 2400 {
		t.Fatalf("expiry must apply the pending lookup, got %+v", dec)
	}
	if q := l.QuietUntil(60); q != 120 {
		t.Fatalf("promise after the second change must be 120, got %g", q)
	}

	// Settled: lookup agrees with the command — quiet until inputs change.
	obs = Observation{Now: 120, Utilization: 20, CurrentRPM: 2400}
	if dec := l.Tick(obs); dec.Changed {
		t.Fatal("settled lookup must not change")
	}
	if q := l.QuietUntil(120); !math.IsInf(q, 1) {
		t.Fatalf("settled promise must be +Inf, got %g", q)
	}

	// Reset drops the promise.
	l.Reset()
	if q := l.QuietUntil(5); q != 5 {
		t.Fatalf("reset controller must promise nothing, got %g", q)
	}
}

// TestLUTQuietUntilHysteresis: a hysteresis block is quiet until the
// utilization moves, which is an input change.
func TestLUTQuietUntilHysteresis(t *testing.T) {
	l, err := NewLUT(horizonTable(), LUTConfig{PollPeriod: 1, HoldOff: 0, Hysteresis: 10})
	if err != nil {
		t.Fatal(err)
	}
	l.Tick(Observation{Now: 0, Utilization: 80, CurrentRPM: 1800}) // change, records lastUtil
	if dec := l.Tick(Observation{Now: 1, Utilization: 84, CurrentRPM: 3600}); dec.Changed {
		t.Fatal("hysteresis must block the small move")
	}
	if q := l.QuietUntil(1); !math.IsInf(q, 1) {
		t.Fatalf("hysteresis block must promise +Inf, got %g", q)
	}
}

// TestDefaultQuietUntil: the stock controller promises forever once its
// initial command is out.
func TestDefaultQuietUntil(t *testing.T) {
	d := NewDefault()
	if q := d.QuietUntil(0); q != 0 {
		t.Fatalf("unstarted Default must promise nothing, got %g", q)
	}
	d.Tick(Observation{Now: 0, CurrentRPM: units.RPM(3300)})
	if q := d.QuietUntil(0); !math.IsInf(q, 1) {
		t.Fatalf("started Default must promise +Inf, got %g", q)
	}
}

// TestBangBangDoesNotPromise pins the negative contract: the reactive
// controller thresholds on a continuously evolving temperature and must
// not advertise a horizon.
func TestBangBangDoesNotPromise(t *testing.T) {
	b, err := NewBangBang(DefaultBangBang())
	if err != nil {
		t.Fatal(err)
	}
	var c Controller = b
	if _, ok := c.(HorizonPromiser); ok {
		t.Fatal("BangBang must not implement HorizonPromiser")
	}
}
