package control

import (
	"testing"

	"repro/internal/lut"
	"repro/internal/server"
	"repro/internal/units"
)

func testTable(t *testing.T) *lut.Table {
	t.Helper()
	table, err := lut.Build(server.T3Config(), lut.DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestDefaultController(t *testing.T) {
	d := NewDefault()
	if d.Name() != "Default" {
		t.Fatal("name")
	}
	dec := d.Tick(Observation{Now: 0, CurrentRPM: 3600})
	if !dec.Changed || dec.Target != 3300 {
		t.Fatalf("first tick = %+v, want change to 3300", dec)
	}
	// After the initial command it never changes again.
	for now := 1.0; now < 100; now++ {
		dec = d.Tick(Observation{Now: now, CurrentRPM: 3300, Utilization: 100, MaxCPUTemp: 99})
		if dec.Changed {
			t.Fatalf("default changed at %g", now)
		}
	}
	// Already at 3300: no change even on the first tick.
	d.Reset()
	dec = d.Tick(Observation{Now: 0, CurrentRPM: 3300})
	if dec.Changed {
		t.Fatal("no-op first tick should not count as change")
	}
}

func TestBangBangValidation(t *testing.T) {
	good := DefaultBangBang()
	if _, err := NewBangBang(good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Period = 0
	if _, err := NewBangBang(bad); err == nil {
		t.Error("zero period should fail")
	}
	bad = good
	bad.TLow = 80 // violates ordering
	if _, err := NewBangBang(bad); err == nil {
		t.Error("unordered thresholds should fail")
	}
	bad = good
	bad.StepRPM = 0
	if _, err := NewBangBang(bad); err == nil {
		t.Error("zero step should fail")
	}
	bad = good
	bad.MaxRPM = bad.MinRPM
	if _, err := NewBangBang(bad); err == nil {
		t.Error("empty RPM range should fail")
	}
}

func TestBangBangFiveActions(t *testing.T) {
	b, err := NewBangBang(DefaultBangBang())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		temp    units.Celsius
		cur     units.RPM
		want    units.RPM
		changed bool
	}{
		{55, 3000, 1800, true},  // below 60 → minimum
		{62, 3000, 2400, true},  // 60-65 → -600
		{70, 3000, 3000, false}, // dead band
		{77, 3000, 3600, true},  // above 75 → +600
		{85, 3000, 4200, true},  // above 80 → maximum
	}
	for i, c := range cases {
		b.Reset()
		dec := b.Tick(Observation{Now: 0, MaxCPUTemp: c.temp, CurrentRPM: c.cur})
		if dec.Target != c.want || dec.Changed != c.changed {
			t.Errorf("case %d (T=%v): %+v, want target %v changed %v", i, c.temp, dec, c.want, c.changed)
		}
	}
}

func TestBangBangClamps(t *testing.T) {
	b, _ := NewBangBang(DefaultBangBang())
	// Step down from the floor stays at the floor.
	dec := b.Tick(Observation{Now: 0, MaxCPUTemp: 62, CurrentRPM: 1800})
	if dec.Target != 1800 || dec.Changed {
		t.Fatalf("floor clamp: %+v", dec)
	}
	b.Reset()
	// Step up from the ceiling stays at the ceiling.
	dec = b.Tick(Observation{Now: 0, MaxCPUTemp: 77, CurrentRPM: 4200})
	if dec.Target != 4200 || dec.Changed {
		t.Fatalf("ceiling clamp: %+v", dec)
	}
}

func TestBangBangPeriod(t *testing.T) {
	b, _ := NewBangBang(DefaultBangBang())
	dec := b.Tick(Observation{Now: 0, MaxCPUTemp: 77, CurrentRPM: 3000})
	if !dec.Changed {
		t.Fatal("first decision should act")
	}
	// Within the 10 s period: no decisions, no matter the temperature.
	for now := 1.0; now < 10; now++ {
		dec = b.Tick(Observation{Now: now, MaxCPUTemp: 85, CurrentRPM: 3600})
		if dec.Changed {
			t.Fatalf("acted within the period at %g", now)
		}
	}
	dec = b.Tick(Observation{Now: 10, MaxCPUTemp: 85, CurrentRPM: 3600})
	if !dec.Changed || dec.Target != 4200 {
		t.Fatalf("after period: %+v", dec)
	}
}

func TestLUTValidation(t *testing.T) {
	table := testTable(t)
	if _, err := NewLUT(nil, DefaultLUT()); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := NewLUT(&lut.Table{}, DefaultLUT()); err == nil {
		t.Error("empty table should fail")
	}
	bad := DefaultLUT()
	bad.PollPeriod = 0
	if _, err := NewLUT(table, bad); err == nil {
		t.Error("zero poll period should fail")
	}
	bad = DefaultLUT()
	bad.HoldOff = -1
	if _, err := NewLUT(table, bad); err == nil {
		t.Error("negative hold-off should fail")
	}
	bad = DefaultLUT()
	bad.Hysteresis = -1
	if _, err := NewLUT(table, bad); err == nil {
		t.Error("negative hysteresis should fail")
	}
}

func TestLUTProactiveResponse(t *testing.T) {
	table := testTable(t)
	l, err := NewLUT(table, DefaultLUT())
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "LUT" || l.Table() != table {
		t.Fatal("accessors")
	}
	// Idle: choose the 0% entry (1800).
	dec := l.Tick(Observation{Now: 0, Utilization: 0, CurrentRPM: 3600})
	if !dec.Changed || dec.Target != 1800 {
		t.Fatalf("idle decision = %+v", dec)
	}
}

func TestLUTHoldOff(t *testing.T) {
	table := testTable(t)
	l, _ := NewLUT(table, DefaultLUT())
	dec := l.Tick(Observation{Now: 0, Utilization: 0, CurrentRPM: 3600})
	if !dec.Changed {
		t.Fatal("first change expected")
	}
	// A utilization spike 5 s later is seen but must NOT trigger a change
	// within the 60 s hold-off.
	for now := 1.0; now < 60; now++ {
		dec = l.Tick(Observation{Now: now, Utilization: 100, CurrentRPM: 1800})
		if dec.Changed {
			t.Fatalf("changed during hold-off at %g", now)
		}
	}
	// At 60 s the hold-off expires and the controller reacts to the spike.
	dec = l.Tick(Observation{Now: 60, Utilization: 100, CurrentRPM: 1800})
	if !dec.Changed || dec.Target != 2400 {
		t.Fatalf("post-hold-off decision = %+v, want 2400", dec)
	}
}

func TestLUTNoChangeNoHoldOff(t *testing.T) {
	// Decisions that do not change the speed must not arm the hold-off.
	table := testTable(t)
	l, _ := NewLUT(table, DefaultLUT())
	dec := l.Tick(Observation{Now: 0, Utilization: 0, CurrentRPM: 1800})
	if dec.Changed {
		t.Fatal("no-op tick counted as change")
	}
	dec = l.Tick(Observation{Now: 1, Utilization: 100, CurrentRPM: 1800})
	if !dec.Changed || dec.Target != 2400 {
		t.Fatalf("reaction after no-op = %+v", dec)
	}
}

func TestLUTPollPeriod(t *testing.T) {
	table := testTable(t)
	cfg := DefaultLUT()
	cfg.PollPeriod = 5
	l, _ := NewLUT(table, cfg)
	l.Tick(Observation{Now: 0, Utilization: 0, CurrentRPM: 1800})
	// Between polls nothing happens.
	dec := l.Tick(Observation{Now: 2, Utilization: 100, CurrentRPM: 1800})
	if dec.Changed {
		t.Fatal("acted between polls")
	}
	dec = l.Tick(Observation{Now: 5, Utilization: 100, CurrentRPM: 1800})
	if !dec.Changed {
		t.Fatal("did not act on poll boundary")
	}
}

func TestLUTHysteresis(t *testing.T) {
	table := testTable(t)
	cfg := DefaultLUT()
	cfg.HoldOff = 0
	cfg.Hysteresis = 15
	l, _ := NewLUT(table, cfg)
	dec := l.Tick(Observation{Now: 0, Utilization: 50, CurrentRPM: 3600})
	if !dec.Changed {
		t.Fatal("first change expected")
	}
	cur := dec.Target
	// 10 points of movement < 15 hysteresis: ignored.
	dec = l.Tick(Observation{Now: 1, Utilization: 60, CurrentRPM: cur})
	if dec.Changed {
		t.Fatal("changed within hysteresis band")
	}
	// 45 points of movement: acted on.
	dec = l.Tick(Observation{Now: 2, Utilization: 95, CurrentRPM: cur})
	if !dec.Changed {
		t.Fatal("did not react outside hysteresis band")
	}
}

func TestLUTReset(t *testing.T) {
	table := testTable(t)
	l, _ := NewLUT(table, DefaultLUT())
	l.Tick(Observation{Now: 0, Utilization: 0, CurrentRPM: 3600})
	l.Reset()
	// After reset the controller acts immediately again.
	dec := l.Tick(Observation{Now: 100, Utilization: 100, CurrentRPM: 1800})
	if !dec.Changed {
		t.Fatal("reset did not clear hold-off")
	}
}

// TestDefaultBangBangSectionVGolden pins the paper's Section V reactive
// policy verbatim: these numbers are the published experiment's contract —
// the quiet-band promise ([TLow, THigh] on a 10 s cadence) and every
// threshold-crossing test above are calibrated against them, so a drift
// here silently re-tunes the whole evaluation.
func TestDefaultBangBangSectionVGolden(t *testing.T) {
	got := DefaultBangBang()
	want := BangBangConfig{
		Period:    10,
		TLowFloor: 60,
		TLow:      65,
		THigh:     75,
		TPanic:    80,
		StepRPM:   600,
		MinRPM:    1800,
		MaxRPM:    4200,
	}
	if got != want {
		t.Fatalf("DefaultBangBang drifted from Section V:\ngot  %+v\nwant %+v", got, want)
	}
}
