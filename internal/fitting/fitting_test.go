package fitting

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/server"
	"repro/internal/units"
)

// syntheticDataset builds points straight from the paper's model plus noise.
func syntheticDataset(noise float64, seed int64) *Dataset {
	const k1, c0, k2, k3 = 0.4452, 10.0, 0.3231, 0.04749
	rng := randx.New(seed)
	ds := &Dataset{}
	temps := map[units.RPM]map[units.Percent]float64{}
	cfg := server.T3Config()
	for _, rpm := range []units.RPM{1800, 2400, 3000, 3600, 4200} {
		temps[rpm] = map[units.Percent]float64{}
		for _, u := range []units.Percent{10, 25, 40, 50, 60, 75, 90, 100} {
			t, err := server.SteadyTemp(cfg, u, rpm)
			if err != nil {
				continue
			}
			temps[rpm][u] = float64(t)
		}
	}
	for rpm, us := range temps {
		for u, t := range us {
			p := k1*float64(u) + c0 + k2*math.Exp(k3*t)
			ds.Points = append(ds.Points, Point{
				Util:     u,
				Temp:     units.Celsius(t + rng.Normal(0, noise/4)),
				CPUPower: units.Watts(p + rng.Normal(0, noise)),
				FanRPM:   rpm,
			})
		}
	}
	return ds
}

func TestFitRecoverExactConstants(t *testing.T) {
	ds := syntheticDataset(0, 1)
	res, err := FitLeakage(ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.K1-0.4452) > 1e-3 {
		t.Errorf("k1 = %g, want 0.4452", res.K1)
	}
	if math.Abs(res.C-10) > 0.2 {
		t.Errorf("C = %g, want 10", res.C)
	}
	if math.Abs(res.K2-0.3231) > 0.05 {
		t.Errorf("k2 = %g, want 0.3231", res.K2)
	}
	if math.Abs(res.K3-0.04749) > 0.003 {
		t.Errorf("k3 = %g, want 0.04749", res.K3)
	}
	if res.RMSE > 0.05 {
		t.Errorf("noise-free RMSE = %g", res.RMSE)
	}
	if res.R2 < 0.999 {
		t.Errorf("R² = %g", res.R2)
	}
}

func TestFitNoisyAccuracy(t *testing.T) {
	// Noise comparable to the real sensors; the paper reports 2.243 W RMSE
	// and 98% accuracy.
	ds := syntheticDataset(2.0, 7)
	res, err := FitLeakage(ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.K1-0.4452) > 0.05 {
		t.Errorf("k1 = %g", res.K1)
	}
	if res.RMSE > 4 {
		t.Errorf("RMSE = %g, want a few Watts", res.RMSE)
	}
	if res.AccuracyPct < 90 {
		t.Errorf("accuracy = %g%%, paper reports ~98%%", res.AccuracyPct)
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestFitPredictConsistency(t *testing.T) {
	ds := syntheticDataset(0, 1)
	res, err := FitLeakage(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range ds.Points {
		pred := float64(res.Predict(pt.Util, pt.Temp))
		if math.Abs(pred-float64(pt.CPUPower)) > 0.2 {
			t.Fatalf("predict(%v, %v) = %g vs %v", pt.Util, pt.Temp, pred, pt.CPUPower)
		}
	}
}

func TestFitRejectsTinyDatasets(t *testing.T) {
	if _, err := FitLeakage(nil); err == nil {
		t.Error("nil dataset should error")
	}
	if _, err := FitLeakage(&Dataset{Points: make([]Point, 3)}); err == nil {
		t.Error("3 points should error")
	}
}

func TestSweepConfigValidate(t *testing.T) {
	good := DefaultSweep()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultSweep()
	bad.Utils = nil
	if err := bad.Validate(); err == nil {
		t.Error("no utils should fail")
	}
	bad = DefaultSweep()
	bad.Dt = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero dt should fail")
	}
}

// TestCollectAndFitEndToEnd runs a reduced characterization sweep against
// the full simulated server and checks the fit recovers the ground truth.
func TestCollectAndFitEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("long characterization sweep")
	}
	cfg := DefaultSweep()
	// Reduced grid keeps the test fast while spanning temps and utils.
	cfg.Utils = []units.Percent{10, 40, 75, 100}
	cfg.RPMs = []units.RPM{1800, 3000, 4200}
	cfg.Warmup = 15 * 60
	cfg.Measure = 5 * 60
	cfg.PerPoll = false

	ds, err := Collect(func() (*server.Server, error) {
		return server.New(server.T3Config())
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Points) != 12 {
		t.Fatalf("points = %d", len(ds.Points))
	}
	for _, pt := range ds.Points {
		if pt.Temp < 25 || pt.Temp > 95 {
			t.Fatalf("implausible temp %v at U=%v RPM=%v", pt.Temp, pt.Util, pt.FanRPM)
		}
		if pt.CPUPower < 5 || pt.CPUPower > 100 {
			t.Fatalf("implausible CPU power %v", pt.CPUPower)
		}
		if pt.FanPower < 0 || pt.FanPower > 40 {
			t.Fatalf("implausible fan power %v", pt.FanPower)
		}
	}

	res, err := FitLeakage(ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.K1-0.4452) > 0.08 {
		t.Errorf("k1 = %g, want ≈0.4452", res.K1)
	}
	if math.Abs(res.K3-0.04749) > 0.015 {
		t.Errorf("k3 = %g, want ≈0.04749", res.K3)
	}
	if res.RMSE > 4 {
		t.Errorf("end-to-end RMSE = %g W, paper reports 2.243 W", res.RMSE)
	}
	if res.AccuracyPct < 90 {
		t.Errorf("accuracy = %g%%", res.AccuracyPct)
	}
}

// TestCollectPerPollMatchesPaperRMSE runs the raw-sample fit the paper
// reports: fitting on individual CSTH polls puts the RMSE at the sensor
// noise level, a couple of Watts (paper: 2.243 W, 98% accuracy).
func TestCollectPerPollMatchesPaperRMSE(t *testing.T) {
	if testing.Short() {
		t.Skip("long characterization sweep")
	}
	cfg := DefaultSweep()
	cfg.Utils = []units.Percent{10, 40, 75, 100}
	cfg.RPMs = []units.RPM{1800, 3000, 4200}
	cfg.Warmup = 15 * 60
	cfg.Measure = 5 * 60

	ds, err := Collect(func() (*server.Server, error) {
		return server.New(server.T3Config())
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 12 combos × 30 polls (5 min / 10 s).
	if len(ds.Points) < 300 {
		t.Fatalf("per-poll points = %d", len(ds.Points))
	}
	res, err := FitLeakage(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE < 0.3 || res.RMSE > 4 {
		t.Errorf("per-poll RMSE = %g W, paper reports 2.243 W", res.RMSE)
	}
	if res.AccuracyPct < 90 {
		t.Errorf("accuracy = %g%%, paper reports 98%%", res.AccuracyPct)
	}
	if math.Abs(res.K1-0.4452) > 0.08 {
		t.Errorf("k1 = %g", res.K1)
	}
}

func TestCollectInvalidConfig(t *testing.T) {
	bad := DefaultSweep()
	bad.RPMs = nil
	_, err := Collect(func() (*server.Server, error) {
		return server.New(server.T3Config())
	}, bad)
	if err == nil {
		t.Fatal("invalid sweep should error")
	}
}
