// Package fitting implements the paper's Section IV analysis: collect
// steady-state telemetry across a utilization × fan-speed sweep, attribute
// CPU power from the per-core voltage/current sensors, and fit the
// empirical model
//
//	Pcpu = k1·U + C + k2·e^(k3·T)
//
// by nonlinear least squares. The simulator's ground-truth constants are the
// paper's fitted values, so a correct pipeline must recover k1 ≈ 0.4452,
// k2 ≈ 0.3231 and k3 ≈ 0.04749 from noisy sensor data with an RMSE of a
// couple of Watts — the paper reports 2.243 W and "98% accuracy".
package fitting

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/units"
)

// Point is one steady-state characterization measurement.
type Point struct {
	Util     units.Percent // commanded utilization
	Temp     units.Celsius // average CPU temperature
	CPUPower units.Watts   // Σ per-core V·I (active + leakage)
	FanRPM   units.RPM
	FanPower units.Watts // separately metered
}

// Dataset is a collection of characterization points.
type Dataset struct {
	Points []Point
}

// SweepConfig controls the characterization campaign.
type SweepConfig struct {
	Utils      []units.Percent // paper: 10,25,40,50,60,75,90,100
	RPMs       []units.RPM     // paper: 1800..4200 step 600
	Stabilize  float64         // idle seconds before loading (paper: 5 min)
	Warmup     float64         // loaded seconds before measuring
	Measure    float64         // measurement window seconds
	PollPeriod float64         // telemetry cadence (paper: 10 s)
	Dt         float64         // simulation step
	// PerPoll records one dataset point per telemetry poll (the paper fits
	// on raw CSTH samples, so its 2.243 W RMSE reflects sensor noise).
	// When false, each (U, RPM) combination contributes a single
	// noise-averaged point.
	PerPoll bool
}

// DefaultSweep returns the paper's Section IV sweep, shortened warm-up
// handled by starting measurement once the slow thermal pole has settled.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Utils:      []units.Percent{10, 25, 40, 50, 60, 75, 90, 100},
		RPMs:       []units.RPM{1800, 2400, 3000, 3600, 4200},
		Stabilize:  5 * 60,
		Warmup:     20 * 60,
		Measure:    10 * 60,
		PollPeriod: 10,
		Dt:         2,
		PerPoll:    true,
	}
}

// Validate reports configuration errors.
func (c SweepConfig) Validate() error {
	if len(c.Utils) == 0 || len(c.RPMs) == 0 {
		return fmt.Errorf("fitting: sweep needs utilization levels and fan speeds")
	}
	if c.Dt <= 0 || c.Measure <= 0 || c.PollPeriod <= 0 {
		return fmt.Errorf("fitting: non-positive timing in sweep config")
	}
	return nil
}

// Collect runs the steady-state sweep against fresh simulated servers built
// by newServer. Each (U, RPM) combination follows the paper's protocol:
// cold start, fan speed set at t=0, idle stabilization, load, warm-up, then
// a measurement window whose telemetry is averaged into one Point.
func Collect(newServer func() (*server.Server, error), cfg SweepConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ds := &Dataset{}
	for _, rpm := range cfg.RPMs {
		for _, u := range cfg.Utils {
			pts, err := collectOne(newServer, cfg, u, rpm)
			if err != nil {
				return nil, fmt.Errorf("fitting: U=%v RPM=%v: %w", u, rpm, err)
			}
			ds.Points = append(ds.Points, pts...)
		}
	}
	return ds, nil
}

func collectOne(newServer func() (*server.Server, error), cfg SweepConfig, u units.Percent, rpm units.RPM) ([]Point, error) {
	srv, err := newServer()
	if err != nil {
		return nil, err
	}
	srv.Fans().SetAll(rpm)

	run := func(seconds float64) {
		for elapsed := 0.0; elapsed < seconds; elapsed += cfg.Dt {
			srv.Step(cfg.Dt)
		}
	}
	// Idle stabilization at the target fan speed, then load and warm up.
	run(cfg.Stabilize)
	srv.SetLoad(u)
	run(cfg.Warmup)

	// Measurement window: poll CSTH-style every PollPeriod.
	var raw []Point
	var tempAcc, cpuAcc, fanAcc stats.Online
	nextPoll := srv.Now()
	end := srv.Now() + cfg.Measure
	for srv.Now() < end {
		if srv.Now() >= nextPoll {
			temp := avgSensors(srv.CPUTempSensors())
			cpuP := float64(srv.MeasuredCPUPower())
			fanP := float64(srv.MeasuredFanPower())
			tempAcc.Add(temp)
			cpuAcc.Add(cpuP)
			fanAcc.Add(fanP)
			if cfg.PerPoll {
				raw = append(raw, Point{
					Util:     u,
					Temp:     units.Celsius(temp),
					CPUPower: units.Watts(cpuP),
					FanRPM:   rpm,
					FanPower: units.Watts(fanP),
				})
			}
			nextPoll += cfg.PollPeriod
		}
		srv.Step(cfg.Dt)
	}
	if tempAcc.N() == 0 {
		return nil, fmt.Errorf("measurement window too short for polling period")
	}
	if cfg.PerPoll {
		return raw, nil
	}
	return []Point{{
		Util:     u,
		Temp:     units.Celsius(tempAcc.Mean()),
		CPUPower: units.Watts(cpuAcc.Mean()),
		FanRPM:   rpm,
		FanPower: units.Watts(fanAcc.Mean()),
	}}, nil
}

func avgSensors(readings []units.Celsius) float64 {
	var s float64
	for _, r := range readings {
		s += float64(r)
	}
	return s / float64(len(readings))
}

// FitResult holds the recovered model and its quality.
type FitResult struct {
	K1, C, K2, K3 float64
	RMSE          float64 // W
	R2            float64
	AccuracyPct   float64 // 100·(1 − mean|residual| / mean power)
	N             int
	Iterations    int
}

// Predict evaluates the fitted model at a utilization and temperature.
func (r FitResult) Predict(u units.Percent, t units.Celsius) units.Watts {
	return units.Watts(r.K1*float64(u.Clamp()) + r.C + r.K2*math.Exp(r.K3*float64(t)))
}

func (r FitResult) String() string {
	return fmt.Sprintf("k1=%.4f C=%.2f k2=%.4f k3=%.5f (rmse=%.3fW acc=%.1f%% n=%d)",
		r.K1, r.C, r.K2, r.K3, r.RMSE, r.AccuracyPct, r.N)
}

// FitLeakage fits Pcpu = k1·U + C + k2·e^(k3·T) to the dataset by
// Levenberg–Marquardt.
func FitLeakage(ds *Dataset) (FitResult, error) {
	if ds == nil || len(ds.Points) < 4 {
		return FitResult{}, fmt.Errorf("fitting: need at least 4 points, got %d", pointCount(ds))
	}
	pts := ds.Points
	resid := func(p, out []float64) {
		for i, pt := range pts {
			pred := p[0]*float64(pt.Util) + p[1] + p[2]*math.Exp(p[3]*float64(pt.Temp))
			out[i] = pred - float64(pt.CPUPower)
		}
	}
	start := []float64{0.5, 5, 0.5, 0.03}
	res, err := mathx.LevenbergMarquardt(resid, start, len(pts), mathx.LMOptions{MaxIter: 500})
	if err != nil {
		return FitResult{}, fmt.Errorf("fitting: %w", err)
	}

	out := FitResult{
		K1: res.Params[0], C: res.Params[1], K2: res.Params[2], K3: res.Params[3],
		RMSE: res.RMSE, N: len(pts), Iterations: res.Iterations,
	}
	pred := make([]float64, len(pts))
	truth := make([]float64, len(pts))
	var absErr, meanP float64
	for i, pt := range pts {
		pred[i] = float64(out.Predict(pt.Util, pt.Temp))
		truth[i] = float64(pt.CPUPower)
		absErr += math.Abs(pred[i] - truth[i])
		meanP += truth[i]
	}
	absErr /= float64(len(pts))
	meanP /= float64(len(pts))
	out.R2 = stats.RSquared(pred, truth)
	if meanP > 0 {
		out.AccuracyPct = 100 * (1 - absErr/meanP)
	}
	return out, nil
}

func pointCount(ds *Dataset) int {
	if ds == nil {
		return 0
	}
	return len(ds.Points)
}
