package workload

import (
	"strings"
	"testing"
)

func TestReadUtilizationCSVSingleColumn(t *testing.T) {
	p, err := ReadUtilizationCSV(strings.NewReader("10\n50\n90\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Target(0) != 10 || p.Target(15) != 50 || p.Target(25) != 90 {
		t.Fatalf("targets: %v %v %v", p.Target(0), p.Target(15), p.Target(25))
	}
	if p.Duration() != 30 {
		t.Fatalf("duration = %g", p.Duration())
	}
}

func TestReadUtilizationCSVWithHeaderAndTimeColumn(t *testing.T) {
	src := "time_s,util\n0,12.5\n10,40\n20,150\n"
	p, err := ReadUtilizationCSV(strings.NewReader(src), 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Target(0) != 12.5 || p.Target(10) != 40 {
		t.Fatalf("targets: %v %v", p.Target(0), p.Target(10))
	}
	// Out-of-range values clamp.
	if p.Target(20) != 100 {
		t.Fatalf("clamped target = %v", p.Target(20))
	}
}

func TestReadUtilizationCSVErrors(t *testing.T) {
	if _, err := ReadUtilizationCSV(strings.NewReader("10\n"), 0); err == nil {
		t.Error("zero dt should error")
	}
	if _, err := ReadUtilizationCSV(strings.NewReader(""), 10); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := ReadUtilizationCSV(strings.NewReader("util\n"), 10); err == nil {
		t.Error("header-only trace should error")
	}
	if _, err := ReadUtilizationCSV(strings.NewReader("10\nabc\n"), 10); err == nil {
		t.Error("non-numeric mid-file should error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := DefaultShellConfig()
	cfg.Duration = 600
	res, err := SimulateMMC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteUtilizationCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	p, err := ReadUtilizationCSV(strings.NewReader(sb.String()), cfg.SampleEvery)
	if err != nil {
		t.Fatal(err)
	}
	// Every sample survives the round trip (within the 3-decimal format).
	for i, u := range res.Utilization {
		ts := float64(i) * cfg.SampleEvery
		got := float64(p.Target(ts))
		if diff := got - float64(u); diff > 0.001 || diff < -0.001 {
			t.Fatalf("sample %d: %g vs %v", i, got, u)
		}
	}
}
