package workload

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestQueueConfigValidate(t *testing.T) {
	good := DefaultShellConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*QueueConfig){
		func(c *QueueConfig) { c.Servers = 0 },
		func(c *QueueConfig) { c.ArrivalRate = 0 },
		func(c *QueueConfig) { c.ServiceMean = 0 },
		func(c *QueueConfig) { c.Duration = 0 },
		func(c *QueueConfig) { c.SampleEvery = 0 },
		func(c *QueueConfig) { c.ArrivalRate = 10; c.ServiceMean = 10; c.Servers = 4 }, // ρ ≥ 1
	}
	for i, mutate := range cases {
		c := DefaultShellConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestOfferedLoad(t *testing.T) {
	c := DefaultShellConfig()
	want := 0.64 * 20 / 32
	if got := c.OfferedLoad(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ρ = %g, want %g", got, want)
	}
}

func TestSimulateMMCMeanUtilization(t *testing.T) {
	cfg := DefaultShellConfig()
	cfg.Duration = 48000 // long run for tight statistics
	res, err := SimulateMMC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(res.MeanUtilization())
	want := cfg.OfferedLoad() * 100
	if math.Abs(mean-want) > 5 {
		t.Fatalf("mean utilization %g%%, want ~%g%%", mean, want)
	}
}

func TestSimulateMMCBounds(t *testing.T) {
	res, err := SimulateMMC(DefaultShellConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Utilization) == 0 {
		t.Fatal("no samples")
	}
	for i, u := range res.Utilization {
		if u < 0 || u > 100 {
			t.Fatalf("sample %d = %v out of bounds", i, u)
		}
	}
	if res.JobsArrived == 0 || res.JobsFinished == 0 {
		t.Fatal("no jobs processed")
	}
	if res.JobsFinished > res.JobsArrived {
		t.Fatalf("finished %d > arrived %d", res.JobsFinished, res.JobsArrived)
	}
}

func TestSimulateMMCDeterministic(t *testing.T) {
	a, err := SimulateMMC(DefaultShellConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateMMC(DefaultShellConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Utilization) != len(b.Utilization) {
		t.Fatal("lengths differ")
	}
	for i := range a.Utilization {
		if a.Utilization[i] != b.Utilization[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.Utilization[i], b.Utilization[i])
		}
	}
	// A different seed must actually change the trace.
	cfg := DefaultShellConfig()
	cfg.Seed++
	c, err := SimulateMMC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Utilization {
		if i < len(c.Utilization) && a.Utilization[i] != c.Utilization[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seed gave identical trace")
	}
}

func TestSimulateMMCHasVariation(t *testing.T) {
	res, err := SimulateMMC(DefaultShellConfig())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := units.Percent(200), units.Percent(-1)
	for _, u := range res.Utilization {
		if u < lo {
			lo = u
		}
		if u > hi {
			hi = u
		}
	}
	if hi-lo < 10 {
		t.Fatalf("shell workload too flat: range [%v, %v]", lo, hi)
	}
}

func TestSimulateMMCInvalid(t *testing.T) {
	bad := DefaultShellConfig()
	bad.Servers = 0
	if _, err := SimulateMMC(bad); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestTest1Ramp(t *testing.T) {
	p, err := Test1Ramp()
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != TestDuration {
		t.Fatalf("duration = %g", p.Duration())
	}
	if p.Target(0) != 0 {
		t.Fatal("should start at 0")
	}
	if p.Target(TestDuration/2) != 100 {
		t.Fatal("should peak at 100 midway")
	}
	if got := float64(p.Target(TestDuration / 4)); math.Abs(got-50) > 1e-9 {
		t.Fatalf("quarter point = %g", got)
	}
	if got := float64(p.Target(TestDuration)); got > 1e-9 {
		t.Fatalf("end = %g", got)
	}
}

func TestTest2Periods(t *testing.T) {
	p, err := Test2Periods()
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != TestDuration {
		t.Fatalf("duration = %g", p.Duration())
	}
	minute := 60.0
	// 5-minute alternation at the start.
	if p.Target(2*minute) != 90 || p.Target(7*minute) != 10 {
		t.Fatal("5-minute alternation wrong")
	}
	// 10-minute periods.
	if p.Target(25*minute) != 90 || p.Target(35*minute) != 10 {
		t.Fatal("10-minute alternation wrong")
	}
	// 15-minute periods.
	if p.Target(45*minute) != 90 || p.Target(60*minute) != 10 {
		t.Fatal("15-minute alternation wrong")
	}
}

func TestTest3RandomSteps(t *testing.T) {
	p, err := Test3RandomSteps(99)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic per seed.
	q, _ := Test3RandomSteps(99)
	changes := 0
	prev := p.Target(0)
	for ts := 0.0; ts < TestDuration; ts += 300 {
		if p.Target(ts) != q.Target(ts) {
			t.Fatal("same seed gave different profiles")
		}
		if cur := p.Target(ts); cur != prev {
			changes++
			prev = cur
		}
		// Levels are multiples of 10.
		if v := float64(p.Target(ts)); math.Mod(v, 10) != 0 {
			t.Fatalf("level %g not a multiple of 10", v)
		}
	}
	if changes < 5 {
		t.Fatalf("only %d level changes in 80 min — too static", changes)
	}
}

func TestTest4Shell(t *testing.T) {
	p, err := Test4Shell(7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() < TestDuration-30 || p.Duration() > TestDuration+30 {
		t.Fatalf("duration = %g", p.Duration())
	}
	var sum float64
	n := 0
	for ts := 0.0; ts < TestDuration; ts += 10 {
		sum += float64(p.Target(ts))
		n++
	}
	mean := sum / float64(n)
	if mean < 20 || mean > 60 {
		t.Fatalf("shell mean utilization = %g%%, want ~40%%", mean)
	}
}

func TestAllTestsAndByID(t *testing.T) {
	all, err := AllTests(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("tests = %d", len(all))
	}
	for i, w := range all {
		if w.ID != i+1 {
			t.Fatalf("test %d has id %d", i, w.ID)
		}
		if w.Name == "" || w.Profile == nil {
			t.Fatalf("test %d incomplete", i)
		}
	}
	got, err := ByID(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 3 {
		t.Fatalf("ByID(3) = %+v", got)
	}
	if _, err := ByID(9, 1); err == nil {
		t.Fatal("unknown id should error")
	}
}
