package workload

import (
	"fmt"
	"sort"

	"repro/internal/loadgen"
	"repro/internal/randx"
	"repro/internal/units"
)

// TestDuration is the length of every Table I test: 80 minutes.
const TestDuration = 80 * 60.0

// Test1Ramp builds Test-1: utilization ramps up from 0% to 100% and back
// down, exercising controller response to gradual changes.
func Test1Ramp() (loadgen.Profile, error) {
	return loadgen.NewRamp(
		[]float64{0, TestDuration / 2, TestDuration},
		[]units.Percent{0, 100, 0},
	)
}

// Test2Periods builds Test-2: alternating high/low utilization with periods
// of 5, 10 and 15 minutes, exercising response to sudden changes.
func Test2Periods() (loadgen.Profile, error) {
	const high, low = units.Percent(90), units.Percent(10)
	minute := 60.0
	steps := []loadgen.Step{
		// 5-minute periods for the first 20 minutes.
		{Start: 0, Level: high},
		{Start: 5 * minute, Level: low},
		{Start: 10 * minute, Level: high},
		{Start: 15 * minute, Level: low},
		// 10-minute periods for the next 20 minutes.
		{Start: 20 * minute, Level: high},
		{Start: 30 * minute, Level: low},
		// 15-minute periods for the next 30 minutes.
		{Start: 40 * minute, Level: high},
		{Start: 55 * minute, Level: low},
		// Final high stretch to 80 minutes.
		{Start: 70 * minute, Level: high},
	}
	return loadgen.NewSteps(TestDuration, steps...)
}

// Test3RandomSteps builds Test-3: a new random utilization level from
// {0,10,...,100} every 5 minutes, exercising sudden and frequent changes.
// The sequence is deterministic for a given seed.
func Test3RandomSteps(seed int64) (loadgen.Profile, error) {
	rng := randx.New(seed)
	levels := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	const segment = 5 * 60.0
	var steps []loadgen.Step
	for start := 0.0; start < TestDuration; start += segment {
		steps = append(steps, loadgen.Step{
			Start: start,
			Level: units.Percent(rng.Choice(levels)),
		})
	}
	return loadgen.NewSteps(TestDuration, steps...)
}

// Test4Shell builds Test-4: the stochastic shell workload. The utilization
// trace comes from the M/M/c simulation with Poisson arrivals and
// exponential service times.
func Test4Shell(seed int64) (loadgen.Profile, error) {
	cfg := DefaultShellConfig()
	cfg.Seed = seed
	cfg.Duration = TestDuration
	res, err := SimulateMMC(cfg)
	if err != nil {
		return nil, err
	}
	return loadgen.NewTrace(cfg.SampleEvery, res.Utilization)
}

// Named associates a Table I test id with its profile.
type Named struct {
	ID      int
	Name    string
	Profile loadgen.Profile
}

// AllTests builds all four Table I workloads with the given seed for the
// stochastic ones.
func AllTests(seed int64) ([]Named, error) {
	t1, err := Test1Ramp()
	if err != nil {
		return nil, fmt.Errorf("workload: test1: %w", err)
	}
	t2, err := Test2Periods()
	if err != nil {
		return nil, fmt.Errorf("workload: test2: %w", err)
	}
	t3, err := Test3RandomSteps(seed)
	if err != nil {
		return nil, fmt.Errorf("workload: test3: %w", err)
	}
	t4, err := Test4Shell(seed)
	if err != nil {
		return nil, fmt.Errorf("workload: test4: %w", err)
	}
	return []Named{
		{1, "Test-1 ramp", t1},
		{2, "Test-2 periods", t2},
		{3, "Test-3 random steps", t3},
		{4, "Test-4 shell (Poisson/exp)", t4},
	}, nil
}

// ByID returns one Table I workload.
func ByID(id int, seed int64) (Named, error) {
	all, err := AllTests(seed)
	if err != nil {
		return Named{}, err
	}
	i := sort.Search(len(all), func(i int) bool { return all[i].ID >= id })
	if i == len(all) || all[i].ID != id {
		return Named{}, fmt.Errorf("workload: unknown test id %d", id)
	}
	return all[i], nil
}
