package workload

import (
	"fmt"

	"repro/internal/loadgen"
	"repro/internal/randx"
	"repro/internal/units"
)

// TestDuration is the length of every Table I test: 80 minutes.
const TestDuration = 80 * 60.0

// Test1Ramp builds Test-1: utilization ramps up from 0% to 100% and back
// down, exercising controller response to gradual changes.
func Test1Ramp() (loadgen.Profile, error) {
	return loadgen.NewRamp(
		[]float64{0, TestDuration / 2, TestDuration},
		[]units.Percent{0, 100, 0},
	)
}

// Test2Periods builds Test-2: alternating high/low utilization with periods
// of 5, 10 and 15 minutes, exercising response to sudden changes.
func Test2Periods() (loadgen.Profile, error) {
	const high, low = units.Percent(90), units.Percent(10)
	minute := 60.0
	steps := []loadgen.Step{
		// 5-minute periods for the first 20 minutes.
		{Start: 0, Level: high},
		{Start: 5 * minute, Level: low},
		{Start: 10 * minute, Level: high},
		{Start: 15 * minute, Level: low},
		// 10-minute periods for the next 20 minutes.
		{Start: 20 * minute, Level: high},
		{Start: 30 * minute, Level: low},
		// 15-minute periods for the next 30 minutes.
		{Start: 40 * minute, Level: high},
		{Start: 55 * minute, Level: low},
		// Final high stretch to 80 minutes.
		{Start: 70 * minute, Level: high},
	}
	return loadgen.NewSteps(TestDuration, steps...)
}

// Test3RandomSteps builds Test-3: a new random utilization level from
// {0,10,...,100} every 5 minutes, exercising sudden and frequent changes.
// The sequence is deterministic for a given seed.
func Test3RandomSteps(seed int64) (loadgen.Profile, error) {
	rng := randx.New(seed)
	levels := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	const segment = 5 * 60.0
	var steps []loadgen.Step
	for start := 0.0; start < TestDuration; start += segment {
		steps = append(steps, loadgen.Step{
			Start: start,
			Level: units.Percent(rng.Choice(levels)),
		})
	}
	return loadgen.NewSteps(TestDuration, steps...)
}

// Test4Shell builds Test-4: the stochastic shell workload. The utilization
// trace comes from the M/M/c simulation with Poisson arrivals and
// exponential service times.
func Test4Shell(seed int64) (loadgen.Profile, error) {
	cfg := DefaultShellConfig()
	cfg.Seed = seed
	cfg.Duration = TestDuration
	res, err := SimulateMMC(cfg)
	if err != nil {
		return nil, err
	}
	return loadgen.NewTrace(cfg.SampleEvery, res.Utilization)
}

// Named associates a Table I test id with its profile.
type Named struct {
	ID      int
	Name    string
	Profile loadgen.Profile
}

// AllTests builds all four Table I workloads with the given seed for the
// stochastic ones.
func AllTests(seed int64) ([]Named, error) {
	out := make([]Named, 0, 4)
	for id := 1; id <= 4; id++ {
		w, err := ByID(id, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// ByID returns one Table I workload, building only that test — asking for
// the ramp must not pay for the M/M/c queue simulation behind Test 4.
func ByID(id int, seed int64) (Named, error) {
	var (
		name string
		prof loadgen.Profile
		err  error
	)
	switch id {
	case 1:
		name = "Test-1 ramp"
		prof, err = Test1Ramp()
	case 2:
		name = "Test-2 periods"
		prof, err = Test2Periods()
	case 3:
		name = "Test-3 random steps"
		prof, err = Test3RandomSteps(seed)
	case 4:
		name = "Test-4 shell (Poisson/exp)"
		prof, err = Test4Shell(seed)
	default:
		return Named{}, fmt.Errorf("workload: unknown test id %d", id)
	}
	if err != nil {
		return Named{}, fmt.Errorf("workload: test%d: %w", id, err)
	}
	return Named{ID: id, Name: name, Profile: prof}, nil
}
