package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/loadgen"
	"repro/internal/units"
)

// ReadUtilizationCSV parses a utilization trace from CSV for playback as a
// workload profile — the paper's conclusion points at driving the
// controller with real-life traces. Accepted layouts:
//
//	util
//	12.5
//	40
//
// or two columns where the second is the utilization:
//
//	time_s,util
//	0,12.5
//	10,40
//
// A header row is detected (non-numeric first field) and skipped. dt is
// the sample spacing in seconds. Values are clamped to [0, 100].
func ReadUtilizationCSV(r io.Reader, dt float64) (loadgen.Profile, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("workload: trace dt must be positive, got %g", dt)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var levels []units.Percent
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: %w", row, err)
		}
		row++
		if len(rec) == 0 {
			continue
		}
		field := rec[len(rec)-1]
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			if row == 1 {
				continue // header
			}
			return nil, fmt.Errorf("workload: trace row %d: bad utilization %q", row, field)
		}
		levels = append(levels, units.Percent(v).Clamp())
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("workload: trace has no samples")
	}
	return loadgen.NewTrace(dt, levels)
}

// WriteUtilizationCSV serializes a QueueResult's utilization trace so a
// simulated shell workload can be replayed later or fed to external tools.
func WriteUtilizationCSV(w io.Writer, res QueueResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "util"}); err != nil {
		return err
	}
	for i, u := range res.Utilization {
		t := float64(i) * res.SampleEvery
		err := cw.Write([]string{
			strconv.FormatFloat(t, 'f', 1, 64),
			strconv.FormatFloat(float64(u), 'f', 3, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
