// Package workload builds the four 80-minute test workloads of Table I and
// the M/M/c queueing simulator behind Test-4 (a "shell workload" with
// Poisson arrival times and exponential service times, following Meisner &
// Wenisch's stochastic queuing simulation, the paper's reference [8]).
package workload

import (
	"fmt"
	"math"

	"repro/internal/randx"
	"repro/internal/units"
)

// QueueConfig parameterizes the M/M/c simulation.
type QueueConfig struct {
	Servers     int     // c: number of service slots (cores)
	ArrivalRate float64 // λ: jobs per second
	ServiceMean float64 // 1/μ: mean service seconds
	Duration    float64 // simulated seconds
	SampleEvery float64 // utilization sampling interval, seconds
	Seed        int64
}

// DefaultShellConfig returns the Test-4 shell workload calibration: a
// 32-core machine at ~40% average utilization with visible stochastic
// variation.
func DefaultShellConfig() QueueConfig {
	return QueueConfig{
		Servers:     32,
		ArrivalRate: 0.64,
		ServiceMean: 20,
		Duration:    4800,
		SampleEvery: 10,
		Seed:        1304,
	}
}

// Validate reports configuration errors.
func (c QueueConfig) Validate() error {
	if c.Servers <= 0 {
		return fmt.Errorf("workload: queue needs servers, got %d", c.Servers)
	}
	if c.ArrivalRate <= 0 || c.ServiceMean <= 0 {
		return fmt.Errorf("workload: arrival rate and service mean must be positive")
	}
	if c.Duration <= 0 || c.SampleEvery <= 0 {
		return fmt.Errorf("workload: duration and sampling interval must be positive")
	}
	if rho := c.ArrivalRate * c.ServiceMean / float64(c.Servers); rho >= 1 {
		return fmt.Errorf("workload: queue unstable, offered load ρ=%.2f ≥ 1", rho)
	}
	return nil
}

// OfferedLoad returns ρ = λ/(c·μ), the expected long-run utilization.
func (c QueueConfig) OfferedLoad() float64 {
	return c.ArrivalRate * c.ServiceMean / float64(c.Servers)
}

// QueueResult carries the simulated utilization trace and summary counters.
type QueueResult struct {
	SampleEvery  float64
	Utilization  []units.Percent // one sample per SampleEvery
	JobsArrived  int
	JobsFinished int
	MaxQueueLen  int
}

// MeanUtilization returns the average of the utilization trace.
func (r QueueResult) MeanUtilization() units.Percent {
	if len(r.Utilization) == 0 {
		return 0
	}
	var s float64
	for _, u := range r.Utilization {
		s += float64(u)
	}
	return units.Percent(s / float64(len(r.Utilization)))
}

// SimulateMMC runs an event-driven M/M/c queue and samples machine
// utilization (busy servers / c) on a fixed grid.
func SimulateMMC(cfg QueueConfig) (QueueResult, error) {
	if err := cfg.Validate(); err != nil {
		return QueueResult{}, err
	}
	rng := randx.New(cfg.Seed)
	res := QueueResult{SampleEvery: cfg.SampleEvery}

	// Service completion times of busy servers; 0 length = all idle.
	busy := make([]float64, 0, cfg.Servers)
	queued := 0 // jobs waiting for a server
	nextArrival := rng.Exponential(1 / cfg.ArrivalRate)
	nextSample := 0.0
	now := 0.0

	popEarliest := func() (float64, int) {
		best, idx := math.Inf(1), -1
		for i, t := range busy {
			if t < best {
				best, idx = t, i
			}
		}
		return best, idx
	}

	for now < cfg.Duration {
		completion, ci := popEarliest()
		// Next event is the earliest of: sample, arrival, completion.
		next := math.Min(nextSample, math.Min(nextArrival, completion))
		if next > cfg.Duration {
			break
		}
		now = next

		switch {
		case now == nextSample:
			util := float64(len(busy)) / float64(cfg.Servers)
			res.Utilization = append(res.Utilization, units.FromFraction(util))
			nextSample += cfg.SampleEvery
		case now == nextArrival:
			res.JobsArrived++
			if len(busy) < cfg.Servers {
				busy = append(busy, now+rng.Exponential(cfg.ServiceMean))
			} else {
				queued++
				if queued > res.MaxQueueLen {
					res.MaxQueueLen = queued
				}
			}
			nextArrival = now + rng.Exponential(1/cfg.ArrivalRate)
		default: // completion
			res.JobsFinished++
			if queued > 0 {
				queued--
				busy[ci] = now + rng.Exponential(cfg.ServiceMean)
			} else {
				busy[ci] = busy[len(busy)-1]
				busy = busy[:len(busy)-1]
			}
		}
	}
	return res, nil
}
