// Package fault is the deterministic fault-schedule subsystem: a typed,
// timestamped catalogue of component failures a rack run injects and clears
// at exact simulation-grid instants, so degraded runs stay reproducible and
// byte-identical across worker counts.
//
// A Schedule is a sorted list of Events. Each Event names a Kind (fan
// stick/fail, PSU droop/failure, forced server trip, ambient excursion,
// CRAC outage, degraded chiller COP), a target scope (one server, one fan,
// or the whole rack), an inject time At and an optional Clear time. The
// schedule itself owns no simulation state: the trace runner
// (sched.RunTraceCfg) pins every At/Clear to an integer grid step up front
// — the same integer-step arithmetic that keeps job arrivals exact under a
// non-integer dt — and calls rack.ApplyFault / rack.ClearFault at those
// steps, serially, before any placement decision of the step.
//
// # Interaction with the event kernel (PR 5 contract)
//
// Fault inject and clear instants join the event taxonomy: the
// event-stepping kernel wakes at every fault step, so degraded runs take
// scheduling decisions at exactly the instants the fixed-dt reference
// does. A *windowed* event — one with a Clear time — additionally pins its
// affected servers to plain fixed-dt sub-steps for the whole [At, Clear)
// window (server.PinFixedDt), so the physics inside a bounded fault window
// is bit-exact, not merely within the macro-stepping drift tolerance.
// Permanent faults (no Clear) leave the server macro-steppable once its
// transient settles: a quiet degraded interval still collapses into
// closed-form windows.
//
// # Determinism
//
// Events are applied in schedule order at their pinned grid steps; all
// application is serial (it runs in the trace runner's decision phase,
// never inside the per-server step fan-out), so fault runs inherit the
// repo-wide determinism contract unchanged: telemetry is byte-identical
// for any worker count, and an empty schedule leaves every metric
// bit-identical to a fault-free run.
package fault
