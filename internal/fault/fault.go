package fault

import (
	"fmt"
	"math"
	"sort"
)

// Kind enumerates the fault taxonomy.
type Kind int

const (
	// FanStick freezes fan Fan of server Server at its current speed;
	// controller commands are ignored until the event clears.
	FanStick Kind = iota
	// FanFail spins fan Fan of server Server down to zero and latches it
	// there — an outright failure: no airflow, no fan power. Clearing lets
	// the fan slew back to its commanded target.
	FanFail
	// PSUDroop degrades server Server's supply efficiency: the AC input
	// drawn for a given DC load is inflated by 1/(1−Severity). Severity
	// must lie in (0, 1); zero selects DefaultPSUDroop.
	PSUDroop
	// PSUFail takes server Server dark: the slot draws nothing at the wall,
	// injects no heat, its fans spin down and its health reports Failed —
	// the scheduler must kill and requeue (or drop) its jobs. Clearing
	// restores power; the machine rejoins the rack from its cooled state.
	PSUFail
	// ServerTrip forces server Server's thermal protection: the trip
	// latches (sticky for the run), fans are driven to maximum, and health
	// reports Tripped. Clearing is the operator's explicit trip reset.
	ServerTrip
	// AmbientExcursion shifts the inlet ambient of server Server (or of
	// every server when Server < 0) by Severity °C for the event's window.
	AmbientExcursion
	// CRACOutage is the facility-scope heat soak: every server's ambient
	// rises by Severity °C (zero selects DefaultCRACOutageC) and the
	// CRAC/chiller cooling power is zero while the outage lasts — the room
	// unit is dark, so no energy is spent removing the heat that is now
	// soaking the aisles.
	CRACOutage
	// ChillerDegraded derates the chiller: cooling power is inflated by
	// 1/(1−Severity) — the COP chain delivering the same heat removal at
	// degraded efficiency. Severity must lie in (0, 1).
	ChillerDegraded
)

// DefaultPSUDroop is the efficiency derate a PSUDroop event with zero
// Severity applies.
const DefaultPSUDroop = 0.05

// DefaultCRACOutageC is the aisle heat-soak a CRACOutage event with zero
// Severity applies, in °C.
const DefaultCRACOutageC = 8

// kindNames also fixes the taxonomy's table-rendering order.
var kindNames = map[Kind]string{
	FanStick:         "fan-stick",
	FanFail:          "fan-fail",
	PSUDroop:         "psu-droop",
	PSUFail:          "psu-fail",
	ServerTrip:       "server-trip",
	AmbientExcursion: "ambient-excursion",
	CRACOutage:       "crac-outage",
	ChillerDegraded:  "chiller-degraded",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// RackScope reports whether the kind targets the whole rack rather than one
// server (Event.Server is ignored for rack-scope kinds except
// AmbientExcursion, where Server < 0 selects rack scope).
func (k Kind) RackScope() bool { return k == CRACOutage || k == ChillerDegraded }

// Event is one scheduled fault: injected at At and, when Clear > At,
// cleared again at Clear. Times are seconds relative to the start of the
// trace window the schedule is attached to; the trace runner pins both to
// the first grid step at or after them. Clear ≤ 0 means the fault is
// permanent for the run.
type Event struct {
	Kind   Kind
	Server int     // target slot; -1 with AmbientExcursion = every server
	Fan    int     // target fan for FanStick/FanFail
	At     float64 // inject time, seconds from trace start
	Clear  float64 // optional clear time; ≤ 0 = never
	// Severity is the kind-specific magnitude: the efficiency derate in
	// (0,1) for PSUDroop/ChillerDegraded, the ambient shift in °C for
	// AmbientExcursion/CRACOutage. Ignored by the other kinds. Zero picks
	// the kind's documented default.
	Severity float64
}

// Windowed reports whether the event carries a clear time — the bounded
// fault windows that pin their affected servers to fixed-dt stepping.
func (e Event) Windowed() bool { return e.Clear > e.At }

// Validate reports structural errors against a rack of nServers servers
// with nFans fans each.
func (e Event) Validate(nServers, nFans int) error {
	if _, ok := kindNames[e.Kind]; !ok {
		return fmt.Errorf("fault: unknown kind %d", int(e.Kind))
	}
	for _, v := range []float64{e.At, e.Clear, e.Severity} {
		// NaN and ±Inf would pass every ordered comparison below and then
		// poison the grid-step pinning; reject them up front.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("fault: %s: non-finite time/severity %g", e.Kind, v)
		}
	}
	if e.At < 0 {
		return fmt.Errorf("fault: %s at %g: inject time must be >= 0", e.Kind, e.At)
	}
	if e.Clear != 0 && e.Clear <= e.At {
		return fmt.Errorf("fault: %s: clear %g must follow inject %g (or be 0 = never)", e.Kind, e.Clear, e.At)
	}
	needServer := !e.Kind.RackScope() && !(e.Kind == AmbientExcursion && e.Server < 0)
	if needServer && (e.Server < 0 || e.Server >= nServers) {
		return fmt.Errorf("fault: %s: server %d out of range [0,%d)", e.Kind, e.Server, nServers)
	}
	if e.Kind == FanStick || e.Kind == FanFail {
		if e.Fan < 0 || e.Fan >= nFans {
			return fmt.Errorf("fault: %s server %d: fan %d out of range [0,%d)", e.Kind, e.Server, e.Fan, nFans)
		}
	}
	switch e.Kind {
	case PSUDroop, ChillerDegraded:
		if e.Severity < 0 || e.Severity >= 1 {
			return fmt.Errorf("fault: %s: severity %g must lie in [0,1)", e.Kind, e.Severity)
		}
	}
	return nil
}

func (e Event) String() string {
	s := e.Kind.String()
	switch {
	case e.Kind.RackScope():
	case e.Kind == AmbientExcursion && e.Server < 0:
		s += "[rack]"
	default:
		s += fmt.Sprintf("[srv%d", e.Server)
		if e.Kind == FanStick || e.Kind == FanFail {
			s += fmt.Sprintf(" fan%d", e.Fan)
		}
		s += "]"
	}
	s += fmt.Sprintf("@%gs", e.At)
	if e.Windowed() {
		s += fmt.Sprintf("..%gs", e.Clear)
	}
	return s
}

// Schedule is a deterministic fault plan: the events a run injects, in
// inject-time order. The zero value (no events) is the healthy run and is
// guaranteed not to perturb any metric.
type Schedule struct {
	Events []Event
}

// Validate checks every event against the rack shape and that the schedule
// is sorted by inject time (ties broken by declaration order are fine; a
// descending pair is rejected so plans stay readable).
func (s *Schedule) Validate(nServers, nFans int) error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if err := e.Validate(nServers, nFans); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if i > 0 && e.At < s.Events[i-1].At {
			return fmt.Errorf("fault: events must be sorted by inject time (event %d at %g after %g)", i, e.At, s.Events[i-1].At)
		}
	}
	return nil
}

// Sort orders the events by inject time (stable, so same-instant events
// keep their declaration order — the order they are applied in).
func (s *Schedule) Sort() {
	sort.SliceStable(s.Events, func(a, b int) bool { return s.Events[a].At < s.Events[b].At })
}

// Empty reports whether the schedule carries no events; a nil schedule is
// empty.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }
