package fault

import (
	"math"
	"testing"
)

// FuzzScheduleValidate throws arbitrary two-event schedules at the
// validator and pins the invariants the trace runner depends on: Sort is
// idempotent and yields inject-time order, a schedule of individually
// valid events always validates after Sort (the sortedness rejection is
// only ever about order, never a new failure mode), every event a
// validated schedule carries satisfies the documented field contracts, and
// String never panics. The committed corpus seeds the taxonomy's corners —
// rack-scope kinds, the Server<0 ambient wildcard, windowed clears and the
// non-finite rejections; CI runs a short -fuzz smoke on top.
func FuzzScheduleValidate(f *testing.F) {
	f.Add(0, 0, 0, 600.0, 900.0, 0.0, 3, 1, 0, 1200.0, 0.0, 0.0)   // fan-stick window, then psu-fail forever
	f.Add(6, 0, 0, 300.0, 600.0, 0.0, 5, -1, 0, 100.0, 200.0, 4.0) // crac outage + rack-wide ambient, unsorted
	f.Add(2, 1, 0, 0.0, 0.0, 0.5, 7, 0, 0, 0.0, 0.0, 0.99)         // droop + chiller derate at t=0
	f.Add(4, 2, 0, -5.0, 0.0, 0.0, 1, 9, 9, 10.0, 5.0, 0.0)        // negative inject, bad targets, clear<at
	f.Add(99, 0, 0, 1.0, 2.0, 0.0, 0, 0, 0, 3.0, 4.0, 2.0)         // unknown kind
	f.Fuzz(func(t *testing.T, k0, srv0, fan0 int, at0, clear0, sev0 float64, k1, srv1, fan1 int, at1, clear1, sev1 float64) {
		const nServers, nFans = 4, 3
		var nilSched *Schedule
		if err := nilSched.Validate(nServers, nFans); err != nil {
			t.Fatalf("nil schedule must validate: %v", err)
		}
		s := &Schedule{Events: []Event{
			{Kind: Kind(k0), Server: srv0, Fan: fan0, At: at0, Clear: clear0, Severity: sev0},
			{Kind: Kind(k1), Server: srv1, Fan: fan1, At: at1, Clear: clear1, Severity: sev1},
		}}
		s.Sort()
		sorted := append([]Event(nil), s.Events...)
		if len(sorted) == 2 && sorted[1].At < sorted[0].At {
			t.Fatalf("Sort left events out of order: %g after %g", sorted[1].At, sorted[0].At)
		}
		// Idempotent: a second sort must not reshuffle ties. Plain struct
		// equality would declare a NaN-carrying event unequal to itself, so
		// compare fields NaN-aware.
		feq := func(a, b float64) bool { return a == b || (math.IsNaN(a) && math.IsNaN(b)) }
		evEq := func(a, b Event) bool {
			return a.Kind == b.Kind && a.Server == b.Server && a.Fan == b.Fan &&
				feq(a.At, b.At) && feq(a.Clear, b.Clear) && feq(a.Severity, b.Severity)
		}
		s.Sort()
		if !evEq(s.Events[0], sorted[0]) || !evEq(s.Events[1], sorted[1]) {
			t.Fatal("Sort is not idempotent")
		}
		allValid := true
		for _, e := range s.Events {
			if e.Validate(nServers, nFans) != nil {
				allValid = false
			}
			_ = e.String() // must not panic, even for garbage kinds
		}
		err := s.Validate(nServers, nFans)
		if allValid && err != nil {
			t.Fatalf("all events valid and sorted, yet Validate failed: %v", err)
		}
		if !allValid && err == nil {
			t.Fatal("Validate accepted a schedule containing an invalid event")
		}
		if err != nil {
			return
		}
		for i, e := range s.Events {
			if math.IsNaN(e.At) || math.IsInf(e.At, 0) || e.At < 0 {
				t.Fatalf("validated event %d has bad inject time %g", i, e.At)
			}
			if e.Windowed() != (e.Clear > e.At) {
				t.Fatalf("validated event %d: Windowed()=%v but At=%g Clear=%g", i, e.Windowed(), e.At, e.Clear)
			}
			if e.Clear != 0 && !e.Windowed() {
				t.Fatalf("validated event %d carries a clear %g that never follows inject %g", i, e.Clear, e.At)
			}
		}
	})
}
