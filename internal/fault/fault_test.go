package fault

import (
	"strings"
	"testing"
)

func TestEventValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		ok   bool
	}{
		{"fan ok", Event{Kind: FanStick, Server: 1, Fan: 0, At: 10}, true},
		{"fan windowed", Event{Kind: FanFail, Server: 0, Fan: 1, At: 10, Clear: 20}, true},
		{"fan index high", Event{Kind: FanStick, Server: 0, Fan: 2, At: 10}, false},
		{"fan index negative", Event{Kind: FanStick, Server: 0, Fan: -1, At: 10}, false},
		{"server high", Event{Kind: PSUFail, Server: 4, At: 10}, false},
		{"server negative", Event{Kind: ServerTrip, Server: -1, At: 10}, false},
		{"rack scope ignores server", Event{Kind: CRACOutage, Server: -1, At: 10}, true},
		{"ambient rack-wide", Event{Kind: AmbientExcursion, Server: -1, At: 5, Severity: 4}, true},
		{"ambient one server", Event{Kind: AmbientExcursion, Server: 3, At: 5, Severity: 4}, true},
		{"negative time", Event{Kind: PSUDroop, Server: 0, At: -1}, false},
		{"clear before at", Event{Kind: PSUFail, Server: 0, At: 10, Clear: 5}, false},
		{"droop too big", Event{Kind: PSUDroop, Server: 0, At: 1, Severity: 1}, false},
		{"droop negative", Event{Kind: PSUDroop, Server: 0, At: 1, Severity: -0.1}, false},
		{"chiller derate too big", Event{Kind: ChillerDegraded, At: 1, Severity: 1.5}, false},
		{"unknown kind", Event{Kind: Kind(99), At: 1}, false},
	}
	for _, c := range cases {
		err := c.ev.Validate(4, 2)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}

func TestScheduleValidateRequiresSortedAndSortFixes(t *testing.T) {
	s := Schedule{Events: []Event{
		{Kind: PSUFail, Server: 1, At: 30},
		{Kind: FanStick, Server: 0, Fan: 0, At: 10},
	}}
	if err := s.Validate(2, 1); err == nil {
		t.Fatal("unsorted schedule must be rejected")
	}
	s.Sort()
	if err := s.Validate(2, 1); err != nil {
		t.Fatalf("sorted schedule rejected: %v", err)
	}
	if s.Events[0].Kind != FanStick {
		t.Fatalf("sort order wrong: %+v", s.Events)
	}
}

func TestScheduleSortIsStable(t *testing.T) {
	// Two events at the same instant must keep declaration order — the
	// tie-break the runner's edge ordering depends on.
	s := Schedule{Events: []Event{
		{Kind: FanStick, Server: 0, Fan: 0, At: 10},
		{Kind: PSUDroop, Server: 1, At: 10, Severity: 0.1},
	}}
	s.Sort()
	if s.Events[0].Kind != FanStick || s.Events[1].Kind != PSUDroop {
		t.Fatalf("stable sort violated: %+v", s.Events)
	}
}

func TestEmptyAndWindowed(t *testing.T) {
	var nilSched *Schedule
	if !nilSched.Empty() {
		t.Fatal("nil schedule must read as empty")
	}
	if !(&Schedule{}).Empty() {
		t.Fatal("zero schedule must read as empty")
	}
	if (&Schedule{Events: []Event{{Kind: PSUFail, At: 1}}}).Empty() {
		t.Fatal("non-empty schedule read as empty")
	}
	if (Event{At: 5}).Windowed() {
		t.Fatal("permanent event read as windowed")
	}
	if !(Event{At: 5, Clear: 6}).Windowed() {
		t.Fatal("windowed event read as permanent")
	}
}

func TestStrings(t *testing.T) {
	for k := FanStick; k <= ChillerDegraded; k++ {
		if s := k.String(); s == "" || strings.Contains(s, "kind(") {
			t.Fatalf("kind %d has no name: %q", k, s)
		}
	}
	ev := Event{Kind: FanStick, Server: 2, Fan: 1, At: 10, Clear: 20}
	got := ev.String()
	for _, want := range []string{"fan-stick", "srv2", "fan1", "@10s", "..20s"} {
		if !strings.Contains(got, want) {
			t.Fatalf("event string %q missing %q", got, want)
		}
	}
}
