package room

import "repro/internal/obs"

// pinReason labels why one rack advanced exactly one grid step instead of
// a macro window — the room-scope mirror of internal/sched's taxonomy,
// with the same names so evalctl can render one breakdown table for both
// scopes. Exactly one reason is charged per single-step advance, so the
// per-reason counts sum to (rack advances − macro windows) by
// construction, per rack and room-wide, in both stepping modes.
type pinReason int

const (
	// pinFixedDt: the fixed-dt reference kernel — every step of every rack
	// is pinned by mode.
	pinFixedDt pinReason = iota
	// pinBacklog: non-empty backlog collapsed the global segment to one
	// step; the FIFO head retries every step.
	pinBacklog
	// pinTripGuard: a fault run (or a backlog-crossing segment) with some
	// live server inside the trip-guard band — trips must latch on their
	// exact step, so every rack single-steps.
	pinTripGuard
	// pinArrival: the next job arrival bounds the segment at one step.
	pinArrival
	// pinCompletion: a running job completes at the next step.
	pinCompletion
	// pinFaultEdge: a pinned fault inject/clear fires at the next step.
	pinFaultEdge
	// pinController: this rack's own fan-controller promise expires at the
	// next step (holdoff or poll boundary), fans settled — charged by the
	// rack's sub-kernel, not the global segment.
	pinController
	// pinFanSlew: as pinController, but some powered slot's fans are still
	// slewing.
	pinFanSlew
	// pinNoPromise: some controller on this rack implements no quiet
	// horizon, collapsing its every window to one step.
	pinNoPromise
	// pinSample: the TraceConfig.SampleEvery telemetry grid bounds the
	// segment.
	pinSample
	// pinHorizonEnd: the trace window itself ends at the next step.
	pinHorizonEnd
	pinReasons // count
)

// pinNames maps reasons to the "room.pin.<reason>" metric suffixes,
// byte-identical to internal/sched's suffixes for the shared taxonomy.
var pinNames = [pinReasons]string{
	pinFixedDt:    "fixed-dt",
	pinBacklog:    "backlog",
	pinTripGuard:  "trip-guard",
	pinArrival:    "arrival",
	pinCompletion: "completion",
	pinFaultEdge:  "fault-edge",
	pinController: "controller",
	pinFanSlew:    "fan-slew",
	pinNoPromise:  "no-promise",
	pinSample:     "sample",
	pinHorizonEnd: "horizon-end",
}

// PinReasonNames returns the metric suffixes of the room pin-reason
// taxonomy in attribution-priority order; "room.pin." + name is the
// counter each appears under, and RackKernelStats.Pins is indexed the
// same way.
func PinReasonNames() []string {
	out := make([]string, pinReasons)
	copy(out, pinNames[:])
	return out
}

// windowLenBounds are the room.window.len histogram buckets, shared with
// the rack kernel's: powers of two up to 16384 steps.
func windowLenBounds() []float64 { return obs.ExpBuckets(1, 2, 15) }

// runMetrics carries one room trace run's metric handles, fetched once at
// run start. With no registry attached every handle is nil and every call
// is a nil-receiver no-op. The chunk path is charged from inside the
// per-rack fan-out jobs — obs handles are atomic and commutative, so the
// dump stays byte-identical for every worker count.
type runMetrics struct {
	segments  *obs.Counter // room.segments: global segments processed
	gridSteps *obs.Counter // room.grid.steps: fixed-dt steps crossed (Σ segment lengths)
	rackSteps *obs.Counter // room.rack.steps.total: per-rack advances (chunks)
	macroWins *obs.Counter // room.windows.macro: chunks with window > 1
	winLen    *obs.Histogram
	pins      [pinReasons]*obs.Counter

	submitted  *obs.Counter
	placements *obs.Counter
	completed  *obs.Counter
	requeued   *obs.Counter
	dropped    *obs.Counter
	backlogHW  *obs.Gauge
}

func newRunMetrics(reg *obs.Registry) runMetrics {
	if reg == nil {
		return runMetrics{}
	}
	m := runMetrics{
		segments:   reg.Counter("room.segments"),
		gridSteps:  reg.Counter("room.grid.steps"),
		rackSteps:  reg.Counter("room.rack.steps.total"),
		macroWins:  reg.Counter("room.windows.macro"),
		winLen:     reg.Histogram("room.window.len", windowLenBounds()),
		submitted:  reg.Counter("room.jobs.submitted"),
		placements: reg.Counter("room.placements"),
		completed:  reg.Counter("room.jobs.completed"),
		requeued:   reg.Counter("room.kills.requeued"),
		dropped:    reg.Counter("room.kills.dropped"),
		backlogHW:  reg.Gauge("room.backlog.highwater"),
	}
	for i := range m.pins {
		m.pins[i] = reg.Counter("room.pin." + pinNames[i])
	}
	return m
}

// chunk charges one rack advance spanning `window` grid steps, pinned by
// `reason` when the window is a single step. Safe to call concurrently
// from the segment fan-out.
func (m *runMetrics) chunk(window int, reason pinReason) {
	m.rackSteps.Inc()
	m.winLen.Observe(float64(window))
	if window > 1 {
		m.macroWins.Inc()
	} else {
		m.pins[reason].Inc()
	}
}
