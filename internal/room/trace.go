package room

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rack"
	"repro/internal/sched"
	"repro/internal/units"
)

// TraceConfig parameterizes a room trace run. It is the room-scope subset
// of sched.TraceConfig: the wall-cap and backfill machinery stay
// rack-scope features (drive a single rack through sched.RunTraceCfg for
// those); the room runner adds the per-rack fault schedules and the
// two-level kernel.
type TraceConfig struct {
	Dt      float64 // simulation step, seconds
	Horizon float64 // trace window, seconds

	// Ctx, when non-nil, makes the run cooperatively cancellable: it is
	// checked at every decision-step boundary (each grid step on the fixed
	// path, each global segment on the event path — never mid-fan-out), and
	// a cancelled run stops there, returning the partial Result accumulated
	// so far together with an error wrapping ctx.Err(). Room runs have no
	// resume cursor (that is a rack-scope feature, see sched.ResumeTraceCfg);
	// cancellation is for bounding wall-clock, not for checkpointing.
	Ctx context.Context

	// EventStepping selects the room's event-driven kernel: the global
	// segment between scheduling events is computed once — arrivals,
	// completions, fault edges, sample ticks and the horizon end, with the
	// same float-exact step arithmetic as internal/sched, a non-empty
	// backlog collapsing it to one step unless the whole policy's refusal
	// is load-only — and within it every rack advances independently: a
	// rack whose controllers promise quiet crosses the segment in macro
	// windows while a pinned rack single-steps. false is the fixed-dt
	// reference path.
	EventStepping bool

	// SampleEvery, in seconds, optionally bounds event-stepping segments at
	// a fixed telemetry cadence — which also bounds how long recirculation
	// offsets are held between re-anchors. 0 samples only at events.
	SampleEvery float64

	// Faults holds one deterministic fault schedule per rack (index i
	// drives rack i); nil entries and a nil slice are fault-free. Edges are
	// pinned to grid steps and applied serially exactly like the rack
	// runner's, clears before applies at a shared step, rack order breaking
	// remaining ties. Facility-scope kinds act on the room's shared bank
	// (see Room.ApplyFault).
	Faults []*fault.Schedule

	// DropOnFault switches fault kills from requeue-at-head to drop.
	DropOnFault bool

	// Metrics, when non-nil, receives the run's observability counters
	// (room.* names, see metrics.go) plus every rack's physics roll-up
	// (rack.MetricsInto, folded serially after the run). Handle updates are
	// atomic and commutative, so dumps are byte-identical for every worker
	// count.
	Metrics *obs.Registry
}

// RackKernelStats is one rack's kernel accounting over a run. The pin
// identity Advances − MacroWindows == Σ Pins holds by construction, per
// rack and (summed) room-wide.
type RackKernelStats struct {
	Advances     int   // rack.Advance calls (chunks)
	MacroWindows int   // chunks spanning > 1 grid step
	Pins         []int // single-step chunks by reason, indexed as PinReasonNames
}

// Result summarizes the scheduling outcome of one room trace run; the
// physics outcome lives in Room.Telemetry.
type Result struct {
	Submitted   int
	Completed   int
	Placed      int
	MeanWaitSec float64
	MaxQueueLen int

	Requeued       int
	Lost           int
	LostJobSeconds float64

	Segments  int // global segments processed (fixed-dt: one per step)
	GridSteps int // fixed-dt grid steps crossed (Σ segment lengths == horizon/dt)

	// Kernel holds per-rack kernel accounting, indexed by rack.
	Kernel []RackKernelStats

	// Metrics echoes TraceConfig.Metrics after the run's counters have been
	// folded in; nil when no registry was attached.
	Metrics *obs.Registry
}

// activeJob is a placed job with its completion time and placement site.
type activeJob struct {
	end    float64
	rackI  int
	slot   int
	demand units.Percent
	job    sched.Job
	start  float64
}

// roomFaultAction is one pinned fault edge: apply or clear ev on rack
// rackI at grid step k.
type roomFaultAction struct {
	k     int
	rackI int
	apply bool
	ev    fault.Event
}

// RunTrace drives the room through the job trace under the two-level
// policy. The decision process — FIFO head, completions before fault edges
// before kills before arrivals before placements, float-exact step
// pinning — is the rack runner's (sched.RunTraceCfg), lifted one level:
// the chooser picks a rack, that rack's slot policy picks the slot, and a
// slot-policy refusal masks the rack (Blocked) and retries the chooser, so
// a job is refused only when every fitting rack refused it. All decisions
// run serially; only the physics between them fans out over racks.
func RunTrace(rm *Room, jobs []sched.Job, pol *Policy, tc TraceConfig) (Result, error) {
	dt, horizon := tc.Dt, tc.Horizon
	if dt <= 0 || horizon <= 0 {
		return Result{}, fmt.Errorf("room: dt and horizon must be positive")
	}
	if !sort.SliceIsSorted(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival }) {
		return Result{}, fmt.Errorf("room: jobs must be sorted by arrival time")
	}
	if pol == nil || pol.Chooser == nil {
		return Result{}, fmt.Errorf("room: trace needs a placement policy")
	}
	if len(pol.Slots) != rm.NumRacks() {
		return Result{}, fmt.Errorf("room: policy has %d slot policies for %d racks", len(pol.Slots), rm.NumRacks())
	}
	if len(tc.Faults) > 0 && len(tc.Faults) != rm.NumRacks() {
		return Result{}, fmt.Errorf("room: %d fault schedules for %d racks (one per rack, nil entries allowed)", len(tc.Faults), rm.NumRacks())
	}
	pol.reset()

	e := &roomRun{
		rm:    rm,
		jobs:  jobs,
		pol:   pol,
		tc:    tc,
		dt:    dt,
		res:   Result{Submitted: len(jobs)},
		start: rm.Now(),
		steps: int(math.Ceil(horizon/dt - 1e-9)),
		m:     newRunMetrics(tc.Metrics),
		// The backlog un-pin engages only when the whole two-level refusal
		// is provably invariant between events (see Policy.loadOnly).
		backlogMacro: pol.loadOnly(),
	}
	e.res.Kernel = make([]RackKernelStats, rm.NumRacks())
	e.loads = make([][]units.Percent, rm.NumRacks())
	e.views = make([]RackView, rm.NumRacks())
	for i := 0; i < rm.NumRacks(); i++ {
		n := rm.racks[i].NumServers()
		e.loads[i] = make([]units.Percent, n)
		e.views[i].Slots = make([]sched.ServerView, n)
		e.res.Kernel[i].Pins = make([]int, pinReasons)
	}
	e.m.submitted.Add(int64(len(jobs)))
	for ri, sch := range tc.Faults {
		if sch.Empty() {
			continue
		}
		rk := rm.racks[ri]
		if err := sch.Validate(rk.NumServers(), rk.Server(0).Fans().NumFans()); err != nil {
			return Result{}, fmt.Errorf("room: fault schedule for rack %d: %w", ri, err)
		}
		e.buildFaultActions(ri, sch)
	}
	e.sortFaultActions()
	var err error
	if tc.EventStepping {
		err = e.runEvents()
	} else {
		err = e.runFixed()
	}
	if e.res.Placed > 0 {
		e.res.MeanWaitSec = e.totalWait / float64(e.res.Placed)
	}
	if tc.Metrics != nil {
		// Serial post-run fold of the physics-layer counters, in rack-index
		// order; the additive rack.* names accumulate across racks.
		for _, rk := range rm.racks {
			rk.MetricsInto(tc.Metrics)
		}
		e.res.Metrics = tc.Metrics
	}
	return e.res, err
}

// Settle advances the room with no offered load for `duration` seconds —
// the idle stabilization window room experiments run before their measured
// trace, with the same kernel they will measure under.
func Settle(rm *Room, dt, duration float64, eventStepping bool) error {
	if duration <= 0 {
		return nil
	}
	if eventStepping {
		slots := make([]sched.Policy, rm.NumRacks())
		for i := range slots {
			slots[i] = sched.NewRoundRobin()
		}
		pol, err := NewPolicy(NewRoundRobinRacks(), slots)
		if err != nil {
			return err
		}
		_, err = RunTrace(rm, nil, pol, TraceConfig{Dt: dt, Horizon: duration, EventStepping: true})
		return err
	}
	for k := int(math.Ceil(duration/dt - 1e-9)); k > 0; k-- {
		rm.Step(dt)
	}
	return nil
}

// roomRun is the state of one room trace execution, shared by the fixed-dt
// reference loop and the event kernel so both take scheduling decisions
// through literally the same code.
type roomRun struct {
	rm    *Room
	jobs  []sched.Job
	pol   *Policy
	tc    TraceConfig
	dt    float64
	res   Result
	loads [][]units.Percent
	views []RackView

	pending   []sched.Job
	running   []activeJob
	totalWait float64
	nextJob   int
	start     float64
	steps     int

	backlogMacro bool

	actions    []roomFaultAction
	nextAction int
	faultSteps []int

	m runMetrics

	// Segment fan-out staging (see rack.Rack's prebuilt-closure idiom):
	// segK/segEnd/segCause are written serially before the barrier and only
	// read by the jobs; segFn is built once.
	segK, segEnd int
	segCause     pinReason
	segFn        func(i int)
}

// runFixed is the fixed-dt reference path: every grid step processes
// events serially, then the whole room steps once (rack fan-out inside
// Room.Step), every rack charged one fixed-dt pin.
func (e *roomRun) runFixed() error {
	for k := 0; k < e.steps; k++ {
		if err := e.cancelled(k); err != nil {
			return err
		}
		if err := e.processStep(k); err != nil {
			return err
		}
		e.applyLoads()
		e.rm.Step(e.dt)
		e.res.Segments++
		e.res.GridSteps++
		e.m.segments.Inc()
		e.m.gridSteps.Add(1)
		for i := range e.res.Kernel {
			st := &e.res.Kernel[i]
			st.Advances++
			st.Pins[pinFixedDt]++
			e.m.chunk(1, pinFixedDt)
		}
	}
	return nil
}

// runEvents is the room's event kernel: one global segment per iteration,
// bounded by the next scheduling event, each rack crossing it with its own
// sub-kernel (rackSegment).
func (e *roomRun) runEvents() error {
	if e.segFn == nil {
		e.segFn = e.rackSegment
	}
	sampleSteps := 0
	if e.tc.SampleEvery > 0 {
		sampleSteps = int(math.Round(e.tc.SampleEvery / e.dt))
		if sampleSteps < 1 {
			sampleSteps = 1
		}
	}
	for k := 0; k < e.steps; {
		if err := e.cancelled(k); err != nil {
			return err
		}
		if err := e.processStep(k); err != nil {
			return err
		}
		e.applyLoads()
		seg, cause := 1, pinBacklog
		// A non-empty backlog pins the room to single-step segments — the
		// head is retried against fresh telemetry every step, like the
		// fixed path — unless the whole policy's refusal is load-only.
		if len(e.pending) == 0 || e.backlogMacro {
			seg, cause = e.segment(k, sampleSteps)
		}
		e.rm.beginSegment()
		e.segK, e.segEnd, e.segCause = k, k+seg, cause
		par.ForEach(e.rm.NumRacks(), e.rm.workers, e.segFn)
		e.rm.endSegment(e.dt, seg)
		e.res.Segments++
		e.res.GridSteps += seg
		e.m.segments.Inc()
		e.m.gridSteps.Add(int64(seg))
		k += seg
	}
	return nil
}

// cancelled implements the cooperative-cancellation check both kernels
// run at the top of every decision-step boundary. No fan-out is in flight
// there, so stopping leaves the room at a consistent instant and the
// partial Result internally coherent.
func (e *roomRun) cancelled(k int) error {
	if e.tc.Ctx == nil {
		return nil
	}
	if err := e.tc.Ctx.Err(); err != nil {
		return fmt.Errorf("room: run cancelled at step %d/%d: %w", k, e.steps, err)
	}
	return nil
}

// segment returns the global segment length from step k — up to, exclusive,
// the next grid step at which any scheduling decision can happen — plus
// the cause that bound it (the pin reason charged for single-step chunks
// ending at the segment boundary). Same bound set and tie precedence as
// the rack kernel's window(), minus the controller horizon, which is each
// rack's own business inside the segment.
func (e *roomRun) segment(k, sampleSteps int) (int, pinReason) {
	if (len(e.actions) > 0 || len(e.pending) > 0) && e.rm.TripRisk() {
		// Same trip-guard as the rack kernel, room-wide: a natural trip
		// latching mid-segment would defer its kills to the boundary.
		return 1, pinTripGuard
	}
	next, cause := e.steps, pinHorizonEnd
	if e.nextJob < len(e.jobs) {
		if ka := e.arrivalStep(e.jobs[e.nextJob].Arrival); ka < next {
			next, cause = ka, pinArrival
		}
	}
	for _, kf := range e.faultSteps {
		if kf > k {
			if kf < next {
				next, cause = kf, pinFaultEdge
			}
			break
		}
	}
	for _, a := range e.running {
		if kc := e.stepAtOrAfter(a.end); kc < next {
			next, cause = kc, pinCompletion
		}
	}
	if sampleSteps > 0 {
		if ks := (k/sampleSteps + 1) * sampleSteps; ks < next {
			next, cause = ks, pinSample
		}
	}
	if next <= k {
		next = k + 1
	}
	return next - k, cause
}

// rackSegment crosses the current global segment for rack i — the fan-out
// job of the event kernel's barrier. The rack runs its own mini event
// kernel: controllers tick at each visited step, the rack's quiet horizon
// bounds each chunk, and the gap advances in closed form (rack.Advance).
// A quiet rack crosses the segment in a few macro windows while a pinned
// rack single-steps. Writes only rack i's state and Kernel[i]; the obs
// handles are atomic and commutative.
func (e *roomRun) rackSegment(i int) {
	rk := e.rm.racks[i]
	st := &e.res.Kernel[i]
	for kk := e.segK; kk < e.segEnd; {
		now := e.start + float64(kk)*e.dt
		rk.TickControllers(now)
		// The segment boundary is this chunk's default bound; the rack's
		// own horizon can only shorten it. On ties the segment cause wins —
		// the same earlier-check-wins precedence as the rack kernel.
		w, cause := e.segEnd-kk, e.segCause
		if q, qc := rk.QuietHorizonCause(now, e.dt); !math.IsInf(q, 1) {
			kq := e.stepAtOrAfter(q)
			if kq <= kk {
				kq = kk + 1
			}
			if kq-kk < w {
				w = kq - kk
				switch {
				case qc == rack.QuietNoPromiser:
					cause = pinNoPromise
				case rk.FansUnsettled():
					cause = pinFanSlew
				default:
					cause = pinController
				}
			}
		}
		rk.Advance(e.dt, w)
		st.Advances++
		if w > 1 {
			st.MacroWindows++
		} else {
			st.Pins[cause]++
		}
		e.m.chunk(w, cause)
		kk += w
	}
}

// processStep takes every scheduling decision of grid step k, in the rack
// runner's order: completions, fault edges, the kill scan, arrivals, then
// head placements.
func (e *roomRun) processStep(k int) error {
	elapsed := float64(k) * e.dt
	now := e.start + elapsed

	keep := e.running[:0]
	for _, a := range e.running {
		if a.end <= now {
			e.loads[a.rackI][a.slot] -= a.demand
			e.res.Completed++
			e.m.completed.Inc()
			continue
		}
		keep = append(keep, a)
	}
	e.running = keep

	for e.nextAction < len(e.actions) && e.actions[e.nextAction].k <= k {
		a := e.actions[e.nextAction]
		var err error
		if a.apply {
			err = e.rm.ApplyFault(a.rackI, a.ev)
		} else {
			err = e.rm.ClearFault(a.rackI, a.ev)
		}
		if err != nil {
			return fmt.Errorf("room: fault at step %d: %w", k, err)
		}
		e.nextAction++
	}

	// Kill scan: work on a slot no longer healthy — a fault edge above or a
	// natural trip latched since the last decision — is destroyed now.
	var killed []sched.Job
	keep = e.running[:0]
	for _, a := range e.running {
		if e.rm.racks[a.rackI].Health(a.slot) == rack.Healthy {
			keep = append(keep, a)
			continue
		}
		e.loads[a.rackI][a.slot] -= a.demand
		e.res.Placed--
		if e.tc.DropOnFault {
			e.res.Lost++
			e.m.dropped.Inc()
			e.res.LostJobSeconds += a.job.Duration
		} else {
			e.res.Requeued++
			e.m.requeued.Inc()
			e.res.LostJobSeconds += elapsed - a.start
			j := a.job
			j.Arrival = elapsed
			killed = append(killed, j)
		}
	}
	e.running = keep
	if len(killed) > 0 {
		e.pending = append(killed, e.pending...)
	}

	for e.nextJob < len(e.jobs) && e.jobs[e.nextJob].Arrival < elapsed+e.dt {
		e.pending = append(e.pending, e.jobs[e.nextJob])
		e.nextJob++
	}
	if len(e.pending) > e.res.MaxQueueLen {
		e.res.MaxQueueLen = len(e.pending)
	}
	e.m.backlogHW.SetMax(float64(len(e.pending)))

	// Place from the head while some rack accepts: the chooser proposes a
	// rack, its slot policy places or refuses; a refusal masks the rack for
	// this job and the chooser retries over the rest.
	for len(e.pending) > 0 {
		j := e.pending[0]
		e.buildViews()
		placed := false
		for {
			ri := e.pol.Chooser.Choose(j, e.views)
			if ri < 0 {
				break
			}
			if ri >= len(e.views) || e.views[ri].Blocked {
				return fmt.Errorf("room: chooser %s proposed invalid or blocked rack %d for job %d",
					e.pol.Chooser.Name(), ri, j.ID)
			}
			slot := e.pol.Slots[ri].Place(j, e.views[ri].Slots)
			if slot < 0 {
				e.views[ri].Blocked = true
				continue
			}
			if err := e.checkPlacement(j, ri, slot); err != nil {
				return err
			}
			e.place(j, ri, slot, now, elapsed)
			if c, ok := e.pol.Chooser.(RackCommitter); ok {
				c.Committed(ri)
			}
			placed = true
			break
		}
		if !placed {
			break
		}
		e.pending = e.pending[1:]
	}
	return nil
}

// buildViews refreshes the chooser's per-rack snapshot (and the embedded
// per-slot views) from the current dispatcher loads and rack state — once
// per placement attempt, so every decision sees same-step placements.
func (e *roomRun) buildViews() {
	for ri := range e.views {
		rk := e.rm.racks[ri]
		rv := &e.views[ri]
		rv.Index = ri
		rv.Name = e.rm.names[ri]
		rv.Servers = rk.NumServers()
		rv.Healthy = 0
		rv.Load, rv.Free, rv.MaxFree = 0, 0, 0
		rv.MaxInletC, rv.MaxCPUTempC = -1e9, -1e9
		rv.WallPowerW = float64(rk.WallPower())
		rv.RecircOffsetC = e.rm.offsets[ri]
		rv.RecircRowSum = e.rm.rowSums[ri]
		rv.Blocked = false
		for i := range rv.Slots {
			sv := sched.ServerView{
				Index:      i,
				Name:       rk.Name(i),
				Load:       e.loads[ri][i],
				Free:       100 - e.loads[ri][i],
				MaxCPUTemp: rk.Server(i).MaxCPUTemp(),
				InletTemp:  rk.Server(i).InletTemp(),
				DCPower:    rk.ServerDCPower(i),
				WallPower:  rk.ServerWallPower(i),
				Health:     rk.Health(i),
			}
			rv.Slots[i] = sv
			rv.Load += sv.Load
			if sv.Health == rack.Healthy {
				rv.Healthy++
				rv.Free += sv.Free
				if sv.Free > rv.MaxFree {
					rv.MaxFree = sv.Free
				}
			}
			if sv.MaxCPUTemp > rv.MaxCPUTempC {
				rv.MaxCPUTempC = sv.MaxCPUTemp
			}
			if sv.InletTemp > rv.MaxInletC {
				rv.MaxInletC = sv.InletTemp
			}
		}
	}
}

// checkPlacement validates a slot policy's choice on the chosen rack —
// out-of-range or overloaded slots and unhealthy servers are hard policy
// bugs.
func (e *roomRun) checkPlacement(j sched.Job, ri, slot int) error {
	if slot >= len(e.loads[ri]) || e.loads[ri][slot]+j.Demand > 100 {
		return fmt.Errorf("room: policy %s placed job %d on invalid/overloaded server %d of rack %d",
			e.pol.Slots[ri].Name(), j.ID, slot, ri)
	}
	if h := e.rm.racks[ri].Health(slot); h != rack.Healthy {
		return fmt.Errorf("room: policy %s placed job %d on %v server %d of rack %d",
			e.pol.Slots[ri].Name(), j.ID, h, slot, ri)
	}
	return nil
}

// place commits job j to rack ri slot at decision instant (now absolute,
// elapsed trace-relative).
func (e *roomRun) place(j sched.Job, ri, slot int, now, elapsed float64) {
	e.loads[ri][slot] += j.Demand
	e.running = append(e.running, activeJob{end: now + j.Duration, rackI: ri, slot: slot, demand: j.Demand, job: j, start: elapsed})
	if wait := elapsed - j.Arrival; wait > 0 {
		e.totalWait += wait
	}
	e.res.Placed++
	e.m.placements.Inc()
}

func (e *roomRun) applyLoads() {
	for ri, loads := range e.loads {
		rk := e.rm.racks[ri]
		for i, u := range loads {
			rk.SetLoad(i, u)
		}
	}
}

// buildFaultActions pins rack ri's schedule events to integer grid steps,
// with exactly the rack runner's rules: apply at the first step with
// k·dt ≥ At, clear at the first with k·dt ≥ Clear, past-horizon edges
// dropped, zero-step windows collapsed.
func (e *roomRun) buildFaultActions(ri int, sch *fault.Schedule) {
	for _, ev := range sch.Events {
		ka := e.relStepAtOrAfter(ev.At)
		if ka >= e.steps {
			continue
		}
		if ev.Windowed() {
			kc := e.relStepAtOrAfter(ev.Clear)
			if kc == ka {
				continue
			}
			e.actions = append(e.actions, roomFaultAction{k: ka, rackI: ri, apply: true, ev: ev})
			if kc < e.steps {
				e.actions = append(e.actions, roomFaultAction{k: kc, rackI: ri, apply: false, ev: ev})
			}
			continue
		}
		e.actions = append(e.actions, roomFaultAction{k: ka, rackI: ri, apply: true, ev: ev})
	}
}

// sortFaultActions orders the pinned edges by step, clears before applies
// at a shared step, rack order then declaration order as final tie-breaks
// (the stable sort preserves the rack-major build order).
func (e *roomRun) sortFaultActions() {
	sort.SliceStable(e.actions, func(a, b int) bool {
		if e.actions[a].k != e.actions[b].k {
			return e.actions[a].k < e.actions[b].k
		}
		return !e.actions[a].apply && e.actions[b].apply
	})
	for _, a := range e.actions {
		e.faultSteps = append(e.faultSteps, a.k)
	}
}

// arrivalStep returns the grid step at which the fixed-dt loop admits an
// arrival at time a — sched's float-exact pinning, verbatim: the candidate
// is corrected against the decision loop's own float expression.
func (e *roomRun) arrivalStep(a float64) int {
	admits := func(k int) bool { return a < float64(k)*e.dt+e.dt }
	k := int(a / e.dt)
	if k < 0 {
		k = 0
	}
	for !admits(k) {
		k++
	}
	for k > 0 && admits(k-1) {
		k--
	}
	return k
}

// relStepAtOrAfter returns the smallest grid step k with k·dt ≥ t for a
// trace-relative time t — the fault-edge pinning rule.
func (e *roomRun) relStepAtOrAfter(t float64) int {
	k := int(t / e.dt)
	if k < 0 {
		k = 0
	}
	for float64(k)*e.dt < t {
		k++
	}
	for k > 0 && float64(k-1)*e.dt >= t {
		k--
	}
	return k
}

// stepAtOrAfter returns the smallest grid step k with start + k·dt ≥ t —
// the completion wake rule and the controller-horizon wake rule, with the
// identical float expressions the decision code evaluates.
func (e *roomRun) stepAtOrAfter(t float64) int {
	k := int((t - e.start) / e.dt)
	if k < 0 {
		k = 0
	}
	for e.start+float64(k)*e.dt < t {
		k++
	}
	for k > 0 && e.start+float64(k-1)*e.dt >= t {
		k--
	}
	return k
}
