package room

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestNeighborMatrix(t *testing.T) {
	m := NeighborMatrix(5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 5 {
		t.Fatalf("size %d, want 5", m.Size())
	}
	if m.IsZero() {
		t.Fatal("neighbor matrix must couple")
	}
	for i := 0; i < 5; i++ {
		if s := m.RowSum(i); s > 0.32+1e-12 {
			t.Errorf("row %d sums to %g, want ≤ 0.32", i, s)
		}
	}
	// Symmetric decay: adjacent 0.12, two away 0.04, self and distant 0.
	if m.W[2][1] != 0.12 || m.W[2][3] != 0.12 || m.W[2][0] != 0.04 || m.W[2][4] != 0.04 || m.W[2][2] != 0 {
		t.Errorf("unexpected middle row %v", m.W[2])
	}
	if m.W[0][3] != 0 {
		t.Errorf("three-away coupling should be zero, got %g", m.W[0][3])
	}
}

func TestMatrixZeroAndNil(t *testing.T) {
	var nilM *Matrix
	if !nilM.IsZero() || nilM.Size() != 0 || nilM.RowSum(0) != 0 {
		t.Error("nil matrix must read as empty and zero")
	}
	if err := nilM.Validate(); err == nil {
		t.Error("nil matrix must fail validation (it has no dimension)")
	}
	z := NewMatrix(3)
	if !z.IsZero() {
		t.Error("fresh matrix must be zero")
	}
	if err := z.Validate(); err != nil {
		t.Errorf("zero matrix is valid, got %v", err)
	}
	z.W[1][2] = 0.5
	if z.IsZero() {
		t.Error("matrix with an entry is not zero")
	}
	if got := z.RowSum(1); got != 0.5 {
		t.Errorf("row sum %g, want 0.5", got)
	}
}

func TestMatrixValidateRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *Matrix
		want string
	}{
		{"empty", &Matrix{}, "empty"},
		{"ragged", &Matrix{W: [][]float64{{0, 0}, {0}}}, "square"},
		{"nan", &Matrix{W: [][]float64{{math.NaN()}}}, "not finite"},
		{"inf", &Matrix{W: [][]float64{{math.Inf(1)}}}, "not finite"},
		{"negative", &Matrix{W: [][]float64{{-0.1}}}, "negative"},
		{"row-over-1", &Matrix{W: [][]float64{{0.6, 0.6}, {0, 0}}}, "sums to"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.m.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
	// 1e-9 slack: a parsed decimal row summing to exactly 1 must pass.
	exact := &Matrix{W: [][]float64{{0.1, 0.2, 0.7}, {0, 0, 0}, {1, 0, 0}}}
	if err := exact.Validate(); err != nil {
		t.Errorf("row summing to 1 is legal, got %v", err)
	}
}

func TestParseMatrix(t *testing.T) {
	text := `# room coupling, 3 racks
0.0, 0.12 0.04   # rack 0 row

0.12	0 0.12
0.04 0.12, 0.0
`
	m, err := ParseMatrix([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Fatalf("parsed %d rows, want 3", m.Size())
	}
	if m.W[0][1] != 0.12 || m.W[1][0] != 0.12 || m.W[2][0] != 0.04 || m.W[1][1] != 0 {
		t.Errorf("parsed entries wrong: %v", m.W)
	}
}

func TestParseMatrixRejects(t *testing.T) {
	for _, tc := range []struct {
		name, in, want string
	}{
		{"garbage", "0 x\n0 0", "bad entry"},
		{"empty", "# only comments\n", "empty"},
		{"nan", "nan nan\n0 0", "not finite"},
		{"inf", "0 +Inf\n0 0", "not finite"},
		{"negative", "0 -0.2\n0 0", "negative"},
		{"row-sum", "0.9 0.9\n0 0", "sums to"},
		{"ragged", "0 0\n0\n", "square"},
		{"non-square", "0 0 0\n0 0 0\n", "square"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseMatrix([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// FuzzParseMatrix is the untrusted-input fuzz surface (evalctl file
// loading): whatever the bytes, ParseMatrix must never panic, and anything
// it accepts must re-validate clean, be square, and survive a serialize →
// reparse round trip with identical entries.
func FuzzParseMatrix(f *testing.F) {
	f.Add([]byte("0 0.12\n0.12 0\n"))
	f.Add([]byte("# comment\n0.5,0.5\n1.0 0.0\n"))
	f.Add([]byte("nan inf\n-1 2\n"))
	f.Add([]byte("0 x\n"))
	f.Add([]byte("1e-3\t0.999\n0 0\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseMatrix(data)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted matrix fails validation: %v", err)
		}
		n := m.Size()
		if n == 0 {
			t.Fatal("accepted matrix has no rows")
		}
		var sb strings.Builder
		for i, row := range m.W {
			if len(row) != n {
				t.Fatalf("accepted row %d has %d entries, want %d", i, len(row), n)
			}
			if s := m.RowSum(i); s > 1+1e-9 {
				t.Fatalf("accepted row %d sums to %g", i, s)
			}
			for j, w := range row {
				if j > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(strconv.FormatFloat(w, 'g', -1, 64))
			}
			sb.WriteByte('\n')
		}
		m2, err := ParseMatrix([]byte(sb.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, sb.String())
		}
		for i := range m.W {
			for j := range m.W[i] {
				if m.W[i][j] != m2.W[i][j] {
					t.Fatalf("round trip changed [%d][%d]: %g -> %g", i, j, m.W[i][j], m2.W[i][j])
				}
			}
		}
	})
}
