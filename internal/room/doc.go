// Package room scales the simulator from one rack to a machine room: N
// rack.Rack instances stepped in lockstep behind a shared CRAC/chiller
// bank, thermally coupled through a heat-recirculation matrix, and fed by
// a room-level dispatcher that picks a rack before delegating the slot
// choice to that rack's sched.Policy.
//
// # Two-level determinism contract
//
// The room fans out over racks exactly the way a rack fans out over
// servers, one more level of the repo-wide contract:
//
//   - Fan-out job i writes only rack i's state. Rooms force every rack's
//     internal Workers to 1, so the inner per-server loop runs serially on
//     the job's goroutine — parallelism lives at exactly one level and the
//     goroutine count stays bounded by the room's Workers.
//   - Every cross-rack reduction — room energy integration, peak wall and
//     facility power, worst inlet/DIMM/CPU temperatures, PUE, and the
//     recirculation offsets themselves — runs serially in rack-index order
//     after the barrier.
//
// Together these make every room metric, telemetry dump and obs counter
// byte-identical for any Workers value, which TestRoomDeterminism pins
// under -race.
//
// # Heat recirculation and re-anchoring
//
// The row-major Matrix W couples exhausts to inlets: rack i's exhaust
// temperature rise ΔT_i (its wall draw times Config.ExhaustRiseCPerKW)
// raises rack j's inlet by W[i][j]·ΔT_i. Offsets are recomputed serially
// after every barrier — each step on the fixed-dt path, each segment
// boundary under event stepping — and applied as deltas through
// rack.AddAmbientOffset, composing with fault heat soaks. Within a macro
// window the offsets are held constant and re-anchored at the window
// boundary: the coupling drifts by at most the offset change across the
// window, which the same MacroDriftTolC contract that bounds the rack
// kernel's closed-form drift absorbs (TestRoomEventEquivalence pins the
// 1e-6 relative energy tolerance). A zero matrix applies no offset at all,
// leaving every rack bit-identical to independent stepping.
//
// Energy is conserved by construction: the shared facility removes exactly
// the heat the racks reject (Σ rack wall watts — the recirculated fraction
// redistributes heat between inlets; it does not create any), so the
// room's independently integrated heat meter equals the sum of the rack
// wall meters to float reordering (≤1e-9 relative, TestRoomHeatConservation).
//
// # Event kernel, one level up
//
// RunTrace's event mode bounds a global segment by the next scheduling
// event (arrival, completion, fault edge, sample tick, horizon end —
// computed with the same float-exact step arithmetic as internal/sched, so
// both kernels agree on every decision step). Within a segment each rack
// advances independently: a rack whose controllers promise quiet through
// the segment crosses it in closed-form macro windows (rack.Advance),
// while a pinned rack single-steps — so one noisy rack no longer drags
// the whole room to fixed-dt. Every advance is charged to a macro window
// or exactly one pin reason; Σ pins == advances − macro windows holds per
// rack and room-wide (TestRoomPinIdentity).
package room
