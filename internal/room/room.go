package room

import (
	"fmt"
	"math"

	"repro/internal/cooling"
	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/rack"
	"repro/internal/units"
)

// DefaultExhaustRiseCPerKW is the default exhaust-air temperature rise per
// kilowatt of rack wall draw — a 10 kW rack running ~12 °C hotter out the
// back than in the front, the airflow regime racks in the shipped
// experiments operate in.
const DefaultExhaustRiseCPerKW = 1.2

// RackSpec configures one rack of the room.
type RackSpec struct {
	Name string
	// Config is the rack's own configuration. Its Facility must be nil —
	// the room owns the cooling loop (Config.Facility) — and its Workers
	// value is overridden to 1: the room fans out over racks, so the inner
	// per-server loop runs serially on the fan-out job's goroutine (nested
	// pools would multiply goroutines without adding parallelism).
	Config rack.Config
}

// Config parameterizes a Room.
type Config struct {
	Racks []RackSpec
	// Workers bounds the per-rack step fan-out: ≤ 0 means GOMAXPROCS, 1 is
	// the serial reference path the parallel runs are tested against.
	Workers int
	// Recirc, when non-nil, is the heat-recirculation coupling (see
	// Matrix): rack i's exhaust rise raises rack j's inlet by W[i][j]·ΔT_i,
	// re-anchored serially after every barrier. nil — or an all-zero
	// matrix — applies no offsets at all, keeping every rack bit-identical
	// to independent stepping.
	Recirc *Matrix
	// ExhaustRiseCPerKW converts a rack's wall draw into its exhaust
	// temperature rise: ΔT_i = ExhaustRiseCPerKW · wallW_i / 1000. Zero
	// picks DefaultExhaustRiseCPerKW.
	ExhaustRiseCPerKW float64
	// Facility, when non-nil, is the shared CRAC bank: room heat — the sum
	// of every rack's wall draw — is removed by one CRAC/chiller (optionally
	// economizer) chain, its COP evaluated once at the room load, and the
	// CRAC setpoint's ambient delta shifts every server in every rack. nil
	// means no facility: cooling power exactly zero, PUE exactly 1, server
	// ambients untouched.
	Facility *cooling.Facility
}

// Room is N racks stepped in lockstep behind a shared cooling loop. See
// the package comment for the two-level determinism contract.
type Room struct {
	racks   []*rack.Rack
	names   []string
	workers int

	w          *Matrix
	coupled    bool // w has at least one non-zero entry
	riseCPerKW float64
	rowSums    []float64
	offsets    []float64 // currently applied recirc inlet offset per rack, °C
	exhaust    []float64 // scratch: per-rack exhaust rise at the last anchor

	fac   *cooling.Facility
	clock float64

	// Segment scratch: per-rack wall meters at segment start, and the
	// per-rack instantaneous wall draw at the last observation.
	wallE0   []float64
	lastWall []float64

	// Room-level meters, integrated serially after every barrier. heatJ is
	// the independently integrated room heat (Σ rack wall meter deltas);
	// cool/fac follow the shared facility at the segment's mean load.
	heatJ, coolJ, facJ float64
	lastWallW          float64
	lastCoolW          float64
	peakWallW          float64
	peakFacW           float64
	maxRecircC         float64

	// Facility-scope fault state for the shared bank, mirroring the rack's:
	// any active CRAC outage darkens the whole bank.
	cracOut       int
	chillerDerate float64

	// Prebuilt fixed-step fan-out closure (see rack.Rack's field comment).
	argDt  float64
	stepFn func(i int)
}

// New builds a room, constructing every rack from its spec. With a shared
// facility attached, the CRAC setpoint's ambient delta is applied to every
// server configuration in every rack before construction — the same
// well-mixed cold-aisle contract rack.New implements for a single rack.
func New(cfg Config) (*Room, error) {
	n := len(cfg.Racks)
	if n == 0 {
		return nil, fmt.Errorf("room: need at least one rack")
	}
	if cfg.Recirc != nil {
		if err := cfg.Recirc.Validate(); err != nil {
			return nil, err
		}
		if cfg.Recirc.Size() != n {
			return nil, fmt.Errorf("room: recirculation matrix is %d×%d but the room has %d racks",
				cfg.Recirc.Size(), cfg.Recirc.Size(), n)
		}
	}
	var delta units.Celsius
	if cfg.Facility != nil {
		if err := cfg.Facility.Validate(); err != nil {
			return nil, fmt.Errorf("room: facility: %w", err)
		}
		delta = cfg.Facility.AmbientDelta()
	}
	rise := cfg.ExhaustRiseCPerKW
	if rise == 0 {
		rise = DefaultExhaustRiseCPerKW
	}
	if rise < 0 || math.IsNaN(rise) || math.IsInf(rise, 0) {
		return nil, fmt.Errorf("room: exhaust rise must be a finite non-negative °C/kW, got %g", cfg.ExhaustRiseCPerKW)
	}
	rm := &Room{
		workers:    cfg.Workers,
		w:          cfg.Recirc,
		coupled:    !cfg.Recirc.IsZero(),
		riseCPerKW: rise,
		fac:        cfg.Facility,
		rowSums:    make([]float64, n),
		offsets:    make([]float64, n),
		exhaust:    make([]float64, n),
		wallE0:     make([]float64, n),
		lastWall:   make([]float64, n),
	}
	for i, spec := range cfg.Racks {
		rc := spec.Config
		if rc.Facility != nil {
			return nil, fmt.Errorf("room: rack %d attaches its own facility; the room owns the cooling loop (Config.Facility)", i)
		}
		rc.Workers = 1
		if delta != 0 {
			servers := make([]rack.ServerSpec, len(rc.Servers))
			copy(servers, rc.Servers)
			for k := range servers {
				servers[k].Config = servers[k].Config.ShiftAmbient(delta)
			}
			rc.Servers = servers
		}
		rk, err := rack.New(rc)
		if err != nil {
			return nil, fmt.Errorf("room: rack %d (%s): %w", i, spec.Name, err)
		}
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("rack%02d", i)
		}
		rm.racks = append(rm.racks, rk)
		rm.names = append(rm.names, name)
		if cfg.Recirc != nil {
			rm.rowSums[i] = cfg.Recirc.RowSum(i)
		}
	}
	rm.stepFn = func(i int) { rm.racks[i].Step(rm.argDt) }
	rm.observeEndpoint()
	return rm, nil
}

// NumRacks returns the number of racks in the room.
func (rm *Room) NumRacks() int { return len(rm.racks) }

// Rack returns rack i for fine-grained inspection or direct driving in
// tests. Mutating a rack concurrently with Room.Step is a data race.
func (rm *Room) Rack(i int) *rack.Rack { return rm.racks[i] }

// RackName returns rack i's name.
func (rm *Room) RackName(i int) string { return rm.names[i] }

// Now returns seconds of room stepping since construction. Racks driven
// directly (bypassing the room) do not advance this clock.
func (rm *Room) Now() float64 { return rm.clock }

// RecircOffsetC returns the recirculation inlet offset currently applied
// to rack i, in °C — zero in an uncoupled room.
func (rm *Room) RecircOffsetC(i int) float64 { return rm.offsets[i] }

// RecircRowSum returns Σ_j W[i][j] for rack i — how much of its exhaust
// rise lands back on cold aisles. Zero without a matrix.
func (rm *Room) RecircRowSum(i int) float64 { return rm.rowSums[i] }

// Facility returns the shared cooling loop, or nil when none is
// configured.
func (rm *Room) Facility() *cooling.Facility { return rm.fac }

// WallPower returns the room's instantaneous wall draw (Σ rack wall) at
// the most recent observation.
func (rm *Room) WallPower() units.Watts { return units.Watts(rm.lastWallW) }

// CoolingPower returns the shared bank's instantaneous cooling power at
// the most recent observation — exactly zero with no facility.
func (rm *Room) CoolingPower() units.Watts { return units.Watts(rm.lastCoolW) }

// PUE returns the instantaneous power usage effectiveness of the room.
func (rm *Room) PUE() float64 {
	if rm.lastWallW <= 0 || rm.lastCoolW == 0 {
		return 1
	}
	return (rm.lastWallW + rm.lastCoolW) / rm.lastWallW
}

// TripRisk reports whether any rack has a live slot inside the trip-guard
// band (see rack.TripRisk) — the room kernel's global single-step pin.
func (rm *Room) TripRisk() bool {
	for _, rk := range rm.racks {
		if rk.TripRisk() {
			return true
		}
	}
	return false
}

// Step advances every rack by dt seconds: the per-rack work — each rack's
// own serial per-server loop — fans out over the bounded pool (rack-i
// contract), then every room-level reduction and the recirculation
// re-anchor run serially in rack-index order.
func (rm *Room) Step(dt float64) {
	if dt <= 0 {
		return
	}
	rm.beginSegment()
	rm.argDt = dt
	par.ForEach(len(rm.racks), rm.workers, rm.stepFn)
	rm.endSegment(dt, 1)
}

// beginSegment captures every rack's wall meter so endSegment can derive
// the segment's heat from meter deltas — exact for both the per-step and
// the macro-window rack paths.
func (rm *Room) beginSegment() {
	for i, rk := range rm.racks {
		rm.wallE0[i] = rk.WallEnergyJoules()
	}
}

// endSegment runs the serial post-barrier phase of a segment spanning
// `steps` grid steps of dt: room energy integration (heat from rack wall
// meter deltas; cooling from the shared bank at the segment's mean room
// load), endpoint peak sampling, the room clock, and the recirculation
// re-anchor.
func (rm *Room) endSegment(dt float64, steps int) {
	span := dt * float64(steps)
	var heatSegJ float64
	for i, rk := range rm.racks {
		heatSegJ += rk.WallEnergyJoules() - rm.wallE0[i]
	}
	coolMeanW := rm.coolingPowerNow(heatSegJ / span)
	rm.heatJ += heatSegJ
	rm.coolJ += coolMeanW * span
	rm.facJ += heatSegJ + coolMeanW*span
	rm.observeEndpoint()
	rm.clock += span
	rm.reanchorRecirc()
}

// observeEndpoint samples the instantaneous per-rack and room wall draws
// and folds the power peaks — the endpoint observation both segment paths
// share with construction and accounting resets.
func (rm *Room) observeEndpoint() {
	var wallW float64
	for i, rk := range rm.racks {
		w := float64(rk.WallPower())
		rm.lastWall[i] = w
		wallW += w
	}
	rm.lastWallW = wallW
	rm.lastCoolW = rm.coolingPowerNow(wallW)
	if wallW > rm.peakWallW {
		rm.peakWallW = wallW
	}
	if fac := wallW + rm.lastCoolW; fac > rm.peakFacW {
		rm.peakFacW = fac
	}
}

// reanchorRecirc recomputes every rack's recirculation inlet offset from
// the racks' instantaneous exhaust rises and applies the changes as
// ambient-offset deltas, serially in rack-index order. An uncoupled room
// returns immediately without touching any rack — the W = 0 bit-identity
// contract.
func (rm *Room) reanchorRecirc() {
	if !rm.coupled {
		return
	}
	for i := range rm.racks {
		rm.exhaust[i] = rm.riseCPerKW * rm.lastWall[i] / 1000
	}
	for j := range rm.racks {
		var off float64
		for i := range rm.racks {
			off += rm.w.W[i][j] * rm.exhaust[i]
		}
		if off > rm.maxRecircC {
			rm.maxRecircC = off
		}
		if d := off - rm.offsets[j]; d != 0 {
			rm.racks[j].AddAmbientOffset(units.Celsius(d))
			rm.offsets[j] = off
		}
	}
}

// coolingPowerNow is the shared bank's cooling power at the given room
// heat under the current facility-scope fault state: exactly zero with no
// facility or while any CRAC outage is active, derated by the summed
// chiller degradation otherwise.
func (rm *Room) coolingPowerNow(wallW float64) float64 {
	if rm.fac == nil || rm.cracOut > 0 {
		return 0
	}
	if rm.chillerDerate > 0 {
		return rm.fac.CoolingPowerDerated(wallW, rm.chillerDerate)
	}
	return rm.fac.CoolingPower(wallW)
}

// ApplyFault injects one fault event into rack rackIdx. Server-scope kinds
// delegate to the rack unchanged. The facility-scope kinds act on the
// room's shared bank — any active CRACOutage darkens it (cooling power
// exactly zero) and ChillerDegraded severities sum into its derate — while
// the outage's ambient heat soak still lands on the targeted rack's
// servers; a room-wide outage is modelled by scheduling the event against
// every rack (the outage count nests).
func (rm *Room) ApplyFault(rackIdx int, ev fault.Event) error {
	if rackIdx < 0 || rackIdx >= len(rm.racks) {
		return fmt.Errorf("room: fault targets rack %d of %d", rackIdx, len(rm.racks))
	}
	if err := rm.racks[rackIdx].ApplyFault(ev); err != nil {
		return err
	}
	switch ev.Kind {
	case fault.CRACOutage:
		rm.cracOut++
	case fault.ChillerDegraded:
		rm.chillerDerate += degradeSeverity(ev)
	}
	return nil
}

// ClearFault undoes ApplyFault for the same event.
func (rm *Room) ClearFault(rackIdx int, ev fault.Event) error {
	if rackIdx < 0 || rackIdx >= len(rm.racks) {
		return fmt.Errorf("room: fault targets rack %d of %d", rackIdx, len(rm.racks))
	}
	if err := rm.racks[rackIdx].ClearFault(ev); err != nil {
		return err
	}
	switch ev.Kind {
	case fault.CRACOutage:
		rm.cracOut--
	case fault.ChillerDegraded:
		rm.chillerDerate -= degradeSeverity(ev)
	}
	return nil
}

// degradeSeverity resolves a ChillerDegraded severity, zero picking the
// documented default (mirroring the rack's resolution).
func degradeSeverity(ev fault.Event) float64 {
	if ev.Severity == 0 {
		return fault.DefaultPSUDroop
	}
	return ev.Severity
}

// ResetAccounting zeroes every rack's meters and the room aggregates — the
// start of a measured experiment window. The recirculation offsets are
// physical state, not accounting, and persist across the reset (their
// high-water meter restarts from the currently applied offsets).
func (rm *Room) ResetAccounting() {
	for _, rk := range rm.racks {
		rk.ResetAccounting()
	}
	rm.heatJ, rm.coolJ, rm.facJ = 0, 0, 0
	rm.peakWallW, rm.peakFacW = 0, 0
	rm.maxRecircC = 0
	for _, off := range rm.offsets {
		if off > rm.maxRecircC {
			rm.maxRecircC = off
		}
	}
	rm.observeEndpoint()
}

// Telemetry is the room-level aggregate view: rack telemetry summed (and
// maxima folded) in rack-index order, plus the room's own shared-facility
// and recirculation meters.
type Telemetry struct {
	Racks   int
	Servers int

	TotalEnergyKWh float64 // Σ rack DC energy since last reset
	FanEnergyKWh   float64 // Σ rack fan energy
	WallEnergyKWh  float64 // Σ rack wall (AC) energy
	LossEnergyKWh  float64 // Σ rack conversion losses
	PeakPowerW     float64 // highest simultaneous room DC draw is not tracked; peak wall is
	MaxCPUTempC    float64 // hottest die in the room
	MaxDIMMTempC   float64 // hottest DIMM in the room
	MaxInletC      float64 // hottest inlet in the room
	FanChanges     int
	Tripped        int
	Failed         int

	// Room-level shared-facility accounting. RoomHeatKWh is integrated
	// independently from the rack wall meters' segment deltas; energy
	// conservation — RoomHeatKWh == WallEnergyKWh to float reordering — is
	// a tested property, not a definition.
	RoomHeatKWh        float64
	CoolingEnergyKWh   float64
	FacilityEnergyKWh  float64
	PUE                float64 // facility energy over room heat (≥ 1)
	PeakWallPowerW     float64 // highest simultaneous room wall draw
	PeakFacilityPowerW float64 // highest simultaneous wall + cooling draw

	// MaxRecircOffsetC is the worst recirculation inlet offset any rack saw
	// since the last reset — zero in an uncoupled room.
	MaxRecircOffsetC float64
}

// Telemetry aggregates the room in rack-index order.
func (rm *Room) Telemetry() Telemetry {
	tel := Telemetry{
		Racks:              len(rm.racks),
		MaxCPUTempC:        -1e9,
		MaxDIMMTempC:       -1e9,
		MaxInletC:          -1e9,
		RoomHeatKWh:        units.Joules(rm.heatJ).KWh(),
		CoolingEnergyKWh:   units.Joules(rm.coolJ).KWh(),
		FacilityEnergyKWh:  units.Joules(rm.facJ).KWh(),
		PeakWallPowerW:     rm.peakWallW,
		PeakFacilityPowerW: rm.peakFacW,
		PUE:                1,
		MaxRecircOffsetC:   rm.maxRecircC,
	}
	for _, rk := range rm.racks {
		rt := rk.Telemetry()
		tel.Servers += rt.Servers
		tel.TotalEnergyKWh += rt.TotalEnergyKWh
		tel.FanEnergyKWh += rt.FanEnergyKWh
		tel.WallEnergyKWh += rt.WallEnergyKWh
		tel.LossEnergyKWh += rt.LossEnergyKWh
		if rt.PeakPowerW > tel.PeakPowerW {
			tel.PeakPowerW = rt.PeakPowerW
		}
		if rt.MaxCPUTempC > tel.MaxCPUTempC {
			tel.MaxCPUTempC = rt.MaxCPUTempC
		}
		if rt.MaxDIMMTempC > tel.MaxDIMMTempC {
			tel.MaxDIMMTempC = rt.MaxDIMMTempC
		}
		if rt.MaxInletC > tel.MaxInletC {
			tel.MaxInletC = rt.MaxInletC
		}
		tel.FanChanges += rt.FanChanges
		tel.Tripped += rt.Tripped
		tel.Failed += rt.Failed
	}
	if rm.heatJ > 0 && rm.coolJ != 0 {
		tel.PUE = rm.facJ / rm.heatJ
	}
	return tel
}
