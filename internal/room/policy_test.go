package room

import (
	"testing"

	"repro/internal/lut"
	"repro/internal/sched"
	"repro/internal/units"
)

// view builds a minimal healthy RackView with n identical free slots.
func view(idx int, free units.Percent, n int) RackView {
	v := RackView{Index: idx, Servers: n, Healthy: n, MaxFree: free, Free: free * units.Percent(n)}
	for i := 0; i < n; i++ {
		v.Slots = append(v.Slots, sched.ServerView{Index: i, Free: free, Load: 100 - free})
		v.Load += 100 - free
	}
	return v
}

func TestRoundRobinRacksRotation(t *testing.T) {
	p := NewRoundRobinRacks()
	racks := []RackView{view(0, 80, 2), view(1, 80, 2), view(2, 80, 2)}
	j := sched.Job{Demand: 20}
	// The cursor moves only on Committed: a refused Choose must not
	// desynchronize the rotation.
	if got := p.Choose(j, racks); got != 0 {
		t.Fatalf("first choice %d, want 0", got)
	}
	if got := p.Choose(j, racks); got != 0 {
		t.Fatalf("uncommitted re-choice %d, want 0 (cursor must not move)", got)
	}
	p.Committed(0)
	if got := p.Choose(j, racks); got != 1 {
		t.Fatalf("after commit, choice %d, want 1", got)
	}
	p.Committed(1)
	p.Committed(2)
	if got := p.Choose(j, racks); got != 0 {
		t.Fatalf("rotation must wrap, got %d", got)
	}
	// Blocked racks are skipped; all blocked means refusal.
	racks[0].Blocked = true
	if got := p.Choose(j, racks); got != 1 {
		t.Fatalf("blocked rack not skipped: %d", got)
	}
	for i := range racks {
		racks[i].Blocked = true
	}
	if got := p.Choose(j, racks); got != -1 {
		t.Fatalf("all-blocked must refuse, got %d", got)
	}
	p.Reset()
	if p.next != 0 {
		t.Fatal("Reset must rewind the cursor")
	}
}

func TestLeastLoadedAndCoolestChoosers(t *testing.T) {
	a, b, c := view(0, 40, 2), view(1, 90, 2), view(2, 70, 2)
	a.MaxInletC, b.MaxInletC, c.MaxInletC = 24, 31, 22
	racks := []RackView{a, b, c}
	j := sched.Job{Demand: 20}
	if got := NewLeastLoadedRack().Choose(j, racks); got != 1 {
		t.Errorf("least-loaded chose %d, want 1 (lightest)", got)
	}
	if got := NewCoolestRack().Choose(j, racks); got != 2 {
		t.Errorf("coolest chose %d, want 2 (coldest inlet)", got)
	}
	// An oversized job no rack fits is refused by both.
	big := sched.Job{Demand: 95}
	if got := NewLeastLoadedRack().Choose(big, racks); got != -1 {
		t.Errorf("least-loaded must refuse the oversized job, got %d", got)
	}
	// Unhealthy racks don't fit.
	racks[1].Healthy = 0
	if got := NewLeastLoadedRack().Choose(j, racks); got != 2 {
		t.Errorf("dead rack not skipped: %d", got)
	}
}

// costTables builds per-rack single-slot LUTs with the given marginal
// slopes (steeper slope = pricier rack).
func costTables(slopes ...float64) [][]*lut.Table {
	out := make([][]*lut.Table, len(slopes))
	for r, s := range slopes {
		out[r] = []*lut.Table{{Entries: []lut.Entry{
			{Util: 0, RPM: 1800, PredictedTemp: 45, FanLeakPower: 20},
			{Util: 100, RPM: 3600, PredictedTemp: 68, FanLeakPower: units.Watts(20 + s)},
		}}}
	}
	return out
}

func TestMinCostRackPricing(t *testing.T) {
	p, err := NewMinCostRack(costTables(30, 10, 50))
	if err != nil {
		t.Fatal(err)
	}
	racks := []RackView{view(0, 100, 1), view(1, 100, 1), view(2, 100, 1)}
	if got := p.Choose(sched.Job{Demand: 20}, racks); got != 1 {
		t.Errorf("min-cost chose %d, want 1 (flattest marginal)", got)
	}
	if _, err := NewMinCostRack(nil); err == nil {
		t.Error("empty tables must be rejected")
	}
	if _, err := NewMinCostRack([][]*lut.Table{{}}); err == nil {
		t.Error("rack with no tables must be rejected")
	}
}

func TestRecircAwarePricing(t *testing.T) {
	// Equal slot costs: the recirculation signals alone must break the tie.
	p, err := NewRecircAware(costTables(20, 20, 20), 5)
	if err != nil {
		t.Fatal(err)
	}
	racks := []RackView{view(0, 100, 1), view(1, 100, 1), view(2, 100, 1)}
	racks[0].RecircRowSum = 0.3 // its exhaust lands on others: amplified
	racks[1].RecircOffsetC = 2  // already sitting in hot exhaust: penalized
	if got := p.Choose(sched.Job{Demand: 20}, racks); got != 2 {
		t.Errorf("recirc-aware chose %d, want 2 (no recirculation exposure)", got)
	}
	// Zero/negative penalty picks the documented default.
	d, err := NewRecircAware(costTables(20), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.offsetW != DefaultRecircOffsetWPerC {
		t.Errorf("offsetW %g, want default %g", d.offsetW, DefaultRecircOffsetWPerC)
	}
	if _, err := NewRecircAware(nil, 1); err == nil {
		t.Error("empty tables must be rejected")
	}
}

func TestPolicyLoadOnly(t *testing.T) {
	lutTabs := costTables(20, 20)
	mc, err := NewMinCostRack(lutTabs)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		chooser RackChooser
		slot    func() sched.Policy
		want    bool
	}{
		{"rr-rr", NewRoundRobinRacks(), func() sched.Policy { return sched.NewRoundRobin() }, true},
		{"least-least", NewLeastLoadedRack(), func() sched.Policy { return sched.NewLeastUtilized() }, true},
		{"coolest-chooser", NewCoolestRack(), func() sched.Policy { return sched.NewRoundRobin() }, false},
		{"thermal-slots", NewRoundRobinRacks(), func() sched.Policy { return sched.NewCoolestFirst() }, false},
		{"min-cost", mc, func() sched.Policy { return sched.NewRoundRobin() }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pol, err := NewPolicy(tc.chooser, []sched.Policy{tc.slot(), tc.slot()})
			if err != nil {
				t.Fatal(err)
			}
			if got := pol.loadOnly(); got != tc.want {
				t.Errorf("loadOnly() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestNewPolicyValidation(t *testing.T) {
	if _, err := NewPolicy(nil, []sched.Policy{sched.NewRoundRobin()}); err == nil {
		t.Error("nil chooser must be rejected")
	}
	if _, err := NewPolicy(NewRoundRobinRacks(), nil); err == nil {
		t.Error("no slot policies must be rejected")
	}
	if _, err := NewPolicy(NewRoundRobinRacks(), []sched.Policy{sched.NewRoundRobin(), nil}); err == nil {
		t.Error("nil slot policy must be rejected")
	}
}
