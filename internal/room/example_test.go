package room_test

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/cooling"
	"repro/internal/rack"
	"repro/internal/room"
	"repro/internal/server"
	"repro/internal/units"
)

// ExampleNew builds a three-rack room behind one shared CRAC bank with
// the default neighbor recirculation coupling, loads the middle rack, and
// shows the room-level picture: the shared facility costs energy (PUE > 1)
// and the middle of the row — coupled to a neighbor on each side — sits in
// more recirculated exhaust than the row ends, the spatial gradient the
// recirc-aware chooser prices.
func ExampleNew() {
	mkRack := func(seed int64) rack.Config {
		specs := make([]rack.ServerSpec, 2)
		for i := range specs {
			cfg := server.T3Config()
			cfg.NoiseSeed = seed + int64(i)
			bb, err := control.NewBangBang(control.DefaultBangBang())
			if err != nil {
				panic(err)
			}
			specs[i] = rack.ServerSpec{Config: cfg, Controller: bb}
		}
		return rack.Config{Servers: specs}
	}

	fac := cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC)
	rm, err := room.New(room.Config{
		Racks: []room.RackSpec{
			{Name: "row-a", Config: mkRack(1)},
			{Name: "row-b", Config: mkRack(100)},
			{Name: "row-c", Config: mkRack(200)},
		},
		Recirc:   room.NeighborMatrix(3),
		Facility: &fac,
	})
	if err != nil {
		panic(err)
	}

	// Only the middle rack works; its neighbors idle.
	for i := 0; i < rm.Rack(1).NumServers(); i++ {
		rm.Rack(1).SetLoad(i, units.Percent(90))
	}
	for s := 0; s < 600; s++ {
		rm.Step(1)
	}

	tel := rm.Telemetry()
	mid, end := rm.RecircOffsetC(1), rm.RecircOffsetC(0)
	fmt.Printf("racks: %d, servers: %d\n", tel.Racks, tel.Servers)
	fmt.Printf("cooling costs energy: %v\n", tel.CoolingEnergyKWh > 0 && tel.PUE > 1)
	fmt.Printf("heat conserved: %v\n", tel.RoomHeatKWh > 0)
	fmt.Printf("middle of the row runs hottest: %v\n", mid > end && end > 0)
	// Output:
	// racks: 3, servers: 6
	// cooling costs energy: true
	// heat conserved: true
	// middle of the row runs hottest: true
}
