package room

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRoomCancellation: a cancelled context stops the run at the next
// decision-step boundary, returning the partial Result accumulated so far
// and an error wrapping context.Canceled — on both kernels.
func TestRoomCancellation(t *testing.T) {
	const racks, servers, horizon = 2, 2, 300.0
	jobs := randomJobs(t, 11, 250, servers*racks, 0.5)
	for _, event := range []bool{false, true} {
		rm := testRoom(t, racks, servers, 1, NeighborMatrix(racks), nil, true)
		full, err := RunTrace(rm, jobs, rrPolicy(t, racks), TraceConfig{
			Dt: 1, Horizon: horizon, EventStepping: event, SampleEvery: 15,
		})
		if err != nil {
			t.Fatalf("event=%v: reference run: %v", event, err)
		}

		// Already-cancelled context: the run must stop before step 0.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		rm2 := testRoom(t, racks, servers, 1, NeighborMatrix(racks), nil, true)
		partial, err := RunTrace(rm2, jobs, rrPolicy(t, racks), TraceConfig{
			Dt: 1, Horizon: horizon, EventStepping: event, SampleEvery: 15, Ctx: ctx,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("event=%v: got %v, want context.Canceled", event, err)
		}
		if partial.GridSteps != 0 {
			t.Fatalf("event=%v: pre-cancelled run advanced %d steps", event, partial.GridSteps)
		}
		if partial.Submitted != len(jobs) {
			t.Fatalf("event=%v: partial result lost the submission count", event)
		}

		// Deadline mid-run: the partial result stops strictly short of the
		// full run but stays internally coherent.
		ctx2, cancel2 := context.WithCancel(context.Background())
		rm3 := testRoom(t, racks, servers, 1, NeighborMatrix(racks), nil, true)
		done := make(chan struct{})
		go func() {
			// Real wall-clock races are fine here: any cancellation point
			// (including none, if the run wins) must leave a coherent result.
			time.Sleep(time.Millisecond)
			cancel2()
			close(done)
		}()
		res, err := RunTrace(rm3, jobs, rrPolicy(t, racks), TraceConfig{
			Dt: 1, Horizon: horizon, EventStepping: event, SampleEvery: 15, Ctx: ctx2,
		})
		<-done
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("event=%v: unexpected error: %v", event, err)
		}
		if res.GridSteps < 0 || res.GridSteps > full.GridSteps {
			t.Fatalf("event=%v: cancelled run crossed %d grid steps, full run %d",
				event, res.GridSteps, full.GridSteps)
		}
		cancel2()
	}
}

// TestRoomNilCtxUnchanged: a nil context keeps RunTrace byte-identical to
// the pre-cancellation behaviour — the zero-value TraceConfig still runs
// to the horizon.
func TestRoomNilCtxUnchanged(t *testing.T) {
	jobs := randomJobs(t, 11, 100, 4, 0.5)
	rm := testRoom(t, 2, 2, 1, nil, nil, true)
	res, err := RunTrace(rm, jobs, rrPolicy(t, 2), TraceConfig{Dt: 1, Horizon: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.GridSteps != 120 {
		t.Fatalf("nil-ctx run crossed %d steps, want 120", res.GridSteps)
	}
}
