package room

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Matrix is the room's heat-recirculation coupling, row-major: entry
// W[i][j] is the fraction of rack i's exhaust temperature rise that
// reappears at rack j's inlet. Rows describe where a rack's exhaust goes;
// a row summing to at most 1 means a rack cannot deposit more heat on the
// cold aisles than it exhausted — the containment constraint Validate
// enforces. The diagonal is legal (self-recirculation around a rack's own
// aisle end).
type Matrix struct {
	W [][]float64
}

// NewMatrix builds an n×n zero matrix.
func NewMatrix(n int) *Matrix {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	return &Matrix{W: w}
}

// NeighborMatrix returns the default room coupling for n racks in one row:
// 12% of a rack's exhaust rise reaches each adjacent rack's inlet and 4%
// each rack two positions away — short-circuited hot air spilling over
// containment, decaying with distance. Row sums stay ≤ 0.32.
func NeighborMatrix(n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch d := abs(i - j); d {
			case 1:
				m.W[i][j] = 0.12
			case 2:
				m.W[i][j] = 0.04
			}
		}
	}
	return m
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Size returns the matrix dimension (the number of racks it couples).
func (m *Matrix) Size() int {
	if m == nil {
		return 0
	}
	return len(m.W)
}

// Validate checks the coupling is physical: square, every entry finite and
// non-negative, every row summing to at most 1 (within 1e-9 slack for
// parsed decimal rows).
func (m *Matrix) Validate() error {
	if m == nil || len(m.W) == 0 {
		return fmt.Errorf("room: recirculation matrix is empty")
	}
	n := len(m.W)
	for i, row := range m.W {
		if len(row) != n {
			return fmt.Errorf("room: recirculation row %d has %d entries, want %d (square matrix)", i, len(row), n)
		}
		sum := 0.0
		for j, w := range row {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("room: recirculation entry [%d][%d] is not finite: %g", i, j, w)
			}
			if w < 0 {
				return fmt.Errorf("room: recirculation entry [%d][%d] is negative: %g", i, j, w)
			}
			sum += w
		}
		if sum > 1+1e-9 {
			return fmt.Errorf("room: recirculation row %d sums to %g, want <= 1 (a rack cannot deposit more heat than it exhausts)", i, sum)
		}
	}
	return nil
}

// RowSum returns Σ_j W[i][j]: the total fraction of rack i's exhaust rise
// that lands back on cold aisles — the recirculation-aware placement
// signal (heat placed on a high-row-sum rack is paid more than once).
func (m *Matrix) RowSum(i int) float64 {
	if m == nil {
		return 0
	}
	sum := 0.0
	for _, w := range m.W[i] {
		sum += w
	}
	return sum
}

// IsZero reports whether every entry is exactly zero — the uncoupled room
// whose racks must stay bit-identical to independent stepping.
func (m *Matrix) IsZero() bool {
	if m == nil {
		return true
	}
	for _, row := range m.W {
		for _, w := range row {
			if w != 0 {
				return false
			}
		}
	}
	return true
}

// ParseMatrix loads a recirculation matrix from its text form: one row per
// line, entries separated by whitespace or commas, '#' starting a comment,
// blank lines skipped. The matrix must be square and pass Validate —
// non-finite entries, negative weights, rows summing past 1 and dimension
// mismatches are all rejected. This is the untrusted-input surface
// (evalctl file loading) and the FuzzParseMatrix target.
func ParseMatrix(data []byte) (*Matrix, error) {
	var rows [][]float64
	for ln, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ' ' || r == '\t' || r == '\r' || r == ','
		})
		if len(fields) == 0 {
			continue
		}
		row := make([]float64, 0, len(fields))
		for _, f := range fields {
			w, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("room: recirculation line %d: bad entry %q: %w", ln+1, f, err)
			}
			row = append(row, w)
		}
		rows = append(rows, row)
	}
	m := &Matrix{W: rows}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
