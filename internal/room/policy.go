package room

import (
	"fmt"

	"repro/internal/lut"
	"repro/internal/rack"
	"repro/internal/sched"
	"repro/internal/units"
)

// RackView is the room dispatcher's snapshot of one rack at a placement
// instant: the aggregates a rack chooser ranks on, plus the full per-slot
// views so cost-model choosers can price the best slot without a second
// telemetry pass (the slot views are the exact slice handed to the
// winning rack's sched.Policy afterwards).
type RackView struct {
	Index   int
	Name    string
	Servers int
	Healthy int // slots currently in rotation (rack.Healthy)

	Load    units.Percent // Σ slot loads (can exceed 100 on a multi-server rack)
	Free    units.Percent // Σ free capacity over healthy slots
	MaxFree units.Percent // largest single healthy slot's free capacity

	MaxInletC   units.Celsius // hottest inlet on the rack
	MaxCPUTempC units.Celsius // hottest die on the rack
	WallPowerW  float64       // rack's instantaneous wall draw

	// RecircOffsetC is the recirculation inlet offset currently applied to
	// this rack; RecircRowSum is Σ_j W[i][j] — the fraction of heat placed
	// here that lands back on cold aisles. Both zero in an uncoupled room.
	RecircOffsetC float64
	RecircRowSum  float64

	// Blocked marks a rack whose slot policy already refused this job in
	// the current placement attempt; choosers must skip blocked racks (the
	// runner masks and retries the chooser until it refuses outright).
	Blocked bool

	Slots []sched.ServerView
}

// RackChooser decides which rack a job goes to; the rack's own
// sched.Policy then picks the slot. Choose returns a rack index or -1 to
// leave the job queued. Implementations must be deterministic (ties to the
// lowest index), must skip Blocked racks, and must not mutate internal
// state in Choose — a chooser with placement-dependent state (the
// round-robin cursor) implements RackCommitter and mutates only there, so
// a slot-policy refusal after a Choose never desynchronizes it.
type RackChooser interface {
	Name() string
	Reset()
	Choose(j sched.Job, racks []RackView) int
}

// RackCommitter is the optional RackChooser extension the runner notifies
// after a successful placement on the chosen rack — the only point a
// chooser may mutate state (see RackChooser).
type RackCommitter interface {
	Committed(rackIdx int)
}

// Policy is the two-level room placement policy: a RackChooser picks the
// rack, then that rack's sched.Policy (Slots[rack]) picks the slot. Each
// rack needs its own slot-policy instance — stateful policies (round-robin
// cursors) must not be shared across racks.
type Policy struct {
	Chooser RackChooser
	Slots   []sched.Policy
}

// NewPolicy builds a room placement policy, one slot policy per rack.
func NewPolicy(chooser RackChooser, slots []sched.Policy) (*Policy, error) {
	if chooser == nil {
		return nil, fmt.Errorf("room: policy needs a rack chooser")
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("room: policy needs one slot policy per rack")
	}
	for i, sp := range slots {
		if sp == nil {
			return nil, fmt.Errorf("room: slot policy %d is nil", i)
		}
	}
	return &Policy{Chooser: chooser, Slots: slots}, nil
}

// Name returns the chooser's name — the room-level half of the policy
// pairing; experiments label runs chooser+slot.
func (p *Policy) Name() string { return p.Chooser.Name() }

// reset clears the chooser and every distinct slot policy for a fresh run.
func (p *Policy) reset() {
	p.Chooser.Reset()
	for _, sp := range p.Slots {
		sp.Reset()
	}
}

// loadOnly reports whether the whole two-level refusal is provably
// load-only: the runner's masking loop retries the chooser until it
// refuses outright, so an overall refusal means every fitting rack's slot
// policy refused — load-only iff the chooser's own refusal (no rack fits
// by load/health) and every slot policy's refusal are.
func (p *Policy) loadOnly() bool {
	if lr, ok := p.Chooser.(sched.LoadOnlyRefuser); !ok || !lr.RefusalIsLoadOnly() {
		return false
	}
	for _, sp := range p.Slots {
		if !sched.RefusalIsLoadOnly(sp) {
			return false
		}
	}
	return true
}

// rackFits reports whether rack v could take the job at all: not already
// refused this attempt, with at least one healthy slot whose free capacity
// covers the demand — the load/health-only feasibility every shipped
// chooser filters on.
func rackFits(v RackView, j sched.Job) bool {
	return !v.Blocked && v.Healthy > 0 && v.MaxFree >= j.Demand
}

// slotFits mirrors the sched policies' candidate predicate for pricing
// slots inside a rack view.
func slotFits(v sched.ServerView, j sched.Job) bool {
	return v.Health == rack.Healthy && v.Free >= j.Demand
}

// ---------------------------------------------------------------------------
// Round-robin over racks

// RoundRobinRacks rotates placements across racks regardless of their
// thermal state — the room-scope blind baseline.
type RoundRobinRacks struct{ next int }

// NewRoundRobinRacks returns the rotating rack chooser.
func NewRoundRobinRacks() *RoundRobinRacks { return &RoundRobinRacks{} }

// Name implements RackChooser.
func (p *RoundRobinRacks) Name() string { return "rr-racks" }

// Reset implements RackChooser.
func (p *RoundRobinRacks) Reset() { p.next = 0 }

// RefusalIsLoadOnly implements sched.LoadOnlyRefuser: the rotation reads
// only rackFits (load + health), and refusal mutates nothing — the cursor
// moves only in Committed.
func (p *RoundRobinRacks) RefusalIsLoadOnly() bool { return true }

// Choose implements RackChooser: the first fitting rack at or after the
// cursor.
func (p *RoundRobinRacks) Choose(j sched.Job, racks []RackView) int {
	n := len(racks)
	for k := 0; k < n; k++ {
		v := racks[(p.next+k)%n]
		if rackFits(v, j) {
			return v.Index
		}
	}
	return -1
}

// Committed implements RackCommitter: advance the cursor past the rack
// that took the job.
func (p *RoundRobinRacks) Committed(rackIdx int) { p.next = rackIdx + 1 }

// ---------------------------------------------------------------------------
// Least-loaded rack

// LeastLoadedRack sends each job to the rack with the lowest summed load —
// room-scope load balancing, still thermally blind.
type LeastLoadedRack struct{}

// NewLeastLoadedRack returns the load-balancing rack chooser.
func NewLeastLoadedRack() *LeastLoadedRack { return &LeastLoadedRack{} }

// Name implements RackChooser.
func (p *LeastLoadedRack) Name() string { return "least-loaded" }

// Reset implements RackChooser.
func (p *LeastLoadedRack) Reset() {}

// RefusalIsLoadOnly implements sched.LoadOnlyRefuser: both the refusal and
// the choice read only loads and health, and the chooser is stateless.
func (p *LeastLoadedRack) RefusalIsLoadOnly() bool { return true }

// Choose implements RackChooser.
func (p *LeastLoadedRack) Choose(j sched.Job, racks []RackView) int {
	best := -1
	var bestLoad units.Percent
	for _, v := range racks {
		if !rackFits(v, j) {
			continue
		}
		if best < 0 || v.Load < bestLoad {
			best = v.Index
			bestLoad = v.Load
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Coolest rack

// CoolestRack sends each job to the fitting rack with the lowest hottest
// inlet — the reactive thermal heuristic one level up: recirculation
// offsets raise inlets, so it naturally steers load away from racks
// sitting in other racks' exhaust.
type CoolestRack struct{}

// NewCoolestRack returns the reactive thermal rack chooser.
func NewCoolestRack() *CoolestRack { return &CoolestRack{} }

// Name implements RackChooser.
func (p *CoolestRack) Name() string { return "coolest-rack" }

// Reset implements RackChooser.
func (p *CoolestRack) Reset() {}

// Choose implements RackChooser.
func (p *CoolestRack) Choose(j sched.Job, racks []RackView) int {
	best := -1
	var bestInlet units.Celsius
	for _, v := range racks {
		if !rackFits(v, j) {
			continue
		}
		if best < 0 || v.MaxInletC < bestInlet {
			best = v.Index
			bestInlet = v.MaxInletC
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Marginal-cost rack (leakage-aware, one level up)

// MinCostRack prices each fitting rack at the cheapest predicted steady
// fan+leakage marginal any of its slots offers for this job — the same
// per-slot LUTs the leakage-aware slot policy ranks on — and picks the
// cheapest rack. Pairing it with a leakage-aware slot policy makes both
// levels optimize the same cost.
type MinCostRack struct {
	tables [][]*lut.Table // per rack, per slot
}

// NewMinCostRack builds the chooser over already-built per-rack, per-slot
// cost tables (rack r slot i uses tables[r][i]).
func NewMinCostRack(tables [][]*lut.Table) (*MinCostRack, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("room: min-cost chooser needs per-rack tables")
	}
	for r, ts := range tables {
		if len(ts) == 0 {
			return nil, fmt.Errorf("room: min-cost chooser has no tables for rack %d", r)
		}
	}
	return &MinCostRack{tables: tables}, nil
}

// Name implements RackChooser.
func (p *MinCostRack) Name() string { return "min-cost" }

// Reset implements RackChooser.
func (p *MinCostRack) Reset() {}

// minSlotCost returns the cheapest steady fan+leak marginal of placing j
// on any fitting slot of rack view v, using the per-slot tables ts. The
// second return is false when no slot is feasible and priceable.
func minSlotCost(ts []*lut.Table, v RackView, j sched.Job) (units.Watts, bool) {
	best, ok := units.Watts(0), false
	for _, sv := range v.Slots {
		if !slotFits(sv, j) || sv.Index >= len(ts) || ts[sv.Index] == nil {
			continue
		}
		cost, err := sched.SteadyFanLeakMarginal(ts[sv.Index], sv.Load, j.Demand)
		if err != nil {
			continue
		}
		if !ok || cost < best {
			best, ok = cost, true
		}
	}
	return best, ok
}

// Choose implements RackChooser: the fitting rack with the cheapest best
// slot, ties to the lowest index.
func (p *MinCostRack) Choose(j sched.Job, racks []RackView) int {
	best := -1
	var bestCost units.Watts
	for _, v := range racks {
		if !rackFits(v, j) || v.Index >= len(p.tables) {
			continue
		}
		cost, ok := minSlotCost(p.tables[v.Index], v, j)
		if !ok {
			continue
		}
		if best < 0 || cost < bestCost {
			best = v.Index
			bestCost = cost
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Recirculation-aware rack

// DefaultRecircOffsetWPerC is the default penalty RecircAware charges per
// °C of recirculation offset already applied to a rack's inlets — the
// fan+leakage cost of one extra inlet degree on a mid-size rack, in Watts.
const DefaultRecircOffsetWPerC = 2.0

// RecircAware is the room-scope marginal-cost chooser that prices the
// recirculation matrix in: the best-slot steady fan+leak marginal is
// amplified by (1 + row sum) — heat placed on a rack whose exhaust feeds
// other cold aisles is paid again downstream — plus a penalty per °C of
// recirculation offset the rack is already suffering (placing more load
// there raises already-contaminated inlets further).
type RecircAware struct {
	tables  [][]*lut.Table
	offsetW float64 // Watts charged per °C of applied recirc offset
}

// NewRecircAware builds the recirculation-aware chooser over per-rack,
// per-slot cost tables. offsetWPerC ≤ 0 picks DefaultRecircOffsetWPerC.
func NewRecircAware(tables [][]*lut.Table, offsetWPerC float64) (*RecircAware, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("room: recirc-aware chooser needs per-rack tables")
	}
	for r, ts := range tables {
		if len(ts) == 0 {
			return nil, fmt.Errorf("room: recirc-aware chooser has no tables for rack %d", r)
		}
	}
	if offsetWPerC <= 0 {
		offsetWPerC = DefaultRecircOffsetWPerC
	}
	return &RecircAware{tables: tables, offsetW: offsetWPerC}, nil
}

// Name implements RackChooser.
func (p *RecircAware) Name() string { return "recirc-aware" }

// Reset implements RackChooser.
func (p *RecircAware) Reset() {}

// Choose implements RackChooser: the fitting rack with the lowest
// recirculation-amplified marginal cost, ties to the lowest index.
func (p *RecircAware) Choose(j sched.Job, racks []RackView) int {
	best := -1
	var bestCost float64
	for _, v := range racks {
		if !rackFits(v, j) || v.Index >= len(p.tables) {
			continue
		}
		slot, ok := minSlotCost(p.tables[v.Index], v, j)
		if !ok {
			continue
		}
		cost := (1+v.RecircRowSum)*float64(slot) + p.offsetW*v.RecircOffsetC
		if best < 0 || cost < bestCost {
			best = v.Index
			bestCost = cost
		}
	}
	return best
}
