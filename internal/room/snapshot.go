package room

import (
	"fmt"

	"repro/internal/rack"
)

// State is the serializable mutable state of a Room built from the same
// Config: every rack's state plus the room clock, the currently applied
// recirculation offsets (physical state, not accounting), the shared-bank
// meters and peaks, and the facility-scope fault state. The wallE0 segment
// scratch is derived — checkpoints only happen between segments, where it
// is dead.
type State struct {
	Racks []rack.State
	Clock float64

	Offsets  []float64
	LastWall []float64

	HeatJ      float64
	CoolJ      float64
	FacJ       float64
	LastWallW  float64
	LastCoolW  float64
	PeakWallW  float64
	PeakFacW   float64
	MaxRecircC float64

	CracOut       int
	ChillerDerate float64
}

// Snapshot captures the room for a checkpoint. It must be called between
// steps/segments, never concurrently with Step.
func (rm *Room) Snapshot() (State, error) {
	st := State{
		Racks:         make([]rack.State, len(rm.racks)),
		Clock:         rm.clock,
		Offsets:       append([]float64(nil), rm.offsets...),
		LastWall:      append([]float64(nil), rm.lastWall...),
		HeatJ:         rm.heatJ,
		CoolJ:         rm.coolJ,
		FacJ:          rm.facJ,
		LastWallW:     rm.lastWallW,
		LastCoolW:     rm.lastCoolW,
		PeakWallW:     rm.peakWallW,
		PeakFacW:      rm.peakFacW,
		MaxRecircC:    rm.maxRecircC,
		CracOut:       rm.cracOut,
		ChillerDerate: rm.chillerDerate,
	}
	for i, rk := range rm.racks {
		rs, err := rk.Snapshot()
		if err != nil {
			return State{}, fmt.Errorf("room: rack %d: %w", i, err)
		}
		st.Racks[i] = rs
	}
	return st, nil
}

// Restore loads a captured State into a room built from the same Config.
func (rm *Room) Restore(st State) error {
	if len(st.Racks) != len(rm.racks) {
		return fmt.Errorf("room: state has %d racks, room has %d", len(st.Racks), len(rm.racks))
	}
	if len(st.Offsets) != len(rm.racks) || len(st.LastWall) != len(rm.racks) {
		return fmt.Errorf("room: state offset/wall vectors do not match %d racks", len(rm.racks))
	}
	for i, rk := range rm.racks {
		if err := rk.Restore(st.Racks[i]); err != nil {
			return fmt.Errorf("room: rack %d: %w", i, err)
		}
	}
	rm.clock = st.Clock
	copy(rm.offsets, st.Offsets)
	copy(rm.lastWall, st.LastWall)
	rm.heatJ = st.HeatJ
	rm.coolJ = st.CoolJ
	rm.facJ = st.FacJ
	rm.lastWallW = st.LastWallW
	rm.lastCoolW = st.LastCoolW
	rm.peakWallW = st.PeakWallW
	rm.peakFacW = st.PeakFacW
	rm.maxRecircC = st.MaxRecircC
	rm.cracOut = st.CracOut
	rm.chillerDerate = st.ChillerDerate
	return nil
}
