package room

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/control"
	"repro/internal/cooling"
	"repro/internal/fault"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/obs"
	"repro/internal/rack"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/units"
)

// syntheticTable is the hand-built monotone fan table the sched event
// tests use: LUT controllers (the horizon-promising kind) without paying
// for a grid of steady-state solves per case.
func syntheticTable() *lut.Table {
	return &lut.Table{Entries: []lut.Entry{
		{Util: 0, RPM: 1800, PredictedTemp: 45, FanLeakPower: 18},
		{Util: 30, RPM: 2400, PredictedTemp: 55, FanLeakPower: 24},
		{Util: 60, RPM: 3000, PredictedTemp: 62, FanLeakPower: 33},
		{Util: 100, RPM: 3600, PredictedTemp: 68, FanLeakPower: 46},
	}}
}

// testRackConfig builds one rack's config: ambient gradient, mixed DIMM
// counts, per-rack-distinct noise seeds, fresh controllers per call
// (controllers are stateful and must never be shared between racks). lutCtl
// selects horizon-promising LUT controllers; false is bang-bang.
func testRackConfig(t testing.TB, servers int, seedBase int64, lutCtl bool) rack.Config {
	t.Helper()
	specs := make([]rack.ServerSpec, servers)
	for i := range specs {
		cfg := server.T3Config()
		cfg.Ambient = units.Celsius(21 + 3*(i%4))
		cfg.NoiseSeed = seedBase + 97*int64(i)
		if i%2 == 1 {
			cfg.Mem.NumDIMMs = 24
		}
		var ctl control.Controller
		if lutCtl {
			lc, err := control.NewLUT(syntheticTable(), control.DefaultLUT())
			if err != nil {
				t.Fatal(err)
			}
			ctl = lc
		} else {
			bb, err := control.NewBangBang(control.DefaultBangBang())
			if err != nil {
				t.Fatal(err)
			}
			ctl = bb
		}
		specs[i] = rack.ServerSpec{Config: cfg, Controller: ctl}
	}
	return rack.Config{Servers: specs, Workers: 1}
}

// testRoom assembles a room of `racks` identical-spec racks (distinct noise
// seeds per rack) under the given coupling and shared facility.
func testRoom(t testing.TB, racks, servers, workers int, w *Matrix, fac *cooling.Facility, lutCtl bool) *Room {
	t.Helper()
	specs := make([]RackSpec, racks)
	for r := range specs {
		specs[r] = RackSpec{Config: testRackConfig(t, servers, 1+1000*int64(r), lutCtl)}
	}
	rm, err := New(Config{Racks: specs, Workers: workers, Recirc: w, Facility: fac})
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

// driveLoads runs the room through a deterministic per-slot load schedule
// for `steps` seconds of 1 s stepping.
func driveLoads(rm *Room, steps int) {
	for s := 0; s < steps; s++ {
		for r := 0; r < rm.NumRacks(); r++ {
			rk := rm.Rack(r)
			for i := 0; i < rk.NumServers(); i++ {
				rk.SetLoad(i, units.Percent((s/30*17+23*(i+5*r))%101))
			}
		}
		rm.Step(1)
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if b != 0 {
		d /= math.Abs(b)
	}
	return d
}

// randomJobs synthesizes a sorted Poisson trace at roughly the given
// offered load per server.
func randomJobs(t testing.TB, seed int64, horizon float64, servers int, offered float64) []sched.Job {
	t.Helper()
	specs, err := loadgen.PoissonTrace(loadgen.PoissonTraceConfig{
		Seed:         seed,
		Horizon:      horizon,
		Rate:         offered * float64(servers) * 100 / (120 * 30), // E[demand]=30%, 120 s jobs
		MeanDuration: 120,
		Demands:      []units.Percent{20, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sched.JobsFromSpecs(specs)
}

// rrPolicy builds the blind two-level baseline: round-robin racks, round-
// robin slots.
func rrPolicy(t testing.TB, racks int) *Policy {
	t.Helper()
	slots := make([]sched.Policy, racks)
	for i := range slots {
		slots[i] = sched.NewRoundRobin()
	}
	pol, err := NewPolicy(NewRoundRobinRacks(), slots)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// TestRoomZeroMatrixBitIdentical is the W = 0 property: with no coupling
// and no shared facility, every rack inside the room must be bit-identical
// to the same rack stepped independently — for a nil matrix, an all-zero
// matrix, and any worker count.
func TestRoomZeroMatrixBitIdentical(t *testing.T) {
	const racks, servers, steps = 3, 4, 240
	for _, tc := range []struct {
		name    string
		w       *Matrix
		workers int
	}{
		{"nil-matrix", nil, 1},
		{"zero-matrix", NewMatrix(racks), 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rm := testRoom(t, racks, servers, tc.workers, tc.w, nil, false)
			driveLoads(rm, steps)

			var wantWall float64
			for r := 0; r < racks; r++ {
				// The independent reference: an identical rack (same specs,
				// same seeds, fresh controllers) under the same schedule.
				ref, err := rack.New(testRackConfig(t, servers, 1+1000*int64(r), false))
				if err != nil {
					t.Fatal(err)
				}
				for s := 0; s < steps; s++ {
					for i := 0; i < servers; i++ {
						ref.SetLoad(i, units.Percent((s/30*17+23*(i+5*r))%101))
					}
					ref.Step(1)
				}
				refTel, gotTel := ref.Telemetry(), rm.Rack(r).Telemetry()
				if !reflect.DeepEqual(refTel, gotTel) {
					t.Errorf("rack %d diverged from independent stepping:\nindependent: %+v\nin-room:     %+v", r, refTel, gotTel)
				}
				wantWall += refTel.WallEnergyKWh
				if off := rm.RecircOffsetC(r); off != 0 {
					t.Errorf("rack %d carries recirc offset %g in an uncoupled room", r, off)
				}
			}
			tel := rm.Telemetry()
			if tel.WallEnergyKWh != wantWall {
				t.Errorf("room wall energy %g != Σ independent racks %g", tel.WallEnergyKWh, wantWall)
			}
			if tel.CoolingEnergyKWh != 0 || tel.PUE != 1 {
				t.Errorf("no-facility room must have zero cooling and PUE 1, got %+v", tel)
			}
			if tel.MaxRecircOffsetC != 0 {
				t.Errorf("uncoupled room reports recirc offset %g", tel.MaxRecircOffsetC)
			}
		})
	}
}

// TestRoomHeatConservation is the energy-conservation property: the
// independently integrated room heat must equal the sum of the rack wall
// meters to float-reordering precision (1e-9 relative), for any valid
// coupling, and the facility meter must be exactly heat + cooling.
func TestRoomHeatConservation(t *testing.T) {
	fac := cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC)
	for _, tc := range []struct {
		name string
		w    *Matrix
	}{
		{"uncoupled", nil},
		{"neighbor", NeighborMatrix(4)},
		{"saturated-rows", &Matrix{W: [][]float64{
			{0.25, 0.25, 0.25, 0.25},
			{0.25, 0.25, 0.25, 0.25},
			{0.25, 0.25, 0.25, 0.25},
			{0.25, 0.25, 0.25, 0.25},
		}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rm := testRoom(t, 4, 3, 2, tc.w, &fac, false)
			driveLoads(rm, 300)
			tel := rm.Telemetry()
			if d := relDiff(tel.RoomHeatKWh, tel.WallEnergyKWh); d > 1e-9 {
				t.Errorf("room heat %g vs Σ rack wall %g: off by %g relative (want ≤ 1e-9)",
					tel.RoomHeatKWh, tel.WallEnergyKWh, d)
			}
			if d := relDiff(tel.FacilityEnergyKWh, tel.RoomHeatKWh+tel.CoolingEnergyKWh); d > 1e-12 {
				t.Errorf("facility energy %g != heat %g + cooling %g", tel.FacilityEnergyKWh, tel.RoomHeatKWh, tel.CoolingEnergyKWh)
			}
			if tel.CoolingEnergyKWh <= 0 || tel.PUE <= 1 {
				t.Errorf("shared CRAC bank should cost energy: %+v", tel)
			}
			if tel.PeakFacilityPowerW <= tel.PeakWallPowerW {
				t.Errorf("facility peak %g should exceed wall peak %g", tel.PeakFacilityPowerW, tel.PeakWallPowerW)
			}
		})
	}
}

// scaleMatrix returns m with every entry multiplied by f.
func scaleMatrix(m *Matrix, f float64) *Matrix {
	out := NewMatrix(m.Size())
	for i, row := range m.W {
		for j, w := range row {
			out.W[i][j] = f * w
		}
	}
	return out
}

// TestRoomRecircOffsetsMonotone: entrywise-larger couplings must never
// lower any rack's inlet offset — more recirculated exhaust means hotter
// cold aisles everywhere.
func TestRoomRecircOffsetsMonotone(t *testing.T) {
	base := NeighborMatrix(4)
	offsets := func(f float64) []float64 {
		var w *Matrix
		if f > 0 {
			w = scaleMatrix(base, f)
		}
		rm := testRoom(t, 4, 3, 2, w, nil, false)
		driveLoads(rm, 180)
		out := make([]float64, rm.NumRacks())
		for i := range out {
			out[i] = rm.RecircOffsetC(i)
		}
		return out
	}
	zero, half, full := offsets(0), offsets(0.5), offsets(1)
	for i := range full {
		if zero[i] != 0 {
			t.Errorf("rack %d: uncoupled offset %g != 0", i, zero[i])
		}
		if half[i] <= 0 || full[i] <= 0 {
			t.Errorf("rack %d: coupled offsets must be positive under load, got half=%g full=%g", i, half[i], full[i])
		}
		if full[i] < half[i] {
			t.Errorf("rack %d: offset fell from %g to %g when every entry doubled", i, half[i], full[i])
		}
	}
	// The end racks sit in one neighbor's exhaust, the middle racks in two:
	// the spatial gradient the recirc-aware chooser prices.
	if !(full[1] > full[0] && full[2] > full[3]) {
		t.Errorf("middle racks should run hotter offsets than end racks: %v", full)
	}
}

// roomRunOut bundles everything one trace run produces that determinism
// must cover: the scheduling result, the room and per-rack telemetry, and
// the metrics dump bytes.
type roomRunOut struct {
	res   Result
	tel   Telemetry
	racks []rack.Telemetry
	dump  string
}

func runOnce(t *testing.T, workers int, w *Matrix, fac *cooling.Facility, jobs []sched.Job, mkPol func() *Policy, tc TraceConfig, racks, servers int) roomRunOut {
	t.Helper()
	rm := testRoom(t, racks, servers, workers, w, fac, true)
	reg := obs.NewRegistry()
	tc.Metrics = reg
	res, err := RunTrace(rm, jobs, mkPol(), tc)
	if err != nil {
		t.Fatal(err)
	}
	res.Metrics = nil // registry pointers differ by construction
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := roomRunOut{res: res, tel: rm.Telemetry(), dump: buf.String()}
	for i := 0; i < rm.NumRacks(); i++ {
		out.racks = append(out.racks, rm.Rack(i).Telemetry())
	}
	return out
}

// TestRoomDeterminism is the two-level determinism contract: randomized
// rooms — racks × servers × choosers × fault schedules × both kernels —
// must produce byte-identical telemetry, results and metrics dumps for
// every worker count. Under -race this also proves the rack-i write
// isolation of the segment fan-out.
func TestRoomDeterminism(t *testing.T) {
	fac := cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC)
	rng := rand.New(rand.NewSource(77))
	for _, kernel := range []struct {
		name  string
		event bool
	}{{"fixed", false}, {"event", true}} {
		for c := 0; c < 3; c++ {
			racks := 2 + rng.Intn(3)
			servers := 2 + rng.Intn(2)
			seed := rng.Int63()
			withFaults := c == 1
			chooser := c % 3
			t.Run(kernel.name, func(t *testing.T) {
				jobs := randomJobs(t, seed, 400, racks*servers, 0.5)
				mkPol := func() *Policy {
					slots := make([]sched.Policy, racks)
					for i := range slots {
						slots[i] = sched.NewCoolestFirst()
					}
					var ch RackChooser
					switch chooser {
					case 0:
						ch = NewRoundRobinRacks()
					case 1:
						ch = NewLeastLoadedRack()
					default:
						ch = NewCoolestRack()
					}
					pol, err := NewPolicy(ch, slots)
					if err != nil {
						t.Fatal(err)
					}
					return pol
				}
				tc := TraceConfig{Dt: 1, Horizon: 400, EventStepping: kernel.event, SampleEvery: 60}
				if withFaults {
					tc.Faults = make([]*fault.Schedule, racks)
					tc.Faults[0] = &fault.Schedule{Events: []fault.Event{
						{Kind: fault.CRACOutage, At: 100, Clear: 200},
						{Kind: fault.FanStick, Server: 0, Fan: 0, At: 150, Clear: 300},
					}}
				}
				w := NeighborMatrix(racks)
				ref := runOnce(t, 1, w, &fac, jobs, mkPol, tc, racks, servers)
				for _, workers := range []int{4, racks} {
					got := runOnce(t, workers, w, &fac, jobs, mkPol, tc, racks, servers)
					if !reflect.DeepEqual(ref.res, got.res) {
						t.Errorf("workers=%d result differs:\nserial:   %+v\nparallel: %+v", workers, ref.res, got.res)
					}
					if !reflect.DeepEqual(ref.tel, got.tel) {
						t.Errorf("workers=%d room telemetry differs:\nserial:   %+v\nparallel: %+v", workers, ref.tel, got.tel)
					}
					if !reflect.DeepEqual(ref.racks, got.racks) {
						t.Errorf("workers=%d per-rack telemetry differs", workers)
					}
					if ref.dump != got.dump {
						t.Errorf("workers=%d metrics dump differs:\nserial:\n%s\nparallel:\n%s", workers, ref.dump, got.dump)
					}
				}
				if ref.res.Placed == 0 {
					t.Error("degenerate case: no job was ever placed")
				}
			})
		}
	}
}

// assertPinIdentity checks Advances − MacroWindows == Σ Pins for one
// rack's kernel stats.
func assertPinIdentity(t *testing.T, label string, st RackKernelStats) (pins int) {
	t.Helper()
	for _, p := range st.Pins {
		pins += p
	}
	if pins != st.Advances-st.MacroWindows {
		t.Errorf("%s: Σ pins = %d, want advances − macro = %d − %d = %d",
			label, pins, st.Advances, st.MacroWindows, st.Advances-st.MacroWindows)
	}
	return pins
}

// roomPinSum extracts (Σ room.pin.*, room.rack.steps.total,
// room.windows.macro, room.grid.steps) from a registry.
func roomPinSum(reg *obs.Registry) (pins, steps, macro, grid int64) {
	for _, name := range PinReasonNames() {
		pins += reg.Counter("room.pin." + name).Value()
	}
	return pins,
		reg.Counter("room.rack.steps.total").Value(),
		reg.Counter("room.windows.macro").Value(),
		reg.Counter("room.grid.steps").Value()
}

// TestRoomPinIdentity is the acceptance identity, room scope: every rack
// advance is either a macro window or exactly one pinned single step, per
// rack and room-wide, in both kernels, with and without faults — and the
// room.* counters agree with the per-rack stats.
func TestRoomPinIdentity(t *testing.T) {
	const racks, servers = 3, 3
	jobs := randomJobs(t, 99, 600, racks*servers, 0.4)
	cascade := []*fault.Schedule{
		{Events: []fault.Event{
			{Kind: fault.FanFail, Server: 0, Fan: 0, At: 120},
			{Kind: fault.CRACOutage, At: 200, Clear: 400},
		}},
		nil,
		{Events: []fault.Event{{Kind: fault.PSUFail, Server: 1, At: 300, Clear: 450}}},
	}
	for _, tc := range []struct {
		name   string
		event  bool
		faults []*fault.Schedule
		sample float64
	}{
		{name: "fixed", event: false},
		{name: "event", event: true},
		{name: "event-sampled", event: true, sample: 30},
		{name: "event-faults", event: true, faults: cascade, sample: 20},
		{name: "fixed-faults", event: false, faults: cascade},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fac := cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC)
			rm := testRoom(t, racks, servers, 2, NeighborMatrix(racks), &fac, true)
			reg := obs.NewRegistry()
			res, err := RunTrace(rm, jobs, rrPolicy(t, racks), TraceConfig{
				Dt: 1, Horizon: 600,
				EventStepping: tc.event,
				SampleEvery:   tc.sample,
				Faults:        tc.faults,
				Metrics:       reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			var totPins, totAdv, totMacro int
			for i, st := range res.Kernel {
				totPins += assertPinIdentity(t, rm.RackName(i), st)
				totAdv += st.Advances
				totMacro += st.MacroWindows
			}
			if totPins != totAdv-totMacro {
				t.Errorf("room-wide: Σ pins = %d, want %d", totPins, totAdv-totMacro)
			}
			pins, steps, macro, grid := roomPinSum(reg)
			if pins != steps-macro {
				t.Errorf("counters: Σ room.pin.* = %d, want steps − macro = %d − %d", pins, steps, macro)
			}
			if steps != int64(totAdv) || macro != int64(totMacro) {
				t.Errorf("counters (steps=%d macro=%d) disagree with Kernel stats (adv=%d macro=%d)", steps, macro, totAdv, totMacro)
			}
			if grid != int64(res.GridSteps) || res.GridSteps != 600 {
				t.Errorf("grid steps: counter %d, result %d, want 600", grid, res.GridSteps)
			}
			if !tc.event {
				if totMacro != 0 || totAdv != racks*600 {
					t.Errorf("fixed path: want %d single-step advances, got adv=%d macro=%d", racks*600, totAdv, totMacro)
				}
			} else if totMacro == 0 {
				t.Error("event path produced no macro windows — the kernel never un-pinned")
			}
		})
	}
}

// runBothKernels executes the identical trace on twin rooms through the
// fixed-dt and event-driven kernels.
func runBothKernels(t *testing.T, racks, servers int, w *Matrix, fac *cooling.Facility, jobs []sched.Job, tc TraceConfig) (fixed, event roomRunOut) {
	t.Helper()
	mkPol := func() *Policy { return rrPolicy(t, racks) }
	tcf := tc
	tcf.EventStepping = false
	fixed = runOnce(t, 2, w, fac, jobs, mkPol, tcf, racks, servers)
	tce := tc
	tce.EventStepping = true
	event = runOnce(t, 2, w, fac, jobs, mkPol, tce, racks, servers)
	return fixed, event
}

// assertKernelsEquivalent is the room tentpole property: identical
// scheduling outcomes and energies within 1e-6 relative between the two
// kernels.
func assertKernelsEquivalent(t *testing.T, label string, fixed, event roomRunOut) {
	t.Helper()
	fs, es := fixed.res, event.res
	fs.Segments, es.Segments = 0, 0
	fs.Kernel, es.Kernel = nil, nil
	if !reflect.DeepEqual(fs, es) {
		t.Errorf("%s: scheduling outcomes differ:\nfixed %+v\nevent %+v", label, fs, es)
	}
	for _, m := range []struct {
		name string
		f, e float64
		tol  float64
	}{
		{"TotalEnergyKWh", fixed.tel.TotalEnergyKWh, event.tel.TotalEnergyKWh, 1e-6},
		{"WallEnergyKWh", fixed.tel.WallEnergyKWh, event.tel.WallEnergyKWh, 1e-6},
		{"FanEnergyKWh", fixed.tel.FanEnergyKWh, event.tel.FanEnergyKWh, 1e-6},
		{"RoomHeatKWh", fixed.tel.RoomHeatKWh, event.tel.RoomHeatKWh, 1e-6},
		{"CoolingEnergyKWh", fixed.tel.CoolingEnergyKWh, event.tel.CoolingEnergyKWh, 1e-5},
		{"FacilityEnergyKWh", fixed.tel.FacilityEnergyKWh, event.tel.FacilityEnergyKWh, 1e-6},
	} {
		if d := relDiff(m.e, m.f); d > m.tol {
			t.Errorf("%s: %s off by %g relative (event %g vs fixed %g)", label, m.name, d, m.e, m.f)
		}
	}
	if fixed.tel.FanChanges != event.tel.FanChanges {
		t.Errorf("%s: fan changes differ: fixed %d event %d", label, fixed.tel.FanChanges, event.tel.FanChanges)
	}
	var fAdv, eAdv int
	for _, st := range fixed.res.Kernel {
		fAdv += st.Advances
	}
	for _, st := range event.res.Kernel {
		eAdv += st.Advances
	}
	if eAdv >= fAdv {
		t.Errorf("%s: event kernel took %d advances, fixed %d — no macro wins", label, eAdv, fAdv)
	}
}

// TestRoomEventMatchesFixed: the room event kernel must reproduce the
// fixed-dt reference — same placements, energies within 1e-6 relative —
// while taking strictly fewer rack advances, with and without the
// recirculation coupling and the shared facility. The coupled cases bound
// segments with SampleEvery so recirculation re-anchors stay on a fixed
// cadence in both kernels.
func TestRoomEventMatchesFixed(t *testing.T) {
	const racks, servers = 3, 3
	fac := cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC)
	for _, tc := range []struct {
		name    string
		w       *Matrix
		offered float64
		sample  float64
	}{
		{name: "uncoupled-light", w: nil, offered: 0.3},
		{name: "uncoupled-heavy", w: nil, offered: 1.5},
		{name: "coupled-light", w: NeighborMatrix(racks), offered: 0.3, sample: 10},
		{name: "coupled-heavy", w: NeighborMatrix(racks), offered: 1.2, sample: 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			jobs := randomJobs(t, 31+int64(len(tc.name)), 600, racks*servers, tc.offered)
			fixed, event := runBothKernels(t, racks, servers, tc.w, &fac, jobs, TraceConfig{
				Dt: 1, Horizon: 600, SampleEvery: tc.sample,
			})
			assertKernelsEquivalent(t, tc.name, fixed, event)
		})
	}
}

// TestRoomSharedBankFaults covers the facility-scope fault plumbing on the
// shared CRAC bank: an outage darkens it (cooling exactly zero), a chiller
// derate inflates it, and clears restore the baseline exactly.
func TestRoomSharedBankFaults(t *testing.T) {
	fac := cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC)
	rm := testRoom(t, 2, 2, 1, nil, &fac, false)
	driveLoads(rm, 60)
	base := float64(rm.CoolingPower())
	if base <= 0 {
		t.Fatalf("expected positive cooling power under load, got %g", base)
	}

	outage := fault.Event{Kind: fault.CRACOutage, At: 0}
	if err := rm.ApplyFault(0, outage); err != nil {
		t.Fatal(err)
	}
	rm.Step(1)
	if got := float64(rm.CoolingPower()); got != 0 {
		t.Errorf("cooling power %g during CRAC outage, want exactly 0", got)
	}
	if rm.PUE() != 1 {
		t.Errorf("PUE %g during outage, want 1 (no cooling draw)", rm.PUE())
	}
	if err := rm.ClearFault(0, outage); err != nil {
		t.Fatal(err)
	}

	derate := fault.Event{Kind: fault.ChillerDegraded, At: 0, Severity: 0.3}
	if err := rm.ApplyFault(1, derate); err != nil {
		t.Fatal(err)
	}
	rm.Step(1)
	if got := float64(rm.CoolingPower()); got <= base {
		t.Errorf("derated cooling power %g should exceed baseline %g", got, base)
	}
	if err := rm.ClearFault(1, derate); err != nil {
		t.Fatal(err)
	}
	rm.Step(1)
	if got := float64(rm.CoolingPower()); relDiff(got, base) > 0.05 {
		t.Errorf("cooling power %g did not return near baseline %g after clears", got, base)
	}

	if err := rm.ApplyFault(7, outage); err == nil {
		t.Error("fault on out-of-range rack must error")
	}
	if err := rm.ClearFault(-1, outage); err == nil {
		t.Error("clear on out-of-range rack must error")
	}
}

// TestRoomValidation covers the constructor and trace-runner error paths.
func TestRoomValidation(t *testing.T) {
	good := func() Config {
		return Config{Racks: []RackSpec{{Config: testRackConfig(t, 2, 1, false)}}}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("empty room must be rejected")
	}
	bad := good()
	bad.Recirc = NeighborMatrix(3)
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "racks") {
		t.Errorf("matrix/room dimension mismatch must be rejected, got %v", err)
	}
	bad = good()
	bad.Recirc = &Matrix{W: [][]float64{{2}}}
	if _, err := New(bad); err == nil {
		t.Error("invalid matrix must be rejected")
	}
	bad = good()
	bad.ExhaustRiseCPerKW = -1
	if _, err := New(bad); err == nil {
		t.Error("negative exhaust rise must be rejected")
	}
	bad = good()
	fac := cooling.DefaultFacility(18)
	bad.Racks[0].Config.Facility = &fac
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "owns the cooling loop") {
		t.Errorf("rack-owned facility must be rejected, got %v", err)
	}

	rm := testRoom(t, 2, 2, 1, nil, nil, false)
	jobs := []sched.Job{{ID: 0, Arrival: 0, Duration: 10, Demand: 20}}
	pol := rrPolicy(t, 2)
	if _, err := RunTrace(rm, jobs, pol, TraceConfig{Dt: 0, Horizon: 10}); err == nil {
		t.Error("dt=0 must be rejected")
	}
	if _, err := RunTrace(rm, jobs, nil, TraceConfig{Dt: 1, Horizon: 10}); err == nil {
		t.Error("nil policy must be rejected")
	}
	unsorted := []sched.Job{{Arrival: 5}, {Arrival: 1}}
	if _, err := RunTrace(rm, unsorted, pol, TraceConfig{Dt: 1, Horizon: 10}); err == nil {
		t.Error("unsorted jobs must be rejected")
	}
	if _, err := RunTrace(rm, jobs, rrPolicy(t, 3), TraceConfig{Dt: 1, Horizon: 10}); err == nil {
		t.Error("slot-policy count mismatch must be rejected")
	}
	if _, err := RunTrace(rm, jobs, pol, TraceConfig{Dt: 1, Horizon: 10,
		Faults: []*fault.Schedule{{}}}); err == nil {
		t.Error("fault-schedule count mismatch must be rejected")
	}
	if _, err := RunTrace(rm, jobs, pol, TraceConfig{Dt: 1, Horizon: 10,
		Faults: []*fault.Schedule{{Events: []fault.Event{{Kind: fault.FanStick, Server: 9, At: 1}}}, nil}}); err == nil {
		t.Error("invalid per-rack fault schedule must be rejected")
	}
}

// TestRoomSettleAndReset: both settle paths advance the room clock without
// scheduling anything, and ResetAccounting restarts the meters while the
// recirculation offsets persist as physical state.
func TestRoomSettleAndReset(t *testing.T) {
	for _, event := range []bool{false, true} {
		rm := testRoom(t, 2, 2, 1, NeighborMatrix(2), nil, true)
		driveLoads(rm, 30) // put some load-driven heat into the loop
		if err := Settle(rm, 1, 120, event); err != nil {
			t.Fatal(err)
		}
		if got := rm.Now(); got != 150 {
			t.Errorf("event=%v: clock %g after 30+120 s, want 150", event, got)
		}
		pre := rm.RecircOffsetC(0)
		rm.ResetAccounting()
		tel := rm.Telemetry()
		if tel.WallEnergyKWh != 0 || tel.RoomHeatKWh != 0 || tel.FacilityEnergyKWh != 0 {
			t.Errorf("event=%v: ResetAccounting left meters %+v", event, tel)
		}
		if got := rm.RecircOffsetC(0); got != pre {
			t.Errorf("event=%v: reset moved the physical recirc offset %g -> %g", event, pre, got)
		}
	}
}
