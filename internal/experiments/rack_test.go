package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/server"
)

// rackRow finds a policy's row.
func rackRow(t *testing.T, rows []RackPolicyResult, policy string) RackPolicyResult {
	t.Helper()
	for _, r := range rows {
		if r.Policy == policy {
			return r
		}
	}
	t.Fatalf("policy %q missing from %d rows", policy, len(rows))
	return RackPolicyResult{}
}

// TestRackPolicyComparisonDeterministicAcrossWorkers is the golden-table
// contract: the serial reference run and any parallel worker count must
// produce structurally identical rows and a byte-identical rendered
// table. Under -race this exercises the concurrent policy runs (the
// rack-step fan-out itself is raced in internal/rack).
func TestRackPolicyComparisonDeterministicAcrossWorkers(t *testing.T) {
	base := server.T3Config()
	ev := DefaultRackEval()
	ev.Servers = 4
	ev.Horizon = 900
	ev.Stabilize = 60

	ev.Workers = 1
	serial, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	ev.Workers = 8
	parallel, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel rows differ from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	var a, b bytes.Buffer
	if err := FormatRackTable(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := FormatRackTable(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("rendered tables differ:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
	for _, col := range []string{"Policy", "Total(Wh)", "round-robin", "leakage-aware"} {
		if !strings.Contains(a.String(), col) {
			t.Fatalf("table missing %q:\n%s", col, a.String())
		}
	}
}

// TestRackPolicyComparisonOrdering is the headline acceptance criterion:
// on the default heterogeneous rack and Poisson trace, the thermally
// aware policies must beat round-robin on total energy, with every policy
// serving the identical job trace to completion parity.
func TestRackPolicyComparisonOrdering(t *testing.T) {
	rows, err := RackPolicyComparison(server.T3Config(), DefaultRackEval())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	rr := rackRow(t, rows, "round-robin")
	cool := rackRow(t, rows, "coolest-first")
	leak := rackRow(t, rows, "leakage-aware")

	if cool.TotalWh() >= rr.TotalWh() {
		t.Fatalf("coolest-first (%.3f Wh) must beat round-robin (%.3f Wh)", cool.TotalWh(), rr.TotalWh())
	}
	if leak.TotalWh() >= rr.TotalWh() {
		t.Fatalf("leakage-aware (%.3f Wh) must beat round-robin (%.3f Wh)", leak.TotalWh(), rr.TotalWh())
	}

	// Same trace, same capacity: every policy must place every job.
	for _, r := range rows {
		if r.Sched.Placed != r.Sched.Submitted {
			t.Fatalf("%s placed %d of %d jobs", r.Policy, r.Sched.Placed, r.Sched.Submitted)
		}
		if r.Rack.Tripped != 0 {
			t.Fatalf("%s tripped thermal protection on %d servers", r.Policy, r.Rack.Tripped)
		}
		if r.Rack.MaxCPUTempC >= float64(server.T3Config().CriticalTemp) {
			t.Fatalf("%s max CPU temp %.1f at/above critical", r.Policy, r.Rack.MaxCPUTempC)
		}
	}
}

// TestRackPolicyComparisonSeedSensitivity guards that the trace seed is
// load-bearing: different seeds must yield different job traces and hence
// different energies.
func TestRackPolicyComparisonSeedSensitivity(t *testing.T) {
	base := server.T3Config()
	ev := DefaultRackEval()
	ev.Servers = 2
	ev.Horizon = 600
	ev.Stabilize = 30
	ev.Workers = 1
	a, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	ev.TraceSeed = 7
	b, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Rack.TotalEnergyKWh == b[0].Rack.TotalEnergyKWh {
		t.Fatal("different trace seeds produced identical energies")
	}
}

// TestRackEvalValidation covers the config error paths.
func TestRackEvalValidation(t *testing.T) {
	base := server.T3Config()
	bad := DefaultRackEval()
	bad.Servers = 0
	if _, err := RackPolicyComparison(base, bad); err == nil {
		t.Fatal("zero servers must be rejected")
	}
	bad = DefaultRackEval()
	bad.Rate = 0
	if _, err := RackPolicyComparison(base, bad); err == nil {
		t.Fatal("zero arrival rate must be rejected")
	}
	bad = DefaultRackEval()
	bad.Demands = nil
	if _, err := RackPolicyComparison(base, bad); err == nil {
		t.Fatal("empty demand levels must be rejected")
	}
}

// TestRackPolicyFilter pins the RackEval.Policy contract: a named policy
// shrinks the comparison to exactly that row — identical to the same row
// of the unfiltered run, since the shared LUT grid and job trace don't
// depend on which policies consume them — and an unknown name is a
// configuration error, not an empty table.
func TestRackPolicyFilter(t *testing.T) {
	base := server.T3Config()
	ev := DefaultRackEval()
	ev.Servers = 4
	ev.Horizon = 900
	ev.Stabilize = 60

	full, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	ev.Policy = "least-utilized"
	one, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("filtered comparison returned %d rows, want 1", len(one))
	}
	if !reflect.DeepEqual(one[0], rackRow(t, full, "least-utilized")) {
		t.Fatalf("filtered row differs from the unfiltered run:\nfiltered:   %+v\nunfiltered: %+v",
			one[0], rackRow(t, full, "least-utilized"))
	}

	ev.Policy = "no-such-policy"
	if _, err := RackPolicyComparison(base, ev); err == nil {
		t.Fatal("unknown policy name must be rejected")
	} else if !strings.Contains(err.Error(), "round-robin") {
		t.Fatalf("error should list the valid names, got: %v", err)
	}
}
