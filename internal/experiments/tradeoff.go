package experiments

import (
	"fmt"
	"sort"

	"repro/internal/par"
	"repro/internal/server"
	"repro/internal/units"
)

// TradeoffPoint is one steady operating point of Fig. 2: at a fan speed,
// the equilibrium temperature and the fan/leakage power split.
type TradeoffPoint struct {
	RPM      units.RPM
	Temp     units.Celsius
	FanPower units.Watts
	Leakage  units.Watts
}

// Sum returns fan + leakage power, the quantity Fig. 2(a) shows is convex.
func (p TradeoffPoint) Sum() units.Watts { return p.FanPower + p.Leakage }

// TradeoffCurve is a Fig. 2 series for one utilization level.
type TradeoffCurve struct {
	Util   units.Percent
	Points []TradeoffPoint // sorted by temperature (i.e. descending RPM)
}

// Optimum returns the point minimizing fan+leakage power.
func (c TradeoffCurve) Optimum() (TradeoffPoint, error) {
	if len(c.Points) == 0 {
		return TradeoffPoint{}, fmt.Errorf("experiments: empty tradeoff curve")
	}
	best := c.Points[0]
	for _, p := range c.Points[1:] {
		if p.Sum() < best.Sum() {
			best = p
		}
	}
	return best, nil
}

// IsConvexish reports whether the sum decreases to a single minimum and
// then increases along the temperature axis — the qualitative claim of
// Fig. 2(a).
func (c TradeoffCurve) IsConvexish() bool {
	if len(c.Points) < 3 {
		return false
	}
	sums := make([]float64, len(c.Points))
	for i, p := range c.Points {
		sums[i] = float64(p.Sum())
	}
	minIdx := 0
	for i, s := range sums {
		if s < sums[minIdx] {
			minIdx = i
		}
	}
	for i := 1; i <= minIdx; i++ {
		if sums[i] > sums[i-1]+1e-9 {
			return false
		}
	}
	for i := minIdx + 1; i < len(sums); i++ {
		if sums[i] < sums[i-1]-1e-9 {
			return false
		}
	}
	return true
}

// Tradeoff computes the steady-state fan/leakage tradeoff curve at one
// utilization across a set of fan speeds, using the analytic steady-state
// solver. Unstable (runaway) points are skipped. The per-RPM solves fan out
// over all cores.
func Tradeoff(cfg server.Config, util units.Percent, rpms []units.RPM) (TradeoffCurve, error) {
	return tradeoffWorkers(cfg, util, rpms, 0)
}

// tradeoffWorkers solves every RPM's operating point over a bounded pool;
// results are gathered in grid order, so the curve is identical to the
// serial evaluation for any worker count.
func tradeoffWorkers(cfg server.Config, util units.Percent, rpms []units.RPM, workers int) (TradeoffCurve, error) {
	if len(rpms) == 0 {
		rpms = denseRPMGrid()
	}
	points := make([]TradeoffPoint, len(rpms))
	stable := make([]bool, len(rpms))
	par.ForEach(len(rpms), workers, func(i int) {
		r := rpms[i]
		temp, err := server.SteadyTemp(cfg, util, r)
		if err != nil {
			return // thermally unstable operating point
		}
		points[i] = TradeoffPoint{
			RPM:      r,
			Temp:     temp,
			FanPower: cfg.Power.Fans.Power(r),
			Leakage:  cfg.Power.Leakage.Power(temp),
		}
		stable[i] = true
	})
	curve := TradeoffCurve{Util: util}
	for i, ok := range stable {
		if ok {
			curve.Points = append(curve.Points, points[i])
		}
	}
	if len(curve.Points) == 0 {
		return curve, fmt.Errorf("experiments: no stable operating points at U=%v", util)
	}
	sort.Slice(curve.Points, func(i, j int) bool { return curve.Points[i].Temp < curve.Points[j].Temp })
	return curve, nil
}

// Fig2a reproduces Figure 2(a): the tradeoff at 100% utilization over a
// dense RPM grid.
func Fig2a(cfg server.Config) (TradeoffCurve, error) {
	return Tradeoff(cfg, 100, denseRPMGrid())
}

// Fig2b reproduces Figure 2(b): fan+leakage curves for the paper's
// utilization levels. The pool fans out across utilization levels, with
// each level's grid solved serially inside its worker (so the total
// goroutine count stays bounded by one pool).
func Fig2b(cfg server.Config) ([]TradeoffCurve, error) {
	utils := []units.Percent{25, 50, 60, 75, 90, 100}
	out := make([]TradeoffCurve, len(utils))
	errs := make([]error, len(utils))
	par.ForEach(len(utils), 0, func(i int) {
		out[i], errs[i] = tradeoffWorkers(cfg, utils[i], denseRPMGrid(), 1)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: fig2b U=%v: %w", utils[i], err)
		}
	}
	return out, nil
}

// denseRPMGrid spans the fan range at 100 RPM resolution for smooth curves.
func denseRPMGrid() []units.RPM {
	var out []units.RPM
	for r := units.RPM(1800); r <= 4200; r += 100 {
		out = append(out, r)
	}
	return out
}
