package experiments

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/units"
)

// smallFacilityEval shrinks the sweep for fast deterministic tests.
func smallFacilityEval() FacilityEval {
	fe := DefaultFacilityEval()
	fe.Rack.Servers = 4
	fe.Rack.Horizon = 900
	fe.Rack.Stabilize = 60
	fe.SetpointsC = []units.Celsius{14, 26}
	return fe
}

// TestRackFacilityComparisonDeterministicAcrossWorkers is the golden-table
// contract extended to the facility layer: the serial reference and any
// parallel worker count must produce structurally identical rows and a
// byte-identical rendered table. Under -race this exercises the
// concurrent (setpoint, policy) runs.
func TestRackFacilityComparisonDeterministicAcrossWorkers(t *testing.T) {
	base := server.T3Config()
	fe := smallFacilityEval()

	fe.Rack.Workers = 1
	serial, err := RackFacilityComparison(base, fe)
	if err != nil {
		t.Fatal(err)
	}
	fe.Rack.Workers = 8
	parallel, err := RackFacilityComparison(base, fe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel rows differ from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	var a, b bytes.Buffer
	if err := FormatRackFacilityTable(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := FormatRackFacilityTable(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("rendered tables differ:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
	for _, col := range []string{"Supply(°C)", "Facility(Wh)", "PUE", "pue-aware", "round-robin"} {
		if !strings.Contains(a.String(), col) {
			t.Fatalf("table missing %q:\n%s", col, a.String())
		}
	}
	// 6 policies × 2 setpoints.
	if len(serial) != 12 {
		t.Fatalf("got %d rows, want 12", len(serial))
	}
}

// TestRackFacilityComparisonSweetSpot is the headline acceptance
// criterion: on the default sweep, total facility energy is minimized at
// a non-extreme setpoint — the cold end overpays the chiller, the warm
// end overpays server fans and leakage — for every policy.
func TestRackFacilityComparisonSweetSpot(t *testing.T) {
	fe := DefaultFacilityEval()
	rows, err := RackFacilityComparison(server.T3Config(), fe)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6*len(fe.SetpointsC) {
		t.Fatalf("got %d rows, want %d", len(rows), 6*len(fe.SetpointsC))
	}
	lo := float64(fe.SetpointsC[0])
	hi := float64(fe.SetpointsC[len(fe.SetpointsC)-1])
	for _, policy := range []string{"round-robin", "least-utilized", "coolest-first", "leakage-aware", "cap-aware", "pue-aware"} {
		sp, wh, err := FacilitySweetSpot(rows, policy)
		if err != nil {
			t.Fatal(err)
		}
		if sp == lo || sp == hi {
			t.Errorf("%s: facility minimum %.2f Wh at extreme setpoint %g °C", policy, wh, sp)
		}
	}
	if t.Failed() {
		var buf bytes.Buffer
		_ = FormatRackFacilityTable(&buf, rows)
		t.Logf("facility table:\n%s", buf.String())
	}
}

// TestRackFacilityComparisonPhysics checks the per-row invariants: PUE is
// at least 1 everywhere, the facility bill decomposes into wall plus
// cooling, every job is served, and a warmer aisle strictly raises every
// policy's wall (IT) energy while cutting the cooling energy per IT watt.
func TestRackFacilityComparisonPhysics(t *testing.T) {
	rows, err := RackFacilityComparison(server.T3Config(), smallFacilityEval())
	if err != nil {
		t.Fatal(err)
	}
	bySetpoint := map[float64]map[string]FacilityPolicyResult{}
	for _, r := range rows {
		if r.Rack.PUE < 1 {
			t.Fatalf("%s@%g: PUE %g < 1", r.Policy, r.SetpointC, r.Rack.PUE)
		}
		sum := r.WallWh() + r.CoolingWh()
		if rel := math.Abs(r.FacilityWh()-sum) / sum; rel > 1e-9 {
			t.Fatalf("%s@%g: facility %g != wall+cooling %g", r.Policy, r.SetpointC, r.FacilityWh(), sum)
		}
		// The short window legitimately leaves a few tail arrivals queued;
		// what must hold is that the vast majority of the trace is served.
		if r.Sched.Placed*10 < r.Sched.Submitted*8 {
			t.Fatalf("%s@%g: placed only %d of %d", r.Policy, r.SetpointC, r.Sched.Placed, r.Sched.Submitted)
		}
		if bySetpoint[r.SetpointC] == nil {
			bySetpoint[r.SetpointC] = map[string]FacilityPolicyResult{}
		}
		bySetpoint[r.SetpointC][r.Policy] = r
	}
	cold, warm := bySetpoint[14], bySetpoint[26]
	for policy, c := range cold {
		w := warm[policy]
		if w.WallWh() <= c.WallWh() {
			t.Errorf("%s: warm aisle wall %g Wh must exceed cold %g Wh (leakage+fans)", policy, w.WallWh(), c.WallWh())
		}
		if w.Rack.PUE >= c.Rack.PUE {
			t.Errorf("%s: warm aisle PUE %g must undercut cold %g (cheaper chiller)", policy, w.Rack.PUE, c.Rack.PUE)
		}
	}
}
