package experiments

import (
	"fmt"
	"io"

	"repro/internal/cooling"
	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/plot"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/units"
)

// FaultScenario is one named entry of the degradation catalogue: the fault
// schedule a run injects, over the otherwise identical rack and job trace.
type FaultScenario struct {
	Name     string
	Schedule fault.Schedule
}

// DefaultFaultScenarios returns the standard catalogue, escalating from
// the healthy baseline to a compound cascade:
//
//   - none: the empty schedule — the control row every degraded run is
//     read against (and the bit-identity anchor to the fault-free rack).
//   - fan-stick: one fan of the coldest-aisle server freezes at its
//     current speed 10 minutes in, permanently.
//   - psu-fail: the cold-aisle server every policy favours goes dark for
//     25 minutes, forcing a kill/requeue surge and a re-placement.
//   - crac-outage: the room unit dies for 15 minutes — an 8 °C heat soak
//     on every inlet with no cooling spend while it lasts.
//   - cascade: fan failure, then a permanent server loss, then the CRAC
//     outage on top, then a forced trip — the compound worst case.
func DefaultFaultScenarios() []FaultScenario {
	return []FaultScenario{
		{Name: "none"},
		{Name: "fan-stick", Schedule: fault.Schedule{Events: []fault.Event{
			{Kind: fault.FanStick, Server: 0, Fan: 0, At: 600},
		}}},
		{Name: "psu-fail", Schedule: fault.Schedule{Events: []fault.Event{
			{Kind: fault.PSUFail, Server: 0, At: 700, Clear: 2200},
		}}},
		{Name: "crac-outage", Schedule: fault.Schedule{Events: []fault.Event{
			{Kind: fault.CRACOutage, At: 1200, Clear: 2100},
		}}},
		{Name: "cascade", Schedule: fault.Schedule{Events: []fault.Event{
			{Kind: fault.FanFail, Server: 0, Fan: 0, At: 600},
			{Kind: fault.PSUFail, Server: 1, At: 1200},
			{Kind: fault.CRACOutage, At: 1800, Clear: 2700},
			{Kind: fault.ServerTrip, Server: 3, At: 2000},
		}}},
	}
}

// FaultEval parameterizes the scenario×policy degradation comparison.
type FaultEval struct {
	// Rack is the underlying rack experiment: size, trace, delivery chain,
	// worker bound, LUT disk cache, stepping mode.
	Rack RackEval
	// Scenarios is the fault catalogue; every policy runs every scenario.
	Scenarios []FaultScenario
	// SupplyC is the facility's cold-aisle setpoint. The default (the
	// 18 °C reference) leaves server ambients untouched, so the "none"
	// scenario stays comparable with the plain rack experiment.
	SupplyC units.Celsius
	// DropOnFault switches killed jobs from requeue-at-head to abandoned
	// (sched.TraceConfig.DropOnFault).
	DropOnFault bool
}

// DefaultFaultEval returns the standard degradation comparison: the
// default 8-server rack behind the default PSU/PDU chain and the reference
// facility loop, reliability sampled every 10 s, killed jobs requeued.
func DefaultFaultEval() FaultEval {
	ev := DefaultRackEval()
	psu, pdu := power.DefaultPSU(), power.DefaultPDU()
	ev.PSU, ev.PDU = &psu, &pdu
	ev.ReliabilitySampleEvery = 10
	return FaultEval{
		Rack:      ev,
		Scenarios: DefaultFaultScenarios(),
		SupplyC:   18,
	}
}

// RackFaultResult is one row of the scenario×policy table.
type RackFaultResult struct {
	Scenario string
	// HealthyAtEnd counts the servers still placeable when the horizon
	// closed — the survival column.
	HealthyAtEnd int
	RackPolicyResult
}

// RackFaultComparison drives every placement policy through every fault
// scenario on identical fresh racks over one shared Poisson trace, with
// the facility loop attached and reliability sampling on. Runs fan out
// over the worker pool (slot-per-cell); all scheduling and fault
// application stays serial, so rows are byte-identical for every worker
// count.
func RackFaultComparison(base server.Config, fe FaultEval) ([]RackFaultResult, error) {
	if len(fe.Scenarios) == 0 {
		return nil, fmt.Errorf("experiments: fault eval needs at least one scenario")
	}
	ev := fe.Rack
	s, err := prepareRackEval(base, ev)
	if err != nil {
		return nil, err
	}
	fac := cooling.DefaultFacility(fe.SupplyC)
	if err := fac.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: fault facility: %w", err)
	}
	psus := make([]*power.PSUModel, len(s.cfgs))
	for i := range psus {
		psus[i] = ev.PSU
	}
	models := make([]power.ServerModel, len(s.cfgs))
	for i, cfg := range s.cfgs {
		models[i] = cfg.Power
	}
	// The pue-aware tables must be built at the ambients the CRAC actually
	// supplies; at the reference setpoint (the default) the shift is zero
	// and the controllers' tables are reused as-is.
	ctlTabs := s.tables
	if delta := fac.AmbientDelta(); delta != 0 {
		shifted := make([]server.Config, len(s.cfgs))
		for i, cfg := range s.cfgs {
			shifted[i] = cfg.ShiftAmbient(delta)
		}
		if ctlTabs, err = buildRackTables(shifted, ev); err != nil {
			return nil, fmt.Errorf("experiments: fault tables: %w", err)
		}
	}

	// Serial preparation: fresh stateful policies per scenario×policy cell.
	type cell struct {
		scenario FaultScenario
		policy   sched.Policy
	}
	var cells []cell
	for _, sc := range fe.Scenarios {
		la, err := sched.NewLeakageAwareFromTables(s.tables)
		if err != nil {
			return nil, err
		}
		ca, err := sched.NewCapAwareFromTables(s.tables, models, psus)
		if err != nil {
			return nil, err
		}
		pa, err := sched.NewPUEAwareFromTables(ctlTabs, models, psus, fac)
		if err != nil {
			return nil, err
		}
		for _, p := range []sched.Policy{
			sched.NewRoundRobin(),
			sched.NewLeastUtilized(),
			sched.NewCoolestFirst(),
			la,
			ca,
			pa,
		} {
			cells = append(cells, cell{scenario: sc, policy: p})
		}
	}

	results := make([]RackFaultResult, len(cells))
	errs := make([]error, len(cells))
	par.ForEach(len(cells), ev.Workers, func(i int) {
		c := cells[i]
		facCopy := fac
		r, err := rackFor(s.cfgs, ctlTabs, ev, &facCopy)
		if err != nil {
			errs[i] = err
			return
		}
		if err := sched.Settle(r, ev.Dt, ev.Stabilize, ev.EventStepping); err != nil {
			errs[i] = err
			return
		}
		r.ResetAccounting()
		tc := sched.TraceConfig{
			Dt: ev.Dt, Horizon: ev.Horizon, WallCapW: ev.WallCapW,
			EventStepping: ev.EventStepping,
			DropOnFault:   fe.DropOnFault,
			Metrics:       ev.Metrics,
		}
		if len(c.scenario.Schedule.Events) > 0 {
			sc := c.scenario.Schedule
			tc.Faults = &sc
		}
		if ev.EventStepping {
			// Align kernel wakes with the reliability cadence so samples
			// land on identical instants in both stepping modes.
			tc.SampleEvery = ev.ReliabilitySampleEvery
		}
		sres, err := sched.RunTraceCfg(r, s.jobs, c.policy, tc)
		if err != nil {
			errs[i] = err
			return
		}
		healthy := 0
		for si := 0; si < r.NumServers(); si++ {
			if r.Health(si) == rack.Healthy {
				healthy++
			}
		}
		results[i] = RackFaultResult{
			Scenario:     c.scenario.Name,
			HealthyAtEnd: healthy,
			RackPolicyResult: RackPolicyResult{
				Policy: c.policy.Name(),
				CapW:   ev.WallCapW,
				Sched:  sres,
				Rack:   r.Telemetry(),
			},
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: fault run %s/%s: %w",
				cells[i].scenario.Name, cells[i].policy.Name(), err)
		}
	}
	return results, nil
}

// FormatRackFaultTable renders the scenario×policy degradation comparison:
// the energy bill, the disruption (requeues, losses, destroyed
// job-seconds), the thermal peak, the reliability roll-up and the
// surviving capacity per cell.
func FormatRackFaultTable(w io.Writer, rows []RackFaultResult) error {
	headers := []string{
		"Scenario", "Policy", "Wh(DC)", "MaxCPU(°C)",
		"Req", "Lost", "LostJob(s)", "Done", "Wait(s)",
		"Accel", "Above75", "Surv",
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Scenario,
			r.Policy,
			fmt.Sprintf("%.2f", r.TotalWh()),
			fmt.Sprintf("%.1f", r.Rack.MaxCPUTempC),
			fmt.Sprintf("%d", r.Sched.Requeued),
			fmt.Sprintf("%d", r.Sched.Lost),
			fmt.Sprintf("%.0f", r.Sched.LostJobSeconds),
			fmt.Sprintf("%d/%d", r.Sched.Completed, r.Sched.Submitted),
			fmt.Sprintf("%.1f", r.Sched.MeanWaitSec),
			fmt.Sprintf("%.2f", r.Rack.WorstAccel),
			fmt.Sprintf("%.1f%%", 100*r.Rack.WorstAbove75),
			fmt.Sprintf("%d/%d", r.HealthyAtEnd, r.Rack.Servers),
		})
	}
	return plot.Table(w, headers, cells)
}
