package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/control"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/server"
	"repro/internal/units"
)

func TestRunTransientProtocol(t *testing.T) {
	tc := DefaultTransient(4200, 100)
	tc.LoadFor = 15 * 60 // shortened but still settles at 4200
	res, err := RunTransient(server.T3Config(), tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TimeMin) == 0 || len(res.TimeMin) != len(res.TempC) {
		t.Fatalf("trace lengths: %d/%d", len(res.TimeMin), len(res.TempC))
	}
	// The trace covers stabilization + load + idle tail.
	wantDur := (tc.Stabilize + tc.LoadFor + tc.IdleTail) / 60
	last := res.TimeMin[len(res.TimeMin)-1]
	if math.Abs(last-wantDur) > 1 {
		t.Fatalf("trace ends at %g min, want ~%g", last, wantDur)
	}
	// Steady temperature near the Fig. 1(a) anchor for 4200 RPM.
	if res.SteadyC < 48 || res.SteadyC > 57 {
		t.Fatalf("steady temp = %g, want ~52", res.SteadyC)
	}
	// Temperature returns toward idle in the tail.
	finalTemp := res.TempC[len(res.TempC)-1]
	if finalTemp > res.SteadyC-10 {
		t.Fatalf("idle tail temp %g did not drop from %g", finalTemp, res.SteadyC)
	}
}

func TestRunTransientValidation(t *testing.T) {
	tc := DefaultTransient(3000, 50)
	tc.Dt = 0
	if _, err := RunTransient(server.T3Config(), tc); err == nil {
		t.Fatal("zero dt should error")
	}
}

func TestFig1aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long transient sweep")
	}
	results, err := Fig1a(server.T3Config(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("curves = %d", len(results))
	}
	// Steady temperature decreases with fan speed (85 → 52 span).
	for i := 1; i < len(results); i++ {
		if results[i].SteadyC >= results[i-1].SteadyC {
			t.Fatalf("steady temps not decreasing: %v then %v",
				results[i-1].SteadyC, results[i].SteadyC)
		}
	}
	span := results[0].SteadyC - results[len(results)-1].SteadyC
	if span < 20 {
		t.Fatalf("temp span across fan speeds = %g, want ≳30", span)
	}
	// Settling is slower at 1800 than at 4200.
	if results[0].SettleAt > 0 && results[len(results)-1].SettleAt > 0 &&
		results[0].SettleAt <= results[len(results)-1].SettleAt {
		t.Fatalf("1800 RPM settle %g min should exceed 4200's %g",
			results[0].SettleAt, results[len(results)-1].SettleAt)
	}
}

func TestFig1bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long transient sweep")
	}
	results, err := Fig1b(server.T3Config(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("curves = %d", len(results))
	}
	// Steady temps increase with utilization.
	for i := 1; i < len(results); i++ {
		if results[i].SteadyC <= results[i-1].SteadyC {
			t.Fatalf("steady temps not increasing with util")
		}
	}
	// PWM produces visible oscillation in the loaded phase at partial load.
	mid := results[1] // 50%
	var loaded []float64
	for i, tm := range mid.TimeMin {
		if tm > 20 && tm < 30 {
			loaded = append(loaded, mid.TempC[i])
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range loaded {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo < 1 {
		t.Fatalf("no PWM thermal oscillation visible: range %g", hi-lo)
	}
}

func TestFig2aConvexWithMinAt2400(t *testing.T) {
	curve, err := Fig2a(server.T3Config())
	if err != nil {
		t.Fatal(err)
	}
	if !curve.IsConvexish() {
		t.Fatal("Fig 2a sum curve is not convex-like")
	}
	opt, err := curve.Optimum()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: minimum around 70 °C corresponding to 2400 RPM.
	if opt.RPM < 2100 || opt.RPM > 2700 {
		t.Fatalf("optimum at %v, want ≈2400 RPM", opt.RPM)
	}
	if opt.Temp < 60 || opt.Temp > 73 {
		t.Fatalf("optimum temp %v, want ≈68-70 °C", opt.Temp)
	}
}

func TestFig2aComponentsMonotone(t *testing.T) {
	curve, err := Fig2a(server.T3Config())
	if err != nil {
		t.Fatal(err)
	}
	// Along rising temperature: leakage rises, fan power falls.
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].Leakage <= curve.Points[i-1].Leakage {
			t.Fatal("leakage not increasing with temperature")
		}
		if curve.Points[i].FanPower >= curve.Points[i-1].FanPower {
			t.Fatal("fan power not decreasing with temperature")
		}
	}
}

func TestFig2bEveryCurveHasOptimum(t *testing.T) {
	curves, err := Fig2b(server.T3Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 6 {
		t.Fatalf("curves = %d", len(curves))
	}
	var prevOptTemp units.Celsius
	for i, c := range curves {
		opt, err := c.Optimum()
		if err != nil {
			t.Fatal(err)
		}
		// Paper: "for all the optimum points, average temperature is never
		// higher than 70°C" (small margin for calibration).
		if opt.Temp > 72 {
			t.Fatalf("U=%v optimum temp %v > 70°C", c.Util, opt.Temp)
		}
		if i > 0 && opt.Temp+10 < prevOptTemp {
			t.Fatalf("optimum temps wildly non-monotonic at U=%v", c.Util)
		}
		prevOptTemp = opt.Temp
	}
}

func TestTradeoffUnknownUtil(t *testing.T) {
	// Even 0% utilization has stable points everywhere.
	c, err := Tradeoff(server.T3Config(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) == 0 {
		t.Fatal("no points at idle")
	}
}

func TestRunControlledValidation(t *testing.T) {
	ec := DefaultEval()
	if _, err := RunControlled(server.T3Config(), nil, control.NewDefault(), ec); err == nil {
		t.Error("nil profile should error")
	}
	prof := loadgen.Constant{Level: 50, Dur: 60}
	if _, err := RunControlled(server.T3Config(), prof, nil, ec); err == nil {
		t.Error("nil controller should error")
	}
	bad := ec
	bad.Dt = 0
	if _, err := RunControlled(server.T3Config(), prof, control.NewDefault(), bad); err == nil {
		t.Error("zero dt should error")
	}
}

func TestRunControlledDefaultBasics(t *testing.T) {
	cfg := server.T3Config()
	prof := loadgen.Constant{Level: 60, Dur: 10 * 60}
	ec := DefaultEval()
	res, err := RunControlled(cfg, prof, control.NewDefault(), ec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Controller != "Default" {
		t.Fatal("controller name")
	}
	// Default holds 3300 the whole time with no changes in the window.
	if res.FanChanges != 0 {
		t.Fatalf("default fan changes = %d", res.FanChanges)
	}
	if math.Abs(res.AvgRPM-3300) > 5 {
		t.Fatalf("default avg RPM = %g", res.AvgRPM)
	}
	if res.EnergyKWh <= 0 || res.PeakPowerW <= 0 || res.MaxTempC <= 0 {
		t.Fatalf("metrics missing: %+v", res)
	}
	// 10 minutes at ~480-520 W is ~0.085 kWh.
	if res.EnergyKWh < 0.05 || res.EnergyKWh > 0.12 {
		t.Fatalf("energy = %g kWh", res.EnergyKWh)
	}
	if len(res.TimeMin) == 0 || len(res.TimeMin) != len(res.TempC) {
		t.Fatal("traces missing")
	}
}

func TestRunControlledLUTSavesEnergy(t *testing.T) {
	cfg := server.T3Config()
	prof := loadgen.Constant{Level: 50, Dur: 20 * 60}
	ec := DefaultEval()

	defRes, err := RunControlled(cfg, prof, control.NewDefault(), ec)
	if err != nil {
		t.Fatal(err)
	}
	table, err := lut.Build(cfg, lut.DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	lc, err := control.NewLUT(table, control.DefaultLUT())
	if err != nil {
		t.Fatal(err)
	}
	lutRes, err := RunControlled(cfg, prof, lc, ec)
	if err != nil {
		t.Fatal(err)
	}
	if lutRes.EnergyKWh >= defRes.EnergyKWh {
		t.Fatalf("LUT %g kWh should beat default %g kWh", lutRes.EnergyKWh, defRes.EnergyKWh)
	}
	if lutRes.AvgRPM >= defRes.AvgRPM {
		t.Fatalf("LUT avg RPM %g should be below default %g", lutRes.AvgRPM, defRes.AvgRPM)
	}
	// LUT runs hotter but below the 75 °C reliability target (+ sensor noise).
	if lutRes.MaxTempC <= defRes.MaxTempC {
		t.Fatal("LUT should run hotter than the overcooled default")
	}
	if lutRes.MaxTempC > 76 {
		t.Fatalf("LUT max temp %g violates the 75°C target", lutRes.MaxTempC)
	}
}

func TestMovingAvg(t *testing.T) {
	m := newMovingAvg(3, 1)
	if m.mean() != 0 {
		t.Fatal("empty mean")
	}
	m.add(10)
	if m.mean() != 10 {
		t.Fatalf("mean after 1 = %g", m.mean())
	}
	m.add(20)
	m.add(30)
	if m.mean() != 20 {
		t.Fatalf("mean after 3 = %g", m.mean())
	}
	m.add(40) // evicts 10
	if m.mean() != 30 {
		t.Fatalf("rolling mean = %g", m.mean())
	}
	// Degenerate window still works.
	tiny := newMovingAvg(0.1, 1)
	tiny.add(5)
	if tiny.mean() != 5 {
		t.Fatal("tiny window broken")
	}
}

func TestIdleEnergyKWh(t *testing.T) {
	cfg := server.T3Config()
	got := IdleEnergyKWh(cfg, 4800)
	want := (365.0 + 40.0) * 4800 / 3.6e6
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("idle energy = %g, want %g", got, want)
	}
}

func TestSeriesHelpers(t *testing.T) {
	tr := []TransientResult{{Label: "a", TimeMin: []float64{0, 1}, TempC: []float64{40, 50}}}
	s := SeriesFromTransients(tr)
	if len(s) != 1 || s[0].Name != "a" || len(s[0].X) != 2 {
		t.Fatalf("series = %+v", s)
	}
	curve := TradeoffCurve{Util: 100, Points: []TradeoffPoint{
		{RPM: 4200, Temp: 52, FanPower: 26, Leakage: 14},
		{RPM: 1800, Temp: 85, FanPower: 2, Leakage: 28},
	}}
	ss := SeriesFromTradeoff(curve)
	if len(ss) != 3 || !strings.Contains(ss[2].Name, "Fan+Leakage") {
		t.Fatalf("tradeoff series = %+v", ss)
	}
}

func TestConvexishDetector(t *testing.T) {
	mk := func(sums ...float64) TradeoffCurve {
		c := TradeoffCurve{}
		for i, s := range sums {
			c.Points = append(c.Points, TradeoffPoint{Temp: units.Celsius(i), FanPower: units.Watts(s)})
		}
		return c
	}
	if !mk(5, 3, 2, 4, 8).IsConvexish() {
		t.Error("valley should be convexish")
	}
	if mk(5, 3, 6, 2, 8).IsConvexish() {
		t.Error("double dip should not be convexish")
	}
	if mk(1, 2).IsConvexish() {
		t.Error("two points cannot be convexish")
	}
	if _, err := (TradeoffCurve{}).Optimum(); err == nil {
		t.Error("empty optimum should error")
	}
}
