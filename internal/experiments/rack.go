package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/control"
	"repro/internal/cooling"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/plot"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/units"
)

// RackEval parameterizes the rack-scale policy comparison: a heterogeneous
// rack (cold/hot-aisle ambient gradient, mixed DIMM populations), each
// server under its own paper-style LUT fan controller, driven by one
// Poisson job trace per policy.
type RackEval struct {
	Servers   int     // rack size
	Dt        float64 // simulation step, seconds
	Horizon   float64 // measured window, seconds
	Stabilize float64 // idle settling before the measured window, seconds

	TraceSeed    int64
	Rate         float64         // job arrivals per second
	MeanDuration float64         // mean job service time, seconds
	Demands      []units.Percent // per-job demand levels

	// Workers bounds the experiment's fan-outs — the per-policy runs and
	// the LUT table builds: ≤ 0 = GOMAXPROCS, 1 = the serial reference
	// path. Rack stepping inside the comparison is deliberately serial
	// per policy: the concurrent policy runs already saturate the
	// pool, and a nested per-step fan-out would only multiply goroutines
	// (Workers²) without adding parallelism. Results are identical for
	// every value.
	Workers int

	// Power-delivery chain. PSU, when non-nil, is applied to every slot;
	// PDU is the shared rack distribution unit. Both nil (the default)
	// keeps the chain ideal: wall telemetry mirrors the DC side and every
	// physics metric is bit-identical to the chain-less experiment.
	PSU *power.PSUModel
	PDU *power.PDUModel

	// WallCapW, when positive, enforces a rack-level wall-power budget in
	// RackPolicyComparison runs and fixes the capped half of
	// RackACComparison; zero means uncapped runs and an automatically
	// derived cap for the AC table (see AutoCapFraction).
	WallCapW float64

	// LUTCacheDir, when non-empty, persists built LUTs to disk keyed by
	// config hash (lut.DiskCache), so repeated processes stop rebuilding
	// identical per-ambient tables.
	LUTCacheDir string

	// EventStepping selects the event-driven trace kernel for every run
	// (stabilization window included): the rack advances per scheduling
	// event instead of per fixed dt, several-fold faster on the default
	// Poisson trace with identical placements and energies within the
	// macro-stepping tolerance (see sched.TraceConfig.EventStepping).
	// false is the bit-exact fixed-dt reference path.
	EventStepping bool

	// Backfill enables the dispatcher's FIFO backfill pass in every run
	// (sched.TraceConfig.Backfill): jobs queued behind a blocked head may
	// place on servers the policy accepts, under the same cap admission the
	// head failed. false — the default — keeps strict FIFO, bit-identical
	// to the pre-backfill experiment.
	Backfill bool

	// FanControl selects the per-server fan controller: "" or "lut" (the
	// default) builds the paper's utilization-indexed LUT controller per
	// slot; "bang" runs the reactive Section V bang-bang policy instead.
	// The LUT grid is still built either way — the table-driven placement
	// policies consume it regardless of who drives the fans.
	FanControl string

	// Policy, when non-empty, restricts RackPolicyComparison and
	// RackACComparison to the single named placement policy (a
	// sched.Policy.Name(), e.g. "round-robin"). The shared Metrics
	// registry aggregates every run it instruments, so a full comparison
	// mixes macro-stepping and deliberately conservative policies in one
	// pin-reason dump; filtering to one policy makes the per-trace pin
	// shares readable. "" — the default — runs the full set. The facility
	// and fault experiments build their own policy cells and ignore it.
	Policy string

	// ReliabilitySampleEvery, in seconds, turns on the racks' per-server
	// reliability roll-up (rack.Config.ReliabilitySampleEvery). 0 — the
	// default — keeps sampling off and every metric bit-identical to the
	// pre-roll-up experiment.
	ReliabilitySampleEvery float64

	// Ctx, when non-nil, makes every run in the comparison cooperatively
	// cancellable (sched.TraceConfig.Ctx): each checks it at its decision-
	// step boundaries and a cancelled run surfaces a *sched.Cancelled —
	// carrying a resumable checkpoint — through the comparison's error.
	Ctx context.Context

	// CheckpointEvery and CheckpointSink enable periodic checkpoints of the
	// measured trace (sched.TraceConfig.CheckpointEvery/CheckpointSink).
	// Because a checkpoint captures exactly one run, both require Policy to
	// name a single placement policy; a full five-policy comparison has no
	// well-defined "the run" to snapshot.
	CheckpointEvery float64
	CheckpointSink  func(sched.Checkpoint) error

	// Resume, when non-nil, resumes the single-policy run from a prior
	// checkpoint instead of starting fresh: the stabilization window and
	// accounting reset are skipped (their effect is part of the captured
	// state) and the run continues through sched.ResumeTraceCfg. Requires
	// Policy, and the eval must otherwise match the checkpoint's
	// configuration (the resume cross-checks enforce it).
	Resume *sched.Checkpoint

	// Metrics, when non-nil, is the run-metrics registry every measured
	// trace of the experiment instruments (sched.TraceConfig.Metrics). One
	// registry is shared across all concurrently running cells: the
	// instrumentation uses only commutative updates (internal/obs), so the
	// final dump is byte-identical for every Workers value — the dump is
	// the experiment's roll-up, not one run's. Stabilization windows
	// (sched.Settle) are deliberately uninstrumented: the counters
	// describe the measured horizon, so the pin-reason identity holds
	// against the reported RackSteps. nil — the default — records nothing
	// and leaves every output bit-identical.
	Metrics *obs.Registry
}

// DefaultRackEval returns an 8-server rack under a one-hour trace with
// ~30% mean offered load — enough contention that placement matters,
// enough headroom that every policy can always place eventually.
func DefaultRackEval() RackEval {
	return RackEval{
		Servers:      8,
		Dt:           1,
		Horizon:      3600,
		Stabilize:    300,
		TraceSeed:    42,
		Rate:         0.02,
		MeanDuration: 300,
		Demands:      []units.Percent{20, 40, 60},
	}
}

// rackAmbient returns server i's inlet ambient: a cold→hot aisle gradient
// repeating every four slots (21, 24, 27, 30 °C), the heterogeneity that
// gives thermally aware placement something to exploit.
func rackAmbient(i int) units.Celsius { return units.Celsius(21 + 3*(i%4)) }

// RackServerConfigs builds the heterogeneous per-slot server
// configurations from a base config: the ambient gradient, a mixed DIMM
// population (odd slots run 24 instead of 32 DIMMs) and per-server sensor
// noise seeds.
func RackServerConfigs(base server.Config, n int) []server.Config {
	cfgs := make([]server.Config, n)
	for i := range cfgs {
		cfg := base
		cfg.Ambient = rackAmbient(i)
		cfg.NoiseSeed = base.NoiseSeed + int64(1000*i)
		if i%2 == 1 {
			cfg.Mem.NumDIMMs = 24
		}
		cfgs[i] = cfg
	}
	return cfgs
}

// rackFor assembles a fresh rack over cfgs, each server under its own LUT
// fan controller built from that server's configuration (tables shared
// read-only across servers with identical steady-state physics), with the
// experiment's power-delivery chain — and, when fac is non-nil, the
// facility cooling loop — attached. The rack steps serially: within the
// comparison, parallelism lives at the policy level (see RackEval.Workers).
func rackFor(cfgs []server.Config, tables []*lut.Table, ev RackEval, fac *cooling.Facility) (*rack.Rack, error) {
	rc, err := rackConfigFor(cfgs, tables, ev, fac)
	if err != nil {
		return nil, err
	}
	return rack.New(rc)
}

// rackConfigFor builds the rack configuration rackFor instantiates —
// per-slot specs with fresh fan controllers and the experiment's delivery
// chain — without constructing the rack, so the room experiment can hand
// the same configs to room.New (which owns the facility and forces the
// inner Workers to 1).
func rackConfigFor(cfgs []server.Config, tables []*lut.Table, ev RackEval, fac *cooling.Facility) (rack.Config, error) {
	specs := make([]rack.ServerSpec, len(cfgs))
	for i, cfg := range cfgs {
		var ctl control.Controller
		switch ev.FanControl {
		case "", "lut":
			lc, err := control.NewLUT(tables[i], control.DefaultLUT())
			if err != nil {
				return rack.Config{}, err
			}
			ctl = lc
		case "bang", "bangbang":
			bb, err := control.NewBangBang(control.DefaultBangBang())
			if err != nil {
				return rack.Config{}, err
			}
			ctl = bb
		default:
			return rack.Config{}, fmt.Errorf("experiments: unknown fan control %q (want lut or bang)", ev.FanControl)
		}
		specs[i] = rack.ServerSpec{
			Name:       fmt.Sprintf("srv%02d-amb%g", i, float64(cfg.Ambient)),
			Config:     cfg,
			Controller: ctl,
		}
	}
	return rack.Config{
		Servers: specs, Workers: 1, PSU: ev.PSU, PDU: ev.PDU, Facility: fac,
		ReliabilitySampleEvery: ev.ReliabilitySampleEvery,
	}, nil
}

// buildRackTables builds one LUT per distinct server configuration
// (ignoring noise seeds), in slot order, consulting the on-disk cache
// when the eval names a directory.
func buildRackTables(cfgs []server.Config, ev RackEval) ([]*lut.Table, error) {
	bc := lut.DefaultBuild()
	bc.Workers = ev.Workers
	tables, err := lut.DiskCache{Dir: ev.LUTCacheDir}.BuildPerConfig(cfgs, bc)
	if err != nil {
		return nil, fmt.Errorf("experiments: rack LUTs: %w", err)
	}
	return tables, nil
}

// RackPolicyResult is one row of the policy×metric comparison table.
type RackPolicyResult struct {
	Policy string
	CapW   float64 // enforced wall budget of this run; 0 = uncapped
	Sched  sched.Result
	Rack   rack.Telemetry
}

// TotalWh returns the rack DC energy in watt-hours over the measured window.
func (r RackPolicyResult) TotalWh() float64 { return r.Rack.TotalEnergyKWh * 1000 }

// FanWh returns the fan-only energy in watt-hours.
func (r RackPolicyResult) FanWh() float64 { return r.Rack.FanEnergyKWh * 1000 }

// WallWh returns the AC energy drawn at the utility feed in watt-hours.
func (r RackPolicyResult) WallWh() float64 { return r.Rack.WallEnergyKWh * 1000 }

// LossWh returns the PSU+PDU conversion losses in watt-hours.
func (r RackPolicyResult) LossWh() float64 { return r.Rack.LossEnergyKWh * 1000 }

// RackPolicies returns the five placement policies under comparison, in
// table order. The leakage-aware and cap-aware policies reuse the per-slot
// tables the rack's fan controllers are built from — one grid of
// steady-state solves serves all three consumers; cap-aware additionally
// sees each slot's PSU so it can rank placements by marginal wall power.
func RackPolicies(cfgs []server.Config, tables []*lut.Table, psus []*power.PSUModel) ([]sched.Policy, error) {
	la, err := sched.NewLeakageAwareFromTables(tables)
	if err != nil {
		return nil, err
	}
	models := make([]power.ServerModel, len(cfgs))
	for i, cfg := range cfgs {
		models[i] = cfg.Power
	}
	ca, err := sched.NewCapAwareFromTables(tables, models, psus)
	if err != nil {
		return nil, err
	}
	return []sched.Policy{
		sched.NewRoundRobin(),
		sched.NewLeastUtilized(),
		sched.NewCoolestFirst(),
		la,
		ca,
	}, nil
}

// rackSetup is the shared read-only state of one comparison: per-slot
// configurations and tables, the per-slot PSU view, the policy set, and
// the job trace every run serves.
type rackSetup struct {
	cfgs     []server.Config
	tables   []*lut.Table
	policies []sched.Policy
	jobs     []sched.Job
}

// prepareRackEval validates the eval and builds the shared setup.
func prepareRackEval(base server.Config, ev RackEval) (*rackSetup, error) {
	if ev.Servers <= 0 || ev.Dt <= 0 || ev.Horizon <= 0 {
		return nil, fmt.Errorf("experiments: rack eval needs positive servers/dt/horizon, got %+v", ev)
	}
	if (ev.CheckpointSink != nil || ev.CheckpointEvery != 0 || ev.Resume != nil) && ev.Policy == "" {
		return nil, fmt.Errorf("experiments: checkpoint/resume needs Policy to name a single placement policy")
	}
	cfgs := RackServerConfigs(base, ev.Servers)
	tables, err := buildRackTables(cfgs, ev)
	if err != nil {
		return nil, err
	}
	psus := make([]*power.PSUModel, len(cfgs))
	for i := range psus {
		psus[i] = ev.PSU
	}
	policies, err := RackPolicies(cfgs, tables, psus)
	if err != nil {
		return nil, err
	}
	if ev.Policy != "" {
		var kept []sched.Policy
		names := make([]string, len(policies))
		for i, p := range policies {
			names[i] = p.Name()
			if names[i] == ev.Policy {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("experiments: unknown policy %q (want one of %v)", ev.Policy, names)
		}
		policies = kept
	}
	specs, err := loadgen.PoissonTrace(loadgen.PoissonTraceConfig{
		Seed:         ev.TraceSeed,
		Horizon:      ev.Horizon,
		Rate:         ev.Rate,
		MeanDuration: ev.MeanDuration,
		Demands:      ev.Demands,
	})
	if err != nil {
		return nil, err
	}
	return &rackSetup{cfgs: cfgs, tables: tables, policies: policies, jobs: sched.JobsFromSpecs(specs)}, nil
}

// runRackPolicies runs every policy at one cap setting. Policy runs fan
// out over the worker pool (slot-per-policy); each run's rack steps
// serially. All scheduling decisions are serial, so rows are
// byte-identical for every worker count.
func (s *rackSetup) runRackPolicies(ev RackEval, capW float64) ([]RackPolicyResult, error) {
	results := make([]RackPolicyResult, len(s.policies))
	errs := make([]error, len(s.policies))
	par.ForEach(len(s.policies), ev.Workers, func(i int) {
		results[i], errs[i] = s.runRackPolicy(s.policies[i], ev, capW)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: rack policy %s: %w", s.policies[i].Name(), err)
		}
	}
	return results, nil
}

// RackPolicyComparison runs the same Poisson job trace across all five
// placement policies on identical fresh racks and returns one result row
// per policy, honoring the eval's PSU/PDU chain and wall cap (if any).
func RackPolicyComparison(base server.Config, ev RackEval) ([]RackPolicyResult, error) {
	s, err := prepareRackEval(base, ev)
	if err != nil {
		return nil, err
	}
	return s.runRackPolicies(ev, ev.WallCapW)
}

// AutoCapFraction scales the uncapped round-robin peak wall draw into the
// automatic budget of RackACComparison's capped half when the eval does
// not fix one: tight enough that placements defer around the peak, loose
// enough that the trace still completes.
const AutoCapFraction = 0.97

// RackACResult is the AC-side comparison: every policy uncapped and under
// the wall budget, over the identical job trace.
type RackACResult struct {
	Uncapped []RackPolicyResult
	Capped   []RackPolicyResult
	CapW     float64 // the enforced budget of the capped half
	AutoCap  bool    // CapW was derived, not configured
}

// Rows returns all result rows, uncapped first — the AC table's order.
func (r *RackACResult) Rows() []RackPolicyResult {
	return append(append([]RackPolicyResult(nil), r.Uncapped...), r.Capped...)
}

// RackACComparison runs the full AC-side experiment: all five policies
// uncapped, then all five under the wall budget (ev.WallCapW, or the
// automatic AutoCapFraction of round-robin's uncapped peak wall draw).
// One LUT grid and one job trace serve all ten runs.
func RackACComparison(base server.Config, ev RackEval) (*RackACResult, error) {
	s, err := prepareRackEval(base, ev)
	if err != nil {
		return nil, err
	}
	uncapped, err := s.runRackPolicies(ev, 0)
	if err != nil {
		return nil, err
	}
	res := &RackACResult{Uncapped: uncapped, CapW: ev.WallCapW}
	if res.CapW <= 0 {
		res.CapW = AutoCapFraction * uncapped[0].Rack.PeakWallPowerW
		res.AutoCap = true
	}
	res.Capped, err = s.runRackPolicies(ev, res.CapW)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runRackPolicy is one policy's full run: fresh rack, idle stabilization,
// accounting reset, then the measured trace window under the cap. With
// ev.Resume set, stabilization and the reset are skipped — their effect
// is already inside the checkpointed state — and the trace continues from
// the checkpoint's cursor instead.
func (s *rackSetup) runRackPolicy(p sched.Policy, ev RackEval, capW float64) (RackPolicyResult, error) {
	r, err := rackFor(s.cfgs, s.tables, ev, nil)
	if err != nil {
		return RackPolicyResult{}, err
	}
	tc := sched.TraceConfig{
		Dt: ev.Dt, Horizon: ev.Horizon, WallCapW: capW, EventStepping: ev.EventStepping,
		Backfill: ev.Backfill, Metrics: ev.Metrics,
		Ctx: ev.Ctx, CheckpointEvery: ev.CheckpointEvery, CheckpointSink: ev.CheckpointSink,
	}
	var sres sched.Result
	if ev.Resume != nil {
		sres, err = sched.ResumeTraceCfg(r, s.jobs, p, tc, *ev.Resume)
	} else {
		if err := sched.Settle(r, ev.Dt, ev.Stabilize, ev.EventStepping); err != nil {
			return RackPolicyResult{}, err
		}
		r.ResetAccounting()
		sres, err = sched.RunTraceCfg(r, s.jobs, p, tc)
	}
	if err != nil {
		// Partial results ride along with cancellation: the caller can show
		// what the run had accumulated before writing the checkpoint out.
		return RackPolicyResult{Policy: p.Name(), CapW: capW, Sched: sres, Rack: r.Telemetry()}, err
	}
	return RackPolicyResult{Policy: p.Name(), CapW: capW, Sched: sres, Rack: r.Telemetry()}, nil
}

// FormatRackACTable renders the AC-side comparison: DC vs wall energy,
// conversion losses, peak wall draw and cap behaviour per policy, for the
// uncapped rows followed by the capped rows.
func FormatRackACTable(w io.Writer, res *RackACResult) error {
	headers := []string{
		"Policy", "Cap(W)", "Wh(DC)", "Wh(AC)", "Loss(Wh)",
		"PeakDC(W)", "PeakWall(W)", "Defer", "Placed", "Done", "Wait(s)",
	}
	var cells [][]string
	for _, r := range res.Rows() {
		capCell := "-"
		if r.CapW > 0 {
			capCell = fmt.Sprintf("%.0f", r.CapW)
		}
		cells = append(cells, []string{
			r.Policy,
			capCell,
			fmt.Sprintf("%.2f", r.TotalWh()),
			fmt.Sprintf("%.2f", r.WallWh()),
			fmt.Sprintf("%.2f", r.LossWh()),
			fmt.Sprintf("%.0f", r.Rack.PeakPowerW),
			fmt.Sprintf("%.0f", r.Rack.PeakWallPowerW),
			fmt.Sprintf("%d", r.Sched.Deferrals),
			fmt.Sprintf("%d/%d", r.Sched.Placed, r.Sched.Submitted),
			fmt.Sprintf("%d", r.Sched.Completed),
			fmt.Sprintf("%.1f", r.Sched.MeanWaitSec),
		})
	}
	return plot.Table(w, headers, cells)
}

// FormatRackTable renders the policy×metric comparison.
func FormatRackTable(w io.Writer, rows []RackPolicyResult) error {
	headers := []string{
		"Policy", "Total(Wh)", "Fan(Wh)", "Peak(W)",
		"MaxCPU(°C)", "MaxDIMM(°C)", "MaxInlet(°C)",
		"#fan", "Placed", "Done", "Wait(s)", "MaxQ",
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Policy,
			fmt.Sprintf("%.2f", r.TotalWh()),
			fmt.Sprintf("%.2f", r.FanWh()),
			fmt.Sprintf("%.0f", r.Rack.PeakPowerW),
			fmt.Sprintf("%.1f", r.Rack.MaxCPUTempC),
			fmt.Sprintf("%.1f", r.Rack.MaxDIMMTempC),
			fmt.Sprintf("%.1f", r.Rack.MaxInletC),
			fmt.Sprintf("%d", r.Rack.FanChanges),
			fmt.Sprintf("%d/%d", r.Sched.Placed, r.Sched.Submitted),
			fmt.Sprintf("%d", r.Sched.Completed),
			fmt.Sprintf("%.1f", r.Sched.MeanWaitSec),
			fmt.Sprintf("%d", r.Sched.MaxQueueLen),
		})
	}
	return plot.Table(w, headers, cells)
}
