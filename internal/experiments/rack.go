package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/control"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/par"
	"repro/internal/plot"
	"repro/internal/rack"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/units"
)

// RackEval parameterizes the rack-scale policy comparison: a heterogeneous
// rack (cold/hot-aisle ambient gradient, mixed DIMM populations), each
// server under its own paper-style LUT fan controller, driven by one
// Poisson job trace per policy.
type RackEval struct {
	Servers   int     // rack size
	Dt        float64 // simulation step, seconds
	Horizon   float64 // measured window, seconds
	Stabilize float64 // idle settling before the measured window, seconds

	TraceSeed    int64
	Rate         float64         // job arrivals per second
	MeanDuration float64         // mean job service time, seconds
	Demands      []units.Percent // per-job demand levels

	// Workers bounds the experiment's fan-outs — the per-policy runs and
	// the LUT table builds: ≤ 0 = GOMAXPROCS, 1 = the serial reference
	// path. Rack stepping inside the comparison is deliberately serial
	// per policy: the four concurrent policy runs already saturate the
	// pool, and a nested per-step fan-out would only multiply goroutines
	// (Workers²) without adding parallelism. Results are identical for
	// every value.
	Workers int
}

// DefaultRackEval returns an 8-server rack under a one-hour trace with
// ~30% mean offered load — enough contention that placement matters,
// enough headroom that every policy can always place eventually.
func DefaultRackEval() RackEval {
	return RackEval{
		Servers:      8,
		Dt:           1,
		Horizon:      3600,
		Stabilize:    300,
		TraceSeed:    42,
		Rate:         0.02,
		MeanDuration: 300,
		Demands:      []units.Percent{20, 40, 60},
	}
}

// rackAmbient returns server i's inlet ambient: a cold→hot aisle gradient
// repeating every four slots (21, 24, 27, 30 °C), the heterogeneity that
// gives thermally aware placement something to exploit.
func rackAmbient(i int) units.Celsius { return units.Celsius(21 + 3*(i%4)) }

// RackServerConfigs builds the heterogeneous per-slot server
// configurations from a base config: the ambient gradient, a mixed DIMM
// population (odd slots run 24 instead of 32 DIMMs) and per-server sensor
// noise seeds.
func RackServerConfigs(base server.Config, n int) []server.Config {
	cfgs := make([]server.Config, n)
	for i := range cfgs {
		cfg := base
		cfg.Ambient = rackAmbient(i)
		cfg.NoiseSeed = base.NoiseSeed + int64(1000*i)
		if i%2 == 1 {
			cfg.Mem.NumDIMMs = 24
		}
		cfgs[i] = cfg
	}
	return cfgs
}

// rackFor assembles a fresh rack over cfgs, each server under its own LUT
// fan controller built from that server's configuration (tables shared
// read-only across servers with identical steady-state physics). The rack
// steps serially: within the comparison, parallelism lives at the policy
// level (see RackEval.Workers).
func rackFor(cfgs []server.Config, tables []*lut.Table) (*rack.Rack, error) {
	specs := make([]rack.ServerSpec, len(cfgs))
	for i, cfg := range cfgs {
		lc, err := control.NewLUT(tables[i], control.DefaultLUT())
		if err != nil {
			return nil, err
		}
		specs[i] = rack.ServerSpec{
			Name:       fmt.Sprintf("srv%02d-amb%g", i, float64(cfg.Ambient)),
			Config:     cfg,
			Controller: lc,
		}
	}
	return rack.New(rack.Config{Servers: specs, Workers: 1})
}

// buildRackTables builds one LUT per distinct server configuration
// (ignoring noise seeds), in slot order.
func buildRackTables(cfgs []server.Config, workers int) ([]*lut.Table, error) {
	bc := lut.DefaultBuild()
	bc.Workers = workers
	tables, err := lut.BuildPerConfig(cfgs, bc)
	if err != nil {
		return nil, fmt.Errorf("experiments: rack LUTs: %w", err)
	}
	return tables, nil
}

// RackPolicyResult is one row of the policy×metric comparison table.
type RackPolicyResult struct {
	Policy string
	Sched  sched.Result
	Rack   rack.Telemetry
}

// TotalWh returns the rack energy in watt-hours over the measured window.
func (r RackPolicyResult) TotalWh() float64 { return r.Rack.TotalEnergyKWh * 1000 }

// FanWh returns the fan-only energy in watt-hours.
func (r RackPolicyResult) FanWh() float64 { return r.Rack.FanEnergyKWh * 1000 }

// RackPolicies returns the four placement policies under comparison, in
// table order. The leakage-aware policy reuses the per-slot tables the
// rack's fan controllers are built from — one grid of steady-state solves
// serves both.
func RackPolicies(tables []*lut.Table) ([]sched.Policy, error) {
	la, err := sched.NewLeakageAwareFromTables(tables)
	if err != nil {
		return nil, err
	}
	return []sched.Policy{
		sched.NewRoundRobin(),
		sched.NewLeastUtilized(),
		sched.NewCoolestFirst(),
		la,
	}, nil
}

// RackPolicyComparison runs the same Poisson job trace across all four
// placement policies on identical fresh racks and returns one result row
// per policy. Policy runs fan out over the worker pool (slot-per-policy);
// each run's rack steps serially. All scheduling decisions are serial, so
// rows are byte-identical for every worker count.
func RackPolicyComparison(base server.Config, ev RackEval) ([]RackPolicyResult, error) {
	if ev.Servers <= 0 || ev.Dt <= 0 || ev.Horizon <= 0 {
		return nil, fmt.Errorf("experiments: rack eval needs positive servers/dt/horizon, got %+v", ev)
	}
	cfgs := RackServerConfigs(base, ev.Servers)
	tables, err := buildRackTables(cfgs, ev.Workers)
	if err != nil {
		return nil, err
	}
	policies, err := RackPolicies(tables)
	if err != nil {
		return nil, err
	}
	specs, err := loadgen.PoissonTrace(loadgen.PoissonTraceConfig{
		Seed:         ev.TraceSeed,
		Horizon:      ev.Horizon,
		Rate:         ev.Rate,
		MeanDuration: ev.MeanDuration,
		Demands:      ev.Demands,
	})
	if err != nil {
		return nil, err
	}
	jobs := sched.JobsFromSpecs(specs)

	results := make([]RackPolicyResult, len(policies))
	errs := make([]error, len(policies))
	par.ForEach(len(policies), ev.Workers, func(i int) {
		results[i], errs[i] = runRackPolicy(cfgs, tables, jobs, policies[i], ev)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: rack policy %s: %w", policies[i].Name(), err)
		}
	}
	return results, nil
}

// runRackPolicy is one policy's full run: fresh rack, idle stabilization,
// accounting reset, then the measured trace window.
func runRackPolicy(cfgs []server.Config, tables []*lut.Table, jobs []sched.Job, p sched.Policy, ev RackEval) (RackPolicyResult, error) {
	r, err := rackFor(cfgs, tables)
	if err != nil {
		return RackPolicyResult{}, err
	}
	// Integer step count, so a non-integer Dt cannot drift the window.
	for k := int(math.Ceil(ev.Stabilize/ev.Dt - 1e-9)); k > 0; k-- {
		r.Step(ev.Dt)
	}
	r.ResetAccounting()
	sres, err := sched.RunTrace(r, jobs, p, ev.Dt, ev.Horizon)
	if err != nil {
		return RackPolicyResult{}, err
	}
	return RackPolicyResult{Policy: p.Name(), Sched: sres, Rack: r.Telemetry()}, nil
}

// FormatRackTable renders the policy×metric comparison.
func FormatRackTable(w io.Writer, rows []RackPolicyResult) error {
	headers := []string{
		"Policy", "Total(Wh)", "Fan(Wh)", "Peak(W)",
		"MaxCPU(°C)", "MaxDIMM(°C)", "MaxInlet(°C)",
		"#fan", "Placed", "Done", "Wait(s)", "MaxQ",
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Policy,
			fmt.Sprintf("%.2f", r.TotalWh()),
			fmt.Sprintf("%.2f", r.FanWh()),
			fmt.Sprintf("%.0f", r.Rack.PeakPowerW),
			fmt.Sprintf("%.1f", r.Rack.MaxCPUTempC),
			fmt.Sprintf("%.1f", r.Rack.MaxDIMMTempC),
			fmt.Sprintf("%.1f", r.Rack.MaxInletC),
			fmt.Sprintf("%d", r.Rack.FanChanges),
			fmt.Sprintf("%d/%d", r.Sched.Placed, r.Sched.Submitted),
			fmt.Sprintf("%d", r.Sched.Completed),
			fmt.Sprintf("%.1f", r.Sched.MeanWaitSec),
			fmt.Sprintf("%d", r.Sched.MaxQueueLen),
		})
	}
	return plot.Table(w, headers, cells)
}
