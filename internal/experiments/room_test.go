package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/room"
	"repro/internal/server"
)

// smallRoomEval shrinks the room comparison for fast deterministic tests.
func smallRoomEval() RoomEval {
	ev := DefaultRoomEval()
	ev.Racks = 3
	ev.Servers = 2
	ev.Horizon = 400
	ev.Stabilize = 60
	ev.Rate = 0.05
	ev.MeanDuration = 120
	return ev
}

// TestRoomPolicyComparisonDeterministicAcrossWorkers is the golden-table
// contract at room scale: the serial reference and any parallel worker
// count must produce structurally identical rows, a byte-identical
// rendered table, and byte-identical metrics dumps. Under -race this
// exercises the concurrent per-policy cells.
func TestRoomPolicyComparisonDeterministicAcrossWorkers(t *testing.T) {
	base := server.T3Config()
	run := func(workers int) ([]RoomPolicyResult, string) {
		ev := smallRoomEval()
		ev.Workers = workers
		ev.Metrics = obs.NewRegistry()
		rows, err := RoomPolicyComparison(base, ev)
		if err != nil {
			t.Fatal(err)
		}
		// Registry pointers differ by construction; rows must not.
		for i := range rows {
			rows[i].Sched.Metrics = nil
		}
		var dump bytes.Buffer
		if err := ev.Metrics.WriteText(&dump); err != nil {
			t.Fatal(err)
		}
		return rows, dump.String()
	}
	serial, sdump := run(1)
	parallel, pdump := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel rows differ from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if sdump != pdump {
		t.Fatalf("metrics dumps differ:\nserial:\n%s\nparallel:\n%s", sdump, pdump)
	}
	var a, b bytes.Buffer
	if err := FormatRoomTable(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := FormatRoomTable(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("rendered tables differ:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
	for _, col := range []string{"Facility(Wh)", "PUE", "Recirc(°C)", "rr", "recirc-aware", "recirc-pue"} {
		if !strings.Contains(a.String(), col) {
			t.Fatalf("table missing %q:\n%s", col, a.String())
		}
	}
	if got, want := len(serial), len(RoomPolicyLabels()); got != want {
		t.Fatalf("got %d rows, want %d", got, want)
	}
	for i, label := range RoomPolicyLabels() {
		if serial[i].Policy != label {
			t.Errorf("row %d is %q, want %q (table order)", i, serial[i].Policy, label)
		}
		r := serial[i]
		if r.Sched.Placed == 0 || r.Room.WallEnergyKWh <= 0 {
			t.Errorf("%s: degenerate run %+v", label, r.Sched)
		}
		if r.Room.CoolingEnergyKWh <= 0 || r.Room.PUE <= 1 {
			t.Errorf("%s: shared bank should cost energy: PUE %g", label, r.Room.PUE)
		}
		if r.Room.MaxRecircOffsetC <= 0 {
			t.Errorf("%s: coupled room should see recirculation offsets", label)
		}
		if r.Room.Racks != 3 || r.Room.Servers != 6 {
			t.Errorf("%s: wrong room shape %d×%d", label, r.Room.Racks, r.Room.Servers)
		}
	}
}

// TestRoomPolicyComparisonEventStepping: the event kernel must preserve
// every scheduling outcome of the fixed-dt comparison.
func TestRoomPolicyComparisonEventStepping(t *testing.T) {
	base := server.T3Config()
	ev := smallRoomEval()
	ev.Policy = "rr"
	fixed, err := RoomPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	ev.EventStepping = true
	event, err := RoomPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	f, e := fixed[0].Sched, event[0].Sched
	if f.Placed != e.Placed || f.Completed != e.Completed || f.MaxQueueLen != e.MaxQueueLen {
		t.Errorf("event kernel changed scheduling: fixed %+v event %+v", f, e)
	}
	var fAdv, eAdv int
	for _, st := range f.Kernel {
		fAdv += st.Advances
	}
	for _, st := range e.Kernel {
		eAdv += st.Advances
	}
	if eAdv >= fAdv {
		t.Errorf("event kernel took %d advances, fixed %d — no macro windows", eAdv, fAdv)
	}
}

// TestRoomPolicyComparisonVariants covers the configuration surface: the
// policy filter, the uncoupled/no-facility degenerate room, the economizer
// flag, and validation errors.
func TestRoomPolicyComparisonVariants(t *testing.T) {
	base := server.T3Config()

	t.Run("policy-filter", func(t *testing.T) {
		ev := smallRoomEval()
		ev.Policy = "coolest"
		rows, err := RoomPolicyComparison(base, ev)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0].Policy != "coolest" {
			t.Fatalf("filter returned %+v", rows)
		}
	})

	t.Run("unknown-policy", func(t *testing.T) {
		ev := smallRoomEval()
		ev.Policy = "warmest"
		if _, err := RoomPolicyComparison(base, ev); err == nil || !strings.Contains(err.Error(), "unknown room policy") {
			t.Fatalf("want unknown-policy error, got %v", err)
		}
	})

	t.Run("invalid-eval", func(t *testing.T) {
		ev := smallRoomEval()
		ev.Racks = 0
		if _, err := RoomPolicyComparison(base, ev); err == nil {
			t.Fatal("zero racks must be rejected")
		}
	})

	t.Run("uncoupled-no-facility", func(t *testing.T) {
		ev := smallRoomEval()
		ev.Policy = "rr"
		ev.NoFacility = true
		ev.Recirc = room.NewMatrix(ev.Racks)
		rows, err := RoomPolicyComparison(base, ev)
		if err != nil {
			t.Fatal(err)
		}
		r := rows[0].Room
		if r.CoolingEnergyKWh != 0 || r.PUE != 1 || r.MaxRecircOffsetC != 0 {
			t.Fatalf("uncoupled no-facility room must be exactly free to cool: %+v", r)
		}
	})

	t.Run("economizer", func(t *testing.T) {
		// The default chiller sits at 30 °C outdoor — above the engagement
		// setpoint — so the flag alone must not change a single number.
		ev := smallRoomEval()
		ev.Policy = "rr"
		warm, err := RoomPolicyComparison(base, ev)
		if err != nil {
			t.Fatal(err)
		}
		ev.Economizer = true
		econ, err := RoomPolicyComparison(base, ev)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warm, econ) {
			t.Fatalf("bypassed economizer changed the comparison:\nwithout: %+v\nwith:    %+v", warm, econ)
		}
	})
}
