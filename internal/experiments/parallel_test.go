package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/control"
	"repro/internal/server"
	"repro/internal/workload"
)

// fastEval shortens the Table I protocol enough to run the full 12-run
// matrix repeatedly in tests without changing its structure.
func fastEval() EvalConfig {
	ec := DefaultEval()
	ec.SampleEvery = 0
	ec.Dt = 5
	ec.Stabilize = 60
	return ec
}

// TestParallelTableIMatchesSerial is the determinism contract of the fanned
// out harness: for a fixed seed the parallel run must yield byte-identical
// rows to the serial reference path. Run under -race this also exercises
// the independence of the concurrent runs.
func TestParallelTableIMatchesSerial(t *testing.T) {
	cfg := server.T3Config()
	ec := fastEval()
	serial, err := TableIParallel(cfg, 7, ec, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TableIParallel(cfg, 7, ec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel Table I rows differ structurally from the serial run")
	}
	var a, b bytes.Buffer
	if err := FormatTableI(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := FormatTableI(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("rendered tables differ:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
	if len(serial) != 4 {
		t.Fatalf("expected 4 workload rows, got %d", len(serial))
	}
}

// TestTableIMatchesParallelDefault guards that the public TableI entry
// point (GOMAXPROCS workers) agrees with the serial path too.
func TestTableIMatchesParallelDefault(t *testing.T) {
	cfg := server.T3Config()
	ec := fastEval()
	def, err := TableI(cfg, 3, ec)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := TableIParallel(cfg, 3, ec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, serial) {
		t.Fatal("TableI differs from the serial reference")
	}
}

// TestRunManyOrderAndErrors checks result ordering and deterministic error
// selection.
func TestRunManyOrderAndErrors(t *testing.T) {
	cfg := server.T3Config()
	ec := fastEval()
	w, err := workload.ByID(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(label string) RunSpec {
		return RunSpec{
			Label: label, Cfg: cfg, Prof: w.Profile, EC: ec,
			Controller: func() (control.Controller, error) { return control.NewDefault(), nil },
		}
	}
	specs := []RunSpec{mk("a"), mk("b"), mk("c")}
	results, err := RunMany(specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	// Identical specs must give identical results independent of slot.
	if !reflect.DeepEqual(results[0], results[1]) || !reflect.DeepEqual(results[1], results[2]) {
		t.Fatal("identical specs produced different results")
	}

	boom := fmt.Errorf("boom")
	specs[1].Controller = func() (control.Controller, error) { return nil, boom }
	specs[2].Controller = func() (control.Controller, error) { return nil, fmt.Errorf("later") }
	if _, err := RunMany(specs, 3); err == nil {
		t.Fatal("expected error")
	} else if got := err.Error(); got != "experiments: b: boom" {
		t.Fatalf("expected lowest-index error, got %q", got)
	}
}

// TestTradeoffParallelMatchesSerial pins the fanned-out steady-state curve
// to the single-worker path.
func TestTradeoffParallelMatchesSerial(t *testing.T) {
	cfg := server.T3Config()
	serial, err := tradeoffWorkers(cfg, 75, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := tradeoffWorkers(cfg, 75, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel tradeoff curve differs from serial")
	}
}
