package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/control"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/plot"
	"repro/internal/server"
	"repro/internal/units"
	"repro/internal/workload"
)

// EvalConfig controls a Table I controller run.
type EvalConfig struct {
	Dt          float64 // simulation step (1 s: the LUT polling period)
	Stabilize   float64 // idle seconds before the measured window (paper: 5 min)
	PWM         bool    // duty-cycle the workload
	PWMPeriod   float64
	UtilWindow  float64 // sar-style utilization averaging window, seconds
	SampleEvery float64 // trace sampling period (0 = no traces)
}

// DefaultEval returns the standard Table I configuration.
func DefaultEval() EvalConfig {
	return EvalConfig{
		Dt:          1,
		Stabilize:   5 * 60,
		PWM:         true,
		PWMPeriod:   30,
		UtilWindow:  30,
		SampleEvery: 10,
	}
}

// RunResult carries every Table I column for one (workload, controller)
// pair, plus sampled traces for Fig. 3.
type RunResult struct {
	Workload   string
	Controller string

	EnergyKWh     float64
	FanEnergyKWh  float64
	NetSavingsPct float64 // filled by TableI relative to the baseline
	PeakPowerW    float64
	MaxTempC      float64
	FanChanges    int
	AvgRPM        float64
	Tripped       bool

	// Traces sampled every EvalConfig.SampleEvery seconds.
	TimeMin []float64
	TempC   []float64
	RPM     []float64
	UtilPct []float64
	PowerW  []float64
}

// movingAvg is the sar-style windowed utilization monitor: the controller
// sees the average utilization over the last window seconds rather than the
// instantaneous PWM state. The sum is maintained incrementally — O(1) per
// sample instead of re-summing the window every controller tick. (With PWM
// the samples are exact small integers, so the incremental sum is exact.)
type movingAvg struct {
	window  float64
	dt      float64
	samples []float64
	sum     float64
	idx     int
	full    bool
}

func newMovingAvg(window, dt float64) *movingAvg {
	n := int(window / dt)
	if n < 1 {
		n = 1
	}
	return &movingAvg{window: window, dt: dt, samples: make([]float64, n)}
}

func (m *movingAvg) add(v float64) {
	m.sum += v - m.samples[m.idx]
	m.samples[m.idx] = v
	m.idx++
	if m.idx == len(m.samples) {
		m.idx = 0
		m.full = true
		// Re-sum once per wrap so incremental-update rounding residue
		// cannot accumulate when samples are fractional (non-PWM runs).
		var s float64
		for _, x := range m.samples {
			s += x
		}
		m.sum = s
	}
}

func (m *movingAvg) mean() float64 {
	n := len(m.samples)
	if !m.full {
		n = m.idx
	}
	if n == 0 {
		return 0
	}
	return m.sum / float64(n)
}

// RunControlled evaluates one controller on one workload profile following
// the paper's protocol and returns all Table I metrics.
func RunControlled(cfg server.Config, prof loadgen.Profile, ctrl control.Controller, ec EvalConfig) (RunResult, error) {
	if ec.Dt <= 0 {
		return RunResult{}, fmt.Errorf("experiments: non-positive dt")
	}
	if prof == nil || ctrl == nil {
		return RunResult{}, fmt.Errorf("experiments: nil profile or controller")
	}
	srv, err := server.New(cfg)
	if err != nil {
		return RunResult{}, err
	}
	ctrl.Reset()

	opts := []loadgen.Option{loadgen.WithPWMPeriod(ec.PWMPeriod)}
	if !ec.PWM {
		opts = []loadgen.Option{loadgen.WithoutPWM()}
	}
	gen, err := loadgen.New(prof, opts...)
	if err != nil {
		return RunResult{}, err
	}

	res := RunResult{Controller: ctrl.Name()}
	util := newMovingAvg(ec.UtilWindow, ec.Dt)

	tick := func() {
		// The bang-bang controller acts on Tmax — the hottest CSTH CPU
		// temperature reading — exactly as in Section V of the paper.
		obs := control.Observation{
			Now:         srv.Now(),
			Utilization: units.Percent(util.mean()),
			MaxCPUTemp:  maxC(srv.CPUTempSensorsReuse()),
			CurrentRPM:  srv.Fans().Target(),
		}
		dec := ctrl.Tick(obs)
		if dec.Changed {
			srv.Fans().SetAll(dec.Target)
			res.FanChanges++
		}
	}

	// Idle stabilization with the controller already active, as the paper
	// sets the fan speed at t=0 and idles for 5 minutes.
	for now := 0.0; now < ec.Stabilize; now += ec.Dt {
		srv.SetLoad(0)
		util.add(0)
		tick()
		srv.Step(ec.Dt)
	}

	// Measured window: the 80-minute workload.
	res.FanChanges = 0
	srv.ResetAccounting()
	start := srv.Now()
	dur := prof.Duration()
	if dur <= 0 {
		dur = workload.TestDuration
	}
	var rpmIntegral, maxTemp float64
	nextSample := 0.0
	steps := 0
	for elapsed := 0.0; elapsed < dur; elapsed += ec.Dt {
		srv.SetLoad(gen.Load(elapsed))
		util.add(float64(srv.Utilization()))
		tick()
		srv.Step(ec.Dt)
		steps++

		rpmIntegral += float64(srv.Fans().MeanRPM())
		if t := float64(srv.MaxCPUTemp()); t > maxTemp {
			maxTemp = t
		}
		if ec.SampleEvery > 0 && elapsed >= nextSample {
			res.TimeMin = append(res.TimeMin, (srv.Now()-start)/60)
			res.TempC = append(res.TempC, avgC(srv.CPUTempSensorsReuse()))
			res.RPM = append(res.RPM, float64(srv.Fans().MeanRPM()))
			res.UtilPct = append(res.UtilPct, float64(srv.Utilization()))
			res.PowerW = append(res.PowerW, float64(srv.Breakdown().Total()))
			nextSample += ec.SampleEvery
		}
	}

	res.EnergyKWh = srv.Energy().KWh()
	res.FanEnergyKWh = srv.FanEnergy().KWh()
	res.PeakPowerW = float64(srv.PeakPower())
	res.MaxTempC = maxTemp
	res.AvgRPM = rpmIntegral / float64(steps)
	res.Tripped = srv.Tripped()
	return res, nil
}

// TableIRow is one test workload's comparison across the three controllers.
type TableIRow struct {
	TestID   int
	TestName string
	Default  RunResult
	BangBang RunResult
	LUT      RunResult
}

// IdleEnergyKWh returns the reference idle energy the paper subtracts when
// computing net savings: the uncontrollable floor (chassis + idle memory)
// over the test duration.
func IdleEnergyKWh(cfg server.Config, duration float64) float64 {
	floor := float64(cfg.Power.IdleFloor) + cfg.Mem.IdlePower
	return units.Energy(units.Watts(floor), duration).KWh()
}

// TableI reproduces the paper's Table I: all four test workloads under the
// Default, bang-bang and LUT controllers, with net savings computed against
// the Default baseline after subtracting idle energy. The twelve
// controller×workload runs fan out over all cores; see TableIParallel to
// bound or disable the parallelism.
func TableI(cfg server.Config, seed int64, ec EvalConfig) ([]TableIRow, error) {
	return TableIParallel(cfg, seed, ec, 0)
}

// TableIParallel is TableI with an explicit worker bound: each
// controller×workload run already builds its own server, so the runs are
// embarrassingly parallel. workers ≤ 0 uses GOMAXPROCS; workers = 1 is the
// serial reference path. Results are assembled in workload order and are
// identical for every worker count.
func TableIParallel(cfg server.Config, seed int64, ec EvalConfig, workers int) ([]TableIRow, error) {
	tests, err := workload.AllTests(seed)
	if err != nil {
		return nil, err
	}
	bc := lut.DefaultBuild()
	bc.Workers = workers // workers=1 must mean fully serial, LUT build included
	table, err := lut.Build(cfg, bc)
	if err != nil {
		return nil, err
	}

	var specs []RunSpec
	for _, w := range tests {
		specs = append(specs, controllerSpecs(cfg, table, w, ec)...)
	}
	results, err := RunMany(specs, workers)
	if err != nil {
		return nil, err
	}

	idleKWh := IdleEnergyKWh(cfg, workload.TestDuration)
	rows := make([]TableIRow, 0, len(tests))
	for k, w := range tests {
		rows = append(rows, assembleRow(w, results[3*k:3*k+3], idleKWh))
	}
	return rows, nil
}

// controllerSpecs returns the three Table I runs (Default, bang-bang, LUT)
// for one workload, in the table's column order.
func controllerSpecs(cfg server.Config, table *lut.Table, w workload.Named, ec EvalConfig) []RunSpec {
	return []RunSpec{
		{
			Label: w.Name + "/default", Cfg: cfg, Prof: w.Profile, EC: ec,
			Controller: func() (control.Controller, error) { return control.NewDefault(), nil },
		},
		{
			Label: w.Name + "/bang", Cfg: cfg, Prof: w.Profile, EC: ec,
			Controller: func() (control.Controller, error) { return control.NewBangBang(control.DefaultBangBang()) },
		},
		{
			Label: w.Name + "/lut", Cfg: cfg, Prof: w.Profile, EC: ec,
			Controller: func() (control.Controller, error) { return control.NewLUT(table, control.DefaultLUT()) },
		},
	}
}

// assembleRow combines one workload's three controller results (in
// controllerSpecs order) into a Table I row with net savings filled in.
func assembleRow(w workload.Named, results []RunResult, idleKWh float64) TableIRow {
	row := TableIRow{
		TestID:   w.ID,
		TestName: w.Name,
		Default:  results[0],
		BangBang: results[1],
		LUT:      results[2],
	}
	base := row.Default.EnergyKWh
	denom := base - idleKWh
	if denom > 0 {
		row.BangBang.NetSavingsPct = 100 * (base - row.BangBang.EnergyKWh) / denom
		row.LUT.NetSavingsPct = 100 * (base - row.LUT.EnergyKWh) / denom
	}
	row.Default.Workload = w.Name
	row.BangBang.Workload = w.Name
	row.LUT.Workload = w.Name
	return row
}

// TableIRowFor evaluates the three controllers on a single workload against
// a prebuilt table — the unit the benchmarks and ablations time — fanning
// the three runs out over the worker pool.
func TableIRowFor(cfg server.Config, table *lut.Table, w workload.Named, ec EvalConfig, workers int) (TableIRow, error) {
	results, err := RunMany(controllerSpecs(cfg, table, w, ec), workers)
	if err != nil {
		return TableIRow{}, err
	}
	return assembleRow(w, results, IdleEnergyKWh(cfg, workload.TestDuration)), nil
}

// FormatTableI renders rows in the paper's Table I layout.
func FormatTableI(w io.Writer, rows []TableIRow) error {
	headers := []string{"Test", "Control", "Energy(kWh)", "NetSav(%)", "Peak(W)", "MaxT(°C)", "#fan", "AvgRPM"}
	var cells [][]string
	for _, r := range rows {
		for _, res := range []RunResult{r.Default, r.BangBang, r.LUT} {
			sav := "-"
			if res.Controller != "Default" {
				sav = fmt.Sprintf("%.1f", res.NetSavingsPct)
			}
			cells = append(cells, []string{
				fmt.Sprintf("%d", r.TestID),
				res.Controller,
				fmt.Sprintf("%.4f", res.EnergyKWh),
				sav,
				fmt.Sprintf("%.0f", res.PeakPowerW),
				fmt.Sprintf("%.0f", res.MaxTempC),
				fmt.Sprintf("%d", res.FanChanges),
				fmt.Sprintf("%.0f", res.AvgRPM),
			})
		}
	}
	return plot.Table(w, headers, cells)
}

// Fig3 extracts the Test-3 temperature traces for the three controllers —
// the content of the paper's Figure 3. It reuses TableI runs when provided,
// otherwise it runs Test-3 afresh.
func Fig3(cfg server.Config, seed int64, ec EvalConfig) ([]plot.Series, error) {
	if ec.SampleEvery <= 0 {
		ec.SampleEvery = 10
	}
	w, err := workload.ByID(3, seed)
	if err != nil {
		return nil, err
	}
	table, err := lut.Build(cfg, lut.DefaultBuild())
	if err != nil {
		return nil, err
	}
	bb, err := control.NewBangBang(control.DefaultBangBang())
	if err != nil {
		return nil, err
	}
	lc, err := control.NewLUT(table, control.DefaultLUT())
	if err != nil {
		return nil, err
	}
	var out []plot.Series
	for _, ctrl := range []control.Controller{control.NewDefault(), bb, lc} {
		res, err := RunControlled(cfg, w.Profile, ctrl, ec)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig3 %s: %w", ctrl.Name(), err)
		}
		out = append(out, plot.Series{Name: ctrl.Name(), X: res.TimeMin, Y: res.TempC})
	}
	return out, nil
}

// SeriesFromTransients converts Fig. 1 results to plottable series.
func SeriesFromTransients(results []TransientResult) []plot.Series {
	out := make([]plot.Series, 0, len(results))
	for _, r := range results {
		out = append(out, plot.Series{Name: r.Label, X: r.TimeMin, Y: r.TempC})
	}
	return out
}

// SeriesFromTradeoff converts a Fig. 2 curve into (temp, power) series.
func SeriesFromTradeoff(c TradeoffCurve) []plot.Series {
	var temps, fanP, leakP, sum []float64
	for _, p := range c.Points {
		temps = append(temps, float64(p.Temp))
		fanP = append(fanP, float64(p.FanPower))
		leakP = append(leakP, float64(p.Leakage))
		sum = append(sum, float64(p.Sum()))
	}
	label := strings.TrimSpace(fmt.Sprintf("U=%.0f%%", float64(c.Util)))
	return []plot.Series{
		{Name: "Fan power " + label, X: temps, Y: fanP},
		{Name: "Leakage power " + label, X: temps, Y: leakP},
		{Name: "Fan+Leakage " + label, X: temps, Y: sum},
	}
}
