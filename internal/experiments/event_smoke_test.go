package experiments

import (
	"math"
	"testing"

	"repro/internal/server"
)

// compareKernels runs RackPolicyComparison on both kernels and checks the
// per-row equivalence contract: identical scheduling outcomes, energies
// within the macro-stepping tolerance, identical fan-change counts. It
// returns the per-policy speedup factors keyed by policy name plus the
// aggregate fixed/event step totals.
func compareKernels(t *testing.T, ev RackEval) (rows []RackPolicyResult, speedups map[string]float64, fixedSteps, eventSteps int) {
	t.Helper()
	base := server.T3Config()
	fixedRows, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	ev.EventStepping = true
	eventRows, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixedRows) != len(eventRows) {
		t.Fatalf("row count mismatch: %d vs %d", len(fixedRows), len(eventRows))
	}
	speedups = make(map[string]float64, len(fixedRows))
	for i, f := range fixedRows {
		e := eventRows[i]
		if f.Policy != e.Policy {
			t.Fatalf("row %d policy mismatch: %s vs %s", i, f.Policy, e.Policy)
		}
		fixedSteps += f.Sched.RackSteps
		eventSteps += e.Sched.RackSteps
		speedups[f.Policy] = float64(f.Sched.RackSteps) / float64(e.Sched.RackSteps)
		t.Logf("%-14s rack steps %d → %d (%.1f×), Wh %.3f → %.3f",
			f.Policy, f.Sched.RackSteps, e.Sched.RackSteps,
			speedups[f.Policy], f.TotalWh(), e.TotalWh())

		// Identical scheduling outcomes.
		fs, es := f.Sched, e.Sched
		fs.RackSteps, es.RackSteps = 0, 0
		if fs != es {
			t.Errorf("%s: scheduling outcomes differ:\nfixed %+v\nevent %+v", f.Policy, f.Sched, e.Sched)
		}
		// Energies within the macro-stepping tolerance.
		for _, m := range []struct {
			name string
			f, e float64
		}{
			{"TotalEnergyKWh", f.Rack.TotalEnergyKWh, e.Rack.TotalEnergyKWh},
			{"FanEnergyKWh", f.Rack.FanEnergyKWh, e.Rack.FanEnergyKWh},
			{"WallEnergyKWh", f.Rack.WallEnergyKWh, e.Rack.WallEnergyKWh},
		} {
			d := math.Abs(m.e - m.f)
			if m.f != 0 {
				d /= math.Abs(m.f)
			}
			if d > 1e-6 {
				t.Errorf("%s: %s off by %g relative (event %g vs fixed %g)",
					f.Policy, m.name, d, m.e, m.f)
			}
		}
		if f.Rack.FanChanges != e.Rack.FanChanges {
			t.Errorf("%s: fan changes differ: %d vs %d", f.Policy, f.Rack.FanChanges, e.Rack.FanChanges)
		}
		if d := math.Abs(f.Rack.MaxCPUTempC - e.Rack.MaxCPUTempC); d > 0.3 {
			t.Errorf("%s: MaxCPUTempC off by %g °C", f.Policy, d)
		}
	}
	return fixedRows, speedups, fixedSteps, eventSteps
}

// TestEventSteppingSmoke is the CI gate for the event-driven kernel on the
// real experiment: the RackPolicyComparison Poisson trace, fixed-dt vs
// event-driven, on the default (drained-queue) shape and on a saturated
// variant whose backlog never empties. It logs the macro-vs-fixed step
// counts and the speedup factor per policy and fails if event stepping
// cannot collapse the default trace at least 5× in aggregate — or, since
// PR 8's load-only refusal un-pin, the saturated trace at least 5× on the
// load-only policies — or if any headline metric drifts past the
// macro-stepping tolerance.
func TestEventSteppingSmoke(t *testing.T) {
	t.Run("default", func(t *testing.T) {
		_, _, fixedSteps, eventSteps := compareKernels(t, DefaultRackEval())
		speedup := float64(fixedSteps) / float64(eventSteps)
		t.Logf("default trace: %d fixed rack steps vs %d event rack steps — %.1f× fewer", fixedSteps, eventSteps, speedup)
		if eventSteps >= fixedSteps {
			t.Fatalf("event stepping took %d rack steps, fixed-dt %d: no collapse at all", eventSteps, fixedSteps)
		}
		if speedup < 5 {
			t.Fatalf("event stepping collapsed the default trace only %.1f×, want ≥5×", speedup)
		}
	})
	t.Run("saturated", func(t *testing.T) {
		ev := DefaultRackEval()
		// 4× the default offered load ≈ 1.2× rack capacity: the backlog
		// never drains, while arrivals stay sparse enough that an
		// O(#events) kernel still has a collapse to show (at much higher
		// rates the arrival events themselves dominate the step count).
		ev.Rate *= 4
		rows, speedups, fixedSteps, eventSteps := compareKernels(t, ev)
		t.Logf("saturated trace: %d fixed rack steps vs %d event rack steps", fixedSteps, eventSteps)
		for _, r := range rows {
			if r.Sched.MaxQueueLen < 4 {
				t.Fatalf("%s: max queue %d — the trace is not saturated and the gate below is vacuous",
					r.Policy, r.Sched.MaxQueueLen)
			}
		}
		// Load-only refusers macro-step completion-to-completion even with
		// jobs queued; the thermally-informed policies keep the backlog pin
		// (exactness first), so only the load-only rows carry the gate.
		for _, policy := range []string{"round-robin", "least-utilized"} {
			s, ok := speedups[policy]
			if !ok {
				t.Fatalf("policy %q missing from comparison rows", policy)
			}
			if s < 5 {
				t.Errorf("%s: saturated trace collapsed only %.1f×, want ≥5× from the load-only un-pin", policy, s)
			}
		}
	})
}
