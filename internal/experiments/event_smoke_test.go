package experiments

import (
	"math"
	"testing"

	"repro/internal/server"
)

// TestEventSteppingSmoke is the CI gate for the event-driven kernel on the
// real experiment: the default RackPolicyComparison Poisson trace, fixed-dt
// vs event-driven. It logs the macro-vs-fixed step counts and the speedup
// factor per policy and fails if event stepping cannot collapse the
// default trace at least 5× — the regression bar for the kernel — or if
// any headline metric drifts past the macro-stepping tolerance.
func TestEventSteppingSmoke(t *testing.T) {
	base := server.T3Config()
	ev := DefaultRackEval()

	fixedRows, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	ev.EventStepping = true
	eventRows, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixedRows) != len(eventRows) {
		t.Fatalf("row count mismatch: %d vs %d", len(fixedRows), len(eventRows))
	}
	var fixedSteps, eventSteps int
	for i, f := range fixedRows {
		e := eventRows[i]
		if f.Policy != e.Policy {
			t.Fatalf("row %d policy mismatch: %s vs %s", i, f.Policy, e.Policy)
		}
		fixedSteps += f.Sched.RackSteps
		eventSteps += e.Sched.RackSteps
		t.Logf("%-14s rack steps %d → %d (%.1f×), Wh %.3f → %.3f",
			f.Policy, f.Sched.RackSteps, e.Sched.RackSteps,
			float64(f.Sched.RackSteps)/float64(e.Sched.RackSteps),
			f.TotalWh(), e.TotalWh())

		// Identical scheduling outcomes.
		fs, es := f.Sched, e.Sched
		fs.RackSteps, es.RackSteps = 0, 0
		if fs != es {
			t.Errorf("%s: scheduling outcomes differ:\nfixed %+v\nevent %+v", f.Policy, f.Sched, e.Sched)
		}
		// Energies within the macro-stepping tolerance.
		for _, m := range []struct {
			name string
			f, e float64
		}{
			{"TotalEnergyKWh", f.Rack.TotalEnergyKWh, e.Rack.TotalEnergyKWh},
			{"FanEnergyKWh", f.Rack.FanEnergyKWh, e.Rack.FanEnergyKWh},
			{"WallEnergyKWh", f.Rack.WallEnergyKWh, e.Rack.WallEnergyKWh},
		} {
			d := math.Abs(m.e - m.f)
			if m.f != 0 {
				d /= math.Abs(m.f)
			}
			if d > 1e-6 {
				t.Errorf("%s: %s off by %g relative (event %g vs fixed %g)",
					f.Policy, m.name, d, m.e, m.f)
			}
		}
		if f.Rack.FanChanges != e.Rack.FanChanges {
			t.Errorf("%s: fan changes differ: %d vs %d", f.Policy, f.Rack.FanChanges, e.Rack.FanChanges)
		}
		if d := math.Abs(f.Rack.MaxCPUTempC - e.Rack.MaxCPUTempC); d > 0.3 {
			t.Errorf("%s: MaxCPUTempC off by %g °C", f.Policy, d)
		}
	}
	speedup := float64(fixedSteps) / float64(eventSteps)
	t.Logf("default trace: %d fixed rack steps vs %d event rack steps — %.1f× fewer", fixedSteps, eventSteps, speedup)
	if eventSteps >= fixedSteps {
		t.Fatalf("event stepping took %d rack steps, fixed-dt %d: no collapse at all", eventSteps, fixedSteps)
	}
	if speedup < 5 {
		t.Fatalf("event stepping collapsed the default trace only %.1f×, want ≥5×", speedup)
	}
}
