package experiments

import (
	"testing"

	"repro/internal/control"
	"repro/internal/lut"
	"repro/internal/server"
)

func TestRunFaultValidation(t *testing.T) {
	cfg := server.T3Config()
	fc := DefaultFault()
	fc.Dt = 0
	if _, err := RunFault(cfg, control.NewDefault(), fc); err == nil {
		t.Error("zero dt should error")
	}
	fc = DefaultFault()
	fc.InjectAt = fc.Duration + 1
	if _, err := RunFault(cfg, control.NewDefault(), fc); err == nil {
		t.Error("injection after the window should error")
	}
	fc = DefaultFault()
	fc.FanIndex = 99
	if _, err := RunFault(cfg, control.NewDefault(), fc); err == nil {
		t.Error("bad fan index should error")
	}
}

func TestStuckFanRaisesTemperature(t *testing.T) {
	cfg := server.T3Config()
	fc := DefaultFault()
	fc.Duration = 40 * 60
	fc.InjectAt = 15 * 60

	// Default controller at 3300: a fan stuck at 3300 while commanded to
	// 3300 changes nothing — use a LUT controller so the healthy fans run
	// slow and the stuck one (frozen at a slow speed after the controller
	// settles) matters when load rises.
	table, err := lut.Build(cfg, lut.DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	lc, err := control.NewLUT(table, control.DefaultLUT())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFault(cfg, lc, fc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Controller != "LUT" {
		t.Fatal("controller name")
	}
	if res.PreFaultMaxC <= 0 || res.PostFaultMaxC <= 0 {
		t.Fatalf("temps missing: %+v", res)
	}
	// The machine must not trip thermal protection at 80% load with five
	// healthy fans.
	if res.Tripped {
		t.Fatal("stuck fan tripped thermal protection")
	}
	// At constant load before/after the fault, the post-fault max should
	// not be dramatically below the pre-fault max (physics sanity).
	if res.PostFaultMaxC < res.PreFaultMaxC-3 {
		t.Fatalf("post-fault max %g unexpectedly below pre-fault %g",
			res.PostFaultMaxC, res.PreFaultMaxC)
	}
}

func TestBangBangCompensatesForStuckFan(t *testing.T) {
	// Stick a fan at a LOW speed while the load is high: the bang-bang
	// controller (temperature feedback) raises the remaining fans if the
	// temperature leaves its band, whereas the temperature-blind LUT
	// cannot react. Inject early so the machine heats up with the fault.
	cfg := server.T3Config()
	fc := DefaultFault()
	fc.Util = 100
	fc.Duration = 40 * 60
	fc.InjectAt = 60 // one minute in: fans still near their idle setting

	bb, err := control.NewBangBang(control.DefaultBangBang())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFault(cfg, bb, fc)
	if err != nil {
		t.Fatal(err)
	}
	// The controller must have acted after injection.
	if res.FanChanges == 0 {
		t.Fatal("bang-bang made no changes after the fault")
	}
	// And kept the machine out of thermal protection.
	if res.Tripped {
		t.Fatal("bang-bang failed to prevent a trip")
	}
	if res.PostFaultMaxC >= 88 {
		t.Fatalf("post-fault max %g dangerously near the 90°C trip", res.PostFaultMaxC)
	}
}
