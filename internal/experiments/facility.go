package experiments

import (
	"fmt"
	"io"

	"repro/internal/cooling"
	"repro/internal/lut"
	"repro/internal/par"
	"repro/internal/plot"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/units"
)

// FacilityEval parameterizes the facility-scope comparison: the rack
// policy experiment swept across cold-aisle supply setpoints with the
// CRAC/chiller loop attached. Raising the setpoint makes the chiller
// cheaper per Watt but every server leakier and its fans busier — the
// paper's fan-vs-leakage tradeoff lifted to facility scope — so total
// facility energy is minimized at an interior setpoint.
type FacilityEval struct {
	// Rack is the underlying rack experiment: size, trace, delivery chain,
	// worker bound, optional wall cap and LUT disk cache.
	Rack RackEval
	// SetpointsC are the cold-aisle supply setpoints to sweep, in °C.
	SetpointsC []units.Celsius
	// CRAC is the room unit; its SupplyC is overwritten by each swept
	// setpoint. Its ReferenceC anchors the ambient shift (see
	// cooling.CRACModel).
	CRAC cooling.CRACModel
	// Chiller is the water-side COP model shared by every setpoint.
	Chiller cooling.ChillerModel
}

// DefaultFacilityEval returns the standard sweep: the default 8-server
// rack behind the default PSU/PDU chain, under a busier trace than the
// DC-side comparison (≈45% mean offered load, so the fan/leakage response
// to the aisle temperature is pronounced), across three supply setpoints
// bracketing the 18 °C reference.
func DefaultFacilityEval() FacilityEval {
	ev := DefaultRackEval()
	ev.Rate = 0.03
	ev.Demands = []units.Percent{30, 50, 70}
	psu, pdu := power.DefaultPSU(), power.DefaultPDU()
	ev.PSU, ev.PDU = &psu, &pdu
	return FacilityEval{
		Rack:       ev,
		SetpointsC: []units.Celsius{14, 21, 28},
		CRAC:       cooling.DefaultCRAC(),
		Chiller:    cooling.DefaultChiller(),
	}
}

// Facility assembles the cooling loop at one swept setpoint.
func (fe FacilityEval) Facility(setpoint units.Celsius) cooling.Facility {
	crac := fe.CRAC
	crac.SupplyC = setpoint
	return cooling.Facility{CRAC: crac, Chiller: fe.Chiller}
}

// FacilityPolicyResult is one row of the policy×setpoint table.
type FacilityPolicyResult struct {
	SetpointC float64 // cold-aisle supply setpoint of this run
	RackPolicyResult
}

// CoolingWh returns the CRAC+chiller energy in watt-hours.
func (r FacilityPolicyResult) CoolingWh() float64 { return r.Rack.CoolingEnergyKWh * 1000 }

// FacilityWh returns the total facility energy (wall + cooling) in
// watt-hours — the number the sweep minimizes.
func (r FacilityPolicyResult) FacilityWh() float64 { return r.Rack.FacilityEnergyKWh * 1000 }

// RackFacilityComparison sweeps every placement policy across the eval's
// cold-aisle setpoints with the CRAC/chiller loop attached, over one
// shared Poisson trace. Per setpoint, the servers' fan-controller LUTs
// (and the pue-aware policy's cost tables) are rebuilt at the ambients
// the CRAC actually supplies — the operator recalibrates the 75 °C cap
// for the real aisle temperature — while the facility-blind table
// policies (leakage-aware, cap-aware) keep the reference tables, which is
// precisely the staleness pue-aware exists to fix. Runs fan out over the
// worker pool (slot-per-run); all scheduling stays serial, so rows are
// byte-identical for every worker count.
func RackFacilityComparison(base server.Config, fe FacilityEval) ([]FacilityPolicyResult, error) {
	if len(fe.SetpointsC) == 0 {
		return nil, fmt.Errorf("experiments: facility eval needs at least one setpoint")
	}
	ev := fe.Rack
	s, err := prepareRackEval(base, ev)
	if err != nil {
		return nil, err
	}
	psus := make([]*power.PSUModel, len(s.cfgs))
	for i := range psus {
		psus[i] = ev.PSU
	}
	models := make([]power.ServerModel, len(s.cfgs))
	for i, cfg := range s.cfgs {
		models[i] = cfg.Power
	}

	// Serial preparation: per setpoint, recalibrated tables and fresh
	// policy instances (policies are stateful; nothing is shared between
	// concurrent runs except read-only tables and the job trace).
	type cell struct {
		setpoint units.Celsius
		fac      cooling.Facility
		policy   sched.Policy
		ctlTabs  []*lut.Table
	}
	var cells []cell
	for _, sp := range fe.SetpointsC {
		fac := fe.Facility(sp)
		if err := fac.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: facility at %v: %w", sp, err)
		}
		shifted := make([]server.Config, len(s.cfgs))
		delta := fac.AmbientDelta()
		for i, cfg := range s.cfgs {
			shifted[i] = cfg.ShiftAmbient(delta)
		}
		spTables, err := buildRackTables(shifted, ev)
		if err != nil {
			return nil, fmt.Errorf("experiments: facility tables at %v: %w", sp, err)
		}
		la, err := sched.NewLeakageAwareFromTables(s.tables)
		if err != nil {
			return nil, err
		}
		ca, err := sched.NewCapAwareFromTables(s.tables, models, psus)
		if err != nil {
			return nil, err
		}
		pa, err := sched.NewPUEAwareFromTables(spTables, models, psus, fac)
		if err != nil {
			return nil, err
		}
		policies := []sched.Policy{
			sched.NewRoundRobin(),
			sched.NewLeastUtilized(),
			sched.NewCoolestFirst(),
			la,
			ca,
			pa,
		}
		for _, p := range policies {
			cells = append(cells, cell{setpoint: sp, fac: fac, policy: p, ctlTabs: spTables})
		}
	}

	// Fan out the runs; each cell writes only its own slot.
	results := make([]FacilityPolicyResult, len(cells))
	errs := make([]error, len(cells))
	par.ForEach(len(cells), ev.Workers, func(i int) {
		c := cells[i]
		fac := c.fac
		r, err := rackFor(s.cfgs, c.ctlTabs, ev, &fac)
		if err != nil {
			errs[i] = err
			return
		}
		if err := sched.Settle(r, ev.Dt, ev.Stabilize, ev.EventStepping); err != nil {
			errs[i] = err
			return
		}
		r.ResetAccounting()
		sres, err := sched.RunTraceCfg(r, s.jobs, c.policy, sched.TraceConfig{
			Dt: ev.Dt, Horizon: ev.Horizon, WallCapW: ev.WallCapW, EventStepping: ev.EventStepping,
			Metrics: ev.Metrics,
		})
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = FacilityPolicyResult{
			SetpointC: float64(c.setpoint),
			RackPolicyResult: RackPolicyResult{
				Policy: c.policy.Name(),
				CapW:   ev.WallCapW,
				Sched:  sres,
				Rack:   r.Telemetry(),
			},
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: facility run %s@%g°C: %w",
				cells[i].policy.Name(), float64(cells[i].setpoint), err)
		}
	}
	return results, nil
}

// FacilitySweetSpot returns, for the given policy, the setpoint with the
// lowest total facility energy among the rows.
func FacilitySweetSpot(rows []FacilityPolicyResult, policy string) (setpointC, facilityWh float64, err error) {
	found := false
	for _, r := range rows {
		if r.Policy != policy {
			continue
		}
		if !found || r.FacilityWh() < facilityWh {
			setpointC, facilityWh = r.SetpointC, r.FacilityWh()
			found = true
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("experiments: policy %q has no facility rows", policy)
	}
	return setpointC, facilityWh, nil
}

// FormatRackFacilityTable renders the policy×setpoint comparison: wall
// energy, the cooling bill on top of it, the total facility energy, PUE
// and the thermal/scheduling context per cell.
func FormatRackFacilityTable(w io.Writer, rows []FacilityPolicyResult) error {
	headers := []string{
		"Supply(°C)", "Policy", "Wh(AC)", "Cool(Wh)", "Facility(Wh)", "PUE",
		"MaxCPU(°C)", "#fan", "Defer", "Placed", "Wait(s)",
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%.0f", r.SetpointC),
			r.Policy,
			fmt.Sprintf("%.2f", r.WallWh()),
			fmt.Sprintf("%.2f", r.CoolingWh()),
			fmt.Sprintf("%.2f", r.FacilityWh()),
			fmt.Sprintf("%.4f", r.Rack.PUE),
			fmt.Sprintf("%.1f", r.Rack.MaxCPUTempC),
			fmt.Sprintf("%d", r.Rack.FanChanges),
			fmt.Sprintf("%d", r.Sched.Deferrals),
			fmt.Sprintf("%d/%d", r.Sched.Placed, r.Sched.Submitted),
			fmt.Sprintf("%.1f", r.Sched.MeanWaitSec),
		})
	}
	return plot.Table(w, headers, cells)
}
