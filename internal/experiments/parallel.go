package experiments

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/loadgen"
	"repro/internal/par"
	"repro/internal/server"
)

// RunSpec describes one controller evaluation for RunMany. The controller is
// produced by a factory rather than passed directly because controllers are
// stateful and each run must own a fresh one; configs and profiles are
// shared read-only.
type RunSpec struct {
	Label      string // used in error messages, e.g. "ramp/lut"
	Cfg        server.Config
	Prof       loadgen.Profile
	Controller func() (control.Controller, error)
	EC         EvalConfig
}

// RunMany evaluates every spec over a bounded worker pool (workers ≤ 0
// means GOMAXPROCS) and returns results in spec order regardless of
// completion order. Each run builds its own server, so the runs are fully
// independent; with workers = 1 the execution is exactly the serial loop.
// On failure the error of the lowest-indexed failing spec is returned, so
// error reporting is deterministic too.
func RunMany(specs []RunSpec, workers int) ([]RunResult, error) {
	results := make([]RunResult, len(specs))
	errs := make([]error, len(specs))
	par.ForEach(len(specs), workers, func(i int) {
		s := specs[i]
		ctrl, err := s.Controller()
		if err != nil {
			errs[i] = err
			return
		}
		results[i], errs[i] = RunControlled(s.Cfg, s.Prof, ctrl, s.EC)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", specs[i].Label, err)
		}
	}
	return results, nil
}
