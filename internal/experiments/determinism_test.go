package experiments

import (
	"testing"

	"repro/internal/control"
	"repro/internal/server"
	"repro/internal/workload"
)

// TestRunsAreDeterministic guards the reproducibility claim: identical
// seeds must give bit-identical energies, temperatures and fan activity,
// because every stochastic element (workloads, sensor noise) is explicitly
// seeded.
func TestRunsAreDeterministic(t *testing.T) {
	cfg := server.T3Config()
	ec := DefaultEval()
	ec.SampleEvery = 0
	run := func() RunResult {
		w, err := workload.ByID(4, 123) // the most stochastic workload
		if err != nil {
			t.Fatal(err)
		}
		bb, err := control.NewBangBang(control.DefaultBangBang())
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunControlled(cfg, w.Profile, bb, ec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	b := run()
	if a.EnergyKWh != b.EnergyKWh {
		t.Fatalf("energies differ: %v vs %v", a.EnergyKWh, b.EnergyKWh)
	}
	if a.MaxTempC != b.MaxTempC || a.PeakPowerW != b.PeakPowerW {
		t.Fatalf("metrics differ: %+v vs %+v", a, b)
	}
	if a.FanChanges != b.FanChanges || a.AvgRPM != b.AvgRPM {
		t.Fatalf("fan activity differs: %d/%g vs %d/%g",
			a.FanChanges, a.AvgRPM, b.FanChanges, b.AvgRPM)
	}
}

// TestSeedChangesStochasticTests confirms the seed is actually load-bearing
// for the stochastic workloads (Tests 3 and 4).
func TestSeedChangesStochasticTests(t *testing.T) {
	cfg := server.T3Config()
	ec := DefaultEval()
	ec.SampleEvery = 0
	energy := func(seed int64) float64 {
		w, err := workload.ByID(3, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunControlled(cfg, w.Profile, control.NewDefault(), ec)
		if err != nil {
			t.Fatal(err)
		}
		return res.EnergyKWh
	}
	if energy(1) == energy(2) {
		t.Fatal("different seeds gave identical Test-3 energies")
	}
}
