// Package experiments reproduces the paper's evaluation: the Fig. 1
// thermal transients, the Fig. 2 leakage/fan tradeoff curves, Table I's
// controller comparison, and the Fig. 3 temperature traces.
//
// Every experiment follows the paper's protocol (Section IV): the machine
// starts from a cold state forced by idle execution at 3600 RPM, the fan
// speed is set at t=0 and the machine idles for 5 minutes to stabilize,
// the workload runs, and the last 10 minutes are idle so temperatures
// return to a steady state.
package experiments

import (
	"fmt"

	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/units"
)

// TransientConfig describes one Fig. 1 style run.
type TransientConfig struct {
	FanRPM      units.RPM
	Util        units.Percent
	PWM         bool    // duty-cycle the load as LoadGen does
	PWMPeriod   float64 // seconds (visible oscillation in Fig. 1b)
	Stabilize   float64 // idle seconds after setting the fan (paper: 5 min)
	LoadFor     float64 // loaded seconds (paper: 30 min)
	IdleTail    float64 // trailing idle seconds (paper: 10 min)
	Dt          float64
	SampleEvery float64 // temperature sampling period (paper: 10 s)
}

// DefaultTransient returns the paper's Section IV run shape.
func DefaultTransient(rpm units.RPM, util units.Percent) TransientConfig {
	return TransientConfig{
		FanRPM:      rpm,
		Util:        util,
		PWM:         true,
		PWMPeriod:   30,
		Stabilize:   5 * 60,
		LoadFor:     30 * 60,
		IdleTail:    10 * 60,
		Dt:          1,
		SampleEvery: 10,
	}
}

// TransientResult is a sampled temperature trajectory.
type TransientResult struct {
	Label    string
	TimeMin  []float64 // minutes since t=0 (fan set, idle stabilization)
	TempC    []float64 // average CPU temperature (sensor readings)
	UtilPct  []float64
	SteadyC  float64 // temperature at the end of the loaded phase
	SettleAt float64 // minutes into the loaded phase when within 1 °C of steady
}

// RunTransient executes one characterization run against a fresh server.
func RunTransient(cfg server.Config, tc TransientConfig) (TransientResult, error) {
	if tc.Dt <= 0 || tc.SampleEvery <= 0 {
		return TransientResult{}, fmt.Errorf("experiments: non-positive timing in transient config")
	}
	srv, err := server.New(cfg)
	if err != nil {
		return TransientResult{}, err
	}
	srv.Fans().SetAll(tc.FanRPM)

	opts := []loadgen.Option{loadgen.WithPWMPeriod(tc.PWMPeriod)}
	if !tc.PWM {
		opts = []loadgen.Option{loadgen.WithoutPWM()}
	}
	gen, err := loadgen.New(loadgen.Constant{Level: tc.Util, Dur: tc.LoadFor}, opts...)
	if err != nil {
		return TransientResult{}, err
	}

	res := TransientResult{Label: fmt.Sprintf("%.0fRPM/%.0f%%", float64(tc.FanRPM), float64(tc.Util))}
	nextSample := 0.0
	loadStart := tc.Stabilize
	loadEnd := tc.Stabilize + tc.LoadFor
	total := loadEnd + tc.IdleTail

	for now := 0.0; now < total; now += tc.Dt {
		switch {
		case now < loadStart:
			srv.SetLoad(0)
		case now < loadEnd:
			srv.SetLoad(gen.Load(now - loadStart))
		default:
			srv.SetLoad(0)
		}
		srv.Step(tc.Dt)
		if srv.Now() >= nextSample {
			res.TimeMin = append(res.TimeMin, srv.Now()/60)
			res.TempC = append(res.TempC, avgC(srv.CPUTempSensorsReuse()))
			res.UtilPct = append(res.UtilPct, float64(srv.Utilization()))
			nextSample += tc.SampleEvery
		}
	}

	// Steady temperature: average of the last minute of the loaded phase.
	var steadySum float64
	steadyN := 0
	for i, tm := range res.TimeMin {
		sec := tm * 60
		if sec >= loadEnd-60 && sec < loadEnd {
			steadySum += res.TempC[i]
			steadyN++
		}
	}
	if steadyN > 0 {
		res.SteadyC = steadySum / float64(steadyN)
	}
	// Settling time within the loaded phase.
	res.SettleAt = -1
	for i, tm := range res.TimeMin {
		sec := tm * 60
		if sec < loadStart || sec >= loadEnd {
			continue
		}
		if res.SteadyC != 0 && absf(res.TempC[i]-res.SteadyC) < 1 {
			res.SettleAt = (sec - loadStart) / 60
			break
		}
	}
	return res, nil
}

// Fig1a runs the paper's Figure 1(a): temperature transients at 100%
// utilization for each fan speed.
func Fig1a(cfg server.Config, rpms []units.RPM) ([]TransientResult, error) {
	if len(rpms) == 0 {
		rpms = []units.RPM{1800, 2400, 3000, 3600, 4200}
	}
	out := make([]TransientResult, 0, len(rpms))
	for _, r := range rpms {
		tc := DefaultTransient(r, 100)
		res, err := RunTransient(cfg, tc)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig1a %v: %w", r, err)
		}
		res.Label = fmt.Sprintf("%.0f RPM", float64(r))
		out = append(out, res)
	}
	return out, nil
}

// Fig1b runs the paper's Figure 1(b): transients at 1800 RPM for each
// utilization level, PWM oscillations included.
func Fig1b(cfg server.Config, utils []units.Percent) ([]TransientResult, error) {
	if len(utils) == 0 {
		utils = []units.Percent{25, 50, 75, 100}
	}
	out := make([]TransientResult, 0, len(utils))
	for _, u := range utils {
		tc := DefaultTransient(1800, u)
		res, err := RunTransient(cfg, tc)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig1b %v: %w", u, err)
		}
		res.Label = fmt.Sprintf("%.0f%%", float64(u))
		out = append(out, res)
	}
	return out, nil
}

func avgC(readings []units.Celsius) float64 {
	var s float64
	for _, r := range readings {
		s += float64(r)
	}
	return s / float64(len(readings))
}

func maxC(readings []units.Celsius) units.Celsius {
	m := units.Celsius(-1e9)
	for _, r := range readings {
		if r > m {
			m = r
		}
	}
	return m
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
