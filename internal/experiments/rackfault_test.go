package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/server"
)

// smallFaultEval shrinks the catalogue run for fast deterministic tests:
// a 4-server rack, a 20-minute horizon, and fault times rescaled into it.
func smallFaultEval() FaultEval {
	fe := DefaultFaultEval()
	fe.Rack.Servers = 4
	fe.Rack.Horizon = 1200
	fe.Rack.Stabilize = 60
	fe.Scenarios = []FaultScenario{
		{Name: "none"},
		{Name: "fan-stick", Schedule: fault.Schedule{Events: []fault.Event{
			{Kind: fault.FanStick, Server: 0, Fan: 0, At: 200},
		}}},
		{Name: "cascade", Schedule: fault.Schedule{Events: []fault.Event{
			{Kind: fault.FanFail, Server: 0, Fan: 0, At: 200},
			{Kind: fault.PSUFail, Server: 1, At: 400},
			{Kind: fault.CRACOutage, At: 600, Clear: 900},
			{Kind: fault.ServerTrip, Server: 3, At: 700},
		}}},
	}
	return fe
}

// TestRackFaultComparisonDeterministicAcrossWorkers extends the
// golden-table contract to degraded runs: serial and parallel cell
// execution must agree byte-for-byte, rows and rendered table alike.
func TestRackFaultComparisonDeterministicAcrossWorkers(t *testing.T) {
	base := server.T3Config()
	fe := smallFaultEval()

	fe.Rack.Workers = 1
	serial, err := RackFaultComparison(base, fe)
	if err != nil {
		t.Fatal(err)
	}
	fe.Rack.Workers = 8
	parallel, err := RackFaultComparison(base, fe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel rows differ from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	var a, b bytes.Buffer
	if err := FormatRackFaultTable(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := FormatRackFaultTable(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("rendered tables differ:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
	for _, col := range []string{"Scenario", "Surv", "Req", "cascade", "pue-aware"} {
		if !strings.Contains(a.String(), col) {
			t.Fatalf("table missing %q:\n%s", col, a.String())
		}
	}
}

// TestRackFaultScenarioOutcomes checks the catalogue's graceful-degradation
// semantics end to end for every policy.
func TestRackFaultScenarioOutcomes(t *testing.T) {
	fe := smallFaultEval()
	rows, err := RackFaultComparison(server.T3Config(), fe)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(fe.Scenarios) * 6; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	byScenario := map[string][]RackFaultResult{}
	for _, r := range rows {
		byScenario[r.Scenario] = append(byScenario[r.Scenario], r)
	}
	for _, r := range byScenario["none"] {
		if r.Sched.Requeued != 0 || r.Sched.Lost != 0 || r.Sched.LostJobSeconds != 0 {
			t.Fatalf("healthy run shows disruption: %+v", r)
		}
		if r.HealthyAtEnd != fe.Rack.Servers {
			t.Fatalf("healthy run lost servers: %d/%d", r.HealthyAtEnd, fe.Rack.Servers)
		}
		if r.Rack.WorstAccel <= 0 {
			t.Fatalf("reliability roll-up missing on %s", r.Policy)
		}
	}
	for _, r := range byScenario["cascade"] {
		// The permanent PSU failure and the forced trip remove two slots.
		if r.HealthyAtEnd != fe.Rack.Servers-2 {
			t.Fatalf("%s: cascade survivors %d, want %d", r.Policy, r.HealthyAtEnd, fe.Rack.Servers-2)
		}
		// Every job is either completed, still running at the horizon, or
		// accounted as destroyed work — nothing silently vanishes, and the
		// run terminated (we are here) starvation-free.
		if r.Sched.Requeued == 0 && r.Sched.Lost == 0 {
			t.Fatalf("%s: cascade killed no jobs", r.Policy)
		}
		if r.Sched.LostJobSeconds <= 0 {
			t.Fatalf("%s: cascade destroyed no job-seconds", r.Policy)
		}
		if r.Sched.Completed > r.Sched.Submitted {
			t.Fatalf("%s: completed %d > submitted %d", r.Policy, r.Sched.Completed, r.Sched.Submitted)
		}
	}
}

// TestRackFaultNoneMatchesNilSchedule: the "none" catalogue entry (nil
// schedule) and an explicitly empty schedule must produce byte-identical
// rows — the fault plumbing is invisible until an event exists.
func TestRackFaultNoneMatchesNilSchedule(t *testing.T) {
	fe := smallFaultEval()
	fe.Scenarios = []FaultScenario{{Name: "none"}}
	ref, err := RackFaultComparison(server.T3Config(), fe)
	if err != nil {
		t.Fatal(err)
	}
	fe.Scenarios = []FaultScenario{{Name: "none", Schedule: fault.Schedule{Events: []fault.Event{}}}}
	empty, err := RackFaultComparison(server.T3Config(), fe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, empty) {
		t.Fatalf("empty schedule diverged from nil:\nnil:   %+v\nempty: %+v", ref, empty)
	}
}
