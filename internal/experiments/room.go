package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cooling"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/plot"
	"repro/internal/power"
	"repro/internal/room"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/units"
)

// RoomEval parameterizes the room-scale policy comparison: N heterogeneous
// racks behind one shared CRAC/chiller bank, thermally coupled by a
// recirculation matrix, driven by one Poisson trace per two-level policy.
type RoomEval struct {
	Racks   int     // racks in the room
	Servers int     // servers per rack
	Dt      float64 // simulation step, seconds
	Horizon float64 // measured window, seconds
	// Stabilize is the idle settling window before the measured trace.
	Stabilize float64

	TraceSeed    int64
	Rate         float64         // job arrivals per second, room-wide
	MeanDuration float64         // mean job service time, seconds
	Demands      []units.Percent // per-job demand levels

	// Workers bounds the experiment's fan-outs (per-policy cells and LUT
	// builds). Room stepping inside each cell is serial: the concurrent
	// cells already saturate the pool. Results are identical for every
	// value.
	Workers int

	// EventStepping selects the room's event-driven kernel for every run
	// (see room.TraceConfig.EventStepping); false is the fixed-dt
	// reference.
	EventStepping bool

	// Recirc, when non-nil, overrides the recirculation coupling; nil picks
	// room.NeighborMatrix(Racks). Pass room.NewMatrix(Racks) (all-zero) for
	// an uncoupled room.
	Recirc *room.Matrix

	// NoFacility drops the shared CRAC bank: cooling exactly zero, PUE
	// exactly 1 — and the recirc-pue combo falls back to leakage-aware
	// slots (a facility-aware cost model without a facility is undefined).
	NoFacility bool

	// Economizer attaches cooling.DefaultEconomizer to the shared bank:
	// with the default models the outdoor air sits above the engagement
	// setpoint, so the chiller still runs — set the chiller's OutdoorC
	// below the setpoint (via Recirc-style overrides in code) to see free
	// cooling. Ignored under NoFacility.
	Economizer bool

	LUTCacheDir string
	FanControl  string

	// Policy, when non-empty, restricts the comparison to the single named
	// policy combo (see RoomPolicies' labels).
	Policy string

	// Metrics, when non-nil, is the run-metrics registry every measured
	// trace instruments (room.TraceConfig.Metrics), shared across cells —
	// commutative updates only, so the dump is byte-identical for every
	// Workers value.
	Metrics *obs.Registry

	// Ctx, when non-nil, makes every cell's run cooperatively cancellable
	// (room.TraceConfig.Ctx): runs stop at their next decision-step
	// boundary and the comparison surfaces an error wrapping ctx.Err().
	// Room runs have no resume cursor — cancellation bounds wall-clock.
	Ctx context.Context
}

// DefaultRoomEval returns a 4-rack × 8-server room under a 30-minute trace
// with ~30% mean offered load — the rack comparison's contention level,
// scaled to room size.
func DefaultRoomEval() RoomEval {
	return RoomEval{
		Racks:        4,
		Servers:      8,
		Dt:           1,
		Horizon:      1800,
		Stabilize:    300,
		TraceSeed:    42,
		Rate:         0.08,
		MeanDuration: 300,
		Demands:      []units.Percent{20, 40, 60},
	}
}

// rackEval is the per-rack view of the room eval, consumed by the shared
// rack-building helpers (table builds, controller wiring). The delivery
// chain stays ideal at room scale — PSU/PDU modelling is a rack-scope
// feature.
func (ev RoomEval) rackEval() RackEval {
	return RackEval{
		Servers: ev.Servers, Dt: ev.Dt, Horizon: ev.Horizon, Stabilize: ev.Stabilize,
		Workers: ev.Workers, LUTCacheDir: ev.LUTCacheDir, FanControl: ev.FanControl,
		EventStepping: ev.EventStepping,
	}
}

// facility assembles the shared CRAC bank: the default CRAC/chiller pair
// at the reference supply setpoint (ambient delta zero, so the reference
// LUTs stay calibrated), optionally with the economizer attached.
func (ev RoomEval) facility() *cooling.Facility {
	if ev.NoFacility {
		return nil
	}
	fac := cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC)
	if ev.Economizer {
		econ := cooling.DefaultEconomizer()
		fac.Econ = &econ
	}
	return &fac
}

// recirc returns the room coupling: the configured matrix, or the default
// neighbor spill-over.
func (ev RoomEval) recirc() *room.Matrix {
	if ev.Recirc != nil {
		return ev.Recirc
	}
	return room.NeighborMatrix(ev.Racks)
}

// roomServerConfigs builds every rack's heterogeneous slot configurations:
// the same cold/hot-aisle gradient and DIMM mix per rack, sensor noise
// seeds distinct across the whole room. Racks are physics-identical slot
// for slot, so one LUT grid serves every rack.
func roomServerConfigs(base server.Config, ev RoomEval) [][]server.Config {
	out := make([][]server.Config, ev.Racks)
	for r := range out {
		b := base
		b.NoiseSeed = base.NoiseSeed + int64(100000*(r+1))
		out[r] = RackServerConfigs(b, ev.Servers)
	}
	return out
}

// roomFor assembles a fresh room over the per-rack configs: each rack gets
// its own fan controllers from the shared tables; the room owns the
// facility and the recirculation matrix. The room steps serially within a
// comparison cell (parallelism lives at the cell level).
func roomFor(cfgs [][]server.Config, tables []*lut.Table, ev RoomEval) (*room.Room, error) {
	rev := ev.rackEval()
	specs := make([]room.RackSpec, len(cfgs))
	for r, rackCfgs := range cfgs {
		rc, err := rackConfigFor(rackCfgs, tables, rev, nil)
		if err != nil {
			return nil, err
		}
		specs[r] = room.RackSpec{Name: fmt.Sprintf("rack%02d", r), Config: rc}
	}
	return room.New(room.Config{
		Racks:    specs,
		Workers:  1,
		Recirc:   ev.recirc(),
		Facility: ev.facility(),
	})
}

// roomPolicyCell is one comparison cell: a label and a builder returning a
// fresh two-level policy (choosers and slot policies are stateful, so
// every concurrent run constructs its own instances over the shared
// read-only tables).
type roomPolicyCell struct {
	label string
	build func() (*room.Policy, error)
}

// RoomPolicyLabels returns the comparison's policy-combo labels in table
// order.
func RoomPolicyLabels() []string {
	return []string{"rr", "least-loaded", "coolest", "min-cost", "recirc-aware", "recirc-pue"}
}

// roomPolicyCells builds the six chooser × slot-policy combos: the blind
// baselines (round-robin, least-loaded), the reactive thermal pair
// (coolest rack + coolest slot), and the proactive cost-model ladder
// (min-cost, recirculation-aware, recirculation + facility aware).
func roomPolicyCells(cfgs [][]server.Config, tables []*lut.Table, ev RoomEval) []roomPolicyCell {
	n := ev.Racks
	perRack := make([][]*lut.Table, n)
	for r := range perRack {
		perRack[r] = tables
	}
	models := make([]power.ServerModel, len(cfgs[0]))
	for i, cfg := range cfgs[0] {
		models[i] = cfg.Power
	}
	fac := ev.facility()

	leakSlots := func() ([]sched.Policy, error) {
		slots := make([]sched.Policy, n)
		for r := range slots {
			la, err := sched.NewLeakageAwareFromTables(tables)
			if err != nil {
				return nil, err
			}
			slots[r] = la
		}
		return slots, nil
	}
	pueSlots := func() ([]sched.Policy, error) {
		if fac == nil {
			return leakSlots()
		}
		slots := make([]sched.Policy, n)
		for r := range slots {
			pa, err := sched.NewPUEAwareFromTables(tables, models, nil, *fac)
			if err != nil {
				return nil, err
			}
			slots[r] = pa
		}
		return slots, nil
	}
	simpleSlots := func(mk func() sched.Policy) []sched.Policy {
		slots := make([]sched.Policy, n)
		for r := range slots {
			slots[r] = mk()
		}
		return slots
	}

	return []roomPolicyCell{
		{"rr", func() (*room.Policy, error) {
			return room.NewPolicy(room.NewRoundRobinRacks(),
				simpleSlots(func() sched.Policy { return sched.NewRoundRobin() }))
		}},
		{"least-loaded", func() (*room.Policy, error) {
			return room.NewPolicy(room.NewLeastLoadedRack(),
				simpleSlots(func() sched.Policy { return sched.NewLeastUtilized() }))
		}},
		{"coolest", func() (*room.Policy, error) {
			return room.NewPolicy(room.NewCoolestRack(),
				simpleSlots(func() sched.Policy { return sched.NewCoolestFirst() }))
		}},
		{"min-cost", func() (*room.Policy, error) {
			ch, err := room.NewMinCostRack(perRack)
			if err != nil {
				return nil, err
			}
			slots, err := leakSlots()
			if err != nil {
				return nil, err
			}
			return room.NewPolicy(ch, slots)
		}},
		{"recirc-aware", func() (*room.Policy, error) {
			ch, err := room.NewRecircAware(perRack, 0)
			if err != nil {
				return nil, err
			}
			slots, err := leakSlots()
			if err != nil {
				return nil, err
			}
			return room.NewPolicy(ch, slots)
		}},
		{"recirc-pue", func() (*room.Policy, error) {
			ch, err := room.NewRecircAware(perRack, 0)
			if err != nil {
				return nil, err
			}
			slots, err := pueSlots()
			if err != nil {
				return nil, err
			}
			return room.NewPolicy(ch, slots)
		}},
	}
}

// RoomPolicyResult is one row of the room comparison table.
type RoomPolicyResult struct {
	Policy string
	Sched  room.Result
	Room   room.Telemetry
}

// WallWh returns the room wall energy in watt-hours.
func (r RoomPolicyResult) WallWh() float64 { return r.Room.WallEnergyKWh * 1000 }

// CoolingWh returns the shared bank's cooling energy in watt-hours.
func (r RoomPolicyResult) CoolingWh() float64 { return r.Room.CoolingEnergyKWh * 1000 }

// FacilityWh returns the total facility energy in watt-hours — the number
// the room-scope policies minimize.
func (r RoomPolicyResult) FacilityWh() float64 { return r.Room.FacilityEnergyKWh * 1000 }

// RoomPolicyComparison runs the same Poisson job trace across all six
// two-level policy combos on identical fresh rooms and returns one result
// row per combo. One LUT grid serves every rack of every cell (racks are
// physics-identical slot for slot); cells fan out over the worker pool,
// each writing only its own slot, so rows are byte-identical for every
// worker count.
func RoomPolicyComparison(base server.Config, ev RoomEval) ([]RoomPolicyResult, error) {
	if ev.Racks <= 0 || ev.Servers <= 0 || ev.Dt <= 0 || ev.Horizon <= 0 {
		return nil, fmt.Errorf("experiments: room eval needs positive racks/servers/dt/horizon, got %+v", ev)
	}
	cfgs := roomServerConfigs(base, ev)
	tables, err := buildRackTables(cfgs[0], ev.rackEval())
	if err != nil {
		return nil, err
	}
	cells := roomPolicyCells(cfgs, tables, ev)
	if ev.Policy != "" {
		var kept []roomPolicyCell
		for _, c := range cells {
			if c.label == ev.Policy {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("experiments: unknown room policy %q (want one of %v)", ev.Policy, RoomPolicyLabels())
		}
		cells = kept
	}
	specs, err := loadgen.PoissonTrace(loadgen.PoissonTraceConfig{
		Seed:         ev.TraceSeed,
		Horizon:      ev.Horizon,
		Rate:         ev.Rate,
		MeanDuration: ev.MeanDuration,
		Demands:      ev.Demands,
	})
	if err != nil {
		return nil, err
	}
	jobs := sched.JobsFromSpecs(specs)

	results := make([]RoomPolicyResult, len(cells))
	errs := make([]error, len(cells))
	par.ForEach(len(cells), ev.Workers, func(i int) {
		results[i], errs[i] = runRoomPolicy(cells[i], cfgs, tables, jobs, ev)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: room policy %s: %w", cells[i].label, err)
		}
	}
	return results, nil
}

// runRoomPolicy is one cell's full run: fresh room, idle stabilization,
// accounting reset, then the measured trace window.
func runRoomPolicy(cell roomPolicyCell, cfgs [][]server.Config, tables []*lut.Table, jobs []sched.Job, ev RoomEval) (RoomPolicyResult, error) {
	rm, err := roomFor(cfgs, tables, ev)
	if err != nil {
		return RoomPolicyResult{}, err
	}
	pol, err := cell.build()
	if err != nil {
		return RoomPolicyResult{}, err
	}
	if err := room.Settle(rm, ev.Dt, ev.Stabilize, ev.EventStepping); err != nil {
		return RoomPolicyResult{}, err
	}
	rm.ResetAccounting()
	sres, err := room.RunTrace(rm, jobs, pol, room.TraceConfig{
		Dt: ev.Dt, Horizon: ev.Horizon, EventStepping: ev.EventStepping, Metrics: ev.Metrics,
		Ctx: ev.Ctx,
	})
	if err != nil {
		return RoomPolicyResult{}, err
	}
	return RoomPolicyResult{Policy: cell.label, Sched: sres, Room: rm.Telemetry()}, nil
}

// FormatRoomTable renders the room comparison: wall energy, the shared
// bank's cooling bill, facility total, PUE, the recirculation high-water
// and the thermal/scheduling context per combo.
func FormatRoomTable(w io.Writer, rows []RoomPolicyResult) error {
	headers := []string{
		"Policy", "Wh(AC)", "Cool(Wh)", "Facility(Wh)", "PUE",
		"PeakFac(W)", "MaxInlet(°C)", "Recirc(°C)",
		"Placed", "Done", "Wait(s)", "MaxQ",
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Policy,
			fmt.Sprintf("%.2f", r.WallWh()),
			fmt.Sprintf("%.2f", r.CoolingWh()),
			fmt.Sprintf("%.2f", r.FacilityWh()),
			fmt.Sprintf("%.4f", r.Room.PUE),
			fmt.Sprintf("%.0f", r.Room.PeakFacilityPowerW),
			fmt.Sprintf("%.1f", r.Room.MaxInletC),
			fmt.Sprintf("%.2f", r.Room.MaxRecircOffsetC),
			fmt.Sprintf("%d/%d", r.Sched.Placed, r.Sched.Submitted),
			fmt.Sprintf("%d", r.Sched.Completed),
			fmt.Sprintf("%.1f", r.Sched.MeanWaitSec),
			fmt.Sprintf("%d", r.Sched.MaxQueueLen),
		})
	}
	return plot.Table(w, headers, cells)
}
