package experiments

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/units"
)

// FaultConfig describes a stuck-fan injection experiment: run a controller
// at a constant load, freeze one fan partway through, and measure the
// thermal consequence and the controller's compensation.
type FaultConfig struct {
	Util      units.Percent // constant load
	FanIndex  int           // which fan sticks
	InjectAt  float64       // seconds into the measured window
	Duration  float64       // total measured window, seconds
	Stabilize float64       // pre-window stabilization
	Dt        float64
}

// DefaultFault sticks fan 0 twenty minutes into an 80%-load hour.
func DefaultFault() FaultConfig {
	return FaultConfig{
		Util:      80,
		FanIndex:  0,
		InjectAt:  20 * 60,
		Duration:  60 * 60,
		Stabilize: 5 * 60,
		Dt:        1,
	}
}

// FaultResult reports the experiment outcome.
type FaultResult struct {
	Controller    string
	PreFaultMaxC  float64 // max die temp before injection
	PostFaultMaxC float64 // max die temp after injection
	DeltaC        float64 // thermal penalty of the fault
	FanChanges    int     // controller activity after the fault
	Tripped       bool
}

// RunFault executes the stuck-fan experiment for one controller.
func RunFault(cfg server.Config, ctrl control.Controller, fc FaultConfig) (FaultResult, error) {
	if fc.Dt <= 0 || fc.Duration <= 0 || fc.InjectAt < 0 || fc.InjectAt >= fc.Duration {
		return FaultResult{}, fmt.Errorf("experiments: bad fault timing %+v", fc)
	}
	srv, err := server.New(cfg)
	if err != nil {
		return FaultResult{}, err
	}
	if fc.FanIndex < 0 || fc.FanIndex >= srv.Fans().NumFans() {
		return FaultResult{}, fmt.Errorf("experiments: fan index %d out of range", fc.FanIndex)
	}
	ctrl.Reset()
	gen, err := loadgen.New(loadgen.Constant{Level: fc.Util, Dur: fc.Duration}, loadgen.WithoutPWM())
	if err != nil {
		return FaultResult{}, err
	}

	res := FaultResult{Controller: ctrl.Name()}
	changes := 0
	tick := func() {
		obs := control.Observation{
			Now:         srv.Now(),
			Utilization: srv.Utilization(),
			MaxCPUTemp:  maxC(srv.CPUTempSensorsReuse()),
			CurrentRPM:  srv.Fans().Target(),
		}
		dec := ctrl.Tick(obs)
		if dec.Changed {
			srv.Fans().SetAll(dec.Target)
			changes++
		}
	}

	for now := 0.0; now < fc.Stabilize; now += fc.Dt {
		srv.SetLoad(0)
		tick()
		srv.Step(fc.Dt)
	}

	injected := false
	for elapsed := 0.0; elapsed < fc.Duration; elapsed += fc.Dt {
		if !injected && elapsed >= fc.InjectAt {
			if err := srv.Fans().StickFan(fc.FanIndex); err != nil {
				return FaultResult{}, err
			}
			injected = true
			changes = 0
		}
		srv.SetLoad(gen.Load(elapsed))
		tick()
		srv.Step(fc.Dt)
		t := float64(srv.MaxCPUTemp())
		if injected {
			if t > res.PostFaultMaxC {
				res.PostFaultMaxC = t
			}
		} else if t > res.PreFaultMaxC {
			res.PreFaultMaxC = t
		}
	}
	res.DeltaC = res.PostFaultMaxC - res.PreFaultMaxC
	res.FanChanges = changes
	res.Tripped = srv.Tripped()
	return res, nil
}
