package experiments

import (
	"fmt"
	"math"

	"repro/internal/control"
	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/units"
)

// FaultConfig describes a stuck-fan injection experiment: run a controller
// at a constant load, freeze one fan partway through, and measure the
// thermal consequence and the controller's compensation.
type FaultConfig struct {
	Util      units.Percent // constant load
	FanIndex  int           // which fan sticks
	InjectAt  float64       // seconds into the measured window
	Duration  float64       // total measured window, seconds
	Stabilize float64       // pre-window stabilization
	Dt        float64
}

// DefaultFault sticks fan 0 twenty minutes into an 80%-load hour.
func DefaultFault() FaultConfig {
	return FaultConfig{
		Util:      80,
		FanIndex:  0,
		InjectAt:  20 * 60,
		Duration:  60 * 60,
		Stabilize: 5 * 60,
		Dt:        1,
	}
}

// FaultResult reports the experiment outcome.
type FaultResult struct {
	Controller    string
	PreFaultMaxC  float64 // max die temp before injection
	PostFaultMaxC float64 // max die temp after injection
	DeltaC        float64 // thermal penalty of the fault
	FanChanges    int     // controller activity after the fault
	Tripped       bool
}

// RunFault executes the stuck-fan experiment for one controller.
func RunFault(cfg server.Config, ctrl control.Controller, fc FaultConfig) (FaultResult, error) {
	if fc.Dt <= 0 || fc.Duration <= 0 || fc.InjectAt < 0 || fc.InjectAt >= fc.Duration {
		return FaultResult{}, fmt.Errorf("experiments: bad fault timing %+v", fc)
	}
	srv, err := server.New(cfg)
	if err != nil {
		return FaultResult{}, err
	}
	if fc.FanIndex < 0 || fc.FanIndex >= srv.Fans().NumFans() {
		return FaultResult{}, fmt.Errorf("experiments: fan index %d out of range", fc.FanIndex)
	}
	ctrl.Reset()
	gen, err := loadgen.New(loadgen.Constant{Level: fc.Util, Dur: fc.Duration}, loadgen.WithoutPWM())
	if err != nil {
		return FaultResult{}, err
	}

	res := FaultResult{Controller: ctrl.Name()}
	changes := 0
	tick := func() {
		obs := control.Observation{
			Now:         srv.Now(),
			Utilization: srv.Utilization(),
			MaxCPUTemp:  maxC(srv.CPUTempSensorsReuse()),
			CurrentRPM:  srv.Fans().Target(),
		}
		dec := ctrl.Tick(obs)
		if dec.Changed {
			srv.Fans().SetAll(dec.Target)
			changes++
		}
	}

	// Integer step indices throughout: an accumulated `elapsed += dt` drifts
	// under a non-integer dt (FLP sums are inexact), moving both the window
	// length and the injection instant off the grid. Computing elapsed as
	// k·dt and pinning the injection to the first step at or after InjectAt
	// keeps the experiment exact for any dt — the same grid-arithmetic
	// pinning the trace runners use.
	for k, n := 0, stepCount(fc.Stabilize, fc.Dt); k < n; k++ {
		srv.SetLoad(0)
		tick()
		srv.Step(fc.Dt)
	}

	steps := stepCount(fc.Duration, fc.Dt)
	injectStep := stepAtOrAfterRel(fc.InjectAt, fc.Dt)
	injected := false
	for k := 0; k < steps; k++ {
		elapsed := float64(k) * fc.Dt
		if !injected && k >= injectStep {
			if err := srv.Fans().StickFan(fc.FanIndex); err != nil {
				return FaultResult{}, err
			}
			injected = true
			changes = 0
		}
		srv.SetLoad(gen.Load(elapsed))
		tick()
		srv.Step(fc.Dt)
		t := float64(srv.MaxCPUTemp())
		if injected {
			if t > res.PostFaultMaxC {
				res.PostFaultMaxC = t
			}
		} else if t > res.PreFaultMaxC {
			res.PreFaultMaxC = t
		}
	}
	res.DeltaC = res.PostFaultMaxC - res.PreFaultMaxC
	res.FanChanges = changes
	res.Tripped = srv.Tripped()
	return res, nil
}

// stepCount is the grid-step count covering a duration: ceil(d/dt) with a
// tolerance so an exact multiple is not rounded up by FLP noise.
func stepCount(d, dt float64) int {
	if d <= 0 {
		return 0
	}
	return int(math.Ceil(d/dt - 1e-9))
}

// stepAtOrAfterRel returns the smallest step k with k·dt ≥ t, the fault
// runners' pinning rule, with the correction loops evaluated on the same
// float expression the step loop uses for elapsed.
func stepAtOrAfterRel(t, dt float64) int {
	k := int(t / dt)
	if k < 0 {
		k = 0
	}
	for float64(k)*dt < t {
		k++
	}
	for k > 0 && float64(k-1)*dt >= t {
		k--
	}
	return k
}
