package experiments

import (
	"strings"
	"testing"

	"repro/internal/server"
)

// tableIRows runs the full Table I once per test binary invocation.
var tableICache []TableIRow

func tableIRows(t *testing.T) []TableIRow {
	t.Helper()
	if tableICache != nil {
		return tableICache
	}
	rows, err := TableI(server.T3Config(), 42, DefaultEval())
	if err != nil {
		t.Fatal(err)
	}
	tableICache = rows
	return rows
}

func TestTableIStructure(t *testing.T) {
	rows := tableIRows(t)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 tests", len(rows))
	}
	for _, r := range rows {
		if r.Default.Controller != "Default" || r.BangBang.Controller != "Bang-bang" || r.LUT.Controller != "LUT" {
			t.Fatalf("controller names wrong in test %d", r.TestID)
		}
		if r.Default.Tripped || r.BangBang.Tripped || r.LUT.Tripped {
			t.Fatalf("test %d tripped thermal protection", r.TestID)
		}
	}
}

func TestTableIEnergyMagnitudes(t *testing.T) {
	// Paper energies are 0.61–0.69 kWh per 80-minute test.
	for _, r := range tableIRows(t) {
		for _, res := range []RunResult{r.Default, r.BangBang, r.LUT} {
			if res.EnergyKWh < 0.50 || res.EnergyKWh > 0.80 {
				t.Errorf("test %d %s energy %.4f kWh outside the paper's band",
					r.TestID, res.Controller, res.EnergyKWh)
			}
		}
	}
}

func TestTableILUTWinsEveryTest(t *testing.T) {
	// The paper's headline: the LUT controller has the lowest energy on
	// every test, bang-bang in between. In our calibration the LUT/bang
	// comparison is a statistical near-tie on some tests (the late-reaction
	// leakage penalty almost exactly cancels the fan savings at the slow
	// calibrated thermal constants — see EXPERIMENTS.md), so we require
	// LUT ≤ bang within a 1 Wh tolerance, and both strictly below default.
	const tieTolKWh = 0.001
	for _, r := range tableIRows(t) {
		if r.LUT.EnergyKWh >= r.Default.EnergyKWh {
			t.Errorf("test %d: LUT %.4f not below default %.4f",
				r.TestID, r.LUT.EnergyKWh, r.Default.EnergyKWh)
		}
		if r.LUT.EnergyKWh > r.BangBang.EnergyKWh+tieTolKWh {
			t.Errorf("test %d: LUT %.4f worse than bang-bang %.4f beyond tie tolerance",
				r.TestID, r.LUT.EnergyKWh, r.BangBang.EnergyKWh)
		}
		if r.BangBang.EnergyKWh >= r.Default.EnergyKWh {
			t.Errorf("test %d: bang-bang %.4f not below default %.4f",
				r.TestID, r.BangBang.EnergyKWh, r.Default.EnergyKWh)
		}
	}
}

func TestTableINetSavingsBand(t *testing.T) {
	// Paper: LUT saves 3.9–8.7% net; abstract says "up to 9%".
	for _, r := range tableIRows(t) {
		if r.LUT.NetSavingsPct < 2 || r.LUT.NetSavingsPct > 20 {
			t.Errorf("test %d: LUT net savings %.1f%% far from the paper's 3.9-8.7%%",
				r.TestID, r.LUT.NetSavingsPct)
		}
		// Allow the documented near-tie: bang may not beat LUT by more
		// than half a percentage point.
		if r.BangBang.NetSavingsPct > r.LUT.NetSavingsPct+0.5 {
			t.Errorf("test %d: bang-bang savings %.1f%% exceed LUT's %.1f%%",
				r.TestID, r.BangBang.NetSavingsPct, r.LUT.NetSavingsPct)
		}
	}
}

func TestTableITemperatures(t *testing.T) {
	for _, r := range tableIRows(t) {
		// Default overcools: max temp around 60 °C.
		if r.Default.MaxTempC < 45 || r.Default.MaxTempC > 67 {
			t.Errorf("test %d: default max temp %.0f, paper ~60-62", r.TestID, r.Default.MaxTempC)
		}
		// LUT runs warm but within the 75 °C reliability envelope
		// (paper: 69-75; small sensor-noise margin).
		if r.LUT.MaxTempC > 77 {
			t.Errorf("test %d: LUT max temp %.0f exceeds target", r.TestID, r.LUT.MaxTempC)
		}
		if r.LUT.MaxTempC <= r.Default.MaxTempC {
			t.Errorf("test %d: LUT max %.0f not above default %.0f",
				r.TestID, r.LUT.MaxTempC, r.Default.MaxTempC)
		}
		// Bang-bang allows the hottest excursions (paper: 75-77).
		if r.BangBang.MaxTempC > 83 {
			t.Errorf("test %d: bang-bang max temp %.0f too hot", r.TestID, r.BangBang.MaxTempC)
		}
	}
}

func TestTableIFanBehaviour(t *testing.T) {
	for _, r := range tableIRows(t) {
		// Default: fixed speed, no changes, ~3300 RPM.
		if r.Default.FanChanges != 0 {
			t.Errorf("test %d: default changed fans %d times", r.TestID, r.Default.FanChanges)
		}
		if r.Default.AvgRPM < 3250 || r.Default.AvgRPM > 3350 {
			t.Errorf("test %d: default avg RPM %.0f", r.TestID, r.Default.AvgRPM)
		}
		// Controllers run much slower fans on average (paper: ~1900-2200).
		for _, res := range []RunResult{r.BangBang, r.LUT} {
			if res.AvgRPM < 1800 || res.AvgRPM > 2900 {
				t.Errorf("test %d: %s avg RPM %.0f outside the paper's ~1900-2200 band",
					r.TestID, res.Controller, res.AvgRPM)
			}
		}
		// A modest number of fan changes (paper: 6-14), and never absurd.
		// The LUT controller reacts on every test; bang-bang may sit still
		// on workloads whose temperatures never leave its dead band
		// (Test-4's gentle shell load in our calibration).
		if r.LUT.FanChanges < 1 || r.LUT.FanChanges > 40 {
			t.Errorf("test %d: LUT fan changes = %d", r.TestID, r.LUT.FanChanges)
		}
		if r.BangBang.FanChanges > 40 {
			t.Errorf("test %d: bang-bang fan changes = %d", r.TestID, r.BangBang.FanChanges)
		}
	}
	// Across the whole table the bang-bang controller must actually act.
	total := 0
	for _, r := range tableIRows(t) {
		total += r.BangBang.FanChanges
	}
	if total < 3 {
		t.Errorf("bang-bang made only %d changes across all tests", total)
	}
}

func TestTableIPeakPowerOrdering(t *testing.T) {
	// Paper: LUT reduces peak power below default; bang-bang is at or
	// slightly above default.
	for _, r := range tableIRows(t) {
		if r.LUT.PeakPowerW >= r.Default.PeakPowerW {
			t.Errorf("test %d: LUT peak %.0f W not below default %.0f W",
				r.TestID, r.LUT.PeakPowerW, r.Default.PeakPowerW)
		}
	}
}

func TestFormatTableI(t *testing.T) {
	rows := tableIRows(t)
	var sb strings.Builder
	if err := FormatTableI(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Default", "Bang-bang", "LUT", "Energy(kWh)", "AvgRPM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 14 { // header + separator + 12 result rows
		t.Fatalf("table rows = %d:\n%s", len(lines), out)
	}
}

func TestFig3Traces(t *testing.T) {
	series, err := Fig3(server.T3Config(), 42, DefaultEval())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	names := map[string]bool{}
	for _, s := range series {
		names[s.Name] = true
		if len(s.X) < 100 {
			t.Fatalf("series %s too short: %d samples", s.Name, len(s.X))
		}
	}
	if !names["Default"] || !names["Bang-bang"] || !names["LUT"] {
		t.Fatalf("series names = %v", names)
	}
	// Default trace is the coldest on average; LUT is warmer and steadier
	// than bang-bang's excursions.
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	var defMean, lutMean float64
	for _, s := range series {
		switch s.Name {
		case "Default":
			defMean = mean(s.Y)
		case "LUT":
			lutMean = mean(s.Y)
		}
	}
	if lutMean <= defMean {
		t.Fatalf("LUT mean temp %.1f should exceed default %.1f", lutMean, defMean)
	}
}
