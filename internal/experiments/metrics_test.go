package experiments

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/server"
)

// metricsEval is a reduced rack comparison — small enough for a CI smoke,
// event-stepped so the pin-reason counters actually spread across reasons.
func metricsEval(workers int) RackEval {
	ev := DefaultRackEval()
	ev.Servers = 4
	ev.Horizon = 900
	ev.Stabilize = 120
	ev.EventStepping = true
	ev.Workers = workers
	return ev
}

// TestMetricsDeterminismAcrossWorkers is the CI metrics-determinism smoke:
// the full experiment fan-out shares ONE registry across all concurrently
// running policy cells, and the sorted dump must still come out
// byte-identical for workers=1 and workers=N — the internal/obs contract
// end to end, under the race detector.
func TestMetricsDeterminismAcrossWorkers(t *testing.T) {
	base := server.T3Config()
	dump := func(workers int) string {
		ev := metricsEval(workers)
		ev.Metrics = obs.NewRegistry()
		if _, err := RackPolicyComparison(base, ev); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ev.Metrics.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one, many := dump(1), dump(4)
	if len(one) == 0 {
		t.Fatal("empty metrics dump")
	}
	if one != many {
		t.Errorf("experiment metrics dump differs across worker counts:\n-- workers=1 --\n%s\n-- workers=4 --\n%s", one, many)
	}
}

// TestExperimentPinIdentity checks the acceptance identity at the
// experiment level: over the whole policy fan-out, Σ kernel.pin.* equals
// total rack advances minus macro windows, and those advances match the
// sum of the per-row RackSteps.
func TestExperimentPinIdentity(t *testing.T) {
	base := server.T3Config()
	ev := metricsEval(0)
	ev.Metrics = obs.NewRegistry()
	rows, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	var rackSteps int64
	for _, r := range rows {
		rackSteps += int64(r.Sched.RackSteps)
	}
	reg := ev.Metrics
	steps := reg.Counter("kernel.steps.total").Value()
	macro := reg.Counter("kernel.windows.macro").Value()
	var pins int64
	for _, m := range reg.Snapshot() {
		if m.Kind == obs.KindCounter && len(m.Name) > 11 && m.Name[:11] == "kernel.pin." {
			pins += int64(m.Value)
		}
	}
	if steps != rackSteps {
		t.Errorf("kernel.steps.total = %d, Σ row RackSteps = %d", steps, rackSteps)
	}
	if pins != steps-macro {
		t.Errorf("Σ pins = %d, want steps − macro = %d − %d = %d", pins, steps, macro, steps-macro)
	}
	if macro == 0 {
		t.Errorf("event-stepped default trace collapsed no macro windows at all")
	}
}
