package experiments

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/power"
	"repro/internal/server"
)

// acEval returns a small chained eval for the AC-side tests.
func acEval(workers int) RackEval {
	ev := DefaultRackEval()
	ev.Servers = 4
	ev.Horizon = 900
	ev.Stabilize = 60
	ev.Workers = workers
	psu, pdu := power.DefaultPSU(), power.DefaultPDU()
	ev.PSU, ev.PDU = &psu, &pdu
	return ev
}

// TestRackACComparisonGoldenAcrossWorkers is the AC-side golden-table
// contract: serial and parallel runs must produce structurally identical
// rows and a byte-identical rendered table. Under -race this also
// exercises the ten concurrent policy runs.
func TestRackACComparisonGoldenAcrossWorkers(t *testing.T) {
	base := server.T3Config()
	serial, err := RackACComparison(base, acEval(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RackACComparison(base, acEval(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel AC rows differ from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	var a, b bytes.Buffer
	if err := FormatRackACTable(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := FormatRackACTable(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("rendered AC tables differ:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
	for _, col := range []string{"Wh(AC)", "Loss(Wh)", "PeakWall(W)", "cap-aware", "Defer"} {
		if !strings.Contains(a.String(), col) {
			t.Fatalf("AC table missing %q:\n%s", col, a.String())
		}
	}
}

// TestRackACComparisonAccounting pins the wall-side arithmetic: every
// policy's AC energy strictly exceeds its DC energy by the reported loss,
// the capped half enforces a positive budget, and the auto cap derives
// from round-robin's uncapped peak.
func TestRackACComparisonAccounting(t *testing.T) {
	res, err := RackACComparison(server.T3Config(), acEval(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Uncapped) != 5 || len(res.Capped) != 5 {
		t.Fatalf("want 5+5 rows, got %d+%d", len(res.Uncapped), len(res.Capped))
	}
	if !res.AutoCap || res.CapW <= 0 {
		t.Fatalf("auto cap not derived: %+v", res)
	}
	want := AutoCapFraction * res.Uncapped[0].Rack.PeakWallPowerW
	if math.Abs(res.CapW-want) > 1e-9 {
		t.Fatalf("auto cap %g, want %g", res.CapW, want)
	}
	for _, r := range res.Rows() {
		if r.WallWh() <= r.TotalWh() {
			t.Fatalf("%s: Wh(AC) %g must exceed Wh(DC) %g", r.Policy, r.WallWh(), r.TotalWh())
		}
		if diff := math.Abs((r.WallWh() - r.TotalWh()) - r.LossWh()); diff > r.LossWh()*1e-6 {
			t.Fatalf("%s: loss %g inconsistent with wall−dc %g", r.Policy, r.LossWh(), r.WallWh()-r.TotalWh())
		}
		if r.Rack.PeakWallPowerW <= r.Rack.PeakPowerW {
			t.Fatalf("%s: peak wall must exceed peak DC", r.Policy)
		}
	}
	for _, r := range res.Capped {
		if r.CapW != res.CapW {
			t.Fatalf("%s: capped row carries cap %g, want %g", r.Policy, r.CapW, res.CapW)
		}
		if r.Sched.Placed != r.Sched.Submitted {
			t.Fatalf("%s: capped run starved: placed %d of %d", r.Policy, r.Sched.Placed, r.Sched.Submitted)
		}
	}
	// The cap binds somewhere: across the capped half placements deferred
	// and the peak wall draw came down versus the uncapped runs.
	var deferred int
	for i, r := range res.Capped {
		deferred += r.Sched.Deferrals
		if r.Rack.PeakWallPowerW > res.Uncapped[i].Rack.PeakWallPowerW {
			t.Fatalf("%s: capped peak wall %g exceeds uncapped %g",
				r.Policy, r.Rack.PeakWallPowerW, res.Uncapped[i].Rack.PeakWallPowerW)
		}
	}
	if deferred == 0 {
		t.Fatal("auto cap below round-robin's peak must defer at least one placement")
	}
}

// TestRackACComparisonIdealChainMatchesDC: with no PSU/PDU the AC side
// must collapse onto the DC side — zero loss, identical peaks — and the
// uncapped physics metrics must be bit-identical to RackPolicyComparison
// (the acceptance criterion that the chain is pure accounting).
func TestRackACComparisonIdealChainMatchesDC(t *testing.T) {
	ev := acEval(1)
	ev.PSU, ev.PDU = nil, nil
	res, err := RackACComparison(server.T3Config(), ev)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Uncapped {
		if r.Rack.LossEnergyKWh != 0 {
			t.Fatalf("%s: ideal chain loss %g, want exactly 0", r.Policy, r.Rack.LossEnergyKWh)
		}
		if r.Rack.PeakWallPowerW != r.Rack.PeakPowerW {
			t.Fatalf("%s: ideal chain peaks differ", r.Policy)
		}
	}
	rows, err := RackPolicyComparison(server.T3Config(), ev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, res.Uncapped) {
		t.Fatalf("RackPolicyComparison differs from the uncapped AC half:\n%+v\n%+v", rows, res.Uncapped)
	}
}
