package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/sched"
	"repro/internal/server"
)

// resumeEval is a small single-policy eval: checkpoint/resume captures
// exactly one run, so the comparison must be restricted to one policy.
func resumeEval() RackEval {
	ev := DefaultRackEval()
	ev.Servers = 4
	ev.Horizon = 600
	ev.Stabilize = 60
	ev.Policy = "round-robin"
	return ev
}

// TestRackEvalCheckpointResume: interrupting a RackPolicyComparison run
// via the checkpoint sink and resuming from the captured checkpoint
// reproduces the uninterrupted row exactly — through the experiments
// layer, stabilization window included (its effect rides inside the
// checkpointed rack state, so the resumed run must skip it).
func TestRackEvalCheckpointResume(t *testing.T) {
	base := server.T3Config()
	ev := resumeEval()

	full, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 1 {
		t.Fatalf("single-policy eval produced %d rows", len(full))
	}

	errStop := errors.New("stop for test")
	var ck *sched.Checkpoint
	evB := ev
	evB.CheckpointEvery = 200
	evB.CheckpointSink = func(c sched.Checkpoint) error { ck = &c; return errStop }
	if _, err := RackPolicyComparison(base, evB); !errors.Is(err, errStop) {
		t.Fatalf("interrupted comparison returned %v, want the sink's error", err)
	}
	if ck == nil {
		t.Fatal("sink error without a captured checkpoint")
	}

	evC := ev
	evC.Resume = ck
	resumed, err := RackPolicyComparison(base, evC)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatalf("resumed row differs\nfull:    %+v\nresumed: %+v", full[0], resumed[0])
	}
}

// TestRackEvalCancellation: a cancelled eval context surfaces
// *sched.Cancelled through the comparison error, carrying a resumable
// checkpoint that completes to the uninterrupted row.
func TestRackEvalCancellation(t *testing.T) {
	base := server.T3Config()
	ev := resumeEval()

	full, err := RackPolicyComparison(base, ev)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	evB := ev
	evB.Ctx = ctx
	evB.CheckpointEvery = 200
	evB.CheckpointSink = func(sched.Checkpoint) error { cancel(); return nil }
	_, err = RackPolicyComparison(base, evB)
	var c *sched.Cancelled
	if !errors.As(err, &c) {
		t.Fatalf("got %v, want *sched.Cancelled", err)
	}

	evC := ev
	evC.Resume = &c.Checkpoint
	resumed, err := RackPolicyComparison(base, evC)
	if err != nil {
		t.Fatalf("resume from cancel: %v", err)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatalf("resume-from-cancel row differs\nfull:    %+v\nresumed: %+v", full[0], resumed[0])
	}
}

// TestCheckpointNeedsSinglePolicy: checkpoint/resume on the full
// five-policy comparison is rejected — there is no single "the run" to
// snapshot.
func TestCheckpointNeedsSinglePolicy(t *testing.T) {
	base := server.T3Config()
	ev := resumeEval()
	ev.Policy = ""
	ev.CheckpointEvery = 200
	ev.CheckpointSink = func(sched.Checkpoint) error { return nil }
	if _, err := RackPolicyComparison(base, ev); err == nil {
		t.Fatal("multi-policy checkpointing accepted")
	}
	ev2 := resumeEval()
	ev2.Policy = ""
	ev2.Resume = &sched.Checkpoint{}
	if _, err := RackPolicyComparison(base, ev2); err == nil {
		t.Fatal("multi-policy resume accepted")
	}
}
