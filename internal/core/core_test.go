package core

import (
	"math"
	"testing"

	"repro/internal/units"
)

// reducedPipeline shrinks the sweep so the test runs quickly while still
// exercising every stage.
func reducedPipeline() PipelineConfig {
	cfg := DefaultPipeline()
	cfg.Sweep.Utils = []units.Percent{10, 40, 75, 100}
	cfg.Sweep.RPMs = []units.RPM{1800, 3000, 4200}
	cfg.Sweep.Warmup = 15 * 60
	cfg.Sweep.Measure = 5 * 60
	cfg.Sweep.PerPoll = false
	return cfg
}

func TestPipelineEndToEnd(t *testing.T) {
	res, err := Run(reducedPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dataset.Points) != 12 {
		t.Fatalf("dataset points = %d", len(res.Dataset.Points))
	}
	// The fit recovers the ground truth within sensor-noise tolerance.
	if math.Abs(res.Fit.K1-0.4452) > 0.08 {
		t.Errorf("fitted k1 = %g", res.Fit.K1)
	}
	if res.Fit.RMSE > 4 {
		t.Errorf("fit RMSE = %g W", res.Fit.RMSE)
	}
	// The table built from the fitted model reproduces the paper's key
	// entries: 2400 RPM at 100% utilization, 1800 at idle.
	top, err := res.Table.Lookup(100)
	if err != nil {
		t.Fatal(err)
	}
	if top != 2400 {
		t.Errorf("fitted-model LUT at 100%% = %v, want 2400", top)
	}
	bottom, err := res.Table.Lookup(0)
	if err != nil {
		t.Fatal(err)
	}
	if bottom != 1800 {
		t.Errorf("fitted-model LUT at 0%% = %v, want 1800", bottom)
	}
	// The controller is usable.
	if res.Controller == nil || res.Controller.Name() != "LUT" {
		t.Fatal("controller missing")
	}
	// FittedConfig carries the recovered constants.
	if res.FittedConfig.Power.Active.K1 != res.Fit.K1 {
		t.Fatal("fitted config not patched")
	}
}

func TestPipelinePropagatesErrors(t *testing.T) {
	cfg := reducedPipeline()
	cfg.Sweep.Utils = nil
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid sweep should fail the pipeline")
	}
	cfg = reducedPipeline()
	cfg.Build.Levels = nil
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid build should fail the pipeline")
	}
	cfg = reducedPipeline()
	cfg.LUT.PollPeriod = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid controller config should fail the pipeline")
	}
}
