// Package core composes the paper's end-to-end methodology into a single
// pipeline — the system a data-center operator would actually deploy:
//
//  1. Characterize: run the Section IV utilization × fan-speed sweep on the
//     (simulated) server and collect steady-state telemetry.
//  2. Fit: recover the empirical leakage model Pcpu = k1·U + C + k2·e^(k3·T)
//     from that telemetry.
//  3. Build: generate the lookup table of per-utilization optimal fan
//     speeds under the 75 °C reliability cap, using the *fitted* model.
//  4. Deploy: construct the LUT controller that runs against live
//     utilization readings.
//
// Each stage is also available separately (internal/fitting, internal/lut,
// internal/control); core guarantees they compose the way the paper runs
// them.
package core

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/fitting"
	"repro/internal/lut"
	"repro/internal/power"
	"repro/internal/server"
)

// PipelineConfig bundles the stage configurations.
type PipelineConfig struct {
	Server server.Config
	Sweep  fitting.SweepConfig
	Build  lut.BuildConfig
	LUT    control.LUTConfig
}

// DefaultPipeline returns the paper's configuration end to end.
func DefaultPipeline() PipelineConfig {
	return PipelineConfig{
		Server: server.T3Config(),
		Sweep:  fitting.DefaultSweep(),
		Build:  lut.DefaultBuild(),
		LUT:    control.DefaultLUT(),
	}
}

// PipelineResult carries every artifact the pipeline produces.
type PipelineResult struct {
	Dataset    *fitting.Dataset
	Fit        fitting.FitResult
	Table      *lut.Table
	Controller *control.LUT
	// FittedConfig is the server config with the recovered power model
	// substituted — what the controller believes about the machine.
	FittedConfig server.Config
}

// Run executes the full pipeline against simulated servers built from
// cfg.Server.
func Run(cfg PipelineConfig) (*PipelineResult, error) {
	newSrv := func() (*server.Server, error) { return server.New(cfg.Server) }

	ds, err := fitting.Collect(newSrv, cfg.Sweep)
	if err != nil {
		return nil, fmt.Errorf("core: characterize: %w", err)
	}
	fit, err := fitting.FitLeakage(ds)
	if err != nil {
		return nil, fmt.Errorf("core: fit: %w", err)
	}

	fittedCfg := cfg.Server
	fittedCfg.Power.Active = power.ActiveModel{K1: fit.K1}
	fittedCfg.Power.Leakage = power.LeakageModel{C: fit.C, K2: fit.K2, K3: fit.K3}

	table, err := lut.Build(fittedCfg, cfg.Build)
	if err != nil {
		return nil, fmt.Errorf("core: build LUT: %w", err)
	}
	ctrl, err := control.NewLUT(table, cfg.LUT)
	if err != nil {
		return nil, fmt.Errorf("core: controller: %w", err)
	}
	return &PipelineResult{
		Dataset:      ds,
		Fit:          fit,
		Table:        table,
		Controller:   ctrl,
		FittedConfig: fittedCfg,
	}, nil
}
