package core

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/experiments"
	"repro/internal/lut"
	"repro/internal/server"
	"repro/internal/workload"
)

// TestFittedControllerMatchesGroundTruth is the full closed loop: run the
// characterization campaign, fit the model, build the controller from the
// *fitted* model, and verify it performs indistinguishably from a
// controller built with perfect knowledge — the property that makes the
// paper's methodology deployable on machines whose constants are unknown.
func TestFittedControllerMatchesGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline + controller evaluation")
	}
	res, err := Run(reducedPipeline())
	if err != nil {
		t.Fatal(err)
	}

	truthCfg := server.T3Config()
	w, err := workload.ByID(2, 42) // the spiky periodic test
	if err != nil {
		t.Fatal(err)
	}
	ec := experiments.DefaultEval()
	ec.SampleEvery = 0

	// Controller from the fitted model, evaluated on the TRUE server.
	fittedRun, err := experiments.RunControlled(truthCfg, w.Profile, res.Controller, ec)
	if err != nil {
		t.Fatal(err)
	}

	// Controller with perfect knowledge of the ground-truth model.
	truthTable, err := lut.Build(truthCfg, lut.DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	truthCtrl, err := control.NewLUT(truthTable, control.DefaultLUT())
	if err != nil {
		t.Fatal(err)
	}
	truthRun, err := experiments.RunControlled(truthCfg, w.Profile, truthCtrl, ec)
	if err != nil {
		t.Fatal(err)
	}

	// Energy within 0.5 Wh, same temperature envelope.
	if diff := math.Abs(fittedRun.EnergyKWh - truthRun.EnergyKWh); diff > 0.0005 {
		t.Fatalf("fitted-model controller energy %.4f vs truth %.4f (Δ %.4f kWh)",
			fittedRun.EnergyKWh, truthRun.EnergyKWh, diff)
	}
	if fittedRun.MaxTempC > 77 {
		t.Fatalf("fitted-model controller max temp %.1f violates the envelope", fittedRun.MaxTempC)
	}
}
