package randx

import (
	"math"
	"math/rand"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := true
	a2 := New(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(1)
	const mean = 4.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Exponential(mean)
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > 0.05 {
		t.Fatalf("exponential mean = %g, want ~%g", got, mean)
	}
}

func TestExponentialNonPositiveMean(t *testing.T) {
	s := New(1)
	if s.Exponential(0) != 0 || s.Exponential(-1) != 0 {
		t.Fatal("non-positive mean should return 0")
	}
}

func TestPoissonMeanAndVariance(t *testing.T) {
	s := New(2)
	const lambda = 3.5
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		k := float64(s.Poisson(lambda))
		sum += k
		sumSq += k * k
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-lambda) > 0.05 {
		t.Fatalf("poisson mean = %g", mean)
	}
	if math.Abs(variance-lambda) > 0.15 {
		t.Fatalf("poisson variance = %g", variance)
	}
}

func TestPoissonEdges(t *testing.T) {
	s := New(3)
	if s.Poisson(0) != 0 || s.Poisson(-2) != 0 {
		t.Fatal("non-positive lambda should return 0")
	}
	// Large lambda path must return something near lambda.
	big := float64(s.Poisson(10000))
	if math.Abs(big-10000) > 500 {
		t.Fatalf("large-lambda poisson = %g", big)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(4)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("uniform out of range: %g", v)
		}
	}
}

func TestChoiceCoversAll(t *testing.T) {
	s := New(5)
	opts := []float64{1, 2, 3}
	seen := map[float64]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Choice(opts)
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("choice only saw %v", seen)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-5) > 0.05 || math.Abs(std-2) > 0.05 {
		t.Fatalf("normal mean=%g std=%g", mean, std)
	}
}

func TestIntN(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		if v := s.IntN(5); v < 0 || v >= 5 {
			t.Fatalf("IntN out of range: %d", v)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	// Drive a source through every distribution (each consumes a different
	// number of raw draws per call), snapshot, keep drawing, and check a
	// restored source replays the post-snapshot sequence bit-identically.
	s := New(12345)
	for i := 0; i < 257; i++ {
		s.Exponential(300)
		s.Poisson(3.7)
		s.Uniform(-2, 9)
		s.IntN(17)
		s.Normal(1, 0.25)
		s.Float64()
	}
	st := s.State()

	var want []float64
	for i := 0; i < 100; i++ {
		want = append(want, s.Exponential(50), float64(s.Poisson(700)),
			s.Normal(0, 1), s.Uniform(0, 1), float64(s.IntN(1000)))
	}

	r := New(0)
	r.Float64() // arbitrary prior state must not matter
	r.Restore(st)
	if got := r.State(); got != st {
		t.Fatalf("State after Restore = %+v, want %+v", got, st)
	}
	for i := 0; i < 100; i++ {
		got := []float64{r.Exponential(50), float64(r.Poisson(700)),
			r.Normal(0, 1), r.Uniform(0, 1), float64(r.IntN(1000))}
		for j, w := range want[i*5 : i*5+5] {
			if got[j] != w {
				t.Fatalf("draw %d/%d: got %v, want %v", i, j, got[j], w)
			}
		}
	}
}

func TestCountingSourceTransparent(t *testing.T) {
	// The counting wrapper must not perturb the sequence relative to a bare
	// rand.Rand over the same stdlib source.
	s := New(99)
	ref := rand.New(rand.NewSource(99))
	for i := 0; i < 1000; i++ {
		if got, want := s.Float64(), ref.Float64(); got != want {
			t.Fatalf("draw %d: %v != %v", i, got, want)
		}
	}
}
