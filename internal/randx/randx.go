// Package randx wraps math/rand with the seeded distributions the workload
// generators need: exponential inter-arrival and service times for the
// Test-4 shell workload (Poisson arrivals, exponential service, after
// Meisner & Wenisch's stochastic queuing simulation) and uniform choices for
// the Test-3 random-step profile.
//
// Every generator is explicitly seeded so experiments are reproducible
// run-to-run, which the paper's deterministic load profiles also rely on.
package randx

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source for workload synthesis.
type Source struct {
	rng  *rand.Rand
	src  *countingSrc
	seed int64
}

// countingSrc wraps the stdlib generator and counts every draw taken from
// it. math/rand's derived distributions consume the raw stream exclusively
// through Int63/Uint64 (each advancing the generator by exactly one internal
// step), so (seed, draws) fully determines the generator state: Restore
// re-seeds and discards the counted number of draws to land bit-identically
// where the snapshot was taken. Implementing rand.Source64 is load-bearing —
// without Uint64 the wrapped rand.Rand would synthesize 64-bit draws from
// two Int63 calls and the sequence would diverge from an unwrapped Source.
type countingSrc struct {
	src   rand.Source64
	draws uint64
}

func (c *countingSrc) Int63() int64 { c.draws++; return c.src.Int63() }

func (c *countingSrc) Uint64() uint64 { c.draws++; return c.src.Uint64() }

func (c *countingSrc) Seed(seed int64) { c.src.Seed(seed); c.draws = 0 }

// State is the serializable state of a Source: the construction seed and
// the number of raw draws consumed since seeding.
type State struct {
	Seed  int64
	Draws uint64
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	src := &countingSrc{src: rand.NewSource(seed).(rand.Source64)}
	return &Source{rng: rand.New(src), src: src, seed: seed}
}

// State captures the Source for a checkpoint.
func (s *Source) State() State { return State{Seed: s.seed, Draws: s.src.draws} }

// Restore rewinds the Source to a captured State by re-seeding and
// fast-forwarding the recorded number of draws, after which the draw
// sequence continues bit-identically to the snapshotted generator.
func (s *Source) Restore(st State) {
	raw := rand.NewSource(st.Seed).(rand.Source64)
	for i := uint64(0); i < st.Draws; i++ {
		raw.Uint64()
	}
	s.src = &countingSrc{src: raw, draws: st.Draws}
	s.rng = rand.New(s.src)
	s.seed = st.Seed
}

// Exponential draws from an exponential distribution with the given mean.
// A non-positive mean returns 0.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.rng.ExpFloat64() * mean
}

// Poisson draws a Poisson-distributed count with the given rate λ using
// Knuth's algorithm (adequate for the small λ used per polling interval).
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// For large λ fall back to a normal approximation to avoid underflow.
	if lambda > 500 {
		n := int(s.rng.NormFloat64()*math.Sqrt(lambda) + lambda + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Uniform returns a float64 uniformly distributed in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + s.rng.Float64()*(hi-lo)
}

// IntN returns a uniform int in [0, n). n must be positive.
func (s *Source) IntN(n int) int { return s.rng.Intn(n) }

// Choice returns a uniformly chosen element of xs. It panics on an empty
// slice, mirroring rand.Intn semantics.
func (s *Source) Choice(xs []float64) float64 { return xs[s.rng.Intn(len(xs))] }

// Normal draws from a normal distribution with the given mean and standard
// deviation.
func (s *Source) Normal(mean, std float64) float64 {
	return s.rng.NormFloat64()*std + mean
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }
