package telemetry

import (
	"strings"
	"testing"
)

func TestNewHarnessValidation(t *testing.T) {
	if _, err := NewHarness(0, 0); err == nil {
		t.Error("zero period should error")
	}
	if _, err := NewHarness(-1, 0); err == nil {
		t.Error("negative period should error")
	}
	if _, err := NewHarness(10, -1); err == nil {
		t.Error("negative capacity should error")
	}
}

func TestRegisterAndPoll(t *testing.T) {
	h, err := NewHarness(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	val := 1.0
	if err := h.Register("cpu0.temp", "°C", func() float64 { return val }); err != nil {
		t.Fatal(err)
	}
	if err := h.Register("cpu0.temp", "°C", func() float64 { return 0 }); err == nil {
		t.Error("duplicate registration should error")
	}
	if err := h.Register("nil", "x", nil); err == nil {
		t.Error("nil sensor should error")
	}

	// Advancing to 25 s with a 10 s period polls at t=0, 10, 20.
	if polls := h.Advance(25); polls != 3 {
		t.Fatalf("polls = %d, want 3", polls)
	}
	s, err := h.Series("cpu0.temp")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("series len = %d", s.Len())
	}
	ts := s.Times()
	if ts[0] != 0 || ts[1] != 10 || ts[2] != 20 {
		t.Fatalf("times = %v", ts)
	}
	// Next poll due at 30: advancing to 29 does nothing.
	if polls := h.Advance(29); polls != 0 {
		t.Fatalf("early advance polled %d times", polls)
	}
	val = 2
	if polls := h.Advance(30); polls != 1 {
		t.Fatalf("polls = %d", polls)
	}
	last, ok := s.Last()
	if !ok || last.Time != 30 || last.Value != 2 {
		t.Fatalf("last = %+v", last)
	}
}

func TestSeriesValuesAndAt(t *testing.T) {
	h, _ := NewHarness(1, 0)
	n := 0.0
	_ = h.Register("x", "", func() float64 { n++; return n })
	h.Advance(4)
	s, _ := h.Series("x")
	vals := s.Values()
	want := []float64{1, 2, 3, 4, 5}
	if len(vals) != len(want) {
		t.Fatalf("values = %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("values = %v", vals)
		}
	}
	smp, err := s.At(2)
	if err != nil || smp.Value != 3 {
		t.Fatalf("At(2) = %+v, %v", smp, err)
	}
	if _, err := s.At(99); err == nil {
		t.Error("out-of-range At should error")
	}
	if _, err := s.At(-1); err == nil {
		t.Error("negative At should error")
	}
}

func TestRingBufferCap(t *testing.T) {
	h, _ := NewHarness(1, 3)
	n := 0.0
	_ = h.Register("x", "", func() float64 { n++; return n })
	h.Advance(9) // 10 polls at t=0..9
	s, _ := h.Series("x")
	if s.Len() != 3 {
		t.Fatalf("capped len = %d", s.Len())
	}
	vals := s.Values()
	// Last three polls: values 8, 9, 10.
	if vals[0] != 8 || vals[1] != 9 || vals[2] != 10 {
		t.Fatalf("ring values = %v", vals)
	}
	last, ok := s.Last()
	if !ok || last.Value != 10 {
		t.Fatalf("ring last = %+v", last)
	}
}

func TestEmptySeriesLast(t *testing.T) {
	h, _ := NewHarness(1, 0)
	_ = h.Register("x", "", func() float64 { return 0 })
	s, _ := h.Series("x")
	if _, ok := s.Last(); ok {
		t.Fatal("empty series should have no last sample")
	}
}

func TestUnknownSeries(t *testing.T) {
	h, _ := NewHarness(1, 0)
	if _, err := h.Series("nope"); err == nil {
		t.Fatal("unknown sensor should error")
	}
}

func TestSnapshotDoesNotRecord(t *testing.T) {
	h, _ := NewHarness(10, 0)
	_ = h.Register("a", "", func() float64 { return 42 })
	snap := h.Snapshot()
	if snap["a"] != 42 {
		t.Fatalf("snapshot = %v", snap)
	}
	s, _ := h.Series("a")
	if s.Len() != 0 {
		t.Fatal("snapshot recorded history")
	}
}

func TestPollNow(t *testing.T) {
	h, _ := NewHarness(10, 0)
	_ = h.Register("a", "", func() float64 { return 7 })
	h.PollNow(3.5)
	s, _ := h.Series("a")
	if s.Len() != 1 {
		t.Fatal("PollNow did not record")
	}
	smp, _ := s.At(0)
	if smp.Time != 3.5 || smp.Value != 7 {
		t.Fatalf("sample = %+v", smp)
	}
}

func TestReset(t *testing.T) {
	h, _ := NewHarness(10, 0)
	_ = h.Register("a", "W", func() float64 { return 1 })
	h.Advance(100)
	h.Reset()
	s, _ := h.Series("a")
	if s.Len() != 0 {
		t.Fatal("reset did not clear history")
	}
	if s.Unit != "W" {
		t.Fatal("reset lost unit")
	}
	// Poll schedule restarts at 0.
	if polls := h.Advance(0); polls != 1 {
		t.Fatalf("post-reset polls = %d", polls)
	}
}

func TestNames(t *testing.T) {
	h, _ := NewHarness(1, 0)
	_ = h.Register("b", "", func() float64 { return 0 })
	_ = h.Register("a", "", func() float64 { return 0 })
	names := h.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("names = %v (want registration order)", names)
	}
}

func TestWriteCSV(t *testing.T) {
	h, _ := NewHarness(10, 0)
	_ = h.Register("temp", "°C", func() float64 { return 55.5 })
	_ = h.Register("power", "W", func() float64 { return 500 })
	h.Advance(20)
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "time_s,temp,power" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "55.5") || !strings.Contains(lines[1], "500") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteCSVSparse(t *testing.T) {
	h, _ := NewHarness(10, 0)
	_ = h.Register("a", "", func() float64 { return 1 })
	h.PollNow(5)
	_ = h.Register("b", "", func() float64 { return 2 })
	h.PollNow(15)
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// t=5 has only a; t=15 has both.
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasSuffix(lines[1], ",1,") {
		t.Fatalf("sparse row = %q", lines[1])
	}
}
