// Package telemetry reimplements the role of the Continuous System
// Telemetry Harness (CSTH) from the paper: a registry of named sensors
// polled on a fixed period (10 s in the paper), with ring-buffer history,
// snapshots, and CSV export for offline analysis.
//
// Sensors are pull-based: each is a function returning the current reading.
// The harness is driven by the simulation clock, not wall time, so
// experiments run as fast as the CPU allows.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sensor produces one reading when polled.
type Sensor func() float64

// Sample is one polled value.
type Sample struct {
	Time  float64 // simulation seconds
	Value float64
}

// Series is the retained history of one sensor.
type Series struct {
	Name    string
	Unit    string
	samples []Sample
	cap     int // ring capacity; 0 = unbounded
	start   int // ring head when capped
}

func newSeries(name, unit string, capacity int) *Series {
	return &Series{Name: name, Unit: unit, cap: capacity}
}

func (s *Series) add(t, v float64) {
	if s.cap > 0 && len(s.samples) == s.cap {
		s.samples[s.start] = Sample{t, v}
		s.start = (s.start + 1) % s.cap
		return
	}
	s.samples = append(s.samples, Sample{t, v})
}

// Len returns the number of retained samples.
func (s *Series) Len() int { return len(s.samples) }

// At returns the i-th oldest retained sample.
func (s *Series) At(i int) (Sample, error) {
	if i < 0 || i >= len(s.samples) {
		return Sample{}, fmt.Errorf("telemetry: index %d out of range [0,%d)", i, len(s.samples))
	}
	return s.samples[(s.start+i)%len(s.samples)], nil
}

// Samples returns a chronological copy of the retained history.
func (s *Series) Samples() []Sample {
	out := make([]Sample, 0, len(s.samples))
	for i := 0; i < len(s.samples); i++ {
		out = append(out, s.samples[(s.start+i)%len(s.samples)])
	}
	return out
}

// Values returns just the values, chronologically.
func (s *Series) Values() []float64 {
	out := make([]float64, 0, len(s.samples))
	for _, smp := range s.Samples() {
		out = append(out, smp.Value)
	}
	return out
}

// Times returns just the timestamps, chronologically.
func (s *Series) Times() []float64 {
	out := make([]float64, 0, len(s.samples))
	for _, smp := range s.Samples() {
		out = append(out, smp.Time)
	}
	return out
}

// Last returns the most recent sample.
func (s *Series) Last() (Sample, bool) {
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	idx := s.start - 1
	if idx < 0 {
		idx += len(s.samples)
	}
	if s.cap == 0 || len(s.samples) < s.cap {
		idx = len(s.samples) - 1
	}
	return s.samples[idx], true
}

// Harness is the CSTH stand-in.
type Harness struct {
	period  float64 // polling period, seconds
	sensors map[string]Sensor
	series  map[string]*Series
	order   []string
	nextDue float64
	cap     int
}

// NewHarness creates a harness polling every period seconds (the paper's
// CSTH polls every 10 s). capacity bounds per-sensor history (0 =
// unbounded).
func NewHarness(period float64, capacity int) (*Harness, error) {
	if period <= 0 {
		return nil, fmt.Errorf("telemetry: polling period must be positive, got %g", period)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("telemetry: negative capacity %d", capacity)
	}
	return &Harness{
		period:  period,
		sensors: make(map[string]Sensor),
		series:  make(map[string]*Series),
		cap:     capacity,
	}, nil
}

// Register adds a named sensor. Re-registering a name is an error.
func (h *Harness) Register(name, unit string, s Sensor) error {
	if s == nil {
		return fmt.Errorf("telemetry: nil sensor %q", name)
	}
	if _, dup := h.sensors[name]; dup {
		return fmt.Errorf("telemetry: duplicate sensor %q", name)
	}
	h.sensors[name] = s
	h.series[name] = newSeries(name, unit, h.cap)
	h.order = append(h.order, name)
	return nil
}

// Names returns the registered sensor names in registration order.
func (h *Harness) Names() []string { return append([]string(nil), h.order...) }

// Advance moves simulation time forward to now (seconds), polling every
// sensor at each elapsed period boundary. It returns the number of polls
// performed.
func (h *Harness) Advance(now float64) int {
	polls := 0
	for h.nextDue <= now {
		for _, name := range h.order {
			h.series[name].add(h.nextDue, h.sensors[name]())
		}
		h.nextDue += h.period
		polls++
	}
	return polls
}

// PollNow forces an immediate poll at the given timestamp without changing
// the schedule.
func (h *Harness) PollNow(t float64) {
	for _, name := range h.order {
		h.series[name].add(t, h.sensors[name]())
	}
}

// Series returns the history for one sensor.
func (h *Harness) Series(name string) (*Series, error) {
	s, ok := h.series[name]
	if !ok {
		return nil, fmt.Errorf("telemetry: unknown sensor %q", name)
	}
	return s, nil
}

// Snapshot reads every sensor immediately (without recording) and returns
// name → value.
func (h *Harness) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(h.sensors))
	for name, s := range h.sensors {
		out[name] = s()
	}
	return out
}

// Reset clears all recorded history and restarts the poll schedule at t=0.
func (h *Harness) Reset() {
	for name := range h.series {
		h.series[name] = newSeries(name, h.series[name].Unit, h.cap)
	}
	h.nextDue = 0
}

// csvField quotes s per RFC 4180 when it contains a comma, a double
// quote, or a line break; everything else passes through verbatim, so
// the repo's dotted sensor names and unit symbols are unchanged.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\r\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// WriteUnitsCSV emits the sensor metadata as a two-column CSV
// (sensor,unit) in registration order — the sidecar that gives the wide
// WriteCSV export its units. Names and unit strings are RFC 4180-quoted
// when they need it (a unit like `W, "wall"` survives a round trip).
func (h *Harness) WriteUnitsCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "sensor,unit\n"); err != nil {
		return err
	}
	for _, n := range h.order {
		row := csvField(n) + "," + csvField(h.series[n].Unit) + "\n"
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits all series as a wide CSV: time plus one column per sensor.
// Sensors are sampled on the same schedule, so rows align; if they do not
// (PollNow mixed with Advance), the union of timestamps is used and missing
// cells are empty.
func (h *Harness) WriteCSV(w io.Writer) error {
	names := append([]string(nil), h.order...)
	// Collect the union of timestamps.
	timeSet := map[float64]bool{}
	for _, n := range names {
		for _, smp := range h.series[n].Samples() {
			timeSet[smp.Time] = true
		}
	}
	times := make([]float64, 0, len(timeSet))
	for t := range timeSet {
		times = append(times, t)
	}
	sort.Float64s(times)

	var sb strings.Builder
	sb.WriteString("time_s")
	for _, n := range names {
		sb.WriteString(",")
		sb.WriteString(csvField(n))
	}
	sb.WriteString("\n")
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}

	// Index samples per series.
	idx := make(map[string]map[float64]float64, len(names))
	for _, n := range names {
		m := map[float64]float64{}
		for _, smp := range h.series[n].Samples() {
			m[smp.Time] = smp.Value
		}
		idx[n] = m
	}
	for _, t := range times {
		sb.Reset()
		sb.WriteString(strconv.FormatFloat(t, 'f', 3, 64))
		for _, n := range names {
			sb.WriteString(",")
			if v, ok := idx[n][t]; ok {
				sb.WriteString(strconv.FormatFloat(v, 'g', 8, 64))
			}
		}
		sb.WriteString("\n")
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}
