package telemetry

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

// TestWriteCSVEmpty covers the two empty-export edges: a harness with no
// sensors at all, and sensors registered but never polled. Both must emit
// a well-formed header and nothing else.
func TestWriteCSVEmpty(t *testing.T) {
	h, _ := NewHarness(10, 0)
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "time_s\n" {
		t.Errorf("no-sensor export = %q", sb.String())
	}

	_ = h.Register("a", "W", func() float64 { return 1 })
	sb.Reset()
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "time_s,a\n" {
		t.Errorf("unpolled export = %q", sb.String())
	}
}

// TestWriteCSVSingleSample pins the one-row export: header plus exactly
// one data row carrying the poll instant and value.
func TestWriteCSVSingleSample(t *testing.T) {
	h, _ := NewHarness(10, 0)
	_ = h.Register("a", "W", func() float64 { return 2.5 })
	h.PollNow(7)
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[1] != "7.000,2.5" {
		t.Errorf("row = %q", lines[1])
	}
}

// TestCSVQuoting feeds sensor names and unit strings containing commas
// and double quotes through both exports and round-trips the result with
// encoding/csv: every field must come back verbatim.
func TestCSVQuoting(t *testing.T) {
	h, _ := NewHarness(10, 0)
	name := `wall,total "AC"`
	unit := `W, at the wall ("metered")`
	_ = h.Register(name, unit, func() float64 { return 9 })
	_ = h.Register("plain", "°C", func() float64 { return 1 })
	h.PollNow(0)

	var sb strings.Builder
	if err := h.WriteUnitsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("units export is not valid CSV: %v\n%s", err, sb.String())
	}
	if len(rows) != 3 || rows[1][0] != name || rows[1][1] != unit {
		t.Errorf("units rows = %q", rows)
	}
	if rows[2][0] != "plain" || rows[2][1] != "°C" {
		t.Errorf("plain unit row = %q", rows[2])
	}
	// Unquoted fields must pass through byte-for-byte (no gratuitous quoting).
	if !strings.Contains(sb.String(), "plain,°C\n") {
		t.Errorf("plain fields were re-encoded:\n%s", sb.String())
	}

	sb.Reset()
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	wide, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("wide export is not valid CSV: %v\n%s", err, sb.String())
	}
	if wide[0][1] != name || wide[0][2] != "plain" {
		t.Errorf("wide header = %q", wide[0])
	}
	if wide[1][1] != "9" {
		t.Errorf("wide row = %q", wide[1])
	}
}

// TestRingWraparoundOrdering pins the chronological contract of a capped
// series after the ring wraps: Samples/Values/Times/At all present the
// retained window oldest-first, and the wide CSV rows come out in time
// order — at the exact-fill boundary, one past it, and deep into rewrap.
func TestRingWraparoundOrdering(t *testing.T) {
	for _, polls := range []int{3, 4, 11} {
		h, _ := NewHarness(1, 3)
		n := 0.0
		_ = h.Register("x", "", func() float64 { n++; return n })
		h.Advance(float64(polls - 1)) // polls at t=0..polls-1
		s, _ := h.Series("x")
		if s.Len() != 3 {
			t.Fatalf("polls=%d: len = %d", polls, s.Len())
		}
		samples := s.Samples()
		for i, smp := range samples {
			wantT := float64(polls - 3 + i)
			if smp.Time != wantT || smp.Value != wantT+1 {
				t.Errorf("polls=%d: samples[%d] = %+v, want t=%g v=%g",
					polls, i, smp, wantT, wantT+1)
			}
			at, err := s.At(i)
			if err != nil || at != smp {
				t.Errorf("polls=%d: At(%d) = %+v, %v; Samples()[%d] = %+v",
					polls, i, at, err, i, smp)
			}
		}
		last, ok := s.Last()
		if !ok || last != samples[2] {
			t.Errorf("polls=%d: Last() = %+v, want %+v", polls, last, samples[2])
		}

		var sb strings.Builder
		if err := h.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
		if len(lines) != 4 {
			t.Fatalf("polls=%d: csv lines = %v", polls, lines)
		}
		for i, line := range lines[1:] {
			if !strings.HasSuffix(line, ","+strconv.Itoa(polls-2+i)) {
				t.Errorf("polls=%d: csv row %d out of order: %q", polls, i, line)
			}
		}
	}
}
