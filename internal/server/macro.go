package server

import (
	"repro/internal/thermal"
	"repro/internal/units"
)

// defaultMacroDriftTolC is the per-macro-step die-temperature movement cap
// when Config.MacroDriftTolC is zero. The leakage model's curvature at
// operating temperatures is ~0.02 W/°C², so re-anchoring the linearization
// every degree keeps the energy deviation from the fixed-dt rectangle sums
// around 3e-7 relative on hour-long traces (measured on the default rack
// trace; it scales linearly with the tolerance) — inside the event
// kernel's 1e-6 equivalence budget with margin to spare.
const defaultMacroDriftTolC = 1.0

// tripGuardC is the margin below CriticalTemp within which macro-stepping
// refuses to collapse steps: the fixed-dt path checks the thermal-trip
// threshold after every step, and a macro window must not be able to skip
// past it. A window's endpoint can move at most the drift tolerance, far
// less than this band.
const tripGuardC = 5

// MacroStep advances the server by up to maxSteps consecutive fixed-dt
// steps in one closed-form application of the linearized step map,
// returning the number of steps actually advanced (always ≥ 1).
//
// Between scheduling events the server's inputs are constant: utilization,
// fan command, ambient and therefore active, memory, fan and idle power.
// The only per-step feedback is the temperature-dependent CPU leakage, so
// the fixed-dt trajectory is the repeated application of one affine map
// once leakage is linearized around the current die temperatures. The
// thermal network composes that map in closed form
// (thermal.StepLinearizedN) under a drift cap that bounds the
// linearization error, the DIMM bank collapses its first-order lag exactly
// (mem.StepN), and the energy meters are charged from the closed-form
// temperature sum — the same rectangle rule the fixed-dt path accumulates,
// evaluated at the window's mean hottest-die temperature.
//
// The caller owns controller scheduling: MacroStep never ticks a fan
// controller, so it must only be asked to span windows every controller
// has promised to stay quiet for (control.HorizonPromiser). It falls back
// to a single plain Step — the exact reference semantics — whenever a
// window cannot be collapsed: RK4 integration, slewing fans (the airflow
// conductances move every step), proximity to the thermal-trip threshold,
// or a transient faster than the drift tolerance.
func (s *Server) MacroStep(dt float64, maxSteps int) int {
	if maxSteps > 1 && dt > 0 && s.macroEligible() {
		if n := s.stepMacroCore(dt, maxSteps); n > 0 {
			s.flushMacro(dt, n)
			s.finishMacroWindow()
			return n
		}
	}
	s.Step(dt)
	return 1
}

// MacroWindow advances the server through exactly `steps` fixed-dt steps —
// the rack-level macro window — chaining closed-form sub-steps and falling
// back to plain Steps where a sub-window cannot be collapsed. The
// window-constant bookkeeping (DIMM lag, fan energy, peak sampling, the
// power breakdown) is deferred to flush points instead of being repeated
// per sub-step, which is what makes a transient-heavy window cheap. It
// returns the maxima observed at sub-step boundaries for the rack's
// temperature roll-ups.
func (s *Server) MacroWindow(dt float64, steps int) (maxDieC, maxDIMMC, maxInletC float64) {
	maxDieC, maxDIMMC, maxInletC = -1e9, -1e9, -1e9
	fold := func() {
		if t := float64(s.MaxCPUTemp()); t > maxDieC {
			maxDieC = t
		}
	}
	foldSlow := func() { // DIMM/inlet only move at flush boundaries
		if t := float64(s.mem.MaxTemp()); t > maxDIMMC {
			maxDIMMC = t
		}
		if t := float64(s.InletTemp()); t > maxInletC {
			maxInletC = t
		}
	}
	// No window-start fold: the pre-window state was sampled by the rack's
	// previous observation, and the fixed-dt reference only ever samples
	// post-step states — a start fold would see "new load, pre-slew fan"
	// combinations that never exist on the reference path.
	pendingMem := 0
	for done := 0; done < steps; {
		// A macro sub-window needs at least two steps to collapse; don't
		// pay the linearization setup on pinned (single-step) windows.
		if steps-done >= 2 {
			if s.macroEligible() {
				if n := s.stepMacroCore(dt, steps-done); n > 0 {
					done += n
					pendingMem += n
					fold()
					continue
				}
				// Eligible but the doubling ladder refused its first level:
				// a transient faster than the drift cap.
				s.macroStats.PlainDrift++
			} else {
				s.countVetoPlain()
			}
		} else {
			s.macroStats.PlainTail++
		}
		// Plain step: flush the deferred window state first — a slewing fan
		// changes the DIMM equilibrium the deferred steps must not see.
		if pendingMem > 0 {
			s.flushMacro(dt, pendingMem)
			pendingMem = 0
		}
		s.Step(dt)
		done++
		fold()
		foldSlow()
	}
	if pendingMem > 0 {
		s.flushMacro(dt, pendingMem)
	}
	s.finishMacroWindow()
	foldSlow()
	return maxDieC, maxDIMMC, maxInletC
}

// MacroStats is the server's lifetime macro-vs-plain step attribution —
// the per-slot answer to "which pin ate the collapsed steps". Counters are
// plain ints bumped only by the goroutine stepping this server, so they
// are read after the rack fan-out's barrier (rack.MetricsInto) and never
// reset.
type MacroStats struct {
	// Anchors counts successful closed-form sub-windows: each one is a
	// fresh linearization of the leakage feedback around the current die
	// temperatures.
	Anchors int
	// CollapsedSteps is the total fixed-dt steps those anchors absorbed.
	CollapsedSteps int
	// Plain-step fallbacks inside macro windows, split by the veto that
	// forced them (checked in macroEligible's order).
	PlainIntegrator int // RK4 configured: closed form needs the exact map
	PlainPinned     int // dark machine or active fault window (PinFixedDt)
	PlainSlew       int // fans slewing: conductances move every step
	PlainTripBand   int // within tripGuardC of CriticalTemp
	PlainDrift      int // drift cap rejected the first doubling
	PlainTail       int // odd single-step remainder of a window, no veto
}

// MacroStats returns the lifetime attribution counters.
func (s *Server) MacroStats() MacroStats { return s.macroStats }

// PropagatorStats surfaces the thermal network's propagator-cache and
// drift-ladder counters for the same roll-up.
func (s *Server) PropagatorStats() thermal.PropagatorStats {
	return s.net.PropagatorStats()
}

// countVetoPlain attributes one plain-step fallback to the macroEligible
// veto that caused it, re-checking the conditions in the same order.
func (s *Server) countVetoPlain() {
	switch {
	case s.cfg.ThermalIntegrator != thermal.IntegratorExact:
		s.macroStats.PlainIntegrator++
	case !s.powered || s.fixedPin > 0:
		s.macroStats.PlainPinned++
	case !s.fans.Settled():
		s.macroStats.PlainSlew++
	default:
		s.macroStats.PlainTripBand++
	}
}

// macroEligible reports whether the server's state permits collapsing
// steps at all (cheap checks; the drift cap inside stepMacroCore does the
// quantitative one).
func (s *Server) macroEligible() bool {
	if s.cfg.ThermalIntegrator != thermal.IntegratorExact {
		return false
	}
	if !s.powered || s.fixedPin > 0 {
		// A dark machine's relaxation and any active bounded fault window
		// (PinFixedDt) integrate with plain fixed-dt steps — the PR 5
		// contract for fault windows.
		return false
	}
	if !s.fans.Settled() {
		return false
	}
	return float64(s.MaxCPUTemp()) < float64(s.cfg.CriticalTemp)-tripGuardC
}

// stepMacroCore attempts one closed-form sub-window: thermal state, clock
// and the total-energy meter advance; DIMM lag, fan energy, peak and
// breakdown refresh are left to flushMacro/finishMacroWindow. 0 means "not
// collapsible here" with all state untouched.
func (s *Server) stepMacroCore(dt float64, maxSteps int) int {
	// Refresh boundary temperature, conductances and injected powers at the
	// anchor temperatures — exactly what a plain step would apply.
	s.syncThermalInputs()
	m := s.net.NumNodes()
	if len(s.macroSlopes) != m {
		s.macroSlopes = make([]float64, m)
		s.macroSums = make([]float64, m)
	}
	for i := range s.macroSlopes {
		s.macroSlopes[i] = 0
	}
	nSockets := float64(len(s.dieNodes))
	lm := s.cfg.Power.Leakage
	for _, die := range s.dieNodes {
		// dPleak/dT = K3·(Pleak − C) for the exponential model: reuse the
		// (memoized) leakage evaluation instead of a second math.Exp.
		leak := s.leakageAt(units.Celsius(s.net.Temp(die)))
		s.macroSlopes[die] = lm.K3 * (leak - lm.C) * s.voltScale / nSockets
	}
	tol := s.cfg.MacroDriftTolC
	if tol <= 0 {
		tol = defaultMacroDriftTolC
	}
	if tol > tripGuardC {
		// Never let a configured tolerance outrun the trip guard:
		// macroEligible admits windows starting up to tripGuardC below
		// CriticalTemp, so a drift cap at the guard band keeps a collapsed
		// window's endpoint at or below the threshold the per-step path
		// checks every dt.
		tol = tripGuardC
	}
	n := s.net.StepLinearizedN(dt, maxSteps, s.macroSlopes, tol, s.macroSums)
	if n == 0 {
		return 0
	}
	span := float64(n) * dt

	// Energy: the fixed-dt path charges the post-step breakdown every step.
	// All components except leakage are constant over the window, and
	// leakage is charged at the mean of the hottest die's post-step
	// temperatures (for symmetric socket loads — the dispatcher's uniform
	// spreading — the dies are identical and this is the exact mean; the
	// curvature of the leakage exponential over ≤ tol of drift is the only
	// deviation from the reference sums).
	u := s.cpu.Utilization()
	meanMax := s.macroSums[s.dieNodes[0]]
	for _, die := range s.dieNodes[1:] {
		if v := s.macroSums[die]; v > meanMax {
			meanMax = v
		}
	}
	meanMax /= float64(n)
	constW := float64(s.cfg.Power.IdleFloor) +
		float64(s.cfg.Power.Active.Power(s.effectiveUtil(u)))*s.dynScale() +
		float64(s.cfg.Power.Memory.Power(u)) +
		float64(s.fans.Power())
	leakMean := float64(s.cfg.Power.Leakage.Power(units.Celsius(meanMax))) * s.voltScale
	s.energy += units.Joules((constW + leakMean) * span)
	s.clock += span
	s.macroStats.Anchors++
	s.macroStats.CollapsedSteps += n
	return n
}

// flushMacro applies the bookkeeping deferred across n collapsed steps:
// the DIMM first-order lag (exact closed form — conditions were constant
// while the steps were pending) and the separately metered fan energy.
func (s *Server) flushMacro(dt float64, n int) {
	s.mem.StepN(dt, n, s.cfg.Ambient, s.cpu.Utilization(), s.fans.MeanRPM())
	s.fanEnergy += units.Energy(s.fans.Power(), float64(n)*dt)
}

// finishMacroWindow mirrors the tail of Step at a window boundary: trip
// check, breakdown refresh, peak sampling. Within a collapsed sub-window
// power moves monotonically with the ≤ tol die drift, so the boundary
// samples are within leakage-slope·tol of the true per-step maximum.
func (s *Server) finishMacroWindow() {
	if s.powered && s.MaxCPUTemp() >= s.cfg.CriticalTemp {
		s.tripped = true
		_, hi := s.fans.Range()
		s.fans.SetAll(hi)
	}
	s.updateBreakdown()
	if total := s.lastBreakdown.Total(); total > s.peak {
		s.peak = total
	}
}
