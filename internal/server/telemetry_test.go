package server

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestAttachTelemetryChannelList(t *testing.T) {
	s := newServer(t)
	h, err := telemetry.NewHarness(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachTelemetry(h); err != nil {
		t.Fatal(err)
	}
	names := h.Names()
	// Paper channel list: 4 CPU temps + 32 DIMM temps + 32×2 core V/I +
	// system power + our 2 fan channels.
	want := 4 + 32 + 64 + 1 + 2
	if len(names) != want {
		t.Fatalf("channels = %d, want %d", len(names), want)
	}
	counts := map[string]int{}
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "cpu"):
			counts["cpu"]++
		case strings.HasPrefix(n, "dimm"):
			counts["dimm"]++
		case strings.HasPrefix(n, "core"):
			counts["core"]++
		}
	}
	if counts["cpu"] != 4 || counts["dimm"] != 32 || counts["core"] != 64 {
		t.Fatalf("channel counts = %v", counts)
	}
	// Re-attaching must fail on duplicate registration.
	if err := s.AttachTelemetry(h); err == nil {
		t.Fatal("duplicate attach should error")
	}
}

func TestAttachTelemetryPolling(t *testing.T) {
	s := newServer(t)
	h, _ := telemetry.NewHarness(10, 0)
	if err := s.AttachTelemetry(h); err != nil {
		t.Fatal(err)
	}
	s.SetLoad(100)
	for i := 0; i < 60; i++ {
		s.Step(5)
		h.Advance(s.Now())
	}
	// 300 s at a 10 s period → 31 polls (incl. t=0).
	series, err := h.Series("cpu0.temp0")
	if err != nil {
		t.Fatal(err)
	}
	if series.Len() != 31 {
		t.Fatalf("polls = %d, want 31", series.Len())
	}
	// Temperatures rise under load.
	vals := series.Values()
	if vals[len(vals)-1] <= vals[0]+5 {
		t.Fatalf("temp did not rise: %g → %g", vals[0], vals[len(vals)-1])
	}
	// System power is in the calibrated envelope.
	p, err := h.Series("system.power")
	if err != nil {
		t.Fatal(err)
	}
	last, ok := p.Last()
	if !ok || last.Value < 450 || last.Value > 620 {
		t.Fatalf("system power = %+v", last)
	}
	// CSV export carries all channels.
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(sb.String(), "\n", 2)[0]
	if !strings.Contains(header, "dimm31.temp") || !strings.Contains(header, "core31.amps") {
		t.Fatalf("csv header incomplete: %.200s", header)
	}
}
