package server

import (
	"testing"

	"repro/internal/units"
)

// tripServer drives a server into thermal trip: hot aisle, full load,
// minimum fan speed.
func tripServer(t *testing.T) *Server {
	t.Helper()
	cfg := T3Config()
	cfg.Ambient = 45
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLoad(100)
	s.Fans().SetAll(1800)
	for i := 0; i < 2400 && !s.Tripped(); i++ {
		s.Step(5)
	}
	if !s.Tripped() {
		t.Fatalf("expected thermal trip; temp reached %v", s.MaxCPUTemp())
	}
	return s
}

// TestTripLatchesUntilReset is the regression test for the latching
// semantics documented in doc.go: once tripped, the flag stays set through
// arbitrarily long cool-down — dropping the load and running the fans flat
// out until the dies are far below the critical threshold must NOT clear
// it. Only the explicit operator reset does.
func TestTripLatchesUntilReset(t *testing.T) {
	s := tripServer(t)
	s.SetLoad(0)
	for i := 0; i < 1200; i++ {
		s.Step(5)
		if !s.Tripped() {
			t.Fatalf("trip self-cleared after %d cool-down steps at %v", i+1, s.MaxCPUTemp())
		}
	}
	if s.MaxCPUTemp() >= s.Config().CriticalTemp {
		t.Fatalf("cool-down failed (%v): latch test is vacuous", s.MaxCPUTemp())
	}
	s.ResetTrip()
	if s.Tripped() {
		t.Fatal("ResetTrip did not clear the latch")
	}
	// A reset server below threshold must stay untripped when stepped.
	s.Step(5)
	if s.Tripped() {
		t.Fatal("reset server re-tripped below the critical threshold")
	}
}

func TestForceTripMatchesThermalTrip(t *testing.T) {
	s := newServer(t)
	s.ForceTrip()
	if !s.Tripped() {
		t.Fatal("ForceTrip did not latch")
	}
	_, hi := s.Fans().Range()
	if s.Fans().Target() != hi {
		t.Fatalf("forced trip should command max cooling %v, got %v", hi, s.Fans().Target())
	}
	s.ResetTrip()
	if s.Tripped() {
		t.Fatal("ResetTrip did not clear a forced trip")
	}
}

func TestSetPoweredDarkServer(t *testing.T) {
	s := newServer(t)
	s.SetLoad(80)
	for i := 0; i < 600; i++ {
		s.Step(1)
	}
	hotTemp := float64(s.MaxCPUTemp())
	s.SetPowered(false)
	if s.Powered() {
		t.Fatal("Powered() after SetPowered(false)")
	}
	// Dark immediately: no draw, no heat, fans stopped, inlet at ambient.
	// (Breakdown is the true draw; the Measured* channels carry sensor
	// noise even at zero.)
	if p := s.Breakdown().Total(); p != 0 {
		t.Fatalf("dark server draws %v", p)
	}
	if s.Fans().MeanRPM() != 0 {
		t.Fatalf("dark server fans at %v", s.Fans().MeanRPM())
	}
	if s.InletTemp() != s.Config().Ambient {
		t.Fatalf("dark inlet %v, want ambient %v", s.InletTemp(), s.Config().Ambient)
	}
	// The dies relax toward ambient with no heat input. With the fans
	// stopped the sink-to-air resistance is at its stagnant maximum, so the
	// time constant is hours: assert substantial monotone cooling over a
	// five-hour window, not arrival at ambient.
	for i := 0; i < 3600; i++ {
		s.Step(5)
	}
	cold := float64(s.MaxCPUTemp())
	amb := float64(s.Config().Ambient)
	if cold >= hotTemp-5 {
		t.Fatalf("dark dies barely cooled: %.1f -> %.1f", hotTemp, cold)
	}
	for i := 0; i < 3600; i++ {
		s.Step(5)
	}
	colder := float64(s.MaxCPUTemp())
	if colder >= cold || colder < amb-0.1 {
		t.Fatalf("dark cool-down not monotone toward ambient %.1f: %.1f -> %.1f", amb, cold, colder)
	}
	if s.Tripped() {
		t.Fatal("a dark server must not trip")
	}
	// Energy must not accumulate while dark.
	e0 := s.Energy()
	s.Step(60)
	if s.Energy() != e0 {
		t.Fatalf("dark server accumulated energy: %v -> %v", e0, s.Energy())
	}
	// Restore: the machine rejoins from its cooled state and warms back up.
	s.SetPowered(true)
	s.SetLoad(80)
	for i := 0; i < 600; i++ {
		s.Step(1)
	}
	if got := float64(s.MaxCPUTemp()); got < colder+3 {
		t.Fatalf("restored server did not heat back up: %.1f", got)
	}
	if s.Breakdown().Total() <= 0 {
		t.Fatal("restored server draws nothing")
	}
}

func TestSetAmbientOffset(t *testing.T) {
	s := newServer(t)
	base := s.Config().Ambient
	s.SetAmbientOffset(8)
	if got := s.AmbientOffset(); got != 8 {
		t.Fatalf("offset = %v, want 8", got)
	}
	if s.Config().Ambient != base+8 {
		t.Fatalf("ambient = %v, want %v", s.Config().Ambient, base+8)
	}
	// Offsets replace, not stack: a second call is absolute.
	s.SetAmbientOffset(3)
	if s.Config().Ambient != base+3 {
		t.Fatalf("ambient = %v, want %v after re-offset", s.Config().Ambient, base+3)
	}
	s.SetAmbientOffset(0)
	if s.Config().Ambient != base {
		t.Fatalf("ambient = %v, want restored %v", s.Config().Ambient, base)
	}
	// The shift must actually move the thermal steady state.
	s.SetLoad(50)
	for i := 0; i < 900; i++ {
		s.Step(1)
	}
	ref := float64(s.MaxCPUTemp())
	s.SetAmbientOffset(units.Celsius(8))
	for i := 0; i < 900; i++ {
		s.Step(1)
	}
	if got := float64(s.MaxCPUTemp()); got < ref+4 {
		t.Fatalf("hotter aisle raised dies only %.1f -> %.1f", ref, got)
	}
}

func TestPinFixedDtBlocksMacroEligibility(t *testing.T) {
	s := newServer(t)
	s.SetLoad(30)
	for i := 0; i < 1200 && !s.macroEligible(); i++ {
		s.Step(1)
	}
	if !s.macroEligible() {
		t.Fatal("server never became macro-eligible")
	}
	s.PinFixedDt(1)
	if s.macroEligible() {
		t.Fatal("pinned server still macro-eligible")
	}
	s.PinFixedDt(1)
	s.PinFixedDt(-1)
	if s.macroEligible() {
		t.Fatal("nested pin released too early")
	}
	s.PinFixedDt(-1)
	if !s.macroEligible() {
		t.Fatal("unpinned server not macro-eligible again")
	}
	// The counter must not go negative (a stray extra release is clamped).
	s.PinFixedDt(-1)
	s.PinFixedDt(1)
	if s.macroEligible() {
		t.Fatal("clamped counter lost a pin")
	}
	s.PinFixedDt(-1)
}
