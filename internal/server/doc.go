// Package server wires the CPU, memory, fan and thermal substrates into a
// simulated enterprise server that stands in for the paper's SPARC T3-2
// class machine. It exposes exactly the signals the paper's setup exposes:
// four CPU die temperature sensors (two per die), 32 DIMM temperatures,
// per-core voltage/current, whole-system power, and separately metered fan
// power.
//
// # Thermal-trip latching
//
// When the hottest die touches Config.CriticalTemp (paper: 90 °C), the
// service processor engages thermal protection: fans are forced to maximum
// and the trip flag LATCHES. Tripped() keeps reporting true for the rest
// of the run even after the machine cools back below the threshold — like
// a real machine's fault log, a trip is an event record, not a state
// readout. Nothing in Step, MacroStep or the controllers ever clears it;
// the only reset is the operator's explicit ResetTrip (the clear leg of a
// fault.ServerTrip event uses it). Rack health (rack.Health) and the trace
// scheduler's kill/requeue logic key off this latch, so a server that
// tripped once stays out of placement until an explicit reset arrives.
//
// # Fault surfaces
//
// The fault-injection subsystem (internal/fault) drives a server through
// four orthogonal surfaces, all safe to call between steps only (never
// concurrently with Step):
//
//   - SetPowered(false) takes the machine dark — zero draw, zero injected
//     heat, fans spun down, dies relaxing to the aisle ambient. A dark
//     machine cannot trip.
//   - ForceTrip / ResetTrip latch and clear the thermal trip explicitly.
//   - SetAmbientOffset shifts the inlet ambient from its construction-time
//     base (CRAC outages, aisle excursions).
//   - PinFixedDt counts active bounded fault windows; while positive,
//     macro-stepping is ineligible and the server integrates with plain
//     fixed-dt steps (the PR 5 event-kernel contract).
//
// Fan-level faults (stick, fail) live on the fans.Bank reached via Fans().
package server
