package server

import (
	"fmt"

	"repro/internal/fans"
	"repro/internal/mem"
	"repro/internal/randx"
	"repro/internal/thermal"
	"repro/internal/units"

	cpupkg "repro/internal/cpu"
)

// State is the serializable mutable state of a Server: the child-subsystem
// states plus every run-scoped scalar. AmbientOffset is stored relative to
// the construction-time base so a restore composes with the configuration
// the fresh server was built from. The leakage memo, sensor buffer, macro
// scratch and power breakdown are derived state — restore invalidates or
// recomputes them, bit-identically, from the restored inputs.
type State struct {
	CPU   cpupkg.State
	Mem   mem.State
	Fans  fans.State
	Net   thermal.State
	Noise randx.State

	Clock      float64
	EnergyJ    float64
	FanEnergyJ float64
	PeakW      float64
	Tripped    bool
	Powered    bool

	AmbientOffsetC float64
	FixedPin       int

	FreqScale float64
	VoltScale float64
	Throttled bool

	Macro MacroStats
}

// State captures the server for a checkpoint.
func (s *Server) State() State {
	return State{
		CPU:            s.cpu.State(),
		Mem:            s.mem.State(),
		Fans:           s.fans.State(),
		Net:            s.net.State(),
		Noise:          s.noise.State(),
		Clock:          s.clock,
		EnergyJ:        float64(s.energy),
		FanEnergyJ:     float64(s.fanEnergy),
		PeakW:          float64(s.peak),
		Tripped:        s.tripped,
		Powered:        s.powered,
		AmbientOffsetC: float64(s.AmbientOffset()),
		FixedPin:       s.fixedPin,
		FreqScale:      s.freqScale,
		VoltScale:      s.voltScale,
		Throttled:      s.throttled,
		Macro:          s.macroStats,
	}
}

// SetState restores a captured State into a server built from the same
// configuration, then rebuilds every derived quantity (thermal inputs,
// power breakdown) from the restored state.
func (s *Server) SetState(st State) error {
	if err := s.cpu.SetState(st.CPU); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := s.mem.SetState(st.Mem); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := s.fans.SetState(st.Fans); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := s.net.SetState(st.Net); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.noise.Restore(st.Noise)
	s.clock = st.Clock
	s.energy = units.Joules(st.EnergyJ)
	s.fanEnergy = units.Joules(st.FanEnergyJ)
	s.peak = units.Watts(st.PeakW)
	s.tripped = st.Tripped
	s.powered = st.Powered
	s.cfg.Ambient = s.baseAmbient + units.Celsius(st.AmbientOffsetC)
	s.fixedPin = st.FixedPin
	s.freqScale = st.FreqScale
	s.voltScale = st.VoltScale
	s.throttled = st.Throttled
	s.macroStats = st.Macro
	s.leakValid = false
	s.syncThermalInputs()
	s.updateBreakdown()
	return nil
}
