package server

import (
	"math"
	"testing"

	"repro/internal/units"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(T3Config())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	good := T3Config()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := T3Config()
	bad.RDie = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero RDie should fail")
	}
	bad = T3Config()
	bad.CriticalTemp = 20
	if err := bad.Validate(); err == nil {
		t.Error("critical below ambient should fail")
	}
	bad = T3Config()
	bad.TargetMaxTemp = 95
	if err := bad.Validate(); err == nil {
		t.Error("target above critical should fail")
	}
	bad = T3Config()
	bad.CPU.Sockets = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad topology should fail")
	}
}

func TestNewStartsNearAmbientIdle(t *testing.T) {
	s := newServer(t)
	temp := s.MaxCPUTemp()
	if temp < 24 || temp > 40 {
		t.Fatalf("idle equilibrium temp = %v, want ~30°C", temp)
	}
	if s.Utilization() != 0 {
		t.Fatal("server not idle at start")
	}
	if s.Tripped() {
		t.Fatal("tripped at start")
	}
}

// steadyAt runs the server at a fixed load and fan speed until settled and
// returns the die temperature.
func steadyAt(t *testing.T, u units.Percent, r units.RPM, seconds float64) units.Celsius {
	t.Helper()
	s := newServer(t)
	s.SetLoad(u)
	s.Fans().SetAll(r)
	for i := 0.0; i < seconds; i += 5 {
		s.Step(5)
	}
	return s.MaxCPUTemp()
}

func TestFig1aSteadyStateAnchors(t *testing.T) {
	// The calibration anchors from Fig. 1(a) at 100% utilization.
	cases := []struct {
		rpm  units.RPM
		want units.Celsius
		tol  units.Celsius
	}{
		{1800, 85, 4},
		{2400, 68, 4},
		{3000, 60, 4},
		{3600, 55, 4},
		{4200, 52, 4},
	}
	for _, c := range cases {
		got := steadyAt(t, 100, c.rpm, 3600)
		if math.Abs(float64(got-c.want)) > float64(c.tol) {
			t.Errorf("steady temp at %v = %v, want %v ± %v", c.rpm, got, c.want, c.tol)
		}
	}
}

func TestSteadyTempMonotonicInUtilAndRPM(t *testing.T) {
	cfg := T3Config()
	var prev units.Celsius
	for i, u := range []units.Percent{0, 25, 50, 75, 100} {
		temp, err := SteadyTemp(cfg, u, 2400)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && temp <= prev {
			t.Fatalf("steady temp not increasing with util at %v", u)
		}
		prev = temp
	}
	prev = 200
	for _, r := range []units.RPM{1800, 2400, 3000, 3600, 4200} {
		temp, err := SteadyTemp(cfg, 100, r)
		if err != nil {
			t.Fatal(err)
		}
		if temp >= prev {
			t.Fatalf("steady temp not decreasing with RPM at %v", r)
		}
		prev = temp
	}
}

func TestSteadyTempMatchesIntegration(t *testing.T) {
	cfg := T3Config()
	want, err := SteadyTemp(cfg, 75, 2400)
	if err != nil {
		t.Fatal(err)
	}
	got := steadyAt(t, 75, 2400, 3600)
	if math.Abs(float64(got-want)) > 1.0 {
		t.Fatalf("integrated %v vs analytic %v", got, want)
	}
}

func TestSteadyTempRunawayDetection(t *testing.T) {
	cfg := T3Config()
	cfg.Ambient = 45 // hot data center + low fan = runaway
	if _, err := SteadyTemp(cfg, 100, 1800); err == nil {
		t.Fatal("expected runaway error at 45°C ambient, 1800 RPM, 100% load")
	}
}

func TestSettlingTimeDependsOnFanSpeed(t *testing.T) {
	// Fig. 1(a): 1800 RPM settles in ~15 min, 4200 RPM in ~5-8 min.
	measure := func(rpm units.RPM) (settle float64, final units.Celsius) {
		s := newServer(t)
		s.SetLoad(100)
		s.Fans().SetAll(rpm)
		var temps []float64
		for i := 0; i < 720; i++ { // 1 h in 5 s steps
			s.Step(5)
			temps = append(temps, float64(s.MaxCPUTemp()))
		}
		final = units.Celsius(temps[len(temps)-1])
		for i, temp := range temps {
			if math.Abs(temp-float64(final)) < 1 {
				return float64(i+1) * 5, final
			}
		}
		return 3600, final
	}
	slow, _ := measure(1800)
	fast, _ := measure(4200)
	if fast >= slow {
		t.Fatalf("4200 RPM settle %gs should be faster than 1800 RPM %gs", fast, slow)
	}
	if slow < 600 || slow > 1800 {
		t.Errorf("1800 RPM settling %gs, want ~900-1200s (15 min)", slow)
	}
	if fast > 700 {
		t.Errorf("4200 RPM settling %gs, want ≲ 8 min", fast)
	}
}

func TestFastTransientJump(t *testing.T) {
	// Fig. 1(b): idle→full step raises die temp 5-8 °C within 30 s.
	s := newServer(t)
	s.Fans().SetAll(1800)
	for i := 0; i < 360; i++ {
		s.Step(5)
	}
	before := s.MaxCPUTemp()
	s.SetLoad(100)
	for i := 0; i < 6; i++ {
		s.Step(5)
	}
	jump := float64(s.MaxCPUTemp() - before)
	if jump < 4 || jump > 12 {
		t.Fatalf("30s jump = %g °C, want near the paper's 5-8 °C", jump)
	}
}

func TestEnergyAccounting(t *testing.T) {
	s := newServer(t)
	s.ResetAccounting()
	// Hold constant conditions so energy ≈ P·t.
	for i := 0; i < 60; i++ {
		s.Step(1)
	}
	p := float64(s.Breakdown().Total())
	e := float64(s.Energy())
	if math.Abs(e-p*60) > p*0.02*60 {
		t.Fatalf("energy %g vs P·t %g", e, p*60)
	}
	if s.FanEnergy() <= 0 || s.FanEnergy() >= s.Energy() {
		t.Fatalf("fan energy %v out of bounds vs total %v", s.FanEnergy(), s.Energy())
	}
	s.ResetAccounting()
	if s.Energy() != 0 || s.PeakPower() != 0 || s.FanEnergy() != 0 {
		t.Fatal("accounting not reset")
	}
}

func TestPeakPowerTracksMaximum(t *testing.T) {
	s := newServer(t)
	s.ResetAccounting()
	s.Step(1)
	idleP := s.Breakdown().Total()
	s.SetLoad(100)
	for i := 0; i < 30; i++ {
		s.Step(1)
	}
	if s.PeakPower() <= idleP {
		t.Fatalf("peak %v should exceed idle %v", s.PeakPower(), idleP)
	}
	fullP := s.Breakdown().Total()
	s.SetLoad(0)
	for i := 0; i < 30; i++ {
		s.Step(1)
	}
	if s.PeakPower() < fullP {
		t.Fatalf("peak %v lost the full-load maximum %v", s.PeakPower(), fullP)
	}
}

func TestPowerBreakdownComponents(t *testing.T) {
	s := newServer(t)
	s.SetLoad(100)
	s.Fans().SetAll(3300)
	for i := 0; i < 600; i++ {
		s.Step(5)
	}
	b := s.Breakdown()
	if b.Idle != 365 {
		t.Fatalf("idle floor = %v", b.Idle)
	}
	if math.Abs(float64(b.Active)-44.52) > 0.01 {
		t.Fatalf("active = %v, want 44.52", b.Active)
	}
	// Peak total should be near the calibrated ~540 W.
	if tot := float64(b.Total()); tot < 510 || tot > 580 {
		t.Fatalf("full-load total = %g", tot)
	}
}

func TestThermalTripForcesMaxCooling(t *testing.T) {
	cfg := T3Config()
	cfg.Ambient = 45 // unstable at low fan speed
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLoad(100)
	s.Fans().SetAll(1800)
	for i := 0; i < 2400 && !s.Tripped(); i++ {
		s.Step(5)
	}
	if !s.Tripped() {
		t.Fatalf("expected thermal trip; temp reached %v", s.MaxCPUTemp())
	}
	// Protection must have commanded maximum speed.
	for i := 0; i < 5; i++ {
		s.Step(1)
	}
	if s.Fans().Target() != 4200 {
		t.Fatalf("trip should force 4200 RPM, got %v", s.Fans().Target())
	}
}

func TestSensors(t *testing.T) {
	s := newServer(t)
	s.SetLoad(50)
	for i := 0; i < 120; i++ {
		s.Step(5)
	}
	readings := s.CPUTempSensors()
	if len(readings) != 4 {
		t.Fatalf("CPU temp sensors = %d, want 4 (2 per die)", len(readings))
	}
	truth := float64(s.MaxCPUTemp())
	for _, r := range readings {
		// Within hot-spot/edge placement offsets (±2.5) plus noise.
		if math.Abs(float64(r)-truth) > 4 {
			t.Fatalf("sensor %v too far from truth %g", r, truth)
		}
	}
	// The hot-spot sensor reads above the edge sensor of the same die.
	if readings[0] <= readings[1]-1 || readings[2] <= readings[3]-1 {
		t.Fatalf("hot-spot/edge ordering violated: %v", readings)
	}
	p := float64(s.MeasuredSystemPower())
	if math.Abs(p-float64(s.Breakdown().Total())) > 8 {
		t.Fatalf("power sensor %g too far from %v", p, s.Breakdown().Total())
	}
	fp := float64(s.MeasuredFanPower())
	if math.Abs(fp-float64(s.Fans().Power())) > 3 {
		t.Fatalf("fan power sensor %g too far from %v", fp, s.Fans().Power())
	}
	// The per-core V/I channel reconstructs CPU power within sensor noise.
	cpuTruth := float64(s.Config().Power.CPUHeat(s.Utilization(), s.MaxCPUTemp()))
	cpuMeas := float64(s.MeasuredCPUPower())
	if math.Abs(cpuMeas-cpuTruth) > 8 {
		t.Fatalf("CPU power sensor %g too far from truth %g", cpuMeas, cpuTruth)
	}
}

func TestDieTempAccessors(t *testing.T) {
	s := newServer(t)
	if _, err := s.DieTemp(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DieTemp(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DieTemp(2); err == nil {
		t.Error("socket 2 should not exist")
	}
	if _, err := s.DieTemp(-1); err == nil {
		t.Error("negative socket should error")
	}
}

func TestClockAdvances(t *testing.T) {
	s := newServer(t)
	s.Step(10)
	s.Step(2.5)
	if math.Abs(s.Now()-12.5) > 1e-9 {
		t.Fatalf("clock = %g", s.Now())
	}
	s.Step(0) // no-op
	if s.Now() != 12.5 {
		t.Fatal("zero step advanced clock")
	}
}

func TestRthServerShape(t *testing.T) {
	cfg := T3Config()
	// Rth(1800) ≈ 0.806, Rth(4200) ≈ 0.457 (server-level).
	if got := cfg.RthServer(1800); math.Abs(got-0.806) > 0.01 {
		t.Fatalf("Rth(1800) = %g", got)
	}
	if got := cfg.RthServer(4200); math.Abs(got-0.457) > 0.01 {
		t.Fatalf("Rth(4200) = %g", got)
	}
	// Degenerate RPM must not divide by zero.
	if got := cfg.RthServer(0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Rth(0) = %g", got)
	}
}

// TestSteadyTempRejectsInvalidMemConfig guards the validation that used to
// come from the per-call mem.Bank construction: an invalid airflow model
// must fail loudly, not silently saturate the preheat.
func TestSteadyTempRejectsInvalidMemConfig(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Mem.AirflowPerRPM = 0 },
		func(c *Config) { c.Mem.AirCp = -1 },
		func(c *Config) { c.Mem.NumDIMMs = 0 },
		func(c *Config) { c.Mem.TimeConstant = 0 },
	} {
		cfg := T3Config()
		mutate(&cfg)
		if _, err := SteadyTemp(cfg, 50, 2400); err == nil {
			t.Errorf("SteadyTemp accepted invalid mem config %+v", cfg.Mem)
		}
	}
}
