package server

import (
	"math"
	"testing"

	"repro/internal/thermal"
	"repro/internal/units"
)

// macroPair builds two identical servers for a macro-vs-fixed comparison.
func macroPair(t *testing.T, mutate func(*Config)) (*Server, *Server) {
	t.Helper()
	cfg := T3Config()
	if mutate != nil {
		mutate(&cfg)
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestMacroStepMatchesFixedSteps drives one server through load changes
// with macro windows and its twin with plain fixed steps: temperatures
// stay within the drift tolerance and energies within 1e-6 relative.
func TestMacroStepMatchesFixedSteps(t *testing.T) {
	for _, load := range []units.Percent{0, 35, 70, 100} {
		ev, ref := macroPair(t, nil)
		ev.SetLoad(load)
		ref.SetLoad(load)
		const dt, window = 1.0, 900
		for done := 0; done < window; {
			done += ev.MacroStep(dt, window-done)
		}
		for k := 0; k < window; k++ {
			ref.Step(dt)
		}
		if d := math.Abs(float64(ev.MaxCPUTemp() - ref.MaxCPUTemp())); d > 0.05 {
			t.Fatalf("load %v: endpoint die temp off by %g °C", load, d)
		}
		de := math.Abs(float64(ev.Energy()-ref.Energy())) / float64(ref.Energy())
		if de > 1e-6 {
			t.Fatalf("load %v: energy off by %g relative (macro %v vs fixed %v)",
				load, de, ev.Energy(), ref.Energy())
		}
		// Fan power is constant with settled fans, so the only difference is
		// float summation order (few big adds vs many small ones).
		if d := math.Abs(float64(ev.FanEnergy()-ref.FanEnergy())) / float64(ref.FanEnergy()); d > 1e-12 {
			t.Fatalf("load %v: fan energy off by %g relative: %v vs %v",
				load, d, ev.FanEnergy(), ref.FanEnergy())
		}
		if d := math.Abs(float64(ev.Memory().MaxTemp() - ref.Memory().MaxTemp())); d > 1e-9 {
			t.Fatalf("load %v: DIMM endpoint off by %g °C", load, d)
		}
		if ev.Now() != ref.Now() {
			t.Fatalf("clocks diverged: %g vs %g", ev.Now(), ref.Now())
		}
	}
}

// TestMacroStepLoadTransient exercises the harder case: a cold server hit
// with a big load step mid-run, so the macro path must refine through the
// fast transient before collapsing the tail.
func TestMacroStepLoadTransient(t *testing.T) {
	ev, ref := macroPair(t, nil)
	phase := func(load units.Percent, secs int) {
		ev.SetLoad(load)
		ref.SetLoad(load)
		for done := 0; done < secs; {
			done += ev.MacroStep(1, secs-done)
		}
		for k := 0; k < secs; k++ {
			ref.Step(1)
		}
	}
	phase(90, 600)
	phase(10, 600)
	phase(65, 900)
	de := math.Abs(float64(ev.Energy()-ref.Energy())) / float64(ref.Energy())
	if de > 1e-6 {
		t.Fatalf("transient energy off by %g relative", de)
	}
	if d := math.Abs(float64(ev.MaxCPUTemp() - ref.MaxCPUTemp())); d > 0.05 {
		t.Fatalf("transient endpoint temp off by %g °C", d)
	}
	if ev.PeakPower() < ref.PeakPower()-1 {
		t.Fatalf("macro peak %v undershoots fixed peak %v by >1 W", ev.PeakPower(), ref.PeakPower())
	}
}

// TestMacroStepFallbacks: slewing fans and RK4 integration must advance
// exactly one plain step.
func TestMacroStepFallbacks(t *testing.T) {
	srv, _ := macroPair(t, nil)
	srv.SetLoad(50)
	srv.Step(1) // settle the fan bank bookkeeping
	srv.Fans().SetAll(srv.Fans().Target() + 600)
	if n := srv.MacroStep(1, 100); n != 1 {
		t.Fatalf("slewing fans must pin to single steps, got %d", n)
	}

	rk, _ := macroPair(t, func(c *Config) { c.ThermalIntegrator = thermal.IntegratorRK4 })
	rk.SetLoad(50)
	if n := rk.MacroStep(1, 100); n != 1 {
		t.Fatalf("RK4 servers must pin to single steps, got %d", n)
	}
}

// TestMacroStepCollapsesQuietTail: once settled, a long quiet window must
// cost a handful of macro calls, not one per dt.
func TestMacroStepCollapsesQuietTail(t *testing.T) {
	srv, _ := macroPair(t, nil)
	srv.SetLoad(40)
	for k := 0; k < 1200; k++ {
		srv.Step(1) // settle near steady state
	}
	calls := 0
	for done := 0; done < 3600; {
		done += srv.MacroStep(1, 3600-done)
		calls++
	}
	if calls > 6 {
		t.Fatalf("a settled hour took %d macro calls, want ≤ 6 (power-of-two windows)", calls)
	}
}

// TestStepAllocationFree pins the zero-allocation satellite: at steady
// state a Server.Step is pure arithmetic into preallocated buffers.
func TestStepAllocationFree(t *testing.T) {
	srv, _ := macroPair(t, nil)
	srv.SetLoad(70)
	for k := 0; k < 64; k++ {
		srv.Step(1) // warm every lazily built propagator and buffer
	}
	if avg := testing.AllocsPerRun(200, func() { srv.Step(1) }); avg != 0 {
		t.Fatalf("Server.Step allocates %.1f objects/op at steady state, want 0", avg)
	}
}

// TestMacroStepAllocationFree: the closed-form window reuses its scratch
// after the first call.
func TestMacroStepAllocationFree(t *testing.T) {
	srv, _ := macroPair(t, nil)
	srv.SetLoad(70)
	for k := 0; k < 1200; k++ {
		srv.Step(1)
	}
	for i := 0; i < 4; i++ {
		srv.MacroStep(1, 1<<20) // size the macro scratch
	}
	if avg := testing.AllocsPerRun(100, func() { srv.MacroStep(1, 1<<20) }); avg != 0 {
		t.Fatalf("Server.MacroStep allocates %.1f objects/op at steady state, want 0", avg)
	}
}
