package server

import (
	"fmt"
	"math"

	"repro/internal/fans"
	"repro/internal/mathx"
	"repro/internal/mem"
	"repro/internal/power"
	"repro/internal/randx"
	"repro/internal/thermal"
	"repro/internal/units"

	cpupkg "repro/internal/cpu"
)

// Server is the composite simulated machine.
type Server struct {
	cfg Config

	cpu  *cpupkg.Complex
	mem  *mem.Bank
	fans *fans.Bank

	net       *thermal.Network
	dieNodes  []thermal.NodeID // one per socket
	sinkNodes []thermal.NodeID
	sinkLinks []thermal.LinkID
	inlet     thermal.BoundaryID

	noise *randx.Source

	clock     float64      // seconds since power-on
	energy    units.Joules // total system energy consumed
	fanEnergy units.Joules // fan-only energy (separately metered)
	peak      units.Watts
	tripped   bool

	// Fault-injection state (see internal/fault and doc.go). powered=false
	// is a dark machine: zero draw, zero injected heat, fans spun down.
	// baseAmbient anchors SetAmbientOffset; fixedPin counts active fault
	// windows that pin macro-stepping to plain fixed-dt steps.
	powered     bool
	baseAmbient units.Celsius
	fixedPin    int

	// DVFS state (extension): scaling factors relative to the top P-state.
	// Dynamic CPU power scales as freqScale·voltScale², leakage as
	// voltScale, and the demanded load inflates to demanded/freqScale.
	freqScale float64
	voltScale float64
	throttled bool

	lastBreakdown power.Breakdown

	// Memo of the last leakage-power evaluation. Leakage is an exponential
	// in temperature and is queried three times per step — once per socket
	// and once at the hottest die — at temperatures that coincide whenever
	// the sockets run symmetric loads, so remembering one (temp, power)
	// pair removes most math.Exp calls from the hot loop.
	leakValid bool
	leakTemp  units.Celsius
	leakPower float64

	sensorBuf []units.Celsius // reused by AppendCPUTempSensors

	// Macro-step scratch (event-stepping kernel), reused across calls.
	macroSlopes []float64
	macroSums   []float64

	// Band-prediction scratch (BandDecisionHorizon), reused across calls.
	predTemps  []float64
	predPowers []float64
	predSlopes []float64

	macroStats MacroStats // lifetime macro-vs-plain attribution (macro.go)
}

// New constructs a server from cfg, starting in thermal equilibrium at idle
// with fans at the configured initial speed.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cpx, err := cpupkg.NewComplex(cfg.CPU)
	if err != nil {
		return nil, err
	}
	memBank, err := mem.NewBank(cfg.Mem, cfg.Ambient)
	if err != nil {
		return nil, err
	}
	fanBank, err := fans.NewBank(cfg.Fans)
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg:         cfg,
		cpu:         cpx,
		mem:         memBank,
		fans:        fanBank,
		net:         newNetwork(cfg),
		noise:       randx.New(cfg.NoiseSeed),
		freqScale:   1,
		voltScale:   1,
		powered:     true,
		baseAmbient: cfg.Ambient,
	}

	s.inlet = s.net.AddBoundary("inlet", float64(cfg.Ambient))
	for sock := 0; sock < cfg.CPU.Sockets; sock++ {
		die, err := s.net.AddNode(fmt.Sprintf("die%d", sock), cfg.CDie, float64(cfg.Ambient))
		if err != nil {
			return nil, err
		}
		sink, err := s.net.AddNode(fmt.Sprintf("sink%d", sock), cfg.CSink, float64(cfg.Ambient))
		if err != nil {
			return nil, err
		}
		if _, err := s.net.ConnectNodes(die, sink, 1/cfg.RDie); err != nil {
			return nil, err
		}
		link, err := s.net.ConnectBoundary(sink, s.inlet, 1/s.sinkResistance(fanBank.MeanRPM()))
		if err != nil {
			return nil, err
		}
		s.dieNodes = append(s.dieNodes, die)
		s.sinkNodes = append(s.sinkNodes, sink)
		s.sinkLinks = append(s.sinkLinks, link)
	}

	// Start in idle equilibrium so experiments can apply the paper's
	// cold-start protocol explicitly.
	s.syncThermalInputs()
	if err := s.net.Settle(); err != nil {
		return nil, err
	}
	s.mem.Settle(cfg.Ambient, 0, fanBank.MeanRPM())
	s.updateBreakdown()
	return s, nil
}

// newNetwork builds the RC network with the configured stepping scheme.
func newNetwork(cfg Config) *thermal.Network {
	net := thermal.NewNetwork(cfg.MaxThermalStep)
	net.SetIntegrator(cfg.ThermalIntegrator)
	return net
}

// sinkResistance returns the per-socket sink-to-air resistance at speed r.
func (s *Server) sinkResistance(r units.RPM) float64 {
	rpm := float64(r)
	if rpm < 1 {
		rpm = 1
	}
	return s.cfg.RSinkBase + s.cfg.RSinkFlow/rpm
}

// syncThermalInputs refreshes boundary temperature, conductances and node
// powers from the current utilization, fan speed and die temperatures.
func (s *Server) syncThermalInputs() {
	if !s.powered {
		// Dark machine: no preheat, no injected heat; the sinks cool to the
		// aisle through the zero-airflow resistance.
		_ = s.net.SetBoundaryTemp(s.inlet, float64(s.cfg.Ambient))
		g := 1 / s.sinkResistance(0)
		for i, link := range s.sinkLinks {
			_ = s.net.SetConductance(link, g)
			_ = s.net.SetPower(s.dieNodes[i], 0)
		}
		return
	}
	u := s.cpu.Utilization()
	rpm := s.fans.MeanRPM()
	preheat := s.mem.InletPreheat(u, rpm)
	_ = s.net.SetBoundaryTemp(s.inlet, float64(s.cfg.Ambient+preheat))

	g := 1 / s.sinkResistance(rpm)
	nSockets := len(s.dieNodes)
	for i, link := range s.sinkLinks {
		_ = s.net.SetConductance(link, g)
		// Per-socket heat: the socket's share of active power plus its own
		// die's leakage share.
		// Active.Power takes machine-wide percent; each socket contributes
		// k1·U_socket/nSockets so that uniform load sums to k1·U.
		sockU, _ := s.cpu.SocketUtilization(i)
		active := float64(s.cfg.Power.Active.Power(s.effectiveUtil(sockU))) * s.dynScale() / float64(nSockets)
		leak := s.leakageAt(units.Celsius(s.net.Temp(s.dieNodes[i]))) * s.voltScale / float64(nSockets)
		_ = s.net.SetPower(s.dieNodes[i], active+leak)
	}
}

// leakageAt returns the configured leakage power at temperature t,
// remembering the last evaluation (see the memo fields on Server).
func (s *Server) leakageAt(t units.Celsius) float64 {
	if s.leakValid && t == s.leakTemp {
		return s.leakPower
	}
	s.leakTemp = t
	s.leakPower = float64(s.cfg.Power.Leakage.Power(t))
	s.leakValid = true
	return s.leakPower
}

func (s *Server) updateBreakdown() {
	if !s.powered {
		s.lastBreakdown = power.Breakdown{}
		return
	}
	u := s.cpu.Utilization()
	s.lastBreakdown = power.Breakdown{
		Idle:    s.cfg.Power.IdleFloor,
		Active:  units.Watts(float64(s.cfg.Power.Active.Power(s.effectiveUtil(u))) * s.dynScale()),
		Leakage: units.Watts(s.leakageAt(s.MaxCPUTemp()) * s.voltScale),
		Memory:  s.cfg.Power.Memory.Power(u),
		Fan:     s.fans.Power(),
	}
}

// dynScale is the DVFS multiplier on dynamic CPU power: f·V².
func (s *Server) dynScale() float64 { return s.freqScale * s.voltScale * s.voltScale }

// effectiveUtil inflates a demanded utilization by the frequency scale: the
// same work rate occupies more cycles at a lower clock. Demand beyond the
// scaled capacity marks the run as throttled.
func (s *Server) effectiveUtil(demanded units.Percent) units.Percent {
	eff := float64(demanded) / s.freqScale
	if eff > 100 {
		s.throttled = true
		eff = 100
	}
	return units.Percent(eff)
}

// SetDVFS applies a P-state as frequency and voltage scales relative to the
// top state. Both must lie in (0, 1]. Dynamic CPU power scales as f·V²,
// leakage as V. This is the extension hook the paper's conclusion points
// to (coordinated DVFS + fan control, cf. its reference [5]).
func (s *Server) SetDVFS(freqScale, voltScale float64) error {
	if freqScale <= 0 || freqScale > 1 || voltScale <= 0 || voltScale > 1 {
		return fmt.Errorf("server: DVFS scales must be in (0,1]: f=%g v=%g", freqScale, voltScale)
	}
	s.freqScale = freqScale
	s.voltScale = voltScale
	return nil
}

// DVFS returns the current frequency and voltage scales.
func (s *Server) DVFS() (freqScale, voltScale float64) { return s.freqScale, s.voltScale }

// Throttled reports whether the demanded load ever exceeded the scaled
// capacity (throughput loss under DVFS).
func (s *Server) Throttled() bool { return s.throttled }

// EffectiveUtilization returns the utilization after DVFS inflation — what
// sar would report on the slowed machine.
func (s *Server) EffectiveUtilization() units.Percent {
	return units.Percent(math.Min(100, float64(s.cpu.Utilization())/s.freqScale))
}

// Step advances the whole server by dt seconds.
func (s *Server) Step(dt float64) {
	if dt <= 0 {
		return
	}
	if s.powered {
		s.fans.Step(dt)
	}
	s.syncThermalInputs()
	s.net.Step(dt)
	if s.powered {
		s.mem.Step(dt, s.cfg.Ambient, s.cpu.Utilization(), s.fans.MeanRPM())
	} else {
		s.mem.Step(dt, s.cfg.Ambient, 0, 0)
	}

	// Thermal protection: above the critical threshold the service
	// processor forces maximum cooling, as a real machine would. The trip
	// latches — see Tripped — and a dark machine cannot trip (it is
	// cooling with nothing driving it).
	if s.powered && s.MaxCPUTemp() >= s.cfg.CriticalTemp {
		s.tripped = true
		_, hi := s.fans.Range()
		s.fans.SetAll(hi)
	}

	s.updateBreakdown()
	total := s.lastBreakdown.Total()
	s.energy += units.Energy(total, dt)
	s.fanEnergy += units.Energy(s.lastBreakdown.Fan, dt)
	if total > s.peak {
		s.peak = total
	}
	s.clock += dt
}

// SetLoad applies a uniform utilization across all cores (LoadGen's even
// spreading).
func (s *Server) SetLoad(u units.Percent) { s.cpu.SetUniformLoad(u) }

// Utilization returns the true machine-wide utilization.
func (s *Server) Utilization() units.Percent { return s.cpu.Utilization() }

// CPU returns the CPU complex for fine-grained load control.
func (s *Server) CPU() *cpupkg.Complex { return s.cpu }

// Fans returns the fan bank, the actuation surface for controllers.
func (s *Server) Fans() *fans.Bank { return s.fans }

// Memory returns the DIMM bank.
func (s *Server) Memory() *mem.Bank { return s.mem }

// Config returns the server configuration.
func (s *Server) Config() Config { return s.cfg }

// Now returns seconds since power-on.
func (s *Server) Now() float64 { return s.clock }

// DieTemp returns the true temperature of one socket's die.
func (s *Server) DieTemp(socket int) (units.Celsius, error) {
	if socket < 0 || socket >= len(s.dieNodes) {
		return 0, fmt.Errorf("server: socket %d out of range", socket)
	}
	return units.Celsius(s.net.Temp(s.dieNodes[socket])), nil
}

// MaxCPUTemp returns the hottest true die temperature.
func (s *Server) MaxCPUTemp() units.Celsius {
	m := units.Celsius(-1e9)
	for _, n := range s.dieNodes {
		if t := units.Celsius(s.net.Temp(n)); t > m {
			m = t
		}
	}
	return m
}

// StateSum folds the server's continuous state — every thermal node,
// every DIMM temperature, the ambient, and the mean fan speed — into one
// plain sum. Max-style telemetry roll-ups skip NaN in their comparisons
// and the leakage curve clamps temperature, so a NaN born in the thermal
// network never reaches the power aggregates; this sum is the one number
// a non-finite value cannot hide from. The run-level divergence guard
// reads it after every advance.
func (s *Server) StateSum() float64 {
	return s.net.TempSum() + s.mem.TempSum() +
		float64(s.cfg.Ambient) + float64(s.fans.MeanRPM())
}

// InletTemp returns the true CPU inlet air temperature: the configured
// ambient plus the DIMM preheat at the current utilization and fan speed.
// Rack-level telemetry aggregates this across heterogeneous servers.
// A dark machine has no preheat: its inlet sits at the aisle ambient.
func (s *Server) InletTemp() units.Celsius {
	if !s.powered {
		return s.cfg.Ambient
	}
	return s.cfg.Ambient + s.mem.InletPreheat(s.cpu.Utilization(), s.fans.MeanRPM())
}

// CPUTempSensors returns the paper's four CPU temperature readings (two
// thermal sensors per die: one near the hot spot, one near the die edge)
// including sensor noise.
func (s *Server) CPUTempSensors() []units.Celsius {
	return s.appendCPUTempSensors(make([]units.Celsius, 0, 2*len(s.dieNodes)))
}

// CPUTempSensorsReuse is CPUTempSensors into a buffer owned by the server,
// valid until the next call — the allocation-free variant the per-second
// controller tick uses.
func (s *Server) CPUTempSensorsReuse() []units.Celsius {
	s.sensorBuf = s.appendCPUTempSensors(s.sensorBuf[:0])
	return s.sensorBuf
}

func (s *Server) appendCPUTempSensors(out []units.Celsius) []units.Celsius {
	offsets := [2]float64{s.cfg.HotSpotOffset, s.cfg.EdgeOffset}
	for _, n := range s.dieNodes {
		t := s.net.Temp(n)
		for k := 0; k < 2; k++ {
			out = append(out, units.Celsius(t+offsets[k]+s.noise.Normal(0, s.cfg.TempNoise)))
		}
	}
	return out
}

// MeasuredSystemPower returns the whole-system power sensor reading
// (noisy), the paper's "power consumed by the whole system" channel.
func (s *Server) MeasuredSystemPower() units.Watts {
	return s.lastBreakdown.Total() + units.Watts(s.noise.Normal(0, s.cfg.PowerNoise))
}

// MeasuredCPUPower reconstructs total CPU power (active + leakage) from the
// per-core voltage/current sensors, with rail-measurement noise. This is
// the channel that lets the paper isolate Pactive+Pleak from the rest of
// the system. The readout is a single O(cores) pass (bit-identical to
// summing VI per core, which would be O(cores²)).
func (s *Server) MeasuredCPUPower() units.Watts {
	truth := s.cfg.Power.CPUHeat(s.cpu.Utilization(), s.MaxCPUTemp())
	total := s.cpu.SensorPowerSum(truth)
	total += s.noise.Normal(0, s.cfg.PowerNoise)
	if total < 0 {
		total = 0
	}
	return units.Watts(total)
}

// MeasuredFanPower returns the separately metered fan power (noisy). This
// is what the paper's external-supply setup uniquely enables.
func (s *Server) MeasuredFanPower() units.Watts {
	p := s.fans.Power() + units.Watts(s.noise.Normal(0, s.cfg.PowerNoise/3))
	if p < 0 {
		p = 0
	}
	return p
}

// Breakdown returns the true component-level power attribution.
func (s *Server) Breakdown() power.Breakdown { return s.lastBreakdown }

// Energy returns total energy consumed since power-on.
func (s *Server) Energy() units.Joules { return s.energy }

// FanEnergy returns fan-only energy since power-on.
func (s *Server) FanEnergy() units.Joules { return s.fanEnergy }

// PeakPower returns the highest instantaneous total power observed.
func (s *Server) PeakPower() units.Watts { return s.peak }

// Tripped reports whether thermal protection ever engaged. The trip
// LATCHES: once the hottest die touches Config.CriticalTemp (or ForceTrip
// is called) the flag stays true for the rest of the run even after the
// machine cools, exactly like a real service processor's fault log.
// Clearing requires the operator's explicit ResetTrip. See doc.go.
func (s *Server) Tripped() bool { return s.tripped }

// ForceTrip latches the thermal trip immediately (fault injection:
// fault.ServerTrip), driving the fans to maximum exactly as a natural trip
// would.
func (s *Server) ForceTrip() {
	s.tripped = true
	_, hi := s.fans.Range()
	s.fans.SetAll(hi)
}

// ResetTrip is the operator's explicit trip reset — the only way the
// latched Tripped flag clears. The fans keep their current command; the
// controller's next tick re-decides the speed.
func (s *Server) ResetTrip() { s.tripped = false }

// TripRisk reports whether the machine is live and within tripGuardC of
// its critical temperature — the zone where macro-stepping already refuses
// to coarsen (see macro.go) and where the rack trace runner shortens its
// event-kernel windows so a natural trip is observed on the step it
// happens.
func (s *Server) TripRisk() bool {
	return s.powered && !s.tripped && s.MaxCPUTemp() >= s.cfg.CriticalTemp-tripGuardC
}

// SetPowered powers the machine on or off (fault injection: fault.PSUFail
// takes it dark). Powering off spins the fans down, drops the load and
// zeroes the power breakdown — the slot draws nothing and injects no heat
// while dark, and its dies relax toward the aisle ambient. Powering back
// on restores nothing by itself: the machine rejoins cold and idle, fans
// slewing back to their last command, and the scheduler re-places work.
func (s *Server) SetPowered(on bool) {
	if s.powered == on {
		return
	}
	s.powered = on
	if !on {
		s.cpu.SetUniformLoad(0)
		s.fans.Spindown()
	}
	s.leakValid = false
	s.syncThermalInputs()
	s.updateBreakdown()
}

// Powered reports whether the machine is drawing power (false = dark,
// see SetPowered).
func (s *Server) Powered() bool { return s.powered }

// FansSettled reports whether the fan bank has reached its commanded
// speeds (fans.Bank.Settled) — false while a slew is in flight.
func (s *Server) FansSettled() bool { return s.fans.Settled() }

// PinFixedDt adjusts the count of active fault windows pinning this server
// to plain fixed-dt stepping (delta +1 on inject, -1 on clear). While the
// count is positive, macro-stepping is ineligible and MacroWindow falls
// back to exact per-step integration — the PR 5 contract for bounded fault
// windows.
func (s *Server) PinFixedDt(delta int) {
	s.fixedPin += delta
	if s.fixedPin < 0 {
		s.fixedPin = 0
	}
}

// SetAmbientOffset shifts the inlet ambient to the construction-time base
// plus delta °C (fault injection: ambient excursions and CRAC-outage heat
// soak). Offsets compose additively; pass the summed offset.
func (s *Server) SetAmbientOffset(delta units.Celsius) {
	s.cfg.Ambient = s.baseAmbient + delta
	s.syncThermalInputs()
}

// AmbientOffset returns the current shift from the construction-time
// ambient.
func (s *Server) AmbientOffset() units.Celsius { return s.cfg.Ambient - s.baseAmbient }

// ResetAccounting zeroes energy/peak accounting, used at the start of the
// measured window of an experiment (after stabilization).
func (s *Server) ResetAccounting() {
	s.energy = 0
	s.fanEnergy = 0
	s.peak = 0
}

// SteadyTemp predicts the equilibrium die temperature at utilization u and
// fan speed r by fixed-point iteration over the leakage feedback. It returns
// an error when the operating point is thermally unstable (runaway). The
// inlet preheat is computed directly from the memory configuration — no
// per-call mem.Bank construction — which keeps lut.Build (a grid of these
// queries, also behind the leakage-aware rack placement policy) cheap.
func SteadyTemp(cfg Config, u units.Percent, r units.RPM) (units.Celsius, error) {
	if err := cfg.Mem.Validate(); err != nil {
		return 0, err
	}
	preheat := float64(cfg.Mem.InletPreheat(u, r))
	rth := cfg.RthServer(r)
	active := float64(cfg.Power.Active.Power(u))
	f := func(t float64) float64 {
		leak := float64(cfg.Power.Leakage.Power(units.Celsius(t)))
		return float64(cfg.Ambient) + preheat + rth*(active+leak)
	}
	t, err := mathx.FixedPoint(f, float64(cfg.Ambient)+30, 1e-6, 500)
	if err != nil {
		return units.Celsius(t), fmt.Errorf("server: unstable operating point U=%v RPM=%v: %w", u, r, err)
	}
	// Reject points beyond the stability knee even if iteration converged.
	if cfg.Power.Leakage.Slope(units.Celsius(t))*rth >= 1 {
		return units.Celsius(t), fmt.Errorf("server: thermal runaway at U=%v RPM=%v (T=%.1f)", u, r, t)
	}
	return units.Celsius(t), nil
}
