package server

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/fans"
	"repro/internal/mem"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Config is the full parameterization of the simulated server.
//
// Calibration notes (see DESIGN.md for the arithmetic):
//
//   - Leakage/active constants are the paper's own fit (k1=0.4452,
//     k2=0.3231, k3=0.04749) plus a C=10 W temperature-independent leakage
//     floor consistent with Fig. 2(a) magnitudes.
//   - RthBase/RthFlow give a server-level die-to-ambient resistance
//     Rth(RPM) = 0.195 + 1100/RPM °C/W, anchored to Fig. 1(a) steady
//     states: ~85 °C @1800 RPM and ~52 °C @4200 RPM at 100% utilization.
//   - The two-node RC (die: R=0.30 °C/W, C=33 J/°C per socket; sink:
//     C=220 J/°C) reproduces the fast 5-8 °C step in <30 s and the 5-15
//     minute fan-dependent settling of Fig. 1.
//   - IdleFloor=365 W is back-solved from Table I's net-savings arithmetic;
//     the memory dynamic slope 0.86 W/% from Table I energy magnitudes.
//   - The fan bank cubic coefficient 3.5e-10 W/RPM³ places the fan+leakage
//     minimum at 2400 RPM / ~68-70 °C for 100% utilization as in Fig. 2(a).
type Config struct {
	Ambient       units.Celsius // lab ambient, paper: 24 °C
	CriticalTemp  units.Celsius // server trip threshold, paper: 90 °C
	TargetMaxTemp units.Celsius // reliability target, paper: 75 °C

	Power power.ServerModel
	Fans  fans.Config
	Mem   mem.Config
	CPU   cpu.Topology

	// Per-socket thermal parameters.
	RDie      float64 // die→sink resistance, °C/W
	CDie      float64 // die capacitance, J/°C
	RSinkBase float64 // sink→air resistance floor, °C/W
	RSinkFlow float64 // airflow-dependent term: R = RSinkBase + RSinkFlow/RPM
	CSink     float64 // sink capacitance, J/°C

	// Sensor noise (standard deviations) applied to measured values only;
	// the underlying physics is deterministic.
	TempNoise  float64 // °C
	PowerNoise float64 // W
	NoiseSeed  int64

	// Die thermal sensors sit at fixed spots with a spatial gradient: the
	// first sensor of each die reads near the hot spot, the second near
	// the die edge. These offsets are added to the lumped die temperature,
	// so Tmax-driven policies (the bang-bang controller) see realistic
	// hot-spot values.
	HotSpotOffset float64 // °C, first sensor per die
	EdgeOffset    float64 // °C, second sensor per die

	// MaxThermalStep bounds the RC integrator step, seconds. It only
	// matters on the RK4 path; the exact propagator is step-size exact.
	MaxThermalStep float64

	// MacroDriftTolC bounds the die-temperature movement, in °C, a single
	// closed-form macro-step (Server.MacroStep) may span before the
	// leakage linearization is re-anchored at the current temperatures.
	// Smaller values track the fixed-dt reference more tightly at the cost
	// of more sub-steps per event gap; 0 selects the default 1 °C, which
	// keeps whole-trace energies within ~3e-7 relative (the error scales
	// linearly with the tolerance). Values above the 5 °C thermal-trip
	// guard band are clamped to it. Only consulted by the event-stepping
	// kernel; plain Step ignores it.
	MacroDriftTolC float64

	// ThermalIntegrator selects the RC network stepping scheme. The zero
	// value, thermal.IntegratorExact, uses the cached matrix-exponential
	// propagator; thermal.IntegratorRK4 forces the classical fixed-step
	// fallback (the pre-optimization ground truth).
	ThermalIntegrator thermal.Integrator
}

// T3Config returns the calibrated reproduction of the paper's server.
func T3Config() Config {
	return Config{
		Ambient:       24,
		CriticalTemp:  90,
		TargetMaxTemp: 75,
		Power: power.ServerModel{
			IdleFloor: 365,
			Active:    power.ActiveModel{K1: 0.4452},
			Leakage:   power.LeakageModel{C: 10, K2: 0.3231, K3: 0.04749},
			Fans:      power.FanLaw{Coeff: 3.5e-10},
			Memory:    power.MemoryModel{Idle: 40, KU: 0.86},
		},
		Fans: fans.DefaultConfig(),
		Mem:  mem.DefaultConfig(),
		CPU:  cpu.T3Topology(),

		// Server-level Rth(RPM) = 0.195 + 1100/RPM splits per socket
		// (each socket carries half the CPU power) into 2×:
		// Rsocket = 0.39 + 2200/RPM = RDie + RSinkBase + RSinkFlow/RPM.
		// CSink is chosen so the *effective* settling time — the raw RC
		// constant amplified by 1/(1-leakage loop gain), which reaches
		// ~3.3× at the hot 1800 RPM point — lands at Fig. 1(a)'s ~15 min
		// for 1800 RPM.
		RDie:      0.30,
		CDie:      33,
		RSinkBase: 0.09,
		RSinkFlow: 2200,
		CSink:     66,

		TempNoise:     0.25,
		PowerNoise:    1.5,
		NoiseSeed:     1,
		HotSpotOffset: 2.5,
		EdgeOffset:    -1.5,

		MaxThermalStep: 1.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.RDie <= 0 || c.CDie <= 0 || c.RSinkBase < 0 || c.RSinkFlow <= 0 || c.CSink <= 0 {
		return fmt.Errorf("server: thermal parameters must be positive: %+v", c)
	}
	if c.CriticalTemp <= c.Ambient {
		return fmt.Errorf("server: critical temp %v must exceed ambient %v", c.CriticalTemp, c.Ambient)
	}
	if c.TargetMaxTemp >= c.CriticalTemp {
		return fmt.Errorf("server: target max %v must be below critical %v", c.TargetMaxTemp, c.CriticalTemp)
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	return nil
}

// ShiftAmbient returns the configuration with the inlet ambient moved by
// delta — the uniform shift a facility's cold-aisle setpoint applies to
// every server (see internal/cooling). A zero delta returns the receiver
// unchanged, preserving bit-identity for the no-shift path. Every caller
// that re-derives ambient-dependent state (rack construction, cost-table
// builds) must go through this one helper so the shift semantics cannot
// drift apart.
func (c Config) ShiftAmbient(delta units.Celsius) Config {
	if delta != 0 {
		c.Ambient += delta
	}
	return c
}

// RthServer returns the server-level die-to-inlet thermal resistance at a
// fan speed (°C/W of total CPU power).
func (c Config) RthServer(r units.RPM) float64 {
	rpm := float64(r)
	if rpm < 1 {
		rpm = 1
	}
	return (c.RDie + c.RSinkBase + c.RSinkFlow/rpm) / 2
}
