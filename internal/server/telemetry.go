package server

import (
	"fmt"

	"repro/internal/telemetry"
)

// AttachTelemetry registers the paper's full CSTH channel list (Section
// III) on a harness:
//
//   - 4 CPU temperature values (2 thermal sensors per die),
//   - 32 memory temperature values (1 per DIMM),
//   - per-core voltage and current values,
//   - power consumed by the whole system,
//
// plus the fan power and mean fan speed that the paper's external-supply
// setup makes separately observable. Drive the harness with
// h.Advance(srv.Now()) after each simulation step.
func (s *Server) AttachTelemetry(h *telemetry.Harness) error {
	return s.AttachTelemetryPrefixed(h, "")
}

// AttachTelemetryPrefixed registers the same channel list with every
// sensor name prefixed — how a rack fans one harness out over many
// servers without name collisions (rack.AttachTelemetry uses
// "rack<N>." per slot).
func (s *Server) AttachTelemetryPrefixed(h *telemetry.Harness, prefix string) error {
	// CPU die temperature sensors: cpu<die>.temp<sensor>.
	for die := 0; die < len(s.dieNodes); die++ {
		for sensor := 0; sensor < 2; sensor++ {
			die, sensor := die, sensor
			name := fmt.Sprintf("%scpu%d.temp%d", prefix, die, sensor)
			err := h.Register(name, "°C", func() float64 {
				readings := s.CPUTempSensors()
				return float64(readings[die*2+sensor])
			})
			if err != nil {
				return err
			}
		}
	}
	// DIMM temperatures.
	for i := 0; i < s.mem.NumDIMMs(); i++ {
		i := i
		name := fmt.Sprintf("%sdimm%02d.temp", prefix, i)
		err := h.Register(name, "°C", func() float64 {
			t, err := s.mem.Temp(i)
			if err != nil {
				return 0
			}
			return float64(t)
		})
		if err != nil {
			return err
		}
	}
	// Per-core voltage and current.
	cores := s.cpu.Topology().Cores()
	for core := 0; core < cores; core++ {
		core := core
		errV := h.Register(fmt.Sprintf("%score%02d.volts", prefix, core), "V", func() float64 {
			v, _, err := s.cpu.VI(core, s.cfg.Power.CPUHeat(s.Utilization(), s.MaxCPUTemp()))
			if err != nil {
				return 0
			}
			return v
		})
		if errV != nil {
			return errV
		}
		errI := h.Register(fmt.Sprintf("%score%02d.amps", prefix, core), "A", func() float64 {
			_, a, err := s.cpu.VI(core, s.cfg.Power.CPUHeat(s.Utilization(), s.MaxCPUTemp()))
			if err != nil {
				return 0
			}
			return a
		})
		if errI != nil {
			return errI
		}
	}
	// Whole-system power and the separately metered fan channel.
	if err := h.Register(prefix+"system.power", "W", func() float64 {
		return float64(s.MeasuredSystemPower())
	}); err != nil {
		return err
	}
	if err := h.Register(prefix+"fans.power", "W", func() float64 {
		return float64(s.MeasuredFanPower())
	}); err != nil {
		return err
	}
	if err := h.Register(prefix+"fans.rpm", "RPM", func() float64 {
		return float64(s.fans.MeanRPM())
	}); err != nil {
		return err
	}
	return nil
}
