package server

import (
	"math"

	"repro/internal/thermal"
	"repro/internal/units"
)

// bandLinMarginC pads the die-temperature band against the linearization
// error of the predicted trajectory: each drift-capped anchor segment can
// deviate from the fixed-dt reference by the leakage curvature (~0.02
// W/°C²) over at most the drift tolerance — far below this margin.
const bandLinMarginC = 0.05

// bandMaxAnchors bounds the drift-capped re-linearizations one horizon
// query may spend; a trajectory still drifting after this many anchors is
// a genuine transient the kernel should observe step by step.
const bandMaxAnchors = 64

// BandDecisionHorizon predicts the server's fixed-dt die-temperature
// trajectory and reports how many of the controller's upcoming decision
// instants — the grid steps first, first+stride, first+2·stride, … from
// now — are guaranteed to observe a max CPU temperature inside [lo, hi]
// (either bound may be infinite). It is the thermal half of the bang-bang
// quiet band (control.BandPromiser): a returned m means the first possible
// fan action is the (m+1)-th instant, so the kernel may sleep until then.
//
// The prediction is read-only: it iterates the same linearized propagator
// map the macro kernel applies (thermal.PredictLinearized), re-anchoring
// the leakage linearization under the configured drift tolerance, and
// never touches the live thermal state. The observed-to-die conversion is
// conservative: the band shrinks by the worst sensor offset, a 6σ sensor
// noise allowance, and the linearization margin, and its upper edge is
// clamped below the thermal-trip guard band so a promised window can never
// span a natural trip. Returns 0 — no promise beyond the next instant —
// whenever the server is not macro-eligible (RK4, dark, fault-pinned,
// slewing fans, trip risk), the band is empty after shrinking, or the
// trajectory drifts too fast to predict.
func (s *Server) BandDecisionHorizon(dt float64, first, stride, maxChecks int, lo, hi units.Celsius) int {
	if dt <= 0 || first < 1 || stride < 1 || maxChecks < 1 || !s.macroEligible() {
		return 0
	}
	dieLo := math.Inf(-1)
	maxOff := s.cfg.HotSpotOffset
	if s.cfg.EdgeOffset > maxOff {
		maxOff = s.cfg.EdgeOffset
	}
	margin := 6*s.cfg.TempNoise + bandLinMarginC
	if !math.IsInf(float64(lo), -1) {
		dieLo = float64(lo) - maxOff + margin
	}
	dieHi := float64(s.cfg.CriticalTemp) - tripGuardC
	if v := float64(hi) - maxOff - margin; v < dieHi {
		dieHi = v
	}
	if !(dieLo < dieHi) {
		return 0
	}

	// Anchor at the live state: boundary temperature and conductances are
	// window-constant, so syncing once here pins them for the whole walk.
	s.syncThermalInputs()
	m := s.net.NumNodes()
	if len(s.predTemps) != m {
		s.predTemps = make([]float64, m)
		s.predPowers = make([]float64, m)
		s.predSlopes = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		s.predTemps[i] = s.net.Temp(thermal.NodeID(i))
	}
	tol := s.cfg.MacroDriftTolC
	if tol <= 0 {
		tol = defaultMacroDriftTolC
	}
	if tol > tripGuardC {
		tol = tripGuardC
	}

	verified := 0
	reached := 0 // grid steps walked from now
	next := first
	for anchors := 0; verified < maxChecks && anchors < bandMaxAnchors; anchors++ {
		s.fillPredictInputs()
		adv := s.net.PredictLinearized(dt, next-reached, s.predTemps, s.predPowers, s.predSlopes, tol)
		if adv == 0 {
			// A fresh anchor could not advance one step inside the drift
			// cap: a transient too fast to predict. Promise what we have.
			break
		}
		reached += adv
		if reached < next {
			continue // drift stop mid-segment: re-anchor and keep walking
		}
		maxDie := s.predTemps[s.dieNodes[0]]
		for _, die := range s.dieNodes[1:] {
			if t := s.predTemps[die]; t > maxDie {
				maxDie = t
			}
		}
		if maxDie < dieLo || maxDie > dieHi {
			break // this instant may act: the promise ends just before it
		}
		verified++
		next += stride
	}
	return verified
}

// fillPredictInputs computes the injected node powers and leakage feedback
// slopes at the *predicted* die temperatures in predTemps — the prediction
// twin of syncThermalInputs + stepMacroCore's slope pass, evaluated on the
// model directly (anchor temperatures are hypothetical, so the live memo
// must not be polluted). Sink nodes inject nothing; utilization, DVFS and
// fan speed are window-constant by the promise contract.
func (s *Server) fillPredictInputs() {
	for i := range s.predPowers {
		s.predPowers[i] = 0
		s.predSlopes[i] = 0
	}
	nSockets := float64(len(s.dieNodes))
	lm := s.cfg.Power.Leakage
	for i, die := range s.dieNodes {
		sockU, _ := s.cpu.SocketUtilization(i)
		active := float64(s.cfg.Power.Active.Power(s.effectiveUtil(sockU))) * s.dynScale() / nSockets
		leak := float64(lm.Power(units.Celsius(s.predTemps[die])))
		s.predPowers[die] = active + leak*s.voltScale/nSockets
		s.predSlopes[die] = lm.K3 * (leak - lm.C) * s.voltScale / nSockets
	}
}
