package server

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/units"
)

// maxSensor reads the observation-side temperature the bang-bang
// controller would see: the max over the CPU temperature sensors.
func maxSensor(s *Server) float64 {
	m := math.Inf(-1)
	for _, v := range s.CPUTempSensorsReuse() {
		if f := float64(v); f > m {
			m = f
		}
	}
	return m
}

// TestBandDecisionHorizonSound is the promiser soundness property: every
// decision instant the horizon vouches for must, on a fixed-dt twin,
// observe a max CPU temperature strictly inside the promised band — the
// instants a bang-bang controller provably skips. Random warm loads, load
// steps, bands and lattices; noise off so the sensor readings are the die
// trajectory itself.
func TestBandDecisionHorizonSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	totalVerified := 0
	for trial := 0; trial < 40; trial++ {
		mutate := func(c *Config) { c.TempNoise = 0 }
		pred, ref := macroPair(t, mutate)
		warmLoad := units.Percent(rng.Intn(101))
		warm := 200 + rng.Intn(400)
		for _, s := range []*Server{pred, ref} {
			s.SetLoad(warmLoad)
			for k := 0; k < warm; k++ {
				s.Step(1)
			}
		}
		// A load step right before the query makes the trajectory move, so
		// the promise has something real to bound.
		newLoad := units.Percent(rng.Intn(101))
		pred.SetLoad(newLoad)
		ref.SetLoad(newLoad)

		// Band around the current observation, sometimes one-sided.
		now := maxSensor(pred)
		lo := units.Celsius(now - 2 - 10*rng.Float64())
		hi := units.Celsius(now + 2 + 10*rng.Float64())
		if rng.Intn(4) == 0 {
			lo = units.Celsius(math.Inf(-1))
		}
		if rng.Intn(4) == 0 {
			hi = units.Celsius(math.Inf(1))
		}
		first := 1 + rng.Intn(15)
		stride := 1 + rng.Intn(15)

		m := pred.BandDecisionHorizon(1, first, stride, 50, lo, hi)
		totalVerified += m
		// Replay the instants on the fixed-dt twin.
		step := 0
		for j := 0; j < m; j++ {
			target := first + j*stride
			for ; step < target; step++ {
				ref.Step(1)
			}
			got := maxSensor(ref)
			if got < float64(lo) || got > float64(hi) {
				t.Fatalf("trial %d: promised instant %d (step %d) observes %.4f outside band [%v, %v] (m=%d, loads %v→%v)",
					trial, j, target, got, lo, hi, m, warmLoad, newLoad)
			}
		}
		// The query must be read-only: the predicting server, stepped the
		// same way afterwards, must match its twin exactly.
		for k := 0; k < step; k++ {
			pred.Step(1)
		}
		if d := math.Abs(float64(pred.MaxCPUTemp() - ref.MaxCPUTemp())); d != 0 {
			t.Fatalf("trial %d: BandDecisionHorizon perturbed the live state by %g °C", trial, d)
		}
	}
	if totalVerified == 0 {
		t.Fatal("no instant was ever verified across all trials; the property is vacuous")
	}
}

// TestBandDecisionHorizonRefusals pins the no-promise cases: bad lattice
// parameters, an empty band after the conservative shrink, and a server
// that is not macro-eligible all return 0.
func TestBandDecisionHorizonRefusals(t *testing.T) {
	srv, _ := macroPair(t, func(c *Config) { c.TempNoise = 0 })
	srv.SetLoad(50)
	for k := 0; k < 300; k++ {
		srv.Step(1)
	}
	wide := units.Celsius(math.Inf(1))
	if m := srv.BandDecisionHorizon(0, 1, 1, 10, 0, wide); m != 0 {
		t.Errorf("dt=0 must refuse, got %d", m)
	}
	if m := srv.BandDecisionHorizon(1, 0, 1, 10, 0, wide); m != 0 {
		t.Errorf("first=0 must refuse, got %d", m)
	}
	if m := srv.BandDecisionHorizon(1, 1, 1, 10, 60, 60.01); m != 0 {
		t.Errorf("a band thinner than the margins must refuse, got %d", m)
	}
	// Slewing fans break macro eligibility, and therefore the promise.
	srv.Fans().SetAll(srv.Fans().Target() + 600)
	if m := srv.BandDecisionHorizon(1, 1, 1, 10, 0, wide); m != 0 {
		t.Errorf("slewing fans must refuse, got %d", m)
	}
}

// TestBandDecisionHorizonNoise: with sensor noise configured the die band
// shrinks by the 6σ allowance — a band narrower than that is withdrawn
// even though the noiseless trajectory would sit comfortably inside it.
func TestBandDecisionHorizonNoise(t *testing.T) {
	srv, _ := macroPair(t, func(c *Config) { c.TempNoise = 1.0 })
	srv.SetLoad(50)
	for k := 0; k < 600; k++ {
		srv.Step(1)
	}
	die := float64(srv.MaxCPUTemp())
	off := srv.Config().HotSpotOffset
	// ±5 °C around the observation: wide against the trajectory, narrow
	// against the 6σ=6 °C noise allowance on each side.
	lo := units.Celsius(die + off - 5)
	hi := units.Celsius(die + off + 5)
	if m := srv.BandDecisionHorizon(1, 10, 10, 10, lo, hi); m != 0 {
		t.Errorf("6σ allowance must swallow a ±5 °C band at σ=1, got %d", m)
	}
	quiet, _ := macroPair(t, func(c *Config) { c.TempNoise = 0 })
	quiet.SetLoad(50)
	for k := 0; k < 600; k++ {
		quiet.Step(1)
	}
	die = float64(quiet.MaxCPUTemp())
	off = quiet.Config().HotSpotOffset
	lo = units.Celsius(die + off - 5)
	hi = units.Celsius(die + off + 5)
	if m := quiet.BandDecisionHorizon(1, 10, 10, 10, lo, hi); m == 0 {
		t.Error("the same band with zero noise must verify at steady state")
	}
}
