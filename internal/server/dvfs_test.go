package server

import (
	"math"
	"testing"
)

func TestSetDVFSValidation(t *testing.T) {
	s := newServer(t)
	for _, bad := range [][2]float64{{0, 1}, {1.1, 1}, {1, 0}, {1, 1.5}, {-1, 0.5}} {
		if err := s.SetDVFS(bad[0], bad[1]); err == nil {
			t.Errorf("SetDVFS(%g, %g) should fail", bad[0], bad[1])
		}
	}
	if err := s.SetDVFS(0.7, 0.86); err != nil {
		t.Fatal(err)
	}
	f, v := s.DVFS()
	if f != 0.7 || v != 0.86 {
		t.Fatalf("DVFS = %g, %g", f, v)
	}
}

func TestDVFSReducesPowerAtPartialLoad(t *testing.T) {
	run := func(freq, volt float64) (watts float64, temp float64) {
		s := newServer(t)
		if err := s.SetDVFS(freq, volt); err != nil {
			t.Fatal(err)
		}
		s.SetLoad(50)
		s.Fans().SetAll(2400)
		for i := 0; i < 600; i++ {
			s.Step(5)
		}
		return float64(s.Breakdown().Total()), float64(s.MaxCPUTemp())
	}
	basePower, baseTemp := run(1, 1)
	scaledPower, scaledTemp := run(0.7, 0.86)
	if scaledPower >= basePower {
		t.Fatalf("P2 power %g should be below P0 %g at 50%% load", scaledPower, basePower)
	}
	if scaledTemp >= baseTemp {
		t.Fatalf("P2 temp %g should be below P0 %g", scaledTemp, baseTemp)
	}
	// The dynamic saving is bounded by the CPU active power itself.
	if basePower-scaledPower > 25 {
		t.Fatalf("implausible DVFS saving: %g W", basePower-scaledPower)
	}
}

func TestDVFSEffectiveUtilizationAndThrottle(t *testing.T) {
	s := newServer(t)
	if err := s.SetDVFS(0.55, 0.8); err != nil {
		t.Fatal(err)
	}
	s.SetLoad(40)
	s.Step(1)
	// 40 demanded at 0.55 capacity → ~72.7% effective.
	want := 40 / 0.55
	if got := float64(s.EffectiveUtilization()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("effective util = %g, want %g", got, want)
	}
	if s.Throttled() {
		t.Fatal("40% at P3 must not throttle")
	}
	// Demand beyond capacity throttles and clamps.
	s.SetLoad(80)
	s.Step(1)
	if got := float64(s.EffectiveUtilization()); got != 100 {
		t.Fatalf("over-capacity effective util = %g", got)
	}
	if !s.Throttled() {
		t.Fatal("80% at P3 must set the throttled flag")
	}
}

func TestDVFSNeutralAtTopState(t *testing.T) {
	// A server left at the default (1, 1) scales behaves identically to
	// one explicitly set there.
	a := newServer(t)
	b := newServer(t)
	if err := b.SetDVFS(1, 1); err != nil {
		t.Fatal(err)
	}
	a.SetLoad(75)
	b.SetLoad(75)
	for i := 0; i < 100; i++ {
		a.Step(5)
		b.Step(5)
	}
	if a.Breakdown().Total() != b.Breakdown().Total() {
		t.Fatalf("top state differs: %v vs %v", a.Breakdown().Total(), b.Breakdown().Total())
	}
	if a.MaxCPUTemp() != b.MaxCPUTemp() {
		t.Fatal("temperatures differ at top state")
	}
}
